package spade

import (
	"encoding/json"
	"testing"
)

func TestReportJSON(t *testing.T) {
	rep := analyze(t)
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded) != rep.TotalCalls {
		t.Fatalf("JSON findings = %d, want %d", len(decoded), rep.TotalCalls)
	}
	vulnerable := 0
	for _, d := range decoded {
		if d["vulnerable"] == true {
			vulnerable++
		}
		if d["file"] == "" || d["line"] == float64(0) {
			t.Errorf("finding without location: %v", d)
		}
	}
	if vulnerable != rep.VulnerableCalls {
		t.Errorf("JSON vulnerable = %d, want %d", vulnerable, rep.VulnerableCalls)
	}
}
