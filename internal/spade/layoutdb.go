// Package spade implements SPADE — Sub-Page Analysis for DMA Exposure
// (§4.1 of the paper): a static analyzer that starts from dma_map* calls,
// backtracks the mapped variable through declarations, assignments and call
// sites, and reports which data structures (and which callback pointers) the
// mapping exposes to the device.
//
// The original is ~2000 lines of Perl gluing Cscope (code cross-referencing)
// and pahole (DWARF struct layouts). This implementation parses the driver
// sources with cminor and provides both capabilities natively: an Xref index
// and a LayoutDB computing x86-64 struct layouts.
package spade

import (
	"fmt"
	"sort"

	"dmafault/internal/cminor"
)

// LayoutDB is the pahole-equivalent: struct sizes, field offsets, and
// callback-pointer inventories, computed from parsed definitions with x86-64
// ABI rules.
type LayoutDB struct {
	structs map[string]*cminor.StructDef
	layouts map[string]*StructLayout
}

// StructLayout is a computed memory layout.
type StructLayout struct {
	Name   string
	Size   uint64
	Align  uint64
	Fields []FieldLayout
}

// FieldLayout is one field's placement.
type FieldLayout struct {
	Name   string
	Offset uint64
	Size   uint64
	Type   *cminor.Type
}

// baseSizes are x86-64 scalar sizes (alignment = size).
var baseSizes = map[string]uint64{
	"void": 1, "char": 1, "bool": 1,
	"u8": 1, "s8": 1, "uint8_t": 1,
	"u16": 2, "s16": 2, "short": 2, "uint16_t": 2, "short int": 2,
	"int": 4, "u32": 4, "s32": 4, "unsigned": 4, "uint32_t": 4, "gfp_t": 4,
	"float": 4, "irqreturn_t": 4, "netdev_tx_t": 4,
	"long": 8, "u64": 8, "s64": 8, "uint64_t": 8, "size_t": 8, "ssize_t": 8,
	"double": 8, "dma_addr_t": 8, "phys_addr_t": 8, "long long": 8,
	"unsigned long": 8, "long int": 8,
}

// NewLayoutDB indexes the struct definitions of a set of files.
func NewLayoutDB(files []*cminor.File) *LayoutDB {
	db := &LayoutDB{structs: make(map[string]*cminor.StructDef), layouts: make(map[string]*StructLayout)}
	for _, f := range files {
		for _, sd := range f.Structs {
			db.structs[sd.Name] = sd
		}
	}
	return db
}

// Struct returns the definition of a struct, if known.
func (db *LayoutDB) Struct(name string) (*cminor.StructDef, bool) {
	sd, ok := db.structs[name]
	return sd, ok
}

// Names returns all known struct names, sorted.
func (db *LayoutDB) Names() []string {
	out := make([]string, 0, len(db.structs))
	for n := range db.structs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SizeAlign computes a type's size and alignment.
func (db *LayoutDB) SizeAlign(t *cminor.Type) (size, align uint64, err error) {
	return db.sizeAlign(t, map[string]bool{})
}

func (db *LayoutDB) sizeAlign(t *cminor.Type, busy map[string]bool) (uint64, uint64, error) {
	if t == nil {
		return 0, 1, fmt.Errorf("spade: nil type")
	}
	switch t.Kind {
	case cminor.TypePtr, cminor.TypeFuncPtr:
		return 8, 8, nil
	case cminor.TypeBase:
		if s, ok := baseSizes[t.Name]; ok {
			return s, s, nil
		}
		// Unknown typedef: assume register-sized (pahole would know; we
		// stay conservative).
		return 8, 8, nil
	case cminor.TypeArray:
		es, ea, err := db.sizeAlign(t.Elem, busy)
		if err != nil {
			return 0, 1, err
		}
		return es * uint64(t.Len), ea, nil
	case cminor.TypeStruct:
		l, err := db.layoutLocked(t.Name, busy)
		if err != nil {
			return 0, 1, err
		}
		return l.Size, l.Align, nil
	default:
		return 0, 1, fmt.Errorf("spade: unknown type kind %d", t.Kind)
	}
}

// Layout computes (and caches) a struct's layout.
func (db *LayoutDB) Layout(name string) (*StructLayout, error) {
	return db.layoutLocked(name, map[string]bool{})
}

func (db *LayoutDB) layoutLocked(name string, busy map[string]bool) (*StructLayout, error) {
	if l, ok := db.layouts[name]; ok {
		return l, nil
	}
	if busy[name] {
		return nil, fmt.Errorf("spade: recursive embedding of struct %s", name)
	}
	sd, ok := db.structs[name]
	if !ok {
		return nil, fmt.Errorf("spade: unknown struct %s", name)
	}
	busy[name] = true
	defer delete(busy, name)
	l := &StructLayout{Name: name, Align: 1}
	off := uint64(0)
	for _, f := range sd.Fields {
		s, a, err := db.sizeAlign(f.Type, busy)
		if err != nil {
			return nil, fmt.Errorf("spade: struct %s field %s: %w", name, f.Name, err)
		}
		off = (off + a - 1) &^ (a - 1)
		l.Fields = append(l.Fields, FieldLayout{Name: f.Name, Offset: off, Size: s, Type: f.Type})
		off += s
		if a > l.Align {
			l.Align = a
		}
	}
	l.Size = (off + l.Align - 1) &^ (l.Align - 1)
	if l.Size == 0 {
		l.Size = l.Align
	}
	db.layouts[name] = l
	return l, nil
}

// DirectCallbacks counts function-pointer fields of the struct, including
// those of embedded (by-value) structs: callbacks that live on the mapped
// page itself.
func (db *LayoutDB) DirectCallbacks(name string) int {
	return db.directCallbacks(name, map[string]bool{})
}

func (db *LayoutDB) directCallbacks(name string, busy map[string]bool) int {
	if busy[name] {
		return 0
	}
	busy[name] = true
	sd, ok := db.structs[name]
	if !ok {
		return 0
	}
	n := 0
	for _, f := range sd.Fields {
		n += db.countDirectInType(f.Type, busy)
	}
	return n
}

func (db *LayoutDB) countDirectInType(t *cminor.Type, busy map[string]bool) int {
	switch t.Kind {
	case cminor.TypeFuncPtr:
		return 1
	case cminor.TypeStruct:
		return db.directCallbacks(t.Name, busy)
	case cminor.TypeArray:
		return t.Len * db.countDirectInType(t.Elem, map[string]bool{})
	default:
		return 0
	}
}

// SpoofableCallbacks counts callbacks reachable through struct-pointer
// fields: "replacing this pointer to indicate an instance of the structure
// created by the device, with its own callback pointers" (§4.1.2 fn. 3).
// Each struct type is counted once along a path (cycle-safe).
func (db *LayoutDB) SpoofableCallbacks(name string) int {
	visited := map[string]bool{name: true}
	return db.spoofable(name, visited)
}

func (db *LayoutDB) spoofable(name string, visited map[string]bool) int {
	sd, ok := db.structs[name]
	if !ok {
		return 0
	}
	n := 0
	for _, f := range sd.Fields {
		t := f.Type
		for t != nil && t.Kind == cminor.TypeArray {
			t = t.Elem
		}
		if t == nil || t.Kind != cminor.TypePtr {
			continue
		}
		p := t.Elem
		if p == nil || p.Kind != cminor.TypeStruct || visited[p.Name] {
			continue
		}
		visited[p.Name] = true
		n += db.DirectCallbacks(p.Name) + db.spoofable(p.Name, visited)
	}
	// Embedded structs also contribute their pointers.
	for _, f := range sd.Fields {
		if f.Type.Kind == cminor.TypeStruct && !visited["!"+f.Type.Name] {
			visited["!"+f.Type.Name] = true
			n += db.spoofable(f.Type.Name, visited)
		}
	}
	return n
}

// FieldOffset returns the offset of a (possibly nested, dot-separated) field.
func (db *LayoutDB) FieldOffset(structName, field string) (uint64, error) {
	l, err := db.Layout(structName)
	if err != nil {
		return 0, err
	}
	for _, f := range l.Fields {
		if f.Name == field {
			return f.Offset, nil
		}
	}
	return 0, fmt.Errorf("spade: struct %s has no field %s", structName, field)
}
