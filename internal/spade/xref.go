package spade

import (
	"sort"

	"dmafault/internal/cminor"
)

// Xref is the Cscope-equivalent: function definitions, call sites, and
// per-function variable declarations/assignments, indexed for the recursive
// backtracking the analysis performs.
type Xref struct {
	// Funcs maps a function name to its definition.
	Funcs map[string]*FuncInfo
	// Callers maps a callee name to every call site.
	Callers map[string][]CallSite
}

// FuncInfo locates one function definition.
type FuncInfo struct {
	File *cminor.File
	Def  *cminor.FuncDef
}

// CallSite is one call expression inside a function.
type CallSite struct {
	File   *cminor.File
	Caller *cminor.FuncDef
	Call   *cminor.Call
}

// NewXref indexes a set of parsed files.
func NewXref(files []*cminor.File) *Xref {
	x := &Xref{Funcs: make(map[string]*FuncInfo), Callers: make(map[string][]CallSite)}
	for _, f := range files {
		for _, fn := range f.Funcs {
			// Prototypes (nil body) must not shadow real definitions.
			if fn.Body == nil {
				if _, have := x.Funcs[fn.Name]; !have {
					x.Funcs[fn.Name] = &FuncInfo{File: f, Def: fn}
				}
				continue
			}
			x.Funcs[fn.Name] = &FuncInfo{File: f, Def: fn}
			fileRef, fnRef := f, fn
			cminor.WalkStmts(fn.Body, nil, func(e cminor.Expr) {
				if c, ok := e.(*cminor.Call); ok {
					if name := c.FunName(); name != "" {
						x.Callers[name] = append(x.Callers[name], CallSite{File: fileRef, Caller: fnRef, Call: c})
					}
				}
			})
		}
	}
	return x
}

// CallSitesOf returns the call sites of a function, in deterministic order.
func (x *Xref) CallSitesOf(name string) []CallSite {
	sites := append([]CallSite(nil), x.Callers[name]...)
	sort.SliceStable(sites, func(i, j int) bool {
		if sites[i].File.Name != sites[j].File.Name {
			return sites[i].File.Name < sites[j].File.Name
		}
		return sites[i].Call.Pos.Line < sites[j].Call.Pos.Line
	})
	return sites
}

// DeclOf finds the declared type of a name inside a function: a local
// declaration or a parameter.
func DeclOf(fn *cminor.FuncDef, name string) (*cminor.Type, cminor.Pos, bool) {
	var typ *cminor.Type
	var pos cminor.Pos
	cminor.WalkStmts(fn.Body, func(s cminor.Stmt) {
		if d, ok := s.(*cminor.DeclStmt); ok && d.Name == name && typ == nil {
			typ = d.Type
			pos = d.Pos
		}
	}, nil)
	if typ != nil {
		return typ, pos, true
	}
	for _, p := range fn.Params {
		if p.Name == name {
			return p.Type, fn.Pos, true
		}
	}
	return nil, cminor.Pos{}, false
}

// AssignmentsTo collects the right-hand sides assigned to a plain variable
// inside a function (declarations with initializers included).
func AssignmentsTo(fn *cminor.FuncDef, name string) []cminor.Expr {
	var out []cminor.Expr
	cminor.WalkStmts(fn.Body, func(s cminor.Stmt) {
		if d, ok := s.(*cminor.DeclStmt); ok && d.Name == name && d.Init != nil {
			out = append(out, d.Init)
		}
	}, func(e cminor.Expr) {
		if a, ok := e.(*cminor.Assign); ok && a.Op == "=" {
			if id, ok := a.LHS.(*cminor.Ident); ok && id.Name == name {
				out = append(out, a.RHS)
			}
		}
	})
	return out
}

// AssignmentsToMember collects the right-hand sides assigned to a member
// expression like base->field within a function.
func AssignmentsToMember(fn *cminor.FuncDef, base, field string) []cminor.Expr {
	var out []cminor.Expr
	cminor.WalkStmts(fn.Body, nil, func(e cminor.Expr) {
		a, ok := e.(*cminor.Assign)
		if !ok || a.Op != "=" {
			return
		}
		m, ok := a.LHS.(*cminor.Member)
		if !ok || m.Name != field {
			return
		}
		if id, ok := m.X.(*cminor.Ident); ok && id.Name == base {
			out = append(out, a.RHS)
		}
	})
	return out
}

// UsedAsArgOf reports whether the variable appears as argument `idx` of a
// call to `callee` within the function (e.g. buf passed to build_skb).
func UsedAsArgOf(fn *cminor.FuncDef, varName, callee string, idx int) (*cminor.Call, bool) {
	var found *cminor.Call
	cminor.WalkStmts(fn.Body, nil, func(e cminor.Expr) {
		c, ok := e.(*cminor.Call)
		if !ok || found != nil || c.FunName() != callee || len(c.Args) <= idx {
			return
		}
		if id, ok := c.Args[idx].(*cminor.Ident); ok && id.Name == varName {
			found = c
		}
	})
	return found, found != nil
}
