package spade

import "testing"

func TestMemberFieldProvenance(t *testing.T) {
	src := `
struct txq_ops {
	void (*clean)(struct txq *);
	void (*kick)(struct txq *);
};

struct txq {
	char *desc;
	dma_addr_t desc_dma;
	u32 count;
};

static int txq_alloc_whole_struct(struct device *dev, struct txq *q)
{
	struct txq_ops *ops;
	ops = kzalloc(sizeof(struct txq_ops), GFP_KERNEL);
	q->desc = (char *)ops;
	q->desc_dma = dma_map_single(dev, q->desc, sizeof(struct txq_ops), DMA_BIDIRECTIONAL);
	return 0;
}

static int txq_alloc_frag_desc(struct device *dev, struct txq *q)
{
	q->desc = netdev_alloc_frag(2048);
	if (!q->desc)
		return -1;
	q->desc_dma = dma_map_single(dev, q->desc, 2048, DMA_FROM_DEVICE);
	return 0;
}
`
	files := parseFiles(t, map[string]string{"txq.c": src})
	rep := NewAnalyzer(files).Run()
	var whole, frag *Finding
	for _, f := range rep.Findings {
		switch f.Func {
		case "txq_alloc_whole_struct":
			whole = f
		case "txq_alloc_frag_desc":
			frag = f
		}
	}
	if whole == nil || whole.ExposedStruct != "txq_ops" || whole.DirectCallbacks != 2 {
		t.Errorf("member kmalloc(sizeof struct) finding = %+v", whole)
	}
	if frag == nil || !frag.Types[TypeC] {
		t.Errorf("member netdev_alloc_frag finding = %+v", frag)
	}
}
