package spade

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Report aggregates per-call findings into the paper's Table 2 rows.
type Report struct {
	Findings []*Finding

	// Table 2 rows: call and file counts.
	CallbacksExposed    RowCount // 1. callbacks exposed (direct or spoofable)
	SkbSharedInfoMapped RowCount // 2. skb_shared_info mapped
	CallbacksDirect     RowCount // 3. callbacks exposed directly
	PrivateDataMapped   RowCount // 4. private data mapped
	StackMapped         RowCount // 5. stack mapped
	TypeCVulnerable     RowCount // 6. type C vulnerability
	BuildSkbUsed        RowCount // 7. build_skb used
	TotalCalls          int
	TotalFiles          int
	VulnerableCalls     int
}

// RowCount is one Table 2 cell pair.
type RowCount struct {
	Calls int
	Files int
}

func (r RowCount) String() string { return fmt.Sprintf("%d calls / %d files", r.Calls, r.Files) }

// aggregate computes the table from the findings.
func (r *Report) aggregate() {
	type rowSel func(*Finding) bool
	rows := []struct {
		sel rowSel
		out *RowCount
	}{
		{func(f *Finding) bool { return f.CallbacksExposed() }, &r.CallbacksExposed},
		{func(f *Finding) bool { return f.SkbSharedInfo }, &r.SkbSharedInfoMapped},
		{func(f *Finding) bool { return f.DirectCallbacks > 0 }, &r.CallbacksDirect},
		{func(f *Finding) bool { return f.PrivateData }, &r.PrivateDataMapped},
		{func(f *Finding) bool { return f.StackMapped }, &r.StackMapped},
		{func(f *Finding) bool { return f.Types[TypeC] }, &r.TypeCVulnerable},
		{func(f *Finding) bool { return f.BuildSkb }, &r.BuildSkbUsed},
	}
	files := map[string]bool{}
	rowFiles := make([]map[string]bool, len(rows))
	for i := range rowFiles {
		rowFiles[i] = map[string]bool{}
	}
	for _, f := range r.Findings {
		files[f.File] = true
		if f.Vulnerable() {
			r.VulnerableCalls++
		}
		for i, row := range rows {
			if row.sel(f) {
				row.out.Calls++
				rowFiles[i][f.File] = true
			}
		}
	}
	for i, row := range rows {
		row.out.Files = len(rowFiles[i])
	}
	r.TotalCalls = len(r.Findings)
	r.TotalFiles = len(files)
	sort.SliceStable(r.Findings, func(i, j int) bool {
		if r.Findings[i].File != r.Findings[j].File {
			return r.Findings[i].File < r.Findings[j].File
		}
		return r.Findings[i].Line < r.Findings[j].Line
	})
}

// pct formats n as a percentage of total.
func pct(n, total int) string {
	if total == 0 {
		return "0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(total))
}

// Table renders the Table 2 summary in the paper's format.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %-18s %s\n", "Stat", "#API calls", "#Files")
	row := func(name string, rc RowCount, showPct bool) {
		calls := fmt.Sprintf("%d", rc.Calls)
		files := fmt.Sprintf("%d", rc.Files)
		if showPct {
			calls = fmt.Sprintf("%d (%s)", rc.Calls, pct(rc.Calls, r.TotalCalls))
			files = fmt.Sprintf("%d (%s)", rc.Files, pct(rc.Files, r.TotalFiles))
		}
		fmt.Fprintf(&b, "%-34s %-18s %s\n", name, calls, files)
	}
	row("1. Callbacks exposed", r.CallbacksExposed, true)
	row("2. skb_shared_info mapped", r.SkbSharedInfoMapped, true)
	row("3. Callbacks exposed directly", r.CallbacksDirect, false)
	row("4. Private data mapped", r.PrivateDataMapped, false)
	row("5. Stack mapped", r.StackMapped, false)
	row("6. Type C vulnerability", r.TypeCVulnerable, false)
	row("7. build_skb used", r.BuildSkbUsed, false)
	fmt.Fprintf(&b, "%-34s %-18d %d\n", "Total dma-map calls", r.TotalCalls, r.TotalFiles)
	fmt.Fprintf(&b, "Potentially vulnerable: %d (%s)\n", r.VulnerableCalls, pct(r.VulnerableCalls, r.TotalCalls))
	return b.String()
}

// jsonFinding is the machine-readable projection of a Finding.
type jsonFinding struct {
	File               string   `json:"file"`
	Func               string   `json:"func"`
	Line               int      `json:"line"`
	Mapped             string   `json:"mapped"`
	Types              []string `json:"types,omitempty"`
	ExposedStruct      string   `json:"exposed_struct,omitempty"`
	DirectCallbacks    int      `json:"direct_callbacks"`
	SpoofableCallbacks int      `json:"spoofable_callbacks"`
	SkbSharedInfo      bool     `json:"skb_shared_info"`
	BuildSkb           bool     `json:"build_skb"`
	PrivateData        bool     `json:"private_data"`
	StackMapped        bool     `json:"stack_mapped"`
	Vulnerable         bool     `json:"vulnerable"`
	Trace              []string `json:"trace"`
}

// JSON renders the findings machine-readably (for CI integration — the
// paper offers SPADE "to validate the security of the system in the
// development and deployment stages", §9.2).
func (r *Report) JSON() ([]byte, error) {
	out := make([]jsonFinding, 0, len(r.Findings))
	for _, f := range r.Findings {
		jf := jsonFinding{
			File: f.File, Func: f.Func, Line: f.Line, Mapped: f.MappedAs,
			ExposedStruct:   f.ExposedStruct,
			DirectCallbacks: f.DirectCallbacks, SpoofableCallbacks: f.SpoofableCallbacks,
			SkbSharedInfo: f.SkbSharedInfo, BuildSkb: f.BuildSkb,
			PrivateData: f.PrivateData, StackMapped: f.StackMapped,
			Vulnerable: f.Vulnerable(), Trace: f.Trace,
		}
		for _, t := range []VulnType{TypeA, TypeB, TypeC} {
			if f.Types[t] {
				jf.Types = append(jf.Types, t.String())
			}
		}
		out = append(out, jf)
	}
	return json.MarshalIndent(out, "", "  ")
}

// TraceFor renders the Fig. 2-style output for the first finding in the
// given file that exposes callbacks (or the first finding at all).
func (r *Report) TraceFor(file string) string {
	var pick *Finding
	for _, f := range r.Findings {
		if f.File != file {
			continue
		}
		if pick == nil || (!pick.CallbacksExposed() && f.CallbacksExposed()) {
			pick = f
		}
	}
	if pick == nil {
		return fmt.Sprintf("spade: no dma-map calls in %s\n", file)
	}
	return pick.Format()
}

// Format renders one finding's recursive trace.
func (f *Finding) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "spade: %s:%d: %s\n", f.File, f.Line, f.MappedAs)
	for i, line := range f.Trace {
		fmt.Fprintf(&b, " [%d] %s\n", i+1, line)
	}
	types := make([]string, 0, 3)
	for _, t := range []VulnType{TypeA, TypeB, TypeC} {
		if f.Types[t] {
			types = append(types, t.String())
		}
	}
	if len(types) > 0 {
		fmt.Fprintf(&b, " => sub-page vulnerability type(s): %s\n", strings.Join(types, ", "))
	} else if f.Vulnerable() {
		fmt.Fprintf(&b, " => exposure without callback metadata\n")
	} else {
		fmt.Fprintf(&b, " => no exposure detected\n")
	}
	return b.String()
}
