package spade

import (
	"fmt"

	"dmafault/internal/cminor"
)

// VulnType is the sub-page vulnerability classification of §3.2 that static
// analysis can detect (type (d), random co-location, is dynamic: D-KASAN's
// job).
type VulnType int

const (
	// TypeA: the I/O buffer is part of a bigger data structure.
	TypeA VulnType = iota
	// TypeB: an OS API places OS metadata (skb_shared_info) in the buffer.
	TypeB
	// TypeC: the allocation path multi-maps pages (page_frag).
	TypeC
)

// String names the type as Fig. 1 does.
func (v VulnType) String() string {
	switch v {
	case TypeA:
		return "A (driver metadata)"
	case TypeB:
		return "B (OS metadata)"
	case TypeC:
		return "C (multiple IOVA)"
	default:
		return "?"
	}
}

// Finding is the analysis result for one dma_map* call.
type Finding struct {
	File     string
	Func     string
	Line     int
	MappedAs string // rendering of the mapped expression

	Types map[VulnType]bool
	// ExposedStruct is the structure whose bytes share the mapped page.
	ExposedStruct string
	// DirectCallbacks / SpoofableCallbacks count per §4.1.2.
	DirectCallbacks    int
	SpoofableCallbacks int
	// Row flags for Table 2.
	SkbSharedInfo bool
	BuildSkb      bool
	PrivateData   bool
	StackMapped   bool

	// Trace is the Fig. 2-style recursive evidence trail.
	Trace []string
}

// Vulnerable reports whether the call exposes anything (the 72.8%).
func (f *Finding) Vulnerable() bool {
	return f.CallbacksExposed() || f.SkbSharedInfo || f.BuildSkb || f.PrivateData || f.StackMapped || f.Types[TypeC]
}

// CallbacksExposed reports row 1 membership.
func (f *Finding) CallbacksExposed() bool {
	return f.DirectCallbacks+f.SpoofableCallbacks > 0
}

func (f *Finding) trace(format string, args ...any) {
	f.Trace = append(f.Trace, fmt.Sprintf(format, args...))
}

// Analyzer runs SPADE over a parsed corpus.
type Analyzer struct {
	DB    *LayoutDB
	X     *Xref
	Files []*cminor.File
	// MaxDepth bounds the cross-function backtracking recursion (ablation
	// knob D4 in DESIGN.md).
	MaxDepth int
}

// dmaMapFuncs is the set of DMA-mapping entry points SPADE keys on ("the set
// of functions implementing the DMA API").
var dmaMapFuncs = map[string]int{
	"dma_map_single": 1, // arg index of the mapped pointer
	"pci_map_single": 1,
	"dma_map_page":   1, // the page argument (virt_to_page(buf), ...)
}

// privateDataAPIs store driver-private data on pages adjacent to vulnerable
// metadata (§4.1.3: netdev_priv, aead_request_ctx, scsi_cmd_priv).
var privateDataAPIs = map[string]bool{
	"netdev_priv":      true,
	"aead_request_ctx": true,
	"scsi_cmd_priv":    true,
}

// skbAllocFuncs are the sk_buff allocation paths and whether they use
// page_frag (type (c)).
var skbAllocFuncs = map[string]bool{
	"netdev_alloc_skb": true,
	"napi_alloc_skb":   true,
	"alloc_skb":        false, // kmalloc-backed head: no page_frag
	"__alloc_skb":      false,
}

// fragAllocFuncs allocate raw buffers from page_frag.
var fragAllocFuncs = map[string]bool{
	"netdev_alloc_frag": true,
	"napi_alloc_frag":   true,
}

// NewAnalyzer builds an analyzer over parsed files.
func NewAnalyzer(files []*cminor.File) *Analyzer {
	return &Analyzer{DB: NewLayoutDB(files), X: NewXref(files), Files: files, MaxDepth: 4}
}

// Run analyzes every DMA-mapping call site in the corpus.
func (a *Analyzer) Run() *Report {
	rep := &Report{}
	for name, argIdx := range dmaMapFuncs {
		for _, site := range a.X.CallSitesOf(name) {
			if len(site.Call.Args) <= argIdx {
				continue
			}
			f := &Finding{
				File:     site.File.Name,
				Func:     site.Caller.Name,
				Line:     site.Call.Pos.Line,
				MappedAs: Render(site.Call.Args[argIdx]),
				Types:    make(map[VulnType]bool),
			}
			f.trace("%s: in %s(): %s(..., %s, ...)", site.Call.Pos, site.Caller.Name, name, f.MappedAs)
			a.resolve(site.File, site.Caller, site.Call.Args[argIdx], 0, f)
			a.finishFinding(f)
			rep.Findings = append(rep.Findings, f)
		}
	}
	rep.aggregate()
	return rep
}

// finishFinding computes callback counts once the exposed struct is known.
func (a *Analyzer) finishFinding(f *Finding) {
	if f.ExposedStruct == "" {
		return
	}
	f.DirectCallbacks = a.DB.DirectCallbacks(f.ExposedStruct)
	f.SpoofableCallbacks = a.DB.SpoofableCallbacks(f.ExposedStruct)
	f.trace("%d callback pointer(s) mapped in struct %s", f.DirectCallbacks, f.ExposedStruct)
	f.trace("%d callback pointer(s) can be spoofed", f.SpoofableCallbacks)
}

// resolve classifies the mapped expression, backtracking through assignments
// and callers.
func (a *Analyzer) resolve(file *cminor.File, fn *cminor.FuncDef, e cminor.Expr, depth int, f *Finding) {
	if depth > a.MaxDepth {
		f.trace("backtracking depth limit reached")
		return
	}
	switch v := e.(type) {
	case *cminor.Unary:
		if v.Op == "&" {
			a.resolveAddressOf(file, fn, v.X, depth, f)
			return
		}
		a.resolve(file, fn, v.X, depth, f)
	case *cminor.Member:
		a.resolveMember(file, fn, v, depth, f)
	case *cminor.Ident:
		a.resolveVar(file, fn, v, depth, f)
	case *cminor.Index:
		a.resolve(file, fn, v.X, depth, f)
	case *cminor.Binary:
		a.resolve(file, fn, v.X, depth, f) // pointer arithmetic: base matters
	case *cminor.Call:
		a.resolveCallValue(file, fn, v, depth, f)
	default:
		f.trace("%s: opaque mapped expression", e.ExprPos())
	}
}

// resolveAddressOf handles &x->field / &x.field: the buffer is embedded in
// the root structure — type (a).
func (a *Analyzer) resolveAddressOf(file *cminor.File, fn *cminor.FuncDef, e cminor.Expr, depth int, f *Finding) {
	m, ok := e.(*cminor.Member)
	if !ok {
		a.resolve(file, fn, e, depth, f)
		return
	}
	// Find the chain's base identifier.
	base := cminor.Expr(m)
	for {
		mm, ok := base.(*cminor.Member)
		if !ok {
			break
		}
		base = mm.X
	}
	id, ok := base.(*cminor.Ident)
	if !ok {
		f.trace("%s: complex base of &...->%s", m.Pos, m.Name)
		return
	}
	t, pos, ok := DeclOf(fn, id.Name)
	if !ok {
		f.trace("%s: no declaration found for %s", m.Pos, id.Name)
		return
	}
	s := structOf(t)
	if s == "" {
		f.trace("%s: %s is not a struct", pos, id.Name)
		return
	}
	f.trace("%s: declaration: %s %s", pos, t, id.Name)
	f.trace("the mapped buffer &%s->%s is embedded in struct %s: the whole object's page is exposed", id.Name, m.Name, s)
	f.ExposedStruct = s
	f.Types[TypeA] = true
}

// resolveMember handles mapped member pointers: skb->data (type (b)) and
// generic x->buf pointers (trace the field's assignments).
func (a *Analyzer) resolveMember(file *cminor.File, fn *cminor.FuncDef, m *cminor.Member, depth int, f *Finding) {
	if id, ok := m.X.(*cminor.Ident); ok {
		t, pos, found := DeclOf(fn, id.Name)
		if found && structOf(t) == "sk_buff" && m.Name == "data" {
			f.trace("%s: declaration: %s %s", pos, t, id.Name)
			f.trace("skb->data is mapped: skb_shared_info resides on the same page (always)")
			f.SkbSharedInfo = true
			f.Types[TypeB] = true
			a.traceSkbProvenance(fn, id.Name, f)
			return
		}
	}
	// A mapped member pointer (ring->desc, priv->cmd_buf, ...): trace the
	// field's assignments within the function.
	if id, ok := m.X.(*cminor.Ident); ok {
		for _, rhs := range AssignmentsToMember(fn, id.Name, m.Name) {
			switch v := rhs.(type) {
			case *cminor.Call:
				if a.resolveAllocCall(file, fn, Render(m), v, f) {
					return
				}
			case *cminor.Ident, *cminor.Member:
				f.trace("%s: %s = %s", rhs.ExprPos(), Render(m), Render(rhs))
				a.resolve(file, fn, rhs, depth+1, f)
				return
			}
		}
	}
	f.trace("%s: mapped member %s; provenance not tracked further", m.Pos, m.Name)
}

// traceSkbProvenance checks how the skb was allocated: the page_frag paths
// add type (c).
func (a *Analyzer) traceSkbProvenance(fn *cminor.FuncDef, name string, f *Finding) {
	for _, rhs := range AssignmentsTo(fn, name) {
		c, ok := rhs.(*cminor.Call)
		if !ok {
			continue
		}
		fun := c.FunName()
		usesFrag, known := skbAllocFuncs[fun]
		if !known {
			continue
		}
		f.trace("%s: %s = %s(...)", c.Pos, name, fun)
		if usesFrag {
			f.trace("%s() allocates from page_frag: successive buffers share pages (multiple IOVA)", fun)
			f.Types[TypeC] = true
		}
		return
	}
}

// resolveVar handles a plain identifier: local array (stack), local pointer
// (trace assignments), or parameter (backtrack callers).
func (a *Analyzer) resolveVar(file *cminor.File, fn *cminor.FuncDef, id *cminor.Ident, depth int, f *Finding) {
	t, pos, ok := DeclOf(fn, id.Name)
	if !ok {
		f.trace("%s: no declaration found for %s", id.Pos, id.Name)
		return
	}
	f.trace("%s: declaration: %s %s", pos, t, id.Name)
	if t.Kind == cminor.TypeArray {
		f.trace("%s is a stack array: the kernel stack page is exposed", id.Name)
		f.StackMapped = true
		return
	}
	// Assignments inside this function.
	for _, rhs := range AssignmentsTo(fn, id.Name) {
		if c, ok := rhs.(*cminor.Call); ok {
			if a.resolveAllocCall(file, fn, id.Name, c, f) {
				return
			}
		}
		if m, ok := rhs.(*cminor.Member); ok {
			a.resolveMember(file, fn, m, depth, f)
			return
		}
	}
	// Parameter: backtrack to call sites.
	for i, p := range fn.Params {
		if p.Name != id.Name {
			continue
		}
		sites := a.X.CallSitesOf(fn.Name)
		if len(sites) == 0 {
			f.trace("%s is a parameter of %s with no visible callers", id.Name, fn.Name)
			return
		}
		for _, site := range sites {
			if len(site.Call.Args) <= i {
				continue
			}
			f.trace("%s: caller %s() passes %s", site.Call.Pos, site.Caller.Name, Render(site.Call.Args[i]))
			a.resolve(site.File, site.Caller, site.Call.Args[i], depth+1, f)
		}
		return
	}
}

// resolveAllocCall classifies an allocation RHS; returns true when handled.
func (a *Analyzer) resolveAllocCall(file *cminor.File, fn *cminor.FuncDef, varName string, c *cminor.Call, f *Finding) bool {
	fun := c.FunName()
	switch {
	case fun == "kmalloc" || fun == "kzalloc" || fun == "kcalloc":
		f.trace("%s: %s = %s(%s)", c.Pos, varName, fun, renderArgs(c))
		if len(c.Args) > 0 {
			if sz, ok := c.Args[0].(*cminor.Sizeof); ok {
				if s := sizeofStruct(fn, sz); s != "" {
					f.trace("the mapped buffer is a whole struct %s object", s)
					f.ExposedStruct = s
					f.Types[TypeA] = true
					return true
				}
			}
		}
		f.trace("plain kmalloc buffer: co-location with other kmalloc objects is possible (dynamic; see D-KASAN)")
		return true
	case fragAllocFuncs[fun]:
		f.trace("%s: %s = %s(...): page_frag allocation shares pages between buffers", c.Pos, varName, fun)
		f.Types[TypeC] = true
		if bs, ok := UsedAsArgOf(fn, varName, "build_skb", 0); ok {
			f.trace("%s: build_skb(%s, ...) places skb_shared_info inside the mapped buffer", bs.Pos, varName)
			f.BuildSkb = true
			f.SkbSharedInfo = true
			f.Types[TypeB] = true
		}
		return true
	case privateDataAPIs[fun]:
		f.trace("%s: %s = %s(...): driver-private data area mapped", c.Pos, varName, fun)
		f.PrivateData = true
		return true
	case fun == "page_address" || fun == "alloc_pages" || fun == "__get_free_pages":
		f.trace("%s: %s = %s(...): whole-page buffer (no metadata co-located)", c.Pos, varName, fun)
		return true
	}
	return false
}

// resolveCallValue handles a call expression used directly as the mapped
// pointer (dma_map_single(dev, netdev_priv(nd), ...)).
func (a *Analyzer) resolveCallValue(file *cminor.File, fn *cminor.FuncDef, c *cminor.Call, depth int, f *Finding) {
	fun := c.FunName()
	switch {
	case privateDataAPIs[fun]:
		f.trace("%s: mapped pointer is %s(...): driver-private data area", c.Pos, fun)
		f.PrivateData = true
	case fun == "skb_put" || fun == "skb_push":
		f.trace("%s: mapped pointer is %s(skb, ...): points into skb->data", c.Pos, fun)
		f.SkbSharedInfo = true
		f.Types[TypeB] = true
		if len(c.Args) > 0 {
			if id, ok := c.Args[0].(*cminor.Ident); ok {
				a.traceSkbProvenance(fn, id.Name, f)
			}
		}
	case fun == "virt_to_page":
		// dma_map_page(dev, virt_to_page(buf), off, len, dir): the exposure
		// follows the buffer behind the page.
		f.trace("%s: mapped page is virt_to_page(%s)", c.Pos, renderArgs(c))
		if len(c.Args) == 1 {
			a.resolve(file, fn, c.Args[0], depth, f)
		}
	case fun == "page_address":
		f.trace("%s: mapped pointer is page_address(...): whole-page buffer", c.Pos)
	default:
		f.trace("%s: mapped pointer comes from %s(): not modeled", c.Pos, fun)
	}
}

// sizeofStruct extracts the struct name from sizeof(struct S) or sizeof(*p).
func sizeofStruct(fn *cminor.FuncDef, sz *cminor.Sizeof) string {
	if sz.TypeArg != nil {
		return structOf(sz.TypeArg)
	}
	if u, ok := sz.Arg.(*cminor.Unary); ok && u.Op == "*" {
		if id, ok := u.X.(*cminor.Ident); ok {
			if t, _, found := DeclOf(fn, id.Name); found {
				return structOf(t.Deref())
			}
		}
	}
	return ""
}

// structOf returns the struct tag behind a (possibly pointer) type.
func structOf(t *cminor.Type) string {
	for t != nil {
		switch t.Kind {
		case cminor.TypeStruct:
			return t.Name
		case cminor.TypePtr, cminor.TypeArray:
			t = t.Elem
		default:
			return ""
		}
	}
	return ""
}

// Render pretty-prints an expression for traces.
func Render(e cminor.Expr) string {
	switch v := e.(type) {
	case *cminor.Ident:
		return v.Name
	case *cminor.Number:
		return v.Text
	case *cminor.StringLit:
		return v.Text
	case *cminor.Member:
		sep := "."
		if v.Arrow {
			sep = "->"
		}
		return Render(v.X) + sep + v.Name
	case *cminor.Unary:
		return v.Op + Render(v.X)
	case *cminor.Binary:
		return Render(v.X) + " " + v.Op + " " + Render(v.Y)
	case *cminor.Index:
		return Render(v.X) + "[" + Render(v.I) + "]"
	case *cminor.Call:
		return Render(v.Fun) + "(" + renderArgs(v) + ")"
	case *cminor.Assign:
		return Render(v.LHS) + " " + v.Op + " " + Render(v.RHS)
	case *cminor.Sizeof:
		if v.TypeArg != nil {
			return "sizeof(" + v.TypeArg.String() + ")"
		}
		return "sizeof(" + Render(v.Arg) + ")"
	default:
		return "?"
	}
}

func renderArgs(c *cminor.Call) string {
	out := ""
	for i, a := range c.Args {
		if i > 0 {
			out += ", "
		}
		out += Render(a)
	}
	return out
}
