package spade

import "testing"

func TestDmaMapPageViaVirtToPage(t *testing.T) {
	src := `
static int map_page_of_skb(struct device *dev, struct sk_buff *skb)
{
	dma_addr_t dma;
	dma = dma_map_page(dev, virt_to_page(skb->data), 0, 2048, DMA_TO_DEVICE);
	return 0;
}
`
	files := parseFiles(t, map[string]string{"mp.c": src})
	rep := NewAnalyzer(files).Run()
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %d", len(rep.Findings))
	}
	f := rep.Findings[0]
	if !f.SkbSharedInfo || !f.Types[TypeB] {
		t.Fatalf("dma_map_page(virt_to_page(skb->data)) finding = %+v", f)
	}
}

func TestDmaMapPageOfAllocPages(t *testing.T) {
	src := `
static int map_raw_page(struct device *dev)
{
	void *buf;
	dma_addr_t dma;
	buf = page_address(alloc_pages(GFP_KERNEL, 0));
	dma = dma_map_page(dev, virt_to_page(buf), 0, 4096, DMA_FROM_DEVICE);
	return 0;
}
`
	files := parseFiles(t, map[string]string{"mp2.c": src})
	rep := NewAnalyzer(files).Run()
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %d", len(rep.Findings))
	}
	if rep.Findings[0].Vulnerable() {
		t.Errorf("whole-page mapping flagged: %+v", rep.Findings[0])
	}
}
