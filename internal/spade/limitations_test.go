package spade

import (
	"testing"
)

// The paper's §4.3 documents SPADE's limitations. These tests pin them down
// so the behaviour is explicit rather than accidental.

// §4.3: "False positives may happen in the rare situation where the mapped
// data structure crosses a page boundary. In this case, SPADE may flag a
// callback function that may not be exposed, since it resides on a different
// page." Our SPADE has the same property: it reports struct-level exposure
// without page-boundary reasoning.
func TestKnownFalsePositivePageCrossingStruct(t *testing.T) {
	src := `
struct huge_cmd {
	char payload[8000];
	void (*done)(struct request *);
};

static int map_head(struct device *dev, struct huge_cmd *c)
{
	dma_addr_t dma;
	dma = dma_map_single(dev, &c->payload, 64, DMA_FROM_DEVICE);
	return 0;
}
`
	files := parseFiles(t, map[string]string{"huge.c": src})
	rep := NewAnalyzer(files).Run()
	f := rep.Findings[0]
	// The struct is 8008+ bytes: the callback at offset 8000 may be two
	// pages away from the mapped head. SPADE still flags it — the known
	// false positive.
	if !f.CallbacksExposed() {
		t.Fatal("expected the documented false positive (struct-level flagging)")
	}
	db := NewLayoutDB(files)
	off, err := db.FieldOffset("huge_cmd", "done")
	if err != nil {
		t.Fatal(err)
	}
	if off < 4096 {
		t.Fatalf("test setup broken: callback at offset %d not past a page", off)
	}
}

// §4.3: "SPADE ... may fail to follow a mapped variable due to complex code
// constructs such as function pointers, macros, and others, potentially
// resulting in a false-negative result." Calling the mapper through a
// function pointer hides the call site.
func TestKnownFalseNegativeIndirectCall(t *testing.T) {
	src := `
struct cb_cmd {
	void (*done)(struct request *);
	char buf[64];
};

struct mapper_ops {
	void (*do_map)(struct device *, void *, int);
};

static int map_via_ops(struct device *dev, struct mapper_ops *ops, struct cb_cmd *c)
{
	ops->do_map(dev, &c->buf, 64);
	return 0;
}
`
	files := parseFiles(t, map[string]string{"indirect.c": src})
	rep := NewAnalyzer(files).Run()
	// The dma_map_single call is behind the function pointer: SPADE sees no
	// dma-map call site at all — the documented false negative.
	if len(rep.Findings) != 0 {
		t.Fatalf("expected zero findings (false negative), got %d", len(rep.Findings))
	}
}

// A mapped variable reassigned through an untracked helper also drops the
// trail without crashing.
func TestUnknownAllocatorIsConservative(t *testing.T) {
	src := `
static int map_custom(struct device *dev)
{
	void *buf;
	dma_addr_t dma;
	buf = my_custom_pool_alloc(512);
	dma = dma_map_single(dev, buf, 512, DMA_TO_DEVICE);
	return 0;
}
`
	files := parseFiles(t, map[string]string{"custom.c": src})
	rep := NewAnalyzer(files).Run()
	if len(rep.Findings) != 1 {
		t.Fatal("call site lost")
	}
	if rep.Findings[0].Vulnerable() {
		t.Error("unknown allocator flagged without evidence")
	}
}
