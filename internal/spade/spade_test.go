package spade

import (
	"strings"
	"testing"

	"dmafault/internal/cminor"
)

func parseFiles(t *testing.T, sources map[string]string) []*cminor.File {
	t.Helper()
	var out []*cminor.File
	for name, src := range sources {
		f, err := cminor.Parse(name, src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out = append(out, f)
	}
	return out
}

const layoutSrc = `
struct ops {
	void (*open)(struct dev *);
	void (*close)(struct dev *);
	int flags;
};

struct inner {
	u16 a;
	void (*cb)(int);
};

struct outer {
	char tag;
	u64 big;
	struct inner in;
	struct ops *ops;
	char buf[100];
	struct outer *next;
};
`

func TestLayoutDB(t *testing.T) {
	files := parseFiles(t, map[string]string{"layout.c": layoutSrc})
	db := NewLayoutDB(files)
	l, err := db.Layout("outer")
	if err != nil {
		t.Fatal(err)
	}
	// char tag @0; u64 big @8; struct inner (u16 + pad + fptr = 16, align 8)
	// @16; ops* @32; buf[100] @40; next @144 (aligned); size 152.
	wantOffsets := map[string]uint64{"tag": 0, "big": 8, "in": 16, "ops": 32, "buf": 40, "next": 144}
	for name, want := range wantOffsets {
		got, err := db.FieldOffset("outer", name)
		if err != nil {
			t.Fatalf("offset %s: %v", name, err)
		}
		if got != want {
			t.Errorf("offset of %s = %d, want %d", name, got, want)
		}
	}
	if l.Size != 152 {
		t.Errorf("sizeof(outer) = %d, want 152", l.Size)
	}
	inner, _ := db.Layout("inner")
	if inner.Size != 16 || inner.Align != 8 {
		t.Errorf("inner layout = %+v", inner)
	}
	if _, err := db.Layout("nonexistent"); err == nil {
		t.Error("unknown struct accepted")
	}
	if _, err := db.FieldOffset("outer", "missing"); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestCallbackCounting(t *testing.T) {
	files := parseFiles(t, map[string]string{"layout.c": layoutSrc})
	db := NewLayoutDB(files)
	// Direct: inner.cb is embedded in outer → 1 direct.
	if got := db.DirectCallbacks("outer"); got != 1 {
		t.Errorf("DirectCallbacks(outer) = %d, want 1", got)
	}
	if got := db.DirectCallbacks("ops"); got != 2 {
		t.Errorf("DirectCallbacks(ops) = %d, want 2", got)
	}
	// Spoofable: outer->ops (2 callbacks); outer->next is cyclic (counted
	// once, contributes its ops via the visited set? next is outer itself —
	// already visited → 0 extra).
	if got := db.SpoofableCallbacks("outer"); got != 2 {
		t.Errorf("SpoofableCallbacks(outer) = %d, want 2", got)
	}
}

func TestRecursiveEmbeddingRejected(t *testing.T) {
	src := `
struct a { struct b bb; };
struct b { struct a aa; };
`
	files := parseFiles(t, map[string]string{"rec.c": src})
	db := NewLayoutDB(files)
	if _, err := db.Layout("a"); err == nil {
		t.Error("recursive embedding accepted")
	}
}

const driversSrc = `
struct req_ops {
	void (*complete)(struct request *);
	void (*abort)(struct request *);
};

struct fcp_op {
	struct req_ops *ops;
	void (*done)(struct request *);
	char rsp_iu[128];
	dma_addr_t dma;
};

struct plain_ctx {
	u32 a;
	u32 b;
};

static int map_embedded(struct device *dev, struct fcp_op *op)
{
	op->dma = dma_map_single(dev, &op->rsp_iu, sizeof(op->rsp_iu), DMA_FROM_DEVICE);
	return 0;
}

static int rx_fill_frag(struct device *dev)
{
	struct sk_buff *skb;
	skb = netdev_alloc_skb(dev, 2048);
	if (!skb)
		return -1;
	dma_map_single(dev, skb->data, 2048, DMA_FROM_DEVICE);
	return 0;
}

static int rx_fill_kmalloc_skb(struct device *dev)
{
	struct sk_buff *skb;
	skb = alloc_skb(2048, GFP_ATOMIC);
	dma_map_single(dev, skb->data, 2048, DMA_FROM_DEVICE);
	return 0;
}

static int rx_build(struct device *dev)
{
	void *buf;
	struct sk_buff *skb;
	buf = netdev_alloc_frag(2048);
	dma_map_single(dev, buf, 2048, DMA_FROM_DEVICE);
	skb = build_skb(buf, 2048);
	return 0;
}

static int map_stack(struct device *dev)
{
	char cmd[64];
	dma_map_single(dev, cmd, sizeof(cmd), DMA_TO_DEVICE);
	return 0;
}

static int map_priv(struct device *dev, struct net_device *nd)
{
	dma_map_single(dev, netdev_priv(nd), 512, DMA_BIDIRECTIONAL);
	return 0;
}

static int map_plain(struct device *dev)
{
	char *buf;
	buf = kmalloc(512, GFP_KERNEL);
	dma_map_single(dev, buf, 512, DMA_TO_DEVICE);
	return 0;
}

static int map_whole_struct(struct device *dev)
{
	struct plain_ctx *ctx;
	struct fcp_op *op;
	ctx = kzalloc(sizeof(struct plain_ctx), GFP_KERNEL);
	dma_map_single(dev, ctx, sizeof(struct plain_ctx), DMA_TO_DEVICE);
	op = kzalloc(sizeof(*op), GFP_KERNEL);
	dma_map_single(dev, op, sizeof(*op), DMA_BIDIRECTIONAL);
	return 0;
}
`

const helperSrc = `
static int do_map(struct device *dev, void *p, int len)
{
	dma_map_single(dev, p, len, DMA_TO_DEVICE);
	return 0;
}

static int caller_one(struct device *dev, struct fcp_op *op)
{
	do_map(dev, &op->rsp_iu, 128);
	return 0;
}
`

func analyze(t *testing.T) *Report {
	t.Helper()
	files := parseFiles(t, map[string]string{
		"drivers/a.c": driversSrc,
		"drivers/b.c": helperSrc,
	})
	return NewAnalyzer(files).Run()
}

func findingIn(rep *Report, fnName string) *Finding {
	for _, f := range rep.Findings {
		if f.Func == fnName {
			return f
		}
	}
	return nil
}

func TestTypeAEmbeddedStruct(t *testing.T) {
	rep := analyze(t)
	f := findingIn(rep, "map_embedded")
	if f == nil {
		t.Fatal("no finding for map_embedded")
	}
	if !f.Types[TypeA] || f.ExposedStruct != "fcp_op" {
		t.Fatalf("finding = %+v", f)
	}
	if f.DirectCallbacks != 1 {
		t.Errorf("direct callbacks = %d, want 1 (done)", f.DirectCallbacks)
	}
	if f.SpoofableCallbacks != 2 {
		t.Errorf("spoofable = %d, want 2 (req_ops)", f.SpoofableCallbacks)
	}
	if !f.Vulnerable() || !f.CallbacksExposed() {
		t.Error("not flagged vulnerable")
	}
}

func TestTypeBAndCSkbData(t *testing.T) {
	rep := analyze(t)
	frag := findingIn(rep, "rx_fill_frag")
	if frag == nil || !frag.SkbSharedInfo || !frag.Types[TypeB] || !frag.Types[TypeC] {
		t.Fatalf("netdev_alloc_skb finding = %+v", frag)
	}
	km := findingIn(rep, "rx_fill_kmalloc_skb")
	if km == nil || !km.SkbSharedInfo || km.Types[TypeC] {
		t.Fatalf("alloc_skb finding = %+v", km)
	}
}

func TestBuildSkb(t *testing.T) {
	rep := analyze(t)
	f := findingIn(rep, "rx_build")
	if f == nil || !f.BuildSkb || !f.SkbSharedInfo || !f.Types[TypeC] || !f.Types[TypeB] {
		t.Fatalf("build_skb finding = %+v", f)
	}
}

func TestStackMapped(t *testing.T) {
	rep := analyze(t)
	f := findingIn(rep, "map_stack")
	if f == nil || !f.StackMapped {
		t.Fatalf("stack finding = %+v", f)
	}
}

func TestPrivateData(t *testing.T) {
	rep := analyze(t)
	f := findingIn(rep, "map_priv")
	if f == nil || !f.PrivateData {
		t.Fatalf("private finding = %+v", f)
	}
}

func TestPlainKmallocIsNotVulnerable(t *testing.T) {
	rep := analyze(t)
	f := findingIn(rep, "map_plain")
	if f == nil {
		t.Fatal("no finding")
	}
	if f.Vulnerable() {
		t.Errorf("plain kmalloc buffer flagged vulnerable: %+v", f)
	}
}

func TestWholeStructKmalloc(t *testing.T) {
	rep := analyze(t)
	var plainCtx, fcp *Finding
	for _, f := range rep.Findings {
		if f.Func != "map_whole_struct" {
			continue
		}
		switch f.ExposedStruct {
		case "plain_ctx":
			plainCtx = f
		case "fcp_op":
			fcp = f
		}
	}
	if plainCtx == nil || plainCtx.CallbacksExposed() {
		t.Errorf("plain_ctx finding = %+v", plainCtx)
	}
	if fcp == nil || fcp.DirectCallbacks != 1 {
		t.Errorf("sizeof(*op) finding = %+v", fcp)
	}
}

func TestParameterBacktracking(t *testing.T) {
	rep := analyze(t)
	f := findingIn(rep, "do_map")
	if f == nil {
		t.Fatal("no finding for helper")
	}
	if f.ExposedStruct != "fcp_op" || !f.Types[TypeA] {
		t.Fatalf("backtracked finding = %+v", f)
	}
	joined := strings.Join(f.Trace, "\n")
	if !strings.Contains(joined, "caller_one") {
		t.Errorf("trace lacks caller: %s", joined)
	}
}

func TestReportAggregation(t *testing.T) {
	rep := analyze(t)
	if rep.TotalCalls != 10 {
		t.Errorf("TotalCalls = %d, want 10", rep.TotalCalls)
	}
	if rep.TotalFiles != 2 {
		t.Errorf("TotalFiles = %d", rep.TotalFiles)
	}
	// callbacks exposed: map_embedded, map_whole_struct(op), do_map → 3.
	if rep.CallbacksExposed.Calls != 3 {
		t.Errorf("CallbacksExposed = %+v", rep.CallbacksExposed)
	}
	if rep.SkbSharedInfoMapped.Calls != 3 {
		t.Errorf("SkbSharedInfoMapped = %+v", rep.SkbSharedInfoMapped)
	}
	if rep.TypeCVulnerable.Calls != 2 {
		t.Errorf("TypeCVulnerable = %+v", rep.TypeCVulnerable)
	}
	if rep.StackMapped.Calls != 1 || rep.PrivateDataMapped.Calls != 1 || rep.BuildSkbUsed.Calls != 1 {
		t.Errorf("rows: stack %+v priv %+v build %+v", rep.StackMapped, rep.PrivateDataMapped, rep.BuildSkbUsed)
	}
	table := rep.Table()
	for _, want := range []string{"Callbacks exposed", "skb_shared_info mapped", "build_skb used", "Total dma-map calls"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestTraceFormat(t *testing.T) {
	rep := analyze(t)
	out := rep.TraceFor("drivers/a.c")
	if !strings.Contains(out, "[1]") || !strings.Contains(out, "callback pointer") {
		t.Errorf("trace format:\n%s", out)
	}
	if rep.TraceFor("missing.c") == "" {
		t.Error("empty trace for unknown file")
	}
	f := findingIn(rep, "map_plain")
	if !strings.Contains(f.Format(), "no exposure detected") {
		t.Errorf("plain format: %s", f.Format())
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := analyze(t).Table()
	b := analyze(t).Table()
	if a != b {
		t.Error("analysis not deterministic")
	}
}

func TestMaxDepthLimitsBacktracking(t *testing.T) {
	files := parseFiles(t, map[string]string{
		"deep.c": `
struct cbstruct { void (*go)(int); char body[64]; };
static void lvl0(struct device *dev, void *p) { dma_map_single(dev, p, 64, DMA_TO_DEVICE); }
static void lvl1(struct device *dev, void *p) { lvl0(dev, p); }
static void lvl2(struct device *dev, void *p) { lvl1(dev, p); }
static void lvl3(struct device *dev, struct cbstruct *c) { lvl2(dev, &c->body); }
`,
	})
	an := NewAnalyzer(files)
	an.MaxDepth = 1
	rep := an.Run()
	f := rep.Findings[0]
	if f.CallbacksExposed() {
		t.Error("depth-1 analysis should not reach lvl3 (false negative by design)")
	}
	an2 := NewAnalyzer(files)
	an2.MaxDepth = 8
	rep2 := an2.Run()
	if !rep2.Findings[0].CallbacksExposed() {
		t.Errorf("depth-8 analysis missed the exposure: %+v", rep2.Findings[0])
	}
}
