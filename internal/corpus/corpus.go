// Package corpus generates the synthetic driver-source population SPADE is
// evaluated on. We cannot ship the Linux 5.0 tree, so the generator emits a
// corpus whose *composition* is calibrated to what the paper measured on
// Linux 5.0 (Table 2): 1019 dma_map_single calls across 447 files, with the
// paper's per-idiom rates — embedded-struct mappings exposing callbacks,
// skb->data and build_skb mappings exposing skb_shared_info, page_frag
// allocation (type (c)), driver-private-data mappings, stack mappings, and
// plain kmalloc buffers for the non-vulnerable remainder.
//
// The generator is deterministic; running SPADE on the corpus regenerates
// Table 2 exactly (the paper's absolute numbers, our sources).
package corpus

import "fmt"

// SourceFile is one generated C file.
type SourceFile struct {
	Name    string
	Content string
}

// Spec fixes the corpus composition. Calls are per idiom; files receive a
// deterministic share.
type Spec struct {
	EmbedFiles, EmbedCalls     int // type (a): &struct->field, direct callback
	SpoofFiles, SpoofCalls     int // type (a): callbacks reachable via struct pointers only
	SkbFragFiles, SkbFragCalls int // skb->data from netdev_alloc_skb (B+C)
	SkbKmFiles, SkbKmCalls     int // skb->data from alloc_skb (B)
	BuildFiles, BuildCalls     int // build_skb over netdev_alloc_frag (B+C+build)
	FragFiles, FragCalls       int // raw netdev_alloc_frag buffer (C)
	PrivFiles, PrivCalls       int // netdev_priv mapping
	StackFiles, StackCalls     int // stack array mapping
	PlainFiles, PlainCalls     int // plain kmalloc buffer (not vulnerable)
}

// Linux50 is the Table 2 calibration: every row of the paper's table falls
// out of this composition (54+102 callback calls in 28+29 files; 464
// skb_shared_info calls in 232 files; 344 type (c) calls in 227 files; 46
// build_skb calls in 40 files; 19/7 private; 3/3 stack; 1019/447 total;
// 742 = 72.8% potentially vulnerable).
var Linux50 = Spec{
	EmbedFiles: 28, EmbedCalls: 54,
	SpoofFiles: 29, SpoofCalls: 102,
	SkbFragFiles: 142, SkbFragCalls: 198,
	SkbKmFiles: 50, SkbKmCalls: 220,
	BuildFiles: 40, BuildCalls: 46,
	FragFiles: 45, FragCalls: 100,
	PrivFiles: 7, PrivCalls: 19,
	StackFiles: 3, StackCalls: 3,
	PlainFiles: 103, PlainCalls: 277,
}

// TotalFiles returns the file count of the spec.
func (s Spec) TotalFiles() int {
	return s.EmbedFiles + s.SpoofFiles + s.SkbFragFiles + s.SkbKmFiles +
		s.BuildFiles + s.FragFiles + s.PrivFiles + s.StackFiles + s.PlainFiles
}

// TotalCalls returns the dma-map call count of the spec.
func (s Spec) TotalCalls() int {
	return s.EmbedCalls + s.SpoofCalls + s.SkbFragCalls + s.SkbKmCalls +
		s.BuildCalls + s.FragCalls + s.PrivCalls + s.StackCalls + s.PlainCalls
}

// Generate emits the corpus for a spec.
func Generate(spec Spec) []SourceFile {
	var out []SourceFile
	emit := func(group string, files, calls int, gen func(tag string, n int) string) {
		per := distribute(calls, files)
		for i := 0; i < files; i++ {
			tag := fmt.Sprintf("%s%03d", group, i)
			name := fmt.Sprintf("drivers/%s/%s.c", dirFor(group), tag)
			out = append(out, SourceFile{Name: name, Content: gen(tag, per[i])})
		}
	}
	emit("embed", spec.EmbedFiles, spec.EmbedCalls, genEmbed)
	emit("spoof", spec.SpoofFiles, spec.SpoofCalls, genSpoof)
	emit("skbf", spec.SkbFragFiles, spec.SkbFragCalls, genSkbFrag)
	emit("skbk", spec.SkbKmFiles, spec.SkbKmCalls, genSkbKmalloc)
	emit("bskb", spec.BuildFiles, spec.BuildCalls, genBuildSkb)
	emit("frag", spec.FragFiles, spec.FragCalls, genFrag)
	emit("priv", spec.PrivFiles, spec.PrivCalls, genPriv)
	emit("stk", spec.StackFiles, spec.StackCalls, genStack)
	emit("plain", spec.PlainFiles, spec.PlainCalls, genPlain)
	return out
}

// distribute splits calls over files as evenly as possible (first files get
// the remainder), never zero.
func distribute(calls, files int) []int {
	out := make([]int, files)
	if files == 0 {
		return out
	}
	base := calls / files
	rem := calls % files
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

func dirFor(group string) string {
	switch group {
	case "embed", "spoof", "priv":
		return "scsi"
	case "stk":
		return "firewire"
	case "plain":
		return "misc"
	default:
		return "net/ethernet"
	}
}

// genEmbed: a command struct with one direct callback and an ops pointer,
// whose sub-buffer is DMA-mapped — the nvme_fc pattern of Fig. 2.
func genEmbed(tag string, n int) string {
	src := fmt.Sprintf(`
struct %[1]s_ops {
	void (*start_request)(struct request *);
	void (*abort_request)(struct request *);
	void (*timeout)(struct request *);
};

struct %[1]s_cmd {
	struct %[1]s_ops *ops;
	void (*done)(struct request *);
	char rsp_iu[128];
	char cmd_iu[64];
	dma_addr_t rsp_dma;
	u32 flags;
};
`, tag)
	for i := 0; i < n; i++ {
		field := "rsp_iu"
		if i%2 == 1 {
			field = "cmd_iu"
		}
		if i%2 == 1 {
			// The indirect idiom: the mapping goes through a prep helper,
			// as real drivers often factor it. SPADE must backtrack the
			// helper's parameter to its caller (depth ≥ 1) to see the
			// exposure — the D4 ablation target.
			src += fmt.Sprintf(`
static int %[1]s_prep_%[2]d(struct device *dev, void *p, int len)
{
	dma_addr_t dma;
	dma = dma_map_single(dev, p, len, DMA_FROM_DEVICE);
	if (!dma)
		return -1;
	return 0;
}

static int %[1]s_map_%[2]d(struct device *dev, struct %[1]s_cmd *cmd)
{
	return %[1]s_prep_%[2]d(dev, &cmd->%[3]s, sizeof(cmd->%[3]s));
}
`, tag, i, field)
			continue
		}
		src += fmt.Sprintf(`
static int %[1]s_map_%[2]d(struct device *dev, struct %[1]s_cmd *cmd)
{
	cmd->rsp_dma = dma_map_single(dev, &cmd->%[3]s, sizeof(cmd->%[3]s), DMA_FROM_DEVICE);
	if (!cmd->rsp_dma)
		return -1;
	return 0;
}
`, tag, i, field)
	}
	return src
}

// genSpoof: the struct exposes no function pointer directly, but carries a
// pointer to an ops table the device can redirect.
func genSpoof(tag string, n int) string {
	src := fmt.Sprintf(`
struct %[1]s_handlers {
	void (*rx_done)(struct sk_buff *);
	void (*tx_done)(struct sk_buff *);
	void (*error)(int);
	int budget;
};

struct %[1]s_desc {
	struct %[1]s_handlers *h;
	char payload[512];
	dma_addr_t addr;
	u32 len;
};
`, tag)
	for i := 0; i < n; i++ {
		src += fmt.Sprintf(`
static int %[1]s_post_%[2]d(struct device *dev, struct %[1]s_desc *d)
{
	d->addr = dma_map_single(dev, &d->payload, sizeof(d->payload), DMA_BIDIRECTIONAL);
	return 0;
}
`, tag, i)
	}
	return src
}

// genSkbFrag: the ubiquitous netdev_alloc_skb + map skb->data RX refill.
func genSkbFrag(tag string, n int) string {
	src := ""
	for i := 0; i < n; i++ {
		src += fmt.Sprintf(`
static int %[1]s_rx_refill_%[2]d(struct device *dev)
{
	struct sk_buff *skb;
	dma_addr_t dma;
	skb = netdev_alloc_skb(dev, 2048);
	if (!skb)
		return -1;
	dma = dma_map_single(dev, skb->data, 2048, DMA_FROM_DEVICE);
	return 0;
}
`, tag, i)
	}
	return src
}

// genSkbKmalloc: alloc_skb-backed heads (no page_frag).
func genSkbKmalloc(tag string, n int) string {
	src := ""
	for i := 0; i < n; i++ {
		src += fmt.Sprintf(`
static int %[1]s_xmit_%[2]d(struct device *dev)
{
	struct sk_buff *skb;
	dma_addr_t dma;
	skb = alloc_skb(1514, GFP_ATOMIC);
	if (!skb)
		return -1;
	dma = dma_map_single(dev, skb->data, 1514, DMA_TO_DEVICE);
	return 0;
}
`, tag, i)
	}
	return src
}

// genBuildSkb: raw page_frag buffer mapped, then wrapped with build_skb —
// the §9.1 API that embeds skb_shared_info in the I/O region.
func genBuildSkb(tag string, n int) string {
	src := ""
	for i := 0; i < n; i++ {
		src += fmt.Sprintf(`
static int %[1]s_rx_build_%[2]d(struct device *dev)
{
	void *buf;
	struct sk_buff *skb;
	dma_addr_t dma;
	buf = netdev_alloc_frag(2048);
	if (!buf)
		return -1;
	dma = dma_map_single(dev, buf, 2048, DMA_FROM_DEVICE);
	skb = build_skb(buf, 2048);
	if (!skb)
		return -1;
	return 0;
}
`, tag, i)
	}
	return src
}

// genFrag: raw page_frag buffers without an skb (descriptor rings, etc.).
func genFrag(tag string, n int) string {
	src := ""
	for i := 0; i < n; i++ {
		src += fmt.Sprintf(`
static int %[1]s_ring_fill_%[2]d(struct device *dev)
{
	void *buf;
	dma_addr_t dma;
	buf = netdev_alloc_frag(1024);
	if (!buf)
		return -1;
	dma = dma_map_single(dev, buf, 1024, DMA_FROM_DEVICE);
	return 0;
}
`, tag, i)
	}
	return src
}

// genPriv: netdev_priv areas mapped for device stats/admin blocks.
func genPriv(tag string, n int) string {
	src := ""
	for i := 0; i < n; i++ {
		src += fmt.Sprintf(`
static int %[1]s_init_stats_%[2]d(struct device *dev, struct net_device *nd)
{
	dma_addr_t dma;
	dma = dma_map_single(dev, netdev_priv(nd), 512, DMA_BIDIRECTIONAL);
	return 0;
}
`, tag, i)
	}
	return src
}

// genStack: the three stack-buffer mappings the paper found.
func genStack(tag string, n int) string {
	src := ""
	for i := 0; i < n; i++ {
		src += fmt.Sprintf(`
static int %[1]s_fw_command_%[2]d(struct device *dev)
{
	char cmd[64];
	dma_addr_t dma;
	dma = dma_map_single(dev, cmd, sizeof(cmd), DMA_TO_DEVICE);
	return 0;
}
`, tag, i)
	}
	return src
}

// genPlain: kmalloc'd flat buffers — statically clean (their risk is the
// dynamic type (d) co-location D-KASAN finds).
func genPlain(tag string, n int) string {
	src := ""
	for i := 0; i < n; i++ {
		src += fmt.Sprintf(`
static int %[1]s_dma_buf_%[2]d(struct device *dev)
{
	char *buf;
	dma_addr_t dma;
	buf = kmalloc(512, GFP_KERNEL);
	if (!buf)
		return -1;
	dma = dma_map_single(dev, buf, 512, DMA_TO_DEVICE);
	return 0;
}
`, tag, i)
	}
	return src
}
