package corpus

import (
	"strings"
	"testing"

	"dmafault/internal/cminor"
	"dmafault/internal/spade"
)

func TestSpecTotalsMatchTable2(t *testing.T) {
	if got := Linux50.TotalFiles(); got != 447 {
		t.Errorf("TotalFiles = %d, want 447", got)
	}
	if got := Linux50.TotalCalls(); got != 1019 {
		t.Errorf("TotalCalls = %d, want 1019", got)
	}
}

func TestDistribute(t *testing.T) {
	d := distribute(10, 3)
	if d[0]+d[1]+d[2] != 10 || d[0] != 4 || d[2] != 3 {
		t.Errorf("distribute = %v", d)
	}
	if len(distribute(5, 0)) != 0 {
		t.Error("zero files")
	}
}

func TestGeneratedCorpusParses(t *testing.T) {
	files := Generate(Linux50)
	if len(files) != 447 {
		t.Fatalf("generated %d files", len(files))
	}
	names := map[string]bool{}
	for _, sf := range files {
		if names[sf.Name] {
			t.Fatalf("duplicate file name %s", sf.Name)
		}
		names[sf.Name] = true
		if _, err := cminor.Parse(sf.Name, sf.Content); err != nil {
			t.Fatalf("%s does not parse: %v", sf.Name, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Linux50)
	b := Generate(Linux50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("file %d differs between runs", i)
		}
	}
}

// TestSpadeOnCorpusReproducesTable2 is the headline static-analysis
// experiment: running our SPADE on the calibrated corpus regenerates every
// row of the paper's Table 2.
func TestSpadeOnCorpusReproducesTable2(t *testing.T) {
	var parsed []*cminor.File
	for _, sf := range Generate(Linux50) {
		f, err := cminor.Parse(sf.Name, sf.Content)
		if err != nil {
			t.Fatal(err)
		}
		parsed = append(parsed, f)
	}
	rep := spade.NewAnalyzer(parsed).Run()

	check := func(name string, got spade.RowCount, wantCalls, wantFiles int) {
		if got.Calls != wantCalls || got.Files != wantFiles {
			t.Errorf("%s = %d/%d, want %d/%d", name, got.Calls, got.Files, wantCalls, wantFiles)
		}
	}
	check("Callbacks exposed", rep.CallbacksExposed, 156, 57)
	check("skb_shared_info mapped", rep.SkbSharedInfoMapped, 464, 232)
	check("Callbacks exposed directly", rep.CallbacksDirect, 54, 28)
	check("Private data mapped", rep.PrivateDataMapped, 19, 7)
	check("Stack mapped", rep.StackMapped, 3, 3)
	check("Type C vulnerability", rep.TypeCVulnerable, 344, 227)
	check("build_skb used", rep.BuildSkbUsed, 46, 40)
	if rep.TotalCalls != 1019 || rep.TotalFiles != 447 {
		t.Errorf("totals = %d/%d, want 1019/447", rep.TotalCalls, rep.TotalFiles)
	}
	if rep.VulnerableCalls != 742 {
		t.Errorf("vulnerable = %d, want 742 (72.8%%)", rep.VulnerableCalls)
	}
	t.Log("\n" + rep.Table())
}

func TestCuratedNvmeFCTrace(t *testing.T) {
	f, err := cminor.Parse("drivers/nvme/host/fc.c", NvmeFC)
	if err != nil {
		t.Fatal(err)
	}
	rep := spade.NewAnalyzer([]*cminor.File{f}).Run()
	if len(rep.Findings) != 2 {
		t.Fatalf("findings = %d", len(rep.Findings))
	}
	var rsp *spade.Finding
	for _, fd := range rep.Findings {
		if strings.Contains(fd.MappedAs, "rsp_iu") {
			rsp = fd
		}
	}
	if rsp == nil {
		t.Fatal("no rsp_iu finding")
	}
	if rsp.ExposedStruct != "nvme_fc_fcp_op" {
		t.Errorf("exposed = %s", rsp.ExposedStruct)
	}
	// Fig. 2: exactly one callback pointer mapped directly (fcp_req.done).
	if rsp.DirectCallbacks != 1 {
		t.Errorf("direct = %d, want 1", rsp.DirectCallbacks)
	}
	// And a large spoofable population via ctrl->lport_ops etc.
	if rsp.SpoofableCallbacks < 9 {
		t.Errorf("spoofable = %d, want >= 9", rsp.SpoofableCallbacks)
	}
	out := rsp.Format()
	for _, want := range []string{"rsp_iu", "nvme_fc_fcp_op", "callback pointer(s) mapped", "can be spoofed", "A (driver metadata)"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	t.Log("\n" + out)
}

func TestCuratedI40EParses(t *testing.T) {
	f, err := cminor.Parse("i40e.c", I40E)
	if err != nil {
		t.Fatal(err)
	}
	rep := spade.NewAnalyzer([]*cminor.File{f}).Run()
	found := false
	for _, fd := range rep.Findings {
		if fd.BuildSkb || fd.Types[spade.TypeC] {
			found = true
		}
	}
	if !found {
		t.Error("i40e pattern not flagged")
	}
}
