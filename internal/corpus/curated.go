package corpus

// Curated driver sources, hand-written to mirror specific code the paper
// discusses: the nvme_fc host driver whose SPADE trace is Fig. 2, and an
// i40e-style RX path (create sk_buff before unmap, Fig. 7(i)).

// NvmeFC mirrors the drivers/nvme/host/fc.c pattern of Fig. 2: the driver
// maps &op->rsp_iu with dma_map_single, exposing struct nvme_fc_fcp_op —
// which holds the fcp_req.done callback directly plus ops tables reachable
// through its pointers (the "spoofable" population).
const NvmeFC = `
struct nvmefc_fcp_req {
	void *cmdaddr;
	void *rspaddr;
	u32 cmdlen;
	u32 rsplen;
	void (*done)(struct nvmefc_fcp_req *);
};

struct nvme_fc_ops {
	void (*localport_delete)(struct nvme_fc_local_port *);
	void (*remoteport_delete)(struct nvme_fc_remote_port *);
	int (*create_queue)(struct nvme_fc_local_port *, unsigned int, u16);
	void (*delete_queue)(struct nvme_fc_local_port *, unsigned int, void *);
	int (*ls_req)(struct nvme_fc_local_port *, struct nvme_fc_remote_port *, struct nvmefc_ls_req *);
	int (*fcp_io)(struct nvme_fc_local_port *, struct nvme_fc_remote_port *, void *, struct nvmefc_fcp_req *);
	void (*ls_abort)(struct nvme_fc_local_port *, struct nvme_fc_remote_port *, struct nvmefc_ls_req *);
	void (*fcp_abort)(struct nvme_fc_local_port *, struct nvme_fc_remote_port *, void *, struct nvmefc_fcp_req *);
	void (*map_queues)(struct nvme_fc_local_port *, struct blk_mq_queue_map *);
};

struct nvme_fc_ctrl {
	struct nvme_fc_ops *lport_ops;
	struct device *dev;
	u32 cnum;
};

struct nvme_fc_fcp_op {
	struct nvme_fc_ctrl *ctrl;
	struct request *rq;
	struct nvmefc_fcp_req fcp_req;
	char rsp_iu[128];
	char cmd_iu[128];
	dma_addr_t fcp_req_dma;
	dma_addr_t rsp_dma;
	u16 queue_idx;
};

static int __nvme_fc_init_request(struct device *dev, struct nvme_fc_fcp_op *op)
{
	op->fcp_req_dma = dma_map_single(dev, &op->cmd_iu, sizeof(op->cmd_iu), DMA_TO_DEVICE);
	if (!op->fcp_req_dma)
		return -1;
	op->rsp_dma = dma_map_single(dev, &op->rsp_iu, sizeof(op->rsp_iu), DMA_FROM_DEVICE);
	if (!op->rsp_dma)
		return -1;
	return 0;
}
`

// I40E mirrors the Intel 40GbE RX path ordering of Fig. 7(i): the sk_buff
// (and its skb_shared_info) is created with build_skb while the buffer is
// still DMA-mapped; the unmap comes after.
const I40E = `
static int i40e_alloc_rx_buffers(struct device *dev)
{
	void *va;
	dma_addr_t dma;
	va = netdev_alloc_frag(2048);
	if (!va)
		return -1;
	dma = dma_map_single(dev, va, 2048, DMA_FROM_DEVICE);
	return 0;
}

static int i40e_clean_rx_irq(struct device *dev, void *va, dma_addr_t dma)
{
	struct sk_buff *skb;
	skb = build_skb(va, 2048);
	if (!skb)
		return -1;
	dma_unmap_single(dev, dma, 2048, DMA_FROM_DEVICE);
	return 0;
}
`

// BNX2X mirrors the Broadcom bnx2x HW-LRO configuration mentioned in §5.3:
// large aggregation buffers, plus an embedded-struct mapping of its
// firmware command block whose ops table is spoofable.
const BNX2X = `
struct bnx2x_func_ops {
	void (*init_hw)(struct bnx2x *);
	void (*reset_hw)(struct bnx2x *);
	void (*release_hw)(struct bnx2x *);
	int (*start_xmit)(struct sk_buff *, struct net_device *);
};

struct bnx2x_fw_cmd {
	struct bnx2x_func_ops *ops;
	char ramrod_data[256];
	dma_addr_t mapping;
	u32 state;
};

static int bnx2x_alloc_rx_sge(struct device *dev)
{
	struct sk_buff *skb;
	dma_addr_t dma;
	skb = netdev_alloc_skb(dev, 2048);
	if (!skb)
		return -1;
	dma = dma_map_single(dev, skb->data, 2048, DMA_FROM_DEVICE);
	return 0;
}

static int bnx2x_post_ramrod(struct device *dev, struct bnx2x_fw_cmd *cmd)
{
	cmd->mapping = dma_map_single(dev, &cmd->ramrod_data, sizeof(cmd->ramrod_data), DMA_BIDIRECTIONAL);
	return 0;
}
`

// RTL8139 mirrors the legacy copybreak style: the driver maps a kmalloc'd
// staging buffer and copies packets out — the "plain" population whose risk
// is type (d) co-location (D-KASAN's domain, invisible to SPADE).
const RTL8139 = `
static int rtl8139_init_ring(struct device *dev)
{
	char *rx_ring;
	dma_addr_t dma;
	rx_ring = kmalloc(8192, GFP_KERNEL);
	if (!rx_ring)
		return -1;
	dma = dma_map_single(dev, rx_ring, 8192, DMA_FROM_DEVICE);
	return 0;
}

static int rtl8139_start_xmit(struct device *dev, struct sk_buff *skb)
{
	dma_addr_t dma;
	dma = dma_map_single(dev, skb->data, 1514, DMA_TO_DEVICE);
	return 0;
}
`

// Curated returns the hand-written sources (analyzed separately from the
// calibrated Table 2 population).
func Curated() []SourceFile {
	return []SourceFile{
		{Name: "drivers/nvme/host/fc.c", Content: NvmeFC},
		{Name: "drivers/net/ethernet/intel/i40e/i40e_txrx.c", Content: I40E},
		{Name: "drivers/net/ethernet/broadcom/bnx2x/bnx2x_cmn.c", Content: BNX2X},
		{Name: "drivers/net/ethernet/realtek/8139too.c", Content: RTL8139},
	}
}
