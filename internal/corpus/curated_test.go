package corpus

import (
	"testing"

	"dmafault/internal/cminor"
	"dmafault/internal/spade"
)

func analyzeCurated(t *testing.T) *spade.Report {
	t.Helper()
	var parsed []*cminor.File
	for _, sf := range Curated() {
		f, err := cminor.Parse(sf.Name, sf.Content)
		if err != nil {
			t.Fatalf("%s: %v", sf.Name, err)
		}
		parsed = append(parsed, f)
	}
	return spade.NewAnalyzer(parsed).Run()
}

func TestCuratedSetParsesAndAnalyzes(t *testing.T) {
	rep := analyzeCurated(t)
	if rep.TotalFiles != 4 {
		t.Fatalf("TotalFiles = %d", rep.TotalFiles)
	}
	if rep.TotalCalls < 7 {
		t.Fatalf("TotalCalls = %d", rep.TotalCalls)
	}
}

func TestCuratedBnx2xFindings(t *testing.T) {
	rep := analyzeCurated(t)
	var ramrod, sge *spade.Finding
	for _, f := range rep.Findings {
		switch f.Func {
		case "bnx2x_post_ramrod":
			ramrod = f
		case "bnx2x_alloc_rx_sge":
			sge = f
		}
	}
	if ramrod == nil || ramrod.ExposedStruct != "bnx2x_fw_cmd" {
		t.Fatalf("ramrod finding = %+v", ramrod)
	}
	// No direct callback in the command block, but the ops table is
	// spoofable through the pointer — row 1 without row 3.
	if ramrod.DirectCallbacks != 0 || ramrod.SpoofableCallbacks != 4 {
		t.Errorf("ramrod callbacks = %d direct / %d spoofable", ramrod.DirectCallbacks, ramrod.SpoofableCallbacks)
	}
	if sge == nil || !sge.SkbSharedInfo || !sge.Types[spade.TypeC] {
		t.Errorf("sge finding = %+v", sge)
	}
}

func TestCuratedRtl8139IsStaticallyClean(t *testing.T) {
	rep := analyzeCurated(t)
	for _, f := range rep.Findings {
		if f.Func == "rtl8139_init_ring" {
			if f.Vulnerable() {
				t.Errorf("copybreak staging buffer flagged: %+v", f)
			}
			return
		}
	}
	t.Fatal("rtl8139_init_ring finding missing")
}
