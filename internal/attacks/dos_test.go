package attacks

import (
	"testing"

	"dmafault/internal/core"
	"dmafault/internal/iommu"
	"dmafault/internal/netstack"
)

func TestFreelistDoS(t *testing.T) {
	sys, _ := bootVictim(t, iommu.Strict, false, netstack.DriverI40E)
	atk, err := attackerFor(sys)
	if err != nil {
		t.Fatal(err)
	}
	r := RunFreelistDoS(sys, atk)
	t.Log("\n" + r.String())
	if !r.Success {
		t.Fatal("freelist DoS did not halt the allocator")
	}
	if sys.Kernel.Escalations != 0 {
		t.Error("DoS should not escalate privileges")
	}
}

func TestOutOfLineSharedInfoDefeatsPoisonedTX(t *testing.T) {
	// D3 ablation: segregating skb_shared_info from I/O memory (§9.2's
	// proposed direction) breaks the compound attacks, because the window
	// writes land in payload padding instead of metadata.
	sys, err := core.NewSystem(core.Config{Seed: 1234, KASLR: true, Mode: iommu.Deferred, OutOfLineSharedInfo: true})
	if err != nil {
		t.Fatal(err)
	}
	nic, err := sys.AddNIC(attackerDev, netstack.DriverI40E, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := RunPoisonedTX(sys, nic)
	t.Log("\n" + r.String())
	if r.Success {
		t.Fatal("Poisoned TX succeeded despite out-of-line shared info")
	}
	if sys.Kernel.Escalations != 0 {
		t.Error("escalated despite hardening")
	}
}
