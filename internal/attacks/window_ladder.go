package attacks

import (
	"dmafault/internal/core"
	"dmafault/internal/device"
	"dmafault/internal/iommu"
	"dmafault/internal/layout"
	"dmafault/internal/netstack"
)

// The §5.2 conclusion — "from this point on, we assume that the attacker can
// always modify the callback pointer" — rests on the three paths of Fig. 7.
// windowLadder packages them: given an RX slot being processed, it attempts
// in order (i) the buffer's own IOVA (valid under the i40e ordering in any
// mode), (ii) the same IOVA through a stale IOTLB entry (deferred mode,
// primed), and (iii) a co-located neighbour's IOVA (type (c), any mode).

// primeSI touches the slot's shared-info page through its own mapping while
// it is still valid, so a stale IOTLB entry exists for path (ii). A real
// device writing a full-MTU packet does this incidentally; short spoofed
// packets must do it on purpose.
func primeSI(sys *core.System, atk *device.Attacker, nic *netstack.NIC, slot int) error {
	d := nic.RXRing()[slot]
	si := device.SharedInfoIOVA(d.IOVA, d.Cap)
	return atk.Bus.Write(atk.Dev, si, make([]byte, 8))
}

// overwriteDargLadder attempts to write ubufKVA into the slot's
// shared_info.destructor_arg via the first working Fig. 7 path. Returns the
// path used (WindowNone if all failed).
func overwriteDargLadder(atk *device.Attacker, nic *netstack.NIC, tr netstack.RXTrace, slot int, ubufKVA layout.Addr) WindowPath {
	si := device.SharedInfoIOVA(tr.Desc.IOVA, tr.Desc.Cap)
	// Paths (i)/(ii): the buffer's own IOVA — valid mapping or stale entry.
	if err := atk.OverwriteDestructorArg(si, ubufKVA); err == nil {
		if tr.BuildWhileMapped {
			return WindowDriverOrder
		}
		return WindowStaleIOTLB
	}
	// Path (iii): a neighbouring descriptor's mapping covers the page.
	if via, ok := device.RingNeighborFor(nic.RXRing(), slot); ok {
		if err := atk.Bus.WriteU64(atk.Dev, via+iommu.IOVA(netstack.SharedInfoDestructorArgOff), uint64(ubufKVA)); err == nil {
			return WindowNeighborIOVA
		}
	}
	return WindowNone
}

// pickTriggerSlot chooses an RX slot whose shared info is reachable by SOME
// path under the current driver/mode — preferring slots with a usable
// neighbour so the ladder's last rung exists.
func pickTriggerSlot(nic *netstack.NIC, avoid int) int {
	ring := nic.RXRing()
	for i := range ring {
		if i == avoid || !ring[i].Ready {
			continue
		}
		if _, ok := device.RingNeighborFor(ring, i); ok {
			return i
		}
	}
	for i := range ring {
		if i != avoid && ring[i].Ready {
			return i
		}
	}
	return 0
}

// triggerInjection spoofs a packet into a chosen slot and corrupts its
// shared info with the forged ubuf_info KVA during the processing window.
// It returns the path used and the error from the delivery (nil on a clean
// hijack — successful exploitation raises no kernel error).
func triggerInjection(sys *core.System, atk *device.Attacker, nic *netstack.NIC, ubufKVA layout.Addr, flow uint32) (WindowPath, error) {
	slot := pickTriggerSlot(nic, -1)
	d := nic.RXRing()[slot]
	if err := sys.Bus.Write(atk.Dev, d.IOVA, []byte("trig")); err != nil {
		return WindowNone, err
	}
	if err := primeSI(sys, atk, nic, slot); err != nil {
		return WindowNone, err
	}
	used := WindowNone
	nic.RXWindow = func(n *netstack.NIC, tr netstack.RXTrace) {
		used = overwriteDargLadder(atk, n, tr, slot, ubufKVA)
	}
	defer func() { nic.RXWindow = nil }()
	err := nic.ReceiveOn(slot, 4, netstack.ProtoUDP, flow)
	return used, err
}
