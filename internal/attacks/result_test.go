package attacks

import (
	"errors"
	"strings"
	"testing"
)

func TestResultFormatting(t *testing.T) {
	r := newResult("demo attack")
	r.logf("step %d: %s", 1, "scan")
	r.logf("step 2")
	r.Escalations = 1
	r.Success = true
	r.Detail["key"] = "value"
	out := r.String()
	for _, want := range []string{"demo attack", "success=true", "escalations=1", "1. step 1: scan", "2. step 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
}

func TestResultStepCap(t *testing.T) {
	r := newResult("chatty attack")
	for i := 0; i < MaxSteps*3; i++ {
		r.logf("step %d", i)
	}
	if len(r.Steps) != MaxSteps {
		t.Fatalf("retained %d steps, want %d", len(r.Steps), MaxSteps)
	}
	if r.DroppedSteps != MaxSteps*2 {
		t.Fatalf("DroppedSteps = %d, want %d", r.DroppedSteps, MaxSteps*2)
	}
	// Ring semantics mirror trace.Log: oldest lines fall off, newest stay.
	if r.Steps[0] != "step 128" || r.Steps[MaxSteps-1] != "step 191" {
		t.Fatalf("window = [%s .. %s]", r.Steps[0], r.Steps[MaxSteps-1])
	}
	out := r.String()
	for _, want := range []string{"128 earlier step(s) dropped", "129. step 128", "192. step 191"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
}

func TestResultFail(t *testing.T) {
	r := newResult("doomed")
	r.Success = true
	got := r.fail(errors.New("no leak"))
	if got != r || r.Success {
		t.Error("fail did not clear success")
	}
	if !strings.Contains(r.String(), "BLOCKED: no leak") {
		t.Errorf("trace = %v", r.Steps)
	}
}
