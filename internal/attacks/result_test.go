package attacks

import (
	"errors"
	"strings"
	"testing"
)

func TestResultFormatting(t *testing.T) {
	r := newResult("demo attack")
	r.logf("step %d: %s", 1, "scan")
	r.logf("step 2")
	r.Escalations = 1
	r.Success = true
	r.Detail["key"] = "value"
	out := r.String()
	for _, want := range []string{"demo attack", "success=true", "escalations=1", "1. step 1: scan", "2. step 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
}

func TestResultFail(t *testing.T) {
	r := newResult("doomed")
	r.Success = true
	got := r.fail(errors.New("no leak"))
	if got != r || r.Success {
		t.Error("fail did not clear success")
	}
	if !strings.Contains(r.String(), "BLOCKED: no leak") {
		t.Errorf("trace = %v", r.Steps)
	}
}
