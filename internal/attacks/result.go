// Package attacks implements the paper's DMA code-injection attacks against
// the simulated Linux machine:
//
//   - a single-step baseline in the style of prior work (Thunderclap [45],
//     Kupfer [38]), where all three vulnerability attributes of §3.3 are
//     present on one mapped page;
//   - the three novel compound attacks of §5: RingFlood (§5.3), Poisoned TX
//     (§5.4), and Forward Thinking (§5.5), including the §5.5 arbitrary-
//     page-read surveillance variant;
//   - the boot-determinism study behind RingFlood (256 simulated reboots,
//     PFN repeat statistics for kernels 5.0 and 4.15);
//   - the Fig. 7 time-window matrix (driver ordering × IOMMU mode ×
//     neighbor-IOVA path).
//
// Every attack operates strictly through the device side (IOVA DMA via the
// IOMMU) plus build knowledge, acquiring the three attributes — malicious
// buffer KVA, writable callback pointer, time window — the same way the
// paper does.
package attacks

import (
	"fmt"

	"dmafault/internal/core"
	"dmafault/internal/metrics"
)

// MaxSteps bounds the per-result step trace. Like trace.Log, the trace is
// a ring: once full, the oldest line falls off and DroppedSteps counts it —
// million-scenario campaigns must not hold every step line in memory.
const MaxSteps = 64

// Result is the outcome of one attack run: a human-readable step trace plus
// the success criterion (privilege escalations observed by the kernel). The
// JSON encoding is snake_case, matching the repo's wire-format convention.
type Result struct {
	Name string `json:"name"`
	// Steps holds the most recent MaxSteps trace lines, oldest first.
	Steps       []string `json:"steps"`
	Success     bool     `json:"success"`
	Escalations int      `json:"escalations"`
	// DroppedSteps counts older lines shed once Steps reached MaxSteps.
	DroppedSteps uint64 `json:"dropped_steps,omitempty"`
	// Detail carries attack-specific numbers (hit rates, leaked bytes...).
	Detail map[string]string `json:"detail,omitempty"`
	// Snapshot, when the attacked machine carried a metrics registry, is its
	// full metric dump gathered after the attack finished.
	Snapshot *metrics.Snapshot `json:"snapshot,omitempty"`
}

func newResult(name string) *Result {
	return &Result{Name: name, Detail: make(map[string]string)}
}

// logf appends a formatted step to the trace, shedding the oldest line at
// the MaxSteps cap.
func (r *Result) logf(format string, args ...any) {
	if len(r.Steps) >= MaxSteps {
		copy(r.Steps, r.Steps[1:])
		r.Steps = r.Steps[:len(r.Steps)-1]
		r.DroppedSteps++
	}
	r.Steps = append(r.Steps, fmt.Sprintf(format, args...))
}

// fail records a blocking failure as the final step.
func (r *Result) fail(err error) *Result {
	r.logf("BLOCKED: %v", err)
	r.Success = false
	return r
}

// CaptureMetrics gathers the machine's metric registry into the result. It
// is a no-op on systems booted without metrics; a gather failure (a Source
// contract bug) is recorded in Detail rather than aborting the attack.
func (r *Result) CaptureMetrics(sys *core.System) {
	if sys.Metrics == nil {
		return
	}
	snap, err := sys.Metrics.Gather()
	if err != nil {
		r.Detail["metrics_error"] = err.Error()
		return
	}
	r.Snapshot = snap
}

// String renders the trace. Step numbering stays absolute: a capped trace
// starts at DroppedSteps+1.
func (r *Result) String() string {
	out := fmt.Sprintf("=== %s (success=%v, escalations=%d) ===\n", r.Name, r.Success, r.Escalations)
	if r.DroppedSteps > 0 {
		out += fmt.Sprintf("  ... %d earlier step(s) dropped ...\n", r.DroppedSteps)
	}
	for i, s := range r.Steps {
		out += fmt.Sprintf("  %2d. %s\n", uint64(i+1)+r.DroppedSteps, s)
	}
	return out
}
