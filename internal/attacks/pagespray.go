package attacks

import (
	"fmt"

	"dmafault/internal/core"
	"dmafault/internal/iommu"
	"dmafault/internal/kexec"
	"dmafault/internal/layout"
	"dmafault/internal/mem"
	"dmafault/internal/netstack"
)

// Page spray ("Take a Step Further"). The previous attacks corrupt memory
// the device was *given*; this one corrupts memory the kernel reclaimed.
// A delivered packet releases its sk_buff, which frees the RX buffer's page
// block back to the buddy allocator — but under deferred invalidation the
// device still holds a stale IOTLB entry for the old IOVA. The attacker then
// provokes an allocation burst (the spray) that lands fresh kernel objects
// on the freed frames; thanks to the buddy freelists' LIFO discipline the
// very next same-order allocation reuses the exact block. The device writes
// its pivot + ROP chain through the stale translation, corrupting the new
// object's callback slot, and the kernel's ordinary use of that object
// dispatches the hijacked pointer.
//
// The natural victim is the mlx5 HW-LRO datapath (kernel 4.15): its RX
// buffers are order-4 compound allocations that go straight back to the
// buddy freelist on release. Frag-backed drivers (2 KiB buffers) usually
// survive the spray — the page_frag region holds a reference — which is
// exactly the coverage split a fuzzer can discover.

// SprayConfig sizes the spray pass.
type SprayConfig struct {
	// Blocks is how many allocations the burst performs (<=0: 8).
	Blocks int
	// Order is the buddy order of each sprayed block; <0 means "match the
	// victim buffer's own order" (the exact-overlay strategy).
	Order int
}

// sprayObjCallbackOff is the callback slot inside the sprayed kernel object,
// mirroring the buggy command block's layout so the same pivot/chain
// geometry applies (the kernel passes the object's address in %rdi).
const sprayObjCallbackOff = cmdCallbackOff

// RunPageSpray executes the spray-assisted injection on a booted system.
func RunPageSpray(sys *core.System, nic *netstack.NIC, cfg SprayConfig) *Result {
	r := newResult(fmt.Sprintf("page-spray (driver %s)", nic.Model.Name))
	atk, err := attackerFor(sys)
	if err != nil {
		return r.fail(err)
	}
	cb, _, err := victimActivity(sys, nic)
	if err != nil {
		return r.fail(err)
	}

	// Attribute acquisition: the usual leak scan breaks KASLR (text base for
	// gadget addresses, direct-map base to reason about frames).
	if used := atk.ScanReadable([]iommu.IOVA{cb.IOVA}); used == 0 {
		return r.fail(fmt.Errorf("leak scan found no kernel pointers"))
	}
	if _, err := atk.Infer.TextBase(); err != nil {
		return r.fail(err)
	}
	if _, err := atk.Infer.PageOffsetBase(); err != nil {
		return r.fail(err)
	}
	r.logf("KASLR broken: text + page_offset_base recovered")

	// Victim selection: prefer a compound-page (HW LRO) descriptor — its
	// release path frees straight to the buddy allocator.
	ring := nic.RXRing()
	slot := 0
	for i, d := range ring {
		if netstack.TruesizeFor(d.Cap) > mem.FragRegionBytes {
			slot = i
			break
		}
	}
	d := ring[slot]
	truesize := netstack.TruesizeFor(d.Cap)
	paged := truesize > mem.FragRegionBytes
	bufOrder := 0
	if paged {
		for (uint64(layout.PageSize) << bufOrder) < truesize {
			bufOrder++
		}
	}
	bufPFN, err := sys.Layout.KVAToPFN(d.Data)
	if err != nil {
		return r.fail(err)
	}
	r.logf("victim RX slot %d: %d-byte buffer at PFN %d (order %d, paged=%v)",
		slot, truesize, bufPFN, bufOrder, paged)

	// Prime the IOTLB for the buffer's page while it is still mapped — a
	// real NIC writing the packet payload does this naturally.
	if err := sys.Bus.Write(atk.Dev, d.IOVA, []byte("spray")); err != nil {
		return r.fail(err)
	}

	// Deliver the packet. With no delivery hook installed the stack consumes
	// and releases the sk_buff, freeing the ring buffer: compound pages go
	// back to the buddy freelists (put_page), frag buffers merely drop a
	// region reference. Under deferred invalidation the unmap leaves the
	// primed IOTLB entry stale rather than gone.
	if err := nic.ReceiveOn(slot, 5, netstack.ProtoUDP, 1); err != nil {
		return r.fail(err)
	}
	r.logf("packet delivered and released: RX buffer freed while device holds its IOVA")

	// The spray: an attacker-provoked allocation burst (think sendmsg
	// buffers) that tries to land kernel objects on the freed frames.
	order := cfg.Order
	switch {
	case order < 0:
		order = 0
	case order == 0:
		order = bufOrder // frag-backed buffers leave this at order 0
	}
	blocks := cfg.Blocks
	if blocks <= 0 {
		blocks = 8
	}
	set, sprayErr := sys.Mem.Pages.Spray(nic.CPU, mem.SprayPattern{Blocks: blocks, Order: uint(order)})
	defer sys.Mem.Pages.ReleaseSpray(nic.CPU, set)
	if sprayErr != nil && len(set.PFNs) == 0 {
		return r.fail(sprayErr)
	}
	r.logf("sprayed %d order-%d block(s) over the hole", len(set.PFNs), order)

	// The kernel initializes each sprayed object: a legitimate callback in
	// the slot the device is about to contest.
	legit, err := sys.Kernel.FuncAddr("sock_wfree")
	if err != nil {
		sys.Kernel.RegisterSymbol("sock_wfree", func(c *kexec.CPU) error { return nil })
		legit, _ = sys.Kernel.FuncAddr("sock_wfree")
	}
	for _, pfn := range set.PFNs {
		obj := sys.Layout.PFNToKVA(pfn)
		if err := sys.Mem.WriteU64(obj+sprayObjCallbackOff, uint64(legit)); err != nil {
			return r.fail(err)
		}
	}

	idx, within := set.Contains(bufPFN)
	hit := within && set.PFNs[idx] == bufPFN // head overlay: object base == old buffer base
	r.Detail["spray_blocks"] = fmt.Sprintf("%d", len(set.PFNs))
	r.Detail["spray_order"] = fmt.Sprintf("%d", order)

	// The object the kernel will "use" (complete) below: the reused block on
	// a hit, the first sprayed block otherwise.
	victim := set.PFNs[0]
	if hit {
		victim = set.PFNs[idx]
	}
	objKVA := sys.Layout.PFNToKVA(victim)

	if hit {
		r.Detail["reuse"] = "head"
		r.logf("LIFO reuse: sprayed block %d landed exactly on freed PFN %d", idx, bufPFN)
		// The device's half of the race: write the chain and pivot through
		// the stale translation of the *old* buffer IOVA.
		staleBefore := sys.IOMMU.Stats().StaleHits
		pivot, perr := atk.PivotAddr()
		if perr != nil {
			return r.fail(perr)
		}
		chain, cerr := atk.ChainAddresses()
		if cerr != nil {
			return r.fail(cerr)
		}
		werr := atk.Bus.Write(atk.Dev, d.IOVA+kexec.PivotDisplacement, kexec.ChainBytes(kexec.EscalationChain(chain)))
		if werr == nil {
			werr = atk.Bus.WriteU64(atk.Dev, d.IOVA+sprayObjCallbackOff, uint64(pivot))
		}
		staleHits := sys.IOMMU.Stats().StaleHits - staleBefore
		r.Detail["stale_hits"] = fmt.Sprintf("%d", staleHits)
		if werr != nil {
			r.Detail["stale"] = "blocked"
			r.logf("stale-IOVA write blocked by the IOMMU: %v", werr)
		} else {
			r.Detail["stale"] = "written"
			if staleHits > 0 {
				r.Detail["window_path"] = WindowStaleIOTLB.String()
			}
			r.logf("pivot + chain written into the sprayed object through the stale IOTLB entry")
		}
	} else {
		r.Detail["reuse"] = "miss"
		r.logf("spray missed: freed frames not reused by the burst (frag region held, or hot-cache detour)")
	}

	// The kernel's ordinary use of the sprayed object: load its callback and
	// dispatch with the object's own address — sock_wfree if the device lost
	// the race or was blocked, the pivot if it won.
	before := sys.Kernel.Escalations
	cbv, err := sys.Mem.ReadU64(objKVA + sprayObjCallbackOff)
	if err != nil {
		return r.fail(err)
	}
	if err := sys.Kernel.InvokeCallback(layout.Addr(cbv), uint64(objKVA)); err != nil {
		r.logf("callback dispatch faulted: %v", err)
	}
	r.Escalations = sys.Kernel.Escalations - before
	r.Success = r.Escalations > 0
	if r.Success {
		r.logf("sprayed object completed → hijacked callback → %d escalation(s)", r.Escalations)
	} else {
		r.logf("sprayed object completed benignly: no escalation")
	}
	r.CaptureMetrics(sys)
	return r
}
