package attacks

import (
	"fmt"

	"dmafault/internal/core"
	"dmafault/internal/device"
	"dmafault/internal/faultinject"
	"dmafault/internal/iommu"
	"dmafault/internal/kexec"
	"dmafault/internal/layout"
	"dmafault/internal/netstack"
	"dmafault/internal/par"
)

// RingFlood (§5.3). The device floods every RX buffer with a poisoned
// ROP stack; the missing attribute is the KVA of any of them. Boot
// determinism supplies it: an attacker who profiled an identical setup
// offline knows the most common RX-ring PFN, and the direct-map base
// (recovered from leaks at run time) turns that PFN into a KVA.

// victimActivity models ordinary server behaviour that the attack free-rides
// on: the driver keeps an admin/stats buffer mapped, and userspace opens
// sockets — which is what puts init_net and direct-map pointers on a
// device-readable page (type (d) co-location through the kmalloc-512 class).
func victimActivity(sys *core.System, nic *netstack.NIC) (*netstack.ControlBuffer, []*netstack.Socket, error) {
	cb, err := nic.MapControlBuffer()
	if err != nil {
		return nil, nil, err
	}
	var socks []*netstack.Socket
	for i := 0; i < 6; i++ {
		s, err := sys.Net.AllocSocket(nic.CPU, "sock_alloc_inode+0x4f")
		if err != nil {
			return nil, nil, err
		}
		socks = append(socks, s)
	}
	return cb, socks, nil
}

// attackerFor wires up an Attacker with build knowledge extracted offline
// from an identical kernel image.
func attackerFor(sys *core.System) (*device.Attacker, error) {
	build, err := kexec.ExtractBuildOffsets(sys.Kernel.Text(), sys.Layout.Symbols())
	if err != nil {
		return nil, err
	}
	return device.NewAttacker(attackerDev, sys.Bus, sys.Layout.Symbols(), build), nil
}

// RunRingFlood executes the attack against a freshly booted system, given
// the offline boot-study profile.
func RunRingFlood(sys *core.System, nic *netstack.NIC, study *BootStudy) *Result {
	r := newResult(fmt.Sprintf("RingFlood (kernel %s)", study.Version))
	atk, err := attackerFor(sys)
	if err != nil {
		return r.fail(err)
	}
	cb, _, err := victimActivity(sys, nic)
	if err != nil {
		return r.fail(err)
	}
	r.logf("victim: admin buffer mapped at IOVA %#x, sockets opened", uint64(cb.IOVA))

	// Step 1: leak scan → KASLR break (text base for gadgets, direct-map
	// base to turn the profiled PFN into a KVA).
	if used := atk.ScanReadable([]iommu.IOVA{cb.IOVA}); used == 0 {
		return r.fail(fmt.Errorf("leak scan found no kernel pointers"))
	}
	if _, err := atk.Infer.TextBase(); err != nil {
		return r.fail(err)
	}
	if _, err := atk.Infer.PageOffsetBase(); err != nil {
		return r.fail(err)
	}
	r.logf("KASLR broken: text + page_offset_base recovered from one mapped slab page")

	// Step 2: flood — plant ubuf_info + ROP chain in every RX buffer.
	ring := nic.RXRing()
	planted := 0
	for _, d := range ring {
		if err := atk.PlantUbufAndChain(d.IOVA); err == nil {
			planted++
		}
	}
	r.logf("poisoned ROP stack planted in %d/%d RX buffers", planted, len(ring))

	// Step 3: the profiled guess. The offline study says frame ModalPFN
	// holds an RX buffer starting at ModalOffset in most boots.
	guessKVA, err := atk.Infer.KVAFromPFN(study.ModalPFN)
	if err != nil {
		return r.fail(err)
	}
	ubufGuess := guessKVA + layout.Addr(study.ModalOffset) + device.UbufPlantOffset
	r.logf("profiled guess: modal PFN %d (repeat rate %.0f%%) → ubuf KVA %#x",
		study.ModalPFN, study.ModalRate*100, uint64(ubufGuess))

	// Step 4: trigger. Deliver a spoofed packet; in the RX processing
	// window (Fig. 7, any open path) overwrite the new skb's destructor_arg
	// with the guessed KVA; the release path dispatches the callback.
	before := sys.Kernel.Escalations
	path, err := triggerInjection(sys, atk, nic, ubufGuess, 77)
	r.Escalations = sys.Kernel.Escalations - before
	r.Success = r.Escalations > 0
	if r.Success {
		r.logf("window path %v → sk_buff released → hijacked callback → privilege escalation", path)
	} else {
		r.logf("guess missed this boot (path %v, release error: %v) — retry next reboot", path, err)
	}
	r.Detail["modal_rate"] = fmt.Sprintf("%.2f", study.ModalRate)
	r.Detail["planted"] = fmt.Sprintf("%d", planted)
	r.Detail["window_path"] = path.String()
	r.CaptureMetrics(sys)
	return r
}

// RingFloodCampaign measures the attack's success probability: profile once,
// then attack `attempts` fresh boots with unseen seeds and count successes.
// The hit rate should track the study's PFN repeat rate — the paper's §5.3
// claim.
//
// Attempts run on the campaign engine's worker pool (internal/par): each
// attempt boots its own isolated machine from seedBase+i, and results land
// in attempt order, so the outcome is seed-identical to the historical
// sequential loop at any worker count.
func RingFloodCampaign(version KernelVersion, study *BootStudy, attempts int, seedBase int64) (hits int, results []*Result, err error) {
	return RingFloodCampaignOpts(version, study, attempts, seedBase, nil)
}

// RingFloodCampaignOpts is RingFloodCampaign with an optional fault plan:
// each attempted boot runs with injection armed, so the attack's success
// rate can be measured under DMA corruption, IOMMU stalls, descriptor loss,
// and allocator pressure. A nil plan is byte-identical to RingFloodCampaign.
func RingFloodCampaignOpts(version KernelVersion, study *BootStudy, attempts int, seedBase int64, plan *faultinject.Plan) (hits int, results []*Result, err error) {
	results, err = par.Map(attempts, 0, func(i int) (*Result, error) {
		sys, nic, _, err := BootOnceOpts(version, seedBase+int64(i),
			BootOptions{JitterPages: BootJitterPages, FaultPlan: plan})
		if err != nil {
			return nil, err
		}
		return RunRingFlood(sys, nic, study), nil
	})
	if err != nil {
		return 0, nil, err
	}
	for _, res := range results {
		if res.Success {
			hits++
		}
	}
	return hits, results, nil
}
