package attacks

import (
	"dmafault/internal/core"
	"dmafault/internal/device"
	"dmafault/internal/dma"
	"dmafault/internal/iommu"
	"dmafault/internal/kexec"
	"dmafault/internal/layout"
)

// BuggyCommandBlock models the classic type (a) vulnerability the prior
// single-step attacks exploited (Thunderclap's FreeBSD mbuf, Kupfer's
// FireWire driver): a driver DMA-maps an entire command structure
// BIDIRECTIONAL, and that structure carries everything at fixed offsets —
// a completion callback pointer, a self-referential list head (leaking the
// structure's own KVA), and a netns back-pointer (leaking init_net, hence
// the KASLR text base).
type BuggyCommandBlock struct {
	KVA  layout.Addr
	IOVA iommu.IOVA
}

// Offsets within the buggy command block. The kernel passes the block's
// address in %rdi on completion, and the pivot gadget sets %rsp to
// %rdi+PivotDisplacement, so the exploit lays its chain over the fields at
// [16, 64) — scratch space in this struct; the callback lives past it.
const (
	cmdListNextOff = 0  // struct list_head next → points at itself when idle
	cmdNetNSOff    = 8  // struct net * → &init_net
	cmdCallbackOff = 72 // completion callback
	cmdBlockSize   = 256
)

// InstallBuggyDriver allocates and maps the vulnerable command block, as the
// buggy driver's probe() would.
func InstallBuggyDriver(sys *core.System, dev iommu.DeviceID, cpu int) (*BuggyCommandBlock, error) {
	kva, err := sys.Mem.Slab.Kzalloc(cpu, cmdBlockSize, "fw_ohci_cmd_block")
	if err != nil {
		return nil, err
	}
	if err := sys.Mem.WriteU64(kva+cmdListNextOff, uint64(kva)); err != nil { // empty list: next = self
		return nil, err
	}
	initNet, err := sys.Layout.SymbolKVA("init_net")
	if err != nil {
		return nil, err
	}
	if err := sys.Mem.WriteU64(kva+cmdNetNSOff, uint64(initNet)); err != nil {
		return nil, err
	}
	cb, err := sys.Kernel.FuncAddr("sock_wfree")
	if err != nil {
		sys.Kernel.RegisterSymbol("sock_wfree", func(c *kexec.CPU) error { return nil })
		cb, _ = sys.Kernel.FuncAddr("sock_wfree")
	}
	if err := sys.Mem.WriteU64(kva+cmdCallbackOff, uint64(cb)); err != nil {
		return nil, err
	}
	va, err := sys.Mapper.MapSingle(dev, kva, cmdBlockSize, dma.Bidirectional)
	if err != nil {
		return nil, err
	}
	return &BuggyCommandBlock{KVA: kva, IOVA: va}, nil
}

// CompleteCommand is the driver's completion path: it loads the callback
// pointer from the (device-accessible!) command block and invokes it with
// the block's address — exactly the dispatch the attacker hijacks.
func CompleteCommand(sys *core.System, blk *BuggyCommandBlock) error {
	cb, err := sys.Mem.ReadU64(blk.KVA + cmdCallbackOff)
	if err != nil {
		return err
	}
	return sys.Kernel.InvokeCallback(layout.Addr(cb), uint64(blk.KVA))
}

// RunSingleStep executes the single-step baseline: every §3.3 attribute is
// served by the one mapped page, no compound steps needed.
func RunSingleStep(sys *core.System, atk *device.Attacker, blk *BuggyCommandBlock) *Result {
	r := newResult("single-step (type (a) buggy driver)")

	// Attribute acquisition: one page scan yields the block's own KVA (the
	// self-referential list head — a direct-map pointer that also pins
	// page_offset_base) and init_net (text base).
	used, err := atk.ScanPage(blk.IOVA)
	if err != nil {
		return r.fail(err)
	}
	r.logf("scanned mapped command-block page: %d pointers consumed", used)
	words, err := atk.ReadWords(blk.IOVA+cmdListNextOff, 1)
	if err != nil {
		return r.fail(err)
	}
	blockKVA := layout.Addr(words[0]) // list.next == &block
	r.logf("self-referential list head leaks block KVA %#x", uint64(blockKVA))
	if _, err := atk.Infer.TextBase(); err != nil {
		return r.fail(err)
	}
	r.logf("init_net leak broke KASLR: text base recovered")

	// Build the Fig. 4 structure inside the same mapped block: the ROP
	// chain where the pivot will move %rsp, the pivot in the callback slot.
	pivot, err := atk.PivotAddr()
	if err != nil {
		return r.fail(err)
	}
	chain, err := atk.ChainAddresses()
	if err != nil {
		return r.fail(err)
	}
	if err := atk.Bus.Write(atk.Dev, blk.IOVA+kexec.PivotDisplacement, kexec.ChainBytes(kexec.EscalationChain(chain))); err != nil {
		return r.fail(err)
	}
	if err := atk.Bus.WriteU64(atk.Dev, blk.IOVA+cmdCallbackOff, uint64(pivot)); err != nil {
		return r.fail(err)
	}
	r.logf("callback overwritten with JOP pivot, ROP chain planted in block")

	// The driver completes the command: hijacked dispatch.
	before := sys.Kernel.Escalations
	if err := CompleteCommand(sys, blk); err != nil {
		return r.fail(err)
	}
	r.Escalations = sys.Kernel.Escalations - before
	r.Success = r.Escalations > 0
	r.logf("driver completion invoked callback: %d escalation(s)", r.Escalations)
	return r
}
