package attacks

import (
	"bytes"
	"fmt"

	"dmafault/internal/core"
	"dmafault/internal/device"
	"dmafault/internal/iommu"
	"dmafault/internal/layout"
	"dmafault/internal/netstack"
)

// Forward Thinking (§5.5, Fig. 9). With packet forwarding enabled, the NIC
// needs no cooperating service at all: it sources a TCP stream addressed
// past the host; GRO converts the linear segments into one frag'ed sk_buff;
// forwarding transmits it; and the TX mapping hands the NIC its own
// payload's struct page pointers — the KVA leak.
//
// The same configuration yields the surveillance primitive: spoof a small
// UDP packet to be forwarded and, in the RX window, write an arbitrary
// struct page pointer into its frags[]. The driver then dutifully DMA-maps
// that page for the NIC to read. Undoing the frag before TX completion
// keeps the OS stable and the attack invisible.

// forwardFlow marks a flow as "not for this host" (the high bit our routing
// stand-in checks).
const forwardFlow = uint32(1<<31) | 7

// RunForwardThinking executes the full §5.5 code-injection flow.
func RunForwardThinking(sys *core.System, nic *netstack.NIC) *Result {
	r := newResult("Forward Thinking (GRO)")
	if !sys.Net.Forwarding {
		return r.fail(fmt.Errorf("packet forwarding is disabled on the victim"))
	}
	atk, err := attackerFor(sys)
	if err != nil {
		return r.fail(err)
	}
	cb, _, err := victimActivity(sys, nic)
	if err != nil {
		return r.fail(err)
	}
	if used := atk.ScanReadable([]iommu.IOVA{cb.IOVA}); used == 0 {
		return r.fail(fmt.Errorf("leak scan found no kernel pointers"))
	}
	if _, err := atk.Infer.TextBase(); err != nil {
		return r.fail(err)
	}
	r.logf("KASLR text base recovered")

	// Step 1: source a TCP stream. Segment 0 becomes the GRO aggregation
	// head; segment 1 carries the weaponized payload and will become
	// frags[0] of the aggregate.
	payload, err := atk.PayloadBytes()
	if err != nil {
		return r.fail(err)
	}
	segs := [][]byte{[]byte("syn-segment-filler--"), payload}
	for i, seg := range segs {
		d := nic.RXRing()[i]
		if err := sys.Bus.Write(atk.Dev, d.IOVA, seg); err != nil {
			return r.fail(err)
		}
		if err := nic.ReceiveOn(i, uint32(len(seg)), netstack.ProtoTCP, forwardFlow); err != nil {
			return r.fail(err)
		}
	}
	if sys.Net.HeldFlows() != 1 {
		return r.fail(fmt.Errorf("GRO did not hold the flow"))
	}
	r.logf("TCP stream absorbed by GRO: payload now a frag of the aggregate")

	// Step 2: the aggregation flushes and the packet is forwarded — i.e.
	// transmitted, with every frag DMA-mapped READ for the NIC.
	if err := sys.Net.FlushGRO(nic); err != nil {
		return r.fail(err)
	}
	if nic.PendingTX() == 0 {
		return r.fail(fmt.Errorf("aggregate was not forwarded"))
	}
	txIdx := nic.PendingTX() - 1
	tx := nic.TXRing()[txIdx]
	r.logf("aggregate forwarded: linear + %d frag(s) mapped for TX", len(tx.FragVAs))

	// Step 3: read the forwarded packet's shared info. The linear buffer is
	// the RX ring buffer of segment 0 (build_skb), so the shared info
	// offset follows from the RX buffer geometry.
	view, err := atk.ReadTXSharedInfo(tx.LinearVA, nic.Model.RXBufferSize)
	if err != nil {
		return r.fail(err)
	}
	if len(view.Frags) == 0 {
		return r.fail(fmt.Errorf("forwarded aggregate carries no frags"))
	}
	ubufKVA, err := atk.FragKVA(view.Frags[0])
	if err != nil {
		return r.fail(err)
	}
	r.logf("forwarded shared info leak: payload KVA %#x", uint64(ubufKVA))

	// Step 4: trigger via a third spoofed packet, Fig. 4 style, through
	// whichever Fig. 7 path is open.
	before := sys.Kernel.Escalations
	path, err := triggerInjection(sys, atk, nic, ubufKVA, 5)
	r.Escalations = sys.Kernel.Escalations - before
	r.Success = r.Escalations > 0
	if r.Success {
		r.logf("window path %v → hijacked callback → escalated, no userspace help needed", path)
	} else {
		r.logf("attack failed (path %v, release error: %v)", path, err)
	}
	r.Detail["window_path"] = path.String()
	if err := nic.CompleteTX(txIdx); err == nil {
		if err := nic.ReapCompletions(); err != nil {
			r.logf("note: TX reap reported %v", err)
		}
	}
	return r
}

// RunSurveillance executes the §5.5 arbitrary-page-read variant against a
// target kernel address: the device reads `length` bytes from targetKVA
// without any code injection, then covers its tracks.
func RunSurveillance(sys *core.System, nic *netstack.NIC, targetKVA layout.Addr, length uint32) (*Result, []byte) {
	r := newResult("Forward Thinking surveillance (arbitrary page read)")
	if !sys.Net.Forwarding {
		return r.fail(fmt.Errorf("packet forwarding is disabled on the victim")), nil
	}
	atk, err := attackerFor(sys)
	if err != nil {
		return r.fail(err), nil
	}
	// The attacker needs vmemmap_base (to forge struct page pointers) and
	// page_offset_base (to aim at a KVA): both come from one TX leak. Run a
	// tiny forwarded TCP aggregate first to harvest them.
	cbuf, _, err := victimActivity(sys, nic)
	if err != nil {
		return r.fail(err), nil
	}
	atk.ScanReadable([]iommu.IOVA{cbuf.IOVA})
	for i := 0; i < 2; i++ {
		d := nic.RXRing()[i]
		if err := sys.Bus.Write(atk.Dev, d.IOVA, []byte("warmup-segment")); err != nil {
			return r.fail(err), nil
		}
		if err := nic.ReceiveOn(i, 14, netstack.ProtoTCP, forwardFlow); err != nil {
			return r.fail(err), nil
		}
	}
	if err := sys.Net.FlushGRO(nic); err != nil {
		return r.fail(err), nil
	}
	warmIdx := nic.PendingTX() - 1
	warm := nic.TXRing()[warmIdx]
	if _, err := atk.ReadTXSharedInfo(warm.LinearVA, nic.Model.RXBufferSize); err != nil {
		return r.fail(err), nil
	}
	vb, err := atk.Infer.VmemmapBase()
	if err != nil {
		return r.fail(err), nil
	}
	r.logf("vmemmap base %#x recovered from warm-up forward", uint64(vb))

	// Forge the struct page pointer for the target.
	pb, err := atk.Infer.PageOffsetBase()
	if err != nil {
		return r.fail(err), nil
	}
	targetPFN := layout.PFN((uint64(targetKVA) - uint64(pb)) / layout.PageSize)
	forged := uint64(vb) + uint64(targetPFN)*layout.StructPageSize
	pageOff := uint32(layout.PageOffsetOf(targetKVA))
	r.logf("target %#x → forged struct page %#x (+%d)", uint64(targetKVA), forged, pageOff)

	// Spoof a small UDP packet to be forwarded; in its RX window, append the
	// forged frag. The driver will map the target page for TX.
	slot := 2
	d := nic.RXRing()[slot]
	if err := sys.Bus.Write(atk.Dev, d.IOVA, []byte("udp")); err != nil {
		return r.fail(err), nil
	}
	nic.RXWindow = func(n *netstack.NIC, tr netstack.RXTrace) {
		if err := atk.SetNrFrags(tr.Desc.IOVA, tr.Desc.Cap, 1); err != nil {
			r.logf("window nr_frags write failed: %v", err)
			return
		}
		if err := atk.WriteTXFrag(tr.Desc.IOVA, tr.Desc.Cap, 0, device.DeviceFrag{PagePtr: forged, Off: pageOff, Len: length}); err != nil {
			r.logf("window frag write failed: %v", err)
		}
	}
	if err := nic.ReceiveOn(slot, 3, netstack.ProtoUDP, forwardFlow); err != nil {
		nic.RXWindow = nil
		return r.fail(err), nil
	}
	nic.RXWindow = nil
	spyIdx := nic.PendingTX() - 1
	spy := nic.TXRing()[spyIdx]
	if len(spy.FragVAs) != 1 {
		return r.fail(fmt.Errorf("driver did not map the forged frag (%d mappings)", len(spy.FragVAs))), nil
	}
	secret := make([]byte, length)
	if err := sys.Bus.Read(atk.Dev, spy.FragVAs[0], secret); err != nil {
		return r.fail(err), nil
	}
	r.logf("read %d bytes from arbitrary kernel page via forged frag", length)

	// Cover tracks: before signalling TX completion, undo the frag so the
	// release path does not drop a reference the kernel never took. The
	// spoofed RX buffer's page is still writable through the stale IOTLB
	// entry (deferred mode) or a neighbouring RX mapping.
	undo := func() error {
		if err := atk.SetNrFrags(d.IOVA, d.Cap, 0); err == nil {
			return nil
		}
		if via, ok := device.RingNeighborFor(nic.RXRing(), slot); ok {
			var raw [2]byte
			return atk.Bus.Write(atk.Dev, via+iommu.IOVA(netstack.SharedInfoNrFragsOff), raw[:])
		}
		return fmt.Errorf("no write path for cleanup")
	}
	if err := undo(); err != nil {
		r.logf("cleanup failed: %v — release will report a frag error", err)
	} else {
		r.logf("frags[] restored before TX completion: no trace left")
	}
	errsBefore := sys.Net.Stats().FragReleaseErrors
	if err := nic.CompleteTX(spyIdx); err != nil {
		return r.fail(err), nil
	}
	if err := nic.ReapCompletions(); err != nil {
		r.logf("note: reap reported %v", err)
	}
	clean := sys.Net.Stats().FragReleaseErrors == errsBefore
	r.Detail["clean"] = fmt.Sprintf("%v", clean)
	r.Success = !bytes.Equal(secret, make([]byte, length)) && clean
	return r, secret
}
