package attacks

import (
	"fmt"

	"dmafault/internal/core"
	"dmafault/internal/device"
	"dmafault/internal/dma"
	"dmafault/internal/iommu"
	"dmafault/internal/layout"
)

// RunFreelistDoS demonstrates the denial-of-service outcome §3.1 mentions
// ("a malicious device can corrupt random memory regions, resulting in a
// denial of service"): SLUB keeps the freelist pointer inside free objects,
// so a device with a same-page mapping (Fig. 1(b)) overwrites it and the
// next kmalloc on that slab dies — a crash on un-hardened kernels, a
// detected panic-equivalent here.
func RunFreelistDoS(sys *core.System, atk *device.Attacker) *Result {
	r := newResult("freelist-corruption DoS (§3.1, Fig. 1(b))")

	// The driver maps a kmalloc'd I/O buffer; free neighbours of the same
	// size class share its page, their freelist words exposed.
	ioBuf, err := sys.Mem.Slab.Kmalloc(0, 512, "nic_io_buf")
	if err != nil {
		return r.fail(err)
	}
	neighbor, err := sys.Mem.Slab.Kmalloc(0, 512, "scratch")
	if err != nil {
		return r.fail(err)
	}
	if err := sys.Mem.Slab.Kfree(neighbor); err != nil {
		return r.fail(err)
	}
	va, err := sys.Mapper.MapSingle(atk.Dev, ioBuf, 512, dma.Bidirectional)
	if err != nil {
		return r.fail(err)
	}
	r.logf("I/O buffer mapped BIDIRECTIONAL; a free 512-class object shares its page")

	// The device reads the page, spots a freelist word (a direct-map
	// pointer inside a free object), and stomps it.
	freelistIOVA := va + iommu64(neighbor-ioBuf)
	word, err := atk.Bus.ReadU64(atk.Dev, freelistIOVA)
	if err != nil {
		return r.fail(err)
	}
	if word != 0 && layout.Classify(layout.Addr(word)) != layout.RegionDirectMap {
		return r.fail(fmt.Errorf("expected a freelist pointer, found %#x", word))
	}
	r.logf("freelist word read through the mapping: %#x", word)
	if err := atk.Bus.WriteU64(atk.Dev, freelistIOVA, 0xdead000000000000); err != nil {
		return r.fail(err)
	}
	r.logf("freelist pointer overwritten with a wild address")

	// The next kmalloc of that class walks the poisoned freelist.
	_, err = sys.Mem.Slab.Kmalloc(0, 512, "victim_alloc")
	if err != nil {
		r.logf("kernel allocation failed: %v", err)
		r.Success = true
		r.Detail["outcome"] = "allocator halted (un-hardened kernel: panic)"
	} else {
		// The first allocation may reuse a clean head; push until the
		// poisoned link is consumed.
		for i := 0; i < 16; i++ {
			if _, err = sys.Mem.Slab.Kmalloc(0, 512, "victim_alloc"); err != nil {
				break
			}
		}
		r.Success = err != nil
		if err != nil {
			r.logf("kernel allocation failed after draining: %v", err)
		} else {
			r.logf("corruption not consumed (freelist order drained differently)")
		}
	}
	return r
}

// iommu64 converts a KVA delta to an IOVA delta (same low bits by §5.2.2).
func iommu64(d layout.Addr) iommu.IOVA { return iommu.IOVA(d) }
