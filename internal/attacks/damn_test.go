package attacks

import (
	"testing"

	"dmafault/internal/dma"
	"dmafault/internal/iommu"
	"dmafault/internal/mem"
	"dmafault/internal/netstack"
)

// §9.2: dedicated I/O allocators ([49], DAMN) segregate I/O memory from OS
// memory — "Nevertheless, this API can be easily thwarted by device drivers
// via functions, such as build_skb, that add a vulnerable skb_shared_info
// into an I/O region." Both halves, demonstrated:

func TestDedicatedIOAllocatorStopsRandomCoLocation(t *testing.T) {
	sys, _ := bootVictim(t, iommu.Strict, false, netstack.DriverI40E)
	io := mem.NewIOAllocator(sys.Mem)
	buf, err := io.Alloc(0, 512)
	if err != nil {
		t.Fatal(err)
	}
	va, err := sys.Mapper.MapSingle(attackerDev, buf, 512, dma.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	// Kernel secrets allocated now never land on the mapped page.
	secret, err := sys.Mem.Slab.Kmalloc(0, 512, "session_key")
	if err != nil {
		t.Fatal(err)
	}
	pIO, _ := sys.Layout.KVAToPFN(buf)
	pSecret, _ := sys.Layout.KVAToPFN(secret)
	if pIO == pSecret {
		t.Fatal("segregation failed: kernel object on the I/O page")
	}
	_ = va
}

func TestBuildSkbThwartsDedicatedIOAllocator(t *testing.T) {
	sys, _ := bootVictim(t, iommu.Strict, false, netstack.DriverI40E)
	atk, err := attackerFor(sys)
	if err != nil {
		t.Fatal(err)
	}
	initNet, _ := sys.Layout.SymbolKVA("init_net")
	atk.Infer.ObserveWords([]uint64{uint64(initNet)})

	io := mem.NewIOAllocator(sys.Mem)
	truesize := uint32(netstack.TruesizeFor(2048))
	buf, err := io.Alloc(0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	va, err := sys.Mapper.MapSingle(attackerDev, buf, uint64(truesize), dma.FromDevice)
	if err != nil {
		t.Fatal(err)
	}
	// The driver wraps the I/O buffer with build_skb: skb_shared_info now
	// lives INSIDE the dedicated I/O region — the allocator's guarantee is
	// irrelevant.
	s, err := sys.Net.BuildSKB(buf, truesize)
	if err != nil {
		t.Fatal(err)
	}
	if err := atk.PlantPayload(va, buf, 2048); err != nil {
		t.Fatal(err)
	}
	before := sys.Kernel.Escalations
	_ = sys.Net.ReleaseSKB(s) // external buffer: allocator owns it
	if sys.Kernel.Escalations != before+1 {
		t.Fatal("build_skb over the dedicated region did not fall — contradicts §9.2")
	}
	if err := io.Free(buf); err != nil {
		t.Fatal(err)
	}
}
