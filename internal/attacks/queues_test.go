package attacks

import (
	"testing"

	"dmafault/internal/layout"
)

// §5.3: "The memory footprint ... depends on the NIC capabilities and the
// number of cores (number of RX rings) on the server. This means such
// attacks have a higher chance of success on larger machines."
func TestFootprintScalesWithQueues(t *testing.T) {
	_, _, one, err := BootOnceQueues(Kernel50, 9, 0, BootJitterPages, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, _, four, err := BootOnceQueues(Kernel50, 9, 0, BootJitterPages, 4)
	if err != nil {
		t.Fatal(err)
	}
	if four.CoveredPages < 3*one.CoveredPages {
		t.Errorf("4-queue footprint %d pages not ~4x the 1-queue %d", four.CoveredPages, one.CoveredPages)
	}
}

func TestMoreQueuesRaiseRepeatProbability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-boot study is slow")
	}
	const trials = 16
	study := func(queues int) float64 {
		st := make(map[layout.PFN]int)
		var ref map[layout.PFN]uint64
		for i := 0; i < trials; i++ {
			_, _, rec, err := BootOnceQueues(Kernel50, 4000+int64(i), 0, 2048, queues)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = rec.BufStart
			}
			for p := range rec.BufStart {
				st[p]++
			}
		}
		best := 0
		for p := range ref {
			if st[p] > best {
				best = st[p]
			}
		}
		return float64(best) / float64(trials)
	}
	// Under heavy drift (2048 pages), one queue's small footprint repeats
	// poorly; eight queues blanket the drift range.
	r1 := study(1)
	r8 := study(8)
	t.Logf("repeat rate: 1 queue %.2f, 8 queues %.2f", r1, r8)
	if r8 < r1 {
		t.Errorf("more queues did not help: %.2f vs %.2f", r8, r1)
	}
	if r8 < 0.9 {
		t.Errorf("8-queue repeat rate %.2f below 0.9", r8)
	}
}
