package attacks

import (
	"fmt"

	"dmafault/internal/core"
	"dmafault/internal/device"
	"dmafault/internal/iommu"
	"dmafault/internal/layout"
	"dmafault/internal/netstack"
)

// RunMemoryDump implements the §3.1 headline consequence — "a full memory
// dump is possible when an attacker can modify data pointers before they are
// mapped, causing the driver to map arbitrary kernel addresses" — by
// iterating the Forward Thinking surveillance primitive (§5.5): each spoofed
// forwarded UDP packet carries one forged frags[] entry, the driver maps the
// named page for TX, and the NIC reads it. The attacker walks a PFN range
// and reassembles memory.
//
// Returns the dump alongside the trace; the caller can diff it against
// ground truth.
func RunMemoryDump(sys *core.System, nic *netstack.NIC, startPFN layout.PFN, pages int) (*Result, []byte) {
	r := newResult(fmt.Sprintf("memory dump via forged frags (%d pages from PFN %d)", pages, startPFN))
	if !sys.Net.Forwarding {
		return r.fail(fmt.Errorf("packet forwarding is disabled on the victim")), nil
	}
	atk, err := attackerFor(sys)
	if err != nil {
		return r.fail(err), nil
	}
	cbuf, _, err := victimActivity(sys, nic)
	if err != nil {
		return r.fail(err), nil
	}
	atk.ScanReadable([]iommu.IOVA{cbuf.IOVA})

	// One warm-up forward pins vmemmap_base (to forge struct pages).
	for i := 0; i < 2; i++ {
		d := nic.RXRing()[i]
		if err := sys.Bus.Write(atk.Dev, d.IOVA, []byte("warmup-segment")); err != nil {
			return r.fail(err), nil
		}
		if err := nic.ReceiveOn(i, 14, netstack.ProtoTCP, forwardFlow); err != nil {
			return r.fail(err), nil
		}
	}
	if err := sys.Net.FlushGRO(nic); err != nil {
		return r.fail(err), nil
	}
	warm := nic.TXRing()[nic.PendingTX()-1]
	if _, err := atk.ReadTXSharedInfo(warm.LinearVA, nic.Model.RXBufferSize); err != nil {
		return r.fail(err), nil
	}
	vb, err := atk.Infer.VmemmapBase()
	if err != nil {
		return r.fail(err), nil
	}
	r.logf("vmemmap base %#x recovered; forging struct pages for PFNs %d..%d", uint64(vb), startPFN, startPFN+layout.PFN(pages)-1)

	dump := make([]byte, 0, pages*layout.PageSize)
	slot := 2
	dumped := 0
	for p := 0; p < pages; p++ {
		pfn := startPFN + layout.PFN(p)
		forged := uint64(vb) + uint64(pfn)*layout.StructPageSize
		if slot >= len(nic.RXRing()) {
			if err := nic.FillRX(); err != nil {
				return r.fail(err), dump
			}
			slot = 0
		}
		d := nic.RXRing()[slot]
		if err := sys.Bus.Write(atk.Dev, d.IOVA, []byte("udp")); err != nil {
			return r.fail(err), dump
		}
		nic.RXWindow = func(n *netstack.NIC, tr netstack.RXTrace) {
			if err := atk.SetNrFrags(tr.Desc.IOVA, tr.Desc.Cap, 1); err != nil {
				return
			}
			_ = atk.WriteTXFrag(tr.Desc.IOVA, tr.Desc.Cap, 0, device.DeviceFrag{PagePtr: forged, Off: 0, Len: layout.PageSize})
		}
		err := nic.ReceiveOn(slot, 3, netstack.ProtoUDP, forwardFlow)
		nic.RXWindow = nil
		if err != nil {
			return r.fail(err), dump
		}
		spyIdx := nic.PendingTX() - 1
		spy := nic.TXRing()[spyIdx]
		if len(spy.FragVAs) != 1 {
			return r.fail(fmt.Errorf("PFN %d: frag not mapped", pfn)), dump
		}
		pageBytes := make([]byte, layout.PageSize)
		if err := sys.Bus.Read(atk.Dev, spy.FragVAs[0], pageBytes); err != nil {
			return r.fail(err), dump
		}
		dump = append(dump, pageBytes...)
		dumped++
		// Cover tracks before completing, as in RunSurveillance.
		if err := atk.SetNrFrags(d.IOVA, d.Cap, 0); err != nil {
			if via, ok := device.RingNeighborFor(nic.RXRing(), slot); ok {
				var raw [2]byte
				_ = atk.Bus.Write(atk.Dev, via+iommu.IOVA(netstack.SharedInfoNrFragsOff), raw[:])
			}
		}
		if err := nic.CompleteTX(spyIdx); err != nil {
			return r.fail(err), dump
		}
		if err := nic.ReapCompletions(); err != nil {
			r.logf("note: reap on PFN %d reported %v", pfn, err)
		}
		slot++
	}
	r.logf("dumped %d pages (%d KiB) of arbitrary physical memory", dumped, dumped*4)
	r.Detail["pages"] = fmt.Sprintf("%d", dumped)
	r.Success = dumped == pages && sys.Net.Stats().FragReleaseErrors == 0
	return r, dump
}
