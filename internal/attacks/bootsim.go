package attacks

import (
	"fmt"
	"math/rand"
	"sort"

	"dmafault/internal/core"
	"dmafault/internal/faultinject"
	"dmafault/internal/iommu"
	"dmafault/internal/layout"
	"dmafault/internal/netstack"
	"dmafault/internal/par"
)

// Boot determinism study (§5.3). "At every reboot, the same set of commands
// is executed in the same order, initiating the same kernel modules and
// starting the same processes. While the pages each module receives may vary
// in a multi-core environment due to timing issues, we do not expect the
// drift to be too large." The study boots the simulated machine many times
// and measures how often the RX-ring page frames repeat.

// KernelVersion selects the driver memory-footprint regime of §5.3.
type KernelVersion string

const (
	// Kernel50 models Linux 5.0: mlx5 HW LRO disabled, 2 KiB per RX entry
	// (64 MiB per port on the paper's 32-core testbed).
	Kernel50 KernelVersion = "5.0"
	// Kernel415 models Linux 4.15: HW LRO enabled, 64 KiB per RX entry
	// (2 GiB per port) — the version with >95% PFN repeat rates.
	Kernel415 KernelVersion = "4.15"
)

// driverFor maps the kernel version to its mlx5 driver model.
func driverFor(v KernelVersion) netstack.DriverModel {
	if v == Kernel415 {
		return netstack.DriverMlx5LRO
	}
	return netstack.DriverMlx5
}

// BootJitterPages bounds the early-boot allocation drift between reboots
// ("we do not expect the drift to be too large"): up to 2 MiB of transient
// boot-time allocations survive or not depending on timing. It is the
// default amplitude; the D5 ablation and campaign scenarios override it.
const BootJitterPages = 512

// bootFixedPages is the deterministic early-boot footprint (modules, initrd
// processing) allocated identically on every boot.
const bootFixedPages = 200

// attackerDev is the requester ID the malicious NIC uses in every scenario.
const attackerDev iommu.DeviceID = 1

// BootRecord is the outcome of one simulated boot: which frames back the RX
// ring and where buffers start within them.
type BootRecord struct {
	Seed int64
	// BufStart maps a PFN to the in-page offset of the first RX buffer
	// starting in that frame.
	BufStart map[layout.PFN]uint64
	// CoveredPages is the total number of frames the ring's buffers span —
	// the driver memory footprint of §5.3.
	CoveredPages int
}

// BootOptions bundles the knobs of a single simulated boot. The zero value
// matches BootOnce's historical defaults except JitterPages (0 means no
// drift; pass BootJitterPages for the classic study amplitude).
type BootOptions struct {
	// MemBytes is the simulated physical memory size (0 auto-sizes to the
	// ring footprint).
	MemBytes uint64
	// JitterPages is the early-boot allocation drift amplitude (D5 knob).
	JitterPages int
	// Queues is the RX ring count (0 means 1).
	Queues int
	// FaultPlan, when non-nil, boots the machine with deterministic fault
	// injection armed (internal/faultinject) — DMA corruption, IOMMU
	// stalls, RX descriptor loss, and allocator pressure all become
	// possible, and errors from injected allocator pressure wrap
	// faultinject.ErrTransient so campaign retry can classify them.
	FaultPlan *faultinject.Plan
}

// BootOnce boots a machine with the version's driver and returns both the
// system (for attack continuation) and the ring record.
func BootOnce(version KernelVersion, seed int64, memBytes uint64) (*core.System, *netstack.NIC, *BootRecord, error) {
	return BootOnceOpts(version, seed, BootOptions{MemBytes: memBytes, JitterPages: BootJitterPages})
}

// BootOnceJitter is BootOnce with an explicit early-boot drift amplitude —
// the D5 ablation knob: repeat probability is footprint vs drift.
func BootOnceJitter(version KernelVersion, seed int64, memBytes uint64, jitterPages int) (*core.System, *netstack.NIC, *BootRecord, error) {
	return BootOnceOpts(version, seed, BootOptions{MemBytes: memBytes, JitterPages: jitterPages})
}

// BootOnceQueues boots with `queues` RX rings (§5.2.2: one RX ring per core;
// §5.3: "such attacks have a higher chance of success on larger machines",
// because the footprint scales with the number of rings). The returned NIC
// is queue 0; the record covers every queue.
func BootOnceQueues(version KernelVersion, seed int64, memBytes uint64, jitterPages, queues int) (*core.System, *netstack.NIC, *BootRecord, error) {
	return BootOnceOpts(version, seed, BootOptions{MemBytes: memBytes, JitterPages: jitterPages, Queues: queues})
}

// BootOnceOpts is the general boot: every knob explicit, including an
// optional fault plan. All other BootOnce* variants delegate here.
func BootOnceOpts(version KernelVersion, seed int64, o BootOptions) (*core.System, *netstack.NIC, *BootRecord, error) {
	memBytes, jitterPages, queues := o.MemBytes, o.JitterPages, o.Queues
	if queues <= 0 {
		queues = 1
	}
	model := driverFor(version)
	if memBytes == 0 {
		memBytes = 128 << 20
		// HW-LRO rings are 32 MiB each; size memory to the queue count.
		need := uint64(queues) * uint64(model.RingSize) * layout.PageAlignUp(netstack.TruesizeFor(model.RXBufferSize))
		for memBytes < 2*need+(64<<20) {
			memBytes *= 2
		}
	}
	sys, err := core.NewSystem(core.Config{Seed: seed, KASLR: true, Mode: iommu.Deferred, CPUs: maxInt(queues, 2), MemBytes: memBytes, FaultPlan: o.FaultPlan})
	if err != nil {
		return nil, nil, nil, err
	}
	// Early boot: fixed footprint + timing jitter. The jitter pages stay
	// allocated (boot-time caches), shifting everything after them.
	rng := rand.New(rand.NewSource(seed ^ 0xb007))
	jitter := 0
	if jitterPages > 0 {
		jitter = rng.Intn(jitterPages)
	}
	for i := 0; i < bootFixedPages+jitter; i++ {
		if _, err := sys.Mem.Pages.AllocPages(0, 0); err != nil {
			return nil, nil, nil, fmt.Errorf("attacks: boot allocations: %w", err)
		}
	}
	rec := &BootRecord{Seed: seed, BufStart: make(map[layout.PFN]uint64)}
	covered := make(map[layout.PFN]bool)
	var first *netstack.NIC
	for q := 0; q < queues; q++ {
		nic, err := sys.AddNIC(attackerDev+iommu.DeviceID(q), model, q)
		if err != nil {
			return nil, nil, nil, err
		}
		if first == nil {
			first = nic
		}
		for _, d := range nic.RXRing() {
			if !d.Ready {
				// Injected RX descriptor loss leaves slots unposted; an
				// empty descriptor has no frame to record.
				continue
			}
			fp, _ := sys.Layout.KVAToPFN(d.Data)
			lp, _ := sys.Layout.KVAToPFN(d.Data + layout.Addr(netstack.TruesizeFor(d.Cap)-1))
			if _, ok := rec.BufStart[fp]; !ok {
				rec.BufStart[fp] = layout.PageOffsetOf(d.Data)
			}
			for p := fp; p <= lp; p++ {
				covered[p] = true
			}
		}
	}
	rec.CoveredPages = len(covered)
	return sys, first, rec, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BootStudy aggregates many boots.
type BootStudy struct {
	Version KernelVersion
	Trials  int
	// Queues is the RX ring count each boot used (1 for the classic study).
	Queues int
	// Freq counts, per PFN, the boots whose ring included it.
	Freq map[layout.PFN]int
	// ModalPFN is the most-repeated ring frame; ModalRate its frequency.
	ModalPFN  layout.PFN
	ModalRate float64
	// ModalOffset is the buffer start offset on the modal frame in the
	// reference (first) boot — what the offline attacker memorizes.
	ModalOffset uint64
	// MedianRate is the median repeat frequency over the reference boot's
	// frames: the "many PFNs repeat in more than X% of reboots" statistic.
	MedianRate float64
	// FootprintPages is the reference boot's ring footprint.
	FootprintPages int
}

// RunBootStudy simulates `trials` reboots and computes the §5.3 statistics.
func RunBootStudy(version KernelVersion, trials int, seedBase int64) (*BootStudy, error) {
	return RunBootStudyJitter(version, trials, seedBase, BootJitterPages)
}

// RunBootStudyJitter is RunBootStudy with an explicit drift amplitude (D5).
func RunBootStudyJitter(version KernelVersion, trials int, seedBase int64, jitterPages int) (*BootStudy, error) {
	return RunBootStudyQueues(version, trials, seedBase, jitterPages, 1)
}

// RunBootStudyQueues is the general study: explicit drift amplitude (D5)
// and RX-queue count (§5.3 "larger machines"). Boots run on the campaign
// engine's worker pool (internal/par): each reboot is an isolated machine
// fully determined by its seed, and records merge in trial order, so the
// statistics are identical to the historical sequential loop at any worker
// count.
func RunBootStudyQueues(version KernelVersion, trials int, seedBase int64, jitterPages, queues int) (*BootStudy, error) {
	return RunBootStudyOpts(version, trials, seedBase, BootOptions{JitterPages: jitterPages, Queues: queues})
}

// RunBootStudyOpts is the general study with every boot knob explicit — in
// particular a fault plan, under which some boots may fail with transient
// injected errors (surfaced with par's deterministic lowest-trial error).
func RunBootStudyOpts(version KernelVersion, trials int, seedBase int64, o BootOptions) (*BootStudy, error) {
	queues := o.Queues
	if queues <= 0 {
		queues = 1
	}
	st := &BootStudy{Version: version, Trials: trials, Queues: queues, Freq: make(map[layout.PFN]int)}
	records, err := par.Map(trials, 0, func(i int) (*BootRecord, error) {
		_, _, rec, err := BootOnceOpts(version, seedBase+int64(i), o)
		return rec, err
	})
	if err != nil {
		return nil, err
	}
	reference := records[0]
	if len(reference.BufStart) == 0 {
		// Possible only under injected RX descriptor loss: the reference
		// boot posted nothing, so there is no profile to build.
		return nil, fmt.Errorf("attacks: reference boot posted no RX buffers")
	}
	st.FootprintPages = reference.CoveredPages
	for _, rec := range records {
		for p := range rec.BufStart {
			st.Freq[p]++
		}
	}
	// Modal frame: prefer frames where a buffer actually starts in the
	// reference boot (the attacker needs the buffer offset too).
	bestCount := -1
	for p, off := range reference.BufStart {
		c := st.Freq[p]
		if c > bestCount || (c == bestCount && p < st.ModalPFN) {
			bestCount = c
			st.ModalPFN = p
			st.ModalOffset = off
		}
	}
	st.ModalRate = float64(bestCount) / float64(trials)
	rates := make([]float64, 0, len(reference.BufStart))
	for p := range reference.BufStart {
		rates = append(rates, float64(st.Freq[p])/float64(trials))
	}
	sort.Float64s(rates)
	st.MedianRate = rates[len(rates)/2]
	return st, nil
}
