package attacks

import (
	"testing"

	"dmafault/internal/iommu"
	"dmafault/internal/netstack"
)

func TestPageSprayEscalatesUnderDeferred(t *testing.T) {
	sys, nic := bootVictim(t, iommu.Deferred, false, netstack.DriverMlx5LRO)
	r := RunPageSpray(sys, nic, SprayConfig{Blocks: 8})
	t.Log("\n" + r.String())
	if r.Detail["reuse"] != "head" {
		t.Fatalf("spray should reclaim the freed RX block head: %+v", r.Detail)
	}
	if r.Detail["stale"] != "written" {
		t.Fatalf("stale IOTLB write should land under deferred invalidation: %+v", r.Detail)
	}
	if r.Detail["window_path"] == "" {
		t.Error("escalation should attribute a Fig. 7 window path")
	}
	if !r.Success || r.Escalations == 0 {
		t.Fatalf("page spray should escalate: success=%v escalations=%d", r.Success, r.Escalations)
	}
}

func TestPageSprayBlockedUnderStrict(t *testing.T) {
	// Strict invalidation tears down the IOVA before the page returns to
	// the buddy allocator: the spray still lands, but the stale write faults.
	sys, nic := bootVictim(t, iommu.Strict, false, netstack.DriverMlx5LRO)
	r := RunPageSpray(sys, nic, SprayConfig{Blocks: 8})
	t.Log("\n" + r.String())
	if r.Detail["reuse"] != "head" {
		t.Fatalf("reuse is an allocator property, independent of IOMMU mode: %+v", r.Detail)
	}
	if r.Detail["stale"] != "blocked" {
		t.Fatalf("strict mode should block the stale write: %+v", r.Detail)
	}
	if r.Success || r.Escalations != 0 {
		t.Fatalf("no escalation expected under strict: %+v", r)
	}
}

func TestPageSprayMissesFragBackedDriver(t *testing.T) {
	// i40e RX buffers live in page_frag regions whose region refcount keeps
	// the backing block out of the buddy allocator — nothing to reclaim.
	sys, nic := bootVictim(t, iommu.Deferred, false, netstack.DriverI40E)
	r := RunPageSpray(sys, nic, SprayConfig{Blocks: 8})
	t.Log("\n" + r.String())
	if r.Detail["reuse"] != "miss" {
		t.Fatalf("frag-backed buffers should not be sprayable: %+v", r.Detail)
	}
	if r.Success {
		t.Fatal("no escalation without reuse")
	}
}

func TestPageSprayOrderZeroDetoursThroughHotCache(t *testing.T) {
	// Forcing order-0 spray allocations sends them through the per-CPU hot
	// cache, which cannot serve the freed high-order compound block.
	sys, nic := bootVictim(t, iommu.Deferred, false, netstack.DriverMlx5LRO)
	r := RunPageSpray(sys, nic, SprayConfig{Blocks: 8, Order: -1})
	t.Log("\n" + r.String())
	if r.Detail["reuse"] != "miss" {
		t.Fatalf("order-0 spray should miss the compound block: %+v", r.Detail)
	}
}

func TestPageSprayLowerOrderStillHitsHead(t *testing.T) {
	// Buddy splits keep the low half, so an order-2 spray against a freed
	// order-4 block still reclaims the head frames the stale IOVA points at.
	sys, nic := bootVictim(t, iommu.Deferred, false, netstack.DriverMlx5LRO)
	r := RunPageSpray(sys, nic, SprayConfig{Blocks: 4, Order: 2})
	t.Log("\n" + r.String())
	if r.Detail["reuse"] != "head" {
		t.Fatalf("order-2 spray should hit the freed block head: %+v", r.Detail)
	}
	if !r.Success || r.Escalations == 0 {
		t.Fatalf("head hit should escalate: %+v", r)
	}
}

func TestPageSprayDefaultsBlocks(t *testing.T) {
	sys, nic := bootVictim(t, iommu.Deferred, false, netstack.DriverMlx5LRO)
	r := RunPageSpray(sys, nic, SprayConfig{})
	if r.Detail["spray_blocks"] == "" || r.Detail["spray_blocks"] == "0" {
		t.Fatalf("zero Blocks should fall back to a positive default: %+v", r.Detail)
	}
}
