package attacks

import (
	"testing"

	"dmafault/internal/iommu"
	"dmafault/internal/netstack"
)

// The §5.2 conclusion as a matrix: Poisoned TX succeeds under every driver
// ordering × invalidation mode, riding whichever Fig. 7 path is open.
func TestPoisonedTXAcrossDriverAndModeMatrix(t *testing.T) {
	cases := []struct {
		model    netstack.DriverModel
		mode     iommu.Mode
		wantPath WindowPath
	}{
		{netstack.DriverI40E, iommu.Deferred, WindowDriverOrder},
		{netstack.DriverI40E, iommu.Strict, WindowDriverOrder},
		{netstack.DriverCorrect, iommu.Deferred, WindowStaleIOTLB},
		{netstack.DriverCorrect, iommu.Strict, WindowNeighborIOVA},
	}
	for _, c := range cases {
		name := c.model.Name + "/" + c.mode.String()
		sys, nic := bootVictim(t, c.mode, false, c.model)
		r := RunPoisonedTX(sys, nic)
		if !r.Success {
			t.Errorf("%s: attack failed:\n%s", name, r.String())
			continue
		}
		if got := r.Detail["window_path"]; got != c.wantPath.String() {
			t.Errorf("%s: used path %q, want %q", name, got, c.wantPath)
		}
		t.Logf("%-18s escalated via %s", name, r.Detail["window_path"])
	}
}

// RingFlood likewise works in strict mode — but only where path (iii)
// exists, i.e. on sub-page (page_frag) RX buffers (§5.2.2: "this holds as
// long as the buffer sizes are smaller than 4 KB"). Kernel 5.0's 2 KiB
// buffers qualify; 4.15's 64 KiB LRO buffers own whole pages and are tested
// below as the honest negative.
func TestRingFloodStrictMode(t *testing.T) {
	if testing.Short() {
		t.Skip("boot study is slow")
	}
	st, err := RunBootStudyJitter(Kernel50, 10, 4242, 64)
	if err != nil {
		t.Fatal(err)
	}
	sys, nic, _, err := BootOnceJitter(Kernel50, 4242+3, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	sys.IOMMU.SetMode(iommu.Strict)
	r := RunRingFlood(sys, nic, st)
	t.Log("\n" + r.String())
	if !r.Success {
		t.Fatal("RingFlood failed in strict mode on page_frag buffers")
	}
	if r.Detail["window_path"] != WindowNeighborIOVA.String() {
		t.Errorf("path = %s, want neighbor IOVA", r.Detail["window_path"])
	}
}

// The honest negative: whole-page LRO buffers leave no type (c) neighbour,
// so strict mode + correct unmap ordering really does close the window —
// exactly the scope limit §5.2.2 states for path (iii).
func TestRingFloodStrictModeBlockedOnWholePageBuffers(t *testing.T) {
	if testing.Short() {
		t.Skip("boot study is slow")
	}
	st, err := RunBootStudy(Kernel415, 8, 4242)
	if err != nil {
		t.Fatal(err)
	}
	sys, nic, _, err := BootOnce(Kernel415, 4242+9, 0)
	if err != nil {
		t.Fatal(err)
	}
	sys.IOMMU.SetMode(iommu.Strict)
	r := RunRingFlood(sys, nic, st)
	if r.Success {
		t.Fatal("RingFlood succeeded despite no open window path")
	}
	if r.Detail["window_path"] != WindowNone.String() {
		t.Errorf("path = %s, want none", r.Detail["window_path"])
	}
}
