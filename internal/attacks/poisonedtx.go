package attacks

import (
	"fmt"

	"dmafault/internal/core"
	"dmafault/internal/iommu"
	"dmafault/internal/netstack"
)

// Poisoned TX (§5.4, Fig. 8). When the boot-determinism route is closed
// (small driver footprint), the attacker *manufactures* the KVA leak: it
// coerces a userspace service into echoing its payload, which the TCP
// sendmsg path places into frag pages whose struct page pointers — and hence
// KVAs — appear in the TX packet's skb_shared_info, readable by the NIC.

// RunPoisonedTX executes the full §5.4 flow against a system running an
// echo-style service.
func RunPoisonedTX(sys *core.System, nic *netstack.NIC) *Result {
	r := newResult("Poisoned TX")
	atk, err := attackerFor(sys)
	if err != nil {
		return r.fail(err)
	}
	echo := netstack.NewEchoService(sys.Net, nic)
	cb, _, err := victimActivity(sys, nic)
	if err != nil {
		return r.fail(err)
	}

	// Step 0: break KASLR text (gadget addresses are needed to *author* the
	// payload before sending it).
	if used := atk.ScanReadable([]iommu.IOVA{cb.IOVA}); used == 0 {
		return r.fail(fmt.Errorf("leak scan found no kernel pointers"))
	}
	if _, err := atk.Infer.TextBase(); err != nil {
		return r.fail(err)
	}
	r.logf("KASLR text base recovered from admin-buffer leak")

	// Step 1: send the malicious request. Its payload IS the weaponized
	// buffer: ubuf_info (callback→pivot) + ROP chain. The echo service
	// obligingly copies it into TX frag pages.
	payload, err := atk.PayloadBytes()
	if err != nil {
		return r.fail(err)
	}
	reqSlot := 0
	d := nic.RXRing()[reqSlot]
	if err := sys.Bus.Write(atk.Dev, d.IOVA, payload); err != nil {
		return r.fail(err)
	}
	if err := nic.ReceiveOn(reqSlot, uint32(len(payload)), netstack.ProtoUDP, 101); err != nil {
		return r.fail(err)
	}
	if echo.Echoed != 1 || nic.PendingTX() == 0 {
		return r.fail(fmt.Errorf("echo service did not transmit a reply"))
	}
	r.logf("payload echoed: TX sk_buff with frags mapped for the device")

	// Step 2: delay the TX completion (the device controls it) so the
	// poisoned buffer stays alive; the driver's watchdog allows ~5 s.
	txIdx := nic.PendingTX() - 1
	tx := nic.TXRing()[txIdx]
	r.logf("TX completion delayed (watchdog budget %v)", netstack.TXTimeout)

	// Step 3: read the TX shared info; the frag's struct page pointer and
	// the zerocopy destructor_arg pin vmemmap_base and page_offset_base,
	// and the frag translates to the payload's KVA.
	view, err := atk.ReadTXSharedInfo(tx.LinearVA, 128)
	if err != nil {
		return r.fail(err)
	}
	if len(view.Frags) == 0 {
		return r.fail(fmt.Errorf("echo reply carried no frags"))
	}
	ubufKVA, err := atk.FragKVA(view.Frags[0])
	if err != nil {
		return r.fail(err)
	}
	r.logf("TX shared info leak: frag struct page %#x → payload KVA %#x",
		view.Frags[0].PagePtr, uint64(ubufKVA))

	// Step 4: spoof a second RX packet and, in its processing window,
	// overwrite its shared info's destructor_arg with the payload KVA,
	// through whichever Fig. 7 path the driver/mode combination leaves open.
	// (The trigger is delivered as UDP; the echo service re-echoes four
	// harmless bytes.)
	before := sys.Kernel.Escalations
	path, err := triggerInjection(sys, atk, nic, ubufKVA, 102)
	r.Escalations = sys.Kernel.Escalations - before
	r.Success = r.Escalations > 0
	if r.Success {
		r.logf("window path %v → trigger released → callback → pivot → ROP chain in echoed payload: escalated", path)
	} else {
		r.logf("attack failed (path %v, release error: %v)", path, err)
	}
	r.Detail["window_path"] = path.String()

	// Step 5: let the TX complete now that the chain has run.
	if err := nic.CompleteTX(txIdx); err == nil {
		if err := nic.ReapCompletions(); err != nil {
			r.logf("note: TX reap reported %v", err)
		}
	}
	return r
}
