package attacks

import (
	"fmt"

	"dmafault/internal/core"
	"dmafault/internal/device"
	"dmafault/internal/iommu"
	"dmafault/internal/netstack"
)

// Fig. 7: the three paths by which a device obtains a write window on
// skb_shared_info after the CPU initializes it.
type WindowPath int

const (
	// WindowNone: no path worked (the matrix has no such cell in practice —
	// the paper's point).
	WindowNone WindowPath = iota
	// WindowDriverOrder: path (i) — the driver creates the sk_buff before
	// unmapping, so the buffer's own mapping is still valid.
	WindowDriverOrder
	// WindowStaleIOTLB: path (ii) — deferred invalidation leaves a stale
	// IOTLB entry after the (correctly ordered) unmap.
	WindowStaleIOTLB
	// WindowNeighborIOVA: path (iii) — even under strict invalidation, a
	// co-located buffer's still-valid IOVA reaches the same page.
	WindowNeighborIOVA
)

// String names the path as Fig. 7 does.
func (w WindowPath) String() string {
	switch w {
	case WindowDriverOrder:
		return "(i) driver unmap ordering"
	case WindowStaleIOTLB:
		return "(ii) deferred IOTLB invalidation"
	case WindowNeighborIOVA:
		return "(iii) co-located buffer IOVA (type c)"
	default:
		return "none"
	}
}

// ProbeTimeWindow determines which Fig. 7 path lets the device corrupt the
// shared info of an RX buffer being processed, on the given system. It
// delivers one packet and, inside the processing window, attempts the three
// paths in the paper's order, verifying the write landed via a CPU-side
// ground-truth read of destructor_arg.
func ProbeTimeWindow(sys *core.System, nic *netstack.NIC, slot int) (WindowPath, error) {
	atk, err := attackerFor(sys)
	if err != nil {
		return WindowNone, err
	}
	d := nic.RXRing()[slot]
	const marker = 0x5afe5afe5afe5afe
	if err := sys.Bus.Write(atk.Dev, d.IOVA, []byte("probe")); err != nil {
		return WindowNone, err
	}
	// Writing up to the shared info region primes the IOTLB for its page —
	// a real NIC writing a full-MTU packet does this naturally; path (ii)
	// depends on the stale entry.
	si := device.SharedInfoIOVA(d.IOVA, d.Cap)
	if err := sys.Bus.Write(atk.Dev, si, make([]byte, 8)); err != nil {
		return WindowNone, err
	}
	var path WindowPath
	nic.RXWindow = func(n *netstack.NIC, tr netstack.RXTrace) {
		si := device.SharedInfoIOVA(tr.Desc.IOVA, tr.Desc.Cap)
		staleBefore := sys.IOMMU.Stats().StaleHits
		// Paths (i)/(ii) share the IOVA; the page-table state and the stale
		// counter tell them apart.
		if err := atk.Bus.WriteU64(atk.Dev, si+netstack.SharedInfoDestructorArgOff, marker); err == nil {
			if tr.BuildWhileMapped && sys.IOMMU.Stats().StaleHits == staleBefore {
				path = WindowDriverOrder
			} else {
				path = WindowStaleIOTLB
			}
			return
		}
		// Path (iii): a neighbouring RX buffer's mapping.
		if via, ok := device.RingNeighborFor(n.RXRing(), slot); ok {
			if err := atk.Bus.WriteU64(atk.Dev, via+iommu.IOVA(netstack.SharedInfoDestructorArgOff), marker); err == nil {
				path = WindowNeighborIOVA
				return
			}
		}
		path = WindowNone
	}
	defer func() { nic.RXWindow = nil }()
	skbReleased := false
	sys.Net.OnDeliver(func(s *netstack.SKB) error {
		// Ground truth: did the device's write survive into the delivered
		// packet's shared info?
		v, err := sys.Net.DestructorArg(s)
		if err != nil {
			return err
		}
		if uint64(v) != marker {
			path = WindowNone
		}
		// Neutralize before release so the probe does not hijack anything.
		if err := sys.Mem.WriteU64(s.SharedInfo()+netstack.SharedInfoDestructorArgOff, 0); err != nil {
			return err
		}
		skbReleased = true
		return nil
	})
	if err := nic.ReceiveOn(slot, 5, netstack.ProtoUDP, 1); err != nil {
		return WindowNone, err
	}
	if !skbReleased {
		return WindowNone, fmt.Errorf("attacks: probe packet not delivered")
	}
	return path, nil
}

// WindowCell is one cell of the Fig. 7 matrix.
type WindowCell struct {
	Driver string
	Mode   iommu.Mode
	Path   WindowPath
}

// WindowMatrix evaluates driver-ordering × IOMMU-mode combinations: the
// paper's conclusion is that every cell has *some* working path, i.e. "the
// attacker can always modify the callback pointer" (§5.2).
func WindowMatrix(seed int64) ([]WindowCell, error) {
	var out []WindowCell
	for _, model := range []netstack.DriverModel{netstack.DriverI40E, netstack.DriverCorrect} {
		for _, mode := range []iommu.Mode{iommu.Deferred, iommu.Strict} {
			sys, err := core.NewSystem(core.Config{Seed: seed, KASLR: true, Mode: mode})
			if err != nil {
				return nil, err
			}
			nic, err := sys.AddNIC(attackerDev, model, 0)
			if err != nil {
				return nil, err
			}
			// Pick a slot whose neighbour shares its page so path (iii) has
			// its preconditions (§5.2.2: pairs of successive descriptors).
			slot := PickNeighborSlot(nic)
			path, err := ProbeTimeWindow(sys, nic, slot)
			if err != nil {
				return nil, err
			}
			out = append(out, WindowCell{Driver: model.Name, Mode: mode, Path: path})
		}
	}
	return out, nil
}

// PickNeighborSlot returns a slot for which a neighbouring descriptor can
// reach its shared info page, or 0 if none.
func PickNeighborSlot(nic *netstack.NIC) int {
	ring := nic.RXRing()
	for i := range ring {
		if _, ok := device.RingNeighborFor(ring, i); ok {
			return i
		}
	}
	return 0
}
