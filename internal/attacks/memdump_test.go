package attacks

import (
	"bytes"
	"testing"

	"dmafault/internal/iommu"
	"dmafault/internal/layout"
	"dmafault/internal/netstack"
)

func TestMemoryDumpMatchesGroundTruth(t *testing.T) {
	sys, nic := bootVictim(t, iommu.Deferred, true, netstack.DriverI40E)
	// The victim fills a few pages with known content the device never had
	// mapped.
	base, err := sys.Mem.Pages.AllocPages(1, 2) // 4 contiguous pages
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 4*layout.PageSize)
	for i := range want {
		want[i] = byte(i * 7)
	}
	if err := sys.Mem.Write(sys.Layout.PFNToKVA(base), want); err != nil {
		t.Fatal(err)
	}
	r, dump := RunMemoryDump(sys, nic, base, 4)
	t.Log("\n" + r.String())
	if !r.Success {
		t.Fatal("memory dump failed")
	}
	if !bytes.Equal(dump, want) {
		t.Fatal("dumped bytes differ from ground truth")
	}
	if sys.Kernel.Escalations != 0 {
		t.Error("memory dump should not escalate")
	}
}

func TestMemoryDumpRequiresForwarding(t *testing.T) {
	sys, nic := bootVictim(t, iommu.Deferred, false, netstack.DriverI40E)
	r, _ := RunMemoryDump(sys, nic, 2000, 1)
	if r.Success {
		t.Fatal("dump succeeded with forwarding disabled")
	}
}
