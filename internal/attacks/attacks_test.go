package attacks

import (
	"bytes"
	"testing"

	"dmafault/internal/core"
	"dmafault/internal/iommu"
	"dmafault/internal/netstack"
)

func bootVictim(t *testing.T, mode iommu.Mode, forwarding bool, model netstack.DriverModel) (*core.System, *netstack.NIC) {
	t.Helper()
	sys, err := core.NewSystem(core.Config{Seed: 1234, KASLR: true, Mode: mode, Forwarding: forwarding})
	if err != nil {
		t.Fatal(err)
	}
	nic, err := sys.AddNIC(attackerDev, model, 0)
	if err != nil {
		t.Fatal(err)
	}
	return sys, nic
}

func TestSingleStepBaseline(t *testing.T) {
	sys, _ := bootVictim(t, iommu.Strict, false, netstack.DriverI40E)
	atk, err := attackerFor(sys)
	if err != nil {
		t.Fatal(err)
	}
	blk, err := InstallBuggyDriver(sys, attackerDev, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := RunSingleStep(sys, atk, blk)
	t.Log("\n" + r.String())
	if !r.Success || r.Escalations != 1 {
		t.Fatalf("single-step failed: %+v", r)
	}
}

func TestSingleStepBlockedWithoutLeak(t *testing.T) {
	// Without the KASLR-breaking scan, the attacker cannot author the chain.
	sys, _ := bootVictim(t, iommu.Strict, false, netstack.DriverI40E)
	atk, _ := attackerFor(sys)
	if _, err := atk.ChainAddresses(); err == nil {
		t.Fatal("chain addresses available without any leak")
	}
}

func TestBootStudyStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("boot study is slow")
	}
	const trials = 24
	st50, err := RunBootStudy(Kernel50, trials, 5000)
	if err != nil {
		t.Fatal(err)
	}
	st415, err := RunBootStudy(Kernel415, trials, 9000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("5.0:  footprint=%d pages, modal=%.2f, median=%.2f", st50.FootprintPages, st50.ModalRate, st50.MedianRate)
	t.Logf("4.15: footprint=%d pages, modal=%.2f, median=%.2f", st415.FootprintPages, st415.ModalRate, st415.MedianRate)
	// §5.3 shape: the 4.15 (HW LRO, big footprint) repeat rate exceeds the
	// 5.0 one; 4.15 > 95%, 5.0 > 50%.
	if st415.FootprintPages <= st50.FootprintPages {
		t.Errorf("4.15 footprint (%d) not larger than 5.0 (%d)", st415.FootprintPages, st50.FootprintPages)
	}
	if st415.ModalRate <= 0.95 {
		t.Errorf("4.15 modal repeat rate %.2f, want > 0.95", st415.ModalRate)
	}
	if st50.ModalRate <= 0.50 {
		t.Errorf("5.0 modal repeat rate %.2f, want > 0.50", st50.ModalRate)
	}
	if st415.ModalRate < st50.ModalRate {
		t.Errorf("4.15 rate %.2f below 5.0 rate %.2f", st415.ModalRate, st50.ModalRate)
	}
}

func TestRingFloodHitsWhenGuessHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("ring flood campaign is slow")
	}
	st, err := RunBootStudy(Kernel415, 12, 42)
	if err != nil {
		t.Fatal(err)
	}
	hits, results, err := RingFloodCampaign(Kernel415, st, 6, 777)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		t.Log("\n" + r.String())
	}
	if hits == 0 {
		t.Fatalf("RingFlood never succeeded over 6 boots (modal rate %.2f)", st.ModalRate)
	}
}

func TestPoisonedTX(t *testing.T) {
	sys, nic := bootVictim(t, iommu.Deferred, false, netstack.DriverI40E)
	r := RunPoisonedTX(sys, nic)
	t.Log("\n" + r.String())
	if !r.Success {
		t.Fatalf("Poisoned TX failed")
	}
	if sys.Kernel.Escalations != 1 {
		t.Fatalf("Escalations = %d", sys.Kernel.Escalations)
	}
}

func TestPoisonedTXWorksInStrictMode(t *testing.T) {
	// The i40e ordering gives the window regardless of IOMMU mode.
	sys, nic := bootVictim(t, iommu.Strict, false, netstack.DriverI40E)
	r := RunPoisonedTX(sys, nic)
	if !r.Success {
		t.Fatalf("Poisoned TX failed under strict mode:\n%s", r.String())
	}
}

func TestForwardThinking(t *testing.T) {
	sys, nic := bootVictim(t, iommu.Deferred, true, netstack.DriverI40E)
	r := RunForwardThinking(sys, nic)
	t.Log("\n" + r.String())
	if !r.Success {
		t.Fatal("Forward Thinking failed")
	}
}

func TestForwardThinkingRequiresForwarding(t *testing.T) {
	sys, nic := bootVictim(t, iommu.Deferred, false, netstack.DriverI40E)
	r := RunForwardThinking(sys, nic)
	if r.Success {
		t.Fatal("Forward Thinking succeeded with forwarding disabled")
	}
}

func TestSurveillanceReadsArbitraryPage(t *testing.T) {
	sys, nic := bootVictim(t, iommu.Deferred, true, netstack.DriverI40E)
	// The victim keeps a secret in a kmalloc'd object the device never had
	// mapped.
	secretKVA, err := sys.Mem.Slab.Kmalloc(1, 64, "vault")
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("TOP-SECRET-KEY-MATERIAL-0123456")
	if err := sys.Mem.Write(secretKVA, want); err != nil {
		t.Fatal(err)
	}
	r, got := RunSurveillance(sys, nic, secretKVA, uint32(len(want)))
	t.Log("\n" + r.String())
	if !r.Success {
		t.Fatal("surveillance failed")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("leaked %q, want %q", got, want)
	}
	if r.Detail["clean"] != "true" {
		t.Error("surveillance left traces")
	}
	if sys.Kernel.Escalations != 0 {
		t.Error("surveillance should not escalate")
	}
}

func TestWindowMatrixAllCellsHaveAPath(t *testing.T) {
	cells, err := WindowMatrix(31)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
	want := map[string]WindowPath{
		"i40e/deferred":    WindowDriverOrder,
		"i40e/strict":      WindowDriverOrder,
		"correct/deferred": WindowStaleIOTLB,
		"correct/strict":   WindowNeighborIOVA,
	}
	for _, c := range cells {
		key := c.Driver + "/" + c.Mode.String()
		t.Logf("%-20s → %v", key, c.Path)
		if c.Path == WindowNone {
			t.Errorf("%s: no window path — contradicts §5.2", key)
		}
		if w, ok := want[key]; ok && c.Path != w {
			t.Errorf("%s: path %v, want %v", key, c.Path, w)
		}
	}
}

func TestWindowPathStrings(t *testing.T) {
	for _, p := range []WindowPath{WindowNone, WindowDriverOrder, WindowStaleIOTLB, WindowNeighborIOVA} {
		if p.String() == "" {
			t.Errorf("empty string for %d", p)
		}
	}
}
