// Package netchaos is the fabric-plane sibling of internal/faultinject: a
// deterministic fault injector for the HTTP transport between a fabric
// coordinator and its dmafaultd workers. Where faultinject makes the
// simulated *hardware* misbehave at its natural failure points, netchaos
// makes the *network* misbehave at its own — added latency, dropped
// connections, injected 5xx/429 storms, truncated and bit-flipped response
// bodies, and full worker partitions — so the coordinator's recovery
// machinery (re-lease, integrity verification, byzantine quarantine, work
// stealing) can be exercised repeatably instead of waiting for a flaky
// switch.
//
// The plan grammar, decision function, and counters mirror faultinject
// exactly: a Plan is per-class rules, rate-based or point-based, and every
// decision is a pure function of (seed, salt, class, per-class opportunity
// ordinal) through the splitmix64 finalizer. Two transports built from the
// same plan make the same decision at the same ordinal; what varies across
// runs is only which request draws which ordinal (concurrent leases race
// for the counter), which is precisely the nondeterminism the fabric must
// already survive. Campaign *results* stay byte-identical under any plan —
// that is the tentpole guarantee the fabric tests enforce.
//
// Wire it in through faultdclient.Client.WithTransport or
// fabric.Config.Transport:
//
//	plan, _ := netchaos.ParseSpec("bitflip:0.3,http-503:0.1,partition@40")
//	plan.Seed = 11
//	cfg.Transport = netchaos.NewTransport(plan, nil)
package netchaos

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Class enumerates the injectable transport-fault classes. The order is the
// wire order of counters and spec rendering; append only.
type Class uint8

const (
	// Latency delays the request by the transport's Latency knob before it
	// is forwarded (context cancellation cuts the sleep short).
	Latency Class = iota
	// ConnDrop fails the request with a synthetic connection error — the
	// wire analogue of a mid-flight RST. The HTTP client sees a transport
	// error, never a response.
	ConnDrop
	// HTTP500 answers with an injected 500 instead of forwarding.
	HTTP500
	// HTTP503 answers with an injected 503 carrying a Retry-After hint,
	// alternating the delta-seconds and HTTP-date header forms so both
	// parser arms stay exercised.
	HTTP503
	// HTTP429 answers with an injected 429, Retry-After included, like a
	// queue-full worker.
	HTTP429
	// Truncate forwards the request but cuts the response body short after
	// TruncateAt bytes — a torn delivery.
	Truncate
	// BitFlip forwards the request but flips the low bit of one ASCII digit
	// in the response body. Digits are closed under a low-bit flip, so JSON
	// stays well-formed and the corruption travels all the way to the
	// fabric's integrity layer instead of dying in the decoder.
	BitFlip
	// Partition opens a full partition against the request's host: this
	// request and the next PartitionLen-1 to the same host all fail with
	// connection errors, whatever their other draws. Heartbeats and leases
	// alike go dark — the closest thing HTTP chaos has to yanking a cable.
	Partition

	numClasses
)

var classNames = [numClasses]string{
	"latency",
	"conn-drop",
	"http-500",
	"http-503",
	"http-429",
	"truncate",
	"bitflip",
	"partition",
}

// String names the class as ParseSpec spells it.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Classes lists every fault class in stable order.
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// ClassByName resolves a spec name back to its class.
func ClassByName(name string) (Class, bool) {
	for i, n := range classNames {
		if n == name {
			return Class(i), true
		}
	}
	return 0, false
}

// Rule injects one class at a rate, at fixed opportunity ordinals, or both.
type Rule struct {
	Class Class `json:"class"`
	// Rate is the per-opportunity injection probability in [0, 1].
	Rate float64 `json:"rate,omitempty"`
	// Points are 1-based opportunity ordinals that always inject,
	// independent of the rate draw (so "partition at the 40th request"
	// fires every run).
	Points []uint64 `json:"points,omitempty"`
}

// Plan is a serializable transport-chaos plan: the decision seed plus the
// per-class rules, exactly the faultinject shape.
type Plan struct {
	Seed  int64  `json:"seed,omitempty"`
	Salt  int64  `json:"salt,omitempty"`
	Rules []Rule `json:"rules"`
}

// Validate rejects rules the transport cannot honor.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for _, r := range p.Rules {
		if r.Class >= numClasses {
			return fmt.Errorf("netchaos: unknown class %d", r.Class)
		}
		if r.Rate < 0 || r.Rate > 1 {
			return fmt.Errorf("netchaos: %s rate %v outside [0,1]", r.Class, r.Rate)
		}
		if r.Rate == 0 && len(r.Points) == 0 {
			return fmt.Errorf("netchaos: %s rule has neither rate nor points", r.Class)
		}
		for _, pt := range r.Points {
			if pt == 0 {
				return fmt.Errorf("netchaos: %s point ordinals are 1-based", r.Class)
			}
		}
	}
	return nil
}

// ParseSpec compiles the compact rule grammar shared with faultinject:
// comma-separated entries of the form
//
//	class:RATE          inject at probability RATE per opportunity
//	class@P1+P2+...     inject at the P1st, P2nd, ... opportunity (1-based)
//	class:RATE@P1+...   both
//
// e.g. "bitflip:0.3,http-503:0.1,conn-drop:0.05,partition@40". Seed and
// Salt are left zero; callers bind them (cmd/campaign uses -netchaos-seed).
func ParseSpec(spec string) (*Plan, error) {
	plan := &Plan{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		rest := entry
		var rule Rule
		if at := strings.IndexByte(rest, '@'); at >= 0 {
			for _, p := range strings.Split(rest[at+1:], "+") {
				n, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("netchaos: bad point %q in %q", p, entry)
				}
				rule.Points = append(rule.Points, n)
			}
			rest = rest[:at]
		}
		if colon := strings.IndexByte(rest, ':'); colon >= 0 {
			rate, err := strconv.ParseFloat(strings.TrimSpace(rest[colon+1:]), 64)
			if err != nil {
				return nil, fmt.Errorf("netchaos: bad rate in %q", entry)
			}
			rule.Rate = rate
			rest = rest[:colon]
		}
		c, ok := ClassByName(strings.TrimSpace(rest))
		if !ok {
			return nil, fmt.Errorf("netchaos: unknown class %q (have %s)",
				strings.TrimSpace(rest), strings.Join(classNames[:], ", "))
		}
		rule.Class = c
		plan.Rules = append(plan.Rules, rule)
	}
	if len(plan.Rules) == 0 {
		return nil, fmt.Errorf("netchaos: empty spec %q", spec)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// Defaults for Transport's zero-valued knobs.
const (
	// DefaultLatency is the injected delay per Latency hit.
	DefaultLatency = 25 * time.Millisecond
	// DefaultPartitionLen is how many consecutive requests to a host one
	// Partition hit swallows.
	DefaultPartitionLen = 8
	// DefaultTruncateAt is where a Truncate hit cuts the response body —
	// short enough to tear any JSON document the /v1 API emits.
	DefaultTruncateAt = 20
	// retryAfterSeconds is the hint injected 503/429 responses carry.
	retryAfterSeconds = 1
)

// compiled is one rule ready for O(1) decisions.
type compiled struct {
	active bool
	rate   float64
	points map[uint64]bool
}

// Transport is the chaos RoundTripper. Unlike a faultinject.Injector it IS
// safe for concurrent use — the fabric fans leases, polls, and heartbeats
// through one transport from many goroutines, and the shared ordinal
// counters are exactly what makes a plan's total injection budget hold
// across all of them.
type Transport struct {
	// Base is the wrapped RoundTripper (nil: http.DefaultTransport).
	Base http.RoundTripper
	// Latency is the injected delay per Latency hit (0: DefaultLatency).
	Latency time.Duration
	// PartitionLen is requests swallowed per Partition hit
	// (0: DefaultPartitionLen).
	PartitionLen uint64
	// TruncateAt is the byte offset a Truncate hit cuts the body at
	// (0: DefaultTruncateAt).
	TruncateAt int64

	seed  uint64
	rules [numClasses]compiled

	mu         sync.Mutex
	ops        [numClasses]uint64
	hits       [numClasses]uint64
	partitions map[string]uint64 // host → requests left to swallow
}

// NewTransport compiles a plan over base. A nil or empty plan yields a
// transport that forwards everything untouched (the counters still run, so
// "chaos off" and "chaos on" expositions stay comparable).
func NewTransport(plan *Plan, base http.RoundTripper) *Transport {
	t := &Transport{Base: base, partitions: map[string]uint64{}}
	if plan == nil {
		return t
	}
	t.seed = splitmix(splitmix(uint64(plan.Seed)) ^ splitmix(uint64(plan.Salt)+0x5a17))
	for _, r := range plan.Rules {
		c := &t.rules[r.Class]
		c.active = true
		c.rate = r.Rate
		if len(r.Points) > 0 {
			if c.points == nil {
				c.points = make(map[uint64]bool, len(r.Points))
			}
			for _, p := range r.Points {
				c.points[p] = true
			}
		}
	}
	return t
}

// splitmix is the splitmix64 finalizer — the same mix faultinject uses.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// decision is the per-opportunity hash stream for a class.
func (t *Transport) decision(c Class, n uint64) uint64 {
	return splitmix(t.seed ^ splitmix(uint64(c+1)<<32^n))
}

// fire counts one opportunity of the class and decides. Callers hold t.mu.
func (t *Transport) fire(c Class) bool {
	t.ops[c]++
	r := &t.rules[c]
	if !r.active {
		return false
	}
	n := t.ops[c]
	hit := r.points[n]
	if !hit && r.rate > 0 {
		// 53-bit uniform draw in [0,1).
		hit = float64(t.decision(c, n)>>11)/(1<<53) < r.rate
	}
	if hit {
		t.hits[c]++
	}
	return hit
}

// Counts returns (opportunities, injections) for a class.
func (t *Transport) Counts(c Class) (ops, injected uint64) {
	if t == nil || c >= numClasses {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ops[c], t.hits[c]
}

// CountsText renders every class's ops/hits as one log-friendly line.
func (t *Transport) CountsText() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	parts := make([]string, 0, numClasses)
	for c := Class(0); c < numClasses; c++ {
		if t.ops[c] == 0 && t.hits[c] == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%d/%d", c, t.hits[c], t.ops[c]))
	}
	if len(parts) == 0 {
		return "idle"
	}
	return strings.Join(parts, " ")
}

// Error is an injected transport failure (ConnDrop or Partition). The HTTP
// client surfaces it wrapped in *url.Error like any real dial failure, so
// consumers retry it exactly as they would a genuine outage.
type Error struct {
	Class Class
	Host  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("netchaos: injected %s (%s)", e.Class, e.Host)
}

// RoundTrip implements http.RoundTripper: it draws this request's fate for
// every class up front (so ordinal streams stay aligned whatever fires),
// then applies the worst of it.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	t.mu.Lock()
	// An open partition swallows the request before any per-class draw: the
	// host is unreachable, not flaky.
	if left := t.partitions[host]; left > 0 {
		if left == 1 {
			delete(t.partitions, host)
		} else {
			t.partitions[host] = left - 1
		}
		t.mu.Unlock()
		return nil, &Error{Class: Partition, Host: host}
	}
	if t.fire(Partition) {
		if n := t.partitionLen(); n > 1 {
			t.partitions[host] = n - 1 // this request is the first casualty
		}
		t.mu.Unlock()
		return nil, &Error{Class: Partition, Host: host}
	}
	delay := t.fire(Latency)
	drop := t.fire(ConnDrop)
	status := 0
	dateForm := false
	if t.fire(HTTP500) {
		status = http.StatusInternalServerError
	}
	if t.fire(HTTP503) && status == 0 {
		status = http.StatusServiceUnavailable
		dateForm = t.ops[HTTP503]%2 == 0
	}
	if t.fire(HTTP429) && status == 0 {
		status = http.StatusTooManyRequests
		dateForm = t.ops[HTTP429]%2 == 0
	}
	trunc := t.fire(Truncate)
	flip := t.fire(BitFlip)
	var flipTarget uint64
	if flip {
		// Which digit of the body to corrupt: a small 1-based ordinal drawn
		// from the decision stream (different constant) so corruption lands
		// at varying depths of the document. Kept small enough that even a
		// compact job document carries that many digits; a body with fewer
		// passes untouched.
		flipTarget = 1 + splitmix(t.decision(BitFlip, t.ops[BitFlip])^0xf11b)%16
	}
	t.mu.Unlock()

	if delay {
		if err := sleepCtx(req.Context(), t.latency()); err != nil {
			return nil, err
		}
	}
	if drop {
		return nil, &Error{Class: ConnDrop, Host: host}
	}
	if status != 0 {
		// Synthesized response: the request never reaches the worker. Drain
		// and close the body so the client's connection is reusable.
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return synthesize(req, status, dateForm), nil
	}
	resp, err := t.base().RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}
	if trunc {
		resp.Body = &truncReader{rc: resp.Body, left: t.truncateAt()}
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
	}
	if flip {
		resp.Body = &flipReader{rc: resp.Body, target: flipTarget}
	}
	return resp, nil
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

func (t *Transport) latency() time.Duration {
	if t.Latency > 0 {
		return t.Latency
	}
	return DefaultLatency
}

func (t *Transport) partitionLen() uint64 {
	if t.PartitionLen > 0 {
		return t.PartitionLen
	}
	return DefaultPartitionLen
}

func (t *Transport) truncateAt() int64 {
	if t.TruncateAt > 0 {
		return t.TruncateAt
	}
	return DefaultTruncateAt
}

// synthesize builds an injected error response. 503/429 carry a Retry-After
// hint, alternating delta-seconds and HTTP-date forms (RFC 9110 §10.2.3)
// so both client parser arms run under chaos.
func synthesize(req *http.Request, status int, dateForm bool) *http.Response {
	h := http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}}
	if status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests {
		if dateForm {
			h.Set("Retry-After", time.Now().Add(retryAfterSeconds*time.Second).UTC().Format(http.TimeFormat))
		} else {
			h.Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		}
	}
	body := fmt.Sprintf("netchaos: injected %d", status)
	return &http.Response{
		StatusCode:    status,
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncReader passes through the first `left` bytes and then reports EOF —
// a body cut mid-document. Streaming on purpose: SSE watch bodies must not
// be buffered whole.
type truncReader struct {
	rc   io.ReadCloser
	left int64
}

func (t *truncReader) Read(p []byte) (int, error) {
	if t.left <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > t.left {
		p = p[:t.left]
	}
	n, err := t.rc.Read(p)
	t.left -= int64(n)
	return n, err
}

func (t *truncReader) Close() error { return t.rc.Close() }

// flipReader flips the low bit of the target-th ASCII digit that streams
// through it. The set 0-9 is closed under a low-bit flip ('0'↔'1' … '8'↔'9'),
// so a JSON body stays syntactically valid while a value inside it silently
// changes — the hardest corruption for a consumer to notice, and exactly
// what the fabric's integrity verification exists to catch. A body with
// fewer digits than the target passes untouched.
type flipReader struct {
	rc     io.ReadCloser
	target uint64
	seen   uint64
}

func (f *flipReader) Read(p []byte) (int, error) {
	n, err := f.rc.Read(p)
	if f.seen < f.target {
		for i := 0; i < n; i++ {
			if p[i] >= '0' && p[i] <= '9' {
				f.seen++
				if f.seen == f.target {
					p[i] ^= 1
					break
				}
			}
		}
	}
	return n, err
}

func (f *flipReader) Close() error { return f.rc.Close() }

// sleepCtx waits d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
