package netchaos

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

// TestParseSpec pins the grammar: rates, points, both, and the error arms.
func TestParseSpec(t *testing.T) {
	plan, err := ParseSpec("bitflip:0.3,http-503:0.1@2+5,partition@40")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Rules) != 3 {
		t.Fatalf("rules = %+v", plan.Rules)
	}
	if r := plan.Rules[0]; r.Class != BitFlip || r.Rate != 0.3 || r.Points != nil {
		t.Fatalf("rule 0 = %+v", r)
	}
	if r := plan.Rules[1]; r.Class != HTTP503 || r.Rate != 0.1 || len(r.Points) != 2 || r.Points[0] != 2 {
		t.Fatalf("rule 1 = %+v", r)
	}
	if r := plan.Rules[2]; r.Class != Partition || r.Rate != 0 || len(r.Points) != 1 || r.Points[0] != 40 {
		t.Fatalf("rule 2 = %+v", r)
	}
	for _, bad := range []string{"", "nope:0.1", "latency:2", "latency:-1", "conn-drop@0", "bitflip"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// TestDeterministicDecisions: two transports compiled from the same plan
// draw identical per-ordinal decisions; a different seed draws a different
// stream.
func TestDeterministicDecisions(t *testing.T) {
	plan, err := ParseSpec("conn-drop:0.5")
	if err != nil {
		t.Fatal(err)
	}
	plan.Seed = 7
	draw := func(tr *Transport, n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			tr.mu.Lock()
			if tr.fire(ConnDrop) {
				b.WriteByte('x')
			} else {
				b.WriteByte('.')
			}
			tr.mu.Unlock()
		}
		return b.String()
	}
	a := draw(NewTransport(plan, nil), 64)
	b := draw(NewTransport(plan, nil), 64)
	if a != b {
		t.Fatalf("same plan diverged:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "x") || !strings.Contains(a, ".") {
		t.Fatalf("rate 0.5 drew a degenerate stream %q", a)
	}
	other := *plan
	other.Seed = 8
	if c := draw(NewTransport(&other, nil), 64); c == a {
		t.Fatal("different seed drew the identical stream")
	}
}

// chaosBackend is a well-behaved origin the chaos wraps.
func chaosBackend(t *testing.T, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, tr *Transport, url string) (*http.Response, []byte, error) {
	t.Helper()
	c := &http.Client{Transport: tr}
	resp, err := c.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp, nil, err
	}
	return resp, data, nil
}

// TestInjected503CarriesBothRetryAfterForms: consecutive injected 503s
// alternate delta-seconds and HTTP-date Retry-After headers.
func TestInjected503CarriesBothRetryAfterForms(t *testing.T) {
	ts := chaosBackend(t, "ok")
	plan := &Plan{Rules: []Rule{{Class: HTTP503, Points: []uint64{1, 2}}}}
	tr := NewTransport(plan, nil)

	var forms []bool // true = HTTP-date
	for i := 0; i < 2; i++ {
		resp, body, err := get(t, tr, ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		if !strings.Contains(string(body), "injected 503") {
			t.Fatalf("request %d body: %q", i, body)
		}
		ra := resp.Header.Get("Retry-After")
		if ra == "" {
			t.Fatalf("request %d: no Retry-After", i)
		}
		forms = append(forms, !isDeltaSeconds(ra))
	}
	if forms[0] == forms[1] {
		t.Fatalf("both injected 503s used the same Retry-After form: %v", forms)
	}
	// The third request reaches the origin untouched.
	resp, body, err := get(t, tr, ts.URL)
	if err != nil || resp.StatusCode != 200 || string(body) != "ok" {
		t.Fatalf("pass-through: %v %v %q", resp, err, body)
	}
}

// isDeltaSeconds reports whether a Retry-After value is the bare-seconds
// form (all digits) rather than an HTTP-date.
func isDeltaSeconds(s string) bool {
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return len(s) > 0
}

// TestTruncateTearsJSON: a truncated body is no longer a decodable document.
func TestTruncateTearsJSON(t *testing.T) {
	ts := chaosBackend(t, `{"id":123456,"status":"done","scenarios_total":999999}`)
	plan := &Plan{Rules: []Rule{{Class: Truncate, Points: []uint64{1}}}}
	tr := NewTransport(plan, nil)
	_, body, err := get(t, tr, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != DefaultTruncateAt {
		t.Fatalf("truncated body is %d bytes, want %d", len(body), DefaultTruncateAt)
	}
	var v map[string]any
	if json.Unmarshal(body, &v) == nil {
		t.Fatalf("truncated body still decodes: %q", body)
	}
}

// TestBitFlipKeepsJSONValidButChangesIt: the flipped body decodes fine and
// differs from the original — corruption that only an integrity check can
// catch.
func TestBitFlipKeepsJSONValidButChangesIt(t *testing.T) {
	orig := `{"id":123456,"seed":20212021,"scenarios_total":999999}`
	ts := chaosBackend(t, orig)
	plan := &Plan{Seed: 3, Rules: []Rule{{Class: BitFlip, Points: []uint64{1}}}}
	tr := NewTransport(plan, nil)
	_, body, err := get(t, tr, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) == orig {
		t.Fatal("bitflip left the body untouched")
	}
	var v map[string]any
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("flipped body no longer decodes: %v (%q)", err, body)
	}
	if len(body) != len(orig) {
		t.Fatalf("flip changed the length: %d vs %d", len(body), len(orig))
	}
	diff := 0
	for i := range body {
		if body[i] != orig[i] {
			diff++
			if body[i]^orig[i] != 1 {
				t.Fatalf("byte %d changed by more than the low bit: %q vs %q", i, body[i], orig[i])
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes changed, want exactly 1", diff)
	}
}

// TestPartitionSwallowsWindow: one Partition hit blacks out the host for
// PartitionLen requests, then traffic resumes.
func TestPartitionSwallowsWindow(t *testing.T) {
	ts := chaosBackend(t, "ok")
	plan := &Plan{Rules: []Rule{{Class: Partition, Points: []uint64{1}}}}
	tr := NewTransport(plan, nil)
	tr.PartitionLen = 3
	for i := 0; i < 3; i++ {
		_, _, err := get(t, tr, ts.URL)
		var ce *Error
		if !errors.As(err, &ce) || ce.Class != Partition {
			t.Fatalf("request %d inside the partition: %v", i, err)
		}
	}
	resp, body, err := get(t, tr, ts.URL)
	if err != nil || resp.StatusCode != 200 || string(body) != "ok" {
		t.Fatalf("after the partition: %v %v %q", resp, err, body)
	}
	if ops, hits := tr.Counts(Partition); hits != 1 || ops == 0 {
		t.Fatalf("partition counts = %d/%d, want 1 hit", hits, ops)
	}
}

// TestConnDropSurfacesAsTransportError: the client sees a *url.Error
// wrapping the injected drop, like any real dial failure.
func TestConnDropSurfacesAsTransportError(t *testing.T) {
	ts := chaosBackend(t, "ok")
	plan := &Plan{Rules: []Rule{{Class: ConnDrop, Points: []uint64{1}}}}
	tr := NewTransport(plan, nil)
	_, _, err := get(t, tr, ts.URL)
	var ue *url.Error
	var ce *Error
	if !errors.As(err, &ue) || !errors.As(err, &ce) || ce.Class != ConnDrop {
		t.Fatalf("err = %v", err)
	}
}

// TestLatencyDelaysRequest: a Latency hit sleeps before forwarding.
func TestLatencyDelaysRequest(t *testing.T) {
	ts := chaosBackend(t, "ok")
	plan := &Plan{Rules: []Rule{{Class: Latency, Points: []uint64{1}}}}
	tr := NewTransport(plan, nil)
	tr.Latency = 50 * time.Millisecond
	start := time.Now()
	if _, _, err := get(t, tr, ts.URL); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 45*time.Millisecond {
		t.Fatalf("request took %v, injected latency was 50ms", d)
	}
	start = time.Now()
	if _, _, err := get(t, tr, ts.URL); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Fatalf("un-injected request took %v", d)
	}
}

// TestNilPlanPassesThrough: NewTransport(nil, …) forwards untouched.
func TestNilPlanPassesThrough(t *testing.T) {
	ts := chaosBackend(t, "ok")
	tr := NewTransport(nil, nil)
	resp, body, err := get(t, tr, ts.URL)
	if err != nil || resp.StatusCode != 200 || string(body) != "ok" {
		t.Fatalf("pass-through: %v %v %q", resp, err, body)
	}
}
