package resultstore

import "dmafault/internal/metrics"

// The store implements metrics.Source so dmafaultd can export the
// resultstore_* families. Register it through metrics.OmitZero — like the
// supervision families, an idle service with an untouched cache exposes
// none of them, and their appearance is itself a signal that the cache is
// in play. The atomic counters make collection safe concurrent with engine
// workers hitting the store.

// Describe implements metrics.Source.
func (st *Store) Describe() []metrics.Desc {
	return []metrics.Desc{
		{Name: "resultstore_hits_total", Help: "Scenario executions served from the result cache.", Kind: metrics.KindCounter},
		{Name: "resultstore_misses_total", Help: "Cache lookups that fell through to execution.", Kind: metrics.KindCounter},
		{Name: "resultstore_stores_total", Help: "Results appended to the cache log.", Kind: metrics.KindCounter},
		{Name: "resultstore_records", Help: "Live (indexed) records in the cache log.", Kind: metrics.KindGauge},
		{Name: "resultstore_stale_records", Help: "Records skipped at open because their engine salt is stale.", Kind: metrics.KindGauge},
		{Name: "resultstore_bytes", Help: "Cache log size in bytes.", Kind: metrics.KindGauge},
	}
}

// Collect implements metrics.Source.
func (st *Store) Collect(emit func(name string, s metrics.Sample)) {
	stats := st.Stats()
	emit("resultstore_hits_total", metrics.Sample{Value: float64(stats.Hits)})
	emit("resultstore_misses_total", metrics.Sample{Value: float64(stats.Misses)})
	emit("resultstore_stores_total", metrics.Sample{Value: float64(stats.Stores)})
	emit("resultstore_records", metrics.Sample{Value: float64(stats.Records)})
	emit("resultstore_stale_records", metrics.Sample{Value: float64(stats.StaleRecords)})
	emit("resultstore_bytes", metrics.Sample{Value: float64(stats.Bytes)})
}
