// Package resultstore is the persistent, content-addressed scenario-result
// cache behind incremental campaigns: an append-only binary record log
// keyed by the full 32-byte campaign.Digest, modeled on ninja's build/deps
// logs. Re-running a preset, resuming a campaign, or sweeping a grid that
// overlaps an earlier one only executes scenarios whose digest has never
// been recorded — everything else replays from the log byte-identically.
//
// On-disk format (all integers little-endian):
//
//	header:  magic "dmfres\x00" + format version byte,
//	         uint32 key-version length, key-version bytes
//	         (campaign.ScenarioKeyVersion at creation time)
//	record:  uint32 payload length
//	         [8]byte engine salt (truncated SHA-256 of the key version
//	         the record was written under)
//	         [32]byte scenario digest
//	         payload (canonical JSON campaign.Result, ID blanked)
//	         uint32 CRC-32 (IEEE) over salt ‖ digest ‖ payload
//
// The log shares the journal's durability idiom: records are appended in
// one Write under a mutex, a torn or corrupt tail (the crash shape) is
// tolerated on open and truncated away, and the last record for a digest
// wins. Open loads a hash-first in-memory index (digest → record offset);
// Get reads and decodes the payload on demand, so a warm store holds one
// map entry per record, not one decoded Result.
//
// Engine-version invalidation is belt and braces: the salt folded into
// every digest means a stale-engine record can never be looked up, and the
// per-record salt lets Compact *identify* and drop those unreachable
// records (plus superseded ones) when rewriting the log offline.
package resultstore

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"dmafault/internal/campaign"
)

// Format framing.
const (
	formatVersion = 1
	// maxPayload bounds one record's decode buffer; anything larger is
	// treated as corruption (a Result is a few KB of JSON, not megabytes
	// beyond the metric snapshot).
	maxPayload = 64 << 20
	// recordFixed is the fixed-size prefix after the length word: salt + digest.
	recordFixed = saltLen + digestLen
	saltLen     = 8
	digestLen   = 32
)

var magic = [8]byte{'d', 'm', 'f', 'r', 'e', 's', 0, formatVersion}

// engineSalt derives the 8-byte per-record salt for a key version.
func engineSalt(keyVersion string) [saltLen]byte {
	sum := sha256.Sum256([]byte(keyVersion))
	var s [saltLen]byte
	copy(s[:], sum[:saltLen])
	return s
}

// currentSalt is the salt stamped on records written by this engine build.
var currentSalt = engineSalt(campaign.ScenarioKeyVersion)

// entry locates one live record's payload inside the log.
type entry struct {
	off int64 // payload start
	n   int   // payload length
}

// Store is an open result log. It implements campaign.Store and is safe
// for concurrent use by engine workers (Get under a read lock with ReadAt,
// Put appending under the write lock).
type Store struct {
	mu    sync.RWMutex
	f     *os.File
	path  string
	index map[campaign.Digest]entry
	size  int64 // append offset (== file size after torn-tail truncation)

	stale      int // records skipped at open: engine salt mismatch
	superseded int // records overwritten by a later record for the same digest

	hits   atomic.Uint64
	misses atomic.Uint64
	stores atomic.Uint64
}

// Open creates (missing or empty path) or reopens a result log: the header
// is validated, every intact record is indexed hash-first (last record per
// digest wins; stale-engine records are counted but not indexed), and a
// torn or corrupt tail is truncated so the file is append-clean.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	st := &Store{f: f, path: path, index: map[campaign.Digest]entry{}}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	if fi.Size() == 0 {
		if st.size, err = writeHeader(f); err != nil {
			f.Close()
			return nil, err
		}
		return st, nil
	}
	if err := st.load(); err != nil {
		f.Close()
		return nil, err
	}
	return st, nil
}

// writeHeader stamps a fresh log and returns the append offset.
func writeHeader(f *os.File) (int64, error) {
	var b []byte
	b = append(b, magic[:]...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(campaign.ScenarioKeyVersion)))
	b = append(b, campaign.ScenarioKeyVersion...)
	if _, err := f.Write(b); err != nil {
		return 0, fmt.Errorf("resultstore: write header: %w", err)
	}
	return int64(len(b)), nil
}

// readHeader parses and validates the header, returning its byte length and
// the key version the log was created under.
func readHeader(r io.Reader, path string) (int64, string, error) {
	var m [8]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return 0, "", fmt.Errorf("resultstore: %s: short header: %w", path, err)
	}
	if string(m[:7]) != string(magic[:7]) {
		return 0, "", fmt.Errorf("resultstore: %s: not a result store (bad magic)", path)
	}
	if m[7] != formatVersion {
		return 0, "", fmt.Errorf("resultstore: %s: format version %d, want %d", path, m[7], formatVersion)
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, "", fmt.Errorf("resultstore: %s: short header: %w", path, err)
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n > 4096 {
		return 0, "", fmt.Errorf("resultstore: %s: absurd key-version length %d", path, n)
	}
	kv := make([]byte, n)
	if _, err := io.ReadFull(r, kv); err != nil {
		return 0, "", fmt.Errorf("resultstore: %s: short header: %w", path, err)
	}
	return int64(len(m) + len(lenBuf) + len(kv)), string(kv), nil
}

// record is one parsed log record (scan and compaction share the walker).
type record struct {
	salt    [saltLen]byte
	digest  campaign.Digest
	payload []byte
	off     int64 // payload offset in the file
	end     int64 // offset just past the record's trailing CRC
}

// walkRecords parses records starting at offset, invoking fn per intact
// record, and returns the offset just past the last intact one. Parsing
// stops (without error) at the first torn or corrupt record — the expected
// crash shape — mirroring the campaign journal's tolerance.
func walkRecords(r *bufio.Reader, offset int64, fn func(rec *record) error) (int64, error) {
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return offset, nil // clean EOF or torn length word
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > maxPayload {
			return offset, nil // corrupt length: treat the tail as torn
		}
		body := make([]byte, recordFixed+int(n)+4)
		if _, err := io.ReadFull(r, body); err != nil {
			return offset, nil // torn record
		}
		sum := crc32.ChecksumIEEE(body[:recordFixed+int(n)])
		if binary.LittleEndian.Uint32(body[recordFixed+int(n):]) != sum {
			return offset, nil // corrupt record: tail is untrustworthy
		}
		rec := record{
			payload: body[recordFixed : recordFixed+int(n)],
			off:     offset + 4 + recordFixed,
			end:     offset + 4 + int64(len(body)),
		}
		copy(rec.salt[:], body[:saltLen])
		copy(rec.digest[:], body[saltLen:recordFixed])
		if err := fn(&rec); err != nil {
			return offset, err
		}
		offset = rec.end
	}
}

// load scans an existing log into the index and truncates any torn tail.
func (st *Store) load() error {
	if _, err := st.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	br := bufio.NewReaderSize(st.f, 1<<20)
	hdrLen, _, err := readHeader(br, st.path)
	if err != nil {
		return err
	}
	good, err := walkRecords(br, hdrLen, func(rec *record) error {
		if rec.salt != currentSalt {
			st.stale++
			return nil
		}
		if _, dup := st.index[rec.digest]; dup {
			st.superseded++
		}
		st.index[rec.digest] = entry{off: rec.off, n: len(rec.payload)}
		return nil
	})
	if err != nil {
		return err
	}
	if err := st.f.Truncate(good); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if _, err := st.f.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	st.size = good
	return nil
}

// Get implements campaign.Store: look the digest up hash-first, then read
// and decode the record payload on demand. A record that fails to read or
// decode counts as a miss (the caller simply executes the scenario).
func (st *Store) Get(d campaign.Digest) (*campaign.Result, bool) {
	st.mu.RLock()
	e, ok := st.index[d]
	if !ok {
		st.mu.RUnlock()
		st.misses.Add(1)
		return nil, false
	}
	buf := make([]byte, e.n)
	_, err := st.f.ReadAt(buf, e.off)
	st.mu.RUnlock()
	if err != nil {
		st.misses.Add(1)
		return nil, false
	}
	var r campaign.Result
	if err := json.Unmarshal(buf, &r); err != nil {
		st.misses.Add(1)
		return nil, false
	}
	st.hits.Add(1)
	return &r, true
}

// Put implements campaign.Store: append one record (a single Write under
// the mutex, like the journal) and point the index at it. The last record
// for a digest wins, so overwriting is append-only too.
func (st *Store) Put(d campaign.Digest, r *campaign.Result) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	buf := make([]byte, 0, 4+recordFixed+len(payload)+4)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, currentSalt[:]...)
	buf = append(buf, d[:]...)
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[4:]))
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, err := st.f.Write(buf); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if _, dup := st.index[d]; dup {
		st.superseded++
	}
	st.index[d] = entry{off: st.size + 4 + recordFixed, n: len(payload)}
	st.size += int64(len(buf))
	st.stores.Add(1)
	return nil
}

// Len is the number of live (indexed) records.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.index)
}

// Stats is the store's observable state: log geometry plus the session's
// hit/miss/store counters (counters survive Clear — they are service-plane
// telemetry, not log contents).
type Stats struct {
	Path              string `json:"path"`
	Records           int    `json:"records"`
	StaleRecords      int    `json:"stale_records"`
	SupersededRecords int    `json:"superseded_records"`
	Bytes             int64  `json:"bytes"`
	Hits              uint64 `json:"hits"`
	Misses            uint64 `json:"misses"`
	Stores            uint64 `json:"stores"`
}

// Stats snapshots the store.
func (st *Store) Stats() Stats {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return Stats{
		Path:              st.path,
		Records:           len(st.index),
		StaleRecords:      st.stale,
		SupersededRecords: st.superseded,
		Bytes:             st.size,
		Hits:              st.hits.Load(),
		Misses:            st.misses.Load(),
		Stores:            st.stores.Load(),
	}
}

// Clear drops every record: the log is truncated back to its header and
// the index emptied. Hit/miss/store counters keep counting.
func (st *Store) Clear() (dropped int, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	dropped = len(st.index)
	if _, err := st.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("resultstore: %w", err)
	}
	if err := st.f.Truncate(0); err != nil {
		return 0, fmt.Errorf("resultstore: %w", err)
	}
	hdrLen, werr := writeHeader(st.f)
	if werr != nil {
		return 0, werr
	}
	st.index = map[campaign.Digest]entry{}
	st.size = hdrLen
	st.stale, st.superseded = 0, 0
	return dropped, nil
}

// Close flushes and closes the log file.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.f.Close()
}

// CompactStats reports what an offline compaction did.
type CompactStats struct {
	RecordsBefore     int   `json:"records_before"`
	RecordsAfter      int   `json:"records_after"`
	DroppedStale      int   `json:"dropped_stale"`
	DroppedSuperseded int   `json:"dropped_superseded"`
	BytesBefore       int64 `json:"bytes_before"`
	BytesAfter        int64 `json:"bytes_after"`
}

// Compact rewrites the log at path offline (no Store may have it open),
// keeping only the latest current-engine record per digest, in the order
// the surviving records appear in the old log — ninja's recompaction, with
// the engine salt standing in for the mtime staleness check. The new log is
// written beside the old one and renamed into place, so a crash mid-compact
// leaves the original intact.
func Compact(path string) (CompactStats, error) {
	var cs CompactStats
	f, err := os.Open(path)
	if err != nil {
		return cs, fmt.Errorf("resultstore: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return cs, fmt.Errorf("resultstore: %w", err)
	}
	cs.BytesBefore = fi.Size()
	br := bufio.NewReaderSize(f, 1<<20)
	hdrLen, _, err := readHeader(br, path)
	if err != nil {
		f.Close()
		return cs, err
	}
	// Pass 1: find the last current-salt record offset per digest.
	last := map[campaign.Digest]int64{}
	if _, err := walkRecords(br, hdrLen, func(rec *record) error {
		cs.RecordsBefore++
		if rec.salt != currentSalt {
			cs.DroppedStale++
			return nil
		}
		last[rec.digest] = rec.off
		return nil
	}); err != nil {
		f.Close()
		return cs, err
	}
	cs.DroppedSuperseded = cs.RecordsBefore - cs.DroppedStale - len(last)

	// Pass 2: stream survivors into a fresh log in old-log order.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return cs, fmt.Errorf("resultstore: %w", err)
	}
	br = bufio.NewReaderSize(f, 1<<20)
	if _, _, err := readHeader(br, path); err != nil {
		f.Close()
		return cs, err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".compact-*")
	if err != nil {
		f.Close()
		return cs, fmt.Errorf("resultstore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := writeHeader(tmp); err != nil {
		f.Close()
		tmp.Close()
		return cs, err
	}
	bw := bufio.NewWriterSize(tmp, 1<<20)
	_, err = walkRecords(br, hdrLen, func(rec *record) error {
		if rec.salt != currentSalt || last[rec.digest] != rec.off {
			return nil
		}
		cs.RecordsAfter++
		var buf []byte
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.payload)))
		buf = append(buf, rec.salt[:]...)
		buf = append(buf, rec.digest[:]...)
		buf = append(buf, rec.payload...)
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[4:]))
		_, werr := bw.Write(buf)
		return werr
	})
	f.Close()
	if err != nil {
		tmp.Close()
		return cs, fmt.Errorf("resultstore: compact: %w", err)
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return cs, fmt.Errorf("resultstore: compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return cs, fmt.Errorf("resultstore: compact: %w", err)
	}
	ti, err := tmp.Stat()
	if err != nil {
		tmp.Close()
		return cs, fmt.Errorf("resultstore: compact: %w", err)
	}
	cs.BytesAfter = ti.Size()
	if err := tmp.Close(); err != nil {
		return cs, fmt.Errorf("resultstore: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return cs, fmt.Errorf("resultstore: compact: %w", err)
	}
	return cs, nil
}
