package resultstore

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"dmafault/internal/campaign"
)

func mustOpen(t *testing.T, path string) *Store {
	t.Helper()
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func testResult(seed int64) *campaign.Result {
	return &campaign.Result{
		Kind: "window-ladder", Seed: seed, Success: seed%2 == 0,
		Escalations: int(seed % 3),
		Metrics:     map[string]string{"window": "page"},
	}
}

func digestOf(seed int64) campaign.Digest {
	return campaign.ScenarioDigest(campaign.Scenario{Kind: "window-ladder", Seed: seed})
}

// Results written to the log must come back byte-equal across a close and
// reopen — the whole point of a persistent cache.
func TestRoundTripPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.bin")
	st := mustOpen(t, path)
	want := map[int64][]byte{}
	for seed := int64(1); seed <= 5; seed++ {
		r := testResult(seed)
		if err := st.Put(digestOf(seed), r); err != nil {
			t.Fatal(err)
		}
		b, _ := json.Marshal(r)
		want[seed] = b
	}
	if st.Len() != 5 {
		t.Fatalf("Len = %d, want 5", st.Len())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := mustOpen(t, path)
	if st2.Len() != 5 {
		t.Fatalf("reopened Len = %d, want 5", st2.Len())
	}
	for seed, wantJSON := range want {
		r, ok := st2.Get(digestOf(seed))
		if !ok {
			t.Fatalf("seed %d: missing after reopen", seed)
		}
		got, _ := json.Marshal(r)
		if !bytes.Equal(got, wantJSON) {
			t.Errorf("seed %d: %s != %s", seed, got, wantJSON)
		}
	}
	if _, ok := st2.Get(digestOf(99)); ok {
		t.Fatal("phantom digest hit")
	}
	stats := st2.Stats()
	if stats.Hits != 5 || stats.Misses != 1 {
		t.Fatalf("stats %+v, want 5 hits / 1 miss", stats)
	}
}

// Overwriting a digest is append-only: the last record wins both live and
// after a reopen, and the loser is counted as superseded.
func TestLastRecordWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.bin")
	st := mustOpen(t, path)
	d := digestOf(7)
	first := testResult(7)
	second := testResult(7)
	second.Escalations = 42
	if err := st.Put(d, first); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(d, second); err != nil {
		t.Fatal(err)
	}
	if r, _ := st.Get(d); r.Escalations != 42 {
		t.Fatalf("live Get returned the superseded record: %+v", r)
	}
	st.Close()

	st2 := mustOpen(t, path)
	if st2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st2.Len())
	}
	if r, _ := st2.Get(d); r.Escalations != 42 {
		t.Fatalf("reopened Get returned the superseded record: %+v", r)
	}
	if st2.Stats().SupersededRecords != 1 {
		t.Fatalf("superseded = %d, want 1", st2.Stats().SupersededRecords)
	}
}

// A torn tail — the crash shape: a partial final record — is truncated on
// open and the store stays usable for appends, like the campaign journal.
func TestTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.bin")
	st := mustOpen(t, path)
	for seed := int64(1); seed <= 3; seed++ {
		if err := st.Put(digestOf(seed), testResult(seed)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Simulate a crash mid-append: a length word promising more than is there.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := binary.LittleEndian.AppendUint32(nil, 500)
	torn = append(torn, []byte("partial rec")...)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2 := mustOpen(t, path)
	if st2.Len() != 3 {
		t.Fatalf("Len after torn tail = %d, want 3", st2.Len())
	}
	// The tail must be gone from disk, and appending must work again.
	if err := st2.Put(digestOf(4), testResult(4)); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	st3 := mustOpen(t, path)
	if st3.Len() != 4 {
		t.Fatalf("Len after append-past-torn-tail = %d, want 4", st3.Len())
	}
}

// A corrupt record (CRC mismatch) ends the trustworthy prefix: records
// before it survive, it and everything after are truncated away.
func TestCorruptRecordTruncatesTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.bin")
	st := mustOpen(t, path)
	for seed := int64(1); seed <= 3; seed++ {
		if err := st.Put(digestOf(seed), testResult(seed)); err != nil {
			t.Fatal(err)
		}
	}
	// Second record's payload starts after header + record 1.
	secondOff := st.index[digestOf(2)].off
	st.Close()

	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, secondOff+2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2 := mustOpen(t, path)
	if st2.Len() != 1 {
		t.Fatalf("Len after corrupt middle record = %d, want 1", st2.Len())
	}
	if _, ok := st2.Get(digestOf(1)); !ok {
		t.Fatal("record before the corruption lost")
	}
	if _, ok := st2.Get(digestOf(3)); ok {
		t.Fatal("record after the corruption trusted")
	}
}

// appendRecord writes one raw record with an arbitrary salt — the shape a
// previous engine version would have left behind.
func appendRecord(t *testing.T, path string, salt [saltLen]byte, d campaign.Digest, payload []byte) {
	t.Helper()
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, salt[:]...)
	buf = append(buf, d[:]...)
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[4:]))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(buf); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// Records stamped by a different engine version are structurally intact but
// must never be served: open counts them stale and leaves them unindexed.
func TestStaleEngineSaltSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.bin")
	st := mustOpen(t, path)
	if err := st.Put(digestOf(1), testResult(1)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	staleSalt := engineSalt("dmafault-engine-v1")
	payload, _ := json.Marshal(testResult(2))
	appendRecord(t, path, staleSalt, digestOf(2), payload)

	st2 := mustOpen(t, path)
	if st2.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (stale record indexed?)", st2.Len())
	}
	if _, ok := st2.Get(digestOf(2)); ok {
		t.Fatal("stale-engine record served")
	}
	if st2.Stats().StaleRecords != 1 {
		t.Fatalf("stale = %d, want 1", st2.Stats().StaleRecords)
	}
}

// Compaction drops superseded and stale-engine records, preserves every
// live one byte-for-byte, and shrinks the file.
func TestCompactRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.bin")
	st := mustOpen(t, path)
	want := map[int64][]byte{}
	for seed := int64(1); seed <= 4; seed++ {
		if err := st.Put(digestOf(seed), testResult(seed)); err != nil {
			t.Fatal(err)
		}
	}
	// Supersede two of them.
	for _, seed := range []int64{2, 3} {
		r := testResult(seed)
		r.Escalations = 99
		if err := st.Put(digestOf(seed), r); err != nil {
			t.Fatal(err)
		}
	}
	for seed := int64(1); seed <= 4; seed++ {
		r, ok := st.Get(digestOf(seed))
		if !ok {
			t.Fatalf("seed %d missing pre-compact", seed)
		}
		want[seed], _ = json.Marshal(r)
	}
	st.Close()
	// A stale-engine record to drop too.
	payload, _ := json.Marshal(testResult(5))
	appendRecord(t, path, engineSalt("dmafault-engine-v1"), digestOf(5), payload)
	before, _ := os.Stat(path)

	cs, err := Compact(path)
	if err != nil {
		t.Fatal(err)
	}
	if cs.RecordsBefore != 7 || cs.RecordsAfter != 4 {
		t.Fatalf("compact %+v, want 7 -> 4 records", cs)
	}
	if cs.DroppedStale != 1 || cs.DroppedSuperseded != 2 {
		t.Fatalf("compact %+v, want 1 stale + 2 superseded dropped", cs)
	}
	if cs.BytesAfter >= before.Size() {
		t.Fatalf("compaction grew the log: %d -> %d", before.Size(), cs.BytesAfter)
	}

	st2 := mustOpen(t, path)
	if st2.Len() != 4 {
		t.Fatalf("Len after compact = %d, want 4", st2.Len())
	}
	stats := st2.Stats()
	if stats.StaleRecords != 0 || stats.SupersededRecords != 0 {
		t.Fatalf("compacted log still has dead records: %+v", stats)
	}
	for seed := int64(1); seed <= 4; seed++ {
		r, ok := st2.Get(digestOf(seed))
		if !ok {
			t.Fatalf("seed %d missing post-compact", seed)
		}
		got, _ := json.Marshal(r)
		if !bytes.Equal(got, want[seed]) {
			t.Errorf("seed %d changed across compaction:\n%s\nvs\n%s", seed, got, want[seed])
		}
	}
}

// Clear truncates back to the header but keeps the telemetry counters.
func TestClear(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.bin")
	st := mustOpen(t, path)
	for seed := int64(1); seed <= 3; seed++ {
		if err := st.Put(digestOf(seed), testResult(seed)); err != nil {
			t.Fatal(err)
		}
	}
	st.Get(digestOf(1))
	dropped, err := st.Clear()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 3 || st.Len() != 0 {
		t.Fatalf("dropped %d, Len %d; want 3 and 0", dropped, st.Len())
	}
	if _, ok := st.Get(digestOf(1)); ok {
		t.Fatal("Get hit after Clear")
	}
	stats := st.Stats()
	if stats.Hits != 1 || stats.Stores != 3 {
		t.Fatalf("Clear reset the telemetry counters: %+v", stats)
	}
	// The cleared store must accept appends and survive a reopen.
	if err := st.Put(digestOf(9), testResult(9)); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if got := mustOpen(t, path).Len(); got != 1 {
		t.Fatalf("Len after clear+append+reopen = %d, want 1", got)
	}
}

// The acceptance bar for the whole PR: a cold run populates the cache, and
// warm reruns at 1, 4, and 16 workers execute ZERO scenarios (no store
// misses) while producing byte-identical summaries — the cache is invisible
// in the output and total in the work saved.
func TestWarmCacheByteIdenticalAcrossWorkers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.bin")
	scenarios := campaign.Presets["ladder"](8, 2021)

	st := mustOpen(t, path)
	cold := campaign.Engine{Workers: 4, Cache: st}
	coldSum, err := cold.Run(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	want, err := coldSum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	coldStats := st.Stats()
	if coldStats.Stores == 0 {
		t.Fatal("cold run stored nothing")
	}
	st.Close()

	for _, w := range []int{1, 4, 16} {
		st := mustOpen(t, path)
		warm := campaign.Engine{Workers: w, Cache: st}
		sum, err := warm.Run(scenarios)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		got, err := sum.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: warm summary differs from cold run", w)
		}
		stats := st.Stats()
		if stats.Misses != 0 {
			t.Errorf("workers=%d: %d scenarios executed on a warm cache", w, stats.Misses)
		}
		if stats.Hits != uint64(len(scenarios)) {
			t.Errorf("workers=%d: hits = %d, want %d", w, stats.Hits, len(scenarios))
		}
		if stats.Stores != 0 {
			t.Errorf("workers=%d: warm run appended %d records", w, stats.Stores)
		}
		st.Close()
	}
}

// A scenario's digest position in the set must not matter: a permuted set
// replays from the same records.
func TestWarmCacheOrderIndependent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.bin")
	scenarios := campaign.Presets["ladder"](6, 7)
	st := mustOpen(t, path)
	if _, err := (campaign.Engine{Workers: 2, Cache: st}).Run(scenarios); err != nil {
		t.Fatal(err)
	}
	coldMisses := st.Stats().Misses // the cold run's own lookups all missed

	reversed := make([]campaign.Scenario, len(scenarios))
	for i, s := range scenarios {
		reversed[len(scenarios)-1-i] = s
	}
	if _, err := (campaign.Engine{Workers: 2, Cache: st}).Run(reversed); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Misses != coldMisses {
		t.Fatalf("permuted warm run missed %d times", stats.Misses-coldMisses)
	}
	if stats.Hits != uint64(len(scenarios)) {
		t.Fatalf("permuted warm run hit %d times, want %d", stats.Hits, len(scenarios))
	}
}
