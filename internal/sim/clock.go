// Package sim provides simulation-wide utilities: the virtual clock that
// orders CPU, device and IOMMU events. All timing in the reproduction
// (deferred-invalidation windows, invalidation costs, attack races) is
// expressed in virtual nanoseconds on this clock, so runs are deterministic.
package sim

import "fmt"

// Nanos is a point or span of virtual time in nanoseconds.
type Nanos uint64

// Common spans.
const (
	Microsecond Nanos = 1_000
	Millisecond Nanos = 1_000_000
	Second      Nanos = 1_000_000_000
)

// CPUFrequencyGHz is the simulated core clock used to convert the paper's
// cycle counts (IOTLB invalidation ≈ 2000 cycles, TLB invalidation ≈ 100
// cycles, §5.2.1) into virtual time.
const CPUFrequencyGHz = 2

// Cycles converts a cycle count to virtual nanoseconds at CPUFrequencyGHz.
func Cycles(n uint64) Nanos { return Nanos(n / CPUFrequencyGHz) }

// Clock is a monotonically advancing virtual clock.
type Clock struct {
	now Nanos
}

// NewClock starts a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() Nanos { return c.now }

// Advance moves virtual time forward by d.
func (c *Clock) Advance(d Nanos) { c.now += d }

// String formats the current time for traces.
func (c *Clock) String() string {
	return fmt.Sprintf("t=%.3fms", float64(c.now)/float64(Millisecond))
}
