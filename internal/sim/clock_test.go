package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClockAdvances(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("fresh clock at %d", c.Now())
	}
	c.Advance(3 * Millisecond)
	c.Advance(500 * Microsecond)
	if c.Now() != 3*Millisecond+500*Microsecond {
		t.Errorf("Now = %d", c.Now())
	}
	if !strings.Contains(c.String(), "3.500ms") {
		t.Errorf("String = %q", c.String())
	}
}

func TestUnitRelations(t *testing.T) {
	if Millisecond != 1000*Microsecond || Second != 1000*Millisecond {
		t.Error("unit constants inconsistent")
	}
}

func TestCycles(t *testing.T) {
	// 2000 cycles at 2 GHz = 1000 ns (the §5.2.1 invalidation cost).
	if Cycles(2000) != 1000 {
		t.Errorf("Cycles(2000) = %d", Cycles(2000))
	}
	if Cycles(100) != 50 {
		t.Errorf("Cycles(100) = %d", Cycles(100))
	}
}

func TestPropertyClockMonotonic(t *testing.T) {
	f := func(steps []uint16) bool {
		c := NewClock()
		prev := c.Now()
		for _, s := range steps {
			c.Advance(Nanos(s))
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
