package cliutil

import (
	"context"
	"flag"
	"log/slog"
	"os"
	"path/filepath"
	"testing"

	"dmafault/internal/iommu"
	"dmafault/internal/obs"
)

func TestFlagsRegisterOnlyWhatWasAsked(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := NewWith("t", fs).WithSeed().WithWorkers()
	if f.Seed == nil || f.Workers == nil {
		t.Fatal("opted-in flags not registered")
	}
	if f.Strict != nil || f.JSON != nil || f.Out != nil || f.Quiet != nil {
		t.Fatal("flags registered without opt-in")
	}
	if fs.Lookup("seed") == nil || fs.Lookup("workers") == nil {
		t.Fatal("flag set missing registered names")
	}
	if fs.Lookup("strict") != nil {
		t.Fatal("strict registered without opt-in")
	}
	if err := fs.Parse([]string{"-seed", "7", "-workers", "3"}); err != nil {
		t.Fatal(err)
	}
	if *f.Seed != 7 || *f.Workers != 3 {
		t.Fatalf("parsed seed=%d workers=%d", *f.Seed, *f.Workers)
	}
}

func TestDefaults(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := NewWith("t", fs).WithSeed().WithStrict()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *f.Seed != DefaultSeed {
		t.Errorf("default seed = %d, want %d", *f.Seed, DefaultSeed)
	}
	if f.Mode() != iommu.Deferred {
		t.Error("default mode is not deferred")
	}
}

func TestModeResolution(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := NewWith("t", fs).WithStrict()
	if err := fs.Parse([]string{"-strict"}); err != nil {
		t.Fatal(err)
	}
	if f.Mode() != iommu.Strict {
		t.Error("-strict did not resolve to strict mode")
	}
	// Mode without the flag registered stays at the Linux default.
	if NewWith("t", flag.NewFlagSet("t", flag.ContinueOnError)).Mode() != iommu.Deferred {
		t.Error("unregistered strict flag must mean deferred")
	}
}

func TestWithLogAndLogger(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := NewWith("t", fs).WithLog().WithQuiet()
	if fs.Lookup("log-level") == nil || fs.Lookup("log-format") == nil {
		t.Fatal("WithLog did not register its flags")
	}
	if err := fs.Parse([]string{"-log-level", "debug"}); err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(8)
	log := f.Logger(rec)
	log.Debug("claimed", "scenario", "s0")
	recs := rec.Records()
	if len(recs) != 1 || recs[0].Msg != "claimed" || recs[0].Attrs["scenario"] != "s0" {
		t.Fatalf("recorder tee = %+v", recs)
	}

	// -quiet raises the console floor to warn; a logger built without the
	// flags registered still works.
	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	f2 := NewWith("t", fs2).WithLog().WithQuiet()
	if err := fs2.Parse([]string{"-quiet"}); err != nil {
		t.Fatal(err)
	}
	if f2.Logger(nil).Enabled(context.Background(), slog.LevelInfo) {
		t.Error("-quiet left info enabled on the console")
	}
	if !NewWith("t", flag.NewFlagSet("t", flag.ContinueOnError)).Logger(nil).
		Enabled(context.Background(), slog.LevelInfo) {
		t.Error("logger without registered flags must default to info")
	}
}

func TestWriteOut(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := NewWith("t", fs).WithOut()
	// No -out: silently skip.
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteOut([]byte("x")); err != nil {
		t.Fatalf("WriteOut without -out: %v", err)
	}
	path := filepath.Join(t.TempDir(), "artifact.json")
	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	f2 := NewWith("t", fs2).WithOut()
	if err := fs2.Parse([]string{"-out", path}); err != nil {
		t.Fatal(err)
	}
	if err := f2.WriteOut([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("artifact = %q, %v", got, err)
	}
}
