// Package cliutil is the shared flag surface of the dmafault commands.
// Every cmd/* main used to re-declare the same knobs (seed, worker count,
// IOMMU mode, output format) with drifting help strings; this package pins
// one spelling and one default per knob, so `-seed` or `-workers` means the
// same thing to every binary, including the dmafaultd service.
package cliutil

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"dmafault/internal/iommu"
	"dmafault/internal/obs"
)

// DefaultSeed is the repo-wide boot seed (the paper's publication year).
const DefaultSeed = 2021

// Flags carries the common knobs a command opted into. Fields are nil until
// the matching With* method runs, so a binary only advertises the flags it
// actually reads.
type Flags struct {
	Seed      *int64
	Workers   *int
	Strict    *bool
	JSON      *bool
	Out       *string
	Quiet     *bool
	LogLevel  *string
	LogFormat *string

	prog string
	fs   *flag.FlagSet
}

// New binds a flag group for the named program to the process-wide flag set.
func New(prog string) *Flags {
	return NewWith(prog, flag.CommandLine)
}

// NewWith binds to an explicit FlagSet (tests, embedded services).
func NewWith(prog string, fs *flag.FlagSet) *Flags {
	return &Flags{prog: prog, fs: fs}
}

// WithSeed registers -seed: the deterministic boot seed.
func (f *Flags) WithSeed() *Flags {
	f.Seed = f.fs.Int64("seed", DefaultSeed, "boot seed (equal seeds boot identical machines)")
	return f
}

// WithWorkers registers -workers: the scenario/boot pool size.
func (f *Flags) WithWorkers() *Flags {
	f.Workers = f.fs.Int("workers", 0, "worker pool size (0 = one per CPU)")
	return f
}

// WithStrict registers -strict: strict IOTLB invalidation instead of the
// Linux-default deferred policy.
func (f *Flags) WithStrict() *Flags {
	f.Strict = f.fs.Bool("strict", false, "strict IOTLB invalidation (default: deferred, the Linux default)")
	return f
}

// WithJSON registers -json: machine-readable output instead of text.
func (f *Flags) WithJSON() *Flags {
	f.JSON = f.fs.Bool("json", false, "emit JSON instead of the text report")
	return f
}

// WithOut registers -out: also write the primary artifact to a file.
func (f *Flags) WithOut() *Flags {
	f.Out = f.fs.String("out", "", "also write the output to this file")
	return f
}

// WithQuiet registers -quiet: suppress progress lines on stderr.
func (f *Flags) WithQuiet() *Flags {
	f.Quiet = f.fs.Bool("quiet", false, "suppress progress lines")
	return f
}

// WithLog registers -log-level and -log-format: the structured diagnostic
// stream every command emits on stderr.
func (f *Flags) WithLog() *Flags {
	f.LogLevel = f.fs.String("log-level", "info", "diagnostic log level (debug|info|warn|error)")
	f.LogFormat = f.fs.String("log-format", obs.FormatText, "diagnostic log format (text|json)")
	return f
}

// Logger resolves the -log-level/-log-format flags into a structured stderr
// logger, teeing every record into rec when one is given (rec may be nil).
// -quiet raises the console floor to warn, matching the progress-line
// contract; the recorder still sees everything. Flag spelling errors are
// fatal, like any other bad flag value.
func (f *Flags) Logger(rec *obs.Recorder) *slog.Logger {
	level, format := slog.LevelInfo, obs.FormatText
	var err error
	if f.LogLevel != nil {
		if level, err = obs.ParseLevel(*f.LogLevel); err != nil {
			f.Fatal(err)
		}
	}
	if f.LogFormat != nil {
		if format, err = obs.ParseFormat(*f.LogFormat); err != nil {
			f.Fatal(err)
		}
	}
	if f.Quiet != nil && *f.Quiet && level < slog.LevelWarn {
		level = slog.LevelWarn
	}
	return obs.NewLogger(os.Stderr, format, level, rec)
}

// Parse parses the underlying flag set (command line when bound via New).
func (f *Flags) Parse() {
	if f.fs == flag.CommandLine {
		flag.Parse()
		return
	}
	// Explicit sets are parsed by the embedder with its own argv.
}

// Mode resolves the -strict flag to the IOMMU invalidation policy
// (Deferred when the flag was not registered or not set).
func (f *Flags) Mode() iommu.Mode {
	if f.Strict != nil && *f.Strict {
		return iommu.Strict
	}
	return iommu.Deferred
}

// Fatal prints "prog: err" and exits 1 — the shared error epilogue of every
// command.
func (f *Flags) Fatal(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", f.prog, err)
	os.Exit(1)
}

// WriteOut writes data to the -out file when one was given (no-op
// otherwise).
func (f *Flags) WriteOut(data []byte) error {
	if f.Out == nil || *f.Out == "" {
		return nil
	}
	return os.WriteFile(*f.Out, data, 0o644)
}
