// Package dkasan implements D-KASAN (DMA Kernel Address SANitizer, §4.2 of
// the paper): a run-time tool that augments KASAN-style allocation tracking
// with DMA-map tracking and reports the dynamic sub-page exposures static
// analysis cannot see:
//
//	alloc-after-map:  a kmalloc object is allocated from a DMA-mapped page
//	map-after-alloc:  a page holding live kmalloc objects becomes DMA-mapped
//	access-after-map: the CPU touches a DMA-mapped page
//	multiple-map:     a page is mapped by several IOVAs (possibly with
//	                  different permissions)
//
// The original instruments the kernel with compile-time callbacks; here the
// simulator's own memory and DMA operations are the instrumentation points
// (mem.Tracer + dma.Hook), which is exhaustive by construction.
package dkasan

import (
	"fmt"
	"sort"
	"strings"

	"dmafault/internal/dma"
	"dmafault/internal/iommu"
	"dmafault/internal/layout"
	"dmafault/internal/mem"
)

// Class is a D-KASAN report class.
type Class int

const (
	AllocAfterMap Class = iota
	MapAfterAlloc
	AccessAfterMap
	MultipleMap
)

// String names the class as §4.2 does.
func (c Class) String() string {
	switch c {
	case AllocAfterMap:
		return "alloc-after-map"
	case MapAfterAlloc:
		return "map-after-alloc"
	case AccessAfterMap:
		return "access-after-map"
	case MultipleMap:
		return "multiple-map"
	default:
		return "?"
	}
}

// Report is one deduplicated finding (one line of Fig. 3).
type Report struct {
	Class Class
	Size  uint64
	Read  bool // DMA permissions of the exposing mapping(s)
	Write bool
	Site  string
	Count int // occurrences folded into this line
}

// perms renders "[READ, WRITE]" like Fig. 3.
func (r *Report) perms() string {
	var p []string
	if r.Read {
		p = append(p, "READ")
	}
	if r.Write {
		p = append(p, "WRITE")
	}
	if len(p) == 0 {
		p = append(p, "NONE")
	}
	return "[" + strings.Join(p, ", ") + "]"
}

// String renders the Fig. 3 line format: "size 512 [READ, WRITE] site".
func (r *Report) String() string {
	return fmt.Sprintf("%s: size %d %s %s (x%d)", r.Class, r.Size, r.perms(), r.Site, r.Count)
}

// pageState is the sanitizer's per-frame shadow record.
type pageState struct {
	mapCount int
	read     bool
	write    bool
}

// Sanitizer is the D-KASAN instance. It implements mem.Tracer and dma.Hook.
type Sanitizer struct {
	m     *mem.Memory
	pages map[layout.PFN]*pageState
	// objects tracks live kmalloc objects: addr -> (size, site).
	objects map[layout.Addr]objInfo
	reports map[string]*Report
	// Enabled gates reporting (the tools is compiled in but switched on for
	// test runs, like KASAN itself).
	Enabled bool
	// quiescedCPUAccess suppresses access-after-map noise from the
	// sanitizer's own bookkeeping reads.
	stats Stats
}

type objInfo struct {
	size uint64
	site string
}

// Stats counts raw (pre-deduplication) events.
type Stats struct {
	AllocAfterMap, MapAfterAlloc, AccessAfterMap, MultipleMap uint64
}

// New creates a sanitizer; attach it via core.Config.Tracer AND Attach().
func New() *Sanitizer {
	return &Sanitizer{
		pages:   make(map[layout.PFN]*pageState),
		objects: make(map[layout.Addr]objInfo),
		reports: make(map[string]*Report),
		Enabled: true,
	}
}

// Attach wires the sanitizer to the booted system's memory and DMA API.
func (s *Sanitizer) Attach(m *mem.Memory, mapper *dma.Mapper) {
	s.m = m
	mapper.AddHook(s)
}

// Stats returns raw event counts.
func (s *Sanitizer) Stats() Stats { return s.stats }

// Reports returns the deduplicated findings, most frequent first.
func (s *Sanitizer) Reports() []*Report {
	out := make([]*Report, 0, len(s.reports))
	for _, r := range s.reports {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Site < out[j].Site
	})
	return out
}

// ReportsOf filters by class.
func (s *Sanitizer) ReportsOf(c Class) []*Report {
	var out []*Report
	for _, r := range s.Reports() {
		if r.Class == c {
			out = append(out, r)
		}
	}
	return out
}

// Render prints the Fig. 3-style report.
func (s *Sanitizer) Render() string {
	var b strings.Builder
	b.WriteString("D-KASAN report\n")
	for i, r := range s.Reports() {
		fmt.Fprintf(&b, "[%d] %s\n", i+1, r.String())
	}
	return b.String()
}

func (s *Sanitizer) report(c Class, size uint64, read, write bool, site string) {
	key := fmt.Sprintf("%d|%d|%v|%v|%s", c, size, read, write, site)
	if r, ok := s.reports[key]; ok {
		r.Count++
		return
	}
	s.reports[key] = &Report{Class: c, Size: size, Read: read, Write: write, Site: site, Count: 1}
}

func (s *Sanitizer) page(p layout.PFN) *pageState {
	st, ok := s.pages[p]
	if !ok {
		st = &pageState{}
		s.pages[p] = st
	}
	return st
}

// --- mem.Tracer ---

// OnKmalloc checks alloc-after-map: the fresh object landed on a page some
// device can already access.
func (s *Sanitizer) OnKmalloc(a layout.Addr, size uint64, site string) {
	s.objects[a] = objInfo{size: size, site: site}
	if !s.Enabled || s.m == nil {
		return
	}
	pfn, err := s.m.Layout().KVAToPFN(a)
	if err != nil {
		return
	}
	last, err := s.m.Layout().KVAToPFN(a + layout.Addr(size-1))
	if err != nil {
		last = pfn
	}
	for p := pfn; p <= last; p++ {
		st := s.page(p)
		if st.mapCount > 0 {
			s.stats.AllocAfterMap++
			s.report(AllocAfterMap, size, st.read, st.write, site)
			return
		}
	}
}

// OnKfree drops the object from the live set.
func (s *Sanitizer) OnKfree(a layout.Addr, size uint64) {
	delete(s.objects, a)
}

// OnPageAlloc and OnPageFree are uninteresting to D-KASAN (frames carry no
// objects yet / anymore) but required by the interface.
func (s *Sanitizer) OnPageAlloc(p layout.PFN, order uint) {}
func (s *Sanitizer) OnPageFree(p layout.PFN, order uint)  {}

// OnCPUAccess checks access-after-map: CPU touching a device-owned page.
func (s *Sanitizer) OnCPUAccess(a layout.Addr, n uint64, write bool) {
	if !s.Enabled || s.m == nil {
		return
	}
	pfn, err := s.m.Layout().KVAToPFN(a)
	if err != nil {
		return
	}
	st, ok := s.pages[pfn]
	if !ok || st.mapCount == 0 {
		return
	}
	s.stats.AccessAfterMap++
	kind := "read"
	if write {
		kind = "write"
	}
	s.report(AccessAfterMap, n, st.read, st.write, fmt.Sprintf("cpu-%s", kind))
}

// --- dma.Hook ---

// OnMap checks map-after-alloc and multiple-map for every covered page, then
// updates the shadow state.
func (s *Sanitizer) OnMap(dev iommu.DeviceID, kva layout.Addr, n uint64, dir dma.Direction, va iommu.IOVA) {
	if s.m == nil {
		return
	}
	first, err := s.m.Layout().KVAToPFN(kva)
	if err != nil {
		return
	}
	last, err := s.m.Layout().KVAToPFN(kva + layout.Addr(n-1))
	if err != nil {
		last = first
	}
	read := dir.Perm().Allows(false)
	write := dir.Perm().Allows(true)
	for p := first; p <= last; p++ {
		st := s.page(p)
		if s.Enabled && st.mapCount > 0 {
			s.stats.MultipleMap++
			s.report(MultipleMap, n, st.read || read, st.write || write, "dma-map")
		}
		if s.Enabled {
			s.checkMapAfterAlloc(p, kva, n, read, write)
		}
		st.mapCount++
		st.read = st.read || read
		st.write = st.write || write
	}
}

// checkMapAfterAlloc reports live foreign kmalloc objects on a page being
// mapped (the mapped buffer itself is not foreign).
func (s *Sanitizer) checkMapAfterAlloc(p layout.PFN, mappedKVA layout.Addr, mappedLen uint64, read, write bool) {
	for _, obj := range s.m.Slab.ObjectsOnPage(p) {
		if !obj.Live {
			continue
		}
		// Skip the object(s) the mapping intentionally covers.
		if obj.Addr < mappedKVA+layout.Addr(mappedLen) && mappedKVA < obj.Addr+layout.Addr(obj.Size) {
			continue
		}
		s.stats.MapAfterAlloc++
		s.report(MapAfterAlloc, obj.Size, read, write, obj.Site)
	}
}

// OnUnmap updates the shadow state.
func (s *Sanitizer) OnUnmap(dev iommu.DeviceID, kva layout.Addr, n uint64, dir dma.Direction, va iommu.IOVA) {
	if s.m == nil {
		return
	}
	first, err := s.m.Layout().KVAToPFN(kva)
	if err != nil {
		return
	}
	last, err := s.m.Layout().KVAToPFN(kva + layout.Addr(n-1))
	if err != nil {
		last = first
	}
	for p := first; p <= last; p++ {
		st := s.page(p)
		if st.mapCount > 0 {
			st.mapCount--
		}
		if st.mapCount == 0 {
			st.read, st.write = false, false
		}
	}
}
