package dkasan

import (
	"strings"
	"testing"

	"dmafault/internal/core"
	"dmafault/internal/dma"
	"dmafault/internal/iommu"
	"dmafault/internal/netstack"
	"dmafault/internal/workload"
)

const nicDev iommu.DeviceID = 1

func newSanitizedSystem(t *testing.T) (*core.System, *Sanitizer) {
	t.Helper()
	dk := New()
	sys, err := core.NewSystem(core.Config{Seed: 51, KASLR: true, Mode: iommu.Deferred, Tracer: dk})
	if err != nil {
		t.Fatal(err)
	}
	dk.Attach(sys.Mem, sys.Mapper)
	return sys, dk
}

func TestAllocAfterMap(t *testing.T) {
	sys, dk := newSanitizedSystem(t)
	if _, err := sys.IOMMU.CreateDomain("nic", nicDev); err != nil {
		t.Fatal(err)
	}
	buf, err := sys.Mem.Slab.Kmalloc(0, 512, "nic_io_buf")
	if err != nil {
		t.Fatal(err)
	}
	va, err := sys.Mapper.MapSingle(nicDev, buf, 512, dma.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh same-class allocation lands on the mapped page.
	if _, err := sys.Mem.Slab.Kmalloc(0, 512, "sock_alloc_inode+0x4f/0x120"); err != nil {
		t.Fatal(err)
	}
	reports := dk.ReportsOf(AllocAfterMap)
	if len(reports) == 0 {
		t.Fatal("no alloc-after-map report")
	}
	r := reports[0]
	if r.Size != 512 || !r.Read || !r.Write || !strings.Contains(r.Site, "sock_alloc_inode") {
		t.Errorf("report = %+v", r)
	}
	if err := sys.Mapper.UnmapSingle(nicDev, va, 512, dma.Bidirectional); err != nil {
		t.Fatal(err)
	}
}

func TestMapAfterAlloc(t *testing.T) {
	sys, dk := newSanitizedSystem(t)
	if _, err := sys.IOMMU.CreateDomain("nic", nicDev); err != nil {
		t.Fatal(err)
	}
	// Allocate the bystander first, then map a co-located buffer.
	if _, err := sys.Mem.Slab.Kmalloc(0, 512, "load_elf_phdrs+0xbf/0x130"); err != nil {
		t.Fatal(err)
	}
	buf, _ := sys.Mem.Slab.Kmalloc(0, 512, "nic_io_buf")
	if _, err := sys.Mapper.MapSingle(nicDev, buf, 512, dma.FromDevice); err != nil {
		t.Fatal(err)
	}
	reports := dk.ReportsOf(MapAfterAlloc)
	found := false
	for _, r := range reports {
		if strings.Contains(r.Site, "load_elf_phdrs") && r.Write && !r.Read {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing map-after-alloc for bystander: %v", dk.Render())
	}
	// The mapped buffer itself must NOT be reported.
	for _, r := range reports {
		if strings.Contains(r.Site, "nic_io_buf") {
			t.Error("mapping's own buffer reported as foreign")
		}
	}
}

func TestAccessAfterMap(t *testing.T) {
	sys, dk := newSanitizedSystem(t)
	if _, err := sys.IOMMU.CreateDomain("nic", nicDev); err != nil {
		t.Fatal(err)
	}
	buf, _ := sys.Mem.Slab.Kmalloc(0, 1024, "nic_io_buf")
	if _, err := sys.Mapper.MapSingle(nicDev, buf, 1024, dma.FromDevice); err != nil {
		t.Fatal(err)
	}
	before := dk.Stats().AccessAfterMap
	if err := sys.Mem.WriteU64(buf+64, 7); err != nil {
		t.Fatal(err)
	}
	if dk.Stats().AccessAfterMap != before+1 {
		t.Error("CPU write to mapped page not reported")
	}
	if len(dk.ReportsOf(AccessAfterMap)) == 0 {
		t.Error("no access-after-map report")
	}
}

func TestMultipleMap(t *testing.T) {
	sys, dk := newSanitizedSystem(t)
	if _, err := sys.IOMMU.CreateDomain("nic", nicDev); err != nil {
		t.Fatal(err)
	}
	// Two buffers on one frag page mapped separately — the double mapping
	// of Fig. 3 line 1.
	a, _ := sys.Mem.Frag.Alloc(0, 2048, 0)
	b, _ := sys.Mem.Frag.Alloc(0, 1024, 0)
	va, err := sys.Mapper.MapSingle(nicDev, a, 2048, dma.FromDevice)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := sys.Mapper.MapSingle(nicDev, b, 1024, dma.ToDevice)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := sys.Layout.KVAToPFN(a)
	pb, _ := sys.Layout.KVAToPFN(b + 1023)
	if pa == pb {
		reports := dk.ReportsOf(MultipleMap)
		if len(reports) == 0 {
			t.Fatal("no multiple-map report for doubly mapped page")
		}
		if !reports[0].Read || !reports[0].Write {
			t.Errorf("merged perms = %+v (want READ+WRITE across the two mappings)", reports[0])
		}
	}
	_ = va
	_ = vb
}

func TestNoFalseMultipleMap(t *testing.T) {
	sys, dk := newSanitizedSystem(t)
	if _, err := sys.IOMMU.CreateDomain("nic", nicDev); err != nil {
		t.Fatal(err)
	}
	// Buffers on distinct pages: no multiple-map.
	p1, _ := sys.Mem.Pages.AllocPages(0, 0)
	p2, _ := sys.Mem.Pages.AllocPages(0, 0)
	k1 := sys.Layout.PFNToKVA(p1)
	k2 := sys.Layout.PFNToKVA(p2)
	if _, err := sys.Mapper.MapSingle(nicDev, k1, 4096, dma.FromDevice); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Mapper.MapSingle(nicDev, k2, 4096, dma.FromDevice); err != nil {
		t.Fatal(err)
	}
	if n := dk.Stats().MultipleMap; n != 0 {
		t.Errorf("false multiple-map events: %d", n)
	}
}

func TestDisabledSanitizerIsSilent(t *testing.T) {
	sys, dk := newSanitizedSystem(t)
	dk.Enabled = false
	if _, err := sys.IOMMU.CreateDomain("nic", nicDev); err != nil {
		t.Fatal(err)
	}
	buf, _ := sys.Mem.Slab.Kmalloc(0, 512, "nic_io_buf")
	if _, err := sys.Mapper.MapSingle(nicDev, buf, 512, dma.Bidirectional); err != nil {
		t.Fatal(err)
	}
	sys.Mem.Slab.Kmalloc(0, 512, "x")
	if len(dk.Reports()) != 0 {
		t.Error("disabled sanitizer produced reports")
	}
}

func TestFigure3Workload(t *testing.T) {
	// The §4.2 experiment: build-like allocations concurrent with ping
	// traffic produce the Fig. 3 report lines.
	sys, dk := newSanitizedSystem(t)
	nic, err := sys.AddNIC(nicDev, netstack.DriverI40E, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := workload.Run(sys, nic, workload.Config{Iterations: 10, NICDevice: nicDev})
	if err != nil {
		t.Fatal(err)
	}
	if res.Builds != 10 || res.Pings == 0 {
		t.Fatalf("workload result = %+v", res)
	}
	out := dk.Render()
	t.Log("\n" + out)
	// Fig. 3's five allocating sites all show up.
	for _, site := range []string{"__alloc_skb", "load_elf_phdrs", "__do_execve_file", "sock_alloc_inode", "assoc_array_insert"} {
		if !strings.Contains(out, site) {
			t.Errorf("report missing Fig. 3 site %s", site)
		}
	}
	// Both READ+WRITE (admin block page) and WRITE-only (RX copybreak page)
	// exposures appear, as in Fig. 3.
	if !strings.Contains(out, "[READ, WRITE]") || !strings.Contains(out, "[WRITE]") {
		t.Error("report lacks the Fig. 3 permission mix")
	}
	if dk.Stats().AllocAfterMap == 0 {
		t.Error("workload produced no alloc-after-map events")
	}
}

func TestReportStringsAndClassNames(t *testing.T) {
	for _, c := range []Class{AllocAfterMap, MapAfterAlloc, AccessAfterMap, MultipleMap, Class(9)} {
		if c.String() == "" {
			t.Error("empty class name")
		}
	}
	r := &Report{Class: AllocAfterMap, Size: 512, Read: true, Write: true, Site: "s", Count: 3}
	if !strings.Contains(r.String(), "size 512 [READ, WRITE] s") {
		t.Errorf("String = %q", r.String())
	}
	none := &Report{Class: MultipleMap, Size: 64, Site: "t", Count: 1}
	if !strings.Contains(none.String(), "[NONE]") {
		t.Errorf("String = %q", none.String())
	}
}
