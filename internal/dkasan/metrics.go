package dkasan

import "dmafault/internal/metrics"

// Sanitizer implements metrics.Source: raw event counts per vulnerability
// class (pre-deduplication) plus the deduplicated report gauge — the Fig. 3
// exposure view as a scrapeable family.

// Describe implements metrics.Source.
func (s *Sanitizer) Describe() []metrics.Desc {
	return []metrics.Desc{
		{Name: "dkasan_events_total", Help: "Raw sanitizer events by class (pre-deduplication).", Kind: metrics.KindCounter},
		{Name: "dkasan_reports", Help: "Deduplicated findings.", Kind: metrics.KindGauge},
	}
}

// Collect implements metrics.Source.
func (s *Sanitizer) Collect(emit func(name string, sm metrics.Sample)) {
	for _, c := range []struct {
		class string
		n     uint64
	}{
		{"access_after_map", s.stats.AccessAfterMap},
		{"alloc_after_map", s.stats.AllocAfterMap},
		{"map_after_alloc", s.stats.MapAfterAlloc},
		{"multiple_map", s.stats.MultipleMap},
	} {
		emit("dkasan_events_total", metrics.Sample{Labels: metrics.L("class", c.class), Value: float64(c.n)})
	}
	emit("dkasan_reports", metrics.Sample{Value: float64(len(s.reports))})
}
