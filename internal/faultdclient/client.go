// Package faultdclient is the typed Go client for the dmafaultd /v1 API.
// It speaks the wire structs of internal/faultd/api — the same types the
// server marshals — so client and service cannot skew, and it owns the
// transport concerns every caller was hand-rolling: base-URL joining,
// status-code mapping into *APIError, bounded retries on transient
// failures, and SSE decoding for the live event stream.
//
//	c := faultdclient.New("http://127.0.0.1:8077")
//	acc, err := c.Submit(ctx, api.SubmitRequest{Preset: "ladder", N: 8, Seed: 2021})
//	job, err := c.WaitTerminal(ctx, acc.ID, 0)
//
// Retry policy: idempotent calls (GET, DELETE of a job, cache admin) retry
// on network errors and 502/503/504; Submit additionally retries 429,
// honoring the Retry-After header the server sets when its queue is full.
// Everything else surfaces immediately as *APIError.
package faultdclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"dmafault/internal/faultd/api"
	"dmafault/internal/metrics"
)

// Defaults for Client's zero values.
const (
	// DefaultRetries is how many times a transient failure is retried.
	DefaultRetries = 3
	// DefaultRetryWait is the base backoff, doubled per retry up to
	// DefaultMaxRetryWait and jittered ±25% so a fleet of clients bounced by
	// the same outage does not retry in lockstep.
	DefaultRetryWait = 100 * time.Millisecond
	// DefaultMaxRetryWait caps the exponential backoff. A server Retry-After
	// longer than the cap is still honored verbatim — the server knows its
	// own drain schedule better than the client's curve does.
	DefaultMaxRetryWait = 2 * time.Second
	// DefaultPollInterval paces WaitTerminal's job polling.
	DefaultPollInterval = 25 * time.Millisecond
)

// Client calls one dmafaultd instance. The zero value is unusable; construct
// with New. Fields may be tuned before the first call.
type Client struct {
	// Base is the service root, e.g. "http://127.0.0.1:8077" (no /v1).
	Base string
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
	// Retries bounds transient-failure retries (<0: none; 0: DefaultRetries).
	Retries int
	// RetryWait is the base backoff between retries (0: DefaultRetryWait).
	RetryWait time.Duration
	// MaxRetryWait caps the exponential backoff (0: DefaultMaxRetryWait).
	MaxRetryWait time.Duration
}

// New builds a client for the service at base (scheme://host[:port]).
func New(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

// WithTransport routes every request through rt — the injection point for a
// netchaos chaos transport (or any instrumented RoundTripper) — and returns
// the client for chaining. A nil rt is a no-op, so callers can pass their
// configured transport through unconditionally.
func (c *Client) WithTransport(rt http.RoundTripper) *Client {
	if rt != nil {
		c.HTTP = &http.Client{Transport: rt}
	}
	return c
}

// APIError is a non-2xx response, with the body the server sent (its
// http.Error text for job routes).
type APIError struct {
	StatusCode int
	Body       string
	// RetryAfter is the server's Retry-After header (zero when absent): how
	// long the server asked the caller to back off. The client honors it on
	// its own retries; callers that give up instead — the fabric coordinator
	// re-acquiring a lease elsewhere — should propagate it into their next
	// approach to the same server.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("faultd: %d %s: %s", e.StatusCode, http.StatusText(e.StatusCode), e.Body)
}

// IsConflict reports whether err is an APIError with status 409 — e.g. a
// Cancel that raced the job's own completion, which most callers treat as
// success.
func IsConflict(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.StatusCode == http.StatusConflict
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) retries() int {
	if c.Retries < 0 {
		return 0
	}
	if c.Retries == 0 {
		return DefaultRetries
	}
	return c.Retries
}

func (c *Client) retryWait() time.Duration {
	if c.RetryWait > 0 {
		return c.RetryWait
	}
	return DefaultRetryWait
}

func (c *Client) maxRetryWait() time.Duration {
	if c.MaxRetryWait > 0 {
		return c.MaxRetryWait
	}
	return DefaultMaxRetryWait
}

// jitter spreads a backoff over [3/4·d, 5/4·d) so retries from many clients
// (or many fabric leases) decorrelate instead of hammering a recovering
// server in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d*3/4 + time.Duration(rand.Int64N(int64(d)/2+1))
}

// retryAfter parses a Retry-After header in either RFC 9110 §10.2.3 form:
// delta-seconds ("3") or an HTTP-date ("Fri, 31 Dec 1999 23:59:59 GMT").
// dmafaultd itself only emits delta-seconds, but proxies and chaos layers
// between client and server are free to rewrite or inject the date form,
// and both must surface identically — as the duration left to wait. A date
// already in the past means "retry now" (zero), not a negative wait.
func retryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if ra, err := strconv.Atoi(v); err == nil {
		if ra <= 0 {
			return 0
		}
		return time.Duration(ra) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// transient reports whether a response status is worth retrying for an
// idempotent call: gateway flaps and drain windows, not client errors.
func transient(status int) bool {
	return status == http.StatusBadGateway ||
		status == http.StatusServiceUnavailable ||
		status == http.StatusGatewayTimeout
}

// sleep waits d or until ctx is done.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// do issues method path with body (replayed per attempt), retrying network
// errors and — when retryStatus says so — retryable statuses, then decodes
// a 2xx response into out (skipped when out is nil). Backoff is exponential
// from RetryWait, capped at MaxRetryWait, jittered ±25%, and always honors
// ctx cancellation — a caller's deadline ends the retry loop mid-sleep. A
// server Retry-After overrides the computed wait for that retry (un-capped:
// the server's own estimate wins) and is surfaced on the APIError either way.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any, retryStatus func(int) bool) error {
	wait := c.retryWait()
	var lastErr error
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		next := jitter(wait)
		resp, err := c.httpClient().Do(req)
		if err != nil {
			lastErr = err
		} else {
			data, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
			resp.Body.Close()
			if rerr != nil {
				lastErr = rerr
			} else if resp.StatusCode >= 200 && resp.StatusCode < 300 {
				if out == nil {
					return nil
				}
				return json.Unmarshal(data, out)
			} else {
				ra := retryAfter(resp.Header)
				lastErr = &APIError{StatusCode: resp.StatusCode,
					Body: strings.TrimSpace(string(data)), RetryAfter: ra}
				if retryStatus == nil || !retryStatus(resp.StatusCode) {
					return lastErr
				}
				if ra > 0 {
					next = ra
				}
			}
		}
		if attempt >= c.retries() {
			return lastErr
		}
		if err := sleep(ctx, next); err != nil {
			return fmt.Errorf("%w (last error: %v)", err, lastErr)
		}
		if wait *= 2; wait > c.maxRetryWait() {
			wait = c.maxRetryWait()
		}
	}
}

// Submit posts a campaign. Queue-full rejections (429) are retried with the
// server's Retry-After; drain rejections (503) are not — a draining daemon
// is going away, not flapping.
func (c *Client) Submit(ctx context.Context, req api.SubmitRequest) (*api.SubmitResponse, error) {
	body, err := json.Marshal(&req)
	if err != nil {
		return nil, err
	}
	var acc api.SubmitResponse
	if err := c.do(ctx, http.MethodPost, "/v1/campaigns", body, &acc,
		func(status int) bool { return status == http.StatusTooManyRequests }); err != nil {
		return nil, err
	}
	return &acc, nil
}

// Get fetches one job document.
func (c *Client) Get(ctx context.Context, id int) (*api.Job, error) {
	var job api.Job
	if err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/campaigns/%d", id), nil, &job, transient); err != nil {
		return nil, err
	}
	return &job, nil
}

// List fetches the job table (summaries elided; Get a job for the full
// record).
func (c *Client) List(ctx context.Context) (*api.JobList, error) {
	var list api.JobList
	if err := c.do(ctx, http.MethodGet, "/v1/campaigns", nil, &list, transient); err != nil {
		return nil, err
	}
	return &list, nil
}

// Cancel aborts a queued or running job. A finished job returns a 409
// *APIError (see IsConflict); the engine winds down asynchronously, so poll
// Get or WaitTerminal for the terminal status.
func (c *Client) Cancel(ctx context.Context, id int) (*api.CancelResponse, error) {
	var cr api.CancelResponse
	if err := c.do(ctx, http.MethodDelete, fmt.Sprintf("/v1/campaigns/%d", id), nil, &cr, transient); err != nil {
		return nil, err
	}
	return &cr, nil
}

// CacheStats fetches the shared result cache's counters. Enabled false
// means the daemon runs without a cache — a 200, not an error.
func (c *Client) CacheStats(ctx context.Context) (*api.CacheStats, error) {
	var st api.CacheStats
	if err := c.do(ctx, http.MethodGet, "/v1/cache/stats", nil, &st, transient); err != nil {
		return nil, err
	}
	return &st, nil
}

// ClearCache drops every cached result. 404 *APIError without a cache.
func (c *Client) ClearCache(ctx context.Context) (*api.ClearCacheResponse, error) {
	var cr api.ClearCacheResponse
	if err := c.do(ctx, http.MethodDelete, "/v1/cache", nil, &cr, transient); err != nil {
		return nil, err
	}
	return &cr, nil
}

// Metrics fetches the node's merged metric snapshot from GET /v1/metrics —
// the JSON twin of the Prometheus /metrics exposition. The fleet scrape loop
// calls this per worker per interval; a torn or truncated body surfaces as a
// decode error, never a partial snapshot.
func (c *Client) Metrics(ctx context.Context) (*metrics.Snapshot, error) {
	var snap metrics.Snapshot
	if err := c.do(ctx, http.MethodGet, "/v1/metrics", nil, &snap, transient); err != nil {
		return nil, err
	}
	return &snap, nil
}

// Fleet fetches a coordinator's fleet snapshot (the client's Base is the
// coordinator). 404 *APIError when the coordinator runs without the fleet
// plane (-fleetobs off).
func (c *Client) Fleet(ctx context.Context) (*api.FleetSnapshot, error) {
	var fs api.FleetSnapshot
	if err := c.do(ctx, http.MethodGet, "/v1/fleet", nil, &fs, transient); err != nil {
		return nil, err
	}
	return &fs, nil
}

// Health fetches /healthz ("ok" or "draining").
func (c *Client) Health(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{StatusCode: resp.StatusCode, Body: strings.TrimSpace(string(data))}
	}
	return strings.TrimSpace(string(data)), nil
}

// Ready probes /readyz once (no retries — readiness is a point-in-time
// verdict, and a prober that retries flattens the signal it exists to
// carry). forLease marks the probe as a shard-lease admission check;
// needCache additionally requires the node to run a shared result cache.
// A ready node returns nil; anything else is the *APIError the server sent
// (503 draining/saturated/cache-less), or the transport error.
func (c *Client) Ready(ctx context.Context, forLease, needCache bool) error {
	q := url.Values{}
	if forLease {
		q.Set("lease", "1")
	}
	if needCache {
		q.Set("need_cache", "1")
	}
	path := "/readyz"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return &APIError{StatusCode: resp.StatusCode,
			Body: strings.TrimSpace(string(data)), RetryAfter: retryAfter(resp.Header)}
	}
	return nil
}

// JoinFabric registers a worker URL with a fabric coordinator (the client's
// Base is the coordinator, not a dmafaultd node). Joins are upserts, retried
// like Submit on transient statuses — a coordinator mid-restart should not
// cost a worker its registration.
func (c *Client) JoinFabric(ctx context.Context, req api.JoinRequest) (*api.JoinResponse, error) {
	body, err := json.Marshal(&req)
	if err != nil {
		return nil, err
	}
	var jr api.JoinResponse
	if err := c.do(ctx, http.MethodPost, "/v1/fabric/join", body, &jr, transient); err != nil {
		return nil, err
	}
	return &jr, nil
}

// FabricWorkers fetches a coordinator's worker registry snapshot.
func (c *Client) FabricWorkers(ctx context.Context) (*api.WorkerList, error) {
	var wl api.WorkerList
	if err := c.do(ctx, http.MethodGet, "/v1/fabric/workers", nil, &wl, transient); err != nil {
		return nil, err
	}
	return &wl, nil
}

// WaitTerminal polls the job until it leaves the queued/running states and
// returns its final document. interval <= 0 means DefaultPollInterval.
func (c *Client) WaitTerminal(ctx context.Context, id int, interval time.Duration) (*api.Job, error) {
	if interval <= 0 {
		interval = DefaultPollInterval
	}
	for {
		job, err := c.Get(ctx, id)
		if err != nil {
			return nil, err
		}
		if job.Status.Terminal() {
			return job, nil
		}
		if err := sleep(ctx, interval); err != nil {
			return job, err
		}
	}
}
