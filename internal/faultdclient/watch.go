package faultdclient

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// SSE consumption for GET /v1/campaigns/{id}/events. The stream is decoded
// into Events — the raw JSON data is handed to the callback, not parsed
// into a union type, because the event vocabulary ("progress", "span",
// "result", "fuzz", "status") grows with the server and a typed client
// should not reject events it predates.

// Event is one decoded Server-Sent Event from a job's live stream.
type Event struct {
	// Type is the SSE event name: progress, span, result, fuzz, status.
	Type string
	// Data is the event's JSON payload, undecoded.
	Data json.RawMessage
}

// Watch subscribes to the job's event stream and calls fn for every event
// until the terminal "status" event (whose status string it returns), the
// stream ends (status "", nil error), fn returns an error (aborts the
// watch with that error), or ctx is cancelled. Watch does not retry: a
// broken stream is surfaced to the caller, who can re-subscribe — progress
// events are cumulative, so nothing is lost.
func (c *Client) Watch(ctx context.Context, id int, fn func(Event) error) (string, error) {
	url := fmt.Sprintf("%s/v1/campaigns/%d/events", c.Base, id)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", fmt.Errorf("watch job %d: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return "", &APIError{StatusCode: resp.StatusCode, Body: strings.TrimSpace(string(data))}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			if fn != nil {
				if err := fn(Event{Type: event, Data: json.RawMessage(data)}); err != nil {
					return "", err
				}
			}
			if event == "status" {
				var st struct {
					Status string `json:"status"`
				}
				_ = json.Unmarshal([]byte(data), &st)
				return st.Status, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return "", fmt.Errorf("watch job %d: %w", id, err)
	}
	return "", nil
}
