package faultdclient

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"dmafault/internal/faultd"
	"dmafault/internal/faultd/api"
	"dmafault/internal/resultstore"
)

// Round-trip against the real service: every typed call decodes what the
// real handlers emit, not a mock's idea of them.
func TestClientAgainstRealService(t *testing.T) {
	store, err := resultstore.Open(filepath.Join(t.TempDir(), "results.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := faultd.NewServer()
	srv.Workers = 2
	srv.Synchronous = true
	srv.Cache = store
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := New(ts.URL + "/") // trailing slash must be tolerated
	ctx := context.Background()

	if h, err := c.Health(ctx); err != nil || h != "ok" {
		t.Fatalf("health: %q, %v", h, err)
	}

	acc, err := c.Submit(ctx, api.SubmitRequest{Name: "rt", Preset: "ladder", N: 4, Seed: 2021})
	if err != nil {
		t.Fatal(err)
	}
	if acc.ID != 1 || acc.URL != "/v1/campaigns/1" || acc.ScenariosTotal != 4 {
		t.Fatalf("submit: %+v", acc)
	}

	job, err := c.WaitTerminal(ctx, acc.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if job.Status != api.StatusDone || job.Summary == nil || job.Summary.Scenarios != 4 {
		t.Fatalf("job: %+v", job)
	}
	if job.Timing == nil || job.Timing.Attempts != 4 || job.Timing.ExecuteSeconds < 0 {
		t.Fatalf("done job timing: %+v", job.Timing)
	}

	// The typed metrics accessor decodes the same merged snapshot /metrics
	// expounds as text; the request counter is necessarily nonzero by now.
	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Total("faultd_requests_total") == 0 {
		t.Fatalf("metrics snapshot missing request counter: %d families", len(snap.Families))
	}
	if snap.Total("faultd_campaigns_completed_total") != 1 {
		t.Fatalf("metrics snapshot missing campaign counter")
	}

	list, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].Name != "rt" || list.Jobs[0].Summary != nil {
		t.Fatalf("list: %+v", list)
	}

	// Watching a finished job replays its terminal state immediately.
	var types []string
	status, err := c.Watch(ctx, acc.ID, func(e Event) error {
		types = append(types, e.Type)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if status != string(api.StatusDone) {
		t.Fatalf("watch status %q", status)
	}
	if len(types) == 0 || types[len(types)-1] != "status" {
		t.Fatalf("watch events: %v", types)
	}

	// Cancelling a finished job is a 409 the caller detects with IsConflict.
	if _, err := c.Cancel(ctx, acc.ID); !IsConflict(err) {
		t.Fatalf("cancel finished job: %v", err)
	}

	st, err := c.CacheStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.Records != 4 || st.Stores != 4 {
		t.Fatalf("cache stats: %+v", st)
	}
	cr, err := c.ClearCache(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Cleared || cr.RecordsDropped != 4 {
		t.Fatalf("clear: %+v", cr)
	}
}

// Idempotent calls ride out gateway flaps: two 503s then success.
func TestIdempotentRetriesTransient(t *testing.T) {
	var attempts int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts <= 2 {
			http.Error(w, "flap", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"jobs":[]}`)
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.RetryWait = time.Millisecond
	list, err := c.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 || len(list.Jobs) != 0 {
		t.Fatalf("attempts=%d list=%+v", attempts, list)
	}
}

// Submit retries only queue-full (429): a 503 from a draining daemon
// surfaces on the first attempt.
func TestSubmitRetryPolicy(t *testing.T) {
	var attempts int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts == 1 {
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":1,"url":"/v1/campaigns/1","scenarios_total":4}`)
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.RetryWait = time.Millisecond
	acc, err := c.Submit(context.Background(), api.SubmitRequest{Preset: "ladder", N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 || acc.ID != 1 {
		t.Fatalf("attempts=%d acc=%+v", attempts, acc)
	}

	attempts = 0
	drain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer drain.Close()
	dc := New(drain.URL)
	dc.RetryWait = time.Millisecond
	_, err = dc.Submit(context.Background(), api.SubmitRequest{Preset: "ladder", N: 4})
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drain submit: %v", err)
	}
	if attempts != 1 {
		t.Fatalf("submit retried a 503 %d times", attempts-1)
	}
}

// Client errors never retry; the body comes back verbatim in the APIError.
func TestNoRetryOnClientError(t *testing.T) {
	var attempts int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		http.Error(w, "no job 99", http.StatusNotFound)
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.RetryWait = time.Millisecond
	_, err := c.Get(context.Background(), 99)
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != 404 || ae.Body != "no job 99" {
		t.Fatalf("err: %v", err)
	}
	if attempts != 1 {
		t.Fatalf("404 retried %d times", attempts-1)
	}
	if IsConflict(err) {
		t.Error("IsConflict matched a 404")
	}
	if IsConflict(errors.New("plain")) {
		t.Error("IsConflict matched a non-APIError")
	}
	if !IsConflict(&APIError{StatusCode: 409, Body: "done"}) {
		t.Error("IsConflict missed a 409")
	}
}

// A worker that answers 503 with Retry-After is telling the client exactly
// when to come back; the computed backoff must yield to the hint.
func TestRetryAfterHonored(t *testing.T) {
	var attempts int
	var gaps []time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		gaps = append(gaps, time.Now())
		if attempts == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "saturated", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, `{"jobs":[]}`)
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.RetryWait = time.Millisecond // hint must override this, not vice versa
	if _, err := c.List(context.Background()); err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	if wait := gaps[1].Sub(gaps[0]); wait < 900*time.Millisecond {
		t.Fatalf("retried after %v, Retry-After asked for 1s", wait)
	}
}

// A terminal transient failure surfaces the server's Retry-After so callers
// (the fabric's re-lease backoff) can schedule around it.
func TestRetryAfterSurfacedInError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3")
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retries = 0
	_, err := c.List(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err: %v", err)
	}
	if ae.RetryAfter != 3*time.Second {
		t.Fatalf("RetryAfter = %v, want 3s", ae.RetryAfter)
	}
}

// RFC 9110 §10.2.3 gives Retry-After two forms — delta-seconds and an
// HTTP-date — and both must surface identically in the APIError: as the
// duration left to wait. A proxy or chaos layer between client and server
// may rewrite one form into the other; the caller must not care.
func TestRetryAfterHTTPDateForm(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", time.Now().Add(5*time.Second).UTC().Format(http.TimeFormat))
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retries = -1
	_, err := c.List(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err: %v", err)
	}
	// HTTP-dates have whole-second resolution, so the measured wait is the
	// requested 5s minus up to a second of clock skew and handling time.
	if ae.RetryAfter < 3*time.Second || ae.RetryAfter > 5*time.Second {
		t.Fatalf("RetryAfter = %v, want ~5s from the HTTP-date form", ae.RetryAfter)
	}
}

// The delta-seconds form surfaces through the same path with the same
// semantics (TestRetryAfterSurfacedInError pins the exact value); here the
// two forms are checked against each other, plus the edge arms: a date in
// the past is "retry now", and garbage is ignored.
func TestRetryAfterFormsAgree(t *testing.T) {
	h := func(v string) http.Header {
		hdr := http.Header{}
		if v != "" {
			hdr.Set("Retry-After", v)
		}
		return hdr
	}
	if d := retryAfter(h("3")); d != 3*time.Second {
		t.Fatalf("delta form: %v, want 3s", d)
	}
	date := time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat)
	if d := retryAfter(h(date)); d <= 0 || d > 3*time.Second {
		t.Fatalf("date form: %v, want (0, 3s]", d)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if d := retryAfter(h(past)); d != 0 {
		t.Fatalf("past date: %v, want 0", d)
	}
	for _, bad := range []string{"", "soon", "-5"} {
		if d := retryAfter(h(bad)); d != 0 {
			t.Fatalf("retryAfter(%q) = %v, want 0", bad, d)
		}
	}
}

// Cancelling the context mid-backoff must abort the retry loop immediately,
// not after the computed wait expires.
func TestBackoffHonorsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "busy", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.RetryWait = time.Hour // the sleep the cancel has to cut short
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.List(ctx)
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context deadline", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancel took %v to cut the backoff short", elapsed)
	}
}

// jitter must stay within its documented [3/4·d, 5/4·d) envelope — below it
// retries hammer too fast, above it leases idle.
func TestJitterBounds(t *testing.T) {
	const d = 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		j := jitter(d)
		if j < 3*d/4 || j > 5*d/4 {
			t.Fatalf("jitter(%v) = %v, outside [%v, %v]", d, j, 3*d/4, 5*d/4)
		}
	}
	if jitter(0) != 0 {
		t.Fatal("jitter(0) != 0")
	}
}

// Ready mirrors the server's lease-aware /readyz verdicts through the typed
// client, Retry-After included.
func TestReadyLeaseAware(t *testing.T) {
	srv := faultd.NewServer()
	srv.Workers = 1
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := New(ts.URL)
	ctx := context.Background()

	if err := c.Ready(ctx, false, false); err != nil {
		t.Fatalf("plain ready: %v", err)
	}
	if err := c.Ready(ctx, true, false); err != nil {
		t.Fatalf("lease ready: %v", err)
	}
	// No cache on this node: a cache-requiring lease probe must refuse.
	err := c.Ready(ctx, true, true)
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cache-less lease probe: %v", err)
	}

	store, err2 := resultstore.Open(filepath.Join(t.TempDir(), "results.bin"))
	if err2 != nil {
		t.Fatal(err2)
	}
	defer store.Close()
	srv2 := faultd.NewServer()
	srv2.Workers = 1
	srv2.Cache = store
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if err := New(ts2.URL).Ready(ctx, true, true); err != nil {
		t.Fatalf("cache-backed lease probe: %v", err)
	}
}

// A torn /v1/metrics body — truncated mid-document by a proxy or chaos
// layer — must surface as a decode error, never as a partial snapshot.
func TestMetricsTornBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"families":[{"name":"faultd_requests_total","kind":"count`)
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retries = -1
	if snap, err := c.Metrics(context.Background()); err == nil {
		t.Fatalf("torn metrics body decoded: %+v", snap)
	}
}

// Metrics rides the idempotent retry discipline: a gateway flap is retried,
// and the eventual good body decodes.
func TestMetricsRetriesTransient(t *testing.T) {
	var attempts int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts == 1 {
			http.Error(w, "flap", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"families":[{"name":"faultd_requests_total","kind":"counter","samples":[{"value":7}]}]}`)
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.RetryWait = time.Millisecond
	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 || snap.Total("faultd_requests_total") != 7 {
		t.Fatalf("attempts=%d total=%v", attempts, snap.Total("faultd_requests_total"))
	}
}

// Fleet decodes a coordinator's typed snapshot; a coordinator without the
// fleet plane answers 404, surfaced as an *APIError.
func TestFleetTyped(t *testing.T) {
	body := `{"workers":[{"url":"http://w1","up":true,"leases":1,` +
		`"delivered_shards":2,"delivered_scenarios":8,` +
		`"phase_totals":{"queue_wait_seconds":0.1,"execute_seconds":3,"publish_seconds":0.01},` +
		`"ewma_shard_seconds":1.5,"ewma_scenarios_per_sec":2.5,"ready":true}],` +
		`"campaign":{"scenarios_total":16,"scenarios_done":8,"shards_total":4,"shards_done":2}}`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/fleet" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, body)
	}))
	defer ts.Close()

	fs, err := New(ts.URL).Fleet(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Workers) != 1 || fs.Workers[0].EWMAScenariosPerSec != 2.5 ||
		fs.Workers[0].PhaseTotals.Execute != 3 || !fs.Workers[0].Ready {
		t.Fatalf("fleet workers: %+v", fs.Workers)
	}
	if fs.Campaign == nil || fs.Campaign.ShardsDone != 2 {
		t.Fatalf("fleet campaign: %+v", fs.Campaign)
	}

	off := httptest.NewServer(http.HandlerFunc(http.NotFound))
	defer off.Close()
	_, err = New(off.URL).Fleet(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled fleet plane: %v", err)
	}
}
