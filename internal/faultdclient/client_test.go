package faultdclient

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"dmafault/internal/faultd"
	"dmafault/internal/faultd/api"
	"dmafault/internal/resultstore"
)

// Round-trip against the real service: every typed call decodes what the
// real handlers emit, not a mock's idea of them.
func TestClientAgainstRealService(t *testing.T) {
	store, err := resultstore.Open(filepath.Join(t.TempDir(), "results.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := faultd.NewServer()
	srv.Workers = 2
	srv.Synchronous = true
	srv.Cache = store
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := New(ts.URL + "/") // trailing slash must be tolerated
	ctx := context.Background()

	if h, err := c.Health(ctx); err != nil || h != "ok" {
		t.Fatalf("health: %q, %v", h, err)
	}

	acc, err := c.Submit(ctx, api.SubmitRequest{Name: "rt", Preset: "ladder", N: 4, Seed: 2021})
	if err != nil {
		t.Fatal(err)
	}
	if acc.ID != 1 || acc.URL != "/v1/campaigns/1" || acc.ScenariosTotal != 4 {
		t.Fatalf("submit: %+v", acc)
	}

	job, err := c.WaitTerminal(ctx, acc.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if job.Status != api.StatusDone || job.Summary == nil || job.Summary.Scenarios != 4 {
		t.Fatalf("job: %+v", job)
	}

	list, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].Name != "rt" || list.Jobs[0].Summary != nil {
		t.Fatalf("list: %+v", list)
	}

	// Watching a finished job replays its terminal state immediately.
	var types []string
	status, err := c.Watch(ctx, acc.ID, func(e Event) error {
		types = append(types, e.Type)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if status != string(api.StatusDone) {
		t.Fatalf("watch status %q", status)
	}
	if len(types) == 0 || types[len(types)-1] != "status" {
		t.Fatalf("watch events: %v", types)
	}

	// Cancelling a finished job is a 409 the caller detects with IsConflict.
	if _, err := c.Cancel(ctx, acc.ID); !IsConflict(err) {
		t.Fatalf("cancel finished job: %v", err)
	}

	st, err := c.CacheStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.Records != 4 || st.Stores != 4 {
		t.Fatalf("cache stats: %+v", st)
	}
	cr, err := c.ClearCache(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Cleared || cr.RecordsDropped != 4 {
		t.Fatalf("clear: %+v", cr)
	}
}

// Idempotent calls ride out gateway flaps: two 503s then success.
func TestIdempotentRetriesTransient(t *testing.T) {
	var attempts int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts <= 2 {
			http.Error(w, "flap", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"jobs":[]}`)
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.RetryWait = time.Millisecond
	list, err := c.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 || len(list.Jobs) != 0 {
		t.Fatalf("attempts=%d list=%+v", attempts, list)
	}
}

// Submit retries only queue-full (429): a 503 from a draining daemon
// surfaces on the first attempt.
func TestSubmitRetryPolicy(t *testing.T) {
	var attempts int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts == 1 {
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":1,"url":"/v1/campaigns/1","scenarios_total":4}`)
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.RetryWait = time.Millisecond
	acc, err := c.Submit(context.Background(), api.SubmitRequest{Preset: "ladder", N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 || acc.ID != 1 {
		t.Fatalf("attempts=%d acc=%+v", attempts, acc)
	}

	attempts = 0
	drain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer drain.Close()
	dc := New(drain.URL)
	dc.RetryWait = time.Millisecond
	_, err = dc.Submit(context.Background(), api.SubmitRequest{Preset: "ladder", N: 4})
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drain submit: %v", err)
	}
	if attempts != 1 {
		t.Fatalf("submit retried a 503 %d times", attempts-1)
	}
}

// Client errors never retry; the body comes back verbatim in the APIError.
func TestNoRetryOnClientError(t *testing.T) {
	var attempts int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		http.Error(w, "no job 99", http.StatusNotFound)
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.RetryWait = time.Millisecond
	_, err := c.Get(context.Background(), 99)
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != 404 || ae.Body != "no job 99" {
		t.Fatalf("err: %v", err)
	}
	if attempts != 1 {
		t.Fatalf("404 retried %d times", attempts-1)
	}
	if IsConflict(err) {
		t.Error("IsConflict matched a 404")
	}
	if IsConflict(errors.New("plain")) {
		t.Error("IsConflict matched a non-APIError")
	}
	if !IsConflict(&APIError{StatusCode: 409, Body: "done"}) {
		t.Error("IsConflict missed a 409")
	}
}
