package kexec

import (
	"encoding/binary"
	"fmt"

	"dmafault/internal/layout"
)

// ChainAddresses are the runtime addresses a privilege-escalation ROP chain
// needs. An attacker obtains them by scanning an identical kernel build
// offline for gadget offsets (ROPgadget, §6) and adding the KASLR text base
// recovered per §2.4; tests may fill them from ground truth.
type ChainAddresses struct {
	PopRDI      layout.Addr
	PrepareCred layout.Addr
	MovRDIRAX   layout.Addr
	CommitCreds layout.Addr
	Halt        layout.Addr
}

// ResolveChainAddresses computes the chain addresses from a text base and
// the build's gadget/symbol offsets — the attacker-side computation.
func ResolveChainAddresses(textBase layout.Addr, offsets BuildOffsets) ChainAddresses {
	return ChainAddresses{
		PopRDI:      textBase + layout.Addr(offsets.PopRDI),
		PrepareCred: textBase + layout.Addr(offsets.PrepareCred),
		MovRDIRAX:   textBase + layout.Addr(offsets.MovRDIRAX),
		CommitCreds: textBase + layout.Addr(offsets.CommitCreds),
		Halt:        textBase + layout.Addr(offsets.Halt),
	}
}

// BuildOffsets are the link-time offsets of the gadgets and privileged
// primitives in a kernel build: what an attacker extracts offline from an
// identical image.
type BuildOffsets struct {
	Pivot, PivotImm          uint64
	PopRDI, MovRDIRAX, Halt  uint64
	PrepareCred, CommitCreds uint64
}

// ExtractBuildOffsets performs the offline analysis: scan the image for the
// needed gadgets and read the primitives' offsets from the build's symbol
// table.
func ExtractBuildOffsets(t *Text, symbols *layout.SymbolTable) (BuildOffsets, error) {
	var o BuildOffsets
	g, ok := t.FindGadget(GadgetPivot)
	if !ok {
		return o, fmt.Errorf("kexec: build has no pivot gadget")
	}
	o.Pivot, o.PivotImm = g.Offset, uint64(g.Imm)
	if g, ok = t.FindGadget(GadgetPopRDI); !ok {
		return o, fmt.Errorf("kexec: build has no pop rdi gadget")
	}
	o.PopRDI = g.Offset
	if g, ok = t.FindGadget(GadgetMovRDIRAX); !ok {
		return o, fmt.Errorf("kexec: build has no mov rdi,rax gadget")
	}
	o.MovRDIRAX = g.Offset
	if g, ok = t.FindGadget(GadgetHalt); !ok {
		return o, fmt.Errorf("kexec: build has no hlt terminator")
	}
	o.Halt = g.Offset
	var err error
	if o.PrepareCred, err = symbols.Offset("prepare_kernel_cred"); err != nil {
		return o, err
	}
	if o.CommitCreds, err = symbols.Offset("commit_creds"); err != nil {
		return o, err
	}
	return o, nil
}

// EscalationChain builds the poisoned ROP stack that escalates privileges:
//
//	pop rdi; ret            ← first return target after the pivot
//	0                       → %rdi = NULL
//	prepare_kernel_cred     → %rax = root cred
//	mov rdi, rax; ret       → %rdi = root cred
//	commit_creds            → escalate
//	hlt                     → clean termination
func EscalationChain(a ChainAddresses) []uint64 {
	return []uint64{
		uint64(a.PopRDI),
		0,
		uint64(a.PrepareCred),
		uint64(a.MovRDIRAX),
		uint64(a.CommitCreds),
		uint64(a.Halt),
	}
}

// ChainBytes serializes a chain for writing into a data buffer (little
// endian, as the CPU pops it).
func ChainBytes(words []uint64) []byte {
	out := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(out[i*8:], w)
	}
	return out
}

// EscalationChainBytes is EscalationChain followed by ChainBytes.
func EscalationChainBytes(a ChainAddresses) []byte {
	return ChainBytes(EscalationChain(a))
}
