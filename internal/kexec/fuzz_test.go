package kexec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dmafault/internal/layout"
)

// Property: random garbage never escalates. Whatever bytes an attacker (or
// corruption) points a callback at — random data-page addresses, random text
// offsets, random ROP "chains" — privilege escalation must only occur when
// the chain actually routes a prepare_kernel_cred token into commit_creds.
func TestPropertyRandomCallbacksNeverEscalate(t *testing.T) {
	k, m := newKernel(t, 77)
	buf, err := m.Slab.Kmalloc(0, 4096, "fuzz")
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, off uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random callback target: anywhere in text or in the data buffer.
		var target layout.Addr
		if seed%2 == 0 {
			target = m.Layout().TextBase + layout.Addr(rng.Intn(TextSize))
		} else {
			target = buf + layout.Addr(off%4000)
		}
		// Random "chain" in the buffer.
		junk := make([]byte, 256)
		rng.Read(junk)
		if err := m.Write(buf, junk); err != nil {
			return false
		}
		before := k.Escalations
		_ = k.InvokeCallback(target, uint64(buf)) // errors are fine
		return k.Escalations == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: random ROP chains launched through the REAL pivot also never
// escalate unless they happen to encode the exact privileged sequence — the
// probability of drawing commit_creds' 8-byte address AND a valid token flow
// from a PRNG is negligible, so any escalation here is a soundness bug.
func TestPropertyRandomChainsThroughPivotNeverEscalate(t *testing.T) {
	k, m := newKernel(t, 78)
	buf, err := m.Slab.Kmalloc(0, 4096, "fuzz")
	if err != nil {
		t.Fatal(err)
	}
	offsets, err := ExtractBuildOffsets(k.Text(), m.Layout().Symbols())
	if err != nil {
		t.Fatal(err)
	}
	pivot := m.Layout().TextBase + layout.Addr(offsets.Pivot)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		chain := make([]uint64, 8)
		for i := range chain {
			switch rng.Intn(3) {
			case 0: // random word
				chain[i] = rng.Uint64()
			case 1: // random text address (plausible gadget)
				chain[i] = uint64(m.Layout().TextBase) + uint64(rng.Intn(TextSize))
			case 2: // random data address
				chain[i] = uint64(buf) + uint64(rng.Intn(4000))
			}
		}
		if err := m.Write(buf+PivotDisplacement, ChainBytes(chain)); err != nil {
			return false
		}
		before := k.Escalations
		_ = k.InvokeCallback(pivot, uint64(buf))
		return k.Escalations == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// The well-formed chain DOES escalate — the positive control for the two
// properties above.
func TestWellFormedChainIsThePositiveControl(t *testing.T) {
	k, m := newKernel(t, 79)
	buf, _ := m.Slab.Kmalloc(0, 4096, "ctl")
	offsets, _ := ExtractBuildOffsets(k.Text(), m.Layout().Symbols())
	addrs := ResolveChainAddresses(m.Layout().TextBase, offsets)
	if err := m.Write(buf+PivotDisplacement, EscalationChainBytes(addrs)); err != nil {
		t.Fatal(err)
	}
	pivot := m.Layout().TextBase + layout.Addr(offsets.Pivot)
	if err := k.InvokeCallback(pivot, uint64(buf)); err != nil {
		t.Fatal(err)
	}
	if k.Escalations != 1 {
		t.Fatalf("Escalations = %d", k.Escalations)
	}
}
