package kexec

import (
	"errors"
	"testing"

	"dmafault/internal/layout"
	"dmafault/internal/mem"
)

func newKernel(t *testing.T, seed int64) (*Kernel, *mem.Memory) {
	t.Helper()
	l := layout.New(layout.Config{KASLR: true, Seed: seed, PhysBytes: 32 << 20})
	m, err := mem.New(mem.Config{Layout: l, CPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	return NewKernel(m, seed), m
}

func TestTextDeterministicPerSeed(t *testing.T) {
	a := NewText(layout.TextStart, 1)
	b := NewText(layout.TextStart, 1)
	c := NewText(layout.TextStart, 2)
	if a.fetch(layout.TextStart+12345) != b.fetch(layout.TextStart+12345) {
		t.Error("same seed, different image")
	}
	same := true
	for off := layout.Addr(0); off < 4096; off++ {
		if a.fetch(layout.TextStart+off) != c.fetch(layout.TextStart+off) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical image prefix")
	}
}

func TestScannerFindsPlantedGadgets(t *testing.T) {
	tx := NewText(layout.TextStart, 7)
	wantKinds := []GadgetKind{GadgetPivot, GadgetPopRDI, GadgetPopRAX, GadgetPopRSI, GadgetMovRDIRAX, GadgetHalt}
	for _, k := range wantKinds {
		if _, ok := tx.FindGadget(k); !ok {
			t.Errorf("gadget %v not found", k)
		}
	}
	// Exactly one pivot (filler is scrubbed of accidental pivots).
	pivots := 0
	for _, g := range tx.Scan() {
		if g.Kind == GadgetPivot {
			pivots++
			if g.Offset != offPivot || g.Imm != PivotDisplacement {
				t.Errorf("pivot at %#x imm %#x", g.Offset, g.Imm)
			}
		}
	}
	if pivots != 1 {
		t.Errorf("found %d pivot gadgets, want 1", pivots)
	}
}

func TestBenignCallbackInvocation(t *testing.T) {
	k, _ := newKernel(t, 3)
	ran := false
	k.RegisterSymbol("sock_wfree", func(cpu *CPU) error {
		ran = true
		if cpu.RDI != 0xabcd {
			t.Errorf("arg = %#x", cpu.RDI)
		}
		return nil
	})
	fn, err := k.FuncAddr("sock_wfree")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.InvokeCallback(fn, 0xabcd); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("callback did not run")
	}
	if k.Invocations["sock_wfree"] != 1 {
		t.Errorf("Invocations = %v", k.Invocations)
	}
}

func TestNXBlocksDirectDataExecution(t *testing.T) {
	// §2.4: pointing a callback straight at a data page faults — code
	// injection needs ROP/JOP.
	k, m := newKernel(t, 3)
	buf, _ := m.Slab.Kmalloc(0, 512, "payload")
	err := k.InvokeCallback(buf, 0)
	if !errors.Is(err, ErrNX) {
		t.Fatalf("err = %v, want ErrNX", err)
	}
	if k.Escalations != 0 {
		t.Error("escalated through NX")
	}
}

func TestJOPPivotROPChainEscalates(t *testing.T) {
	// The full §6 mechanism: the kernel "calls" the corrupted callback with
	// %rdi = address of the containing struct; the callback points at the
	// pivot gadget; the ROP chain lies PivotDisplacement bytes into the
	// struct; the chain escalates privileges despite NX.
	k, m := newKernel(t, 9)
	structAddr, err := m.Slab.Kmalloc(0, 256, "ubuf_info")
	if err != nil {
		t.Fatal(err)
	}
	offsets, err := ExtractBuildOffsets(k.Text(), m.Layout().Symbols())
	if err != nil {
		t.Fatal(err)
	}
	addrs := ResolveChainAddresses(m.Layout().TextBase, offsets)
	chain := EscalationChainBytes(addrs)
	if err := m.Write(structAddr+PivotDisplacement, chain); err != nil {
		t.Fatal(err)
	}
	pivot := m.Layout().TextBase + layout.Addr(offsets.Pivot)
	if err := k.InvokeCallback(pivot, uint64(structAddr)); err != nil {
		t.Fatalf("exploit chain failed: %v", err)
	}
	if k.Escalations != 1 {
		t.Fatalf("Escalations = %d", k.Escalations)
	}
}

func TestChainFailsWithWrongCred(t *testing.T) {
	// A chain that calls commit_creds without prepare_kernel_cred's token
	// must not escalate.
	k, m := newKernel(t, 9)
	structAddr, _ := m.Slab.Kmalloc(0, 256, "ubuf_info")
	offsets, _ := ExtractBuildOffsets(k.Text(), m.Layout().Symbols())
	a := ResolveChainAddresses(m.Layout().TextBase, offsets)
	chain := ChainBytes([]uint64{
		uint64(a.PopRDI), 0x1234, // bogus cred
		uint64(a.CommitCreds),
		uint64(a.Halt),
	})
	if err := m.Write(structAddr+PivotDisplacement, chain); err != nil {
		t.Fatal(err)
	}
	pivot := m.Layout().TextBase + layout.Addr(offsets.Pivot)
	if err := k.InvokeCallback(pivot, uint64(structAddr)); err == nil {
		t.Error("bogus cred accepted")
	}
	if k.Escalations != 0 {
		t.Error("escalated with bogus cred")
	}
}

func TestCETBlocksROPChain(t *testing.T) {
	// §8: shadow-stack returns kill the chain (its returns were never calls).
	k, m := newKernel(t, 9)
	k.CETEnabled = true
	structAddr, _ := m.Slab.Kmalloc(0, 256, "ubuf_info")
	offsets, _ := ExtractBuildOffsets(k.Text(), m.Layout().Symbols())
	addrs := ResolveChainAddresses(m.Layout().TextBase, offsets)
	if err := m.Write(structAddr+PivotDisplacement, EscalationChainBytes(addrs)); err != nil {
		t.Fatal(err)
	}
	pivot := m.Layout().TextBase + layout.Addr(offsets.Pivot)
	err := k.InvokeCallback(pivot, uint64(structAddr))
	if !errors.Is(err, ErrCET) {
		t.Fatalf("err = %v, want ErrCET", err)
	}
	if k.Escalations != 0 {
		t.Error("escalated under CET")
	}
	// Benign native callbacks still work under CET.
	k.RegisterSymbol("benign", func(cpu *CPU) error { return nil })
	fn, _ := k.FuncAddr("benign")
	if err := k.InvokeCallback(fn, 0); err != nil {
		t.Errorf("benign callback under CET: %v", err)
	}
}

func TestRunawayAndInvalidOpcode(t *testing.T) {
	k, m := newKernel(t, 4)
	// Point the callback at raw filler: eventually an invalid opcode, a
	// fault, or the step limit — never an escalation.
	err := k.InvokeCallback(m.Layout().TextBase+0x1000, 0)
	if err == nil {
		t.Skip("filler happened to execute to completion (acceptable)")
	}
	if k.Escalations != 0 {
		t.Error("filler execution escalated")
	}
}

func TestChainPopsGoThroughSimulatedMemory(t *testing.T) {
	// Stack pops must fail cleanly when the pivot target is unmapped.
	k, m := newKernel(t, 9)
	offsets, _ := ExtractBuildOffsets(k.Text(), m.Layout().Symbols())
	pivot := m.Layout().TextBase + layout.Addr(offsets.Pivot)
	err := k.InvokeCallback(pivot, uint64(layout.VmallocStart))
	if err == nil {
		t.Error("pivot into unmapped memory succeeded")
	}
}

func TestFuncAddrErrors(t *testing.T) {
	k, _ := newKernel(t, 3)
	if _, err := k.FuncAddr("never_registered"); err == nil {
		t.Error("unknown function resolved")
	}
	if _, err := k.GadgetAddr(GadgetPivot); err != nil {
		t.Errorf("GadgetAddr(pivot): %v", err)
	}
}

func TestGadgetKindStrings(t *testing.T) {
	kinds := []GadgetKind{GadgetPivot, GadgetPopRDI, GadgetPopRAX, GadgetPopRSI, GadgetMovRDIRAX, GadgetHalt, GadgetKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", k)
		}
	}
}

func TestExtractBuildOffsetsMatchesPlacement(t *testing.T) {
	tx := NewText(layout.TextStart, 1)
	l := layout.New(layout.Config{PhysBytes: 16 << 20})
	o, err := ExtractBuildOffsets(tx, l.Symbols())
	if err != nil {
		t.Fatal(err)
	}
	if o.Pivot != offPivot || o.PivotImm != PivotDisplacement {
		t.Errorf("pivot offsets: %+v", o)
	}
	wantPC, _ := l.Symbols().Offset("prepare_kernel_cred")
	if o.PrepareCred != wantPC {
		t.Errorf("PrepareCred = %#x, want %#x", o.PrepareCred, wantPC)
	}
}
