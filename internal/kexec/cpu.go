package kexec

import (
	"errors"
	"fmt"

	"dmafault/internal/layout"
	"dmafault/internal/mem"
)

// Execution faults.
var (
	// ErrNX is raised when the CPU fetches code from a non-text address:
	// the NX-bit / DEP policy of §2.4. Plain code injection into a data
	// page dies here; that is why the attacks need ROP/JOP.
	ErrNX = errors.New("kexec: NX fault: instruction fetch from data page")
	// ErrCET is raised by the shadow-stack extension (§8, Intel CET) when a
	// return address does not match the shadow stack.
	ErrCET = errors.New("kexec: CET fault: shadow stack mismatch on return")
	// ErrInvalidOpcode is raised on undecodable bytes.
	ErrInvalidOpcode = errors.New("kexec: invalid opcode")
	// ErrRuntaway bounds interpretation.
	ErrRunaway = errors.New("kexec: runaway execution (step limit)")
)

// KernelFunc is a native kernel function callable through a pointer: the
// benign callback targets (sock_wfree, a ubuf_info callback, ...) and the
// privileged primitives ROP payloads chain to. Args arrive in %rdi/%rsi,
// results in %rax.
type KernelFunc func(cpu *CPU) error

// Kernel owns the text image, the registered native functions, and the
// privilege state an attack tries to corrupt.
type Kernel struct {
	mem   *mem.Memory
	text  *Text
	funcs map[layout.Addr]namedFunc

	// credToken is the opaque value prepare_kernel_cred returns; passing it
	// to commit_creds escalates.
	credToken uint64
	// Escalations counts successful privilege escalations (code injection
	// success criterion for every attack in the paper).
	Escalations int
	// CETEnabled turns on the shadow-stack mitigation (§8).
	CETEnabled bool

	// Invocations counts benign native callback invocations, letting tests
	// tell "callback ran normally" from "callback was hijacked".
	Invocations map[string]int

	// OnDispatch, if set, observes every callback invocation (tracing).
	OnDispatch func(fn layout.Addr, arg uint64)
	// OnEscalation, if set, observes successful privilege escalations.
	OnEscalation func()
}

type namedFunc struct {
	name string
	fn   KernelFunc
}

// StepLimit bounds one InvokeCallback interpretation.
const StepLimit = 4096

// NewKernel builds the kernel execution model over memory, placing the text
// image at the layout's randomized text base and registering the privileged
// primitives at their symbol-table offsets.
func NewKernel(m *mem.Memory, seed int64) *Kernel {
	l := m.Layout()
	k := &Kernel{
		mem:         m,
		text:        NewText(l.TextBase, seed),
		funcs:       make(map[layout.Addr]namedFunc),
		credToken:   0x637265645f746f6b, // "cred_tok"
		Invocations: make(map[string]int),
	}
	k.RegisterSymbol("prepare_kernel_cred", func(cpu *CPU) error {
		cpu.RAX = k.credToken
		return nil
	})
	k.RegisterSymbol("commit_creds", func(cpu *CPU) error {
		if cpu.RDI == k.credToken {
			k.Escalations++
			if k.OnEscalation != nil {
				k.OnEscalation()
			}
			return nil
		}
		return fmt.Errorf("kexec: commit_creds with bad cred %#x", cpu.RDI)
	})
	return k
}

// Text returns the kernel text image.
func (k *Kernel) Text() *Text { return k.text }

// Mem returns the memory the CPU executes against.
func (k *Kernel) Mem() *mem.Memory { return k.mem }

// RegisterSymbol binds a native function to an existing kernel symbol.
func (k *Kernel) RegisterSymbol(name string, fn KernelFunc) {
	addr, err := k.mem.Layout().SymbolKVA(name)
	if err != nil {
		// Register the symbol at a fresh text offset past the gadget area.
		off := uint64(0x800000 + len(k.funcs)*0x40)
		k.mem.Layout().Symbols().Add(name, off)
		addr = k.text.base + layout.Addr(off)
	}
	k.funcs[addr] = namedFunc{name: name, fn: fn}
}

// FuncAddr returns the runtime address of a registered native function.
func (k *Kernel) FuncAddr(name string) (layout.Addr, error) {
	for a, nf := range k.funcs {
		if nf.name == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("kexec: function %q not registered", name)
}

// GadgetAddr returns the runtime address of the first gadget of a kind.
func (k *Kernel) GadgetAddr(kind GadgetKind) (layout.Addr, error) {
	g, ok := k.text.FindGadget(kind)
	if !ok {
		return 0, fmt.Errorf("kexec: no %v gadget in image", kind)
	}
	return k.text.base + layout.Addr(g.Offset), nil
}

// CPU is the architectural state one callback invocation runs with.
type CPU struct {
	RIP, RSP    layout.Addr
	RDI, RSI    uint64
	RAX         uint64
	shadowStack []layout.Addr
	kernel      *Kernel
	steps       int
}

// InvokeCallback simulates the kernel calling a function pointer with one
// pointer argument in %rdi — e.g. invoking skb_shared_info->destructor_arg's
// ubuf_info callback when an sk_buff is released (Fig. 4 step d).
//
// Dispatch rules, in order:
//  1. fn is a registered native kernel function → it runs natively (the
//     benign case, or a ROP chain entry reaching a privileged primitive);
//  2. fn lies in kernel text → the interpreter runs from there (gadgets);
//  3. anything else → ErrNX. The device cannot simply point the callback at
//     its payload; it must pivot through text gadgets.
func (k *Kernel) InvokeCallback(fn layout.Addr, arg uint64) error {
	if k.OnDispatch != nil {
		k.OnDispatch(fn, arg)
	}
	cpu := &CPU{RIP: fn, RDI: arg, kernel: k}
	return cpu.run()
}

func (c *CPU) run() error {
	k := c.kernel
	for {
		if c.steps++; c.steps > StepLimit {
			return ErrRunaway
		}
		if nf, ok := k.funcs[c.RIP]; ok {
			k.Invocations[nf.name]++
			if err := nf.fn(c); err != nil {
				return err
			}
			// Native functions end in ret.
			if done, err := c.ret(); done || err != nil {
				return err
			}
			continue
		}
		if !k.text.Contains(c.RIP) {
			return fmt.Errorf("%w (RIP %#x)", ErrNX, uint64(c.RIP))
		}
		op := k.text.fetch(c.RIP)
		switch op {
		case opRet:
			if done, err := c.ret(); done || err != nil {
				return err
			}
		case opHalt:
			return nil
		case opNop:
			c.RIP++
		case opPopRDI:
			v, err := c.pop()
			if err != nil {
				return err
			}
			c.RDI = uint64(v)
			c.RIP++
		case opPopRSI:
			v, err := c.pop()
			if err != nil {
				return err
			}
			c.RSI = uint64(v)
			c.RIP++
		case opPopRAX:
			v, err := c.pop()
			if err != nil {
				return err
			}
			c.RAX = uint64(v)
			c.RIP++
		case opMovRDIRAX:
			c.RDI = c.RAX
			c.RIP++
		case opLeaPfx0:
			if !k.text.Contains(c.RIP+3) ||
				k.text.fetch(c.RIP+1) != opLeaPfx1 || k.text.fetch(c.RIP+2) != opLeaPfx2 {
				return fmt.Errorf("%w at %#x", ErrInvalidOpcode, uint64(c.RIP))
			}
			imm := k.text.fetch(c.RIP + 3)
			// The JOP pivot: %rsp = %rdi + imm8. From here on, control flow
			// is whatever the (attacker-controlled) memory at %rdi says.
			c.RSP = layout.Addr(c.RDI) + layout.Addr(imm)
			c.RIP += 4
		default:
			return fmt.Errorf("%w %#x at %#x", ErrInvalidOpcode, op, uint64(c.RIP))
		}
	}
}

// pop loads the word at %rsp through simulated memory and advances the stack.
func (c *CPU) pop() (layout.Addr, error) {
	v, err := c.kernel.mem.ReadU64(c.RSP)
	if err != nil {
		return 0, fmt.Errorf("kexec: stack pop at %#x: %w", uint64(c.RSP), err)
	}
	c.RSP += 8
	return layout.Addr(v), nil
}

// ret pops a return address and transfers to it. With no stack (RSP zero)
// the invocation completes: the kernel called a leaf callback and it
// returned. With CET enabled, a return address that was never pushed by a
// matching call faults — which kills ROP chains, whose "returns" were never
// calls.
func (c *CPU) ret() (done bool, err error) {
	if c.RSP == 0 {
		return true, nil
	}
	target, err := c.pop()
	if err != nil {
		return false, err
	}
	if c.kernel.CETEnabled {
		// The shadow stack has no record of a call matching this return.
		if len(c.shadowStack) == 0 || c.shadowStack[len(c.shadowStack)-1] != target {
			return false, ErrCET
		}
		c.shadowStack = c.shadowStack[:len(c.shadowStack)-1]
	}
	c.RIP = target
	return false, nil
}
