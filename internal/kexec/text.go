// Package kexec models kernel code execution on the victim CPU: the kernel
// text image, the NX-bit policy (§2.4: code never executes from data pages),
// callback dispatch, and the ROP/JOP machinery that DMA code-injection
// attacks use to subvert NX.
//
// The text image uses a small fixed-width-free byte encoding with x86-64
// flavored opcodes, rich enough to express the gadgets the paper's exploit
// needs — in particular the JOP stack pivot "%rsp = %rdi + const" located
// with the ROPgadget tool in §6 — and for a scanner to find them the way
// ROPgadget does: by scanning backward from return instructions.
//
// Execution is interpretation: the CPU fetches from the text image when RIP
// is in the text region, faults with ErrNX anywhere else, and performs stack
// pops through simulated memory, so a poisoned ROP stack on a DMA-writable
// data page behaves exactly as it would on hardware.
package kexec

import (
	"math/rand"

	"dmafault/internal/layout"
)

// Opcode bytes of the simulated ISA (chosen to match their x86-64 cousins
// where one exists).
const (
	opRet       = 0xc3 // ret
	opPopRDI    = 0x5f // pop %rdi
	opPopRSI    = 0x5e // pop %rsi
	opPopRAX    = 0x58 // pop %rax
	opMovRDIRAX = 0x90 // mov %rdi, %rax (one-byte stand-in)
	opLeaPfx0   = 0x48 // lea %rsp, [%rdi + imm8]  (3-byte: 48 8d 67 imm8)
	opLeaPfx1   = 0x8d
	opLeaPfx2   = 0x67
	opNop       = 0x66 // filler
	opHalt      = 0xf4 // hlt: clean chain terminator
)

// TextSize is the size of the simulated kernel text image (16 MiB).
const TextSize = 16 << 20

// gadget placement offsets inside the image. They sit inside the region the
// symbol table calls pivot_gadget_area so that leaked-symbol arithmetic can
// address them, but the scanner finds them with no symbol knowledge at all.
const (
	offPivot     = 0x7f0040 // 48 8d 67 imm8 c3 : lea rsp,[rdi+imm8]; ret
	offPopRDI    = 0x7f0100 // 5f c3
	offPopRAX    = 0x7f0140 // 58 c3
	offPopRSI    = 0x7f0180 // 5e c3
	offMovRDIRAX = 0x7f01c0 // 90 c3
	offHalt      = 0x7f0200 // f4

	// PivotDisplacement is the imm8 of the planted pivot gadget: the kernel
	// passes the address of the corrupted struct in %rdi, and the ROP chain
	// starts PivotDisplacement bytes past it.
	PivotDisplacement = 0x10
)

// Text is the kernel's executable image plus its base address.
type Text struct {
	base  layout.Addr
	bytes []byte
}

// NewText synthesizes a kernel text image: deterministic pseudo-random
// "instructions" with the exploit-relevant gadgets planted at fixed offsets
// (real kernels likewise contain such gadgets at build-determined offsets).
func NewText(base layout.Addr, seed int64) *Text {
	t := &Text{base: base, bytes: make([]byte, TextSize)}
	rng := rand.New(rand.NewSource(seed))
	rng.Read(t.bytes)
	// Keep accidental pivots out of the filler so gadget discovery is
	// deterministic: break up any 48 8d 67 run.
	for i := 0; i+2 < len(t.bytes); i++ {
		if t.bytes[i] == opLeaPfx0 && t.bytes[i+1] == opLeaPfx1 && t.bytes[i+2] == opLeaPfx2 {
			t.bytes[i+2] = opNop
		}
	}
	plant := func(off int, bs ...byte) { copy(t.bytes[off:], bs) }
	plant(offPivot, opLeaPfx0, opLeaPfx1, opLeaPfx2, PivotDisplacement, opRet)
	plant(offPopRDI, opPopRDI, opRet)
	plant(offPopRAX, opPopRAX, opRet)
	plant(offPopRSI, opPopRSI, opRet)
	plant(offMovRDIRAX, opMovRDIRAX, opRet)
	plant(offHalt, opHalt)
	return t
}

// Base returns the (KASLR-randomized) load address of the image.
func (t *Text) Base() layout.Addr { return t.base }

// Size returns the image size in bytes.
func (t *Text) Size() uint64 { return uint64(len(t.bytes)) }

// Contains reports whether the address falls inside the image.
func (t *Text) Contains(a layout.Addr) bool {
	return a >= t.base && a < t.base+layout.Addr(len(t.bytes))
}

// fetch returns the byte at the address (caller checked Contains).
func (t *Text) fetch(a layout.Addr) byte { return t.bytes[a-t.base] }

// Gadget is one scanner finding.
type Gadget struct {
	Offset uint64 // offset in the image; runtime address = base + offset
	Kind   GadgetKind
	Imm    byte // displacement for pivot gadgets
}

// GadgetKind classifies a found gadget.
type GadgetKind int

const (
	GadgetPivot GadgetKind = iota // lea %rsp,[%rdi+imm8]; ret
	GadgetPopRDI
	GadgetPopRAX
	GadgetPopRSI
	GadgetMovRDIRAX
	GadgetHalt
)

// String names the gadget in disassembly style.
func (k GadgetKind) String() string {
	switch k {
	case GadgetPivot:
		return "lea rsp,[rdi+imm]; ret"
	case GadgetPopRDI:
		return "pop rdi; ret"
	case GadgetPopRAX:
		return "pop rax; ret"
	case GadgetPopRSI:
		return "pop rsi; ret"
	case GadgetMovRDIRAX:
		return "mov rdi, rax; ret"
	case GadgetHalt:
		return "hlt"
	default:
		return "unknown"
	}
}

// Scan is the ROPgadget-equivalent: it walks the image looking for short
// instruction sequences that end in a return (plus hlt terminators), the way
// §6 located the JOP gadget "%rsp = %rdi + const".
func (t *Text) Scan() []Gadget {
	var out []Gadget
	for i := 0; i < len(t.bytes); i++ {
		switch t.bytes[i] {
		case opRet:
			// Look backward for a recognized sequence ending here.
			if i >= 4 && t.bytes[i-4] == opLeaPfx0 && t.bytes[i-3] == opLeaPfx1 && t.bytes[i-2] == opLeaPfx2 {
				out = append(out, Gadget{Offset: uint64(i - 4), Kind: GadgetPivot, Imm: t.bytes[i-1]})
			}
			if i >= 1 {
				switch t.bytes[i-1] {
				case opPopRDI:
					out = append(out, Gadget{Offset: uint64(i - 1), Kind: GadgetPopRDI})
				case opPopRAX:
					out = append(out, Gadget{Offset: uint64(i - 1), Kind: GadgetPopRAX})
				case opPopRSI:
					out = append(out, Gadget{Offset: uint64(i - 1), Kind: GadgetPopRSI})
				case opMovRDIRAX:
					out = append(out, Gadget{Offset: uint64(i - 1), Kind: GadgetMovRDIRAX})
				}
			}
		case opHalt:
			out = append(out, Gadget{Offset: uint64(i), Kind: GadgetHalt})
		}
	}
	return out
}

// FindGadget returns the first gadget of the kind, as an image offset.
func (t *Text) FindGadget(kind GadgetKind) (Gadget, bool) {
	for _, g := range t.Scan() {
		if g.Kind == kind {
			return g, true
		}
	}
	return Gadget{}, false
}
