package netstack

import "fmt"

// GRO is the Generic Receive Offload layer (§5.5): it merges consecutive
// linear TCP segments of one flow into a single sk_buff whose payload lives
// in frags[]. This is exactly the conversion the Forward Thinking attack
// needs — drivers produce linear SKBs without frags, and GRO manufactures the
// frag'ed SKB whose shared info then leaks struct page pointers on the TX
// side.
type GRO struct {
	ns *Stack
	// held maps flow → the aggregation skb under construction.
	held map[uint32]*SKB
	// segs counts merged segments per flow, to flush at the budget.
	segs map[uint32]int
}

// GROFlushBudget flushes an aggregation after this many merged segments
// (stands in for the napi poll budget / gro_flush_timeout).
const GROFlushBudget = 8

func newGRO(ns *Stack) *GRO {
	return &GRO{ns: ns, held: make(map[uint32]*SKB), segs: make(map[uint32]int)}
}

// Receive feeds one driver-produced skb into GRO. Non-TCP packets pass
// through untouched. TCP packets are absorbed into the flow's aggregation
// skb; when the budget is reached the aggregate is returned (nil meanwhile).
func (g *GRO) Receive(nic *NIC, s *SKB) (*SKB, error) {
	if s.Protocol != ProtoTCP {
		return s, nil
	}
	agg := g.held[s.FlowID]
	if agg == nil {
		// First segment becomes the aggregation head. Its own payload stays
		// linear; subsequent segments attach as frags.
		g.held[s.FlowID] = s
		g.segs[s.FlowID] = 1
		return nil, nil
	}
	// Merge: the new segment's linear payload becomes a frag of the head,
	// referenced by struct page + offset + len (skb_gro_receive).
	if err := g.ns.AddFrag(agg, s.Data, s.Len); err != nil {
		return nil, fmt.Errorf("netstack: gro merge: %w", err)
	}
	g.ns.stats.GROMerged++
	// The merged segment's sk_buff is consumed; its data page now belongs
	// to the aggregate (the frag holds a page reference), so release the
	// donor skb WITHOUT dropping the payload bytes: clear its shared info
	// ownership first.
	if err := g.releaseDonor(s); err != nil {
		return nil, err
	}
	g.segs[agg.FlowID]++
	if g.segs[agg.FlowID] >= GROFlushBudget {
		return g.Flush(agg.FlowID)
	}
	return nil, nil
}

// releaseDonor frees a merged segment's sk_buff and its buffer *container*
// while the payload page stays referenced by the aggregate's frag.
func (g *GRO) releaseDonor(s *SKB) error {
	// The donor's buffer is page_frag memory; the frag reference taken by
	// AddFrag keeps the page alive after this free.
	return g.ns.ReleaseSKB(s)
}

// Flush completes the aggregation of a flow and returns the frag'ed skb.
func (g *GRO) Flush(flow uint32) (*SKB, error) {
	agg := g.held[flow]
	if agg == nil {
		return nil, fmt.Errorf("netstack: gro flush of idle flow %d", flow)
	}
	delete(g.held, flow)
	delete(g.segs, flow)
	g.ns.stats.GROFlushed++
	return agg, nil
}

// FlushAll drains every held flow through the stack's routing (napi
// completion). Used by tests and the attack orchestration.
func (ns *Stack) FlushGRO(nic *NIC) error {
	for flow := range ns.gro.held {
		s, err := ns.gro.Flush(flow)
		if err != nil {
			return err
		}
		if err := ns.route(nic, s); err != nil {
			return err
		}
	}
	return nil
}

// HeldFlows reports how many flows GRO is currently aggregating.
func (ns *Stack) HeldFlows() int { return len(ns.gro.held) }
