package netstack

import (
	"fmt"

	"dmafault/internal/dma"
	"dmafault/internal/iommu"
	"dmafault/internal/kexec"
	"dmafault/internal/layout"
	"dmafault/internal/mem"
	"dmafault/internal/sim"
)

// Stats counts network stack activity.
type Stats struct {
	SKBsAllocated, SKBsBuilt, SKBsReleased uint64
	RXPackets, TXPackets, Forwarded        uint64
	GROMerged, GROFlushed                  uint64
	FragReleaseErrors                      uint64
	TXTimeouts                             uint64
}

// Config assembles a Stack from the substrates.
type Config struct {
	Mem    *mem.Memory
	Mapper *dma.Mapper
	Kernel *kexec.Kernel
	Clock  *sim.Clock
	// Forwarding enables the router path of §5.5 (off by default, as on
	// Linux servers).
	Forwarding bool
	// OutOfLineSharedInfo is the D3 ablation (DESIGN.md): place
	// skb_shared_info in its own kmalloc allocation instead of the tail of
	// the (DMA-mapped) data buffer. §9.2 proposes exactly this direction —
	// "segregation of I/O memory from OS memory".
	OutOfLineSharedInfo bool
	// Inject, if set, is the fault-injection hook consulted on every RX
	// descriptor refill (internal/faultinject implements it).
	Inject RefillInjector
}

// RefillInjector is the RX-refill fault-injection hook: true loses the
// descriptor for this refill round (the slot stays unposted, as if the
// driver's replenish raced a failure and gave up on the entry).
type RefillInjector interface {
	InjectRXRefillDrop(dev iommu.DeviceID, slot int) bool
}

// Stack is the network stack instance.
type Stack struct {
	mem    *mem.Memory
	mapper *dma.Mapper
	kernel *kexec.Kernel
	clock  *sim.Clock
	inject RefillInjector

	Forwarding          bool
	OutOfLineSharedInfo bool
	nics                []*NIC
	gro                 *GRO
	// deliverUp receives fully reassembled packets destined to this host
	// (the "upper layers"); services like the echo server subscribe.
	deliverUp []func(*SKB) error

	stats Stats
}

// New builds a network stack.
func New(cfg Config) (*Stack, error) {
	if cfg.Mem == nil || cfg.Mapper == nil || cfg.Kernel == nil || cfg.Clock == nil {
		return nil, fmt.Errorf("netstack: incomplete config")
	}
	ns := &Stack{
		mem:                 cfg.Mem,
		mapper:              cfg.Mapper,
		kernel:              cfg.Kernel,
		clock:               cfg.Clock,
		inject:              cfg.Inject,
		Forwarding:          cfg.Forwarding,
		OutOfLineSharedInfo: cfg.OutOfLineSharedInfo,
	}
	ns.gro = newGRO(ns)
	// The benign zero-copy completion callback: account and free the
	// ubuf_info it was invoked with (%rdi), as sock_zerocopy_callback does.
	ns.kernel.RegisterSymbol("sock_zerocopy_callback", func(cpu *kexec.CPU) error {
		return ns.mem.Slab.Kfree(layout.Addr(cpu.RDI))
	})
	return ns, nil
}

// Stats returns a copy of the counters.
func (ns *Stack) Stats() Stats { return ns.stats }

// Mem exposes the memory (tests and the experiments harness).
func (ns *Stack) Mem() *mem.Memory { return ns.mem }

// Mapper exposes the DMA API instance.
func (ns *Stack) Mapper() *dma.Mapper { return ns.mapper }

// Kernel exposes the execution model.
func (ns *Stack) Kernel() *kexec.Kernel { return ns.kernel }

// Clock exposes the virtual clock.
func (ns *Stack) Clock() *sim.Clock { return ns.clock }

// OnDeliver subscribes a service to packets delivered to the local host.
func (ns *Stack) OnDeliver(fn func(*SKB) error) { ns.deliverUp = append(ns.deliverUp, fn) }

// NICs returns the registered ports.
func (ns *Stack) NICs() []*NIC { return ns.nics }

// netifReceive is the entry from driver RX into the stack: GRO first (as
// napi_gro_receive does), then routing.
func (ns *Stack) netifReceive(nic *NIC, s *SKB) error {
	ns.stats.RXPackets++
	out, err := ns.gro.Receive(nic, s)
	if err != nil {
		return err
	}
	if out == nil {
		return nil // held for aggregation
	}
	return ns.route(nic, out)
}

// route either forwards the packet out of the other port (when forwarding is
// enabled and the packet is not for us) or delivers it locally.
func (ns *Stack) route(in *NIC, s *SKB) error {
	if ns.Forwarding && s.FlowID&forwardFlowBit != 0 {
		out := ns.otherPort(in)
		if out == nil {
			return fmt.Errorf("netstack: forwarding enabled but no egress port")
		}
		ns.stats.Forwarded++
		return out.Transmit(s)
	}
	for _, fn := range ns.deliverUp {
		if err := fn(s); err != nil {
			return err
		}
	}
	return ns.ReleaseSKB(s)
}

// forwardFlowBit marks flows addressed past this host (a stand-in for a
// routing decision).
const forwardFlowBit = 1 << 31

// otherPort picks an egress NIC different from the ingress one, falling back
// to the ingress port itself (single-NIC routers hairpin).
func (ns *Stack) otherPort(in *NIC) *NIC {
	for _, n := range ns.nics {
		if n != in {
			return n
		}
	}
	return in
}
