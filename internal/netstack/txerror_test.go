package netstack

import (
	"testing"

	"dmafault/internal/iommu"
)

func TestTransmitRejectsCorruptFragPointer(t *testing.T) {
	// A TX skb whose frags[] was corrupted to a non-vmemmap value must fail
	// cleanly at mapping time, not crash.
	w := newWorld(t, iommu.Strict, false)
	n := w.addNIC(t, nicDev, DriverI40E, 0)
	s, err := w.ns.BuildTXPacket(0, []byte("payload"), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt frag 0's struct page pointer.
	if err := w.m.WriteU64(s.SharedInfo()+SharedInfoFragsOff, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if err := n.Transmit(s); err == nil {
		t.Fatal("transmit with corrupt frag pointer accepted")
	}
	if n.PendingTX() != 0 {
		t.Errorf("PendingTX = %d after failed transmit", n.PendingTX())
	}
}

func TestCompleteTXOutOfRange(t *testing.T) {
	w := newWorld(t, iommu.Strict, false)
	n := w.addNIC(t, nicDev, DriverI40E, 0)
	if err := n.CompleteTX(0); err == nil {
		t.Error("completion of empty ring accepted")
	}
	if err := n.CompleteTX(-1); err == nil {
		t.Error("negative index accepted")
	}
}

func TestReceiveOnBadArguments(t *testing.T) {
	w := newWorld(t, iommu.Strict, false)
	n := w.addNIC(t, nicDev, DriverI40E, 0)
	if err := n.ReceiveOn(-1, 10, ProtoUDP, 1); err == nil {
		t.Error("negative slot accepted")
	}
	if err := n.ReceiveOn(len(n.RXRing()), 10, ProtoUDP, 1); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if err := n.ReceiveOn(0, n.RXRing()[0].Cap+1, ProtoUDP, 1); err == nil {
		t.Error("oversized packet accepted")
	}
}

func TestGROFlushIdleFlow(t *testing.T) {
	w := newWorld(t, iommu.Strict, false)
	if _, err := w.ns.gro.Flush(999); err == nil {
		t.Error("flush of idle flow accepted")
	}
}
