package netstack

import (
	"testing"

	"dmafault/internal/dma"
	"dmafault/internal/iommu"
	"dmafault/internal/kexec"
	"dmafault/internal/layout"
	"dmafault/internal/mem"
	"dmafault/internal/sim"
)

func newHardenedWorld(t *testing.T, outOfLine bool) *world {
	t.Helper()
	l := layout.New(layout.Config{KASLR: true, Seed: 33, PhysBytes: 64 << 20})
	m, err := mem.New(mem.Config{Layout: l, CPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock()
	unit := iommu.New(iommu.Deferred, clk)
	if _, err := unit.CreateDomain("nic0", nicDev); err != nil {
		t.Fatal(err)
	}
	mp := dma.NewMapper(m, unit)
	k := kexec.NewKernel(m, 33)
	ns, err := New(Config{Mem: m, Mapper: mp, Kernel: k, Clock: clk, OutOfLineSharedInfo: outOfLine})
	if err != nil {
		t.Fatal(err)
	}
	return &world{ns: ns, m: m, unit: unit, mp: mp, bus: dma.NewBus(m, unit), clk: clk, k: k}
}

func TestOutOfLineSharedInfoLeavesDataPage(t *testing.T) {
	// D3 ablation: with segregated metadata, shared info no longer lives on
	// the DMA-mapped buffer's page.
	w := newHardenedWorld(t, true)
	s, err := w.ns.AllocSKB(0, 2048)
	if err != nil {
		t.Fatal(err)
	}
	dataPFN, _ := w.m.Layout().KVAToPFN(s.Head)
	siPFN, _ := w.m.Layout().KVAToPFN(s.SharedInfo())
	if dataPFN == siPFN {
		t.Fatal("shared info still on the data page")
	}
	// Shared info works normally from the CPU side.
	chunk, _ := w.m.Frag.Alloc(0, 256, 0)
	if err := w.ns.AddFrag(s, chunk, 256); err != nil {
		t.Fatal(err)
	}
	if err := w.m.Frag.Free(0, chunk); err != nil {
		t.Fatal(err)
	}
	nr, _ := w.ns.NrFrags(s)
	if nr != 1 {
		t.Errorf("NrFrags = %d", nr)
	}
	// The device, with the data buffer mapped, cannot reach shared info.
	va, err := w.mp.MapSingle(nicDev, s.Head, 2048, dma.FromDevice)
	if err != nil {
		t.Fatal(err)
	}
	siGuess := va + iommu.IOVA(TruesizeFor(2048)-SharedInfoSize)
	if err := w.bus.WriteU64(nicDev, siGuess+SharedInfoDestructorArgOff, 0xbad); err == nil {
		// The write may land in padding on the data page — verify it did
		// NOT hit the real shared info.
		darg, _ := w.ns.DestructorArg(s)
		if darg == 0xbad {
			t.Fatal("device corrupted out-of-line shared info")
		}
	}
	if err := w.mp.UnmapSingle(nicDev, va, 2048, dma.FromDevice); err != nil {
		t.Fatal(err)
	}
	if err := w.ns.ReleaseSKB(s); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfLineBuildSKBAndRXPath(t *testing.T) {
	w := newHardenedWorld(t, true)
	n, err := w.ns.AddNIC(nicDev, DriverI40E, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.FillRX(); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	w.ns.OnDeliver(func(s *SKB) error {
		delivered++
		siPFN, _ := w.m.Layout().KVAToPFN(s.SharedInfo())
		dataPFN, _ := w.m.Layout().KVAToPFN(s.Data)
		if siPFN == dataPFN {
			t.Error("RX skb shared info co-located despite hardening")
		}
		return nil
	})
	d := n.RXRing()[0]
	if err := w.bus.Write(nicDev, d.IOVA, []byte("pkt")); err != nil {
		t.Fatal(err)
	}
	if err := n.ReceiveOn(0, 3, ProtoUDP, 1); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatal("packet not delivered")
	}
}

func TestXDPMapsRXBidirectional(t *testing.T) {
	w := newWorld(t, iommu.Strict, false)
	n, err := w.ns.AddNIC(nicDev, DriverXDP, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.FillRX(); err != nil {
		t.Fatal(err)
	}
	d := n.RXRing()[0]
	// The device can WRITE — and, unlike the normal RX path, READ.
	if err := w.bus.Write(nicDev, d.IOVA, []byte("xdp")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if err := w.bus.Read(nicDev, d.IOVA, buf); err != nil {
		t.Fatalf("XDP RX buffer not readable: %v", err)
	}
	if string(buf) != "xdp" {
		t.Errorf("read %q", buf)
	}
	// A plain driver's RX buffer is write-only by contrast.
	n2, err := w.ns.AddNIC(nicDev2, DriverI40E, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n2.FillRX(); err != nil {
		t.Fatal(err)
	}
	d2 := n2.RXRing()[0]
	if err := w.bus.Read(nicDev2, d2.IOVA, buf); err == nil {
		t.Error("non-XDP RX buffer readable")
	}
	// XDP processing path works end to end.
	if err := n.ReceiveOn(0, 3, ProtoUDP, 2); err != nil {
		t.Fatal(err)
	}
}
