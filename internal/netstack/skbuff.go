// Package netstack reproduces the slice of the Linux network stack the
// paper's compound attacks live in: sk_buff and the skb_shared_info metadata
// that is *always* allocated at the tail of the packet data buffer and is
// therefore *always* DMA-mapped with the packet (§5.1); the RX allocation
// paths over page_frag (netdev_alloc_skb) and build_skb; NIC RX/TX rings with
// the driver orderings of Fig. 7; the GRO layer that converts linear SKBs
// into frag'ed ones (§5.5); and packet forwarding.
//
// skb_shared_info and ubuf_info are kept as *binary structures in simulated
// memory* at fixed offsets, because that is precisely what a malicious
// device reads and corrupts; sk_buff itself is a Go object, mirroring the
// fact that struct sk_buff lives in its own slab and is never intentionally
// mapped (Fig. 4).
package netstack

import (
	"fmt"

	"dmafault/internal/layout"
)

// MaxFrags mirrors Linux's MAX_SKB_FRAGS.
const MaxFrags = 17

// Binary layout of skb_shared_info within the data buffer. The offsets are
// build constants an attacker knows (§3.3: "the location on the page of the
// callback pointer must be known to the device").
const (
	SharedInfoNrFragsOff       = 0  // u16
	SharedInfoTxFlagsOff       = 2  // u16
	SharedInfoGSOSizeOff       = 4  // u32
	SharedInfoDestructorArgOff = 8  // u64: pointer to struct ubuf_info
	SharedInfoFragsOff         = 16 // MaxFrags × Frag
	FragSize                   = 16 // PagePtr u64, Offset u32, Len u32
	SharedInfoSize             = SharedInfoFragsOff + MaxFrags*FragSize
)

// Binary layout of struct ubuf_info (the zero-copy completion record
// destructor_arg points to; Fig. 4 footnote 4).
const (
	UbufCallbackOff = 0 // u64: function pointer
	UbufCtxOff      = 8
	UbufDescOff     = 16
	UbufInfoSize    = 24
)

// TxFlag bits in skb_shared_info.tx_flags.
const (
	TxFlagZerocopy uint16 = 1 << 0
)

// Frag is a decoded skb_shared_info.frags[] element: a paged fragment
// identified by its struct page address — a raw vmemmap pointer, which is why
// a device that can read a TX packet's shared info defeats KASLR (§5.4).
type Frag struct {
	PagePtr layout.Addr // struct page address (vmemmap)
	Offset  uint32
	Len     uint32
}

// DataSource says how an SKB's data buffer was allocated, deciding its
// release path.
type DataSource int

const (
	// DataFrag came from the page_frag allocator (netdev_alloc_skb).
	DataFrag DataSource = iota
	// DataKmalloc came from kmalloc (some control-path drivers).
	DataKmalloc
	// DataExternal is owned by someone else (build_skb over a driver ring
	// buffer whose lifetime the driver manages).
	DataExternal
	// DataPages came straight from the page allocator (HW-LRO drivers use
	// order-4 compound buffers; §5.3).
	DataPages
)

// SKB is the sk_buff: packet metadata in its own (never-mapped) allocation,
// pointing at a separately allocated data buffer whose tail holds
// skb_shared_info.
type SKB struct {
	// Head is the start of the data buffer; Data is the current packet
	// start; End is where skb_shared_info begins.
	Head, Data, End layout.Addr
	// Len is the length of the linear payload at Data.
	Len uint32
	// DataLen is the number of payload bytes held in frags.
	DataLen uint32
	// Protocol and FlowID stand in for the header fields GRO keys on.
	Protocol Protocol
	FlowID   uint32
	// Source records the data buffer's allocator for the release path.
	Source DataSource
	// CPU is the core the buffer was allocated on (page_frag is per-CPU).
	CPU int
	// siOutOfLine marks the D3-hardened layout: End points at a separate
	// kmalloc allocation rather than the data buffer's tail.
	siOutOfLine bool

	released bool
}

// Protocol is the L4 protocol of the (simulated) packet.
type Protocol uint8

const (
	ProtoTCP Protocol = 6
	ProtoUDP Protocol = 17
)

// TotalLen returns linear + paged payload length.
func (s *SKB) TotalLen() uint32 { return s.Len + s.DataLen }

// SharedInfo returns the address of the skb_shared_info.
func (s *SKB) SharedInfo() layout.Addr { return s.End }

// dataAlign mirrors SKB_DATA_ALIGN (cache-line).
func dataAlign(n uint64) uint64 { return (n + 63) &^ 63 }

// TruesizeFor returns the bytes a data buffer of the given payload capacity
// occupies, including the tail skb_shared_info.
func TruesizeFor(size uint32) uint64 {
	return dataAlign(uint64(size)) + SharedInfoSize
}

// Stack is declared in stack.go; the SKB helpers below all operate through
// it because shared info lives in simulated memory.

// initSharedInfo zeroes the shared info region (what __build_skb does).
func (ns *Stack) initSharedInfo(s *SKB) error {
	return ns.mem.Memset(s.End, 0, SharedInfoSize)
}

// NrFrags reads shared_info.nr_frags.
func (ns *Stack) NrFrags(s *SKB) (uint16, error) {
	return ns.mem.ReadU16(s.End + SharedInfoNrFragsOff)
}

// DestructorArg reads shared_info.destructor_arg.
func (ns *Stack) DestructorArg(s *SKB) (layout.Addr, error) {
	v, err := ns.mem.ReadU64(s.End + SharedInfoDestructorArgOff)
	return layout.Addr(v), err
}

// SetDestructorArg points shared_info.destructor_arg at a ubuf_info.
func (ns *Stack) SetDestructorArg(s *SKB, ubuf layout.Addr) error {
	if err := ns.mem.WriteU64(s.End+SharedInfoDestructorArgOff, uint64(ubuf)); err != nil {
		return err
	}
	flags, err := ns.mem.ReadU16(s.End + SharedInfoTxFlagsOff)
	if err != nil {
		return err
	}
	return ns.mem.WriteU16(s.End+SharedInfoTxFlagsOff, flags|TxFlagZerocopy)
}

// Frag decodes shared_info.frags[i].
func (ns *Stack) Frag(s *SKB, i int) (Frag, error) {
	if i < 0 || i >= MaxFrags {
		return Frag{}, fmt.Errorf("netstack: frag index %d out of range", i)
	}
	base := s.End + SharedInfoFragsOff + layout.Addr(i*FragSize)
	p, err := ns.mem.ReadU64(base)
	if err != nil {
		return Frag{}, err
	}
	off, err := ns.mem.ReadU32(base + 8)
	if err != nil {
		return Frag{}, err
	}
	ln, err := ns.mem.ReadU32(base + 12)
	if err != nil {
		return Frag{}, err
	}
	return Frag{PagePtr: layout.Addr(p), Offset: off, Len: ln}, nil
}

// AddFrag appends a paged fragment: it writes the frag's struct page
// pointer, offset and length into shared info and takes a page reference.
// kvaOfData is the address of the fragment's first byte.
func (ns *Stack) AddFrag(s *SKB, kvaOfData layout.Addr, n uint32) error {
	nr, err := ns.NrFrags(s)
	if err != nil {
		return err
	}
	if int(nr) >= MaxFrags {
		return fmt.Errorf("netstack: skb already has %d frags", nr)
	}
	pfn, err := ns.mem.Layout().KVAToPFN(kvaOfData)
	if err != nil {
		return err
	}
	if err := ns.mem.Pages.GetPage(pfn); err != nil {
		return err
	}
	base := s.End + SharedInfoFragsOff + layout.Addr(int(nr)*FragSize)
	if err := ns.mem.WriteU64(base, uint64(ns.mem.Layout().PFNToStructPage(pfn))); err != nil {
		return err
	}
	if err := ns.mem.WriteU32(base+8, uint32(layout.PageOffsetOf(kvaOfData))); err != nil {
		return err
	}
	if err := ns.mem.WriteU32(base+12, n); err != nil {
		return err
	}
	if err := ns.mem.WriteU16(s.End+SharedInfoNrFragsOff, nr+1); err != nil {
		return err
	}
	s.DataLen += n
	return nil
}

// FragKVA translates a decoded frag back to the KVA of its first byte.
func (ns *Stack) FragKVA(f Frag) (layout.Addr, error) {
	pfn, err := ns.mem.Layout().StructPageToPFN(f.PagePtr)
	if err != nil {
		return 0, err
	}
	return ns.mem.Layout().PFNToKVA(pfn) + layout.Addr(f.Offset), nil
}

// AllocSKB is netdev_alloc_skb/napi_alloc_skb: the data buffer (payload
// capacity + tail shared info) comes from the per-CPU page_frag allocator —
// the type (c) machinery of §5.2.2. Under the D3-hardened layout, shared
// info is kmalloc'd separately instead.
func (ns *Stack) AllocSKB(cpu int, size uint32) (*SKB, error) {
	if ns.OutOfLineSharedInfo {
		data, err := ns.mem.Frag.Alloc(cpu, dataAlign(uint64(size)), 64)
		if err != nil {
			return nil, err
		}
		return ns.attachOutOfLineSI(&SKB{Head: data, Data: data, Source: DataFrag, CPU: cpu})
	}
	truesize := TruesizeFor(size)
	data, err := ns.mem.Frag.Alloc(cpu, truesize, 64)
	if err != nil {
		return nil, err
	}
	s := &SKB{
		Head:   data,
		Data:   data,
		End:    data + layout.Addr(dataAlign(uint64(size))),
		Source: DataFrag,
		CPU:    cpu,
	}
	if err := ns.initSharedInfo(s); err != nil {
		return nil, err
	}
	ns.stats.SKBsAllocated++
	return s, nil
}

// attachOutOfLineSI gives an skb a separately allocated shared info.
func (ns *Stack) attachOutOfLineSI(s *SKB) (*SKB, error) {
	si, err := ns.mem.Slab.Kzalloc(s.CPU, SharedInfoSize, "skb_shared_info_oob")
	if err != nil {
		return nil, err
	}
	s.End = si
	s.siOutOfLine = true
	ns.stats.SKBsAllocated++
	return s, nil
}

// BuildSKB is build_skb: it wraps an sk_buff around an existing buffer of
// bufSize bytes, placing shared info inside it — the API §9.1 singles out for
// "embedding critical data structures inside the I/O buffer".
func (ns *Stack) BuildSKB(buf layout.Addr, bufSize uint32) (*SKB, error) {
	if uint64(bufSize) < SharedInfoSize+64 {
		return nil, fmt.Errorf("netstack: build_skb buffer of %d bytes too small", bufSize)
	}
	if ns.OutOfLineSharedInfo {
		s, err := ns.attachOutOfLineSI(&SKB{Head: buf, Data: buf, Source: DataExternal})
		if err != nil {
			return nil, err
		}
		ns.stats.SKBsBuilt++
		return s, nil
	}
	s := &SKB{
		Head:   buf,
		Data:   buf,
		End:    buf + layout.Addr(dataAlign(uint64(bufSize)-SharedInfoSize)),
		Source: DataExternal,
	}
	if err := ns.initSharedInfo(s); err != nil {
		return nil, err
	}
	ns.stats.SKBsBuilt++
	return s, nil
}

// KmallocSKB allocates the data buffer with kmalloc (control-path style).
func (ns *Stack) KmallocSKB(cpu int, size uint32, site string) (*SKB, error) {
	truesize := TruesizeFor(size)
	data, err := ns.mem.Slab.Kmalloc(cpu, truesize, site)
	if err != nil {
		return nil, err
	}
	s := &SKB{
		Head:   data,
		Data:   data,
		End:    data + layout.Addr(dataAlign(uint64(size))),
		Source: DataKmalloc,
		CPU:    cpu,
	}
	if err := ns.initSharedInfo(s); err != nil {
		return nil, err
	}
	ns.stats.SKBsAllocated++
	return s, nil
}

// ReleaseSKB frees an sk_buff: if destructor_arg is set, the ubuf_info
// callback is invoked first — with the address of the ubuf_info itself in
// %rdi, exactly the dispatch the Fig. 4 exploit rides — then frag pages are
// released and the data buffer freed.
func (ns *Stack) ReleaseSKB(s *SKB) error {
	if s.released {
		return fmt.Errorf("netstack: double release of skb")
	}
	s.released = true
	ns.stats.SKBsReleased++
	darg, err := ns.DestructorArg(s)
	if err != nil {
		return err
	}
	var cbErr error
	if darg != 0 {
		cb, err := ns.mem.ReadU64(darg + UbufCallbackOff)
		if err != nil {
			cbErr = err
		} else if cb != 0 {
			cbErr = ns.kernel.InvokeCallback(layout.Addr(cb), uint64(darg))
		}
	}
	nr, err := ns.NrFrags(s)
	if err != nil {
		return err
	}
	for i := 0; i < int(nr); i++ {
		f, err := ns.Frag(s, i)
		if err != nil {
			return err
		}
		pfn, err := ns.mem.Layout().StructPageToPFN(f.PagePtr)
		if err != nil {
			// Corrupted frag pointer (e.g. attacker surveillance cleanup
			// failure): report rather than crash the release path.
			ns.stats.FragReleaseErrors++
			continue
		}
		if err := ns.mem.Pages.PutPage(s.CPU, pfn); err != nil {
			ns.stats.FragReleaseErrors++
		}
	}
	if s.siOutOfLine {
		if err := ns.mem.Slab.Kfree(s.End); err != nil {
			return err
		}
	}
	switch s.Source {
	case DataFrag:
		if err := ns.mem.Frag.Free(s.CPU, s.Head); err != nil {
			return err
		}
	case DataKmalloc:
		if err := ns.mem.Slab.Kfree(s.Head); err != nil {
			return err
		}
	case DataPages:
		pfn, err := ns.mem.Layout().KVAToPFN(s.Head)
		if err != nil {
			return err
		}
		if err := ns.mem.Pages.PutPage(s.CPU, pfn); err != nil {
			return err
		}
	case DataExternal:
		// Owner frees.
	}
	return cbErr
}

// RegisterZerocopyUbuf allocates a legitimate ubuf_info whose callback is the
// native sock_zerocopy_callback, and points the skb's destructor_arg at it —
// the benign zero-copy TX setup that the attack imitates.
func (ns *Stack) RegisterZerocopyUbuf(cpu int, s *SKB) (layout.Addr, error) {
	ubuf, err := ns.mem.Slab.Kzalloc(cpu, UbufInfoSize, "sock_zerocopy_alloc")
	if err != nil {
		return 0, err
	}
	cb, err := ns.kernel.FuncAddr("sock_zerocopy_callback")
	if err != nil {
		return 0, err
	}
	if err := ns.mem.WriteU64(ubuf+UbufCallbackOff, uint64(cb)); err != nil {
		return 0, err
	}
	if err := ns.SetDestructorArg(s, ubuf); err != nil {
		return 0, err
	}
	return ubuf, nil
}
