package netstack

import (
	"fmt"

	"dmafault/internal/dma"
	"dmafault/internal/iommu"
	"dmafault/internal/layout"
	"dmafault/internal/mem"
	"dmafault/internal/sim"
)

// DriverModel captures the driver behaviours Fig. 7 distinguishes.
type DriverModel struct {
	Name string
	// RXBufferSize is the payload capacity of one RX buffer: 2048 for MTU
	// 1500 drivers, 65536 when HW LRO aggregates in hardware (§5.3).
	RXBufferSize uint32
	// UnmapBeforeBuild: the *correct* ordering unmaps the RX buffer before
	// initializing skb_shared_info in it. Prevalent drivers (i40e) do the
	// opposite, handing the device window (i) of Fig. 7.
	UnmapBeforeBuild bool
	// UseBuildSKB wraps the sk_buff around the raw ring buffer (build_skb,
	// type (b)); otherwise the driver netdev_alloc_skb's a fresh buffer and
	// copies — still exposed, because that buffer also embeds shared info.
	UseBuildSKB bool
	// RingSize is the number of RX descriptors per ring.
	RingSize int
	// HWLRO marks 64 KiB-buffer hardware LRO configurations (mlx5 on 4.15).
	HWLRO bool
	// XDP maps RX buffers BIDIRECTIONAL instead of WRITE (§5.1: "in some
	// cases, such as XDP"), handing the device read access to everything on
	// the RX pages — including skb_shared_info and co-located buffers.
	XDP bool
}

// Predefined driver models used across experiments.
var (
	// DriverI40E models the Intel 40GbE driver of Fig. 7(i): sk_buff first,
	// unmap after.
	DriverI40E = DriverModel{Name: "i40e", RXBufferSize: 2048, UnmapBeforeBuild: false, UseBuildSKB: true, RingSize: 256}
	// DriverCorrect unmaps before touching shared info (Fig. 7(ii)).
	DriverCorrect = DriverModel{Name: "correct", RXBufferSize: 2048, UnmapBeforeBuild: true, UseBuildSKB: true, RingSize: 256}
	// DriverMlx5LRO models mlx5_core with HW LRO on kernel 4.15: 64 KiB per
	// RX entry (§5.3).
	DriverMlx5LRO = DriverModel{Name: "mlx5_core-4.15", RXBufferSize: 65536 - SharedInfoSize - 64, UnmapBeforeBuild: true, UseBuildSKB: true, RingSize: 512, HWLRO: true}
	// DriverMlx5 models mlx5_core on kernel 5.0: HW LRO off, 2 KiB entries.
	DriverMlx5 = DriverModel{Name: "mlx5_core-5.0", RXBufferSize: 2048, UnmapBeforeBuild: true, UseBuildSKB: true, RingSize: 512}
	// DriverXDP models an XDP-enabled datapath: bidirectional RX mappings.
	DriverXDP = DriverModel{Name: "xdp", RXBufferSize: 2048, UnmapBeforeBuild: true, UseBuildSKB: true, RingSize: 256, XDP: true}
)

// rxDir is the DMA direction RX buffers are mapped with.
func (m DriverModel) rxDir() dma.Direction {
	if m.XDP {
		return dma.Bidirectional
	}
	return dma.FromDevice
}

// RXDesc is one RX ring descriptor: where the NIC may write the next packet.
type RXDesc struct {
	Data  layout.Addr // KVA of the buffer (driver side)
	IOVA  iommu.IOVA  // what the device sees
	Cap   uint32      // buffer payload capacity
	Ready bool        // posted to hardware, awaiting a packet
	paged bool        // buffer is a compound page allocation (HW LRO)
}

// TXDesc is one in-flight transmitted packet.
type TXDesc struct {
	SKB       *SKB
	LinearVA  iommu.IOVA
	LinearLen uint64
	FragVAs   []iommu.IOVA
	FragLens  []uint64
	Posted    sim.Nanos
	Completed bool
}

// TXTimeout is the driver's transmit-completion watchdog (§5.4: "usually a
// few seconds, which is sufficient to complete the attack").
const TXTimeout = 5 * sim.Second

// NIC is one port: device identity, driver model, and its rings.
type NIC struct {
	Dev   iommu.DeviceID
	Model DriverModel
	CPU   int // the core servicing this ring (one RX ring per core, §5.2.2)
	ns    *Stack
	rx    []RXDesc
	tx    []TXDesc
	// LastRX records facts about the most recent ReceiveOn, for tests and
	// for attack-window analysis (Fig. 7).
	LastRX RXTrace
	// RXWindow, if set, runs right after the driver initializes
	// skb_shared_info and before the packet is delivered (and, in the i40e
	// ordering, before the buffer is unmapped). It models the concurrency a
	// real device has with driver RX processing: §5.2.2 shows this window
	// is essentially always available. The hook only grants *timing* — any
	// DMA the device attempts in it still goes through the IOMMU, which is
	// what decides whether the Fig. 7 paths (i)/(ii)/(iii) succeed.
	RXWindow func(n *NIC, tr RXTrace)
}

// RXTrace captures the security-relevant facts of one RX processing pass.
type RXTrace struct {
	Desc RXDesc
	SKB  *SKB
	// BuildWhileMapped is true when skb_shared_info was initialized while
	// the buffer's own IOVA still translated in the page table — the
	// Fig. 7(i) driver-ordering window.
	BuildWhileMapped bool
}

// AddNIC registers a port with the stack.
func (ns *Stack) AddNIC(dev iommu.DeviceID, model DriverModel, cpu int) (*NIC, error) {
	if model.RingSize <= 0 {
		return nil, fmt.Errorf("netstack: driver %q has no ring", model.Name)
	}
	n := &NIC{Dev: dev, Model: model, CPU: cpu, ns: ns, rx: make([]RXDesc, model.RingSize)}
	ns.nics = append(ns.nics, n)
	return n, nil
}

// FillRX allocates and maps buffers for every empty RX descriptor: the
// netdev_alloc_skb/page_frag path that makes successive descriptors map the
// same pages (§5.2.2 path iii).
func (n *NIC) FillRX() error {
	for i := range n.rx {
		if n.rx[i].Ready {
			continue
		}
		if n.ns.inject != nil && n.ns.inject.InjectRXRefillDrop(n.Dev, i) {
			continue // injected descriptor loss: the slot stays unposted
		}
		truesize := TruesizeFor(n.Model.RXBufferSize)
		var data layout.Addr
		if truesize > mem.FragRegionBytes {
			// HW-LRO style: the buffer is a compound page allocation.
			order := uint(0)
			for (uint64(layout.PageSize) << order) < truesize {
				order++
			}
			pfn, err := n.ns.mem.Pages.AllocPages(n.CPU, order)
			if err != nil {
				return fmt.Errorf("netstack: rx refill (order %d): %w", order, err)
			}
			data = n.ns.mem.Layout().PFNToKVA(pfn)
		} else {
			var err error
			data, err = n.ns.mem.Frag.Alloc(n.CPU, truesize, 64)
			if err != nil {
				return fmt.Errorf("netstack: rx refill: %w", err)
			}
		}
		va, err := n.ns.mapper.MapSingle(n.Dev, data, truesize, n.Model.rxDir())
		if err != nil {
			return fmt.Errorf("netstack: rx map: %w", err)
		}
		n.rx[i] = RXDesc{Data: data, IOVA: va, Cap: n.Model.RXBufferSize, Ready: true, paged: truesize > mem.FragRegionBytes}
	}
	return nil
}

// RXRing exposes the descriptors: the device-side view. A NIC knows its own
// ring, so a *malicious* NIC knows every RX IOVA and their fill order.
func (n *NIC) RXRing() []RXDesc { return n.rx }

// TXRing exposes in-flight transmissions (the device sees these descriptors
// too).
func (n *NIC) TXRing() []TXDesc { return n.tx }

// ReceiveOn processes a packet the device has already DMA-written into RX
// slot i: the driver builds the sk_buff and pushes it up the stack, in the
// ordering its model prescribes (Fig. 7 paths i/ii).
func (n *NIC) ReceiveOn(slot int, pktLen uint32, proto Protocol, flow uint32) error {
	if slot < 0 || slot >= len(n.rx) || !n.rx[slot].Ready {
		return fmt.Errorf("netstack: rx slot %d not ready", slot)
	}
	d := &n.rx[slot]
	if pktLen > d.Cap {
		return fmt.Errorf("netstack: packet of %d bytes exceeds buffer cap %d", pktLen, d.Cap)
	}
	d.Ready = false
	truesize := TruesizeFor(d.Cap)

	build := func() (*SKB, error) {
		var s *SKB
		var err error
		if n.Model.UseBuildSKB {
			s, err = n.ns.BuildSKB(d.Data, uint32(truesize))
			if err != nil {
				return nil, err
			}
			if d.paged {
				s.Source = DataPages
			} else {
				s.Source = DataFrag // the ring buffer is page_frag memory; skb owns it now
			}
			s.CPU = n.CPU
		} else {
			s, err = n.ns.AllocSKB(n.CPU, d.Cap)
			if err != nil {
				return nil, err
			}
			// Copy the payload out of the ring buffer (legacy copybreak).
			buf := make([]byte, pktLen)
			if err := n.ns.mem.Read(d.Data, buf); err != nil {
				return nil, err
			}
			if err := n.ns.mem.Write(s.Data, buf); err != nil {
				return nil, err
			}
		}
		s.Len = pktLen
		s.Protocol = proto
		s.FlowID = flow
		return s, nil
	}
	unmap := func() error {
		return n.ns.mapper.UnmapSingle(n.Dev, d.IOVA, truesize, n.Model.rxDir())
	}

	mappedNow := func() bool {
		dom, err := n.ns.mapper.DomainOf(n.Dev)
		if err != nil {
			return false
		}
		_, _, present := dom.Table().Walk(d.IOVA)
		return present
	}

	var s *SKB
	var err error
	if n.Model.UnmapBeforeBuild {
		if err = unmap(); err != nil {
			return err
		}
		wasMapped := mappedNow()
		if s, err = build(); err != nil {
			return err
		}
		n.LastRX = RXTrace{Desc: *d, SKB: s, BuildWhileMapped: wasMapped}
		if n.RXWindow != nil {
			n.RXWindow(n, n.LastRX)
		}
	} else {
		// Fig. 7(i): shared info initialized while the device still holds a
		// valid mapping — the device can redo its corruption after the CPU's
		// initialization.
		wasMapped := mappedNow()
		if s, err = build(); err != nil {
			return err
		}
		n.LastRX = RXTrace{Desc: *d, SKB: s, BuildWhileMapped: wasMapped}
		if n.RXWindow != nil {
			n.RXWindow(n, n.LastRX)
		}
		if err = unmap(); err != nil {
			return err
		}
	}
	if !n.Model.UseBuildSKB {
		// The copy path is done with the ring buffer.
		if err := n.ns.mem.Frag.Free(n.CPU, d.Data); err != nil {
			return err
		}
	}
	return n.ns.netifReceive(n, s)
}

// Transmit maps the packet for the device (linear part + each frag, all
// DMA_TO_DEVICE) and posts a TX descriptor. Completion is device-paced:
// see CompleteTX/ReapCompletions.
func (n *NIC) Transmit(s *SKB) error {
	// Map the linear buffer. Note what rides along: the mapping covers the
	// buffer's whole page(s), so skb_shared_info at the tail is readable by
	// the device (§5.4, Fig. 8).
	linLen := uint64(s.Len)
	if linLen == 0 {
		linLen = 1 // headers at least; keep the page exposure honest
	}
	lin, err := n.ns.mapper.MapSingle(n.Dev, s.Data, linLen, dma.ToDevice)
	if err != nil {
		return err
	}
	desc := TXDesc{SKB: s, LinearVA: lin, LinearLen: linLen, Posted: n.ns.clock.Now()}
	nr, err := n.ns.NrFrags(s)
	if err != nil {
		return err
	}
	for i := 0; i < int(nr); i++ {
		f, err := n.ns.Frag(s, i)
		if err != nil {
			return err
		}
		pfn, err := n.ns.mem.Layout().StructPageToPFN(f.PagePtr)
		if err != nil {
			return fmt.Errorf("netstack: tx frag %d has bad page pointer: %w", i, err)
		}
		va, err := n.ns.mapper.MapPage(n.Dev, pfn, uint64(f.Offset), uint64(f.Len), dma.ToDevice)
		if err != nil {
			return err
		}
		desc.FragVAs = append(desc.FragVAs, va)
		desc.FragLens = append(desc.FragLens, uint64(f.Len))
	}
	n.tx = append(n.tx, desc)
	n.ns.stats.TXPackets++
	return nil
}

// CompleteTX marks a TX descriptor done — in real hardware the device raises
// this completion, so a malicious device chooses *when* (delaying it keeps
// the poisoned buffer alive, §5.4 step 2).
func (n *NIC) CompleteTX(idx int) error {
	if idx < 0 || idx >= len(n.tx) {
		return fmt.Errorf("netstack: tx index %d out of range", idx)
	}
	n.tx[idx].Completed = true
	return nil
}

// ReapCompletions runs the driver's TX cleanup: completed descriptors are
// unmapped and their SKBs released (invoking destructor callbacks). Posted
// descriptors older than TXTimeout trigger the watchdog: the driver resets,
// flushing everything.
func (n *NIC) ReapCompletions() error {
	now := n.ns.clock.Now()
	var remaining []TXDesc
	var firstErr error
	for i := range n.tx {
		d := &n.tx[i]
		timedOut := !d.Completed && now-d.Posted >= TXTimeout
		if !d.Completed && !timedOut {
			remaining = append(remaining, *d)
			continue
		}
		if timedOut {
			n.ns.stats.TXTimeouts++
		}
		if err := n.ns.mapper.UnmapSingle(n.Dev, d.LinearVA, d.LinearLen, dma.ToDevice); err != nil && firstErr == nil {
			firstErr = err
		}
		for j, va := range d.FragVAs {
			if err := n.ns.mapper.UnmapSingle(n.Dev, va, d.FragLens[j], dma.ToDevice); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if err := n.ns.ReleaseSKB(d.SKB); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	n.tx = remaining
	return firstErr
}

// PendingTX returns the number of in-flight TX descriptors.
func (n *NIC) PendingTX() int { return len(n.tx) }
