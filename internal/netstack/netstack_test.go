package netstack

import (
	"bytes"
	"testing"

	"dmafault/internal/dma"
	"dmafault/internal/iommu"
	"dmafault/internal/kexec"
	"dmafault/internal/layout"
	"dmafault/internal/mem"
	"dmafault/internal/sim"
)

const (
	nicDev  iommu.DeviceID = 1
	nicDev2 iommu.DeviceID = 2
)

type world struct {
	ns   *Stack
	m    *mem.Memory
	unit *iommu.IOMMU
	mp   *dma.Mapper
	bus  *dma.Bus
	clk  *sim.Clock
	k    *kexec.Kernel
}

func newWorld(t *testing.T, mode iommu.Mode, forwarding bool) *world {
	t.Helper()
	l := layout.New(layout.Config{KASLR: true, Seed: 21, PhysBytes: 64 << 20})
	m, err := mem.New(mem.Config{Layout: l, CPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock()
	unit := iommu.New(mode, clk)
	if _, err := unit.CreateDomain("nic0", nicDev); err != nil {
		t.Fatal(err)
	}
	if _, err := unit.CreateDomain("nic1", nicDev2); err != nil {
		t.Fatal(err)
	}
	mp := dma.NewMapper(m, unit)
	k := kexec.NewKernel(m, 21)
	ns, err := New(Config{Mem: m, Mapper: mp, Kernel: k, Clock: clk, Forwarding: forwarding})
	if err != nil {
		t.Fatal(err)
	}
	return &world{ns: ns, m: m, unit: unit, mp: mp, bus: dma.NewBus(m, unit), clk: clk, k: k}
}

func (w *world) addNIC(t *testing.T, dev iommu.DeviceID, model DriverModel, cpu int) *NIC {
	t.Helper()
	n, err := w.ns.AddNIC(dev, model, cpu)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.FillRX(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSharedInfoAlwaysOnDataPage(t *testing.T) {
	// §5.1: skb_shared_info is always allocated as part of the data buffer,
	// hence always mapped with it.
	w := newWorld(t, iommu.Strict, false)
	s, err := w.ns.AllocSKB(0, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if s.End <= s.Head || s.End-s.Head > layout.Addr(TruesizeFor(2048)) {
		t.Errorf("shared info not inside data buffer: head %#x end %#x", uint64(s.Head), uint64(s.End))
	}
	headPFN, _ := w.m.Layout().KVAToPFN(s.Head)
	siPFN, _ := w.m.Layout().KVAToPFN(s.End)
	if siPFN-headPFN > 1 {
		t.Errorf("shared info suspiciously far from data: PFN %d vs %d", headPFN, siPFN)
	}
	if err := w.ns.ReleaseSKB(s); err != nil {
		t.Fatal(err)
	}
}

func TestSharedInfoAccessors(t *testing.T) {
	w := newWorld(t, iommu.Strict, false)
	s, _ := w.ns.AllocSKB(0, 2048)
	nr, err := w.ns.NrFrags(s)
	if err != nil || nr != 0 {
		t.Fatalf("fresh NrFrags = %d, %v", nr, err)
	}
	darg, err := w.ns.DestructorArg(s)
	if err != nil || darg != 0 {
		t.Fatalf("fresh DestructorArg = %#x, %v", uint64(darg), err)
	}
	// Add a frag backed by a page_frag chunk.
	chunk, _ := w.m.Frag.Alloc(0, 512, 0)
	if err := w.m.Memset(chunk, 0x7a, 512); err != nil {
		t.Fatal(err)
	}
	if err := w.ns.AddFrag(s, chunk, 512); err != nil {
		t.Fatal(err)
	}
	nr, _ = w.ns.NrFrags(s)
	if nr != 1 {
		t.Fatalf("NrFrags = %d", nr)
	}
	f, err := w.ns.Frag(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if layout.Classify(f.PagePtr) != layout.RegionVmemmap {
		t.Errorf("frag page pointer %#x is not a vmemmap address", uint64(f.PagePtr))
	}
	kva, err := w.ns.FragKVA(f)
	if err != nil || kva != chunk {
		t.Fatalf("FragKVA = %#x, %v; want %#x", uint64(kva), err, uint64(chunk))
	}
	if f.Len != 512 {
		t.Errorf("frag len = %d", f.Len)
	}
	if _, err := w.ns.Frag(s, MaxFrags); err == nil {
		t.Error("out-of-range frag index accepted")
	}
	if err := w.m.Frag.Free(0, chunk); err != nil {
		t.Fatal(err)
	}
	if err := w.ns.ReleaseSKB(s); err != nil {
		t.Fatal(err)
	}
}

func TestMaxFragsEnforced(t *testing.T) {
	w := newWorld(t, iommu.Strict, false)
	s, _ := w.ns.AllocSKB(0, 2048)
	for i := 0; i < MaxFrags; i++ {
		c, err := w.m.Frag.Alloc(0, 64, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.ns.AddFrag(s, c, 64); err != nil {
			t.Fatal(err)
		}
		if err := w.m.Frag.Free(0, c); err != nil {
			t.Fatal(err)
		}
	}
	c, _ := w.m.Frag.Alloc(0, 64, 0)
	if err := w.ns.AddFrag(s, c, 64); err == nil {
		t.Error("frag beyond MaxFrags accepted")
	}
	if err := w.ns.ReleaseSKB(s); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSKBPlacesSharedInfoInsideBuffer(t *testing.T) {
	w := newWorld(t, iommu.Strict, false)
	buf, _ := w.m.Frag.Alloc(0, 2048, 64)
	s, err := w.ns.BuildSKB(buf, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if s.End < buf || s.End+SharedInfoSize > buf+2048+64 {
		t.Errorf("shared info outside buffer: buf %#x end %#x", uint64(buf), uint64(s.End))
	}
	if _, err := w.ns.BuildSKB(buf, SharedInfoSize); err == nil {
		t.Error("undersized build_skb accepted")
	}
	if err := w.m.Frag.Free(0, buf); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseInvokesUbufCallback(t *testing.T) {
	// Fig. 4(d): when the sk_buff is released, the destructor_arg callback
	// is invoked with the ubuf_info address.
	w := newWorld(t, iommu.Strict, false)
	s, _ := w.ns.AllocSKB(0, 2048)
	if _, err := w.ns.RegisterZerocopyUbuf(0, s); err != nil {
		t.Fatal(err)
	}
	darg, _ := w.ns.DestructorArg(s)
	if darg == 0 {
		t.Fatal("destructor_arg not set")
	}
	if err := w.ns.ReleaseSKB(s); err != nil {
		t.Fatal(err)
	}
	if w.k.Invocations["sock_zerocopy_callback"] != 1 {
		t.Errorf("callback invocations = %v", w.k.Invocations)
	}
	// The callback freed the ubuf_info itself.
	if _, err := w.m.Slab.SizeOf(darg); err == nil {
		t.Error("ubuf_info not freed by callback")
	}
	if err := w.ns.ReleaseSKB(s); err == nil {
		t.Error("double release accepted")
	}
}

func TestRXRingFillMapsWholeBuffers(t *testing.T) {
	w := newWorld(t, iommu.Strict, false)
	n := w.addNIC(t, nicDev, DriverI40E, 0)
	ring := n.RXRing()
	if len(ring) != DriverI40E.RingSize {
		t.Fatalf("ring size %d", len(ring))
	}
	for i, d := range ring {
		if !d.Ready || d.IOVA == 0 || d.Data == 0 {
			t.Fatalf("slot %d not filled: %+v", i, d)
		}
	}
	// Successive descriptors come from the same page_frag regions: with
	// 2048+shared-info truesize, many consecutive buffers share pages with
	// their neighbours' shared info (§5.2.2 path iii).
	samePage := 0
	for i := 1; i < len(ring); i++ {
		a, _ := w.m.Layout().KVAToPFN(ring[i-1].Data)
		b, _ := w.m.Layout().KVAToPFN(ring[i].Data + layout.Addr(TruesizeFor(ring[i].Cap)) - 1)
		if a == b {
			samePage++
		}
	}
	if samePage == 0 {
		t.Error("no RX buffers share pages; type (c) co-location lost")
	}
}

func TestRXDeliveryUDP(t *testing.T) {
	w := newWorld(t, iommu.Strict, false)
	n := w.addNIC(t, nicDev, DriverI40E, 0)
	var delivered []byte
	w.ns.OnDeliver(func(s *SKB) error {
		var err error
		delivered, err = w.ns.PayloadBytes(s)
		return err
	})
	// The device writes a packet into slot 0.
	payload := []byte("hello sub-page world")
	d := n.RXRing()[0]
	if err := w.bus.Write(nicDev, d.IOVA, payload); err != nil {
		t.Fatal(err)
	}
	if err := n.ReceiveOn(0, uint32(len(payload)), ProtoUDP, 7); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(delivered[:len(payload)], payload) {
		t.Errorf("delivered %q", delivered)
	}
	if w.ns.Stats().RXPackets != 1 {
		t.Errorf("RXPackets = %d", w.ns.Stats().RXPackets)
	}
	// Slot consumed.
	if n.RXRing()[0].Ready {
		t.Error("slot still ready after receive")
	}
	if err := n.ReceiveOn(0, 10, ProtoUDP, 7); err == nil {
		t.Error("receive on consumed slot accepted")
	}
}

func TestGROAggregatesTCPIntoFrags(t *testing.T) {
	// §5.5: GRO converts linear same-flow TCP segments into one skb with
	// frags, conserving payload bytes.
	w := newWorld(t, iommu.Strict, false)
	n := w.addNIC(t, nicDev, DriverI40E, 0)
	var got []byte
	var fragCount uint16
	w.ns.OnDeliver(func(s *SKB) error {
		var err error
		got, err = w.ns.PayloadBytes(s)
		if err != nil {
			return err
		}
		fragCount, err = w.ns.NrFrags(s)
		return err
	})
	var want []byte
	const segs = GROFlushBudget
	for i := 0; i < segs; i++ {
		seg := bytes.Repeat([]byte{byte('a' + i)}, 100)
		want = append(want, seg...)
		d := n.RXRing()[i]
		if err := w.bus.Write(nicDev, d.IOVA, seg); err != nil {
			t.Fatal(err)
		}
		if err := n.ReceiveOn(i, 100, ProtoTCP, 42); err != nil {
			t.Fatal(err)
		}
	}
	if got == nil {
		t.Fatal("aggregate not flushed at budget")
	}
	if !bytes.Equal(got, want) {
		t.Errorf("payload mangled: got %d bytes, want %d", len(got), len(want))
	}
	if fragCount != segs-1 {
		t.Errorf("frags = %d, want %d", fragCount, segs-1)
	}
	if w.ns.Stats().GROMerged != segs-1 {
		t.Errorf("GROMerged = %d", w.ns.Stats().GROMerged)
	}
}

func TestGROFlushPartial(t *testing.T) {
	w := newWorld(t, iommu.Strict, false)
	n := w.addNIC(t, nicDev, DriverI40E, 0)
	deliveries := 0
	w.ns.OnDeliver(func(s *SKB) error { deliveries++; return nil })
	for i := 0; i < 3; i++ {
		d := n.RXRing()[i]
		if err := w.bus.Write(nicDev, d.IOVA, []byte("seg")); err != nil {
			t.Fatal(err)
		}
		if err := n.ReceiveOn(i, 3, ProtoTCP, 9); err != nil {
			t.Fatal(err)
		}
	}
	if w.ns.HeldFlows() != 1 {
		t.Fatalf("HeldFlows = %d", w.ns.HeldFlows())
	}
	if err := w.ns.FlushGRO(n); err != nil {
		t.Fatal(err)
	}
	if deliveries != 1 || w.ns.HeldFlows() != 0 {
		t.Errorf("deliveries = %d, held = %d", deliveries, w.ns.HeldFlows())
	}
}

func TestTransmitMapsLinearAndFrags(t *testing.T) {
	w := newWorld(t, iommu.Strict, false)
	n := w.addNIC(t, nicDev, DriverI40E, 0)
	payload := bytes.Repeat([]byte{0x55}, 5000)
	s, err := w.ns.BuildTXPacket(0, payload, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Transmit(s); err != nil {
		t.Fatal(err)
	}
	if n.PendingTX() != 1 {
		t.Fatalf("PendingTX = %d", n.PendingTX())
	}
	desc := n.TXRing()[0]
	if len(desc.FragVAs) != 3 { // 5000 bytes / 2048 chunk
		t.Fatalf("frag mappings = %d", len(desc.FragVAs))
	}
	// The device can read the payload back through its TX mappings.
	buf := make([]byte, 2048)
	if err := w.bus.Read(nicDev, desc.FragVAs[0], buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload[:2048]) {
		t.Error("device read of TX frag mismatched")
	}
	// ...and crucially the shared info of the linear buffer, which sits on
	// the same mapped page (Fig. 8): read the frag's struct page pointer.
	siOff := uint64(s.End - layout.PageAlignDown(s.Data))
	pageVA := desc.LinearVA &^ iommu.IOVA(layout.PageMask)
	ptr, err := w.bus.ReadU64(nicDev, pageVA+iommu.IOVA(siOff)+SharedInfoFragsOff)
	if err != nil {
		t.Fatalf("device cannot read TX shared info: %v", err)
	}
	if layout.Classify(layout.Addr(ptr)) != layout.RegionVmemmap {
		t.Errorf("leaked frag pointer %#x not vmemmap", ptr)
	}
	// Completion path releases the TX mappings (RX ring mappings remain).
	liveWithTX := w.mp.Live()
	if err := n.CompleteTX(0); err != nil {
		t.Fatal(err)
	}
	if err := n.ReapCompletions(); err != nil {
		t.Fatal(err)
	}
	if n.PendingTX() != 0 {
		t.Errorf("PendingTX = %d", n.PendingTX())
	}
	if got := w.mp.Live(); got != liveWithTX-4 { // linear + 3 frags
		t.Errorf("live mappings = %d, want %d", got, liveWithTX-4)
	}
}

func TestTXWatchdogTimeout(t *testing.T) {
	w := newWorld(t, iommu.Strict, false)
	n := w.addNIC(t, nicDev, DriverI40E, 0)
	s, _ := w.ns.BuildTXPacket(0, []byte("slow"), 1)
	if err := n.Transmit(s); err != nil {
		t.Fatal(err)
	}
	if err := n.ReapCompletions(); err != nil {
		t.Fatal(err)
	}
	if n.PendingTX() != 1 {
		t.Fatal("uncompleted TX reaped early")
	}
	w.clk.Advance(TXTimeout + 1)
	if err := n.ReapCompletions(); err != nil {
		t.Fatal(err)
	}
	if n.PendingTX() != 0 {
		t.Error("watchdog did not flush timed-out TX")
	}
	if w.ns.Stats().TXTimeouts != 1 {
		t.Errorf("TXTimeouts = %d", w.ns.Stats().TXTimeouts)
	}
}

func TestEchoServiceRoundTrip(t *testing.T) {
	w := newWorld(t, iommu.Strict, false)
	n := w.addNIC(t, nicDev, DriverI40E, 0)
	echo := NewEchoService(w.ns, n)
	payload := bytes.Repeat([]byte{0xEC}, 1000)
	d := n.RXRing()[0]
	if err := w.bus.Write(nicDev, d.IOVA, payload); err != nil {
		t.Fatal(err)
	}
	if err := n.ReceiveOn(0, uint32(len(payload)), ProtoUDP, 5); err != nil {
		t.Fatal(err)
	}
	if echo.Echoed != 1 {
		t.Fatalf("Echoed = %d", echo.Echoed)
	}
	if n.PendingTX() != 1 {
		t.Fatalf("PendingTX = %d", n.PendingTX())
	}
	// The echoed bytes are device-readable via the TX frag mapping.
	desc := n.TXRing()[0]
	if len(desc.FragVAs) == 0 {
		t.Fatal("echo reply has no frags")
	}
	buf := make([]byte, 1000)
	if err := w.bus.Read(nicDev, desc.FragVAs[0], buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Error("echoed payload mismatch")
	}
}

func TestForwardingPath(t *testing.T) {
	// §5.5: with forwarding enabled, an RX packet flagged for another host
	// leaves through the other port as a TX packet.
	w := newWorld(t, iommu.Strict, true)
	in := w.addNIC(t, nicDev, DriverI40E, 0)
	out := w.addNIC(t, nicDev2, DriverI40E, 1)
	d := in.RXRing()[0]
	if err := w.bus.Write(nicDev, d.IOVA, []byte("transit")); err != nil {
		t.Fatal(err)
	}
	if err := in.ReceiveOn(0, 7, ProtoUDP, forwardFlowBit|3); err != nil {
		t.Fatal(err)
	}
	if out.PendingTX() != 1 {
		t.Fatalf("forwarded packet not on egress ring: %d", out.PendingTX())
	}
	if w.ns.Stats().Forwarded != 1 {
		t.Errorf("Forwarded = %d", w.ns.Stats().Forwarded)
	}
	// Forwarding disabled: same packet is delivered locally instead.
	w2 := newWorld(t, iommu.Strict, false)
	in2 := w2.addNIC(t, nicDev, DriverI40E, 0)
	local := 0
	w2.ns.OnDeliver(func(s *SKB) error { local++; return nil })
	d2 := in2.RXRing()[0]
	if err := w2.bus.Write(nicDev, d2.IOVA, []byte("transit")); err != nil {
		t.Fatal(err)
	}
	if err := in2.ReceiveOn(0, 7, ProtoUDP, forwardFlowBit|3); err != nil {
		t.Fatal(err)
	}
	if local != 1 {
		t.Error("packet not delivered locally with forwarding off")
	}
}

func TestDriverOrderingWindowI40E(t *testing.T) {
	// Fig. 7(i): with the i40e ordering, the device retains WRITE access to
	// the buffer page at the moment shared info is initialized (strict mode,
	// no stale TLB needed). We detect this by having the driver model
	// process the packet and asserting that the *page table* still maps the
	// buffer during build in one model and not the other.
	for _, tc := range []struct {
		model      DriverModel
		wantMapped bool
	}{
		{DriverI40E, true},
		{DriverCorrect, false},
	} {
		w := newWorld(t, iommu.Strict, false)
		n := w.addNIC(t, nicDev, tc.model, 0)
		d := n.RXRing()[0]
		if err := w.bus.Write(nicDev, d.IOVA, []byte("pkt")); err != nil {
			t.Fatal(err)
		}
		if err := n.ReceiveOn(0, 3, ProtoUDP, 1); err != nil {
			t.Fatal(err)
		}
		if n.LastRX.BuildWhileMapped != tc.wantMapped {
			t.Errorf("%s: shared info built while mapped = %v, want %v", tc.model.Name, n.LastRX.BuildWhileMapped, tc.wantMapped)
		}
	}
}

func TestKmallocSKB(t *testing.T) {
	w := newWorld(t, iommu.Strict, false)
	s, err := w.ns.KmallocSKB(0, 512, "ctrl_path")
	if err != nil {
		t.Fatal(err)
	}
	if s.Source != DataKmalloc {
		t.Error("source not kmalloc")
	}
	if err := w.ns.ReleaseSKB(s); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsIncompleteConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestAddNICRejectsZeroRing(t *testing.T) {
	w := newWorld(t, iommu.Strict, false)
	if _, err := w.ns.AddNIC(nicDev, DriverModel{Name: "bad"}, 0); err == nil {
		t.Error("zero ring accepted")
	}
}
