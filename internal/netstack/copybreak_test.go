package netstack

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"dmafault/internal/iommu"
)

// DriverCopybreak models the legacy path: the driver allocates a fresh skb
// per packet and copies the payload out of the ring buffer (no build_skb).
var driverCopybreak = DriverModel{Name: "8139too", RXBufferSize: 2048, UnmapBeforeBuild: true, UseBuildSKB: false, RingSize: 64}

func TestCopybreakRXPath(t *testing.T) {
	w := newWorld(t, iommu.Strict, false)
	n := w.addNIC(t, nicDev, driverCopybreak, 0)
	var got []byte
	w.ns.OnDeliver(func(s *SKB) error {
		var err error
		got, err = w.ns.PayloadBytes(s)
		// The delivered skb's buffer must NOT be the ring buffer: it was
		// copied out.
		if s.Head == n.LastRX.Desc.Data {
			t.Error("copybreak delivered the ring buffer itself")
		}
		return err
	})
	payload := bytes.Repeat([]byte{0x42}, 777)
	d := n.RXRing()[0]
	if err := w.bus.Write(nicDev, d.IOVA, payload); err != nil {
		t.Fatal(err)
	}
	if err := n.ReceiveOn(0, uint32(len(payload)), ProtoUDP, 9); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(payload)], payload) {
		t.Errorf("copybreak payload mismatch")
	}
	// The ring buffer itself was freed back to page_frag.
	if err := n.FillRX(); err != nil {
		t.Fatal(err)
	}
}

// Property: GRO + delivery conserves payload bytes for arbitrary segment
// splits of a message.
func TestPropertyGROConservesPayload(t *testing.T) {
	f := func(seed int64, nSegsRaw uint8) bool {
		nSegs := int(nSegsRaw)%(GROFlushBudget-1) + 1
		rng := rand.New(rand.NewSource(seed))
		w := newWorld(t, iommu.Strict, false)
		n := w.addNIC(t, nicDev, DriverI40E, 0)
		var want, got []byte
		w.ns.OnDeliver(func(s *SKB) error {
			b, err := w.ns.PayloadBytes(s)
			got = append(got, b...)
			return err
		})
		for i := 0; i < nSegs; i++ {
			seg := make([]byte, rng.Intn(900)+1)
			rng.Read(seg)
			want = append(want, seg...)
			d := n.RXRing()[i]
			if err := w.bus.Write(nicDev, d.IOVA, seg); err != nil {
				return false
			}
			if err := n.ReceiveOn(i, uint32(len(seg)), ProtoTCP, 1234); err != nil {
				return false
			}
		}
		if err := w.ns.FlushGRO(n); err != nil {
			return false
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: forwarding conserves packets — everything received for a foreign
// flow leaves on the egress ring.
func TestPropertyForwardingConservesPackets(t *testing.T) {
	f := func(count uint8) bool {
		n := int(count)%20 + 1
		w := newWorld(t, iommu.Strict, true)
		in := w.addNIC(t, nicDev, DriverI40E, 0)
		out := w.addNIC(t, nicDev2, DriverI40E, 1)
		for i := 0; i < n; i++ {
			d := in.RXRing()[i]
			if err := w.bus.Write(nicDev, d.IOVA, []byte("fwd")); err != nil {
				return false
			}
			if err := in.ReceiveOn(i, 3, ProtoUDP, forwardFlowBit|uint32(i)); err != nil {
				return false
			}
		}
		return out.PendingTX() == n && w.ns.Stats().Forwarded == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
