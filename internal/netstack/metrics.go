package netstack

import (
	"strconv"

	"dmafault/internal/metrics"
)

// Stack implements metrics.Source: packet-path counters plus per-NIC ring
// occupancy gauges (labeled by requester ID and driver model) — the queue
// view a RingFlood campaign saturates.
//
// Collection reads plain counters; gather only while the machine is
// quiescent (see the metrics package comment).

// Describe implements metrics.Source.
func (ns *Stack) Describe() []metrics.Desc {
	return []metrics.Desc{
		{Name: "netstack_skbs_allocated_total", Help: "sk_buffs allocated (netdev_alloc_skb path).", Kind: metrics.KindCounter},
		{Name: "netstack_skbs_built_total", Help: "sk_buffs wrapped around ring buffers (build_skb path).", Kind: metrics.KindCounter},
		{Name: "netstack_skbs_released_total", Help: "sk_buffs released.", Kind: metrics.KindCounter},
		{Name: "netstack_rx_packets_total", Help: "Packets entering the stack from driver RX.", Kind: metrics.KindCounter},
		{Name: "netstack_tx_packets_total", Help: "Packets transmitted.", Kind: metrics.KindCounter},
		{Name: "netstack_forwarded_total", Help: "Packets routed out the egress port (§5.5).", Kind: metrics.KindCounter},
		{Name: "netstack_gro_merged_total", Help: "Packets merged into GRO aggregates.", Kind: metrics.KindCounter},
		{Name: "netstack_gro_flushed_total", Help: "GRO aggregates flushed up the stack.", Kind: metrics.KindCounter},
		{Name: "netstack_frag_release_errors_total", Help: "page_frag releases that failed.", Kind: metrics.KindCounter},
		{Name: "netstack_tx_timeouts_total", Help: "Transmit-completion watchdog expirations (§5.4).", Kind: metrics.KindCounter},
		{Name: "netstack_nic_rx_ready", Help: "RX descriptors posted to hardware, per NIC.", Kind: metrics.KindGauge},
		{Name: "netstack_nic_rx_ring_size", Help: "RX ring capacity, per NIC.", Kind: metrics.KindGauge},
		{Name: "netstack_nic_tx_inflight", Help: "TX descriptors awaiting completion, per NIC.", Kind: metrics.KindGauge},
	}
}

// Collect implements metrics.Source.
func (ns *Stack) Collect(emit func(name string, s metrics.Sample)) {
	st := ns.stats
	emit("netstack_skbs_allocated_total", metrics.Sample{Value: float64(st.SKBsAllocated)})
	emit("netstack_skbs_built_total", metrics.Sample{Value: float64(st.SKBsBuilt)})
	emit("netstack_skbs_released_total", metrics.Sample{Value: float64(st.SKBsReleased)})
	emit("netstack_rx_packets_total", metrics.Sample{Value: float64(st.RXPackets)})
	emit("netstack_tx_packets_total", metrics.Sample{Value: float64(st.TXPackets)})
	emit("netstack_forwarded_total", metrics.Sample{Value: float64(st.Forwarded)})
	emit("netstack_gro_merged_total", metrics.Sample{Value: float64(st.GROMerged)})
	emit("netstack_gro_flushed_total", metrics.Sample{Value: float64(st.GROFlushed)})
	emit("netstack_frag_release_errors_total", metrics.Sample{Value: float64(st.FragReleaseErrors)})
	emit("netstack_tx_timeouts_total", metrics.Sample{Value: float64(st.TXTimeouts)})
	for _, n := range ns.nics {
		labels := []metrics.Label{
			{Key: "dev", Value: strconv.Itoa(int(n.Dev))},
			{Key: "driver", Value: n.Model.Name},
		}
		ready := 0
		for i := range n.rx {
			if n.rx[i].Ready {
				ready++
			}
		}
		inflight := 0
		for i := range n.tx {
			if !n.tx[i].Completed {
				inflight++
			}
		}
		emit("netstack_nic_rx_ready", metrics.Sample{Labels: labels, Value: float64(ready)})
		emit("netstack_nic_rx_ring_size", metrics.Sample{Labels: labels, Value: float64(len(n.rx))})
		emit("netstack_nic_tx_inflight", metrics.Sample{Labels: labels, Value: float64(inflight)})
	}
}
