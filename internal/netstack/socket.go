package netstack

import (
	"dmafault/internal/dma"
	"dmafault/internal/iommu"
	"dmafault/internal/layout"
)

// Socket modeling. What matters for the paper is a single fact (§2.4): since
// Linux 2.6.24 every network object — especially sockets — carries a pointer
// to its network namespace, and the global init_net namespace is always
// defined. Socket objects are kmalloc'd, so they share slab pages with any
// same-class kmalloc'd I/O buffer (type (d) co-location), and the namespace
// pointer leaks to whatever device has such a page mapped.
const (
	// SockSize is the modeled struct sock allocation size (512-byte class).
	SockSize = 512
	// SockNetNSOff is the offset of sk->__sk_common.skc_net within the
	// object: where &init_net is stored.
	SockNetNSOff = 48
)

// Socket is a minimal kernel socket object.
type Socket struct {
	Addr layout.Addr
	ns   *Stack
}

// AllocSocket kmallocs a socket object and writes its namespace pointer —
// the init_net leak source of §2.4.
func (ns *Stack) AllocSocket(cpu int, site string) (*Socket, error) {
	a, err := ns.mem.Slab.Kzalloc(cpu, SockSize, site)
	if err != nil {
		return nil, err
	}
	initNet, err := ns.mem.Layout().SymbolKVA("init_net")
	if err != nil {
		return nil, err
	}
	if err := ns.mem.WriteU64(a+SockNetNSOff, uint64(initNet)); err != nil {
		return nil, err
	}
	return &Socket{Addr: a, ns: ns}, nil
}

// Close frees the socket object.
func (s *Socket) Close() error { return s.ns.mem.Slab.Kfree(s.Addr) }

// ControlBuffer is a long-lived kmalloc'd buffer a driver keeps DMA-mapped
// BIDIRECTIONAL for device statistics/admin queues — standard practice, and
// exactly the "remaining 30% of DMA-map operations executed on allocated
// objects" of §4.2: the object presumably shares its slab page with
// unrelated kernel objects.
type ControlBuffer struct {
	KVA  layout.Addr
	IOVA iommu.IOVA
	Size uint64
}

// MapControlBuffer allocates and persistently maps the NIC's control buffer.
func (n *NIC) MapControlBuffer() (*ControlBuffer, error) {
	kva, err := n.ns.mem.Slab.Kzalloc(n.CPU, SockSize, "nic_admin_queue")
	if err != nil {
		return nil, err
	}
	va, err := n.ns.mapper.MapSingle(n.Dev, kva, SockSize, dma.Bidirectional)
	if err != nil {
		return nil, err
	}
	return &ControlBuffer{KVA: kva, IOVA: va, Size: SockSize}, nil
}

// UnmapControlBuffer tears the control buffer down.
func (n *NIC) UnmapControlBuffer(cb *ControlBuffer) error {
	if err := n.ns.mapper.UnmapSingle(n.Dev, cb.IOVA, cb.Size, dma.Bidirectional); err != nil {
		return err
	}
	return n.ns.mem.Slab.Kfree(cb.KVA)
}
