package netstack

import (
	"testing"

	"dmafault/internal/iommu"
	"dmafault/internal/layout"
	"dmafault/internal/mem"
)

func TestAllocSocketWritesNamespacePointer(t *testing.T) {
	w := newWorld(t, iommu.Strict, false)
	s, err := w.ns.AllocSocket(0, "sock_alloc_inode+0x4f")
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.m.ReadU64(s.Addr + SockNetNSOff)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := w.m.Layout().SymbolKVA("init_net")
	if layout.Addr(got) != want {
		t.Errorf("netns pointer = %#x, want %#x (init_net)", got, uint64(want))
	}
	// The socket sits in the 512 class.
	size, err := w.m.Slab.SizeOf(s.Addr)
	if err != nil || size != SockSize {
		t.Errorf("SizeOf = %d, %v", size, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err == nil {
		t.Error("double close accepted")
	}
}

func TestControlBufferLifecycle(t *testing.T) {
	w := newWorld(t, iommu.Strict, false)
	n, err := w.ns.AddNIC(nicDev, DriverI40E, 0)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := n.MapControlBuffer()
	if err != nil {
		t.Fatal(err)
	}
	if cb.Size != SockSize {
		t.Errorf("Size = %d", cb.Size)
	}
	pfn, _ := w.m.Layout().KVAToPFN(cb.KVA)
	pi, _ := w.m.Page(pfn)
	if !pi.DMAMapped() || !pi.DMAWritable {
		t.Error("control buffer page not mapped writable")
	}
	// The device can read AND write it (BIDIRECTIONAL admin queue).
	if err := w.bus.WriteU64(nicDev, cb.IOVA, 0x11); err != nil {
		t.Fatal(err)
	}
	if _, err := w.bus.ReadU64(nicDev, cb.IOVA); err != nil {
		t.Fatal(err)
	}
	if err := n.UnmapControlBuffer(cb); err != nil {
		t.Fatal(err)
	}
	if pi.DMAMapped() {
		t.Error("page still mapped after teardown")
	}
	if _, err := w.m.Slab.SizeOf(cb.KVA); err == nil {
		t.Error("control buffer not freed")
	}
}

func TestStackAccessors(t *testing.T) {
	w := newWorld(t, iommu.Strict, false)
	if w.ns.Mem() != w.m || w.ns.Mapper() != w.mp || w.ns.Kernel() != w.k || w.ns.Clock() != w.clk {
		t.Error("accessors do not round-trip construction inputs")
	}
	n, err := w.ns.AddNIC(nicDev, DriverI40E, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.ns.NICs()) != 1 || w.ns.NICs()[0] != n {
		t.Error("NICs() wrong")
	}
}

func TestFillRXOutOfMemory(t *testing.T) {
	// A tiny machine cannot fill an mlx5-LRO ring: FillRX must error, not
	// wedge.
	l := layout.New(layout.Config{KASLR: true, Seed: 3, PhysBytes: 16 << 20})
	m, err := mem.New(mem.Config{Layout: l, CPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := newWorld(t, iommu.Strict, false)
	_ = m
	nBig, err := w.ns.AddNIC(nicDev, DriverMlx5LRO, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 512 × 64 KiB = 32 MiB exceeds the 64 MiB world's free memory after
	// everything else? Fill as far as possible; exhaust deliberately by
	// repeating fills with consumed slots.
	if err := nBig.FillRX(); err != nil {
		// Acceptable: the error path is exercised.
		return
	}
	// Consume and refill until OOM or a bounded number of rounds.
	for round := 0; round < 64; round++ {
		for i := range nBig.RXRing() {
			nBig.RXRing()[i].Ready = false
		}
		if err := nBig.FillRX(); err != nil {
			return // OOM path hit
		}
	}
	t.Log("no OOM reached; fill path still exercised")
}

func TestReleaseErrors(t *testing.T) {
	w := newWorld(t, iommu.Strict, false)
	// destructor_arg pointing at unmapped memory: callback load fails but
	// release must not crash the world.
	s, _ := w.ns.AllocSKB(0, 2048)
	if err := w.m.WriteU64(s.SharedInfo()+SharedInfoDestructorArgOff, uint64(layout.VmallocStart)); err != nil {
		t.Fatal(err)
	}
	if err := w.ns.ReleaseSKB(s); err == nil {
		t.Error("release with wild destructor_arg reported no error")
	}
	// Corrupt frag pointer: counted, not fatal.
	s2, _ := w.ns.AllocSKB(0, 2048)
	if err := w.m.WriteU16(s2.SharedInfo()+SharedInfoNrFragsOff, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.m.WriteU64(s2.SharedInfo()+SharedInfoFragsOff, 0xdead); err != nil {
		t.Fatal(err)
	}
	if err := w.ns.ReleaseSKB(s2); err != nil {
		t.Fatalf("corrupt frag must be tolerated: %v", err)
	}
	if w.ns.Stats().FragReleaseErrors != 1 {
		t.Errorf("FragReleaseErrors = %d", w.ns.Stats().FragReleaseErrors)
	}
}

func TestRegisterZerocopyErrors(t *testing.T) {
	w := newWorld(t, iommu.Strict, false)
	s, _ := w.ns.AllocSKB(0, 2048)
	ubuf, err := w.ns.RegisterZerocopyUbuf(0, s)
	if err != nil {
		t.Fatal(err)
	}
	darg, _ := w.ns.DestructorArg(s)
	if darg != ubuf {
		t.Errorf("destructor_arg = %#x, want %#x", uint64(darg), uint64(ubuf))
	}
	// tx_flags got the zerocopy bit.
	flags, _ := w.m.ReadU16(s.SharedInfo() + SharedInfoTxFlagsOff)
	if flags&TxFlagZerocopy == 0 {
		t.Error("zerocopy flag not set")
	}
	if err := w.ns.ReleaseSKB(s); err != nil {
		t.Fatal(err)
	}
}
