package netstack

import "fmt"

// EchoService models the §5.4 coercion targets — "a proxy server, a
// key/value store, a streaming service": any user-space process that echoes
// received bytes back to the sender. The echoed payload travels the TCP
// sendmsg path, which places it in page-sized chunks referenced by
// skb_shared_info.frags[] — handing a malicious NIC the (struct page, offset)
// of every page holding its own bytes.
type EchoService struct {
	ns   *Stack
	port *NIC
	// Echoed counts serviced requests.
	Echoed int
}

// NewEchoService attaches an echo server replying through the given port.
func NewEchoService(ns *Stack, port *NIC) *EchoService {
	e := &EchoService{ns: ns, port: port}
	ns.OnDeliver(e.handle)
	return e
}

// handle receives a delivered packet and transmits the echo reply.
func (e *EchoService) handle(req *SKB) error {
	payload, err := e.ns.PayloadBytes(req)
	if err != nil {
		return err
	}
	reply, err := e.ns.BuildTXPacket(e.port.CPU, payload, req.FlowID)
	if err != nil {
		return err
	}
	e.Echoed++
	return e.port.Transmit(reply)
}

// PayloadBytes copies out an skb's full payload (linear + frags).
func (ns *Stack) PayloadBytes(s *SKB) ([]byte, error) {
	out := make([]byte, 0, s.TotalLen())
	lin := make([]byte, s.Len)
	if err := ns.mem.Read(s.Data, lin); err != nil {
		return nil, err
	}
	out = append(out, lin...)
	nr, err := ns.NrFrags(s)
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(nr); i++ {
		f, err := ns.Frag(s, i)
		if err != nil {
			return nil, err
		}
		kva, err := ns.FragKVA(f)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, f.Len)
		if err := ns.mem.Read(kva, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
	}
	return out, nil
}

// txChunk is how much payload TCP places per frag (one page_frag slice).
const txChunk = 2048

// BuildTXPacket models tcp_sendmsg: a small linear header area plus the
// payload chunked into page_frag pages referenced as frags.
func (ns *Stack) BuildTXPacket(cpu int, payload []byte, flow uint32) (*SKB, error) {
	s, err := ns.AllocSKB(cpu, 128) // linear headroom for headers
	if err != nil {
		return nil, err
	}
	s.Protocol = ProtoTCP
	s.FlowID = flow
	s.Len = 0 // headers only; payload rides in frags
	// MSG_ZEROCOPY-style send: the completion record (ubuf_info) is
	// registered and destructor_arg set — a kmalloc KVA sitting in shared
	// info, readable by the device on the TX page (a §5.4 leak source).
	if _, err := ns.RegisterZerocopyUbuf(cpu, s); err != nil {
		return nil, err
	}
	for off := 0; off < len(payload); off += txChunk {
		end := off + txChunk
		if end > len(payload) {
			end = len(payload)
		}
		chunk := payload[off:end]
		frag, err := ns.mem.Frag.Alloc(cpu, uint64(len(chunk)), 64)
		if err != nil {
			return nil, err
		}
		if err := ns.mem.Write(frag, chunk); err != nil {
			return nil, err
		}
		if err := ns.AddFrag(s, frag, uint32(len(chunk))); err != nil {
			return nil, err
		}
		// The frag reference (taken by AddFrag) now owns the page; drop the
		// allocation's own reference, as tcp_sendmsg does.
		if err := ns.mem.Frag.Free(cpu, frag); err != nil {
			return nil, err
		}
	}
	if len(payload) == 0 {
		return nil, fmt.Errorf("netstack: empty echo payload")
	}
	return s, nil
}
