package fuzz

import (
	"context"

	"dmafault/internal/campaign"
)

// Minimization shrinks each corpus entry to a smaller spec that still
// reproduces its signature, by greedily resetting fields to their zero
// values in a fixed order (most incidental knobs first) and keeping each
// reset only if a re-execution yields the identical signature. Because the
// engine is deterministic, the entry's recorded discovery signature is the
// baseline — no re-run of the original spec is needed. Seed and Kind are
// never reduced: the seed is what makes the spec reproduce at all, and the
// kind names the behavior being preserved.

// reductions are tried in order; each resets one field to its zero value
// (which Normalize maps back to the documented default, so a reduced spec
// is always still valid).
var reductions = []func(*campaign.Scenario){
	func(s *campaign.Scenario) { s.FaultSpec = "" },
	func(s *campaign.Scenario) { s.Forwarding = false },
	func(s *campaign.Scenario) { s.OutOfLineSharedInfo = false },
	func(s *campaign.Scenario) { s.NoKASLR = false },
	func(s *campaign.Scenario) { s.Queues = 0 },
	func(s *campaign.Scenario) { s.JitterPages = 0 },
	func(s *campaign.Scenario) { s.CPUs = 0 },
	func(s *campaign.Scenario) { s.MemBytes = 0 },
	func(s *campaign.Scenario) { s.Mode = "" },
	func(s *campaign.Scenario) { s.Kernel = "" },
	func(s *campaign.Scenario) { s.Driver = "" },
	func(s *campaign.Scenario) { s.SprayOrder = 0 },
	func(s *campaign.Scenario) { s.SprayBlocks = 0 },
	func(s *campaign.Scenario) { s.Trials = 0 },
	func(s *campaign.Scenario) { s.Attempts = 0 },
	func(s *campaign.Scenario) { s.Iterations = 0 },
}

// minimizeEntry runs one greedy reduction pass over e within the given
// execution budget, then persists the outcome (even when nothing shrank, so
// resumed runs do not redo the work). Returns the executions spent (cache
// hits count — the budget is about determinism, not CPU).
func minimizeEntry(ctx context.Context, cfg *Config, corpus *Corpus, e *Entry, budget int) (int, error) {
	cur := e.Scenario
	execs := 0
	for _, reduce := range reductions {
		if execs >= budget {
			break
		}
		cand := cur
		reduce(&cand)
		if cand == cur {
			continue // field already at its zero value
		}
		r, err := runOne(ctx, cfg.Cache, cand)
		if err != nil {
			return execs, err
		}
		execs++
		if Signature(r) == e.Signature {
			cur = cand
		}
	}
	if err := corpus.ReplaceMinimized(e.Key, cur); err != nil {
		return execs, err
	}
	return execs, nil
}

// runOne executes a single scenario on a one-worker engine (keeping the
// engine's panic isolation, retry, and cache semantics without any
// concurrency — minimization is always sequential for determinism).
func runOne(ctx context.Context, cache campaign.Store, s campaign.Scenario) (*campaign.Result, error) {
	var res *campaign.Result
	eng := campaign.Engine{Workers: 1, Cache: cache, OnResult: func(_ int, r *campaign.Result) { res = r }}
	if _, err := eng.RunCtx(ctx, []campaign.Scenario{s}); err != nil {
		return nil, err
	}
	return res, nil
}
