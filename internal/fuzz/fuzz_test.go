package fuzz

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmafault/internal/campaign"
)

// The acceptance bar for the whole subsystem: a seeded fuzz run produces
// byte-identical reports AND byte-identical corpus files at 1, 4, and 16
// workers, because scheduling state advances only between engine batches and
// results are consumed in input order.
func TestRunByteIdenticalAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	var wantReport, wantCorpus []byte
	for _, w := range []int{1, 4, 16} {
		path := filepath.Join(dir, "corpus-"+string(rune('0'+w/10))+string(rune('0'+w%10))+".jsonl")
		rep, err := Run(context.Background(), Config{
			Seed: 11, Workers: w, Attempts: 16, Batch: 8,
			CorpusPath: path, MinimizeBudget: 2,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		repJSON, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		corpusBytes, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if wantReport == nil {
			wantReport, wantCorpus = repJSON, corpusBytes
			if rep.Execs != 16 {
				t.Fatalf("spent %d execs, want 16", rep.Execs)
			}
			if rep.CorpusSize == 0 || rep.DistinctSignatures == 0 {
				t.Fatalf("empty corpus after run: %+v", rep)
			}
			continue
		}
		if !bytes.Equal(repJSON, wantReport) {
			t.Errorf("workers=%d: report differs from workers=1:\n%s\nvs\n%s", w, repJSON, wantReport)
		}
		if !bytes.Equal(corpusBytes, wantCorpus) {
			t.Errorf("workers=%d: corpus file differs from workers=1", w)
		}
	}
}

// Coverage guidance must buy something: at an equal execution budget the
// fuzzer discovers at least one signature the blind Mutator preset never
// reaches (the preset cannot even express the page-spray kind).
func TestRunDiscoversBeyondFuzzPreset(t *testing.T) {
	const budget = 8
	const seed = 23

	scenarios := campaign.FuzzPreset(budget, seed)
	presetSigs := map[string]bool{}
	results := make([]*campaign.Result, len(scenarios))
	eng := campaign.Engine{Workers: 4, OnResult: func(i int, r *campaign.Result) { results[i] = r }}
	if _, err := eng.RunCtx(context.Background(), scenarios); err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		presetSigs[Signature(r)] = true
	}

	rep, err := Run(context.Background(), Config{Seed: seed, Workers: 4, Attempts: budget, MinimizeBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	var beyond []string
	for _, sig := range rep.Signatures {
		if !presetSigs[sig] {
			beyond = append(beyond, sig)
		}
	}
	if len(beyond) == 0 {
		t.Fatalf("fuzzer found nothing beyond the preset at %d execs; preset had %d signatures", budget, len(presetSigs))
	}
	t.Logf("beyond preset (%d): %s", len(beyond), strings.Join(beyond, " ;; "))
}

// A minimized page-spray corpus entry must reproduce its signature from the
// persisted spec alone: reload the corpus file cold and re-execute.
func TestMinimizedPageSprayReproducesFromDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	if _, err := Run(context.Background(), Config{
		Seed: 11, Workers: 4, Attempts: 8, Batch: 8, CorpusPath: path, MinimizeBudget: 6,
	}); err != nil {
		t.Fatal(err)
	}

	loaded, err := OpenCorpus(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	var entry *Entry
	for _, e := range loaded.Entries() {
		if e.Scenario.Kind == campaign.KindPageSpray && strings.Contains(e.Signature, "spray=head") {
			entry = e
			break
		}
	}
	if entry == nil {
		t.Fatal("no page-spray head-reuse entry in the corpus")
	}
	if !entry.Minimized {
		t.Fatalf("entry %s was not minimized", entry.Key)
	}

	r, err := runOne(context.Background(), nil, entry.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	if got := Signature(r); got != entry.Signature {
		t.Fatalf("minimized spec does not reproduce:\n got %q\nwant %q", got, entry.Signature)
	}
	if r.Escalations == 0 {
		t.Fatal("reproduced page-spray entry should escalate")
	}
}

// Resuming a persisted corpus continues from it: no re-seeding round, known
// signatures stay deduplicated, and the budget goes entirely to mutants.
func TestRunResumeContinuesCorpus(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	first, err := Run(context.Background(), Config{
		Seed: 31, Workers: 4, Attempts: 8, CorpusPath: path, MinimizeBudget: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(context.Background(), Config{
		Seed: 32, Workers: 4, Attempts: 4, CorpusPath: path, Resume: true, MinimizeBudget: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.CorpusSize < first.CorpusSize {
		t.Fatalf("resume lost entries: %d -> %d", first.CorpusSize, second.CorpusSize)
	}
	if second.Novel > second.Execs {
		t.Fatalf("resumed run claims %d novel from %d execs", second.Novel, second.Execs)
	}
	for _, sig := range first.Signatures {
		if !contains(second.Signatures, sig) {
			t.Fatalf("resume dropped signature %q", sig)
		}
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func TestReportMetricsSnapshot(t *testing.T) {
	rep := &Report{Execs: 10, Rounds: 2, Novel: 3, MinimizeExecs: 5,
		CorpusSize: 4, DistinctSignatures: 4, MinimizedEntries: 2}
	snap := rep.MetricsSnapshot()
	want := map[string]float64{
		"fuzz_execs_total":          10,
		"fuzz_rounds_total":         2,
		"fuzz_novel_total":          3,
		"fuzz_minimize_execs_total": 5,
		"fuzz_corpus_entries":       4,
		"fuzz_signatures_distinct":  4,
		"fuzz_minimized_entries":    2,
	}
	got := map[string]float64{}
	for _, f := range snap.Families {
		for _, s := range f.Samples {
			got[f.Name] = s.Value
		}
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %v, want %v", name, got[name], v)
		}
	}
}
