package fuzz

import (
	"testing"

	"dmafault/internal/campaign"
	"dmafault/internal/metrics"
)

func TestSignatureBasics(t *testing.T) {
	cases := []struct {
		name string
		r    campaign.Result
		want string
	}{
		{
			name: "miss",
			r:    campaign.Result{Kind: campaign.KindRingFlood},
			want: "kind=ring-flood outcome=miss",
		},
		{
			name: "error",
			r:    campaign.Result{Kind: campaign.KindDKASAN, Err: "boom"},
			want: "kind=dkasan outcome=error",
		},
		{
			name: "panic outcome wins",
			r:    campaign.Result{Kind: campaign.KindDKASAN, Outcome: "panic"},
			want: "kind=dkasan outcome=panic",
		},
		{
			name: "escalation and window",
			r: campaign.Result{Kind: campaign.KindPoisonedTX, Success: true,
				Escalations: 2, WindowPath: "(i) driver unmap ordering"},
			want: "kind=poisoned-tx outcome=ok win=(i) driver unmap ordering esc",
		},
		{
			name: "ladder path tallies fold in sorted, zeros dropped",
			r: campaign.Result{Kind: campaign.KindWindowLadder, Success: true, Metrics: map[string]string{
				"path[(ii) deferred IOTLB invalidation]": "3",
				"path[(i) driver unmap ordering]":        "1",
				"path[none]":                             "0",
			}},
			want: "kind=window-ladder outcome=ok win=(i) driver unmap ordering|(ii) deferred IOTLB invalidation",
		},
		{
			name: "dkasan classes in fixed order",
			r: campaign.Result{Kind: campaign.KindDKASAN, Success: true, Metrics: map[string]string{
				"multiple_map":     "4",
				"alloc_after_map":  "1",
				"access_after_map": "0",
			}},
			want: "kind=dkasan outcome=ok dkasan=alloc_after_map|multiple_map",
		},
		{
			name: "spray hit with stale blocked",
			r: campaign.Result{Kind: campaign.KindPageSpray, Metrics: map[string]string{
				"spray": "head", "stale": "blocked",
			}},
			want: "kind=page-spray outcome=miss spray=head stale=blocked",
		},
	}
	for _, tc := range cases {
		if got := Signature(&tc.r); got != tc.want {
			t.Errorf("%s: got %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestSignatureFaultClassesOnlyCountFired(t *testing.T) {
	// The injector emits zero-valued samples for every armed class; only
	// classes that actually injected may appear in the signature.
	snap := &metrics.Snapshot{Families: []metrics.Family{{
		Name: "faultinject_injected_total",
		Samples: []metrics.Sample{
			{Value: 0, Labels: metrics.L("class", "dma-drop")},
			{Value: 3, Labels: metrics.L("class", "ring-drop")},
			{Value: 1, Labels: metrics.L("class", "dma-corrupt")},
		},
	}}}
	r := campaign.Result{Kind: campaign.KindRingFlood, Success: true, Snapshot: snap}
	want := "kind=ring-flood outcome=ok fault=dma-corrupt|ring-drop"
	if got := Signature(&r); got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}
