package fuzz

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"dmafault/internal/campaign"
)

// Defaults for Config's zero values.
const (
	// DefaultBudget is the execution budget when neither Attempts nor
	// WallTime bounds the run.
	DefaultBudget = 64
	// DefaultBatch is the scenarios-per-round batch size.
	DefaultBatch = 16
	// DefaultMinimizeBudget is the per-entry execution budget of the
	// minimization pass.
	DefaultMinimizeBudget = 12
)

// Config parameterizes one fuzz run.
type Config struct {
	// Seed drives every scheduling and mutation decision. Equal (Seed,
	// budget, corpus) runs produce byte-identical reports and corpus files
	// at any worker count.
	Seed int64
	// Workers sizes the engine pool per batch (<=0: one per CPU).
	Workers int
	// Attempts is the execution budget (<=0: DefaultBudget, unless WallTime
	// bounds the run instead).
	Attempts int
	// WallTime optionally bounds the run by wall clock, checked at round
	// boundaries. Wall-bounded runs trade away cross-run byte-identity —
	// the round count depends on machine speed — so tests and reproducible
	// campaigns should budget by Attempts.
	WallTime time.Duration
	// Batch is the scenarios per engine round (<=0: DefaultBatch). Corpus
	// and scheduling state advance only between rounds.
	Batch int
	// CorpusPath persists the corpus as JSONL (empty: memory only).
	CorpusPath string
	// Resume reloads an existing corpus at CorpusPath instead of truncating.
	Resume bool
	// MinimizeBudget is the per-entry budget of the post-run minimization
	// pass (0: DefaultMinimizeBudget; negative: skip minimization).
	MinimizeBudget int
	// OnRound, if set, observes coverage counters after every round (called
	// from the fuzz loop's own goroutine).
	OnRound func(RoundStats)
	// OnResult, if set, observes each finished execution (called from
	// engine worker goroutines; exec is the run-global execution index).
	OnResult func(exec int, r *campaign.Result)
	// Cache, if set, is a shared scenario-result store consulted before
	// every execution (batch and minimization alike). Because results are
	// deterministic, a cached run is indistinguishable from a live one —
	// signatures, corpus growth, and the report are byte-identical.
	Cache campaign.Store
	// OnCacheHit, if set, observes each batch execution served from Cache
	// (called from engine worker goroutines, like OnResult).
	OnCacheHit func(exec int)
}

// RoundStats is the live coverage counter set published after each round.
type RoundStats struct {
	Round      int `json:"round"`
	Execs      int `json:"execs"`
	CorpusSize int `json:"corpus_size"`
	Signatures int `json:"signatures"`
	// Novel is the novel-signature count of this round alone.
	Novel int `json:"novel"`
}

// Report is the deterministic outcome of a fuzz run.
type Report struct {
	Seed               int64    `json:"seed"`
	Execs              int      `json:"execs"`
	Rounds             int      `json:"rounds"`
	CorpusSize         int      `json:"corpus_size"`
	DistinctSignatures int      `json:"distinct_signatures"`
	Novel              int      `json:"novel_total"`
	MinimizeExecs      int      `json:"minimize_execs,omitempty"`
	MinimizedEntries   int      `json:"minimized_entries,omitempty"`
	Signatures         []string `json:"signatures"`
}

// JSON renders the report with stable indentation.
func (rep *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}

// Run executes one coverage-guided fuzz campaign: seed the corpus (one
// scenario per kind on a fresh corpus), then repeatedly draw energy-weighted
// parents, mutate, execute the batch on the campaign engine, and admit every
// result whose signature is new. After the budget is spent, corpus entries
// are minimized. On cancellation the partial report is returned alongside
// the context's error; the corpus file holds everything completed so far.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	var corpus *Corpus
	var err error
	if cfg.CorpusPath != "" {
		corpus, err = OpenCorpus(cfg.CorpusPath, cfg.Resume)
		if err != nil {
			return nil, err
		}
	} else {
		corpus = NewCorpus()
	}
	defer corpus.Close()

	budget := cfg.Attempts
	if budget <= 0 {
		if cfg.WallTime > 0 {
			budget = 1 << 30 // wall clock is the bound
		} else {
			budget = DefaultBudget
		}
	}
	batchSize := cfg.Batch
	if batchSize <= 0 {
		batchSize = DefaultBatch
	}

	rng := rand.New(rand.NewSource(cfg.Seed ^ 0xFA22))
	seen := map[string]bool{}
	for _, e := range corpus.Entries() {
		seen[e.Key] = true
	}
	rep := &Report{Seed: cfg.Seed}
	finish := func() {
		rep.CorpusSize = corpus.Len()
		rep.Signatures = corpus.Signatures()
		rep.DistinctSignatures = len(rep.Signatures)
		for _, e := range corpus.Entries() {
			if e.Minimized {
				rep.MinimizedEntries++
			}
		}
	}

	start := time.Now()
	seq := 0
	for rep.Execs < budget {
		if cfg.WallTime > 0 && time.Since(start) >= cfg.WallTime {
			break
		}
		if err := ctx.Err(); err != nil {
			finish()
			return rep, err
		}
		n := budget - rep.Execs
		if n > batchSize {
			n = batchSize
		}
		batch, parents, keys := plan(rng, corpus, seen, n, cfg.Seed, &seq)

		results := make([]*campaign.Result, len(batch))
		execBase := rep.Execs
		eng := campaign.Engine{Workers: cfg.Workers, Cache: cfg.Cache, OnResult: func(i int, r *campaign.Result) {
			results[i] = r
			if cfg.OnResult != nil {
				cfg.OnResult(execBase+i, r)
			}
		}}
		if cfg.OnCacheHit != nil {
			eng.OnCacheHit = func(i int) { cfg.OnCacheHit(execBase + i) }
		}
		if _, err := eng.RunCtx(ctx, batch); err != nil {
			finish()
			return rep, err
		}

		// Corpus and energy state advance strictly in input order, so the
		// round's outcome is independent of worker scheduling.
		novelThis := 0
		for i, r := range results {
			sig := Signature(r)
			novel := !corpus.HasSignature(sig)
			if novel {
				novelThis++
				spec := batch[i]
				spec.ID = ""
				if err := corpus.Add(Entry{Key: keys[i], Scenario: spec, Signature: sig, Round: rep.Rounds}); err != nil {
					finish()
					return rep, err
				}
			}
			corpus.Observe(parents[i], novel)
		}
		if err := corpus.FlushStats(); err != nil {
			finish()
			return rep, err
		}
		rep.Execs += len(batch)
		rep.Rounds++
		rep.Novel += novelThis
		if cfg.OnRound != nil {
			cfg.OnRound(RoundStats{Round: rep.Rounds, Execs: rep.Execs,
				CorpusSize: corpus.Len(), Signatures: len(corpus.Signatures()), Novel: novelThis})
		}
	}

	if cfg.MinimizeBudget >= 0 {
		per := cfg.MinimizeBudget
		if per == 0 {
			per = DefaultMinimizeBudget
		}
		for _, e := range corpus.MinimizationQueue() {
			used, err := minimizeEntry(ctx, &cfg, corpus, e, per)
			rep.MinimizeExecs += used
			if err != nil {
				finish()
				return rep, err
			}
		}
	}
	finish()
	return rep, nil
}

// plan assembles one round's batch: seed scenarios while the corpus is
// empty, energy-scheduled mutants afterwards. Children are deduplicated
// against every key this run has scheduled (a handful of redraws, then the
// duplicate is accepted and simply burns budget — determinism over purity).
func plan(rng *rand.Rand, corpus *Corpus, seen map[string]bool, n int, baseSeed int64, seq *int) (batch []campaign.Scenario, parents, keys []string) {
	if corpus.Len() == 0 {
		seeds := seedScenarios(baseSeed)
		if len(seeds) > n {
			seeds = seeds[:n]
		}
		for _, s := range seeds {
			key := campaign.ScenarioKey(s)
			seen[key] = true
			batch = append(batch, s)
			parents = append(parents, "")
			keys = append(keys, key)
		}
		return batch, parents, keys
	}
	for j := 0; j < n; j++ {
		var child campaign.Scenario
		var key, parentKey string
		for try := 0; ; try++ {
			parent := corpus.PickParent(rng)
			child = mutate(rng, parent.Scenario, baseSeed, *seq)
			*seq++
			key = campaign.ScenarioKey(child)
			parentKey = parent.Key
			if !seen[key] || try >= 8 {
				break
			}
		}
		seen[key] = true
		batch = append(batch, child)
		parents = append(parents, parentKey)
		keys = append(keys, key)
	}
	return batch, parents, keys
}

// String summarizes the report for logs.
func (rep *Report) String() string {
	return fmt.Sprintf("fuzz: %d execs in %d rounds → %d corpus entries, %d distinct signatures (%d minimized, %d minimize execs)",
		rep.Execs, rep.Rounds, rep.CorpusSize, rep.DistinctSignatures, rep.MinimizedEntries, rep.MinimizeExecs)
}
