package fuzz

import (
	"math/rand"

	"dmafault/internal/campaign"
)

// The fuzz mutator is richer than campaign.Mutator: it mutates over the
// full kind space (AllKinds, including page-spray), perturbs the page-spray
// geometry, and flips through a palette of fault-injection specs — the
// dimensions whose interactions produce the signatures the blind preset
// never reaches. Two dimensions are deliberately off-limits because they
// couple outcomes to wall-clock time and would break byte-identity across
// worker counts: TimeoutMS, and the scenario-stall fault class.

// faultPalette is the set of FaultSpec values mutation draws from: clean,
// low-rate single classes, one combination, and a deterministic first-shot
// panic (the engine isolates it into an Outcome "panic" result — itself a
// coverage point).
var faultPalette = []string{
	"",
	"dma-corrupt:0.05",
	"dma-drop:0.1",
	"ring-drop:0.2",
	"alloc-fail:0.02",
	"iommu-stall:0.1",
	"iommu-fault:0.05",
	"dma-corrupt:0.02,ring-drop:0.1",
	"scenario-panic@1",
}

// knobMutations fire independently, each with probability 1/3.
var knobMutations = []func(*rand.Rand, *campaign.Scenario){
	func(rng *rand.Rand, s *campaign.Scenario) {
		s.Mode = []string{"deferred", "strict"}[rng.Intn(2)]
	},
	func(rng *rand.Rand, s *campaign.Scenario) {
		s.Kernel = []string{"5.0", "4.15"}[rng.Intn(2)]
	},
	func(rng *rand.Rand, s *campaign.Scenario) {
		s.Driver = []string{"i40e", "correct", "mlx5_core-5.0", "mlx5_core-4.15"}[rng.Intn(4)]
	},
	func(rng *rand.Rand, s *campaign.Scenario) {
		s.Queues = 1 << rng.Intn(3) // 1, 2, 4
	},
	func(rng *rand.Rand, s *campaign.Scenario) {
		s.JitterPages = 64 << rng.Intn(6) // 64 .. 2048
	},
	func(rng *rand.Rand, s *campaign.Scenario) {
		s.Forwarding = rng.Intn(2) == 1
	},
	func(rng *rand.Rand, s *campaign.Scenario) {
		s.OutOfLineSharedInfo = rng.Intn(2) == 1
	},
	func(rng *rand.Rand, s *campaign.Scenario) {
		s.NoKASLR = rng.Intn(4) == 0
	},
	func(rng *rand.Rand, s *campaign.Scenario) {
		s.FaultSpec = faultPalette[rng.Intn(len(faultPalette))]
	},
	func(rng *rand.Rand, s *campaign.Scenario) {
		s.SprayBlocks = 1 << rng.Intn(5) // 1 .. 16
	},
	func(rng *rand.Rand, s *campaign.Scenario) {
		s.SprayOrder = []int{-1, 0, 1, 2, 4}[rng.Intn(5)]
	},
}

// mutate derives one child scenario from a corpus parent. The child's seed
// is redrawn from (base seed, global sequence number), never inherited, so
// every execution explores fresh boot randomness; seq must increase
// monotonically across the run for seed ranges to stay disjoint.
func mutate(rng *rand.Rand, parent campaign.Scenario, baseSeed int64, seq int) campaign.Scenario {
	s := parent
	s.ID = ""
	if rng.Intn(4) == 0 {
		kinds := campaign.AllKinds()
		s.Kind = kinds[rng.Intn(len(kinds))]
	}
	for _, m := range knobMutations {
		if rng.Intn(3) == 0 {
			m(rng, &s)
		}
	}
	s.Seed = baseSeed + int64(seq)*104_729 + int64(rng.Intn(10_000))
	return s
}

// seedScenarios is round 0 of an empty-corpus run: one canonical scenario
// per kind in the full space, with study sizes kept small (fuzzing gets its
// statistics from execution count, not per-scenario trial count).
func seedScenarios(seed int64) []campaign.Scenario {
	kinds := campaign.AllKinds()
	out := make([]campaign.Scenario, len(kinds))
	for i, k := range kinds {
		out[i] = campaign.Scenario{
			Kind:       k,
			Seed:       seed + int64(i)*104_729,
			Trials:     2,
			Attempts:   1,
			Iterations: 4,
		}
	}
	return out
}
