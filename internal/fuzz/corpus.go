package fuzz

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"

	"dmafault/internal/campaign"
)

// Corpus persistence follows the campaign journal's idiom: a JSONL file
// whose first line is a version header and whose remaining lines are
// append-only records, written one line per Write call so concurrent
// readers never see interleaved bytes. Three record shapes exist:
//
//	{"add": <entry>}                     a scenario that produced a novel signature
//	{"stat": {"key","execs","yield"}}    absolute scheduling counters for one entry
//	{"min": {"key","scenario"}}          a minimized spec replacing an entry's scenario
//
// Replaying the records in order reconstructs the corpus exactly; a torn or
// unparseable tail (the crash case) is dropped silently, matching the
// journal's semantics. The header binds the file to ScenarioKeyVersion —
// a corpus written under a different engine version does not resume.

// corpusVersion gates the on-disk format.
const corpusVersion = 1

// Entry is one corpus member: a scenario that, when executed, produced a
// signature no earlier execution had.
type Entry struct {
	// Key is the ScenarioKey of the scenario as discovered. It is the
	// entry's stable identity: minimization may later shrink Scenario (whose
	// own key then differs), but records keep referring to the discovery key.
	Key string `json:"key"`
	// Scenario is the reproducing spec, ID-blanked (position-independent).
	Scenario campaign.Scenario `json:"scenario"`
	// Signature is the coverage signature the scenario produced.
	Signature string `json:"sig"`
	// Round is the fuzz round that discovered the entry.
	Round int `json:"round"`
	// Execs counts children scheduled from this entry; Yield counts how many
	// of them produced novel signatures. Energy is derived from both.
	Execs int `json:"execs,omitempty"`
	Yield int `json:"yield,omitempty"`
	// Minimized marks Scenario as the minimization pass's reduced spec.
	Minimized bool `json:"minimized,omitempty"`

	dirty bool // stats changed since the last flush
}

// Energy is the entry's scheduling weight: proportional to its novel-
// signature rate, discounted by how often it has already been tried.
// Fresh entries (Execs 0) start at weight ≥ 1 so everything gets a chance.
func (e *Entry) Energy() float64 {
	return (1 + 3*float64(e.Yield)) / (1 + float64(e.Execs))
}

type corpusHeader struct {
	V          int    `json:"v"`
	Kind       string `json:"kind"`
	KeyVersion string `json:"key_version"`
}

type corpusRecord struct {
	Add  *Entry      `json:"add,omitempty"`
	Stat *corpusStat `json:"stat,omitempty"`
	Min  *corpusMin  `json:"min,omitempty"`
}

type corpusStat struct {
	Key   string `json:"key"`
	Execs int    `json:"execs"`
	Yield int    `json:"yield,omitempty"`
}

type corpusMin struct {
	Key      string            `json:"key"`
	Scenario campaign.Scenario `json:"scenario"`
}

// Corpus is the in-memory corpus, optionally backed by an append-only file.
// It is single-writer: the fuzz loop mutates it only between engine batches.
type Corpus struct {
	entries []*Entry
	byKey   map[string]*Entry
	sigs    map[string]bool
	f       *os.File
}

// NewCorpus builds an empty, memory-only corpus.
func NewCorpus() *Corpus {
	return &Corpus{byKey: map[string]*Entry{}, sigs: map[string]bool{}}
}

// OpenCorpus creates (resume=false) or reloads (resume=true) a persistent
// corpus at path. Resuming a missing path falls back to a fresh corpus, so
// first runs just work; resuming a corpus written under a different
// ScenarioKeyVersion is an error (its dedup keys no longer mean anything).
func OpenCorpus(path string, resume bool) (*Corpus, error) {
	c := NewCorpus()
	if resume {
		if _, err := os.Stat(path); err == nil {
			if err := c.load(path); err != nil {
				return nil, err
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				return nil, fmt.Errorf("fuzz: corpus: %w", err)
			}
			c.f = f
			return c, nil
		} else if !os.IsNotExist(err) {
			return nil, fmt.Errorf("fuzz: corpus: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("fuzz: corpus: %w", err)
	}
	hdr, err := json.Marshal(corpusHeader{V: corpusVersion, Kind: "fuzz-corpus",
		KeyVersion: campaign.ScenarioKeyVersion})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("fuzz: corpus: %w", err)
	}
	if _, err := f.Write(append(hdr, '\n')); err != nil {
		f.Close()
		return nil, fmt.Errorf("fuzz: corpus: %w", err)
	}
	c.f = f
	return c, nil
}

// load replays a corpus file into memory, stopping silently at the first
// torn or unparseable record line.
func (c *Corpus) load(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("fuzz: corpus: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return fmt.Errorf("fuzz: corpus %s: missing header", path)
	}
	var hdr corpusHeader
	if err := json.Unmarshal(line, &hdr); err != nil || hdr.Kind != "fuzz-corpus" {
		return fmt.Errorf("fuzz: corpus %s: bad header", path)
	}
	if hdr.V != corpusVersion {
		return fmt.Errorf("fuzz: corpus %s: version %d, want %d", path, hdr.V, corpusVersion)
	}
	if hdr.KeyVersion != campaign.ScenarioKeyVersion {
		return fmt.Errorf("fuzz: corpus %s: written under engine %q, this engine is %q",
			path, hdr.KeyVersion, campaign.ScenarioKeyVersion)
	}
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			break // torn tail: drop, like the journal
		}
		var rec corpusRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break // corrupt line: treat it and everything after as torn
		}
		switch {
		case rec.Add != nil:
			e := *rec.Add
			e.dirty = false
			c.insert(&e)
		case rec.Stat != nil:
			if e := c.byKey[rec.Stat.Key]; e != nil {
				e.Execs = rec.Stat.Execs
				e.Yield = rec.Stat.Yield
			}
		case rec.Min != nil:
			if e := c.byKey[rec.Min.Key]; e != nil {
				e.Scenario = rec.Min.Scenario
				e.Minimized = true
			}
		default:
			return nil // unknown record shape: stop replaying
		}
	}
	return nil
}

func (c *Corpus) insert(e *Entry) {
	if _, dup := c.byKey[e.Key]; dup {
		return
	}
	c.entries = append(c.entries, e)
	c.byKey[e.Key] = e
	c.sigs[e.Signature] = true
}

// append writes one record line (no-op for memory-only corpora).
func (c *Corpus) append(rec corpusRecord) error {
	if c.f == nil {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	_, err = c.f.Write(append(line, '\n'))
	return err
}

// Add inserts a new entry and persists it.
func (c *Corpus) Add(e Entry) error {
	ent := e
	c.insert(&ent)
	return c.append(corpusRecord{Add: &ent})
}

// Observe credits one scheduled child to the named parent (and its novelty,
// if any). Unknown keys — seed scenarios have no parent — are ignored.
func (c *Corpus) Observe(parentKey string, novel bool) {
	e := c.byKey[parentKey]
	if e == nil {
		return
	}
	e.Execs++
	if novel {
		e.Yield++
	}
	e.dirty = true
}

// FlushStats persists the counters of every entry Observe touched since the
// last flush, in corpus order (deterministic bytes).
func (c *Corpus) FlushStats() error {
	for _, e := range c.entries {
		if !e.dirty {
			continue
		}
		e.dirty = false
		if err := c.append(corpusRecord{Stat: &corpusStat{Key: e.Key, Execs: e.Execs, Yield: e.Yield}}); err != nil {
			return err
		}
	}
	return nil
}

// ReplaceMinimized swaps an entry's scenario for its minimized spec and
// persists the replacement.
func (c *Corpus) ReplaceMinimized(key string, s campaign.Scenario) error {
	e := c.byKey[key]
	if e == nil {
		return fmt.Errorf("fuzz: corpus has no entry %s", key)
	}
	e.Scenario = s
	e.Minimized = true
	return c.append(corpusRecord{Min: &corpusMin{Key: key, Scenario: s}})
}

// Close closes the backing file, if any.
func (c *Corpus) Close() error {
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}

// Len returns the entry count.
func (c *Corpus) Len() int { return len(c.entries) }

// Entries returns the corpus in discovery order (shared slice; callers must
// not mutate).
func (c *Corpus) Entries() []*Entry { return c.entries }

// HasSignature reports whether sig has already been discovered.
func (c *Corpus) HasSignature(sig string) bool { return c.sigs[sig] }

// HasKey reports whether a scenario with this key is already a member.
func (c *Corpus) HasKey(key string) bool { _, ok := c.byKey[key]; return ok }

// Signatures returns every discovered signature, sorted.
func (c *Corpus) Signatures() []string {
	return sortedKeys(c.sigs)
}

// PickParent draws one entry, weighted by Energy, from the given stream.
// Selection walks entries in discovery order, so equal corpora and equal
// rng states always pick the same parent. A nil return means the corpus is
// empty.
func (c *Corpus) PickParent(rng *rand.Rand) *Entry {
	if len(c.entries) == 0 {
		return nil
	}
	total := 0.0
	for _, e := range c.entries {
		total += e.Energy()
	}
	x := rng.Float64() * total
	for _, e := range c.entries {
		if x -= e.Energy(); x < 0 {
			return e
		}
	}
	return c.entries[len(c.entries)-1]
}

// MinimizationQueue returns the unminimized entries in discovery order.
func (c *Corpus) MinimizationQueue() []*Entry {
	var out []*Entry
	for _, e := range c.entries {
		if !e.Minimized {
			out = append(out, e)
		}
	}
	return out
}
