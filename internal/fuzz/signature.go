// Package fuzz closes the feedback loop the campaign Mutator leaves open:
// coverage-guided exploration of the scenario space, in the spirit of
// DyMA-Fuzz and DICE. The substrate already emits the feedback a fuzzer
// needs — D-KASAN event classes, faultinject counters, Fig. 7 window paths,
// escalation counts — so "coverage" here is a deterministic signature
// extracted from each campaign Result. The fuzzer keeps a corpus of
// scenarios that produced novel signatures, schedules mutants of high-yield
// parents with proportional energy, and minimizes each corpus entry to the
// smallest spec that still reproduces its signature.
//
// Everything is seeded-deterministic: the same (seed, budget) yields the
// same corpus, the same report, and the same persisted bytes at any worker
// count, because scheduling state only advances between engine batches and
// the engine's results land in input order.
package fuzz

import (
	"sort"
	"strings"

	"dmafault/internal/campaign"
)

// dkasanClasses are the sanitizer event classes folded into signatures,
// matching the dkasan_events_total label set.
var dkasanClasses = []string{"alloc_after_map", "map_after_alloc", "access_after_map", "multiple_map"}

// Signature reduces one campaign result to its deterministic coverage
// signature: scenario kind × engine outcome × Fig. 7 window paths ×
// escalation × observed D-KASAN event classes × fired faultinject classes ×
// spray reuse. Two results with equal signatures taught us the same thing;
// a fresh signature is the fuzzer's notion of new coverage.
func Signature(r *campaign.Result) string {
	parts := []string{
		"kind=" + string(r.Kind),
		"outcome=" + campaign.ResultOutcome(r),
	}
	if paths := windowPaths(r); len(paths) > 0 {
		parts = append(parts, "win="+strings.Join(paths, "|"))
	}
	if r.Escalations > 0 {
		parts = append(parts, "esc")
	}
	if classes := metricClasses(r, dkasanClasses); len(classes) > 0 {
		parts = append(parts, "dkasan="+strings.Join(classes, "|"))
	}
	if fired := firedFaultClasses(r); len(fired) > 0 {
		parts = append(parts, "fault="+strings.Join(fired, "|"))
	}
	if v := r.Metrics["spray"]; v != "" {
		parts = append(parts, "spray="+v)
		if r.Metrics["stale"] == "blocked" {
			parts = append(parts, "stale=blocked")
		}
	}
	return strings.Join(parts, " ")
}

// windowPaths collects the Fig. 7 paths a result exercised: the single-shot
// WindowPath field plus the folded per-attempt path[...] tallies multi-boot
// kinds record, sorted for stability.
func windowPaths(r *campaign.Result) []string {
	set := map[string]bool{}
	if r.WindowPath != "" {
		set[r.WindowPath] = true
	}
	for k, v := range r.Metrics {
		if strings.HasPrefix(k, "path[") && strings.HasSuffix(k, "]") && v != "0" {
			set[k[len("path["):len(k)-1]] = true
		}
	}
	return sortedKeys(set)
}

// metricClasses returns the subset of names whose Result.Metrics tally is a
// nonzero count, in the given (stable) order.
func metricClasses(r *campaign.Result, names []string) []string {
	var out []string
	for _, name := range names {
		if v := r.Metrics[name]; v != "" && v != "0" {
			out = append(out, name)
		}
	}
	return out
}

// firedFaultClasses extracts the faultinject classes that actually injected
// at least once, from the result's merged machine snapshot. The injector
// emits zero-valued samples for every class whenever it is armed, so only
// samples with positive values count.
func firedFaultClasses(r *campaign.Result) []string {
	if r.Snapshot == nil {
		return nil
	}
	set := map[string]bool{}
	for _, f := range r.Snapshot.Families {
		if f.Name != "faultinject_injected_total" {
			continue
		}
		for _, s := range f.Samples {
			if s.Value <= 0 {
				continue
			}
			for _, l := range s.Labels {
				if l.Key == "class" {
					set[l.Value] = true
				}
			}
		}
	}
	return sortedKeys(set)
}

func sortedKeys(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
