package fuzz

import (
	"dmafault/internal/metrics"
)

// MetricsSnapshot renders a report as the fuzz_* metric families, for
// merging into a service-level registry snapshot (dmafaultd folds these into
// each fuzz job's exported metrics next to the campaign_* families).
func (rep *Report) MetricsSnapshot() *metrics.Snapshot {
	execs := metrics.NewCounter("fuzz_execs_total", "Scenario executions spent by the fuzz loop.")
	rounds := metrics.NewCounter("fuzz_rounds_total", "Engine rounds the fuzz loop ran.")
	novel := metrics.NewCounter("fuzz_novel_total", "Executions that produced a novel coverage signature.")
	minExecs := metrics.NewCounter("fuzz_minimize_execs_total", "Scenario executions spent minimizing corpus entries.")
	corpus := metrics.NewGauge("fuzz_corpus_entries", "Corpus entries after the run.")
	sigs := metrics.NewGauge("fuzz_signatures_distinct", "Distinct coverage signatures discovered.")
	minimized := metrics.NewGauge("fuzz_minimized_entries", "Corpus entries holding a minimized spec.")

	execs.Add(uint64(rep.Execs))
	rounds.Add(uint64(rep.Rounds))
	novel.Add(uint64(rep.Novel))
	minExecs.Add(uint64(rep.MinimizeExecs))
	corpus.Set(float64(rep.CorpusSize))
	sigs.Set(float64(rep.DistinctSignatures))
	minimized.Set(float64(rep.MinimizedEntries))

	reg := metrics.NewRegistry()
	reg.MustRegister(execs, rounds, novel, minExecs, corpus, sigs, minimized)
	snap, err := reg.Gather()
	if err != nil {
		panic("fuzz: metrics snapshot: " + err.Error())
	}
	return snap
}
