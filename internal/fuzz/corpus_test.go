package fuzz

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dmafault/internal/campaign"
)

func testEntry(i int, sig string) Entry {
	s := campaign.Scenario{Kind: campaign.KindRingFlood, Seed: int64(100 + i), Trials: 2}
	return Entry{Key: campaign.ScenarioKey(s), Scenario: s, Signature: sig, Round: i}
}

// Round-trip: a saved corpus reloads to the identical state, proven by the
// strongest property the fuzzer relies on — the same rng seed drives the
// same parent-selection sequence on both copies.
func TestCorpusRoundTripSchedulingOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	saved, err := OpenCorpus(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, sig := range []string{"sig-a", "sig-b", "sig-c", "sig-d"} {
		if err := saved.Add(testEntry(i, sig)); err != nil {
			t.Fatal(err)
		}
	}
	// Skew the energies so selection is not uniform.
	saved.Observe(saved.Entries()[0].Key, true)
	saved.Observe(saved.Entries()[1].Key, false)
	saved.Observe(saved.Entries()[1].Key, false)
	saved.Observe(saved.Entries()[1].Key, false)
	if err := saved.FlushStats(); err != nil {
		t.Fatal(err)
	}
	if err := saved.Close(); err != nil {
		t.Fatal(err)
	}

	loaded, err := OpenCorpus(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.Len() != saved.Len() {
		t.Fatalf("reload: %d entries, want %d", loaded.Len(), saved.Len())
	}
	for i, e := range saved.Entries() {
		l := loaded.Entries()[i]
		if l.Key != e.Key || l.Signature != e.Signature || l.Execs != e.Execs ||
			l.Yield != e.Yield || l.Scenario != e.Scenario {
			t.Fatalf("entry %d differs after reload:\n got %+v\nwant %+v", i, l, e)
		}
	}
	rngA := rand.New(rand.NewSource(42))
	rngB := rand.New(rand.NewSource(42))
	for i := 0; i < 64; i++ {
		a, b := saved.PickParent(rngA), loaded.PickParent(rngB)
		if a.Key != b.Key {
			t.Fatalf("pick %d: saved chose %s, reloaded chose %s", i, a.Key, b.Key)
		}
	}
}

// A torn tail — a partial record from a crashed writer — is dropped, and
// everything before it replays; matching the campaign journal's semantics.
func TestCorpusTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	c, err := OpenCorpus(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add(testEntry(0, "sig-a")); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(testEntry(1, "sig-b")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"add":{"key":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	loaded, err := OpenCorpus(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("after torn tail: %d entries, want 2", loaded.Len())
	}
	// The reopened corpus must still be appendable and reload cleanly.
	if err := loaded.Add(testEntry(2, "sig-c")); err != nil {
		t.Fatal(err)
	}
	loaded.Close()
	again, err := OpenCorpus(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	// The torn bytes are still in the file ahead of the new record, so
	// replay stops before it: durable recovery keeps the clean prefix.
	if again.Len() != 2 {
		t.Fatalf("after append past torn tail: %d entries, want 2", again.Len())
	}
}

func TestCorpusRejectsForeignKeyVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	if err := os.WriteFile(path,
		[]byte(`{"v":1,"kind":"fuzz-corpus","key_version":"dmafault-engine-v1"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCorpus(path, true); err == nil {
		t.Fatal("resuming a corpus from another engine version should fail")
	}
}

func TestCorpusResumeMissingPathStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	c, err := OpenCorpus(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Len() != 0 {
		t.Fatalf("fresh corpus has %d entries", c.Len())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("resume of missing path should create the file: %v", err)
	}
}

func TestCorpusMinimizedReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	c, err := OpenCorpus(path, false)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(0, "sig-a")
	if err := c.Add(e); err != nil {
		t.Fatal(err)
	}
	small := e.Scenario
	small.Trials = 0
	if err := c.ReplaceMinimized(e.Key, small); err != nil {
		t.Fatal(err)
	}
	c.Close()

	loaded, err := OpenCorpus(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	got := loaded.Entries()[0]
	if !got.Minimized || got.Scenario != small {
		t.Fatalf("minimized replay: got %+v", got)
	}
	if got.Key != e.Key {
		t.Fatalf("minimization must keep the discovery key: got %s, want %s", got.Key, e.Key)
	}
	if len(loaded.MinimizationQueue()) != 0 {
		t.Fatal("minimized entry must not re-enter the queue on resume")
	}
}

func TestEnergyFavorsYield(t *testing.T) {
	fresh := Entry{}
	tried := Entry{Execs: 9}
	fertile := Entry{Execs: 9, Yield: 3}
	if !(fertile.Energy() > tried.Energy()) {
		t.Fatal("yielding parents must outweigh barren ones at equal execs")
	}
	if !(fresh.Energy() > tried.Energy()) {
		t.Fatal("fresh entries must outweigh well-tried barren ones")
	}
}
