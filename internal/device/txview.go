package device

import (
	"encoding/binary"
	"fmt"

	"dmafault/internal/iommu"
	"dmafault/internal/layout"
	"dmafault/internal/netstack"
)

// DeviceFrag is a frags[] entry as the device decodes it from raw bytes.
type DeviceFrag struct {
	PagePtr uint64 // struct page address — a vmemmap pointer, the §5.4 leak
	Off     uint32
	Len     uint32
}

// TXView is the device-side parse of a TX packet's skb_shared_info: what a
// NIC with READ access to a transmitted buffer's page learns (Fig. 8).
type TXView struct {
	NrFrags       uint16
	TxFlags       uint16
	DestructorArg uint64 // a kmalloc KVA when zero-copy is in use
	Frags         []DeviceFrag
}

// ReadTXSharedInfo DMA-reads and parses the shared info of a TX packet whose
// linear buffer is mapped at linearIOVA with the given payload headroom. The
// arithmetic (SKB_DATA_ALIGN) is build knowledge; the low 12 bits of the
// IOVA and KVA agree, so the same offsets work in both spaces.
func (a *Attacker) ReadTXSharedInfo(linearIOVA iommu.IOVA, headroom uint32) (*TXView, error) {
	si := SharedInfoIOVA(linearIOVA, headroom)
	raw := make([]byte, netstack.SharedInfoSize)
	if err := a.Bus.Read(a.Dev, si, raw); err != nil {
		return nil, fmt.Errorf("device: reading TX shared info: %w", err)
	}
	v := &TXView{
		NrFrags:       binary.LittleEndian.Uint16(raw[sharedInfoNrFragsOff:]),
		TxFlags:       binary.LittleEndian.Uint16(raw[netstack.SharedInfoTxFlagsOff:]),
		DestructorArg: binary.LittleEndian.Uint64(raw[sharedInfoDestructorArgOff:]),
	}
	if int(v.NrFrags) > netstack.MaxFrags {
		return nil, fmt.Errorf("device: implausible nr_frags %d", v.NrFrags)
	}
	for i := 0; i < int(v.NrFrags); i++ {
		base := sharedInfoFragsOff + i*fragSize
		v.Frags = append(v.Frags, DeviceFrag{
			PagePtr: binary.LittleEndian.Uint64(raw[base:]),
			Off:     binary.LittleEndian.Uint32(raw[base+8:]),
			Len:     binary.LittleEndian.Uint32(raw[base+12:]),
		})
	}
	// Every pointer in the structure feeds the KASLR inferencer: frag page
	// pointers pin vmemmap_base; destructor_arg (a direct-map KVA) pins
	// page_offset_base.
	words := []uint64{v.DestructorArg}
	for _, f := range v.Frags {
		words = append(words, f.PagePtr)
	}
	a.Infer.ObserveWords(words)
	return v, nil
}

// FragKVA translates a leaked frag to the kernel virtual address of its
// first byte, using only inferred bases — step 3 of the Poisoned TX attack.
func (a *Attacker) FragKVA(f DeviceFrag) (layout.Addr, error) {
	pfn, err := a.Infer.PFNFromStructPage(layout.Addr(f.PagePtr))
	if err != nil {
		return 0, err
	}
	kva, err := a.Infer.KVAFromPFN(pfn)
	if err != nil {
		return 0, err
	}
	return kva + layout.Addr(f.Off), nil
}

// WriteTXFrag overwrites a frags[] entry of a TX (or forwarded) packet's
// shared info — the §5.5 surveillance primitive: pointing a frag at an
// arbitrary struct page makes the driver map that page for the NIC to read.
func (a *Attacker) WriteTXFrag(linearIOVA iommu.IOVA, headroom uint32, idx int, f DeviceFrag) error {
	if idx < 0 || idx >= netstack.MaxFrags {
		return fmt.Errorf("device: frag index %d out of range", idx)
	}
	si := SharedInfoIOVA(linearIOVA, headroom)
	base := si + iommu.IOVA(sharedInfoFragsOff+idx*fragSize)
	var raw [fragSize]byte
	binary.LittleEndian.PutUint64(raw[0:], f.PagePtr)
	binary.LittleEndian.PutUint32(raw[8:], f.Off)
	binary.LittleEndian.PutUint32(raw[12:], f.Len)
	if err := a.Bus.Write(a.Dev, base, raw[:]); err != nil {
		return err
	}
	return nil
}

// SetNrFrags overwrites shared_info.nr_frags (used together with WriteTXFrag
// when spoofing an RX packet whose frags the driver will map on the way out).
func (a *Attacker) SetNrFrags(bufIOVA iommu.IOVA, cap uint32, nr uint16) error {
	si := SharedInfoIOVA(bufIOVA, cap)
	var raw [2]byte
	binary.LittleEndian.PutUint16(raw[:], nr)
	return a.Bus.Write(a.Dev, si+sharedInfoNrFragsOff, raw[:])
}
