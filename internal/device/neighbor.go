package device

import (
	"dmafault/internal/iommu"
	"dmafault/internal/layout"
	"dmafault/internal/netstack"
)

// Path (iii) of Fig. 7: even under strict invalidation, the device reaches a
// just-unmapped buffer's skb_shared_info through the still-valid mapping of
// the *next* RX buffer, because page_frag carves consecutive buffers from one
// physically contiguous region (§5.2.2).
//
// The device reconstructs relative placement from information it legitimately
// holds: the fill order of its RX ring and each descriptor's IOVA. The low 12
// bits of an IOVA equal the buffer's page offset, and page_frag carves
// downward with a fixed stride, so
//
//	Δ = (low12(cur) − low12(next)) mod 4096
//
// is the region-space distance between the current buffer and the next one.
// The current buffer's shared info then lies Δ + SKB_DATA_ALIGN(cap) bytes
// above the next buffer's start — inside the next buffer's *mapped pages*
// whenever the page arithmetic below holds, because a mapping covers whole
// pages and the region is physically contiguous.

// NeighborSharedInfoIOVA returns an IOVA through which the device can still
// write cur's shared info after cur's own mapping is gone, using next's
// mapping. ok is false when the two buffers do not adjoin in one region
// (different regions, refill in between, or the shared info page is not
// covered by next's mapping).
func NeighborSharedInfoIOVA(cur, next iommu.IOVA, cap uint32) (iommu.IOVA, bool) {
	truesize := netstack.TruesizeFor(cap)
	low := func(v iommu.IOVA) uint64 { return uint64(v) & layout.PageMask }
	delta := (low(cur) - low(next)) & layout.PageMask
	// Adjacent same-region carves differ by truesize rounded for alignment:
	// accept [truesize, truesize+64).
	if delta < truesize || delta >= truesize+64 {
		return 0, false
	}
	q := low(next)
	siRel := delta + truesize - netstack.SharedInfoSize // region-space offset of cur's shared info above next's start
	// Pages covered by next's mapping: 0 .. lastPage.
	lastPage := (q + truesize - 1) / layout.PageSize
	siPage := (q + siRel) / layout.PageSize
	siEndPage := (q + siRel + netstack.SharedInfoSize - 1) / layout.PageSize
	if siPage > lastPage || siEndPage > lastPage {
		return 0, false
	}
	return next + iommu.IOVA(siRel), true
}

// RingNeighborFor scans a ring (in fill order) for a descriptor whose mapping
// can still reach slot i's shared info, returning the write IOVA.
func RingNeighborFor(ring []netstack.RXDesc, i int) (iommu.IOVA, bool) {
	if i < 0 || i >= len(ring) {
		return 0, false
	}
	cur := ring[i]
	// The "next data buffer" is the one filled right after: i+1 in ring fill
	// order (§5.2.2: "pairs of successive RX descriptors map the same page").
	for _, j := range []int{i + 1, i - 1} {
		if j < 0 || j >= len(ring) || !ring[j].Ready {
			continue
		}
		if va, ok := NeighborSharedInfoIOVA(cur.IOVA, ring[j].IOVA, cur.Cap); ok {
			return va, true
		}
	}
	return 0, false
}
