package device

import (
	"testing"

	"dmafault/internal/iommu"
	"dmafault/internal/layout"
	"dmafault/internal/netstack"
)

func TestNeighborSharedInfoIOVAArithmetic(t *testing.T) {
	const cap = 2048
	truesize := netstack.TruesizeFor(cap) // 2336
	// Same-region carve-down where the neighbor's mapping straddles two
	// pages: next at page offset 0xd80 (3456), so its span covers the page
	// where cur's shared info lands.
	next := iommu.IOVA(0x100002000 + 0xd80)
	cur := iommu.IOVA(0x100000000 + (0xd80+truesize)&layout.PageMask)
	va, ok := NeighborSharedInfoIOVA(cur, next, cap)
	if !ok {
		t.Fatal("adjacent straddling buffers rejected")
	}
	wantRel := truesize + truesize - netstack.SharedInfoSize
	if va != next+iommu.IOVA(wantRel) {
		t.Errorf("va = %#x, want next+%#x", uint64(va), wantRel)
	}
	// A pair where the shared-info page is NOT covered by the neighbor's
	// mapping must be rejected (next entirely on one page).
	lowNext := iommu.IOVA(0x100002000 + 0x6c0)
	lowCur := iommu.IOVA(0x100000000 + (0x6c0+truesize)&layout.PageMask)
	if _, ok := NeighborSharedInfoIOVA(lowCur, lowNext, cap); ok {
		t.Error("uncovered shared-info page accepted")
	}
	// Non-adjacent (region refill between them): delta implausible.
	if _, ok := NeighborSharedInfoIOVA(cur, next+iommu.IOVA(512), cap); ok {
		t.Error("non-adjacent pair accepted")
	}
	// Reversed order: delta wraps to 4096-stride, rejected.
	if _, ok := NeighborSharedInfoIOVA(next, cur, cap); ok {
		t.Error("reversed order accepted")
	}
}

func TestRingNeighborForOnRealRing(t *testing.T) {
	sys, nic, atk := newVictim(t, iommu.Strict)
	ring := nic.RXRing()
	found := false
	for i := range ring {
		via, ok := RingNeighborFor(ring, i)
		if !ok {
			continue
		}
		found = true
		// Verify the arithmetic against ground truth: the returned IOVA
		// must resolve to the physical location of slot i's shared info.
		wantKVA := ring[i].Data + layout.Addr(netstack.TruesizeFor(ring[i].Cap)-netstack.SharedInfoSize)
		wantPFN, _ := sys.Layout.KVAToPFN(wantKVA)
		pfn, err := sys.IOMMU.Translate(atk.Dev, via, true)
		if err != nil {
			t.Fatalf("slot %d: neighbor IOVA does not translate: %v", i, err)
		}
		if pfn != wantPFN {
			t.Fatalf("slot %d: neighbor IOVA hits PFN %d, want %d", i, pfn, wantPFN)
		}
		off := uint64(via) & layout.PageMask
		if off != layout.PageOffsetOf(wantKVA) {
			t.Fatalf("slot %d: offset %#x, want %#x", i, off, layout.PageOffsetOf(wantKVA))
		}
	}
	if !found {
		t.Fatal("no slot has a usable neighbor on a standard ring")
	}
	// Bounds behaviour.
	if _, ok := RingNeighborFor(ring, -1); ok {
		t.Error("negative slot accepted")
	}
	if _, ok := RingNeighborFor(ring, len(ring)); ok {
		t.Error("out-of-range slot accepted")
	}
}
