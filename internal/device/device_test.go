package device

import (
	"testing"

	"dmafault/internal/core"
	"dmafault/internal/iommu"
	"dmafault/internal/kexec"
	"dmafault/internal/layout"
	"dmafault/internal/netstack"
)

const nicDev iommu.DeviceID = 1

func newVictim(t *testing.T, mode iommu.Mode) (*core.System, *netstack.NIC, *Attacker) {
	t.Helper()
	sys, err := core.NewSystem(core.Config{Seed: 99, KASLR: true, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	nic, err := sys.AddNIC(nicDev, netstack.DriverI40E, 0)
	if err != nil {
		t.Fatal(err)
	}
	build, err := kexec.ExtractBuildOffsets(sys.Kernel.Text(), sys.Layout.Symbols())
	if err != nil {
		t.Fatal(err)
	}
	atk := NewAttacker(nicDev, sys.Bus, sys.Layout.Symbols(), build)
	return sys, nic, atk
}

func TestAttackerCannotReadWriteOnlyRXBuffers(t *testing.T) {
	_, nic, atk := newVictim(t, iommu.Strict)
	d := nic.RXRing()[0]
	if atk.CanRead(d.IOVA) {
		t.Error("RX (WRITE) buffer readable by device")
	}
	if !atk.CanWrite(d.IOVA) {
		t.Error("RX buffer not writable by device")
	}
	if _, err := atk.ReadWords(d.IOVA, 4); err == nil {
		t.Error("ReadWords succeeded on WRITE-only mapping")
	}
}

func TestScanControlBufferLeaksInitNet(t *testing.T) {
	// Type (d) in action: the NIC's kmalloc'd admin buffer shares its
	// 512-class slab page with freshly allocated socket objects, whose
	// namespace pointers identify init_net and break KASLR text.
	sys, nic, atk := newVictim(t, iommu.Strict)
	cb, err := nic.MapControlBuffer()
	if err != nil {
		t.Fatal(err)
	}
	// The victim workload opens sockets; same slab class → same page.
	var socks []*netstack.Socket
	for i := 0; i < 6; i++ {
		s, err := sys.Net.AllocSocket(0, "sock_alloc_inode+0x4f")
		if err != nil {
			t.Fatal(err)
		}
		socks = append(socks, s)
	}
	cbPFN, _ := sys.Layout.KVAToPFN(cb.KVA)
	coLocated := false
	for _, s := range socks {
		p, _ := sys.Layout.KVAToPFN(s.Addr)
		if p == cbPFN {
			coLocated = true
		}
	}
	if !coLocated {
		t.Fatal("no socket co-located with control buffer; slab placement model broken")
	}
	if used := atk.ScanReadable([]iommu.IOVA{cb.IOVA}); used == 0 {
		t.Fatal("scan consumed no pointers")
	}
	got, err := atk.Infer.TextBase()
	if err != nil {
		t.Fatalf("text base not recovered: %v", err)
	}
	if got != sys.Layout.TextBase {
		t.Fatalf("recovered %#x, want %#x", uint64(got), uint64(sys.Layout.TextBase))
	}
	// The scan also picked up direct-map pointers (slab freelist words or
	// socket fields), pinning page_offset_base.
	if base, err := atk.Infer.PageOffsetBase(); err == nil && base != sys.Layout.PageOffsetBase {
		t.Fatalf("page_offset_base mis-recovered: %#x vs %#x", uint64(base), uint64(sys.Layout.PageOffsetBase))
	}
	for _, s := range socks {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := nic.UnmapControlBuffer(cb); err != nil {
		t.Fatal(err)
	}
}

func TestReadTXSharedInfoRecoversBasesAndKVAs(t *testing.T) {
	// Fig. 8: the device reads a TX packet's shared info and translates
	// frag struct pages to KVAs using only inferred bases.
	sys, nic, atk := newVictim(t, iommu.Strict)
	echo := netstack.NewEchoService(sys.Net, nic)
	payload := make([]byte, 2040) // fits one RX buffer; echoed reply still frags
	for i := range payload {
		payload[i] = byte(i)
	}
	d := nic.RXRing()[0]
	if err := sys.Bus.Write(nicDev, d.IOVA, payload); err != nil {
		t.Fatal(err)
	}
	if err := nic.ReceiveOn(0, uint32(len(payload)), netstack.ProtoUDP, 11); err != nil {
		t.Fatal(err)
	}
	if echo.Echoed != 1 || nic.PendingTX() != 1 {
		t.Fatalf("echo state: %d echoed, %d pending", echo.Echoed, nic.PendingTX())
	}
	tx := nic.TXRing()[0]
	view, err := atk.ReadTXSharedInfo(tx.LinearVA, 128)
	if err != nil {
		t.Fatal(err)
	}
	if view.NrFrags != 1 {
		t.Fatalf("NrFrags = %d, want 1 (2040B fits one chunk)", view.NrFrags)
	}
	if view.DestructorArg == 0 {
		t.Fatal("zerocopy destructor_arg not present in TX shared info")
	}
	// Bases recovered purely from the leak.
	vb, err := atk.Infer.VmemmapBase()
	if err != nil || vb != sys.Layout.VmemmapBase {
		t.Fatalf("vmemmap base = %#x, %v; want %#x", uint64(vb), err, uint64(sys.Layout.VmemmapBase))
	}
	pb, err := atk.Infer.PageOffsetBase()
	if err != nil || pb != sys.Layout.PageOffsetBase {
		t.Fatalf("page_offset_base = %#x, %v; want %#x", uint64(pb), err, uint64(sys.Layout.PageOffsetBase))
	}
	// Frag KVA translation matches ground truth.
	f := view.Frags[0]
	gotKVA, err := atk.FragKVA(f)
	if err != nil {
		t.Fatal(err)
	}
	groundPFN, err := sys.Layout.StructPageToPFN(layout.Addr(f.PagePtr))
	if err != nil {
		t.Fatal(err)
	}
	want := sys.Layout.PFNToKVA(groundPFN) + layout.Addr(f.Off)
	if gotKVA != want {
		t.Fatalf("FragKVA = %#x, want %#x", uint64(gotKVA), uint64(want))
	}
	// The device can read its own echoed bytes through the TX frag mapping.
	buf := make([]byte, 16)
	if err := sys.Bus.Read(nicDev, tx.FragVAs[0], buf); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if buf[i] != payload[i] {
			t.Fatalf("echoed byte %d = %#x", i, buf[i])
		}
	}
}

func TestPlantPayloadRequiresKASLRBreak(t *testing.T) {
	_, nic, atk := newVictim(t, iommu.Strict)
	d := nic.RXRing()[0]
	if err := atk.PlantPayload(d.IOVA, 0xffff888000000000, d.Cap); err == nil {
		t.Error("PlantPayload succeeded without recovered text base")
	}
}

func TestPlantPayloadWritesFig4Structure(t *testing.T) {
	sys, nic, atk := newVictim(t, iommu.Strict)
	// Give the attacker the text base via the init_net route.
	initNet, _ := sys.Layout.SymbolKVA("init_net")
	atk.Infer.ObserveWords([]uint64{uint64(initNet)})
	d := nic.RXRing()[0]
	if err := atk.PlantPayload(d.IOVA, d.Data, d.Cap); err != nil {
		t.Fatal(err)
	}
	// Ground truth checks via CPU reads.
	siKVA := d.Data + layout.Addr(netstack.TruesizeFor(d.Cap)-netstack.SharedInfoSize)
	darg, err := sys.Mem.ReadU64(siKVA + netstack.SharedInfoDestructorArgOff)
	if err != nil {
		t.Fatal(err)
	}
	if layout.Addr(darg) != d.Data+256 {
		t.Fatalf("destructor_arg = %#x, want %#x", darg, uint64(d.Data+256))
	}
	cb, _ := sys.Mem.ReadU64(layout.Addr(darg) + netstack.UbufCallbackOff)
	wantPivot := sys.Layout.TextBase + layout.Addr(atk.Build.Pivot)
	if layout.Addr(cb) != wantPivot {
		t.Fatalf("planted callback = %#x, want pivot %#x", cb, uint64(wantPivot))
	}
	// The chain's first word is the pop rdi gadget.
	first, _ := sys.Mem.ReadU64(layout.Addr(darg) + kexec.PivotDisplacement)
	if layout.Addr(first) != sys.Layout.TextBase+layout.Addr(atk.Build.PopRDI) {
		t.Fatalf("chain[0] = %#x", first)
	}
}

func TestWriteTXFragAndSetNrFrags(t *testing.T) {
	sys, nic, atk := newVictim(t, iommu.Strict)
	d := nic.RXRing()[0]
	// Spoof: mark one frag pointing at an arbitrary struct page.
	target := sys.Layout.PFNToStructPage(1234)
	if err := atk.SetNrFrags(d.IOVA, d.Cap, 1); err != nil {
		t.Fatal(err)
	}
	if err := atk.WriteTXFrag(d.IOVA, d.Cap, 0, DeviceFrag{PagePtr: uint64(target), Off: 0, Len: 64}); err != nil {
		t.Fatal(err)
	}
	if err := atk.WriteTXFrag(d.IOVA, d.Cap, netstack.MaxFrags, DeviceFrag{}); err == nil {
		t.Error("out-of-range frag write accepted")
	}
	// CPU-side view agrees.
	siKVA := d.Data + layout.Addr(netstack.TruesizeFor(d.Cap)-netstack.SharedInfoSize)
	nr, _ := sys.Mem.ReadU16(siKVA + netstack.SharedInfoNrFragsOff)
	if nr != 1 {
		t.Fatalf("nr_frags = %d", nr)
	}
	ptr, _ := sys.Mem.ReadU64(siKVA + netstack.SharedInfoFragsOff)
	if layout.Addr(ptr) != target {
		t.Fatalf("frag ptr = %#x", ptr)
	}
}

func TestReadTXSharedInfoRejectsUnmapped(t *testing.T) {
	_, _, atk := newVictim(t, iommu.Strict)
	if _, err := atk.ReadTXSharedInfo(iommu.IOVA(1<<40), 128); err == nil {
		t.Error("read of unmapped shared info accepted")
	}
}
