// Package device implements the attacker: a malicious DMA-capable device (a
// compromised NIC, or a FireWire peripheral sharing the NIC's IOMMU domain as
// in §6). The threat model of §3.1 is enforced structurally:
//
//   - the device touches memory exclusively through the dma.Bus, i.e. by
//     IOVA, through the IOMMU's translation and permission checks;
//   - it knows its own hardware state (ring descriptors and their IOVAs,
//     completion timing) and the victim's kernel *build* (struct layouts,
//     symbol and gadget offsets) — but none of the boot's randomized secrets
//     (KASLR bases, buffer KVAs), which it must infer from leaks.
package device

import (
	"encoding/binary"
	"fmt"

	"dmafault/internal/dma"
	"dmafault/internal/iommu"
	"dmafault/internal/kexec"
	"dmafault/internal/layout"
	"dmafault/internal/netstack"
)

// Attacker is the malicious device's controller ("firmware").
type Attacker struct {
	Dev iommu.DeviceID
	Bus *dma.Bus
	// Infer accumulates KASLR knowledge from leaked words (§2.4).
	Infer *layout.Inferencer
	// Build is the offline-extracted gadget/symbol knowledge of the victim
	// kernel build (§6 used ROPgadget on an identical image).
	Build kexec.BuildOffsets

	// Stats.
	WordsScanned, PagesScanned int
}

// NewAttacker builds an attacker for the given requester ID. symbols and
// build describe the victim's kernel *build* (public knowledge); nothing
// boot-specific is passed in.
func NewAttacker(dev iommu.DeviceID, bus *dma.Bus, symbols *layout.SymbolTable, build kexec.BuildOffsets) *Attacker {
	return &Attacker{Dev: dev, Bus: bus, Infer: layout.NewInferencer(symbols), Build: build}
}

// ReadWords DMA-reads n 64-bit words starting at the IOVA.
func (a *Attacker) ReadWords(va iommu.IOVA, n int) ([]uint64, error) {
	buf := make([]byte, 8*n)
	if err := a.Bus.Read(a.Dev, va, buf); err != nil {
		return nil, err
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return out, nil
}

// ScanPage reads a whole readable page and feeds every word to the KASLR
// inferencer — "malicious devices can scan the pages mapped for reading,
// looking for kernel pointers leaked due to sub-page vulnerability" (§2.4).
func (a *Attacker) ScanPage(va iommu.IOVA) (used int, err error) {
	pageVA := va &^ iommu.IOVA(layout.PageMask)
	words, err := a.ReadWords(pageVA, layout.PageSize/8)
	if err != nil {
		return 0, err
	}
	a.PagesScanned++
	a.WordsScanned += len(words)
	return a.Infer.ObserveWords(words), nil
}

// ScanReadable scans each IOVA whose page is currently readable, skipping
// the rest (RX buffers are WRITE-only; TX buffers are the readable ones).
func (a *Attacker) ScanReadable(vas []iommu.IOVA) int {
	total := 0
	for _, va := range vas {
		if !a.Bus.Probe(a.Dev, va, false) {
			continue
		}
		n, err := a.ScanPage(va)
		if err == nil {
			total += n
		}
	}
	return total
}

// ChainAddresses resolves the escalation-chain addresses from the recovered
// text base. Fails until the KASLR break has succeeded.
func (a *Attacker) ChainAddresses() (kexec.ChainAddresses, error) {
	base, err := a.Infer.TextBase()
	if err != nil {
		return kexec.ChainAddresses{}, fmt.Errorf("device: text base not recovered yet: %w", err)
	}
	return kexec.ResolveChainAddresses(base, a.Build), nil
}

// PivotAddr returns the runtime address of the JOP stack-pivot gadget.
func (a *Attacker) PivotAddr() (layout.Addr, error) {
	base, err := a.Infer.TextBase()
	if err != nil {
		return 0, err
	}
	return base + layout.Addr(a.Build.Pivot), nil
}

// Device-side copies of the victim build's struct layout constants. The
// attacker needs them to locate destructor_arg and frags[] on a mapped page
// (§3.3 attribute 2: "the location on the page of the callback pointer must
// be known to the device").
const (
	sharedInfoDestructorArgOff = netstack.SharedInfoDestructorArgOff
	sharedInfoNrFragsOff       = netstack.SharedInfoNrFragsOff
	sharedInfoFragsOff         = netstack.SharedInfoFragsOff
	fragSize                   = netstack.FragSize
	ubufCallbackOff            = netstack.UbufCallbackOff
)

// SharedInfoIOVA computes where skb_shared_info lives for an RX buffer whose
// payload capacity is cap: the same arithmetic the victim's build uses
// (SKB_DATA_ALIGN), applied to the buffer's IOVA.
func SharedInfoIOVA(buf iommu.IOVA, cap uint32) iommu.IOVA {
	truesize := netstack.TruesizeFor(cap)
	return buf + iommu.IOVA(truesize-netstack.SharedInfoSize)
}

// PlantPayload executes steps (b) and (c) of Fig. 4 in an RX buffer the
// device can write:
//
//   - it writes a struct ubuf_info of its own making into the buffer, with
//     the callback pointing at the JOP pivot gadget;
//   - it writes the privilege-escalation ROP chain PivotDisplacement bytes
//     past the ubuf_info (where the pivot will move %rsp);
//   - it overwrites shared_info.destructor_arg to point at the planted
//     ubuf_info — which requires the buffer's KVA, the attribute compound
//     attacks exist to obtain.
//
// bufIOVA/bufKVA address the buffer start; cap is its payload capacity.
func (a *Attacker) PlantPayload(bufIOVA iommu.IOVA, bufKVA layout.Addr, cap uint32) error {
	if err := a.PlantUbufAndChain(bufIOVA); err != nil {
		return err
	}
	si := SharedInfoIOVA(bufIOVA, cap)
	return a.OverwriteDestructorArg(si, bufKVA+UbufPlantOffset)
}

// UbufPlantOffset is where PlantUbufAndChain places the forged ubuf_info
// inside a buffer (free payload space past the short spoofed packet).
const UbufPlantOffset = 256

// PayloadBytes renders the forged ubuf_info + ROP chain as raw bytes, for
// attacks that deliver the payload through a packet body rather than DMA
// (Poisoned TX sends it as the to-be-echoed request, §5.4).
func (a *Attacker) PayloadBytes() ([]byte, error) {
	chainAddrs, err := a.ChainAddresses()
	if err != nil {
		return nil, err
	}
	pivot, err := a.PivotAddr()
	if err != nil {
		return nil, err
	}
	// ubuf_info at offset 0: callback = pivot; chain at PivotDisplacement.
	buf := make([]byte, int(kexec.PivotDisplacement)+8*6)
	binary.LittleEndian.PutUint64(buf[ubufCallbackOff:], uint64(pivot))
	copy(buf[kexec.PivotDisplacement:], kexec.EscalationChainBytes(chainAddrs))
	return buf, nil
}

// PlantUbufAndChain writes the forged ubuf_info and ROP chain into a buffer
// the device can DMA-write, at UbufPlantOffset. No KVA is needed for this
// step — everything is expressed in the buffer's own IOVA space and in
// recovered text addresses.
func (a *Attacker) PlantUbufAndChain(bufIOVA iommu.IOVA) error {
	payload, err := a.PayloadBytes()
	if err != nil {
		return err
	}
	if err := a.Bus.Write(a.Dev, bufIOVA+UbufPlantOffset, payload); err != nil {
		return fmt.Errorf("device: planting ubuf+chain: %w", err)
	}
	return nil
}

// OverwriteDestructorArg points a shared info's destructor_arg (addressed by
// the IOVA of the skb_shared_info itself) at the forged ubuf_info's KVA —
// the step that needs both WRITE access (a Fig. 7 window) and the KVA (the
// compound-attack prize).
func (a *Attacker) OverwriteDestructorArg(siIOVA iommu.IOVA, ubufKVA layout.Addr) error {
	if err := a.Bus.WriteU64(a.Dev, siIOVA+sharedInfoDestructorArgOff, uint64(ubufKVA)); err != nil {
		return fmt.Errorf("device: overwriting destructor_arg: %w", err)
	}
	return nil
}

// CanWrite reports whether the device can currently DMA-write the IOVA.
func (a *Attacker) CanWrite(va iommu.IOVA) bool { return a.Bus.Probe(a.Dev, va, true) }

// CanRead reports whether the device can currently DMA-read the IOVA.
func (a *Attacker) CanRead(va iommu.IOVA) bool { return a.Bus.Probe(a.Dev, va, false) }
