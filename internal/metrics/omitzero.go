package metrics

// OmitZero wraps a Source so that zero-valued samples are suppressed at
// collection time: a wrapped counter/gauge emits nothing until it has been
// touched, and since Gather omits families with no samples, the family is
// entirely absent from snapshots and expositions until then.
//
// This is the service-plane analogue of the faultinject_* convention on the
// campaign plane: families that describe exceptional conditions (stalled
// jobs, quarantine trips, queue backpressure) stay out of idle expositions,
// so "the family exists" is itself a signal and golden idle dumps never
// churn when new supervision families are added.
func OmitZero(src Source) Source { return omitZero{src: src} }

type omitZero struct{ src Source }

// Describe implements Source (descriptors are still validated and reserved
// even while no samples are emitted).
func (o omitZero) Describe() []Desc { return o.src.Describe() }

// Collect implements Source, dropping samples whose value, histogram count,
// and buckets are all zero.
func (o omitZero) Collect(emit func(name string, s Sample)) {
	o.src.Collect(func(name string, s Sample) {
		if s.Value == 0 && s.Count == 0 && s.Sum == 0 && allZero(s.BucketCounts) {
			return
		}
		emit(name, s)
	})
}

func allZero(counts []uint64) bool {
	for _, c := range counts {
		if c != 0 {
			return false
		}
	}
	return true
}
