package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestValidName(t *testing.T) {
	for name, want := range map[string]bool{
		"iommu_maps_total": true,
		"a":                true,
		"a9_b":             true,
		"":                 false,
		"9a":               false,
		"Foo":              false,
		"foo-bar":          false,
		"foo.bar":          false,
	} {
		if got := ValidName(name); got != want {
			t.Errorf("ValidName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestDescValidate(t *testing.T) {
	ok := Desc{Name: "x_total", Kind: KindCounter}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Desc{
		{Name: "Bad", Kind: KindCounter},
		{Name: "h", Kind: KindHistogram},                           // no buckets
		{Name: "h", Kind: KindHistogram, Buckets: []float64{2, 1}}, // not ascending
		{Name: "c", Kind: KindCounter, Buckets: []float64{1}},      // buckets on counter
	}
	for _, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("Desc %+v validated, want error", d)
		}
	}
}

// fixedSource emits a static set of samples for registry tests.
type fixedSource struct {
	descs   []Desc
	samples map[string][]Sample
}

func (f fixedSource) Describe() []Desc { return f.descs }
func (f fixedSource) Collect(emit func(string, Sample)) {
	for name, ss := range f.samples {
		for _, s := range ss {
			emit(name, s)
		}
	}
}

func TestRegistryRejectsDuplicatesAndUnknownSamples(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("dup_total", "")
	if err := r.Register(c); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(NewCounter("dup_total", "again")); err == nil {
		t.Error("duplicate family registered, want error")
	}
	if err := r.Register(fixedSource{descs: []Desc{{Name: "BAD", Kind: KindGauge}}}); err == nil {
		t.Error("invalid name registered, want error")
	}
	r.MustRegister(fixedSource{
		descs:   []Desc{{Name: "ok_total", Kind: KindCounter}},
		samples: map[string][]Sample{"rogue_total": {{Value: 1}}},
	})
	if _, err := r.Gather(); err == nil {
		t.Error("undescribed sample gathered, want error")
	}
}

func TestGatherCanonicalOrder(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(fixedSource{
		descs: []Desc{
			{Name: "zz_total", Kind: KindCounter},
			{Name: "aa_total", Kind: KindCounter},
			{Name: "empty_total", Kind: KindCounter},
		},
		samples: map[string][]Sample{
			"zz_total": {{Value: 1}},
			"aa_total": {
				{Labels: L("dev", "2"), Value: 2},
				{Labels: L("dev", "1"), Value: 1},
			},
		},
	})
	snap, err := r.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Families) != 2 {
		t.Fatalf("got %d families (empty family must be omitted): %+v", len(snap.Families), snap.Families)
	}
	if snap.Families[0].Name != "aa_total" || snap.Families[1].Name != "zz_total" {
		t.Errorf("families not sorted: %s, %s", snap.Families[0].Name, snap.Families[1].Name)
	}
	aa := snap.Families[0]
	if aa.Samples[0].Labels[0].Value != "1" || aa.Samples[1].Labels[0].Value != "2" {
		t.Errorf("samples not sorted by label signature: %+v", aa.Samples)
	}
}

func TestTextExposition(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("req_total", "Total requests.")
	c.Add(3)
	g := NewGauge("queue_depth", "Current depth.")
	g.Set(2.5)
	h := NewHistogram("latency_ms", "Latency.", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)
	r.MustRegister(c, g, h)
	snap, err := r.Gather()
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := snap.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP req_total Total requests.",
		"# TYPE req_total counter",
		"req_total 3",
		"# TYPE queue_depth gauge",
		"queue_depth 2.5",
		"# TYPE latency_ms histogram",
		`latency_ms_bucket{le="1"} 1`,
		`latency_ms_bucket{le="10"} 2`,
		`latency_ms_bucket{le="+Inf"} 3`,
		"latency_ms_sum 105.5",
		"latency_ms_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram("h_nanos", "", []float64{10})
	h.Observe(4)
	h.Observe(40)
	r.MustRegister(h, NewCounter("c_total", "help"))
	snap, err := r.Gather()
	if err != nil {
		t.Fatal(err)
	}
	data, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"bucket_counts"`)) || !bytes.Contains(data, []byte(`"kind": "histogram"`)) {
		t.Errorf("JSON not snake_case/typed:\n%s", data)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	data2, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("JSON round trip changed bytes:\n%s\n---\n%s", data, data2)
	}
}

func TestMergeIsOrderStableAndSums(t *testing.T) {
	mk := func(v float64, dev string) *Snapshot {
		return &Snapshot{Families: []Family{{
			Name: "x_total", Kind: KindCounter,
			Samples: []Sample{{Labels: L("dev", dev), Value: v}},
		}}}
	}
	agg := &Snapshot{}
	for _, s := range []*Snapshot{mk(1, "a"), mk(2, "b"), mk(3, "a"), nil} {
		if err := agg.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	if got := agg.Total("x_total"); got != 6 {
		t.Errorf("Total = %v, want 6", got)
	}
	f := agg.Families[0]
	if len(f.Samples) != 2 || f.Samples[0].Value != 4 || f.Samples[1].Value != 2 {
		t.Errorf("merged samples wrong: %+v", f.Samples)
	}
	// Kind conflicts are refused.
	bad := &Snapshot{Families: []Family{{Name: "x_total", Kind: KindGauge,
		Samples: []Sample{{Value: 1}}}}}
	if err := agg.Merge(bad); err == nil {
		t.Error("kind-conflicting merge accepted, want error")
	}
}

func TestInstrumentsConcurrent(t *testing.T) {
	c := NewCounter("c_total", "")
	g := NewGauge("g", "")
	h := NewHistogram("h", "", []float64{8, 64})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 100))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("counts wrong: c=%d g=%v h=%d", c.Value(), g.Value(), h.Count())
	}
}
