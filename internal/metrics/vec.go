package metrics

import (
	"fmt"
	"sync"
)

// HistogramVec is a labeled histogram family: one fixed-bucket histogram
// child per label-value combination, materialized on first Observe. Unlike
// the lock-free single-sample instruments it takes a mutex per observation —
// it backs control-plane attribution (per-worker shard phases), not
// simulation hot paths. A vec with no children emits no samples, so the
// family is omitted from gathered snapshots until the first observation
// (the same absent-until-armed discipline as OmitZero).
type HistogramVec struct {
	desc Desc
	keys []string

	mu       sync.Mutex
	children map[string]*vecChild
}

type vecChild struct {
	labels []Label
	counts []uint64
	sum    float64
	count  uint64
}

// NewHistogramVec builds a labeled histogram family with the given ascending
// upper bounds (the +Inf overflow bucket is implicit) and label keys. Every
// Observe must supply exactly one value per key, in key order.
func NewHistogramVec(name, help string, buckets []float64, keys ...string) *HistogramVec {
	for _, k := range keys {
		if !ValidName(k) {
			panic(fmt.Sprintf("metrics: invalid label key %q on %s", k, name))
		}
	}
	return &HistogramVec{
		desc: Desc{Name: name, Help: help, Kind: KindHistogram,
			Buckets: append([]float64(nil), buckets...)},
		keys: append([]string(nil), keys...),
	}
}

// Observe records one value at the given label values (one per key, in key
// order).
func (h *HistogramVec) Observe(v float64, values ...string) {
	if len(values) != len(h.keys) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d",
			h.desc.Name, len(h.keys), len(values)))
	}
	labels := make([]Label, len(h.keys))
	for i, k := range h.keys {
		labels[i] = Label{Key: k, Value: values[i]}
	}
	sortLabels(labels)
	key := labelKey(labels)

	h.mu.Lock()
	defer h.mu.Unlock()
	c := h.children[key]
	if c == nil {
		if h.children == nil {
			h.children = make(map[string]*vecChild)
		}
		c = &vecChild{labels: labels, counts: make([]uint64, len(h.desc.Buckets)+1)}
		h.children[key] = c
	}
	i := len(h.desc.Buckets) // overflow by default
	for b, ub := range h.desc.Buckets {
		if v <= ub {
			i = b
			break
		}
	}
	c.counts[i]++
	c.count++
	c.sum += v
}

// Describe implements Source.
func (h *HistogramVec) Describe() []Desc { return []Desc{h.desc} }

// Collect implements Source. Gather sorts samples by label signature, so
// map iteration order here is irrelevant.
func (h *HistogramVec) Collect(emit func(name string, s Sample)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, c := range h.children {
		emit(h.desc.Name, Sample{
			Labels:       append([]Label(nil), c.labels...),
			BucketCounts: append([]uint64(nil), c.counts...),
			Sum:          c.sum,
			Count:        c.count,
		})
	}
}
