package metrics

import (
	"strings"
	"testing"
)

// TestOmitZeroSuppressesUntouchedInstruments pins the supervision-family
// contract: a wrapped instrument is invisible in gathered snapshots until
// it records something, then appears with its full descriptor.
func TestOmitZeroSuppressesUntouchedInstruments(t *testing.T) {
	c := NewCounter("svc_exceptions_total", "Exceptional events.")
	g := NewGauge("svc_backlog", "Pending work.")
	h := NewHistogram("svc_wait_seconds", "Wait times.", []float64{0.1, 1})
	reg := NewRegistry()
	reg.MustRegister(OmitZero(c), OmitZero(g), OmitZero(h))

	snap, err := reg.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Families) != 0 {
		t.Fatalf("idle gather produced %d families, want 0: %s", len(snap.Families), snap.Text())
	}

	c.Inc()
	g.Add(2)
	h.Observe(0.05)
	snap, err = reg.Gather()
	if err != nil {
		t.Fatal(err)
	}
	text := string(snap.Text())
	for _, want := range []string{
		"svc_exceptions_total 1",
		"svc_backlog 2",
		`svc_wait_seconds_bucket{le="0.1"} 1`,
		"# HELP svc_exceptions_total Exceptional events.",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestOmitZeroGaugeReturnsToAbsent: a gauge that sinks back to zero drops
// out of the exposition again (queue-depth semantics: absence means idle).
func TestOmitZeroGaugeReturnsToAbsent(t *testing.T) {
	g := NewGauge("svc_queue_depth", "Queued jobs.")
	reg := NewRegistry()
	reg.MustRegister(OmitZero(g))
	g.Add(3)
	g.Add(-3)
	snap, err := reg.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Families) != 0 {
		t.Fatalf("zeroed gauge still exposed: %s", snap.Text())
	}
}

// TestOmitZeroStillReservesName: the descriptor is registered even while
// suppressed, so a second registration of the family is rejected.
func TestOmitZeroStillReservesName(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(OmitZero(NewCounter("svc_x_total", "x")))
	if err := reg.Register(NewCounter("svc_x_total", "x")); err == nil {
		t.Fatal("duplicate family accepted despite OmitZero wrapper")
	}
}
