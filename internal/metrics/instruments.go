package metrics

import (
	"math"
	"sync/atomic"
)

// The instruments below are lock-free and safe for concurrent use; each one
// implements Source for its own single family, so a service can register
// them directly (dmafaultd does). Simulation subsystems generally do NOT use
// them — they keep plain stats structs on their single-owner hot paths and
// implement Source over those, paying zero atomic traffic per event.

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	desc Desc
	v    atomic.Uint64
}

// NewCounter builds a counter family with one unlabeled sample.
func NewCounter(name, help string) *Counter {
	return &Counter{desc: Desc{Name: name, Help: help, Kind: KindCounter}}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Describe implements Source.
func (c *Counter) Describe() []Desc { return []Desc{c.desc} }

// Collect implements Source.
func (c *Counter) Collect(emit func(name string, s Sample)) {
	emit(c.desc.Name, Sample{Value: float64(c.v.Load())})
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	desc Desc
	bits atomic.Uint64
}

// NewGauge builds a gauge family with one unlabeled sample.
func NewGauge(name, help string) *Gauge {
	return &Gauge{desc: Desc{Name: name, Help: help, Kind: KindGauge}}
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Add increases the gauge by delta (CAS loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Describe implements Source.
func (g *Gauge) Describe() []Desc { return []Desc{g.desc} }

// Collect implements Source.
func (g *Gauge) Collect(emit func(name string, s Sample)) {
	emit(g.desc.Name, Sample{Value: g.Value()})
}

// Histogram is a fixed-bucket atomic histogram.
type Histogram struct {
	desc    Desc
	buckets []atomic.Uint64 // len(desc.Buckets)+1; last is +Inf overflow
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// NewHistogram builds a histogram family with the given ascending upper
// bounds (the +Inf overflow bucket is implicit).
func NewHistogram(name, help string, buckets []float64) *Histogram {
	h := &Histogram{
		desc:    Desc{Name: name, Help: help, Kind: KindHistogram, Buckets: append([]float64(nil), buckets...)},
		buckets: make([]atomic.Uint64, len(buckets)+1),
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := len(h.desc.Buckets) // overflow by default
	for b, ub := range h.desc.Buckets {
		if v <= ub {
			i = b
			break
		}
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Describe implements Source.
func (h *Histogram) Describe() []Desc { return []Desc{h.desc} }

// Collect implements Source.
func (h *Histogram) Collect(emit func(name string, s Sample)) {
	counts := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	emit(h.desc.Name, Sample{
		BucketCounts: counts,
		Sum:          math.Float64frombits(h.sumBits.Load()),
		Count:        h.count.Load(),
	})
}
