package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Family is one metric family of a Snapshot: its descriptor plus the
// collected samples, in canonical (label-signature) order.
type Family struct {
	Name    string    `json:"name"`
	Help    string    `json:"help,omitempty"`
	Kind    Kind      `json:"kind"`
	Buckets []float64 `json:"buckets,omitempty"`
	Samples []Sample  `json:"samples"`
}

// Snapshot is a gathered, canonically ordered metric dump. Equal simulated
// states produce byte-identical encodings (families sorted by name, samples
// by label signature, values derived from integer counts).
type Snapshot struct {
	Families []Family `json:"families"`
}

// normalize sorts families by name and samples by label signature.
func (s *Snapshot) normalize() {
	for i := range s.Families {
		f := &s.Families[i]
		sort.SliceStable(f.Samples, func(a, b int) bool {
			return labelKey(f.Samples[a].Labels) < labelKey(f.Samples[b].Labels)
		})
	}
	sort.Slice(s.Families, func(i, j int) bool {
		return s.Families[i].Name < s.Families[j].Name
	})
}

// Merge folds other into s, summing samples that share a family and label
// signature and adopting families/samples s has not seen. Counters and
// histograms accumulate; gauges sum too (a campaign-level gauge reads as
// "total across scenarios"). Merging is associative over float64 addition
// in a fixed order, so merging per-scenario snapshots in input order yields
// byte-identical aggregates at any worker count.
func (s *Snapshot) Merge(other *Snapshot) error {
	if other == nil {
		return nil
	}
	byName := make(map[string]int, len(s.Families))
	for i := range s.Families {
		byName[s.Families[i].Name] = i
	}
	for _, of := range other.Families {
		fi, ok := byName[of.Name]
		if !ok {
			byName[of.Name] = len(s.Families)
			s.Families = append(s.Families, cloneFamily(of))
			continue
		}
		f := &s.Families[fi]
		if f.Kind != of.Kind {
			return fmt.Errorf("metrics: merge of %q: kind %s vs %s", of.Name, f.Kind, of.Kind)
		}
		if f.Kind == KindHistogram && !equalBuckets(f.Buckets, of.Buckets) {
			return fmt.Errorf("metrics: merge of %q: bucket layouts differ", of.Name)
		}
		bySig := make(map[string]int, len(f.Samples))
		for i := range f.Samples {
			bySig[labelKey(f.Samples[i].Labels)] = i
		}
		for _, os := range of.Samples {
			sig := labelKey(os.Labels)
			si, ok := bySig[sig]
			if !ok {
				bySig[sig] = len(f.Samples)
				f.Samples = append(f.Samples, cloneSample(os))
				continue
			}
			sm := &f.Samples[si]
			sm.Value += os.Value
			sm.Sum += os.Sum
			sm.Count += os.Count
			for i := range os.BucketCounts {
				if i < len(sm.BucketCounts) {
					sm.BucketCounts[i] += os.BucketCounts[i]
				}
			}
		}
	}
	s.normalize()
	return nil
}

func cloneFamily(f Family) Family {
	out := Family{Name: f.Name, Help: f.Help, Kind: f.Kind,
		Buckets: append([]float64(nil), f.Buckets...)}
	out.Samples = make([]Sample, len(f.Samples))
	for i, sm := range f.Samples {
		out.Samples[i] = cloneSample(sm)
	}
	return out
}

func cloneSample(s Sample) Sample {
	return Sample{
		Labels:       append([]Label(nil), s.Labels...),
		Value:        s.Value,
		BucketCounts: append([]uint64(nil), s.BucketCounts...),
		Sum:          s.Sum,
		Count:        s.Count,
	}
}

func equalBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Total returns the summed Value of a family's samples (0 if absent) — the
// quick way to read one counter out of a snapshot.
func (s *Snapshot) Total(name string) float64 {
	for _, f := range s.Families {
		if f.Name == name {
			var t float64
			for _, sm := range f.Samples {
				t += sm.Value
			}
			return t
		}
	}
	return 0
}

// JSON encodes the snapshot deterministically (indented, snake_case).
func (s *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// WriteText writes the snapshot in the Prometheus text exposition format
// (version 0.0.4): # HELP / # TYPE lines then samples, histograms expanded
// into cumulative _bucket{le=...}, _sum, and _count series.
func (s *Snapshot) WriteText(w io.Writer) error {
	for _, f := range s.Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, sm := range f.Samples {
			if err := writeSample(w, &f, sm); err != nil {
				return err
			}
		}
	}
	return nil
}

// Text renders WriteText to a byte slice.
func (s *Snapshot) Text() []byte {
	var b strings.Builder
	_ = s.WriteText(&b)
	return []byte(b.String())
}

func writeSample(w io.Writer, f *Family, sm Sample) error {
	if f.Kind != KindHistogram {
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, formatLabels(sm.Labels, "", ""), formatValue(sm.Value))
		return err
	}
	var cum uint64
	for i, ub := range f.Buckets {
		if i < len(sm.BucketCounts) {
			cum += sm.BucketCounts[i]
		}
		le := formatValue(ub)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, formatLabels(sm.Labels, "le", le), cum); err != nil {
			return err
		}
	}
	if n := len(f.Buckets); n < len(sm.BucketCounts) {
		cum += sm.BucketCounts[n]
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, formatLabels(sm.Labels, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, formatLabels(sm.Labels, "", ""), formatValue(sm.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, formatLabels(sm.Labels, "", ""), sm.Count)
	return err
}

// formatLabels renders {k="v",...}, appending an extra label (the histogram
// le) when extraKey is non-empty. Empty label sets render as nothing.
func formatLabels(labels []Label, extraKey, extraValue string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a float with the shortest exact representation —
// strconv is deterministic, so equal values always print identically.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes newlines and backslashes per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
