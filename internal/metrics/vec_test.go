package metrics

import (
	"bytes"
	"testing"
)

// A HistogramVec materializes one child per label combination and gathers
// into label-sorted samples; with no children the family is absent entirely.
func TestHistogramVec(t *testing.T) {
	vec := NewHistogramVec("phase_latency_seconds", "per-phase latency",
		[]float64{0.1, 1}, "phase", "worker")
	reg := NewRegistry()
	reg.MustRegister(vec)

	snap, err := reg.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Families) != 0 {
		t.Fatalf("vec with no children gathered %d families, want 0", len(snap.Families))
	}

	vec.Observe(0.05, "execute", "http://w1")
	vec.Observe(0.5, "execute", "http://w1")
	vec.Observe(2, "publish", "http://w1")
	vec.Observe(0.5, "execute", "http://w2")

	snap, err = reg.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Families) != 1 {
		t.Fatalf("gathered %d families, want 1", len(snap.Families))
	}
	fam := snap.Families[0]
	if len(fam.Samples) != 3 {
		t.Fatalf("gathered %d samples, want 3", len(fam.Samples))
	}
	// Samples sort by label signature: execute/w1, execute/w2, publish/w1.
	s := fam.Samples[0]
	if s.Labels[0].Value != "execute" || s.Labels[1].Value != "http://w1" {
		t.Fatalf("first sample labels %v", s.Labels)
	}
	if s.Count != 2 || s.Sum != 0.55 {
		t.Fatalf("execute/w1 count=%d sum=%v, want 2/0.55", s.Count, s.Sum)
	}
	if want := []uint64{1, 1, 0}; len(s.BucketCounts) != 3 ||
		s.BucketCounts[0] != want[0] || s.BucketCounts[1] != want[1] || s.BucketCounts[2] != want[2] {
		t.Fatalf("execute/w1 buckets %v, want %v", s.BucketCounts, want)
	}
	if over := fam.Samples[2]; over.BucketCounts[2] != 1 {
		t.Fatalf("publish/w1 overflow bucket %v", over.BucketCounts)
	}

	// Two gathers of unchanged state encode identically.
	a, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	again, err := reg.Gather()
	if err != nil {
		t.Fatal(err)
	}
	b, err := again.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("repeated gathers of an unchanged vec drifted")
	}
}

func TestHistogramVecPanics(t *testing.T) {
	vec := NewHistogramVec("v", "help", []float64{1}, "phase")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	vec.Observe(1, "a", "b")
}
