package metrics

import (
	"fmt"
	"sync"
)

// Registry holds Sources and gathers them into canonical Snapshots. It is
// safe for concurrent Register/Gather; whether a given Source may be
// collected concurrently with updates is the Source's own contract (see the
// package comment).
type Registry struct {
	mu      sync.Mutex
	sources []Source
	descs   map[string]Desc
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{descs: make(map[string]Desc)}
}

// Register adds a source, validating its descriptors. A family name may be
// described by only one source; re-describing an identical Desc from the
// same or another source is rejected too (one family, one owner).
func (r *Registry) Register(s Source) error {
	descs := s.Describe()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, d := range descs {
		if err := d.Validate(); err != nil {
			return err
		}
		if _, dup := r.descs[d.Name]; dup {
			return fmt.Errorf("metrics: family %q already registered", d.Name)
		}
	}
	for _, d := range descs {
		r.descs[d.Name] = d
	}
	r.sources = append(r.sources, s)
	return nil
}

// MustRegister is Register, panicking on programmer error.
func (r *Registry) MustRegister(sources ...Source) {
	for _, s := range sources {
		if err := r.Register(s); err != nil {
			panic(err)
		}
	}
}

// Gather collects every source into a canonical Snapshot: families sorted
// by name, samples sorted by label signature, empty families omitted. A
// sample emitted under an undescribed name is an error (it would silently
// vanish from dumps otherwise).
func (r *Registry) Gather() (*Snapshot, error) {
	r.mu.Lock()
	sources := make([]Source, len(r.sources))
	copy(sources, r.sources)
	descs := make(map[string]Desc, len(r.descs))
	for k, v := range r.descs {
		descs[k] = v
	}
	r.mu.Unlock()

	byName := make(map[string][]Sample, len(descs))
	var firstErr error
	emit := func(name string, s Sample) {
		d, ok := descs[name]
		if !ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("metrics: sample for undescribed family %q", name)
			}
			return
		}
		if d.Kind == KindHistogram && len(s.BucketCounts) != len(d.Buckets)+1 {
			if firstErr == nil {
				firstErr = fmt.Errorf("metrics: histogram %q sample has %d buckets, want %d",
					name, len(s.BucketCounts), len(d.Buckets)+1)
			}
			return
		}
		sortLabels(s.Labels)
		byName[name] = append(byName[name], s)
	}
	for _, src := range sources {
		src.Collect(emit)
	}
	if firstErr != nil {
		return nil, firstErr
	}

	snap := &Snapshot{}
	for name, samples := range byName {
		d := descs[name]
		snap.Families = append(snap.Families, Family{
			Name:    d.Name,
			Help:    d.Help,
			Kind:    d.Kind,
			Buckets: append([]float64(nil), d.Buckets...),
			Samples: samples,
		})
	}
	snap.normalize()
	return snap, nil
}
