// Package metrics is the repo's unified observability layer: a
// dependency-free registry of counters, gauges, and fixed-bucket histograms
// with one uniform collection API that every subsystem implements. It
// replaces the N incompatible per-package Stats structs with:
//
//   - Desc/Sample: a named, typed metric family and its label-addressed
//     samples;
//   - Source: the Describe/Collect pair a subsystem implements to expose its
//     counters (iommu, mem, netstack, dkasan, trace, campaign);
//   - Registry: registration plus Gather into a Snapshot;
//   - Snapshot: a canonically ordered, mergeable dump with deterministic
//     encodings — Prometheus text exposition and snake_case JSON.
//
// Determinism is the design center: families are sorted by name, samples by
// label signature, all values derive from integer counts or the virtual
// clock, and merges are order-stable — so for a fixed seed the full metric
// dump of a campaign run is byte-identical at any worker count.
//
// Concurrency contract: the atomic instruments (Counter, Gauge, Histogram)
// are safe for concurrent use and back process-level metrics in services
// like dmafaultd. Subsystem Sources that read plain stats structs must only
// be collected while their system is quiescent — which is exactly when the
// campaign runner collects them (after a scenario completes, from the one
// goroutine that owns the booted system).
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a metric family.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value (queue depth, free pages).
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// String names the kind as the Prometheus TYPE line does.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// MarshalText encodes the kind by name (snake_case JSON wire format).
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText decodes a kind name.
func (k *Kind) UnmarshalText(b []byte) error {
	switch string(b) {
	case "counter":
		*k = KindCounter
	case "gauge":
		*k = KindGauge
	case "histogram":
		*k = KindHistogram
	default:
		return fmt.Errorf("metrics: unknown kind %q", b)
	}
	return nil
}

// Desc describes one metric family.
type Desc struct {
	// Name is the family name: snake_case, [a-z0-9_:], starting with a
	// letter (Prometheus-compatible).
	Name string
	// Help is the one-line description emitted as # HELP.
	Help string
	// Kind selects counter/gauge/histogram.
	Kind Kind
	// Buckets are the histogram upper bounds, ascending; the +Inf overflow
	// bucket is implicit. Nil for counters and gauges.
	Buckets []float64
}

// Validate checks the name and bucket ordering.
func (d *Desc) Validate() error {
	if !ValidName(d.Name) {
		return fmt.Errorf("metrics: invalid metric name %q", d.Name)
	}
	if d.Kind == KindHistogram {
		if len(d.Buckets) == 0 {
			return fmt.Errorf("metrics: histogram %q has no buckets", d.Name)
		}
		for i := 1; i < len(d.Buckets); i++ {
			if d.Buckets[i] <= d.Buckets[i-1] {
				return fmt.Errorf("metrics: histogram %q buckets not ascending", d.Name)
			}
		}
	} else if len(d.Buckets) != 0 {
		return fmt.Errorf("metrics: %s %q must not declare buckets", d.Kind, d.Name)
	}
	return nil
}

// ValidName reports whether s is a legal snake_case metric or label name.
func ValidName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z':
		case c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Label is one key=value dimension of a sample.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Sample is one observation of a family at a label combination. For
// counters and gauges only Value is set; for histograms BucketCounts (one
// per Desc bucket plus a final overflow bucket), Sum, and Count are set.
type Sample struct {
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
	// BucketCounts holds non-cumulative per-bucket counts, len(Buckets)+1
	// entries (the last is the +Inf overflow bucket).
	BucketCounts []uint64 `json:"bucket_counts,omitempty"`
	Sum          float64  `json:"sum,omitempty"`
	Count        uint64   `json:"count,omitempty"`
}

// labelKey is the canonical sort/merge signature of a label set.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

// sortLabels orders a label set by key (canonical form). Duplicate keys are
// the caller's bug; they sort stably by value.
func sortLabels(labels []Label) {
	sort.Slice(labels, func(i, j int) bool {
		if labels[i].Key != labels[j].Key {
			return labels[i].Key < labels[j].Key
		}
		return labels[i].Value < labels[j].Value
	})
}

// L is a convenience constructor for a one-label set.
func L(key, value string) []Label { return []Label{{Key: key, Value: value}} }

// Source is the uniform collection interface a subsystem implements.
//
// Describe returns the fixed family descriptors; it must be pure. Collect
// emits the current samples by family name (every name must have been
// described). A Source may emit zero samples for a family (e.g. tracing not
// enabled); families with no samples are omitted from the gathered snapshot.
type Source interface {
	Describe() []Desc
	Collect(emit func(name string, s Sample))
}

// SourceFunc adapts a pair of closures to Source.
type SourceFunc struct {
	DescribeFunc func() []Desc
	CollectFunc  func(emit func(name string, s Sample))
}

// Describe implements Source.
func (s SourceFunc) Describe() []Desc { return s.DescribeFunc() }

// Collect implements Source.
func (s SourceFunc) Collect(emit func(name string, s Sample)) { s.CollectFunc(emit) }
