// Package par is the deterministic parallel-execution substrate under the
// campaign engine (internal/campaign) and the study loops in
// internal/attacks. The simulation is single-machine-deterministic — one
// booted core.System never shares state with another — so independent
// scenarios/boots are embarrassingly parallel. The only thing parallelism
// can break is *merge order*, and par removes that hazard by construction:
// work is addressed by index, every worker writes only its own index's
// slot, and callers merge slots in index order. The result is byte-identical
// to the sequential loop at any worker count.
//
// Cancellation composes with that contract: the context-aware variants stop
// *claiming* new indexes once the context is done, but an index that was
// claimed runs to completion and its slot is written. The completed prefix
// of a cancelled run is therefore byte-identical to the same prefix of an
// uncancelled run — which is what makes checkpoint/resume sound.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when a caller passes workers <= 0:
// one worker per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ForEach runs fn(i) for every i in [0, n) across min(workers, n)
// goroutines (workers <= 0 means DefaultWorkers). fn must confine its
// writes to data owned by index i (e.g. results[i]); under that contract
// the outcome is independent of scheduling.
//
// Errors are made deterministic too: every index runs to completion and
// the error reported is the one from the LOWEST failing index — exactly
// what a sequential loop that continued past failures would report first.
// (Sequential early-exit loops and parallel execution cannot agree on
// "first error observed", but they always agree on "lowest failing index".)
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), n, workers,
		func(_ context.Context, i int) error { return fn(i) })
}

// ForEachCtx is ForEach with cancellation: no new index is claimed once ctx
// is done, already-claimed indexes finish normally, and the context's error
// is returned (taking precedence over per-index errors, whose indexes may
// not all have run). With an un-cancellable context it behaves exactly like
// ForEach.
func ForEachCtx(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Fast path: plain loop, no goroutines — also what keeps
		// -workers=1 runs trivially comparable in a debugger.
		var firstErr error
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(ctx, i)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn over [0, n) with ForEach semantics and returns the
// index-ordered results. On error the index-ordered PARTIAL slice is
// returned alongside the deterministic lowest-index error: out[i] holds the
// zero value exactly for the indexes that failed, so callers can report
// partial progress instead of discarding completed work.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), n, workers,
		func(_ context.Context, i int) (T, error) { return fn(i) })
}

// MapCtx is Map with ForEachCtx's cancellation semantics; on cancellation
// the partial slice holds every index that completed before the context
// fired.
func MapCtx[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachCtx(ctx, n, workers, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}
