// Package par is the deterministic parallel-execution substrate under the
// campaign engine (internal/campaign) and the study loops in
// internal/attacks. The simulation is single-machine-deterministic — one
// booted core.System never shares state with another — so independent
// scenarios/boots are embarrassingly parallel. The only thing parallelism
// can break is *merge order*, and par removes that hazard by construction:
// work is addressed by index, every worker writes only its own index's
// slot, and callers merge slots in index order. The result is byte-identical
// to the sequential loop at any worker count.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when a caller passes workers <= 0:
// one worker per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ForEach runs fn(i) for every i in [0, n) across min(workers, n)
// goroutines (workers <= 0 means DefaultWorkers). fn must confine its
// writes to data owned by index i (e.g. results[i]); under that contract
// the outcome is independent of scheduling.
//
// Errors are made deterministic too: every index runs to completion and
// the error reported is the one from the LOWEST failing index — exactly
// what a sequential loop that continued past failures would report first.
// (Sequential early-exit loops and parallel execution cannot agree on
// "first error observed", but they always agree on "lowest failing index".)
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Fast path: plain loop, no goroutines — also what keeps
		// -workers=1 runs trivially comparable in a debugger.
		var firstErr error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn over [0, n) with ForEach semantics and returns the
// index-ordered results. On error the partial slice is discarded.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
