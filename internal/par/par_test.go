package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 3, 16, 0} {
		n := 100
		hits := make([]atomic.Int32, n)
		if err := ForEach(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	ran := false
	if err := ForEach(0, 4, func(int) error { ran = true; return nil }); err != nil || ran {
		t.Fatalf("n=0: err=%v ran=%v", err, ran)
	}
	if err := ForEach(-5, 4, func(int) error { ran = true; return nil }); err != nil || ran {
		t.Fatalf("n<0: err=%v ran=%v", err, ran)
	}
}

func TestForEachReportsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		err := ForEach(50, workers, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("fail@%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail@3" {
			t.Fatalf("workers=%d: err = %v, want fail@3", workers, err)
		}
	}
}

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		out, err := Map(64, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapDiscardsPartialOnError(t *testing.T) {
	out, err := Map(8, 4, func(i int) (int, error) {
		if i == 5 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("out=%v err=%v, want nil + error", out, err)
	}
}
