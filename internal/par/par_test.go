package par

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 3, 16, 0} {
		n := 100
		hits := make([]atomic.Int32, n)
		if err := ForEach(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	ran := false
	if err := ForEach(0, 4, func(int) error { ran = true; return nil }); err != nil || ran {
		t.Fatalf("n=0: err=%v ran=%v", err, ran)
	}
	if err := ForEach(-5, 4, func(int) error { ran = true; return nil }); err != nil || ran {
		t.Fatalf("n<0: err=%v ran=%v", err, ran)
	}
}

func TestForEachReportsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		err := ForEach(50, workers, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("fail@%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail@3" {
			t.Fatalf("workers=%d: err = %v, want fail@3", workers, err)
		}
	}
}

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		out, err := Map(64, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapKeepsPartialResultsOnError(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		out, err := Map(8, workers, func(i int) (int, error) {
			if i == 5 {
				return 0, errors.New("boom")
			}
			return i + 100, nil
		})
		if err == nil || err.Error() != "boom" {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		if len(out) != 8 {
			t.Fatalf("workers=%d: len(out) = %d, want 8", workers, len(out))
		}
		for i, v := range out {
			want := i + 100
			if i == 5 {
				want = 0 // the failed index holds the zero value
			}
			if v != want {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, want)
			}
		}
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		ran := false
		err := ForEachCtx(ctx, 10, workers, func(context.Context, int) error {
			ran = true
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if workers == 1 && ran {
			t.Fatal("workers=1: fn ran despite pre-cancelled context")
		}
	}
}

func TestForEachCtxStopsClaimingAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForEachCtx(ctx, 1000, 4, func(ctx context.Context, i int) error {
		if i == 0 {
			cancel()
		}
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Claimed indexes finish; unclaimed ones never start. With 4 workers at
	// most a handful of indexes were in flight when cancel fired.
	if got := ran.Load(); got >= 1000 {
		t.Fatalf("ran %d of 1000 indexes despite cancellation", got)
	}
}

func TestForEachCtxCancelErrorWinsOverIndexError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	err := ForEachCtx(ctx, 100, 4, func(ctx context.Context, i int) error {
		if i == 0 {
			cancel()
			return errors.New("index error")
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled to take precedence", err)
	}
}

func TestMapCtxPartialOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	out, err := MapCtx(ctx, 100, 1, func(ctx context.Context, i int) (int, error) {
		if i == 9 {
			cancel()
		}
		return i + 1, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Sequential: indexes 0..9 completed (cancel fired inside 9), 10+ never ran.
	for i := 0; i < 10; i++ {
		if out[i] != i+1 {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], i+1)
		}
	}
	for i := 10; i < 100; i++ {
		if out[i] != 0 {
			t.Fatalf("out[%d] = %d, want 0 (never claimed)", i, out[i])
		}
	}
}

func TestForEachCtxBackgroundMatchesForEach(t *testing.T) {
	n := 64
	a := make([]int, n)
	b := make([]int, n)
	if err := ForEach(n, 4, func(i int) error { a[i] = i * 3; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEachCtx(context.Background(), n, 4, func(_ context.Context, i int) error {
		b[i] = i * 3
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
