package experiments

import (
	"strings"
	"testing"
)

func TestIDsCoverEveryTableAndFigure(t *testing.T) {
	ids := IDs()
	want := []string{"T1", "T2", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "S2.4", "S5.2.1", "S5.3", "S6", "S7"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("IDs[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("Z9", QuickConfig); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestAllExperimentsPassQuickConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep is slow")
	}
	outcomes, err := All(QuickConfig)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		t.Logf("%s: OK=%v", o.ID, o.OK)
		if !o.OK {
			t.Errorf("experiment %s did not reproduce the paper's claim:\n%s", o.ID, o.Render())
		}
		if o.Text == "" {
			t.Errorf("experiment %s produced no artifact", o.ID)
		}
		if !strings.Contains(o.Render(), o.ID) {
			t.Errorf("render of %s lacks its ID", o.ID)
		}
	}
}

func TestRunSingleByID(t *testing.T) {
	o, err := Run("t1", QuickConfig) // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if o.ID != "T1" || !o.OK {
		t.Errorf("outcome = %+v", o)
	}
}
