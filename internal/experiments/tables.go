package experiments

import (
	"dmafault/internal/cminor"
	"dmafault/internal/corpus"
	"dmafault/internal/layout"
	"dmafault/internal/spade"
)

// Table1 regenerates the kernel memory layout table, plus two KASLR draws to
// show which bits move and which stay (the §2.4 weakness).
func Table1(cfg Config) (*Outcome, error) {
	o := newOutcome("T1", "Linux kernel memory layout (Table 1)")
	o.printf("%-18s %-10s %-18s %-8s %s\n", "Start Addr", "Offset", "End Addr", "Size", "VM area description")
	offsets := []string{"-119.5 TB", "-55 TB", "-22 TB", "-20 TB", "-2 GB", "-1536 MB"}
	for i, row := range layout.Table1() {
		o.printf("%-18x %-10s %-18x %-8s %s\n", uint64(row.Start), offsets[i], uint64(row.End), row.Size, row.Desc)
	}
	a := layout.New(layout.Config{KASLR: true, Seed: cfg.Seed, PhysBytes: 64 << 20})
	b := layout.New(layout.Config{KASLR: true, Seed: cfg.Seed + 1, PhysBytes: 64 << 20})
	o.printf("\nKASLR draws (two boots):\n")
	o.printf("  text base:        %#x vs %#x (2 MiB aligned: low 21 bits fixed)\n", uint64(a.TextBase), uint64(b.TextBase))
	o.printf("  page_offset_base: %#x vs %#x (1 GiB aligned: low 30 bits fixed)\n", uint64(a.PageOffsetBase), uint64(b.PageOffsetBase))
	o.printf("  vmemmap_base:     %#x vs %#x (1 GiB aligned)\n", uint64(a.VmemmapBase), uint64(b.VmemmapBase))
	o.OK = a.TextBase&(layout.TextAlign-1) == 0 && a.PageOffsetBase&(layout.DirectMapAlign-1) == 0
	o.metric("regions", "%d", len(layout.Table1()))
	return o, nil
}

// Table2 runs SPADE over the calibrated corpus and checks every row against
// the paper's numbers.
func Table2(cfg Config) (*Outcome, error) {
	o := newOutcome("T2", "SPADE results summary (Table 2)")
	var parsed []*cminor.File
	for _, sf := range corpus.Generate(corpus.Linux50) {
		f, err := cminor.Parse(sf.Name, sf.Content)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	rep := spade.NewAnalyzer(parsed).Run()
	o.printf("%s", rep.Table())

	type row struct {
		name               string
		got                spade.RowCount
		wantCalls, wantFls int
	}
	rows := []row{
		{"callbacks_exposed", rep.CallbacksExposed, 156, 57},
		{"skb_shared_info_mapped", rep.SkbSharedInfoMapped, 464, 232},
		{"callbacks_direct", rep.CallbacksDirect, 54, 28},
		{"private_data_mapped", rep.PrivateDataMapped, 19, 7},
		{"stack_mapped", rep.StackMapped, 3, 3},
		{"type_c", rep.TypeCVulnerable, 344, 227},
		{"build_skb", rep.BuildSkbUsed, 46, 40},
	}
	for _, r := range rows {
		o.metric(r.name, "%d/%d (paper %d/%d)", r.got.Calls, r.got.Files, r.wantCalls, r.wantFls)
		if r.got.Calls != r.wantCalls || r.got.Files != r.wantFls {
			o.OK = false
		}
	}
	o.metric("total", "%d calls / %d files (paper 1019/447)", rep.TotalCalls, rep.TotalFiles)
	o.metric("vulnerable", "%d = %.1f%% (paper 742 = 72.8%%)", rep.VulnerableCalls, 100*float64(rep.VulnerableCalls)/float64(rep.TotalCalls))
	if rep.TotalCalls != 1019 || rep.VulnerableCalls != 742 {
		o.OK = false
	}
	return o, nil
}
