package experiments

import (
	"fmt"

	"dmafault/internal/attacks"
	"dmafault/internal/cminor"
	"dmafault/internal/core"
	"dmafault/internal/corpus"
	"dmafault/internal/device"
	"dmafault/internal/dkasan"
	"dmafault/internal/dma"
	"dmafault/internal/iommu"
	"dmafault/internal/kexec"
	"dmafault/internal/layout"
	"dmafault/internal/netstack"
	"dmafault/internal/sim"
	"dmafault/internal/spade"
	"dmafault/internal/workload"
)

const nicDev iommu.DeviceID = 1

func bootSystem(cfg Config, mode iommu.Mode, forwarding bool) (*core.System, *netstack.NIC, error) {
	sys, err := core.NewSystem(core.Config{Seed: cfg.Seed, KASLR: true, Mode: mode, Forwarding: forwarding})
	if err != nil {
		return nil, nil, err
	}
	nic, err := sys.AddNIC(nicDev, netstack.DriverI40E, 0)
	if err != nil {
		return nil, nil, err
	}
	return sys, nic, nil
}

func attackerFor(sys *core.System) (*device.Attacker, error) {
	build, err := kexec.ExtractBuildOffsets(sys.Kernel.Text(), sys.Layout.Symbols())
	if err != nil {
		return nil, err
	}
	return device.NewAttacker(nicDev, sys.Bus, sys.Layout.Symbols(), build), nil
}

// Figure1 constructs one live instance of each sub-page vulnerability type
// (a)–(d) and verifies device visibility through the IOMMU.
func Figure1(cfg Config) (*Outcome, error) {
	o := newOutcome("F1", "The four sub-page vulnerability types (Figure 1)")
	sys, nic, err := bootSystem(cfg, iommu.Strict, false)
	if err != nil {
		return nil, err
	}
	atk, err := attackerFor(sys)
	if err != nil {
		return nil, err
	}

	// (a) Driver metadata: a buggy driver maps a whole command struct.
	blk, err := attacks.InstallBuggyDriver(sys, nicDev, 0)
	if err != nil {
		return nil, err
	}
	words, err := atk.ReadWords(blk.IOVA, 4)
	if err != nil {
		return nil, err
	}
	aOK := layout.Addr(words[0]) == blk.KVA // self list head readable
	o.printf("(a) driver metadata: mapped command struct leaks its own KVA %#x: %v\n", words[0], aOK)

	// (b) OS metadata: skb_shared_info always rides on the data page.
	s, err := sys.Net.AllocSKB(0, 2048)
	if err != nil {
		return nil, err
	}
	va, err := sys.Mapper.MapSingle(nicDev, s.Head, netstack.TruesizeFor(2048), dma.FromDevice)
	if err != nil {
		return nil, err
	}
	siIOVA := device.SharedInfoIOVA(va, 2048)
	bOK := atk.CanWrite(siIOVA)
	o.printf("(b) OS metadata: skb_shared_info at IOVA %#x is device-writable with its packet: %v\n", uint64(siIOVA), bOK)
	if err := sys.Mapper.UnmapSingle(nicDev, va, netstack.TruesizeFor(2048), dma.FromDevice); err != nil {
		return nil, err
	}
	if err := sys.Net.ReleaseSKB(s); err != nil {
		return nil, err
	}

	// (c) Multiple IOVAs: two ring buffers on one page.
	dom, err := sys.IOMMU.DomainOf(nicDev)
	if err != nil {
		return nil, err
	}
	cOK := false
	var cPage layout.PFN
	for _, d := range nic.RXRing() {
		pfn, err := sys.Layout.KVAToPFN(d.Data)
		if err != nil {
			continue
		}
		if len(dom.IOVAsFor(pfn)) >= 2 {
			cOK, cPage = true, pfn
			break
		}
	}
	o.printf("(c) multiple IOVA: RX ring page %d mapped by %d IOVAs: %v\n", cPage, 2, cOK)

	// (d) Random co-location: a secret kmalloc object shares the page of a
	// mapped same-class buffer.
	ioBuf, _ := sys.Mem.Slab.Kmalloc(0, 512, "nic_io")
	secret, _ := sys.Mem.Slab.Kmalloc(0, 512, "session_key")
	if err := sys.Mem.WriteU64(secret, 0x5ec2e7); err != nil {
		return nil, err
	}
	vb, err := sys.Mapper.MapSingle(nicDev, ioBuf, 512, dma.Bidirectional)
	if err != nil {
		return nil, err
	}
	leak, err := atk.ReadWords(vb+iommu.IOVA(secret-ioBuf), 1)
	dOK := err == nil && leak[0] == 0x5ec2e7
	o.printf("(d) random co-location: secret kmalloc object leaked through I/O buffer mapping: %v\n", dOK)

	o.OK = aOK && bOK && cOK && dOK
	o.metric("types_demonstrated", "%d/4", boolCount(aOK, bOK, cOK, dOK))
	return o, nil
}

func boolCount(bs ...bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// Figure2 regenerates the SPADE trace for the nvme_fc driver.
func Figure2(cfg Config) (*Outcome, error) {
	o := newOutcome("F2", "SPADE output for nvme_fc (Figure 2)")
	f, err := cminor.Parse("drivers/nvme/host/fc.c", corpus.NvmeFC)
	if err != nil {
		return nil, err
	}
	rep := spade.NewAnalyzer([]*cminor.File{f}).Run()
	o.printf("%s", rep.TraceFor("drivers/nvme/host/fc.c"))
	for _, fd := range rep.Findings {
		if fd.ExposedStruct == "nvme_fc_fcp_op" && fd.DirectCallbacks == 1 {
			o.metric("direct_callbacks", "%d (paper: 1, fcp_req.done)", fd.DirectCallbacks)
			o.metric("spoofable_callbacks", "%d (paper: 931 on the full tree)", fd.SpoofableCallbacks)
			o.OK = fd.DirectCallbacks == 1 && fd.SpoofableCallbacks > 0
			return o, nil
		}
	}
	o.OK = false
	return o, nil
}

// Figure3 runs the D-KASAN workload and renders the report.
func Figure3(cfg Config) (*Outcome, error) {
	o := newOutcome("F3", "D-KASAN report under build+ping workload (Figure 3)")
	dk := dkasan.New()
	sys, err := core.NewSystem(core.Config{Seed: cfg.Seed, KASLR: true, Mode: iommu.Deferred, Tracer: dk})
	if err != nil {
		return nil, err
	}
	dk.Attach(sys.Mem, sys.Mapper)
	nic, err := sys.AddNIC(nicDev, netstack.DriverI40E, 0)
	if err != nil {
		return nil, err
	}
	if _, err := workload.Run(sys, nic, workload.Config{Iterations: 12, NICDevice: nicDev}); err != nil {
		return nil, err
	}
	o.printf("%s", dk.Render())
	st := dk.Stats()
	o.metric("alloc_after_map", "%d", st.AllocAfterMap)
	o.metric("map_after_alloc", "%d", st.MapAfterAlloc)
	o.metric("access_after_map", "%d", st.AccessAfterMap)
	o.metric("multiple_map", "%d", st.MultipleMap)
	o.OK = st.AllocAfterMap > 0 && st.MultipleMap > 0
	return o, nil
}

// Figure4 executes the skb_shared_info code-injection walk of Fig. 4 in
// isolation (attributes granted, mechanism under test).
func Figure4(cfg Config) (*Outcome, error) {
	o := newOutcome("F4", "skb_shared_info code injection (Figure 4)")
	sys, nic, err := bootSystem(cfg, iommu.Strict, false)
	if err != nil {
		return nil, err
	}
	atk, err := attackerFor(sys)
	if err != nil {
		return nil, err
	}
	// Grant the KASLR break via the init_net leak.
	initNet, err := sys.Layout.SymbolKVA("init_net")
	if err != nil {
		return nil, err
	}
	atk.Infer.ObserveWords([]uint64{uint64(initNet)})

	d := nic.RXRing()[0]
	o.printf("(a) RX buffer mapped WRITE at IOVA %#x (whole page)\n", uint64(d.IOVA))
	if err := atk.PlantPayload(d.IOVA, d.Data, d.Cap); err != nil {
		return nil, err
	}
	o.printf("(b) destructor_arg overwritten to point at device-built ubuf_info\n")
	o.printf("(c) ubuf_info callback = JOP pivot; ROP chain beside it\n")
	s, err := sys.Net.BuildSKB(d.Data, uint32(netstack.TruesizeFor(d.Cap)))
	if err != nil {
		return nil, err
	}
	s.Source = netstack.DataExternal // keep the ring buffer for inspection
	// Restore the planted destructor_arg (BuildSKB zeroed shared info, as
	// the driver does; Fig. 4 assumes the device wins the §5.2 window —
	// probed separately in F7).
	if err := atk.PlantPayload(d.IOVA, d.Data, d.Cap); err != nil {
		return nil, err
	}
	before := sys.Kernel.Escalations
	relErr := sys.Net.ReleaseSKB(s)
	o.printf("(d) sk_buff released → callback invoked: escalations=%d (err=%v)\n", sys.Kernel.Escalations-before, relErr)
	o.OK = sys.Kernel.Escalations == before+1
	o.metric("escalations", "%d", sys.Kernel.Escalations-before)
	return o, nil
}

// Figure5 demonstrates page_frag allocation geometry (Fig. 5).
func Figure5(cfg Config) (*Outcome, error) {
	o := newOutcome("F5", "page_frag allocation (Figure 5)")
	sys, _, err := bootSystem(cfg, iommu.Strict, false)
	if err != nil {
		return nil, err
	}
	var addrs []layout.Addr
	for i := 0; i < 13; i++ {
		a, err := sys.Mem.Frag.Alloc(1, 2048, 64)
		if err != nil {
			return nil, err
		}
		addrs = append(addrs, a)
	}
	samePage, sameRegion := 0, 0
	for i := 1; i < len(addrs); i++ {
		p1, _ := sys.Layout.KVAToPFN(addrs[i-1])
		p2, _ := sys.Layout.KVAToPFN(addrs[i] + 2047)
		if p1 == p2 {
			samePage++
		}
		r1, _ := sys.Mem.Frag.RegionOf(addrs[i-1])
		r2, _ := sys.Mem.Frag.RegionOf(addrs[i])
		if r1 == r2 {
			sameRegion++
		}
	}
	o.printf("13 consecutive 2 KiB allocations: offsets descend within 32 KiB regions\n")
	for i, a := range addrs {
		o.printf("  buf[%2d] KVA %#x (page offset %4d)\n", i, uint64(a), layout.PageOffsetOf(a))
	}
	o.printf("adjacent pairs sharing a page: %d; pairs in same region: %d\n", samePage, sameRegion)
	o.metric("same_page_pairs", "%d/12", samePage)
	o.metric("descending", "%v", addrs[1] < addrs[0])
	o.OK = samePage > 0 && addrs[1] < addrs[0]
	for _, a := range addrs {
		if err := sys.Mem.Frag.Free(1, a); err != nil {
			return nil, err
		}
	}
	return o, nil
}

// Figure6 measures the strict-vs-deferred invalidation window (Fig. 6).
func Figure6(cfg Config) (*Outcome, error) {
	o := newOutcome("F6", "Strict vs deferred IOTLB invalidation window (Figure 6)")
	measure := func(mode iommu.Mode) (sim.Nanos, error) {
		sys, err := core.NewSystem(core.Config{Seed: cfg.Seed, KASLR: true, Mode: mode})
		if err != nil {
			return 0, err
		}
		if _, err := sys.IOMMU.CreateDomain("nic", nicDev); err != nil {
			return 0, err
		}
		buf, err := sys.Mem.Slab.Kmalloc(0, 2048, "rx")
		if err != nil {
			return 0, err
		}
		va, err := sys.Mapper.MapSingle(nicDev, buf, 2048, dma.FromDevice)
		if err != nil {
			return 0, err
		}
		if err := sys.Bus.Write(nicDev, va, []byte{1}); err != nil { // prime IOTLB
			return 0, err
		}
		start := sys.Clock.Now()
		if err := sys.Mapper.UnmapSingle(nicDev, va, 2048, dma.FromDevice); err != nil {
			return 0, err
		}
		// Probe until the device loses access, advancing 100 µs per step.
		for sys.Clock.Now()-start < 20*sim.Millisecond {
			if err := sys.Bus.Write(nicDev, va, []byte{2}); err != nil {
				return sys.Clock.Now() - start, nil
			}
			sys.Clock.Advance(100 * sim.Microsecond)
		}
		return sys.Clock.Now() - start, nil
	}
	strictWin, err := measure(iommu.Strict)
	if err != nil {
		return nil, err
	}
	deferredWin, err := measure(iommu.Deferred)
	if err != nil {
		return nil, err
	}
	o.printf("strict:   device loses access %.3f ms after dma_unmap\n", float64(strictWin)/float64(sim.Millisecond))
	o.printf("deferred: device retains access for %.3f ms after dma_unmap (paper: up to 10 ms)\n", float64(deferredWin)/float64(sim.Millisecond))
	o.metric("strict_window_ms", "%.3f", float64(strictWin)/float64(sim.Millisecond))
	o.metric("deferred_window_ms", "%.3f", float64(deferredWin)/float64(sim.Millisecond))
	o.OK = strictWin < sim.Millisecond && deferredWin >= 9*sim.Millisecond && deferredWin <= 11*sim.Millisecond
	return o, nil
}

// Figure7 evaluates the time-window matrix (Fig. 7): every driver-ordering ×
// IOMMU-mode cell has a working corruption path.
func Figure7(cfg Config) (*Outcome, error) {
	o := newOutcome("F7", "Time-window paths (Figure 7)")
	cells, err := attacks.WindowMatrix(cfg.Seed)
	if err != nil {
		return nil, err
	}
	allHave := true
	for _, c := range cells {
		o.printf("%-18s %-9s → %v\n", c.Driver, c.Mode, c.Path)
		o.metric(fmt.Sprintf("%s_%s", c.Driver, c.Mode), "%v", c.Path)
		if c.Path == attacks.WindowNone {
			allHave = false
		}
	}
	o.printf("conclusion: the attacker can always modify the callback pointer (§5.2)\n")
	o.OK = allHave
	return o, nil
}

// Figure8 runs the Poisoned TX compound attack end to end.
func Figure8(cfg Config) (*Outcome, error) {
	o := newOutcome("F8", "Poisoned TX compound attack (Figure 8)")
	sys, nic, err := bootSystem(cfg, iommu.Deferred, false)
	if err != nil {
		return nil, err
	}
	r := attacks.RunPoisonedTX(sys, nic)
	o.printf("%s", r.String())
	o.OK = r.Success
	o.metric("escalations", "%d", r.Escalations)
	return o, nil
}

// Figure9 runs Forward Thinking plus the surveillance variant.
func Figure9(cfg Config) (*Outcome, error) {
	o := newOutcome("F9", "Forward Thinking via GRO + surveillance (Figure 9)")
	sys, nic, err := bootSystem(cfg, iommu.Deferred, true)
	if err != nil {
		return nil, err
	}
	r := attacks.RunForwardThinking(sys, nic)
	o.printf("%s", r.String())

	sys2, nic2, err := bootSystem(cfg, iommu.Deferred, true)
	if err != nil {
		return nil, err
	}
	secretKVA, err := sys2.Mem.Slab.Kmalloc(1, 64, "vault")
	if err != nil {
		return nil, err
	}
	if err := sys2.Mem.Write(secretKVA, []byte("in-kernel secret")); err != nil {
		return nil, err
	}
	sr, got := attacks.RunSurveillance(sys2, nic2, secretKVA, 16)
	o.printf("%s", sr.String())
	o.printf("surveillance read: %q\n", got)
	o.OK = r.Success && sr.Success && string(got) == "in-kernel secret"
	o.metric("code_injection", "%v", r.Success)
	o.metric("surveillance", "%v (clean=%s)", sr.Success, sr.Detail["clean"])
	return o, nil
}
