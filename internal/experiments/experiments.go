// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated substrates. Each experiment returns an Outcome
// with a rendered text artifact plus machine-checkable metrics; the bench
// harness (bench_test.go) and cmd/experiments both delegate here, and
// EXPERIMENTS.md records paper-vs-measured for each ID.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Outcome is one regenerated artifact.
type Outcome struct {
	ID    string // "T1", "F6", "S5.3", ...
	Title string
	// Text is the rendered artifact (table rows / report lines / trace).
	Text string
	// Metrics are the headline numbers, for EXPERIMENTS.md and assertions.
	Metrics map[string]string
	// OK reports whether the paper's qualitative claim held.
	OK bool
}

func newOutcome(id, title string) *Outcome {
	return &Outcome{ID: id, Title: title, Metrics: make(map[string]string), OK: true}
}

func (o *Outcome) metric(k, format string, args ...any) {
	o.Metrics[k] = fmt.Sprintf(format, args...)
}

func (o *Outcome) printf(format string, args ...any) {
	o.Text += fmt.Sprintf(format, args...)
}

// Render pretty-prints the outcome.
func (o *Outcome) Render() string {
	var b strings.Builder
	status := "OK"
	if !o.OK {
		status = "MISMATCH"
	}
	fmt.Fprintf(&b, "== %s: %s [%s] ==\n", o.ID, o.Title, status)
	b.WriteString(o.Text)
	if len(o.Metrics) > 0 {
		keys := make([]string, 0, len(o.Metrics))
		for k := range o.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("-- metrics --\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-32s %s\n", k, o.Metrics[k])
		}
	}
	return b.String()
}

// Config scales the slow experiments.
type Config struct {
	// BootTrials is the §5.3 reboot count (paper: 256).
	BootTrials int
	// CampaignAttempts is the RingFlood success-rate sample size.
	CampaignAttempts int
	// Seed seeds every experiment deterministically.
	Seed int64
}

// DefaultConfig matches the paper's scale.
var DefaultConfig = Config{BootTrials: 256, CampaignAttempts: 16, Seed: 2021}

// QuickConfig keeps test runs fast.
var QuickConfig = Config{BootTrials: 16, CampaignAttempts: 4, Seed: 2021}

// runner is one experiment entry.
type runner struct {
	id  string
	run func(Config) (*Outcome, error)
}

// registry lists every experiment in paper order.
func registry() []runner {
	return []runner{
		{"T1", func(c Config) (*Outcome, error) { return Table1(c) }},
		{"T2", func(c Config) (*Outcome, error) { return Table2(c) }},
		{"F1", func(c Config) (*Outcome, error) { return Figure1(c) }},
		{"F2", func(c Config) (*Outcome, error) { return Figure2(c) }},
		{"F3", func(c Config) (*Outcome, error) { return Figure3(c) }},
		{"F4", func(c Config) (*Outcome, error) { return Figure4(c) }},
		{"F5", func(c Config) (*Outcome, error) { return Figure5(c) }},
		{"F6", func(c Config) (*Outcome, error) { return Figure6(c) }},
		{"F7", func(c Config) (*Outcome, error) { return Figure7(c) }},
		{"F8", func(c Config) (*Outcome, error) { return Figure8(c) }},
		{"F9", func(c Config) (*Outcome, error) { return Figure9(c) }},
		{"S2.4", func(c Config) (*Outcome, error) { return Sec24(c) }},
		{"S5.2.1", func(c Config) (*Outcome, error) { return Sec521(c) }},
		{"S5.3", func(c Config) (*Outcome, error) { return Sec53(c) }},
		{"S6", func(c Config) (*Outcome, error) { return Sec6(c) }},
		{"S7", func(c Config) (*Outcome, error) { return Sec7(c) }},
	}
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) (*Outcome, error) {
	for _, r := range registry() {
		if strings.EqualFold(r.id, id) {
			return r.run(cfg)
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}

// IDs lists the experiment identifiers in paper order.
func IDs() []string {
	var out []string
	for _, r := range registry() {
		out = append(out, r.id)
	}
	return out
}

// All runs every experiment.
func All(cfg Config) ([]*Outcome, error) {
	var out []*Outcome
	for _, r := range registry() {
		o, err := r.run(cfg)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", r.id, err)
		}
		out = append(out, o)
	}
	return out, nil
}
