package experiments

import (
	"dmafault/internal/attacks"
	"dmafault/internal/core"
	"dmafault/internal/dma"
	"dmafault/internal/iommu"
	"dmafault/internal/kexec"
	"dmafault/internal/layout"
	"dmafault/internal/netstack"
	"dmafault/internal/otheros"
	"dmafault/internal/sim"
)

// Sec24 reproduces the §2.4 KASLR compromise: scanning leaked words from
// device-readable pages recovers all three randomized bases.
func Sec24(cfg Config) (*Outcome, error) {
	o := newOutcome("S2.4", "KASLR subversion from leaked pointers (§2.4)")
	sys, nic, err := bootSystem(cfg, iommu.Deferred, false)
	if err != nil {
		return nil, err
	}
	atk, err := attackerFor(sys)
	if err != nil {
		return nil, err
	}
	cb, err := nic.MapControlBuffer()
	if err != nil {
		return nil, err
	}
	for i := 0; i < 6; i++ {
		if _, err := sys.Net.AllocSocket(0, "sock_alloc_inode+0x4f"); err != nil {
			return nil, err
		}
	}
	used := atk.ScanReadable([]iommu.IOVA{cb.IOVA})
	o.printf("scanned %d page(s), %d words; %d pointers consumed\n", atk.PagesScanned, atk.WordsScanned, used)

	tb, errT := atk.Infer.TextBase()
	pb, errP := atk.Infer.PageOffsetBase()
	o.printf("text base:        recovered %#x, truth %#x (via init_net low-21 match)\n", uint64(tb), uint64(sys.Layout.TextBase))
	o.printf("page_offset_base: recovered %#x, truth %#x (via 1 GiB alignment of leaked direct-map pointer)\n", uint64(pb), uint64(sys.Layout.PageOffsetBase))

	// vmemmap comes from a struct page leak (e.g. a TX frags entry).
	sp := sys.Layout.PFNToStructPage(1234)
	atk.Infer.ObserveWords([]uint64{uint64(sp)})
	vb, errV := atk.Infer.VmemmapBase()
	o.printf("vmemmap_base:     recovered %#x, truth %#x (via struct page pointer)\n", uint64(vb), uint64(sys.Layout.VmemmapBase))

	o.OK = errT == nil && errP == nil && errV == nil &&
		tb == sys.Layout.TextBase && pb == sys.Layout.PageOffsetBase && vb == sys.Layout.VmemmapBase
	o.metric("text_base_recovered", "%v", errT == nil && tb == sys.Layout.TextBase)
	o.metric("page_offset_recovered", "%v", errP == nil && pb == sys.Layout.PageOffsetBase)
	o.metric("vmemmap_recovered", "%v", errV == nil && vb == sys.Layout.VmemmapBase)
	return o, nil
}

// Sec521 quantifies the deferred-invalidation design (§5.2.1): per-unmap
// cost under strict vs deferred, and the window it buys the attacker.
func Sec521(cfg Config) (*Outcome, error) {
	o := newOutcome("S5.2.1", "IOTLB invalidation cost: strict vs deferred (§5.2.1)")
	const ops = 2048
	run := func(mode iommu.Mode) (perOp sim.Nanos, flushes uint64, err error) {
		sys, err := core.NewSystem(core.Config{Seed: cfg.Seed, KASLR: true, Mode: mode})
		if err != nil {
			return 0, 0, err
		}
		if _, err := sys.IOMMU.CreateDomain("nic", nicDev); err != nil {
			return 0, 0, err
		}
		buf, err := sys.Mem.Slab.Kmalloc(0, 2048, "io")
		if err != nil {
			return 0, 0, err
		}
		start := sys.Clock.Now()
		for i := 0; i < ops; i++ {
			va, err := sys.Mapper.MapSingle(nicDev, buf, 2048, dma.FromDevice)
			if err != nil {
				return 0, 0, err
			}
			if err := sys.Mapper.UnmapSingle(nicDev, va, 2048, dma.FromDevice); err != nil {
				return 0, 0, err
			}
		}
		elapsed := sys.Clock.Now() - start
		return elapsed / ops, sys.IOMMU.Stats().GlobalFlushes, nil
	}
	strictCost, _, err := run(iommu.Strict)
	if err != nil {
		return nil, err
	}
	deferredCost, flushes, err := run(iommu.Deferred)
	if err != nil {
		return nil, err
	}
	o.printf("per map/unmap invalidation overhead (%d ops):\n", ops)
	o.printf("  strict:   %4d ns/op (every unmap pays the ~2000-cycle invalidation)\n", strictCost)
	o.printf("  deferred: %4d ns/op (%d batched global flushes)\n", deferredCost, flushes)
	o.printf("  IOTLB invalidation ≈ 2000 cycles vs TLB invalidation ≈ 100 cycles (§5.2.1)\n")
	factor := float64(strictCost) / float64(max64(1, uint64(deferredCost)))
	o.printf("  strict/deferred cost ratio: %.0fx — why Linux defaults to deferred\n", factor)
	o.metric("strict_ns_per_op", "%d", strictCost)
	o.metric("deferred_ns_per_op", "%d", deferredCost)
	o.metric("cost_ratio", "%.0fx", factor)
	o.metric("deferred_timeout_ms", "%d", iommu.DeferredTimeout/sim.Millisecond)
	o.OK = strictCost > deferredCost && factor >= 10
	return o, nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Sec53 runs the boot-determinism study and a RingFlood campaign (§5.3).
func Sec53(cfg Config) (*Outcome, error) {
	o := newOutcome("S5.3", "Boot determinism and RingFlood success (§5.3)")
	trials := cfg.BootTrials
	if trials <= 0 {
		trials = 16
	}
	st50, err := attacks.RunBootStudy(attacks.Kernel50, trials, cfg.Seed)
	if err != nil {
		return nil, err
	}
	st415, err := attacks.RunBootStudy(attacks.Kernel415, trials, cfg.Seed+10_000)
	if err != nil {
		return nil, err
	}
	o.printf("%d simulated reboots per kernel (paper: 256 physical reboots):\n", trials)
	o.printf("  kernel 5.0  (mlx5, LRO off, 2 KiB entries):  footprint %5d pages, modal PFN repeat %.0f%%, median %.0f%%\n",
		st50.FootprintPages, st50.ModalRate*100, st50.MedianRate*100)
	o.printf("  kernel 4.15 (mlx5, HW LRO, 64 KiB entries):  footprint %5d pages, modal PFN repeat %.0f%%, median %.0f%%\n",
		st415.FootprintPages, st415.ModalRate*100, st415.MedianRate*100)
	o.printf("  paper: \"many PFNs repeat in more than 50%% of reboots on kernel 5.0 and more than 95%% on kernel 4.15\"\n")

	// The "larger machines" axis (§5.3: footprint scales with the number of
	// RX rings): under heavy drift, one queue's footprint repeats poorly
	// while eight queues blanket the drift range.
	qTrials := trials / 8
	if qTrials < 8 {
		qTrials = 8
	}
	if qTrials > 16 {
		qTrials = 16
	}
	qRate := func(queues int) (float64, error) {
		freq := map[layout.PFN]int{}
		var ref map[layout.PFN]uint64
		for i := 0; i < qTrials; i++ {
			_, _, rec, err := attacks.BootOnceQueues(attacks.Kernel50, cfg.Seed+30_000+int64(i), 0, 2048, queues)
			if err != nil {
				return 0, err
			}
			if ref == nil {
				ref = rec.BufStart
			}
			for p := range rec.BufStart {
				freq[p]++
			}
		}
		best := 0
		for p := range ref {
			if freq[p] > best {
				best = freq[p]
			}
		}
		return float64(best) / float64(qTrials), nil
	}
	q1, err := qRate(1)
	if err != nil {
		return nil, err
	}
	q8, err := qRate(8)
	if err != nil {
		return nil, err
	}
	o.printf("larger machines (heavy drift, %d reboots): 1 RX ring repeat %.0f%%, 8 RX rings %.0f%%\n", qTrials, q1*100, q8*100)

	attemptsN := cfg.CampaignAttempts
	if attemptsN <= 0 {
		attemptsN = 4
	}
	hits, _, err := attacks.RingFloodCampaign(attacks.Kernel415, st415, attemptsN, cfg.Seed+77_000)
	if err != nil {
		return nil, err
	}
	o.printf("RingFlood campaign on kernel 4.15: %d/%d fresh boots compromised\n", hits, attemptsN)
	o.metric("repeat_rate_5.0", "%.2f (paper >0.50)", st50.ModalRate)
	o.metric("repeat_rate_4.15", "%.2f (paper >0.95)", st415.ModalRate)
	o.metric("footprint_ratio", "%.0fx", float64(st415.FootprintPages)/float64(max64(1, uint64(st50.FootprintPages))))
	o.metric("queues_1_vs_8", "%.2f vs %.2f (more rings → higher repeat)", q1, q8)
	o.metric("ringflood_hits", "%d/%d", hits, attemptsN)
	o.OK = st50.ModalRate > 0.50 && st415.ModalRate > 0.95 && st415.ModalRate >= st50.ModalRate && hits > 0 && q8 >= q1
	return o, nil
}

// Sec6 is the end-to-end demonstration (§6): gadget discovery à la ROPgadget
// plus a complete RingFlood run with the FireWire co-attacker sharing the
// NIC's IOVA page table.
func Sec6(cfg Config) (*Outcome, error) {
	o := newOutcome("S6", "End-to-end attack demonstration (§6)")
	study, err := attacks.RunBootStudy(attacks.Kernel415, maxInt(cfg.BootTrials/4, 8), cfg.Seed+5)
	if err != nil {
		return nil, err
	}
	sys, nic, _, err := attacks.BootOnce(attacks.Kernel415, cfg.Seed+5, 0)
	if err != nil {
		return nil, err
	}
	// The FireWire attacker shares the NIC's domain (the paper's testbed).
	const firewire iommu.DeviceID = 9
	if err := sys.AttachToDomainOf(firewire, nic.Dev); err != nil {
		return nil, err
	}
	g, ok := sys.Kernel.Text().FindGadget(kexec.GadgetPivot)
	if !ok {
		o.OK = false
		o.printf("no JOP pivot gadget found\n")
		return o, nil
	}
	o.printf("ROPgadget-style scan found the JOP gadget \"%%rsp = %%rdi + %#x\" at text+%#x\n", g.Imm, g.Offset)
	r := attacks.RunRingFlood(sys, nic, study)
	o.printf("%s", r.String())
	o.metric("pivot_gadget_offset", "%#x", g.Offset)
	o.metric("escalations", "%d", r.Escalations)
	o.OK = r.Success
	return o, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Sec7 evaluates mitigations (§7/§8/§9): what blocks single-step attacks,
// what blocks compound attacks, and what survives.
func Sec7(cfg Config) (*Outcome, error) {
	o := newOutcome("S7", "Mitigations: what holds and what falls (§7–§9)")

	// 1. Strict mode alone does NOT stop the compound attacks (Fig. 7 row
	//    i40e/strict): Poisoned TX still lands.
	sysStrict, nicStrict, err := bootSystem(cfg, iommu.Strict, false)
	if err != nil {
		return nil, err
	}
	rStrict := attacks.RunPoisonedTX(sysStrict, nicStrict)
	o.printf("strict IOTLB invalidation:      Poisoned TX success=%v (driver-order window survives)\n", rStrict.Success)

	// 2. Intel CET (shadow stack) kills the ROP stage.
	sysCET, nicCET, err := bootSystem(cfg, iommu.Deferred, false)
	if err != nil {
		return nil, err
	}
	sysCET.Kernel.CETEnabled = true
	rCET := attacks.RunPoisonedTX(sysCET, nicCET)
	o.printf("Intel CET shadow stack:         Poisoned TX success=%v (returns without calls fault)\n", rCET.Success)

	// 3. Bounce buffers (Markuze et al. [47]): device writes outside the
	//    requested bytes never reach kernel memory.
	sysB, _, err := bootSystem(cfg, iommu.Deferred, false)
	if err != nil {
		return nil, err
	}
	bm := dma.NewBounceMapper(sysB.Mem, sysB.Mapper)
	buf, err := sysB.Mem.Pages.AllocPages(0, 0)
	if err != nil {
		return nil, err
	}
	kva := sysB.Layout.PFNToKVA(buf)
	siOff := netstack.TruesizeFor(2048) - netstack.SharedInfoSize
	if err := sysB.Mem.WriteU64(kva+layout.Addr(siOff)+netstack.SharedInfoDestructorArgOff, 0); err != nil {
		return nil, err
	}
	va, err := bm.MapSingle(nicDev, kva, 1500, dma.FromDevice)
	if err != nil {
		return nil, err
	}
	// The device corrupts "shared info" on the shadow page...
	if err := sysB.Bus.WriteU64(nicDev, (va&^iommu.IOVA(layout.PageMask))+iommu.IOVA(siOff)+netstack.SharedInfoDestructorArgOff, 0xbad); err != nil {
		return nil, err
	}
	if err := bm.UnmapSingle(nicDev, va, 1500, dma.FromDevice); err != nil {
		return nil, err
	}
	darg, err := sysB.Mem.ReadU64(kva + layout.Addr(siOff) + netstack.SharedInfoDestructorArgOff)
	if err != nil {
		return nil, err
	}
	bounceBlocks := darg == 0
	o.printf("bounce buffers [47]:            shared-info corruption reaches kernel=%v (copy-back covers n bytes only)\n", !bounceBlocks)

	// 4. The §7 OS survey, run for real against the otheros models:
	//    Windows NET_BUFFER and FreeBSD mbuf fall to single-step attacks;
	//    macOS blinding stops single-step but falls to one XOR once the
	//    attacker holds a known plaintext/ciphertext pair.
	osRow := func(os otheros.OS, blindWithCookie bool) (bool, error) {
		sys, err := core.NewSystem(core.Config{Seed: cfg.Seed + 50, KASLR: true, Mode: iommu.Strict})
		if err != nil {
			return false, err
		}
		if _, err := sys.IOMMU.CreateDomain("nic", nicDev); err != nil {
			return false, err
		}
		sys.Kernel.RegisterSymbol("m_freem_ext", func(c *kexec.CPU) error { return nil })
		benign, err := sys.Kernel.FuncAddr("m_freem_ext")
		if err != nil {
			return false, err
		}
		atk, err := attackerFor(sys)
		if err != nil {
			return false, err
		}
		initNet, _ := sys.Layout.SymbolKVA("init_net")
		atk.Infer.ObserveWords([]uint64{uint64(initNet)})
		secret := uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 0xb10c
		nb, err := otheros.Alloc(sys, nicDev, os, benign, secret)
		if err != nil {
			return false, err
		}
		blind := uint64(0)
		if blindWithCookie {
			stored, err := atk.Bus.ReadU64(atk.Dev, nb.IOVA+otheros.ExtFreeOff)
			if err != nil {
				return false, err
			}
			plain, err := atk.Infer.SymbolKVA("m_freem_ext")
			if err != nil {
				return false, err
			}
			blind = stored ^ uint64(plain) // the §7 single-XOR cookie recovery
		}
		pivot, err := atk.PivotAddr()
		if err != nil {
			return false, err
		}
		chain, err := atk.ChainAddresses()
		if err != nil {
			return false, err
		}
		if err := atk.Bus.Write(atk.Dev, nb.IOVA+kexec.PivotDisplacement, kexec.ChainBytes(kexec.EscalationChain(chain))); err != nil {
			return false, err
		}
		if err := atk.Bus.WriteU64(atk.Dev, nb.IOVA+otheros.ExtFreeOff, uint64(pivot)^blind); err != nil {
			return false, err
		}
		_ = nb.Free(nicDev) // dispatch may legitimately fault (blinding)
		return sys.Kernel.Escalations > 0, nil
	}
	winOK, err := osRow(otheros.Windows, false)
	if err != nil {
		return nil, err
	}
	bsdOK, err := osRow(otheros.FreeBSD, false)
	if err != nil {
		return nil, err
	}
	macNaive, err := osRow(otheros.MacOS, false)
	if err != nil {
		return nil, err
	}
	macCompound, err := osRow(otheros.MacOS, true)
	if err != nil {
		return nil, err
	}
	o.printf("Windows NET_BUFFER (§7):        single-step success=%v (metadata+data in one allocation)\n", winOK)
	o.printf("FreeBSD mbuf (§7):              single-step success=%v (raw ext_free exposed)\n", bsdOK)
	o.printf("macOS blinded ext_free (§7):    single-step success=%v, compound (XOR'd cookie) success=%v\n", macNaive, macCompound)

	o.OK = rStrict.Success && !rCET.Success && bounceBlocks && winOK && bsdOK && !macNaive && macCompound
	o.metric("strict_mode_stops_compound", "%v (paper: no)", !rStrict.Success)
	o.metric("cet_stops_rop", "%v (paper §8: yes)", !rCET.Success)
	o.metric("bounce_stops_corruption", "%v (paper [47]: yes)", bounceBlocks)
	o.metric("windows_single_step", "%v (paper §7: vulnerable)", winOK)
	o.metric("freebsd_single_step", "%v (paper §7: vulnerable)", bsdOK)
	o.metric("macos_blinding_single_step", "%v (paper §7: blocked)", macNaive)
	o.metric("macos_blinding_compound", "%v (paper §7: falls)", macCompound)
	return o, nil
}
