// Package core assembles the simulated victim machine: physical memory and
// its allocators, the KASLR'd virtual layout, the IOMMU with its invalidation
// policy, the DMA API, the kernel execution model (NX/ROP/JOP), and the
// network stack. It is the top-level entry point library users start from;
// the attack and experiment packages operate on a *System.
package core

import (
	"fmt"

	"dmafault/internal/dma"
	"dmafault/internal/iommu"
	"dmafault/internal/kexec"
	"dmafault/internal/layout"
	"dmafault/internal/mem"
	"dmafault/internal/netstack"
	"dmafault/internal/sim"
	"dmafault/internal/trace"
)

// Config describes one simulated machine boot.
type Config struct {
	// Seed drives every randomized component (KASLR draw, text image,
	// boot-order jitter). Equal seeds boot identical machines.
	Seed int64
	// KASLR randomizes the kernel layout (on by default in Linux).
	KASLR bool
	// Mode is the IOMMU invalidation policy; Linux defaults to Deferred.
	Mode iommu.Mode
	// CPUs is the number of simulated cores (per-CPU allocators and rings).
	CPUs int
	// MemBytes is the simulated physical memory size.
	MemBytes uint64
	// Forwarding enables the packet-forwarding path (§5.5).
	Forwarding bool
	// OutOfLineSharedInfo applies the D3 hardening: skb_shared_info is
	// allocated separately from the (DMA-mapped) packet data.
	OutOfLineSharedInfo bool
	// Tracer, if set, observes allocator and CPU-access events (D-KASAN).
	Tracer mem.Tracer
}

// System is one simulated victim machine.
type System struct {
	Layout *layout.Layout
	Mem    *mem.Memory
	Clock  *sim.Clock
	IOMMU  *iommu.IOMMU
	Mapper *dma.Mapper
	Bus    *dma.Bus
	Kernel *kexec.Kernel
	Net    *netstack.Stack
}

// Defaults used when Config fields are zero.
const (
	DefaultCPUs     = 4
	DefaultMemBytes = 128 << 20
)

// NewSystem boots a machine.
func NewSystem(cfg Config) (*System, error) {
	if cfg.CPUs <= 0 {
		cfg.CPUs = DefaultCPUs
	}
	if cfg.MemBytes == 0 {
		cfg.MemBytes = DefaultMemBytes
	}
	l := layout.New(layout.Config{KASLR: cfg.KASLR, Seed: cfg.Seed, PhysBytes: cfg.MemBytes})
	m, err := mem.New(mem.Config{Layout: l, CPUs: cfg.CPUs, Tracer: cfg.Tracer})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	clk := sim.NewClock()
	unit := iommu.New(cfg.Mode, clk)
	mapper := dma.NewMapper(m, unit)
	kern := kexec.NewKernel(m, cfg.Seed)
	ns, err := netstack.New(netstack.Config{
		Mem: m, Mapper: mapper, Kernel: kern, Clock: clk,
		Forwarding: cfg.Forwarding, OutOfLineSharedInfo: cfg.OutOfLineSharedInfo,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &System{
		Layout: l, Mem: m, Clock: clk, IOMMU: unit,
		Mapper: mapper, Bus: dma.NewBus(m, unit), Kernel: kern, Net: ns,
	}, nil
}

// EnableTracing attaches an event log to every subsystem: DMA map/unmap,
// device accesses (with faults), IOMMU faults, callback dispatches, and
// privilege escalations all become time-stamped events. Returns the log.
func (s *System) EnableTracing(capacity int) *trace.Log {
	log := trace.NewLog(s.Clock, capacity)
	s.Mapper.AddHook(&traceHook{log})
	s.Bus.OnAccess = func(dev iommu.DeviceID, va iommu.IOVA, n int, write bool, err error) {
		kind := trace.EvDeviceRead
		if write {
			kind = trace.EvDeviceWrite
		}
		note := ""
		if err != nil {
			note = "FAULTED"
		}
		log.Append(kind, uint16(dev), uint64(va), uint64(n), note)
	}
	s.IOMMU.OnFault = func(f *iommu.Fault) {
		log.Append(trace.EvFault, uint16(f.Dev), uint64(f.Addr), uint64(f.Perm), f.Error())
	}
	s.Kernel.OnDispatch = func(fn layout.Addr, arg uint64) {
		note := ""
		if s.Kernel.Text().Contains(fn) {
			note = "into kernel text"
		} else {
			note = "NON-TEXT TARGET"
		}
		log.Append(trace.EvCallback, 0, uint64(fn), arg, note)
	}
	s.Kernel.OnEscalation = func() {
		log.Append(trace.EvEscalation, 0, 0, 0, "privilege escalation (commit_creds with forged cred)")
	}
	return log
}

// traceHook adapts trace.Log to the dma.Hook interface.
type traceHook struct{ log *trace.Log }

func (h *traceHook) OnMap(dev iommu.DeviceID, kva layout.Addr, n uint64, dir dma.Direction, va iommu.IOVA) {
	h.log.Append(trace.EvDMAMap, uint16(dev), uint64(va), n, dir.String())
}

func (h *traceHook) OnUnmap(dev iommu.DeviceID, kva layout.Addr, n uint64, dir dma.Direction, va iommu.IOVA) {
	h.log.Append(trace.EvDMAUnmap, uint16(dev), uint64(va), n, dir.String())
}

// AddNIC attaches a NIC in its own IOMMU domain and fills its RX ring.
func (s *System) AddNIC(dev iommu.DeviceID, model netstack.DriverModel, cpu int) (*netstack.NIC, error) {
	if _, err := s.IOMMU.CreateDomain(model.Name, dev); err != nil {
		return nil, err
	}
	n, err := s.Net.AddNIC(dev, model, cpu)
	if err != nil {
		return nil, err
	}
	if err := n.FillRX(); err != nil {
		return nil, err
	}
	return n, nil
}

// AttachToDomainOf attaches an extra device (e.g. the FireWire attacker of
// §6) to an existing device's domain, sharing its page table.
func (s *System) AttachToDomainOf(newDev, existing iommu.DeviceID) error {
	d, err := s.IOMMU.DomainOf(existing)
	if err != nil {
		return err
	}
	return s.IOMMU.AttachDevice(newDev, d)
}
