// Package core assembles the simulated victim machine: physical memory and
// its allocators, the KASLR'd virtual layout, the IOMMU with its invalidation
// policy, the DMA API, the kernel execution model (NX/ROP/JOP), and the
// network stack. It is the top-level entry point library users start from;
// the attack and experiment packages operate on a *System.
//
// Boot a machine with New and functional options:
//
//	sys, err := core.New(core.WithSeed(2021), core.WithIOMMUMode(iommu.Strict),
//	    core.WithCPUs(4), core.WithTracing(1024))
//
// Every booted System carries a metrics.Registry (System.Metrics) with all
// subsystem Sources registered, so one Gather yields the machine's complete
// counter state in a deterministic, mergeable snapshot.
package core

import (
	"fmt"

	"dmafault/internal/dma"
	"dmafault/internal/faultinject"
	"dmafault/internal/iommu"
	"dmafault/internal/kexec"
	"dmafault/internal/layout"
	"dmafault/internal/mem"
	"dmafault/internal/metrics"
	"dmafault/internal/netstack"
	"dmafault/internal/sim"
	"dmafault/internal/trace"
)

// Config describes one simulated machine boot. It is the legacy positional
// surface consumed by NewSystem and the carrier the options of New resolve
// into; new call sites should prefer New.
type Config struct {
	// Seed drives every randomized component (KASLR draw, text image,
	// boot-order jitter). Equal seeds boot identical machines.
	Seed int64
	// KASLR randomizes the kernel layout (on by default in Linux).
	KASLR bool
	// Mode is the IOMMU invalidation policy; Linux defaults to Deferred.
	Mode iommu.Mode
	// CPUs is the number of simulated cores (per-CPU allocators and rings).
	CPUs int
	// MemBytes is the simulated physical memory size.
	MemBytes uint64
	// Forwarding enables the packet-forwarding path (§5.5).
	Forwarding bool
	// OutOfLineSharedInfo applies the D3 hardening: skb_shared_info is
	// allocated separately from the (DMA-mapped) packet data.
	OutOfLineSharedInfo bool
	// Tracer, if set, observes allocator and CPU-access events (D-KASAN).
	Tracer mem.Tracer
	// FaultPlan, if set, arms deterministic fault injection across every
	// substrate hook (see internal/faultinject); nil boots a clean machine.
	FaultPlan *faultinject.Plan
}

// System is one simulated victim machine.
type System struct {
	Layout *layout.Layout
	Mem    *mem.Memory
	Clock  *sim.Clock
	IOMMU  *iommu.IOMMU
	Mapper *dma.Mapper
	Bus    *dma.Bus
	Kernel *kexec.Kernel
	Net    *netstack.Stack

	// Metrics is the machine's registry with every subsystem Source
	// registered (nil when booted WithoutMetrics). Gather it only while the
	// machine is quiescent.
	Metrics *metrics.Registry

	// Inject is the machine's fault injector (nil unless booted with a
	// FaultPlan). Its counters report opportunities vs injected faults.
	Inject *faultinject.Injector

	trace       *trace.Log
	traceHooked bool
}

// Defaults used when Config fields are zero.
const (
	DefaultCPUs     = 4
	DefaultMemBytes = 128 << 20
)

// New boots a machine from functional options. Defaults: KASLR on, deferred
// IOMMU invalidation, DefaultCPUs cores, DefaultMemBytes of memory, metrics
// registry attached, tracing off.
func New(opts ...Option) (*System, error) {
	st := settings{cfg: Config{KASLR: true}}
	for _, o := range opts {
		o(&st)
	}
	s, err := boot(st.cfg)
	if err != nil {
		return nil, err
	}
	if !st.noMetrics {
		s.initMetrics()
	}
	if st.tracing {
		s.EnableTracing(st.traceCap)
	}
	return s, nil
}

// NewSystem boots a machine from the legacy positional Config.
//
// Deprecated: use New with Options. NewSystem remains as a shim so call
// sites can migrate incrementally; unlike New it keeps Config's zero-value
// semantics (KASLR off unless set).
func NewSystem(cfg Config) (*System, error) {
	s, err := boot(cfg)
	if err != nil {
		return nil, err
	}
	s.initMetrics()
	return s, nil
}

// boot assembles the substrates.
func boot(cfg Config) (*System, error) {
	if cfg.CPUs <= 0 {
		cfg.CPUs = DefaultCPUs
	}
	if cfg.MemBytes == 0 {
		cfg.MemBytes = DefaultMemBytes
	}
	l := layout.New(layout.Config{KASLR: cfg.KASLR, Seed: cfg.Seed, PhysBytes: cfg.MemBytes})
	// The injector is scoped by the machine seed: equal (plan, seed) pairs
	// make identical decisions, keeping fault-injected boots deterministic.
	// Fields are only assigned when the injector exists, so a nil plan
	// leaves every hook interface nil (no typed-nil indirection on hot
	// paths).
	inj := faultinject.New(cfg.FaultPlan, cfg.Seed)
	memCfg := mem.Config{Layout: l, CPUs: cfg.CPUs, Tracer: cfg.Tracer}
	if inj != nil {
		memCfg.Inject = inj
	}
	m, err := mem.New(memCfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	clk := sim.NewClock()
	unit := iommu.New(cfg.Mode, clk)
	mapper := dma.NewMapper(m, unit)
	kern := kexec.NewKernel(m, cfg.Seed)
	nsCfg := netstack.Config{
		Mem: m, Mapper: mapper, Kernel: kern, Clock: clk,
		Forwarding: cfg.Forwarding, OutOfLineSharedInfo: cfg.OutOfLineSharedInfo,
	}
	bus := dma.NewBus(m, unit)
	if inj != nil {
		unit.Inject = inj
		bus.Inject = inj
		nsCfg.Inject = inj
	}
	ns, err := netstack.New(nsCfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &System{
		Layout: l, Mem: m, Clock: clk, IOMMU: unit,
		Mapper: mapper, Bus: bus, Kernel: kern, Net: ns,
		Inject: inj,
	}, nil
}

// initMetrics builds the registry and registers every subsystem Source. The
// trace ring is registered through an indirection so EnableTracing can swap
// the live ring without re-registering.
func (s *System) initMetrics() {
	s.Metrics = metrics.NewRegistry()
	s.Metrics.MustRegister(s.IOMMU, s.Mem, s.Net,
		clockSource{s.Clock}, traceSource{s})
	// Fault-injected machines additionally expose injected-vs-detected
	// counters; clean boots omit the families entirely, keeping historical
	// snapshots (and their golden files) byte-identical.
	if s.Inject != nil {
		s.Metrics.MustRegister(s.Inject)
	}
}

// clockSource exposes the virtual clock as a gauge.
type clockSource struct{ clk *sim.Clock }

func (c clockSource) Describe() []metrics.Desc {
	return []metrics.Desc{{
		Name: "sim_virtual_time_nanos",
		Help: "Current virtual time of the machine clock.",
		Kind: metrics.KindGauge,
	}}
}

func (c clockSource) Collect(emit func(string, metrics.Sample)) {
	emit("sim_virtual_time_nanos", metrics.Sample{Value: float64(c.clk.Now())})
}

// traceSource delegates to the system's current forensic ring, so the
// registry follows EnableTracing swaps and emits nothing before tracing is
// armed.
type traceSource struct{ s *System }

func (t traceSource) Describe() []metrics.Desc { return (*trace.Log)(nil).Describe() }

func (t traceSource) Collect(emit func(string, metrics.Sample)) {
	if t.s.trace != nil {
		t.s.trace.Collect(emit)
	}
}

// Trace returns the forensic event ring, or nil if tracing was never
// enabled.
func (s *System) Trace() *trace.Log { return s.trace }

// EnableTracing attaches an event log to every subsystem: DMA map/unmap,
// device accesses (with faults), IOMMU faults, callback dispatches, and
// privilege escalations all become time-stamped events. Returns the log.
//
// Calling it again swaps in a fresh ring of the new capacity (the previous
// log stops receiving events and keeps its retained history); the
// subsystem hooks are installed only once.
func (s *System) EnableTracing(capacity int) *trace.Log {
	s.trace = trace.NewLog(s.Clock, capacity)
	if s.traceHooked {
		return s.trace
	}
	s.traceHooked = true
	s.Mapper.AddHook(&traceHook{s})
	s.Bus.OnAccess = func(dev iommu.DeviceID, va iommu.IOVA, n int, write bool, err error) {
		kind := trace.EvDeviceRead
		if write {
			kind = trace.EvDeviceWrite
		}
		note := ""
		if err != nil {
			note = "FAULTED"
		}
		s.trace.Append(kind, uint16(dev), uint64(va), uint64(n), note)
	}
	s.IOMMU.OnFault = func(f *iommu.Fault) {
		s.trace.Append(trace.EvFault, uint16(f.Dev), uint64(f.Addr), uint64(f.Perm), f.Error())
	}
	s.Kernel.OnDispatch = func(fn layout.Addr, arg uint64) {
		note := ""
		if s.Kernel.Text().Contains(fn) {
			note = "into kernel text"
		} else {
			note = "NON-TEXT TARGET"
		}
		s.trace.Append(trace.EvCallback, 0, uint64(fn), arg, note)
	}
	s.Kernel.OnEscalation = func() {
		s.trace.Append(trace.EvEscalation, 0, 0, 0, "privilege escalation (commit_creds with forged cred)")
	}
	return s.trace
}

// traceHook adapts the system's current trace ring to the dma.Hook
// interface.
type traceHook struct{ s *System }

func (h *traceHook) OnMap(dev iommu.DeviceID, kva layout.Addr, n uint64, dir dma.Direction, va iommu.IOVA) {
	h.s.trace.Append(trace.EvDMAMap, uint16(dev), uint64(va), n, dir.String())
}

func (h *traceHook) OnUnmap(dev iommu.DeviceID, kva layout.Addr, n uint64, dir dma.Direction, va iommu.IOVA) {
	h.s.trace.Append(trace.EvDMAUnmap, uint16(dev), uint64(va), n, dir.String())
}

// AddNIC attaches a NIC in its own IOMMU domain and fills its RX ring.
func (s *System) AddNIC(dev iommu.DeviceID, model netstack.DriverModel, cpu int) (*netstack.NIC, error) {
	if _, err := s.IOMMU.CreateDomain(model.Name, dev); err != nil {
		return nil, err
	}
	n, err := s.Net.AddNIC(dev, model, cpu)
	if err != nil {
		return nil, err
	}
	if err := n.FillRX(); err != nil {
		return nil, err
	}
	return n, nil
}

// AttachToDomainOf attaches an extra device (e.g. the FireWire attacker of
// §6) to an existing device's domain, sharing its page table.
func (s *System) AttachToDomainOf(newDev, existing iommu.DeviceID) error {
	d, err := s.IOMMU.DomainOf(existing)
	if err != nil {
		return err
	}
	return s.IOMMU.AttachDevice(newDev, d)
}
