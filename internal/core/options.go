package core

import (
	"dmafault/internal/faultinject"
	"dmafault/internal/iommu"
	"dmafault/internal/mem"
)

// Option configures a machine boot for New. The zero configuration is the
// paper's default victim: KASLR on (as on Linux), the deferred IOMMU
// invalidation policy, DefaultCPUs cores, DefaultMemBytes of memory, no
// forwarding, and the metrics registry attached.
type Option func(*settings)

// settings is the resolved boot configuration: the legacy Config plus the
// knobs that only exist on the options surface.
type settings struct {
	cfg       Config
	tracing   bool
	traceCap  int
	noMetrics bool
}

// WithSeed sets the seed driving every randomized component (KASLR draw,
// text image, boot-order jitter). Equal seeds boot identical machines.
func WithSeed(seed int64) Option {
	return func(s *settings) { s.cfg.Seed = seed }
}

// WithKASLR toggles kernel layout randomization (on by default, as on
// Linux).
func WithKASLR(on bool) Option {
	return func(s *settings) { s.cfg.KASLR = on }
}

// WithIOMMUMode selects the invalidation policy (default iommu.Deferred,
// the Linux default).
func WithIOMMUMode(m iommu.Mode) Option {
	return func(s *settings) { s.cfg.Mode = m }
}

// WithCPUs sets the simulated core count (per-CPU allocators and rings).
func WithCPUs(n int) Option {
	return func(s *settings) { s.cfg.CPUs = n }
}

// WithMemBytes sets the simulated physical memory size.
func WithMemBytes(n uint64) Option {
	return func(s *settings) { s.cfg.MemBytes = n }
}

// WithForwarding enables the packet-forwarding path (§5.5).
func WithForwarding() Option {
	return func(s *settings) { s.cfg.Forwarding = true }
}

// WithOutOfLineSharedInfo applies the D3 hardening: skb_shared_info is
// allocated separately from the (DMA-mapped) packet data.
func WithOutOfLineSharedInfo() Option {
	return func(s *settings) { s.cfg.OutOfLineSharedInfo = true }
}

// WithTracer attaches an allocator/CPU-access observer (D-KASAN).
func WithTracer(t mem.Tracer) Option {
	return func(s *settings) { s.cfg.Tracer = t }
}

// WithTracing arms the forensic event ring at boot with the given capacity
// (0 picks the trace package default). The log is reachable via
// System.Trace.
func WithTracing(capacity int) Option {
	return func(s *settings) { s.tracing, s.traceCap = true, capacity }
}

// WithoutMetrics boots without the metrics registry — the ablation knob the
// overhead benchmark uses. System.Metrics is nil.
func WithoutMetrics() Option {
	return func(s *settings) { s.noMetrics = true }
}

// WithFaultPlan arms deterministic fault injection: every substrate hook
// (DMA writes, IOMMU translations, RX refills, page allocations) consults
// an injector compiled from the plan, scoped by the machine seed. A nil
// plan boots clean; the injector's counters join the metrics registry so
// injected-vs-detected counts appear in every snapshot.
func WithFaultPlan(p *faultinject.Plan) Option {
	return func(s *settings) { s.cfg.FaultPlan = p }
}
