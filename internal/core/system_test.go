package core

import (
	"testing"

	"dmafault/internal/iommu"
	"dmafault/internal/netstack"
)

func TestNewSystemDefaults(t *testing.T) {
	s, err := NewSystem(Config{Seed: 1, KASLR: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mem.NumPages() != DefaultMemBytes/4096 {
		t.Errorf("NumPages = %d", s.Mem.NumPages())
	}
	if s.IOMMU.Mode() != iommu.Deferred {
		t.Errorf("default mode = %v, want deferred (Linux default)", s.IOMMU.Mode())
	}
	if s.Layout.TextBase == 0 || s.Kernel.Text().Base() != s.Layout.TextBase {
		t.Error("kernel text not at layout text base")
	}
}

func TestSystemDeterministicPerSeed(t *testing.T) {
	a, _ := NewSystem(Config{Seed: 7, KASLR: true})
	b, _ := NewSystem(Config{Seed: 7, KASLR: true})
	c, _ := NewSystem(Config{Seed: 8, KASLR: true})
	if a.Layout.TextBase != b.Layout.TextBase {
		t.Error("same seed, different layout")
	}
	if a.Layout.TextBase == c.Layout.TextBase && a.Layout.PageOffsetBase == c.Layout.PageOffsetBase {
		t.Error("different seed, same layout")
	}
}

func TestAddNICAndSharedDomain(t *testing.T) {
	s, err := NewSystem(Config{Seed: 2, KASLR: true})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.AddNIC(1, netstack.DriverI40E, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.RXRing()) != netstack.DriverI40E.RingSize {
		t.Errorf("ring = %d", len(n.RXRing()))
	}
	if !n.RXRing()[0].Ready {
		t.Error("RX ring not filled")
	}
	// FireWire shares the NIC's domain (§6 setup).
	if err := s.AttachToDomainOf(9, 1); err != nil {
		t.Fatal(err)
	}
	d1, _ := s.IOMMU.DomainOf(1)
	d9, _ := s.IOMMU.DomainOf(9)
	if d1 != d9 {
		t.Error("domains not shared")
	}
	if err := s.AttachToDomainOf(10, 99); err == nil {
		t.Error("attach to unknown device accepted")
	}
	if _, err := s.AddNIC(1, netstack.DriverI40E, 0); err == nil {
		t.Error("duplicate NIC device accepted")
	}
}
