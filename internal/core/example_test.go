package core_test

import (
	"fmt"
	"log"

	"dmafault/internal/core"
	"dmafault/internal/dma"
	"dmafault/internal/iommu"
	"dmafault/internal/netstack"
)

// ExampleNewSystem boots a machine and demonstrates the sub-page
// vulnerability: mapping 64 bytes exposes the whole page.
func ExampleNewSystem() {
	sys, err := core.NewSystem(core.Config{Seed: 1, KASLR: true, Mode: iommu.Strict})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.IOMMU.CreateDomain("nic", 1); err != nil {
		log.Fatal(err)
	}
	ioBuf, _ := sys.Mem.Slab.Kmalloc(0, 64, "io")
	secret, _ := sys.Mem.Slab.Kmalloc(0, 64, "secret")
	_ = sys.Mem.Write(secret, []byte("co-located"))

	va, _ := sys.Mapper.MapSingle(1, ioBuf, 64, dma.Bidirectional)
	leak := make([]byte, 10)
	_ = sys.Bus.Read(1, va+iommu.IOVA(secret-ioBuf), leak)
	fmt.Printf("device read %q\n", leak)
	// Output: device read "co-located"
}

// ExampleSystem_AddNIC shows the deferred-invalidation window of Fig. 6:
// after dma_unmap the device still reaches the buffer.
func ExampleSystem_AddNIC() {
	sys, err := core.NewSystem(core.Config{Seed: 2, KASLR: true, Mode: iommu.Deferred})
	if err != nil {
		log.Fatal(err)
	}
	nic, err := sys.AddNIC(1, netstack.DriverI40E, 0)
	if err != nil {
		log.Fatal(err)
	}
	d := nic.RXRing()[0]
	_ = sys.Bus.Write(1, d.IOVA, []byte("pkt")) // primes the IOTLB
	_ = nic.ReceiveOn(0, 3, netstack.ProtoUDP, 1)

	// The buffer is unmapped now — and still writable through the stale
	// IOTLB entry.
	err = sys.Bus.Write(1, d.IOVA, []byte("late"))
	fmt.Println("stale write allowed:", err == nil)
	// Output: stale write allowed: true
}
