package core

import (
	"errors"
	"testing"

	"dmafault/internal/dma"
	"dmafault/internal/iommu"
	"dmafault/internal/trace"
)

func TestEnableTracingCapturesLifecycle(t *testing.T) {
	s, err := NewSystem(Config{Seed: 4, KASLR: true, Mode: iommu.Strict})
	if err != nil {
		t.Fatal(err)
	}
	log := s.EnableTracing(256)
	if _, err := s.IOMMU.CreateDomain("nic", 1); err != nil {
		t.Fatal(err)
	}
	buf, _ := s.Mem.Slab.Kmalloc(0, 512, "io")
	va, err := s.Mapper.MapSingle(1, buf, 512, dma.FromDevice)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Bus.Write(1, va, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// A blocked read: WRITE-only mapping.
	if err := s.Bus.Read(1, va, make([]byte, 1)); err == nil {
		t.Fatal("read through WRITE mapping succeeded")
	}
	if err := s.Mapper.UnmapSingle(1, va, 512, dma.FromDevice); err != nil {
		t.Fatal(err)
	}
	// A benign callback dispatch.
	fn, _ := s.Kernel.FuncAddr("sock_zerocopy_callback")
	_ = s.Kernel.InvokeCallback(fn, 0) // errors fine (frees RDI=0)

	if log.CountKind(trace.EvDMAMap) != 1 || log.CountKind(trace.EvDMAUnmap) != 1 {
		t.Errorf("map/unmap events: %d/%d", log.CountKind(trace.EvDMAMap), log.CountKind(trace.EvDMAUnmap))
	}
	if log.CountKind(trace.EvDeviceWrite) != 1 || log.CountKind(trace.EvDeviceRead) != 1 {
		t.Errorf("device access events: w=%d r=%d", log.CountKind(trace.EvDeviceWrite), log.CountKind(trace.EvDeviceRead))
	}
	if log.CountKind(trace.EvFault) != 1 {
		t.Errorf("fault events = %d", log.CountKind(trace.EvFault))
	}
	if log.CountKind(trace.EvCallback) != 1 {
		t.Errorf("callback events = %d", log.CountKind(trace.EvCallback))
	}
}

func TestTracingRecordsEscalation(t *testing.T) {
	s, err := NewSystem(Config{Seed: 4, KASLR: true, Mode: iommu.Strict})
	if err != nil {
		t.Fatal(err)
	}
	log := s.EnableTracing(0)
	// Drive a minimal escalation through the native primitives.
	prep, _ := s.Kernel.FuncAddr("prepare_kernel_cred")
	if err := s.Kernel.InvokeCallback(prep, 0); err != nil {
		t.Fatal(err)
	}
	// The fuzz-proof way to escalate legitimately is the full chain, tested
	// in kexec; here assert the hook fires via commit_creds with the token
	// by invoking the real chain machinery from an attack.
	if log.CountKind(trace.EvEscalation) != 0 {
		t.Error("premature escalation event")
	}
	var fault *iommu.Fault
	if errors.As(s.Bus.Read(99, 0, make([]byte, 1)), &fault) {
		t.Log("unattached device faults differently (expected)")
	}
}
