package core

import (
	"bytes"
	"strings"
	"testing"

	"dmafault/internal/dma"
	"dmafault/internal/iommu"
	"dmafault/internal/netstack"
	"dmafault/internal/trace"
)

func TestNewDefaultsAndOptions(t *testing.T) {
	s, err := New(WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if s.IOMMU.Mode() != iommu.Deferred {
		t.Errorf("default mode = %v, want deferred", s.IOMMU.Mode())
	}
	if s.Metrics == nil {
		t.Fatal("New did not attach a metrics registry")
	}
	if s.Trace() != nil {
		t.Error("tracing armed without WithTracing")
	}
	// KASLR defaults on for New: two seeds must draw different layouts.
	s2, err := New(WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if s.Layout.TextBase == s2.Layout.TextBase && s.Layout.PageOffsetBase == s2.Layout.PageOffsetBase {
		t.Error("KASLR appears off by default under New")
	}

	s3, err := New(
		WithSeed(3), WithKASLR(false), WithIOMMUMode(iommu.Strict),
		WithCPUs(2), WithMemBytes(64<<20), WithForwarding(),
		WithOutOfLineSharedInfo(), WithTracing(128),
	)
	if err != nil {
		t.Fatal(err)
	}
	if s3.IOMMU.Mode() != iommu.Strict {
		t.Error("WithIOMMUMode not applied")
	}
	if s3.Mem.NumPages() != (64<<20)/4096 {
		t.Errorf("WithMemBytes not applied: %d pages", s3.Mem.NumPages())
	}
	if !s3.Net.Forwarding || !s3.Net.OutOfLineSharedInfo {
		t.Error("forwarding/out-of-line options not applied")
	}
	if s3.Trace() == nil {
		t.Error("WithTracing did not arm the ring")
	}
}

func TestNewSystemShimMatchesNew(t *testing.T) {
	old, err := NewSystem(Config{Seed: 9, KASLR: true, Mode: iommu.Strict, CPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	neu, err := New(WithSeed(9), WithIOMMUMode(iommu.Strict), WithCPUs(2))
	if err != nil {
		t.Fatal(err)
	}
	if old.Layout.TextBase != neu.Layout.TextBase {
		t.Error("shim and options boot different machines for equal knobs")
	}
	if old.Metrics == nil {
		t.Error("NewSystem shim must still attach metrics")
	}
}

func TestWithoutMetrics(t *testing.T) {
	s, err := New(WithSeed(1), WithoutMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if s.Metrics != nil {
		t.Error("WithoutMetrics still built a registry")
	}
}

func TestSystemMetricsGather(t *testing.T) {
	s, err := New(WithSeed(5), WithIOMMUMode(iommu.Deferred), WithTracing(32))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddNIC(1, netstack.DriverI40E, 0); err != nil {
		t.Fatal(err)
	}
	buf, _ := s.Mem.Slab.Kmalloc(0, 512, "io")
	va, err := s.Mapper.MapSingle(1, buf, 512, dma.FromDevice)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Mapper.UnmapSingle(1, va, 512, dma.FromDevice); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Metrics.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Total("iommu_unmaps_total") < 1 {
		t.Error("iommu unmap not counted")
	}
	if snap.Total("iommu_flush_queue_pending") < 1 {
		t.Error("deferred unmap not pending in flush queue gauge")
	}
	if snap.Total("mem_slab_allocs_total") == 0 || snap.Total("mem_page_allocs_total") == 0 {
		t.Error("allocator counters missing")
	}
	if snap.Total("trace_events_retained") == 0 {
		t.Error("trace ring not visible through the registry")
	}
	var b bytes.Buffer
	if err := snap.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE iommu_maps_total counter",
		`iommu_flush_queue_pending{domain="i40e"}`,
		`netstack_nic_rx_ring_size{dev="1",driver="i40e"} 256`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestEnableTracingTwiceSwapsRing(t *testing.T) {
	s, err := New(WithSeed(6), WithIOMMUMode(iommu.Strict))
	if err != nil {
		t.Fatal(err)
	}
	first := s.EnableTracing(8)
	if _, err := s.IOMMU.CreateDomain("nic", 1); err != nil {
		t.Fatal(err)
	}
	buf, _ := s.Mem.Slab.Kmalloc(0, 512, "io")
	va, _ := s.Mapper.MapSingle(1, buf, 512, dma.FromDevice)
	if got := first.CountKind(trace.EvDMAMap); got != 1 {
		t.Fatalf("first ring map events = %d", got)
	}

	second := s.EnableTracing(8)
	if second == first {
		t.Fatal("second EnableTracing returned the same ring")
	}
	if s.Trace() != second {
		t.Error("System.Trace not following the swap")
	}
	if err := s.Mapper.UnmapSingle(1, va, 512, dma.FromDevice); err != nil {
		t.Fatal(err)
	}
	// The unmap lands only in the new ring; the old ring keeps its history.
	if got := second.CountKind(trace.EvDMAUnmap); got != 1 {
		t.Errorf("second ring unmap events = %d", got)
	}
	if got := first.CountKind(trace.EvDMAUnmap); got != 0 {
		t.Errorf("detached first ring still receives events (%d unmaps)", got)
	}
	if got := first.CountKind(trace.EvDMAMap); got != 1 {
		t.Errorf("first ring lost its history (%d maps)", got)
	}
	// The registry follows the live ring.
	snap, err := s.Metrics.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Total("trace_events_retained") != 1 {
		t.Errorf("registry sees %v retained events, want 1 (the new ring's)",
			snap.Total("trace_events_retained"))
	}
}
