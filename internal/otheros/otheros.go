// Package otheros models the §7 survey — how the same sub-page exposure
// plays out on Windows, macOS and FreeBSD network buffers — concretely
// enough to run the attacks against each policy:
//
//   - Windows: NdisAllocateNetBufferMdlAndData allocates the NET_BUFFER
//     metadata and the packet data in a single buffer, so the metadata is
//     DMA-mapped with the data: single-step attacks work (as Markettos et
//     al. showed for NET_BUFFER).
//   - FreeBSD: struct mbuf exposes the raw ext_free callback pointer on the
//     mapped cluster: single-step attacks work.
//   - macOS: the exposed mbuf blinds ext_free by XORing it with a boot
//     secret. A single-step overwrite (no knowledge of the cookie) dies at
//     dispatch — but ext_free "can receive only one of two possible values",
//     so once KASLR falls, one XOR of a leaked blinded value recovers the
//     cookie and compound attacks proceed.
//
// The buffers are binary structures in the simulated memory, mapped through
// the same IOMMU as everything else; dispatch goes through the same NX/ROP
// kernel execution model.
package otheros

import (
	"fmt"

	"dmafault/internal/core"
	"dmafault/internal/dma"
	"dmafault/internal/iommu"
	"dmafault/internal/layout"
)

// OS selects the §7 policy under test.
type OS int

const (
	Windows OS = iota
	MacOS
	FreeBSD
)

// String names the OS.
func (o OS) String() string {
	switch o {
	case Windows:
		return "Windows (NET_BUFFER)"
	case MacOS:
		return "macOS (mbuf, blinded ext_free)"
	case FreeBSD:
		return "FreeBSD (mbuf)"
	default:
		return "?"
	}
}

// Binary layout of the modeled network buffer: metadata at the head of the
// allocation, packet data after it — the single-allocation pattern all three
// OSes expose in some form.
const (
	// ExtFreeOff is the offset of the free-callback pointer (mbuf ext_free
	// / NET_BUFFER completion routine).
	ExtFreeOff = 8
	// ExtArgOff is the callback argument slot.
	ExtArgOff = 16
	// DataOff is where packet data starts.
	DataOff = 64
	// BufSize is the whole allocation (metadata + data).
	BufSize = 2048
)

// NetBuffer is one allocated, DMA-mapped network buffer under a policy.
type NetBuffer struct {
	OS   OS
	KVA  layout.Addr
	IOVA iommu.IOVA
	sys  *core.System
	// cookie is the macOS blinding secret (zero elsewhere).
	cookie uint64
}

// Alloc allocates and DMA-maps a network buffer the way the OS does, with a
// benign free callback installed.
func Alloc(sys *core.System, dev iommu.DeviceID, os OS, benignCB layout.Addr, bootSecret uint64) (*NetBuffer, error) {
	kva, err := sys.Mem.Slab.Kzalloc(0, BufSize, "net_buffer_alloc")
	if err != nil {
		return nil, err
	}
	nb := &NetBuffer{OS: os, KVA: kva, sys: sys}
	if os == MacOS {
		nb.cookie = bootSecret
	}
	if err := nb.setCallback(benignCB); err != nil {
		return nil, err
	}
	// RX buffers are written by the device; the metadata rides along on the
	// same allocation, hence the same mapping.
	va, err := sys.Mapper.MapSingle(dev, kva, BufSize, dma.Bidirectional)
	if err != nil {
		return nil, err
	}
	nb.IOVA = va
	return nb, nil
}

// setCallback stores the (possibly blinded) callback pointer.
func (nb *NetBuffer) setCallback(cb layout.Addr) error {
	stored := uint64(cb)
	if nb.OS == MacOS {
		stored ^= nb.cookie
	}
	return nb.sys.Mem.WriteU64(nb.KVA+ExtFreeOff, stored)
}

// StoredCallback reads the raw stored (blinded on macOS) callback word —
// what a device with READ access sees.
func (nb *NetBuffer) StoredCallback() (uint64, error) {
	return nb.sys.Mem.ReadU64(nb.KVA + ExtFreeOff)
}

// Free releases the buffer the way the OS does: load ext_free, unblind it
// under the macOS policy, and call it with the buffer's address — the
// dispatch the attacks hijack.
func (nb *NetBuffer) Free(dev iommu.DeviceID) error {
	stored, err := nb.sys.Mem.ReadU64(nb.KVA + ExtFreeOff)
	if err != nil {
		return err
	}
	if nb.OS == MacOS {
		stored ^= nb.cookie
	}
	if err := nb.sys.Mapper.UnmapSingle(dev, nb.IOVA, BufSize, dma.Bidirectional); err != nil {
		return err
	}
	if err := nb.sys.Kernel.InvokeCallback(layout.Addr(stored), uint64(nb.KVA)); err != nil {
		return fmt.Errorf("otheros: free-callback dispatch: %w", err)
	}
	return nb.sys.Mem.Slab.Kfree(nb.KVA)
}
