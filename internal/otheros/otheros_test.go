package otheros

import (
	"testing"

	"dmafault/internal/core"
	"dmafault/internal/device"
	"dmafault/internal/iommu"
	"dmafault/internal/kexec"
	"dmafault/internal/layout"
)

const dev iommu.DeviceID = 1

type rig struct {
	sys    *core.System
	atk    *device.Attacker
	benign layout.Addr
	secret uint64
}

func newRig(t *testing.T) *rig {
	t.Helper()
	sys, err := core.NewSystem(core.Config{Seed: 77, KASLR: true, Mode: iommu.Strict})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.IOMMU.CreateDomain("nic", dev); err != nil {
		t.Fatal(err)
	}
	sys.Kernel.RegisterSymbol("m_freem_ext", func(c *kexec.CPU) error { return nil })
	benign, err := sys.Kernel.FuncAddr("m_freem_ext")
	if err != nil {
		t.Fatal(err)
	}
	build, err := kexec.ExtractBuildOffsets(sys.Kernel.Text(), sys.Layout.Symbols())
	if err != nil {
		t.Fatal(err)
	}
	atk := device.NewAttacker(dev, sys.Bus, sys.Layout.Symbols(), build)
	// All three scenarios assume KASLR has already fallen (Markettos et al.
	// demonstrated the macOS KASLR break; §7).
	initNet, _ := sys.Layout.SymbolKVA("init_net")
	atk.Infer.ObserveWords([]uint64{uint64(initNet)})
	return &rig{sys: sys, atk: atk, benign: benign, secret: 0xc00c1e5eed << 8}
}

// singleStepOverwrite is the Thunderclap-style move: overwrite the stored
// callback with the pivot and plant the chain in the buffer's data area.
func (r *rig) singleStepOverwrite(t *testing.T, nb *NetBuffer, blind uint64) {
	t.Helper()
	pivot, err := r.atk.PivotAddr()
	if err != nil {
		t.Fatal(err)
	}
	chain, err := r.atk.ChainAddresses()
	if err != nil {
		t.Fatal(err)
	}
	// The pivot lands at %rdi (= buffer KVA) + PivotDisplacement.
	if err := r.atk.Bus.Write(r.atk.Dev, nb.IOVA+kexec.PivotDisplacement, kexec.ChainBytes(kexec.EscalationChain(chain))); err != nil {
		t.Fatal(err)
	}
	if err := r.atk.Bus.WriteU64(r.atk.Dev, nb.IOVA+ExtFreeOff, uint64(pivot)^blind); err != nil {
		t.Fatal(err)
	}
}

func TestWindowsNetBufferSingleStep(t *testing.T) {
	// §7: NdisAllocateNetBufferMdlAndData "allocates a NET_BUFFER structure
	// and data in a single memory buffer, exposing the OS to single-step
	// attacks".
	r := newRig(t)
	nb, err := Alloc(r.sys, dev, Windows, r.benign, r.secret)
	if err != nil {
		t.Fatal(err)
	}
	r.singleStepOverwrite(t, nb, 0)
	if err := nb.Free(dev); err != nil {
		t.Fatalf("free dispatch errored: %v", err)
	}
	if r.sys.Kernel.Escalations != 1 {
		t.Fatalf("Escalations = %d", r.sys.Kernel.Escalations)
	}
}

func TestFreeBSDMbufSingleStep(t *testing.T) {
	// §7: "An attack on FreeBSD via this callback pointer was demonstrated
	// by Markettos et al. ... this vulnerability still exists."
	r := newRig(t)
	nb, err := Alloc(r.sys, dev, FreeBSD, r.benign, r.secret)
	if err != nil {
		t.Fatal(err)
	}
	r.singleStepOverwrite(t, nb, 0)
	if err := nb.Free(dev); err != nil {
		t.Fatal(err)
	}
	if r.sys.Kernel.Escalations != 1 {
		t.Fatalf("Escalations = %d", r.sys.Kernel.Escalations)
	}
}

func TestMacOSBlindingStopsSingleStep(t *testing.T) {
	// §7: "blinding the exposed callback pointer ext_free by XORing it with
	// a secret cookie ... is sufficient to defend against single-step
	// attacks."
	r := newRig(t)
	nb, err := Alloc(r.sys, dev, MacOS, r.benign, r.secret)
	if err != nil {
		t.Fatal(err)
	}
	r.singleStepOverwrite(t, nb, 0) // attacker doesn't know the cookie
	err = nb.Free(dev)
	if err == nil {
		t.Fatal("blinded dispatch accepted a raw pointer")
	}
	if r.sys.Kernel.Escalations != 0 {
		t.Fatal("escalated through blinding")
	}
}

func TestMacOSBlindingFallsToCompound(t *testing.T) {
	// §7: "ext_free can receive only one of two possible values. As a
	// result, once an attacker compromises macOS KASLR, the random cookie
	// is revealed by a single XOR operation."
	r := newRig(t)
	nb, err := Alloc(r.sys, dev, MacOS, r.benign, r.secret)
	if err != nil {
		t.Fatal(err)
	}
	// Compound step 1: read the blinded word through the mapping; the
	// attacker knows the plaintext (m_freem_ext's address, KASLR broken).
	stored, err := r.atk.Bus.ReadU64(r.atk.Dev, nb.IOVA+ExtFreeOff)
	if err != nil {
		t.Fatal(err)
	}
	knownPlain, err := r.atk.Infer.SymbolKVA("m_freem_ext")
	if err != nil {
		t.Fatal(err)
	}
	cookie := stored ^ uint64(knownPlain)
	if cookie != r.secret {
		t.Fatalf("cookie recovery failed: %#x vs %#x", cookie, r.secret)
	}
	// Compound step 2: blind the malicious pointer with the recovered
	// cookie; the unblinding dispatch now yields the pivot.
	r.singleStepOverwrite(t, nb, cookie)
	if err := nb.Free(dev); err != nil {
		t.Fatal(err)
	}
	if r.sys.Kernel.Escalations != 1 {
		t.Fatalf("Escalations = %d", r.sys.Kernel.Escalations)
	}
}

func TestOSStrings(t *testing.T) {
	for _, o := range []OS{Windows, MacOS, FreeBSD, OS(9)} {
		if o.String() == "" {
			t.Error("empty OS name")
		}
	}
}

func TestBenignFreePath(t *testing.T) {
	for _, o := range []OS{Windows, MacOS, FreeBSD} {
		r := newRig(t)
		nb, err := Alloc(r.sys, dev, o, r.benign, r.secret)
		if err != nil {
			t.Fatal(err)
		}
		if err := nb.Free(dev); err != nil {
			t.Fatalf("%v: benign free errored: %v", o, err)
		}
		if r.sys.Kernel.Invocations["m_freem_ext"] != 1 {
			t.Errorf("%v: benign callback not invoked", o)
		}
	}
}
