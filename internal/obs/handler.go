package obs

import (
	"context"
	"log/slog"
	"strings"
)

// RingHandler is a slog.Handler that tees every record into a flight
// Recorder and forwards it to an inner handler. The tee ignores the inner
// handler's level: the console may be quiet while the recorder keeps full
// debug context for the next forensic dump.
type RingHandler struct {
	inner  slog.Handler
	rec    *Recorder
	prefix string      // dotted group path for attr keys
	attrs  []slog.Attr // accumulated WithAttrs, already prefixed
}

// NewRingHandler wraps inner so rec receives a copy of every record.
func NewRingHandler(inner slog.Handler, rec *Recorder) *RingHandler {
	return &RingHandler{inner: inner, rec: rec}
}

// Enabled implements slog.Handler. The ring captures every level; the inner
// handler's own Enabled gates console output inside Handle.
func (h *RingHandler) Enabled(ctx context.Context, level slog.Level) bool { return true }

// Handle implements slog.Handler.
func (h *RingHandler) Handle(ctx context.Context, r slog.Record) error {
	attrs := make(map[string]string, r.NumAttrs()+len(h.attrs))
	for _, a := range h.attrs {
		flattenAttr(attrs, "", a)
	}
	r.Attrs(func(a slog.Attr) bool {
		flattenAttr(attrs, h.prefix, a)
		return true
	})
	h.rec.Add(Record{
		TUnixNanos: r.Time.UnixNano(),
		Kind:       RecordLog,
		Name:       strings.ToLower(r.Level.String()),
		Msg:        r.Message,
		Attrs:      attrs,
	})
	if !h.inner.Enabled(ctx, r.Level) {
		return nil
	}
	return h.inner.Handle(ctx, r)
}

// WithAttrs implements slog.Handler.
func (h *RingHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	nh.inner = h.inner.WithAttrs(attrs)
	nh.attrs = append(append([]slog.Attr(nil), h.attrs...), prefixAttrs(h.prefix, attrs)...)
	return &nh
}

// WithGroup implements slog.Handler.
func (h *RingHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := *h
	nh.inner = h.inner.WithGroup(name)
	nh.prefix = h.prefix + name + "."
	return &nh
}

// prefixAttrs qualifies attr keys with the current group path.
func prefixAttrs(prefix string, attrs []slog.Attr) []slog.Attr {
	if prefix == "" {
		return attrs
	}
	out := make([]slog.Attr, len(attrs))
	for i, a := range attrs {
		out[i] = slog.Attr{Key: prefix + a.Key, Value: a.Value}
	}
	return out
}

// flattenAttr renders one slog attr (recursing into groups) into the flat
// string map a Record carries.
func flattenAttr(dst map[string]string, prefix string, a slog.Attr) {
	if a.Value.Kind() == slog.KindGroup {
		gp := prefix
		if a.Key != "" {
			gp = prefix + a.Key + "."
		}
		for _, ga := range a.Value.Group() {
			flattenAttr(dst, gp, ga)
		}
		return
	}
	if a.Key == "" {
		return
	}
	dst[prefix+a.Key] = a.Value.Resolve().String()
}
