package obs

import "sync"

// StreamEvent is one live event on a Hub: a typed JSON-encodable payload.
// Types the service emits: "progress" (heartbeat), "span", "result",
// "status" (terminal); the fabric coordinator adds "workers" (registry
// heartbeat) and, with the fleet plane armed, "fleet" (an api.FleetSnapshot
// per scrape round — what fabrictop follows).
type StreamEvent struct {
	Type string `json:"type"`
	Data any    `json:"data,omitempty"`
}

// Hub fans StreamEvents out to subscribers — the broadcast plane behind
// GET /campaigns/{id}/events. Publishing never blocks: a subscriber whose
// buffer is full misses that event (SSE clients resynchronize from the next
// heartbeat, which always carries cumulative progress). Close terminates
// every subscription; late subscribers to a closed hub get an immediately
// closed channel. Nil-receiver safe throughout.
type Hub struct {
	mu      sync.Mutex
	subs    map[int]chan StreamEvent
	nextID  int
	closed  bool
	dropped uint64
}

// NewHub builds an open hub.
func NewHub() *Hub { return &Hub{subs: map[int]chan StreamEvent{}} }

// Subscribe registers a buffered subscription. The returned cancel is
// idempotent and must be called when the consumer goes away (client
// disconnect) so the hub stops retaining the channel.
func (h *Hub) Subscribe(buf int) (<-chan StreamEvent, func()) {
	ch := make(chan StreamEvent, max(buf, 1))
	if h == nil {
		close(ch)
		return ch, func() {}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		close(ch)
		return ch, func() {}
	}
	id := h.nextID
	h.nextID++
	h.subs[id] = ch
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			defer h.mu.Unlock()
			if _, ok := h.subs[id]; ok {
				delete(h.subs, id)
				close(ch)
			}
		})
	}
	return ch, cancel
}

// Publish broadcasts one event, dropping it for any subscriber whose buffer
// is full.
func (h *Hub) Publish(e StreamEvent) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	for _, ch := range h.subs {
		select {
		case ch <- e:
		default:
			h.dropped++
		}
	}
}

// Close publishes nothing further and closes every subscriber channel.
func (h *Hub) Close() {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for id, ch := range h.subs {
		delete(h.subs, id)
		close(ch)
	}
}

// Subscribers reports the current subscription count (tests).
func (h *Hub) Subscribers() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Dropped reports how many per-subscriber events were shed to full buffers.
func (h *Hub) Dropped() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}
