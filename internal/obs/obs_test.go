package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"

	"dmafault/internal/metrics"
)

func TestParseLevelAndFormat(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "ERROR": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
	if f, err := ParseFormat(""); err != nil || f != FormatText {
		t.Errorf("ParseFormat default = %q, %v", f, err)
	}
	if f, err := ParseFormat("JSON"); err != nil || f != FormatJSON {
		t.Errorf("ParseFormat(JSON) = %q, %v", f, err)
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("ParseFormat accepted garbage")
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	NewLogger(&buf, FormatJSON, slog.LevelInfo, nil).Info("hello", "job", 3)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("JSON logger emitted non-JSON %q: %v", buf.String(), err)
	}
	if rec["msg"] != "hello" || rec["job"] != float64(3) {
		t.Errorf("JSON record = %v", rec)
	}
	buf.Reset()
	NewLogger(&buf, FormatText, slog.LevelWarn, nil).Info("quiet")
	if buf.Len() != 0 {
		t.Errorf("info leaked through warn level: %q", buf.String())
	}
	Nop().Error("nothing anywhere")
}

func TestRingHandlerTeesBelowConsoleLevel(t *testing.T) {
	rec := NewRecorder(16)
	var buf bytes.Buffer
	log := NewLogger(&buf, FormatText, slog.LevelWarn, rec)
	log = log.With("job", 7)
	log.Debug("invisible on console", "step", "claim")
	log.WithGroup("queue").Warn("deep", "depth", 3)
	if strings.Contains(buf.String(), "invisible") {
		t.Error("debug leaked to console at warn level")
	}
	if !strings.Contains(buf.String(), "deep") {
		t.Error("warn suppressed on console")
	}
	records := rec.Records()
	if len(records) != 2 {
		t.Fatalf("recorder got %d records, want 2", len(records))
	}
	if records[0].Name != "debug" || records[0].Msg != "invisible on console" ||
		records[0].Attrs["job"] != "7" || records[0].Attrs["step"] != "claim" {
		t.Errorf("debug record = %+v", records[0])
	}
	if records[1].Attrs["queue.depth"] != "3" {
		t.Errorf("group attr not qualified: %+v", records[1])
	}
}

func TestSpansParentAttrsAndJSONL(t *testing.T) {
	var col Collector
	tr := NewTracer(col.Sink())
	root := tr.Start("campaign", A("scenarios", "2"))
	child := root.Child("scenario", A("id", "s0"))
	child.End(A("outcome", "panic"))
	root.End()
	root.End() // double End emits once

	spans := col.Spans()
	if len(spans) != 2 {
		t.Fatalf("collected %d spans, want 2", len(spans))
	}
	if spans[0].Name != "scenario" || spans[0].Parent != root.ID() {
		t.Errorf("child span = %+v, want parent %d", spans[0], root.ID())
	}
	if spans[0].Outcome() != "panic" || spans[1].Outcome() != "ok" {
		t.Errorf("outcomes = %q, %q", spans[0].Outcome(), spans[1].Outcome())
	}
	if spans[1].Attrs["scenarios"] != "2" {
		t.Errorf("root attrs = %v", spans[1].Attrs)
	}
	if spans[0].DurationNanos < 0 || spans[0].StartUnixNanos == 0 {
		t.Errorf("span timing not stamped: %+v", spans[0])
	}

	var buf bytes.Buffer
	if err := col.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSpansJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Name != "scenario" || back[0].Attrs["id"] != "s0" {
		t.Errorf("JSONL roundtrip = %+v", back)
	}
}

func TestNilTracerAndSpanAreSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("nothing")
	sp.SetAttr("k", "v")
	sp.Child("child").End()
	sp.End(A("outcome", "ok"))
	if sp != nil {
		t.Error("nil tracer minted a span")
	}
	var rec *Recorder
	rec.Add(Record{Kind: RecordLog})
	rec.Event("x", "y")
	if rec.Records() != nil || rec.Dropped() != 0 {
		t.Error("nil recorder retained something")
	}
	var h *Hub
	h.Publish(StreamEvent{Type: "progress"})
	h.Close()
	ch, cancel := h.Subscribe(1)
	cancel()
	if _, ok := <-ch; ok {
		t.Error("nil hub delivered an event")
	}
}

func TestSpanMetricsFamilies(t *testing.T) {
	m := NewSpanMetrics()
	sink := m.Sink()
	sink(Span{Name: "scenario", DurationNanos: int64(2e6)})
	sink(Span{Name: "scenario", DurationNanos: int64(3e6), Attrs: map[string]string{"outcome": "panic"}})
	sink(Span{Name: "attempt", DurationNanos: int64(50e6)})
	reg := metrics.NewRegistry()
	reg.MustRegister(m)
	snap, err := reg.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Families) != 1 || snap.Families[0].Name != "obs_span_duration_seconds" {
		t.Fatalf("families = %+v", snap.Families)
	}
	if got := len(snap.Families[0].Samples); got != 3 {
		t.Fatalf("samples = %d, want 3 (scenario/ok, scenario/panic, attempt/ok)", got)
	}
	for _, s := range snap.Families[0].Samples {
		if s.Count != 1 || len(s.BucketCounts) != len(DefaultSpanBuckets)+1 {
			t.Errorf("sample %+v malformed", s)
		}
	}
}

func TestRecorderRingOverflowAndMetrics(t *testing.T) {
	rec := NewRecorder(4)
	for i := 0; i < 10; i++ {
		rec.Add(Record{Kind: RecordLog, Msg: "m"})
	}
	rec.Event("watchdog", "fired", A("job", "3"))
	if got := len(rec.Records()); got != 4 {
		t.Errorf("retained %d, want ring cap 4", got)
	}
	if rec.Dropped() != 7 {
		t.Errorf("dropped = %d, want 7", rec.Dropped())
	}
	reg := metrics.NewRegistry()
	reg.MustRegister(metrics.OmitZero(rec))
	snap, err := reg.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Total("trace_recorder_dropped_total"); got != 7 {
		t.Errorf("trace_recorder_dropped_total = %v, want 7", got)
	}
	if got := snap.Total("trace_recorder_events_total"); got != 11 {
		t.Errorf("trace_recorder_events_total = %v, want 11", got)
	}

	// An untouched recorder registered through OmitZero exposes nothing.
	reg2 := metrics.NewRegistry()
	reg2.MustRegister(metrics.OmitZero(NewRecorder(4)))
	snap2, err := reg2.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap2.Families) != 0 {
		t.Errorf("idle recorder leaked families: %+v", snap2.Families)
	}
}

func TestRecorderDumpRoundtrip(t *testing.T) {
	rec := NewRecorder(8)
	rec.Event("stall", "job 3 heartbeat stale", A("job", "3"))
	rec.SpanSink()(Span{ID: 9, Parent: 2, Name: "attempt", StartUnixNanos: 1, DurationNanos: 5})
	var buf bytes.Buffer
	if err := rec.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRecordsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Kind != RecordEvent || back[1].Kind != RecordSpan {
		t.Fatalf("roundtrip = %+v", back)
	}
	if back[1].Attrs["span_id"] != "9" || back[1].Attrs["parent_id"] != "2" {
		t.Errorf("span record attrs = %v", back[1].Attrs)
	}
}

func TestHubFanoutDisconnectAndClose(t *testing.T) {
	h := NewHub()
	a, cancelA := h.Subscribe(4)
	b, cancelB := h.Subscribe(4)
	h.Publish(StreamEvent{Type: "progress"})
	if e := <-a; e.Type != "progress" {
		t.Errorf("a got %+v", e)
	}
	if e := <-b; e.Type != "progress" {
		t.Errorf("b got %+v", e)
	}
	cancelA()
	cancelA() // idempotent
	if h.Subscribers() != 1 {
		t.Errorf("subscribers = %d after cancel, want 1", h.Subscribers())
	}
	// A full buffer drops rather than blocks.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			h.Publish(StreamEvent{Type: "progress"})
		}
	}()
	<-done
	if h.Dropped() == 0 {
		t.Error("slow subscriber never dropped")
	}
	h.Close()
	if _, ok := <-b; !ok {
		// drained to close — fine; channel may hold buffered events first.
		_ = cancelB
	}
	for range b {
	}
	if _, ok := <-b; ok {
		t.Error("hub close did not close subscriber channel")
	}
	// Publishing and subscribing after close are inert.
	h.Publish(StreamEvent{Type: "late"})
	late, _ := h.Subscribe(1)
	if _, ok := <-late; ok {
		t.Error("late subscriber got an event from a closed hub")
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	var col Collector
	m := NewSpanMetrics()
	rec := NewRecorder(64)
	tr := NewTracer(col.Sink(), m.Sink(), rec.SpanSink())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			root := tr.Start("scenario", Af("i", "%d", i))
			for j := 0; j < 16; j++ {
				root.Child("attempt").End()
			}
			root.End()
		}(i)
	}
	wg.Wait()
	if got := len(col.Spans()); got != 8*17 {
		t.Errorf("collected %d spans, want %d", got, 8*17)
	}
}
