package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dmafault/internal/metrics"
)

// Span is one completed wall-clock interval: a campaign, a scenario, an
// execution attempt, a retry backoff, an HTTP request, a queue wait. IDs are
// process-local (monotonic per Tracer); Parent links child spans to the span
// they ran under. Durations come from the monotonic clock, StartUnixNanos
// from the wall clock — both are operator data and never enter deterministic
// artifacts.
type Span struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	// StartUnixNanos is the wall-clock start (UnixNano).
	StartUnixNanos int64 `json:"start_unix_nanos"`
	// DurationNanos is the monotonic elapsed time.
	DurationNanos int64 `json:"duration_nanos"`
	// Attrs carry string dimensions (scenario id, kind, outcome, attempt).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Duration returns the monotonic elapsed time as a time.Duration.
func (s Span) Duration() time.Duration { return time.Duration(s.DurationNanos) }

// Outcome returns the span's "outcome" attr, defaulting to "ok" — the label
// SpanMetrics buckets by.
func (s Span) Outcome() string {
	if o := s.Attrs["outcome"]; o != "" {
		return o
	}
	return "ok"
}

// Attr is one string dimension of a span.
type Attr struct{ Key, Value string }

// A builds an Attr.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Af builds an Attr with a formatted value.
func Af(key, format string, args ...any) Attr {
	return Attr{Key: key, Value: fmt.Sprintf(format, args...)}
}

// Tracer mints spans and fans completed ones out to its sinks (a flight
// recorder, a metrics summarizer, a live-event hub, a JSONL collector — any
// func(Span)). All methods are safe on a nil *Tracer, which simply records
// nothing, so "tracing off" is the zero value everywhere.
type Tracer struct {
	nextID atomic.Uint64
	mu     sync.Mutex
	sinks  []func(Span)
}

// NewTracer builds a tracer fanning out to the given sinks.
func NewTracer(sinks ...func(Span)) *Tracer {
	return &Tracer{sinks: sinks}
}

// AddSink appends another sink (before the tracer is shared across
// goroutines).
func (t *Tracer) AddSink(sink func(Span)) {
	if t == nil || sink == nil {
		return
	}
	t.mu.Lock()
	t.sinks = append(t.sinks, sink)
	t.mu.Unlock()
}

// Start opens a root span. End completes and emits it.
func (t *Tracer) Start(name string, attrs ...Attr) *ActiveSpan {
	return t.start(name, 0, attrs)
}

func (t *Tracer) start(name string, parent uint64, attrs []Attr) *ActiveSpan {
	if t == nil {
		return nil
	}
	sp := &ActiveSpan{
		tracer:  t,
		started: time.Now(),
		span: Span{
			ID:     t.nextID.Add(1),
			Parent: parent,
			Name:   name,
		},
	}
	sp.span.StartUnixNanos = sp.started.UnixNano()
	sp.setAttrs(attrs)
	return sp
}

func (t *Tracer) emit(s Span) {
	t.mu.Lock()
	sinks := t.sinks
	t.mu.Unlock()
	for _, sink := range sinks {
		sink(s)
	}
}

// ActiveSpan is an in-flight span. It is owned by one goroutine (the one
// doing the timed work); End emits the completed Span to the tracer's sinks.
type ActiveSpan struct {
	tracer  *Tracer
	started time.Time
	mu      sync.Mutex
	span    Span
	ended   bool
}

// Child opens a span parented under this one.
func (a *ActiveSpan) Child(name string, attrs ...Attr) *ActiveSpan {
	if a == nil {
		return nil
	}
	return a.tracer.start(name, a.span.ID, attrs)
}

// SetAttr adds or overwrites one attr.
func (a *ActiveSpan) SetAttr(key, value string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.span.Attrs == nil {
		a.span.Attrs = map[string]string{}
	}
	a.span.Attrs[key] = value
}

func (a *ActiveSpan) setAttrs(attrs []Attr) {
	if len(attrs) == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.span.Attrs == nil {
		a.span.Attrs = make(map[string]string, len(attrs))
	}
	for _, at := range attrs {
		a.span.Attrs[at.Key] = at.Value
	}
}

// ID returns the span's ID (0 for a nil span).
func (a *ActiveSpan) ID() uint64 {
	if a == nil {
		return 0
	}
	return a.span.ID
}

// End completes the span with the given final attrs and emits it to the
// tracer's sinks. Calling End twice emits once.
func (a *ActiveSpan) End(attrs ...Attr) {
	if a == nil {
		return
	}
	a.setAttrs(attrs)
	a.mu.Lock()
	if a.ended {
		a.mu.Unlock()
		return
	}
	a.ended = true
	a.span.DurationNanos = int64(time.Since(a.started))
	s := a.span
	if len(s.Attrs) > 0 {
		// Copy so post-End mutation of the map cannot race the sinks.
		attrs := make(map[string]string, len(s.Attrs))
		for k, v := range s.Attrs {
			attrs[k] = v
		}
		s.Attrs = attrs
	}
	a.mu.Unlock()
	a.tracer.emit(s)
}

// WriteSpansJSONL encodes spans one JSON object per line (snake_case, the
// repo's wire convention).
func WriteSpansJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return fmt.Errorf("obs: encode span: %w", err)
		}
	}
	return bw.Flush()
}

// ReadSpansJSONL decodes a span stream written by WriteSpansJSONL.
func ReadSpansJSONL(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	var out []Span
	for {
		var s Span
		if err := dec.Decode(&s); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("obs: decode span %d: %w", len(out), err)
		}
		out = append(out, s)
	}
}

// Collector is a thread-safe span sink that retains everything — the JSONL
// export buffer behind `campaign -spans`.
type Collector struct {
	mu    sync.Mutex
	spans []Span
}

// Sink returns the collector's func(Span).
func (c *Collector) Sink() func(Span) {
	return func(s Span) {
		c.mu.Lock()
		c.spans = append(c.spans, s)
		c.mu.Unlock()
	}
}

// Spans returns the collected spans in emission order.
func (c *Collector) Spans() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Span(nil), c.spans...)
}

// WriteJSONL dumps the collected spans as JSONL.
func (c *Collector) WriteJSONL(w io.Writer) error {
	return WriteSpansJSONL(w, c.Spans())
}

// DefaultSpanBuckets are the obs_span_duration_seconds histogram bounds:
// 1ms..60s, the range campaign scenarios and service requests actually span.
var DefaultSpanBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

// SpanMetrics summarizes completed spans into one histogram family,
// obs_span_duration_seconds{span,outcome}: per span name (scenario, attempt,
// queue-wait, retry-backoff, request...) and per outcome (ok, panic,
// timeout, error...). It implements metrics.Source; dmafaultd registers it
// through metrics.OmitZero so the family is absent until a span completes.
// These are wall-clock numbers and live only on the service metric plane —
// never inside campaign summaries.
type SpanMetrics struct {
	mu   sync.Mutex
	keys []string // stable emission order (registry sorts anyway)
	byKY map[string]*spanHist
}

type spanHist struct {
	span, outcome string
	buckets       []uint64 // len(DefaultSpanBuckets)+1
	sum           float64
	count         uint64
}

// NewSpanMetrics builds an empty summarizer.
func NewSpanMetrics() *SpanMetrics {
	return &SpanMetrics{byKY: map[string]*spanHist{}}
}

// Sink returns the summarizer's func(Span).
func (m *SpanMetrics) Sink() func(Span) {
	return func(s Span) { m.observe(s) }
}

func (m *SpanMetrics) observe(s Span) {
	outcome := s.Outcome()
	key := s.Name + "\x00" + outcome
	secs := s.Duration().Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.byKY[key]
	if h == nil {
		h = &spanHist{span: s.Name, outcome: outcome,
			buckets: make([]uint64, len(DefaultSpanBuckets)+1)}
		m.byKY[key] = h
		m.keys = append(m.keys, key)
	}
	i := len(DefaultSpanBuckets)
	for b, ub := range DefaultSpanBuckets {
		if secs <= ub {
			i = b
			break
		}
	}
	h.buckets[i]++
	h.sum += secs
	h.count++
}

// Describe implements metrics.Source.
func (m *SpanMetrics) Describe() []metrics.Desc {
	return []metrics.Desc{{
		Name:    "obs_span_duration_seconds",
		Help:    "Wall-clock span durations by span name and outcome.",
		Kind:    metrics.KindHistogram,
		Buckets: DefaultSpanBuckets,
	}}
}

// Collect implements metrics.Source.
func (m *SpanMetrics) Collect(emit func(name string, s metrics.Sample)) {
	m.mu.Lock()
	keys := append([]string(nil), m.keys...)
	sort.Strings(keys)
	samples := make([]metrics.Sample, 0, len(keys))
	for _, k := range keys {
		h := m.byKY[k]
		samples = append(samples, metrics.Sample{
			Labels: []metrics.Label{
				{Key: "outcome", Value: h.outcome},
				{Key: "span", Value: h.span},
			},
			BucketCounts: append([]uint64(nil), h.buckets...),
			Sum:          h.sum,
			Count:        h.count,
		})
	}
	m.mu.Unlock()
	for _, s := range samples {
		emit("obs_span_duration_seconds", s)
	}
}
