package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"dmafault/internal/metrics"
)

// RecordKind classifies flight-recorder entries.
type RecordKind string

const (
	// RecordLog is a structured log record teed in by RingHandler.
	RecordLog RecordKind = "log"
	// RecordSpan is a completed span (via Recorder.SpanSink).
	RecordSpan RecordKind = "span"
	// RecordEvent is a service event (job submitted, watchdog fired, ...).
	RecordEvent RecordKind = "event"
)

// Record is one flight-recorder entry: a wall-clock stamp, a kind, a short
// name (log level, span name, event type), a message, and string attrs.
type Record struct {
	TUnixNanos int64             `json:"t_unix_nanos"`
	Kind       RecordKind        `json:"kind"`
	Name       string            `json:"name"`
	Msg        string            `json:"msg,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// Recorder is the always-on bounded flight recorder: a ring of the most
// recent Records. Old entries fall off; Dropped counts them, and cumulative
// per-kind totals are kept so overflow is never invisible (the ring exports
// both as the trace_recorder_* metric family). All methods are nil-receiver
// safe and safe for concurrent use.
type Recorder struct {
	mu         sync.Mutex
	ring       []Record
	start      int
	count      int
	dropped    uint64
	kindCounts map[RecordKind]uint64
}

// DefaultRecorderCap bounds the ring when NewRecorder is given cap <= 0.
const DefaultRecorderCap = 2048

// NewRecorder builds a ring holding up to cap records.
func NewRecorder(cap int) *Recorder {
	if cap <= 0 {
		cap = DefaultRecorderCap
	}
	return &Recorder{ring: make([]Record, cap), kindCounts: map[RecordKind]uint64{}}
}

// Add appends one record, stamping it with the wall clock if unstamped.
func (r *Recorder) Add(rec Record) {
	if r == nil {
		return
	}
	if rec.TUnixNanos == 0 {
		rec.TUnixNanos = time.Now().UnixNano()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.kindCounts[rec.Kind]++
	if r.count == len(r.ring) {
		r.ring[r.start] = rec
		r.start = (r.start + 1) % len(r.ring)
		r.dropped++
		return
	}
	r.ring[(r.start+r.count)%len(r.ring)] = rec
	r.count++
}

// SpanSink returns a span sink that records completed spans into the ring.
func (r *Recorder) SpanSink() func(Span) {
	return func(s Span) {
		if r == nil {
			return
		}
		attrs := make(map[string]string, len(s.Attrs)+2)
		for k, v := range s.Attrs {
			attrs[k] = v
		}
		attrs["span_id"] = fmt.Sprintf("%d", s.ID)
		if s.Parent != 0 {
			attrs["parent_id"] = fmt.Sprintf("%d", s.Parent)
		}
		r.Add(Record{
			TUnixNanos: s.StartUnixNanos,
			Kind:       RecordSpan,
			Name:       s.Name,
			Msg:        s.Duration().String(),
			Attrs:      attrs,
		})
	}
}

// Event records a service event with key=value attrs.
func (r *Recorder) Event(name, msg string, attrs ...Attr) {
	if r == nil {
		return
	}
	var m map[string]string
	if len(attrs) > 0 {
		m = make(map[string]string, len(attrs))
		for _, a := range attrs {
			m[a.Key] = a.Value
		}
	}
	r.Add(Record{Kind: RecordEvent, Name: name, Msg: msg, Attrs: m})
}

// Records returns the retained window, oldest first.
func (r *Recorder) Records() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, r.count)
	for i := 0; i < r.count; i++ {
		out[i] = r.ring[(r.start+i)%len(r.ring)]
	}
	return out
}

// Dropped returns how many records fell off the ring.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Dump writes the retained window as JSONL, oldest first — the forensic
// artifact the supervisor ships on stall, panic, quarantine trip, and
// SIGTERM.
func (r *Recorder) Dump(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range r.Records() {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("obs: encode record: %w", err)
		}
	}
	return bw.Flush()
}

// DumpFile writes the retained window to path (0644, truncating).
func (r *Recorder) DumpFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: dump: %w", err)
	}
	if err := r.Dump(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadRecordsJSONL decodes a dump written by Dump.
func ReadRecordsJSONL(rd io.Reader) ([]Record, error) {
	dec := json.NewDecoder(rd)
	var out []Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("obs: decode record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

// The ring exports its own retention as the trace_recorder_* family —
// cumulative per-kind event totals and the drop counter — so ring overflow
// is a scrapeable signal, not a silent loss. Register through
// metrics.OmitZero: an untouched recorder stays out of idle expositions.

// Describe implements metrics.Source.
func (r *Recorder) Describe() []metrics.Desc {
	return []metrics.Desc{
		{Name: "trace_recorder_events_total", Help: "Flight-recorder records appended, by kind.", Kind: metrics.KindCounter},
		{Name: "trace_recorder_dropped_total", Help: "Flight-recorder records shed by ring wraparound.", Kind: metrics.KindCounter},
	}
}

// Collect implements metrics.Source.
func (r *Recorder) Collect(emit func(name string, s metrics.Sample)) {
	r.mu.Lock()
	kinds := make([]string, 0, len(r.kindCounts))
	for k := range r.kindCounts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	counts := make([]uint64, len(kinds))
	for i, k := range kinds {
		counts[i] = r.kindCounts[RecordKind(k)]
	}
	dropped := r.dropped
	r.mu.Unlock()
	for i, k := range kinds {
		emit("trace_recorder_events_total", metrics.Sample{
			Labels: metrics.L("kind", k), Value: float64(counts[i]),
		})
	}
	emit("trace_recorder_dropped_total", metrics.Sample{Value: float64(dropped)})
}
