// Package obs is the runtime observability layer: structured logging on
// log/slog, wall-clock span tracing, a bounded flight recorder of recent
// spans and log records, and a subscriber hub for live event streaming. It
// is stdlib-only (plus internal/metrics for exporting its own counters) and
// threads through the campaign engine and the dmafaultd service.
//
// The one hard rule, inherited from the determinism contract of
// internal/campaign and internal/metrics: everything in this package is
// wall-clock, operator-facing data, and none of it may leak into the
// deterministic artifacts — campaign Summaries, resume journals, and golden
// metric expositions are byte-identical whether observability is on or off
// (internal/campaign's obs tests enforce this). Spans and flight-recorder
// dumps live beside the artifacts, never inside them.
//
// The pieces:
//
//   - NewLogger / ParseLevel / ParseFormat: one spelling of the -log-level
//     and -log-format knobs for every cmd (via internal/cliutil).
//   - Tracer / Span: wall-clock span tracing with parent IDs, string attrs,
//     and monotonic durations, fanned out to any number of sinks. Spans
//     export as JSONL (WriteSpansJSONL) and summarize into the
//     obs_span_duration_seconds histogram family (SpanMetrics).
//   - Recorder: the always-on bounded ring of recent spans and log records;
//     RingHandler tees slog records into it; Dump writes the retained
//     window as JSONL — the forensic context the dmafaultd supervisor
//     ships with every stall, panic, quarantine trip, and SIGTERM.
//   - Hub: a fan-out of live events backing GET /campaigns/{id}/events.
//
// Every method on Tracer, Span, Recorder, and Hub is nil-receiver safe, so
// call sites sprinkle spans without guarding "is observability on".
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Log formats accepted by ParseFormat / the -log-format flag.
const (
	FormatText = "text"
	FormatJSON = "json"
)

// ParseLevel maps the -log-level spelling to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (debug|info|warn|error)", s)
	}
}

// ParseFormat validates the -log-format spelling.
func ParseFormat(s string) (string, error) {
	switch strings.ToLower(s) {
	case "", FormatText:
		return FormatText, nil
	case FormatJSON:
		return FormatJSON, nil
	default:
		return "", fmt.Errorf("obs: unknown log format %q (text|json)", s)
	}
}

// NewLogger builds the canonical structured logger: text or JSON records on
// w at the given level. A nil Recorder is allowed; a non-nil one receives a
// copy of every record regardless of level (the flight recorder keeps debug
// context even when the console is quiet).
func NewLogger(w io.Writer, format string, level slog.Level, rec *Recorder) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if format == FormatJSON {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	if rec != nil {
		h = NewRingHandler(h, rec)
	}
	return slog.New(h)
}

// Nop returns a logger that discards everything — the default when a
// component is handed no logger, so call sites never nil-check.
func Nop() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}
