package fabric

import (
	"dmafault/internal/faultd/api"
	"dmafault/internal/metrics"
)

// ShardLatencyBuckets are the fabric_shard_latency_seconds bounds: shard
// wall-clock from lease grant to delivered results, 10ms .. 100s. Wide on
// purpose — a shard's latency includes the worker's queue wait and any
// re-lease detour.
var ShardLatencyBuckets = []float64{0.01, 0.05, 0.25, 1, 5, 25, 100}

// PhaseLatencyBuckets are the fabric_shard_phase_latency_seconds bounds.
// Tighter at the bottom than the whole-shard buckets: queue wait and publish
// are usually sub-millisecond on a healthy worker, and their drift upward is
// the early signal the whole-shard histogram blurs away.
var PhaseLatencyBuckets = []float64{0.001, 0.01, 0.05, 0.25, 1, 5, 25, 100}

// Metrics is the coordinator's fabric_* instrument set. Counters whose
// events are journaled (leases, expiries, re-leases) are campaign-scoped,
// not process-scoped: Replay restores them from the state log on resume, so
// a coordinator killed -9 mid-campaign still reports the re-leases it
// performed before dying. Everything else (gauges, dedup, latency) is
// process-local operator data.
type Metrics struct {
	reg *metrics.Registry

	// LeasesGranted counts every shard lease handed to a worker, including
	// re-grants.
	LeasesGranted *metrics.Counter
	// LeasesExpired counts leases that ended without delivering results:
	// TTL expiry, worker death mid-shard, submit/fetch failures.
	LeasesExpired *metrics.Counter
	// Releases counts re-leases: a shard granted to a worker after a prior
	// lease on the same shard failed. Releases > 0 is the proof the
	// dead-worker recovery path actually fired.
	Releases *metrics.Counter
	// ShardsTotal / ShardsDone report campaign shard progress.
	ShardsTotal *metrics.Gauge
	ShardsDone  *metrics.Counter
	// DedupDropped counts duplicate result deliveries suppressed by the
	// exactly-once gate — an expired lease's late results racing the
	// re-leased worker's.
	DedupDropped *metrics.Counter
	// LocalFallback counts shards the coordinator executed itself because
	// no worker was reachable.
	LocalFallback *metrics.Counter
	// WorkersRegistered / WorkersUp gauge the registry: how many workers
	// the fabric knows about and how many answered the last heartbeat.
	WorkersRegistered *metrics.Gauge
	WorkersUp         *metrics.Gauge
	// WorkerDowns counts up→down transitions observed by the heartbeat.
	WorkerDowns *metrics.Counter
	// ShardLatency is the grant→delivery wall-clock histogram.
	ShardLatency *metrics.Histogram
	// PhaseLatency splits delivered shards' wall-clock into the worker's own
	// phase breakdown, labeled {phase, worker}: the whole-shard histogram
	// answers "how slow", this one answers "slow where, on whom". A labeled
	// vec with no children emits nothing, so runs without timing-reporting
	// workers keep their exposition unchanged.
	PhaseLatency *metrics.HistogramVec

	// The byzantine-tolerance families below describe exceptional
	// conditions and are registered through metrics.OmitZero: absent from a
	// clean run's exposition, present the moment the condition fires — the
	// same convention the faultd supervision plane uses.

	// IntegrityRejected counts deliveries the coordinator refused: torn job
	// documents (truncated or undecodable bodies) and verification failures
	// (result identity or digest mismatches against the lease's shard).
	IntegrityRejected *metrics.Counter
	// ByzantineQuarantined counts workers quarantined for repeated bad
	// deliveries.
	ByzantineQuarantined *metrics.Counter
	// BisectRounds counts shard splits performed to isolate a poison
	// scenario after a shard exhausted its lease-attempt budget.
	BisectRounds *metrics.Counter
	// PoisonQuarantined counts scenarios isolated by bisection and pulled
	// from fabric leasing into local execution.
	PoisonQuarantined *metrics.Counter
	// Steals counts speculative straggler re-leases: a tail shard handed to
	// an idle worker before the primary lease's TTL expired.
	Steals *metrics.Counter
	// StealWins counts steals whose delivery landed before the primary's.
	StealWins *metrics.Counter
}

// NewMetrics builds and registers the fabric instrument set.
func NewMetrics() *Metrics {
	m := &Metrics{
		reg: metrics.NewRegistry(),
		LeasesGranted: metrics.NewCounter("fabric_leases_granted_total",
			"Shard leases granted to workers, including re-grants."),
		LeasesExpired: metrics.NewCounter("fabric_leases_expired_total",
			"Shard leases that expired or failed without delivering results."),
		Releases: metrics.NewCounter("fabric_releases_total",
			"Shards re-leased to another worker after a failed or expired lease."),
		ShardsTotal: metrics.NewGauge("fabric_shards_total",
			"Shards the campaign was partitioned into."),
		ShardsDone: metrics.NewCounter("fabric_shards_completed_total",
			"Shards with every result delivered."),
		DedupDropped: metrics.NewCounter("fabric_dedup_dropped_total",
			"Duplicate result deliveries suppressed by the exactly-once gate."),
		LocalFallback: metrics.NewCounter("fabric_local_fallback_total",
			"Shards executed locally because no worker was reachable."),
		WorkersRegistered: metrics.NewGauge("fabric_workers_registered",
			"Workers known to the registry (static + joined)."),
		WorkersUp: metrics.NewGauge("fabric_workers_up",
			"Workers that answered the last lease-aware readiness probe."),
		WorkerDowns: metrics.NewCounter("fabric_worker_down_total",
			"Worker up-to-down transitions observed by the heartbeat."),
		ShardLatency: metrics.NewHistogram("fabric_shard_latency_seconds",
			"Shard wall-clock from lease grant to delivered results.", ShardLatencyBuckets),
		PhaseLatency: metrics.NewHistogramVec("fabric_shard_phase_latency_seconds",
			"Delivered-shard wall-clock split by worker-reported phase (queue_wait, execute, publish).",
			PhaseLatencyBuckets, "phase", "worker"),
		IntegrityRejected: metrics.NewCounter("fabric_integrity_rejected_total",
			"Deliveries rejected by result integrity verification: torn documents and digest/identity mismatches."),
		ByzantineQuarantined: metrics.NewCounter("fabric_byzantine_quarantined_total",
			"Workers quarantined for repeated bad deliveries."),
		BisectRounds: metrics.NewCounter("fabric_bisect_rounds_total",
			"Shard splits performed to isolate a poison scenario."),
		PoisonQuarantined: metrics.NewCounter("fabric_poison_quarantined_total",
			"Scenarios isolated by bisection and quarantined to local execution."),
		Steals: metrics.NewCounter("fabric_steals_total",
			"Speculative straggler re-leases to idle workers."),
		StealWins: metrics.NewCounter("fabric_steal_wins_total",
			"Steals whose delivery beat the primary lease."),
	}
	m.reg.MustRegister(m.LeasesGranted, m.LeasesExpired, m.Releases,
		m.ShardsTotal, m.ShardsDone, m.DedupDropped, m.LocalFallback,
		m.WorkersRegistered, m.WorkersUp, m.WorkerDowns, m.ShardLatency, m.PhaseLatency,
		metrics.OmitZero(m.IntegrityRejected), metrics.OmitZero(m.ByzantineQuarantined),
		metrics.OmitZero(m.BisectRounds), metrics.OmitZero(m.PoisonQuarantined),
		metrics.OmitZero(m.Steals), metrics.OmitZero(m.StealWins))
	return m
}

// ObservePhases feeds one verified delivery's worker-reported timing into
// the per-phase, per-worker histogram families.
func (m *Metrics) ObservePhases(worker string, t *api.Timing) {
	if t == nil {
		return
	}
	m.PhaseLatency.Observe(t.QueueWaitSeconds, "queue_wait", worker)
	m.PhaseLatency.Observe(t.ExecuteSeconds, "execute", worker)
	m.PhaseLatency.Observe(t.PublishSeconds, "publish", worker)
}

// Replay restores the journaled lease counters from a resumed state log, so
// fabric_releases_total (and friends) survive a coordinator kill.
func (m *Metrics) Replay(st *JournalState) {
	if st == nil {
		return
	}
	m.LeasesGranted.Add(uint64(st.Granted))
	m.LeasesExpired.Add(uint64(st.Expired))
	m.Releases.Add(uint64(st.Released))
}

// Text renders the fabric families in the Prometheus text exposition format.
func (m *Metrics) Text() []byte {
	snap, err := m.reg.Gather()
	if err != nil {
		// Static instruments cannot violate the Source contract.
		panic("fabric: " + err.Error())
	}
	return snap.Text()
}
