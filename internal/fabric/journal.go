package fabric

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"dmafault/internal/campaign"
)

// Coordinator state log: a JSONL file recording everything the coordinator
// must not forget across a kill — lease grants, expiries, re-leases, and
// every delivered result — in the same torn-tail-tolerant idiom as the
// campaign journal and the result store's log. Line 1 binds the log to its
// campaign (scenario-set hash + shard size); every further line is exactly
// one event. A resumed coordinator replays the log to pre-fill delivered
// results (those scenarios never re-execute) and to restore the journaled
// lease counters, so fabric_releases_total reflects the whole campaign even
// after a coordinator kill -9 and restart.

// stateVersion gates the on-disk format.
const stateVersion = 1

type stateHeader struct {
	V         int    `json:"v"`
	Scenarios int    `json:"scenarios"`
	Hash      string `json:"hash"`
	ShardSize int    `json:"shard_size"`
}

// LeaseEvent is one lease-lifecycle record: which shard, which worker,
// which attempt (0 = first grant; > 0 = a re-lease).
type LeaseEvent struct {
	Shard   int    `json:"shard"`
	Worker  string `json:"worker"`
	Attempt int    `json:"attempt"`
}

// stateRecord is one log line past the header. Exactly one field is set:
// a lease-lifecycle event, or a delivered result (Result non-nil, Index
// meaningful). Sharing the {index,result} shape with the campaign journal
// keeps the two logs grep-compatible.
type stateRecord struct {
	Lease    *LeaseEvent      `json:"lease,omitempty"`
	Expired  *LeaseEvent      `json:"expired,omitempty"`
	Released *LeaseEvent      `json:"released,omitempty"`
	Index    int              `json:"index,omitempty"`
	Result   *campaign.Result `json:"result,omitempty"`
}

// StateLog appends coordinator events to an open JSONL file. Each record is
// marshalled to a single line and written with one Write under the mutex,
// so concurrent shard goroutines never interleave bytes.
type StateLog struct {
	mu sync.Mutex
	f  *os.File
}

// JournalState is what a resumed coordinator recovers from its state log:
// every delivered result keyed by global scenario index, plus the lease
// counters to replay into the metric plane.
type JournalState struct {
	Restored map[int]*campaign.Result
	Granted  int
	Expired  int
	Released int
}

// OpenStateLog creates (resume=false) or reopens (resume=true) the
// coordinator state log at path for the given normalized scenario set and
// shard size. A fresh open truncates and writes the header; a resume
// validates the header (set hash and shard size — shard boundaries must not
// move under recorded lease events), truncates any torn final line, and
// returns the recovered state. Resuming a path that does not exist falls
// back to a fresh log, so -resume on a first run just works.
func OpenStateLog(path string, scs []campaign.Scenario, shardSize int, resume bool) (*StateLog, *JournalState, error) {
	if resume {
		if _, err := os.Stat(path); err == nil {
			return reopenStateLog(path, scs, shardSize)
		} else if !os.IsNotExist(err) {
			return nil, nil, fmt.Errorf("fabric: state log: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("fabric: state log: %w", err)
	}
	hdr, err := json.Marshal(stateHeader{V: stateVersion, Scenarios: len(scs),
		Hash: campaign.SetHash(scs), ShardSize: shardSize})
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("fabric: state log: %w", err)
	}
	if _, err := f.Write(append(hdr, '\n')); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("fabric: state log: %w", err)
	}
	return &StateLog{f: f}, &JournalState{Restored: map[int]*campaign.Result{}}, nil
}

// reopenStateLog validates an existing log, truncates a torn tail, and
// positions for append.
func reopenStateLog(path string, scs []campaign.Scenario, shardSize int) (*StateLog, *JournalState, error) {
	st, good, err := readStateLog(path, scs, shardSize)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("fabric: state log: %w", err)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("fabric: state log: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("fabric: state log: %w", err)
	}
	return &StateLog{f: f}, st, nil
}

// ReadStateLog recovers the state of a log without opening it for append —
// what the fabric soak greps for a "released" record, and what tests
// inspect. A missing file yields empty state.
func ReadStateLog(path string, scs []campaign.Scenario, shardSize int) (*JournalState, error) {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return &JournalState{Restored: map[int]*campaign.Result{}}, nil
	}
	st, _, err := readStateLog(path, scs, shardSize)
	return st, err
}

// readStateLog parses the log, returning the recovered state and the byte
// offset just past the last intact line. Parsing stops (without error) at
// the first torn or unparseable line — the expected shape of a kill
// mid-append; header mismatches and out-of-range indexes are real errors.
func readStateLog(path string, scs []campaign.Scenario, shardSize int) (*JournalState, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("fabric: state log: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, 0, fmt.Errorf("fabric: state log %s: missing header", path)
	}
	var hdr stateHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		return nil, 0, fmt.Errorf("fabric: state log %s: bad header: %w", path, err)
	}
	if hdr.V != stateVersion {
		return nil, 0, fmt.Errorf("fabric: state log %s: version %d, want %d", path, hdr.V, stateVersion)
	}
	if hdr.Scenarios != len(scs) {
		return nil, 0, fmt.Errorf("fabric: state log %s: %d scenarios, campaign has %d", path, hdr.Scenarios, len(scs))
	}
	if want := campaign.SetHash(scs); hdr.Hash != want {
		return nil, 0, fmt.Errorf("fabric: state log %s: scenario set hash %s, campaign is %s", path, hdr.Hash, want)
	}
	if hdr.ShardSize != shardSize {
		return nil, 0, fmt.Errorf("fabric: state log %s: shard size %d, coordinator uses %d", path, hdr.ShardSize, shardSize)
	}
	st := &JournalState{Restored: map[int]*campaign.Result{}}
	offset := int64(len(line))
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			break // torn tail from a kill — drop it
		}
		var rec stateRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break // corrupt line: treat it and everything after as torn
		}
		switch {
		case rec.Lease != nil:
			st.Granted++
		case rec.Expired != nil:
			st.Expired++
		case rec.Released != nil:
			st.Released++
		case rec.Result != nil:
			if rec.Index < 0 || rec.Index >= len(scs) {
				return nil, 0, fmt.Errorf("fabric: state log %s: result index %d out of range", path, rec.Index)
			}
			st.Restored[rec.Index] = rec.Result
		default:
			// A record with no recognized field is from a future version or
			// corruption; either way everything after is untrustworthy.
			return st, offset, nil
		}
		offset += int64(len(line))
	}
	return st, offset, nil
}

// append marshals one record to a single line under the mutex.
func (l *StateLog) append(rec stateRecord) error {
	if l == nil {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err = l.f.Write(append(line, '\n'))
	return err
}

// Lease records a shard lease grant.
func (l *StateLog) Lease(e LeaseEvent) error { return l.append(stateRecord{Lease: &e}) }

// Expired records a lease that ended without delivering results.
func (l *StateLog) Expired(e LeaseEvent) error { return l.append(stateRecord{Expired: &e}) }

// Released records a re-lease: the shard going to a new worker after a
// failed lease.
func (l *StateLog) Released(e LeaseEvent) error { return l.append(stateRecord{Released: &e}) }

// Result records one delivered scenario result.
func (l *StateLog) Result(index int, r *campaign.Result) error {
	return l.append(stateRecord{Index: index, Result: r})
}

// Close flushes and closes the underlying file. Nil-safe.
func (l *StateLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
