package fabric

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"dmafault/internal/faultd/api"
	"dmafault/internal/obs"
)

// Coordinator HTTP surface: the routes behind Handler. Workers register
// through POST /v1/fabric/join, operators inspect the registry and follow
// the merged shard stream. All of it is supervision-plane — none of it can
// change a campaign's results.

// handleJoin upserts a worker registration.
func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var req api.JoinRequest
	if err := json.Unmarshal(data, &req); err != nil {
		http.Error(w, "parse join request: "+err.Error(), http.StatusBadRequest)
		return
	}
	u, err := url.Parse(req.URL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		http.Error(w, fmt.Sprintf("join: %q is not an absolute URL", req.URL), http.StatusBadRequest)
		return
	}
	n := c.reg.Join(req.URL)
	c.log.Info("fabric worker joined", "worker", req.URL, "workers", n)
	writeJSON(w, http.StatusOK, api.JoinResponse{Accepted: true, Workers: n})
}

// handleWorkers renders the registry snapshot.
func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.WorkerList{Workers: c.reg.Snapshot()})
}

// handleMetrics renders the fabric families, merged with the fleet plane's
// own instruments when the plane runs.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap, err := c.m.reg.Gather()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if c.fleet != nil {
		fsnap, err := c.fleet.Gather()
		if err == nil {
			err = snap.Merge(fsnap)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(snap.Text())
}

// handleFleet serves the typed fleet snapshot. The indented encoding is the
// document the golden tests pin; two requests against identical fleet state
// return byte-identical bodies.
func (c *Coordinator) handleFleet(w http.ResponseWriter, r *http.Request) {
	if c.fleet == nil {
		http.Error(w, "fabric: fleet plane disabled", http.StatusNotFound)
		return
	}
	data, err := json.MarshalIndent(c.fleet.Snapshot(), "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// handleEvents streams the merged fabric event stream as Server-Sent
// Events: re-published worker job events with shard context, coordinator
// result events, and periodic "workers" heartbeats carrying the registry
// snapshot (cumulative, so a dropped event costs nothing).
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	if c.cfg.Hub == nil {
		http.Error(w, "fabric: event streaming disabled (no hub)", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	ch, cancel := c.cfg.Hub.Subscribe(64)
	defer cancel()
	if writeSSE(w, "workers", c.reg.Snapshot()) != nil {
		return
	}
	fl.Flush()
	tick := time.NewTicker(c.cfg.heartbeat())
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
			if writeSSE(w, "workers", c.reg.Snapshot()) != nil {
				return
			}
			fl.Flush()
		case e, open := <-ch:
			if !open {
				return
			}
			if writeSSE(w, e.Type, e.Data) != nil {
				return
			}
			fl.Flush()
		}
	}
}

// PublishStatus broadcasts a terminal status on the hub and closes it —
// called by the coordinator's owner once Run returns, so SSE followers see
// the campaign end.
func (c *Coordinator) PublishStatus(status string) {
	if c.cfg.Hub == nil {
		return
	}
	c.cfg.Hub.Publish(obs.StreamEvent{Type: "status", Data: map[string]string{"status": status}})
	c.cfg.Hub.Close()
}

// writeSSE frames one Server-Sent Event with a JSON payload.
func writeSSE(w io.Writer, event string, data any) error {
	b, err := json.Marshal(data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	return err
}

// writeJSON marshals one response body.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
