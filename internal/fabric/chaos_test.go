package fabric

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmafault/internal/campaign"
	"dmafault/internal/faultd"
	"dmafault/internal/netchaos"
)

// Byzantine-tolerance tests: the fabric under a hostile network and hostile
// workers. The invariant everything here defends is the same one
// fabric_test.go pins for the happy path — the merged summary is
// byte-identical to a single-node run — but now with a chaos transport
// tearing deliveries, proxies corrupting results, poison shards killing
// leases, and stragglers being raced by speculative steals.

// chaosSet is a half-size ladder set for the byzantine tests: chaos
// re-executes shards many times over (re-leases, steal races, bisection
// halves, orphaned jobs running to completion server-side), so the per-pass
// compute is kept small — under -race a full 16-scenario pass alone costs
// tens of seconds of instrumented CPU.
func chaosSet() []campaign.Scenario { return campaign.LadderPreset(8, 2021) }

var (
	chaosRefOnce sync.Once
	chaosRef     []byte
	chaosRefErr  error
)

// chaosReferenceJSON is referenceJSON for chaosSet, computed once per test
// binary — five tests compare against it and the engine pass is the
// expensive part.
func chaosReferenceJSON(t *testing.T) []byte {
	t.Helper()
	chaosRefOnce.Do(func() {
		eng := campaign.Engine{Workers: 2}
		sum, err := eng.RunCtx(context.Background(), chaosSet())
		if err != nil {
			chaosRefErr = err
			return
		}
		chaosRef, chaosRefErr = sum.JSON()
	})
	if chaosRefErr != nil {
		t.Fatal(chaosRefErr)
	}
	return chaosRef
}

// chaosPlan is the standard hostile-network mix: frequent silent corruption
// and torn bodies (the integrity layer's diet), a background of connection
// drops, injected 503s exercising both Retry-After forms, and occasional
// full partitions that take heartbeats down with the leases.
func chaosPlan(t *testing.T, seed int64) *netchaos.Plan {
	t.Helper()
	plan, err := netchaos.ParseSpec(
		"bitflip:0.25,truncate:0.2,conn-drop:0.05,http-503:0.03,partition:0.01")
	if err != nil {
		t.Fatal(err)
	}
	plan.Seed = seed
	return plan
}

// TestByteIdenticalUnderChaos is the tentpole acceptance test: with every
// worker-bound byte riding a netchaos transport — and stealing, quarantine,
// and bisection all armed — the merged summary still must not change by a
// byte at one, two, or four workers.
func TestByteIdenticalUnderChaos(t *testing.T) {
	want := chaosReferenceJSON(t)
	var rejected uint64
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			urls := make([]string, n)
			for i := range urls {
				urls[i] = newWorker(t).URL
			}
			ch := netchaos.NewTransport(chaosPlan(t, int64(100+n)), nil)
			c := New(Config{
				Workers:        urls,
				ShardSize:      2,
				Heartbeat:      25 * time.Millisecond,
				LeaseTTL:       10 * time.Second,
				AcquireTimeout: 2 * time.Second,
				Transport:      ch,
				// Armed but lazy: fast enough to fire on a chaos-delayed
				// tail shard, slow enough that healthy shards are not all
				// speculatively doubled — constant steals would double the
				// instrumented compute under -race for no extra coverage
				// (TestStragglerWorkSteal pins the steal path itself).
				StealAfter:          2 * time.Second,
				ByzantineProbeAfter: 100 * time.Millisecond,
			})
			sum, err := c.Run(context.Background(), chaosSet())
			if err != nil {
				t.Fatalf("campaign failed under chaos: %v", err)
			}
			got, err := sum.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("summary under chaos differs from single-node run (%d vs %d bytes)",
					len(got), len(want))
			}
			if v := c.Metrics().ShardsDone.Value(); v != 4 {
				t.Fatalf("fabric_shards_completed_total = %d, want 4 — bisection or "+
					"stealing double-counted shard completions", v)
			}
			t.Logf("chaos: %s", ch.CountsText())
			v := c.Metrics().IntegrityRejected.Value()
			rejected += v
			if v > 0 && !strings.Contains(string(c.Metrics().Text()), "fabric_integrity_rejected_total") {
				t.Fatal("fabric_integrity_rejected_total fired but is absent from the exposition")
			}
		})
	}
	// Per-run injection is probabilistic; across the three runs the truncate
	// and bitflip rates make at least one rejected delivery a statistical
	// certainty. Zero here means the integrity layer went blind, not that
	// the network behaved.
	if rejected == 0 {
		t.Fatal("fabric_integrity_rejected_total = 0 across all chaos runs")
	}
}

// TestChaosFamiliesOmittedWhenClean: the byzantine-tolerance families are
// exceptional-condition counters and must be absent from a clean exposition
// (OmitZero), appearing the moment their condition fires.
func TestChaosFamiliesOmittedWhenClean(t *testing.T) {
	families := []string{
		"fabric_integrity_rejected_total",
		"fabric_byzantine_quarantined_total",
		"fabric_bisect_rounds_total",
		"fabric_poison_quarantined_total",
		"fabric_steals_total",
		"fabric_steal_wins_total",
	}
	m := NewMetrics()
	text := string(m.Text())
	for _, fam := range families {
		if strings.Contains(text, fam) {
			t.Errorf("clean exposition contains %s", fam)
		}
	}
	m.IntegrityRejected.Inc()
	m.ByzantineQuarantined.Inc()
	m.BisectRounds.Inc()
	m.PoisonQuarantined.Inc()
	m.Steals.Inc()
	m.StealWins.Inc()
	text = string(m.Text())
	for _, fam := range families {
		if !strings.Contains(text, fam) {
			t.Errorf("fired family %s absent from the exposition", fam)
		}
	}
}

// corruptingWorker proxies a real in-process worker but rewrites delivered
// terminal job documents when corrupt() says so: the first result seed
// gains a leading digit, leaving the JSON well-formed — silent result
// corruption only the integrity layer can see.
func corruptingWorker(t *testing.T, corrupt func() bool) *httptest.Server {
	t.Helper()
	inner := faultd.NewServer()
	inner.Workers = 2
	h := inner.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		body := rec.Body.Bytes()
		if r.Method == http.MethodGet && bytes.Contains(body, []byte(`"results_sha256"`)) && corrupt() {
			body = bytes.Replace(body, []byte(`"seed": `), []byte(`"seed": 9`), 1)
		}
		for k, vs := range rec.Header() {
			if k == "Content-Length" {
				continue
			}
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.Code)
		w.Write(body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestByzantineWorkerQuarantined: a worker that corrupts every delivery is
// struck on each rejection, quarantined at the threshold, and the campaign
// completes byte-identically on the honest worker — no corrupted byte ever
// merges.
func TestByzantineWorkerQuarantined(t *testing.T) {
	want := chaosReferenceJSON(t)
	good := newWorker(t)
	bad := corruptingWorker(t, func() bool { return true })
	c := New(Config{
		Workers:   []string{good.URL, bad.URL},
		ShardSize: 2,
		Heartbeat: 25 * time.Millisecond,
	})
	sum, err := c.Run(context.Background(), chaosSet())
	if err != nil {
		t.Fatal(err)
	}
	got, err := sum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("corrupted deliveries changed the merged summary")
	}
	if v := c.Metrics().IntegrityRejected.Value(); v < 2 {
		t.Fatalf("fabric_integrity_rejected_total = %d, want >= 2", v)
	}
	if v := c.Metrics().ByzantineQuarantined.Value(); v != 1 {
		t.Fatalf("fabric_byzantine_quarantined_total = %d, want 1", v)
	}
	if v := c.Metrics().LocalFallback.Value(); v != 0 {
		t.Fatalf("local fallback fired %d times with an honest worker available", v)
	}
	for _, wi := range c.Registry().Snapshot() {
		if wi.URL == bad.URL && !wi.Quarantined {
			t.Fatal("corrupting worker not quarantined in the registry snapshot")
		}
		if wi.URL == good.URL && wi.Quarantined {
			t.Fatal("honest worker quarantined")
		}
	}
}

// TestByzantineQuarantineHeals: a worker that corrupts twice and then
// behaves is quarantined, wins back admission through a clean half-open
// probe lease, and finishes the campaign readmitted — the breaker closes.
func TestByzantineQuarantineHeals(t *testing.T) {
	want := chaosReferenceJSON(t)
	var corrupted atomic.Int32
	bad := corruptingWorker(t, func() bool { return corrupted.Add(1) <= 2 })
	c := New(Config{
		Workers:             []string{bad.URL},
		ShardSize:           2,
		Heartbeat:           25 * time.Millisecond,
		ByzantineProbeAfter: 50 * time.Millisecond,
	})
	sum, err := c.Run(context.Background(), chaosSet())
	if err != nil {
		t.Fatal(err)
	}
	got, err := sum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("summary differs after quarantine-and-heal")
	}
	if v := c.Metrics().ByzantineQuarantined.Value(); v != 1 {
		t.Fatalf("fabric_byzantine_quarantined_total = %d, want 1", v)
	}
	if v := c.Metrics().IntegrityRejected.Value(); v != 2 {
		t.Fatalf("fabric_integrity_rejected_total = %d, want exactly the 2 corruptions", v)
	}
	if v := c.Metrics().LocalFallback.Value(); v != 0 {
		t.Fatalf("local fallback fired %d times — the healed worker should have carried the campaign", v)
	}
	snap := c.Registry().Snapshot()
	if len(snap) != 1 || snap[0].Quarantined {
		t.Fatalf("worker still quarantined after a clean probe: %+v", snap)
	}
}

// poisonRejectingWorker proxies a real worker but refuses (500) any shard
// submission whose scenario set contains the poison marker — the HTTP
// stand-in for a scenario that crashes whatever node executes it.
func poisonRejectingWorker(t *testing.T, poison string) *httptest.Server {
	t.Helper()
	inner := faultd.NewServer()
	inner.Workers = 2
	h := inner.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/campaigns") {
			body, err := io.ReadAll(r.Body)
			r.Body.Close()
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if bytes.Contains(body, []byte(poison)) {
				http.Error(w, "worker crashed executing shard", http.StatusInternalServerError)
				return
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestPoisonShardBisection: a scenario that kills every lease it rides in
// must be cornered by bisection — two rounds for a 4-scenario shard — and
// quarantined to local execution, while the innocent scenarios it dragged
// down re-lease normally. Shard accounting must not double-count the splits.
func TestPoisonShardBisection(t *testing.T) {
	want := chaosReferenceJSON(t)
	// Global index 4 (shard [4,8) at ShardSize 4): seeds stride by 10007
	// from 2021, so index 4 is uniquely "seed":42049.
	w := poisonRejectingWorker(t, `"seed":42049`)
	c := New(Config{
		Workers:          []string{w.URL},
		ShardSize:        4,
		Heartbeat:        25 * time.Millisecond,
		MaxLeaseAttempts: 2,
	})
	sum, err := c.Run(context.Background(), chaosSet())
	if err != nil {
		t.Fatal(err)
	}
	got, err := sum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("summary differs after bisection")
	}
	if v := c.Metrics().BisectRounds.Value(); v != 2 {
		t.Fatalf("fabric_bisect_rounds_total = %d, want 2 ([4,8) then [4,6))", v)
	}
	if v := c.Metrics().PoisonQuarantined.Value(); v != 1 {
		t.Fatalf("fabric_poison_quarantined_total = %d, want 1", v)
	}
	if v := c.Metrics().LocalFallback.Value(); v != 1 {
		t.Fatalf("fabric_local_fallback_total = %d, want exactly the quarantined scenario", v)
	}
	if v := c.Metrics().ShardsDone.Value(); v != 2 {
		t.Fatalf("fabric_shards_completed_total = %d, want 2 — bisection double-counted", v)
	}
}

// stallSet builds scenarios that each hang 250ms wall-clock (the injected
// scenario-stall fault) — slow enough to make a shard a straggler, finite
// enough to keep the test quick (the steal doubles every execution, so the
// set stays small).
func stallSet() []campaign.Scenario {
	set := make([]campaign.Scenario, 4)
	for i := range set {
		set[i] = campaign.Scenario{
			Kind: campaign.KindWindowLadder, Seed: int64(3000 + i),
			FaultSpec: "scenario-stall@1",
		}
	}
	return set
}

// TestStragglerWorkSteal: with one slow shard leased and a second worker
// idle, the steal timer must speculatively re-lease it; whichever delivery
// lands first wins and the bytes stay identical to a single-node run.
func TestStragglerWorkSteal(t *testing.T) {
	eng := campaign.Engine{Workers: 2}
	ref, err := eng.RunCtx(context.Background(), stallSet())
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.JSON()
	if err != nil {
		t.Fatal(err)
	}

	a, b := newWorker(t), newWorker(t)
	c := New(Config{
		Workers:    []string{a.URL, b.URL},
		ShardSize:  4, // one shard: one primary lease, one idle worker
		Heartbeat:  25 * time.Millisecond,
		StealAfter: 100 * time.Millisecond,
	})
	sum, err := c.Run(context.Background(), stallSet())
	if err != nil {
		t.Fatal(err)
	}
	got, err := sum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("summary differs under work stealing (%d vs %d bytes)", len(got), len(want))
	}
	if v := c.Metrics().Steals.Value(); v != 1 {
		t.Fatalf("fabric_steals_total = %d, want 1", v)
	}
	if v := c.Metrics().LeasesGranted.Value(); v < 2 {
		t.Fatalf("fabric_leases_granted_total = %d, want >= 2 (primary + thief)", v)
	}
	if v := c.Metrics().ShardsDone.Value(); v != 1 {
		t.Fatalf("fabric_shards_completed_total = %d, want 1", v)
	}
}

// TestReleaseBackoffResetsAfterDelivery pins the backoff curve's unit
// semantics: doubling to the cap while a shard fails, snapping back to the
// base the moment a delivery succeeds.
func TestReleaseBackoffResetsAfterDelivery(t *testing.T) {
	c := New(Config{})
	c.backoffs = map[int]time.Duration{}
	if got := c.nextBackoff(3); got != DefaultReleaseBackoff {
		t.Fatalf("first backoff = %v, want base %v", got, DefaultReleaseBackoff)
	}
	if got := c.nextBackoff(3); got != 2*DefaultReleaseBackoff {
		t.Fatalf("second backoff = %v, want doubled %v", got, 2*DefaultReleaseBackoff)
	}
	var last time.Duration
	for i := 0; i < 10; i++ {
		last = c.nextBackoff(3)
	}
	if last != MaxReleaseBackoff {
		t.Fatalf("backoff after 12 failures = %v, want capped %v", last, MaxReleaseBackoff)
	}
	if got := c.nextBackoff(7); got != DefaultReleaseBackoff {
		t.Fatalf("shard 7 inherited shard 3's curve: %v", got)
	}
	c.resetBackoff(3)
	if got := c.nextBackoff(3); got != DefaultReleaseBackoff {
		t.Fatalf("backoff after delivery = %v, want base %v — the curve must reset on success", got, DefaultReleaseBackoff)
	}
}

// TestBackoffEntriesClearedAfterRun is the end-to-end regression for the
// reset: a campaign that failed a lease and then recovered must finish with
// no residual backoff entries — before the reset existed, the shard's next
// incident would have resumed a stale curve.
func TestBackoffEntriesClearedAfterRun(t *testing.T) {
	want := chaosReferenceJSON(t)
	inner := faultd.NewServer()
	inner.Workers = 2
	h := inner.Handler()
	var failedOnce atomic.Bool
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/campaigns") &&
			failedOnce.CompareAndSwap(false, true) {
			http.Error(w, "transient worker hiccup", http.StatusInternalServerError)
			return
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	c := New(Config{
		Workers:   []string{flaky.URL},
		ShardSize: 2,
		Heartbeat: 25 * time.Millisecond,
	})
	sum, err := c.Run(context.Background(), chaosSet())
	if err != nil {
		t.Fatal(err)
	}
	got, err := sum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("summary differs from single-node run")
	}
	if v := c.Metrics().Releases.Value(); v == 0 {
		t.Fatal("fabric_releases_total = 0: the failure path never exercised")
	}
	c.backoffMu.Lock()
	n := len(c.backoffs)
	c.backoffMu.Unlock()
	if n != 0 {
		t.Fatalf("%d residual backoff entries after a campaign that recovered", n)
	}
}
