// Package fabric distributes one campaign across many dmafaultd nodes and
// merges the results byte-identically with a single-node run. The engine
// makes this possible — scenarios are independent and deterministic, and
// the summary is aggregated in input order from index-addressed slots — so
// the fabric's real job is surviving the distribution: workers die
// mid-shard, hang, answer late, or never existed, and the coordinator must
// re-lease, deduplicate, journal, and degrade without ever changing a byte
// of the final summary.
//
// The moving parts:
//
//   - Registry: static -worker-urls plus POST /v1/fabric/join
//     self-registrations, kept honest by lease-aware /readyz heartbeats.
//   - Shards: contiguous global-index ranges of the (globally normalized)
//     scenario set, so per-position IDs are stamped once by the coordinator
//     and survive the trip through a worker untouched.
//   - Leases: a shard is handed to a worker as an ordinary /v1 campaign job
//     and the coordinator waits at most the lease TTL; TTL expiry, worker
//     death (heartbeat loss cancels the wait immediately), and transport
//     errors all end the lease, and the shard is re-leased to another live
//     worker with capped jittered backoff.
//   - Exactly-once: results land in index-addressed slots guarded by a
//     mutex; a late delivery from an "expired" lease racing the re-leased
//     worker's is dropped and counted, and cacheable results are published
//     to the shared result store under their ScenarioDigest.
//   - State log: every lease event and delivered result is journaled
//     (torn-tail tolerant), so a coordinator killed -9 resumes mid-campaign
//     with its re-lease counters intact.
//   - Degradation: zero reachable workers means the coordinator runs the
//     shard itself through the local engine — the fabric never produces
//     less than a single-node run would.
package fabric

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"

	"dmafault/internal/campaign"
	"dmafault/internal/faultd/api"
	"dmafault/internal/faultdclient"
	"dmafault/internal/fleetobs"
	"dmafault/internal/obs"
	"dmafault/internal/par"
)

// Defaults for Config's zero values.
const (
	// DefaultShardSize is how many scenarios ride in one lease.
	DefaultShardSize = 8
	// DefaultLeaseTTL bounds one lease: submit + worker queue wait +
	// execution + result fetch.
	DefaultLeaseTTL = 2 * time.Minute
	// DefaultHeartbeat paces the registry's readiness probes.
	DefaultHeartbeat = time.Second
	// DefaultProbeTimeout bounds one readiness probe. Deliberately decoupled
	// from the heartbeat interval: a worker busy executing a shard may
	// answer /readyz slowly, and a probe budget of one heartbeat would flap
	// it down — cancelling its own in-flight leases.
	DefaultProbeTimeout = 2 * time.Second
	// DefaultDownAfter is how many consecutive probe failures demote a
	// worker. One lost probe is load, not death; demotion cancels the
	// worker's in-flight leases, so it must not fire on a blip.
	DefaultDownAfter = 2
	// DefaultAcquireTimeout is how long a shard waits for an up worker
	// before degrading to local execution.
	DefaultAcquireTimeout = 10 * time.Second
	// DefaultMaxLeaseAttempts bounds re-leases per shard before the
	// coordinator gives up on the fabric and runs the shard locally.
	DefaultMaxLeaseAttempts = 3
	// DefaultMaxLeasesPerWorker caps concurrent shard leases on one worker:
	// one executing plus one queued keeps a node's pipeline full without
	// letting the first worker up absorb the whole campaign while the rest
	// are still being probed.
	DefaultMaxLeasesPerWorker = 2
	// DefaultReleaseBackoff is the base wait before re-leasing a failed
	// shard, doubled per attempt, jittered, and overridden by a worker's
	// Retry-After hint.
	DefaultReleaseBackoff = 250 * time.Millisecond
	// MaxReleaseBackoff caps the re-lease backoff curve.
	MaxReleaseBackoff = 5 * time.Second
)

// Config parameterizes a Coordinator. The zero value distributes nothing —
// no workers, no journal — and degrades to a plain local campaign run.
type Config struct {
	// Workers are static worker base URLs known at start; more may join at
	// runtime through the coordinator's HTTP surface.
	Workers []string
	// ShardSize is scenarios per lease (0: DefaultShardSize).
	ShardSize int
	// LeaseTTL bounds one lease's wall clock (0: DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Heartbeat paces readiness probes (0: DefaultHeartbeat).
	Heartbeat time.Duration
	// ProbeTimeout bounds one readiness probe (0: DefaultProbeTimeout).
	ProbeTimeout time.Duration
	// DownAfter is the consecutive probe failures that demote a worker
	// (0: DefaultDownAfter).
	DownAfter int
	// AcquireTimeout bounds the wait for an up worker before a shard runs
	// locally (0: DefaultAcquireTimeout).
	AcquireTimeout time.Duration
	// MaxLeaseAttempts bounds lease grants per shard before local fallback
	// (0: DefaultMaxLeaseAttempts).
	MaxLeaseAttempts int
	// MaxLeasesPerWorker caps concurrent leases per worker
	// (0: DefaultMaxLeasesPerWorker, <0: unlimited).
	MaxLeasesPerWorker int
	// NeedCache requires workers to run a shared result cache: the
	// heartbeat probes /readyz?lease=1&need_cache=1 and cache-less nodes
	// stay down.
	NeedCache bool
	// JournalPath, when set, is the coordinator state log; with Resume a
	// killed coordinator picks the campaign back up from it.
	JournalPath string
	Resume      bool
	// Store, when set, receives every cacheable delivered result under its
	// ScenarioDigest and accelerates local-fallback execution.
	Store campaign.Store
	// LocalWorkers is the engine pool size for locally executed shards
	// (0: one per CPU).
	LocalWorkers int
	// JobWorkers is the Workers field on submitted shard jobs (0: the
	// worker node's default).
	JobWorkers int
	// Log receives coordinator diagnostics; nil discards them.
	Log *slog.Logger
	// Hub, when set, receives the merged shard event stream: every leased
	// job's SSE events re-published with shard/worker context, plus the
	// coordinator's own result events. Serve it via Handler.
	Hub *obs.Hub
	// OnResult, if set, observes each delivered result (any goroutine).
	OnResult func(index int, r *campaign.Result)
	// Probe overrides the readiness probe (tests); nil uses the lease-aware
	// /readyz probe through the typed client.
	Probe ProbeFunc
	// NewClient overrides worker client construction (tests); nil builds
	// faultdclient.New with fabric-tuned retry caps.
	NewClient func(url string) *faultdclient.Client
	// Transport, when set, underlies every worker-bound HTTP exchange —
	// leases, polls, heartbeat probes. This is the injection point for a
	// netchaos fault plan: one deterministic transport, and every byte the
	// coordinator exchanges with the fleet rides through it. nil uses the
	// default transport. Ignored by NewClient/Probe overrides.
	Transport http.RoundTripper
	// StealAfter enables straggler work stealing: a shard lease still
	// outstanding after this long is speculatively re-leased to an idle
	// worker, both leases race, and the exactly-once gate drops the loser's
	// results (0: disabled).
	StealAfter time.Duration
	// ByzantineThreshold is the consecutive integrity-rejected deliveries
	// that quarantine a worker (0: DefaultByzantineAfter).
	ByzantineThreshold int
	// ByzantineProbeAfter is the quarantine half-open window: how long after
	// the trip the worker may receive one probe lease
	// (0: DefaultByzantineProbeAfter).
	ByzantineProbeAfter time.Duration
	// FleetObs enables the fleet telemetry plane (internal/fleetobs): a
	// scrape loop over every registered worker's /v1/metrics + /readyz,
	// GET /v1/fleet on the coordinator surface, and periodic "fleet" SSE
	// events on the hub. Pure observability — summary bytes are identical
	// with the plane on or off (test-enforced).
	FleetObs bool
	// FleetInterval paces fleet scrape rounds (0: fleetobs.DefaultInterval).
	FleetInterval time.Duration
}

func (c Config) shardSize() int {
	if c.ShardSize > 0 {
		return c.ShardSize
	}
	return DefaultShardSize
}

func (c Config) leaseTTL() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return DefaultLeaseTTL
}

func (c Config) heartbeat() time.Duration {
	if c.Heartbeat > 0 {
		return c.Heartbeat
	}
	return DefaultHeartbeat
}

func (c Config) probeTimeout() time.Duration {
	if c.ProbeTimeout > 0 {
		return c.ProbeTimeout
	}
	return DefaultProbeTimeout
}

func (c Config) downAfter() int {
	if c.DownAfter > 0 {
		return c.DownAfter
	}
	return DefaultDownAfter
}

func (c Config) acquireTimeout() time.Duration {
	if c.AcquireTimeout > 0 {
		return c.AcquireTimeout
	}
	return DefaultAcquireTimeout
}

func (c Config) maxLeaseAttempts() int {
	if c.MaxLeaseAttempts > 0 {
		return c.MaxLeaseAttempts
	}
	return DefaultMaxLeaseAttempts
}

func (c Config) maxLeasesPerWorker() int {
	switch {
	case c.MaxLeasesPerWorker > 0:
		return c.MaxLeasesPerWorker
	case c.MaxLeasesPerWorker < 0:
		return 0 // unlimited
	}
	return DefaultMaxLeasesPerWorker
}

func (c Config) byzantineThreshold() int {
	if c.ByzantineThreshold > 0 {
		return c.ByzantineThreshold
	}
	return DefaultByzantineAfter
}

func (c Config) byzantineProbeAfter() time.Duration {
	if c.ByzantineProbeAfter > 0 {
		return c.ByzantineProbeAfter
	}
	return DefaultByzantineProbeAfter
}

// shard is one contiguous global-index range [Start, End) of the scenario
// set.
type shard struct {
	Idx, Start, End int
}

// Coordinator runs one distributed campaign. Build with New, run with Run;
// Handler serves the supervision surface for the run's duration.
type Coordinator struct {
	cfg   Config
	m     *Metrics
	reg   *Registry
	log   *slog.Logger
	fleet *fleetobs.Plane // nil unless cfg.FleetObs

	mu        sync.Mutex
	scs       []campaign.Scenario // globally normalized set
	results   []*campaign.Result  // index-addressed, exactly-once
	delivered int
	state     *StateLog

	// backoffs is the per-shard re-lease backoff curve, keyed by shard
	// index. An entry exists only while the shard is failing: a successful
	// delivery deletes it, so the next failure — possibly minutes later,
	// injected by chaos — restarts from the base instead of resuming a
	// maxed-out curve.
	backoffMu sync.Mutex
	backoffs  map[int]time.Duration

	localMu sync.Mutex // serializes local-fallback engine runs
}

// New builds a coordinator. The registry starts with the static workers;
// heartbeats begin when Run does.
func New(cfg Config) *Coordinator {
	m := NewMetrics()
	log := cfg.Log
	if log == nil {
		log = obs.Nop()
	}
	probe := cfg.Probe
	if probe == nil {
		probe = defaultProbe(cfg.NeedCache, cfg.probeTimeout(), cfg.Transport)
	}
	reg := NewRegistry(cfg.Workers, probe, m, log)
	reg.MaxLeases = cfg.maxLeasesPerWorker()
	reg.DownAfter = cfg.downAfter()
	reg.ByzantineAfter = cfg.byzantineThreshold()
	reg.ProbeAfter = cfg.byzantineProbeAfter()
	c := &Coordinator{
		cfg: cfg,
		m:   m,
		reg: reg,
		log: log,
	}
	if cfg.FleetObs {
		c.fleet = fleetobs.New(fleetobs.Config{
			Interval:  cfg.FleetInterval,
			Workers:   reg.FleetState,
			Campaign:  c.campaignState,
			NewClient: cfg.NewClient,
			Transport: cfg.Transport,
			Hub:       cfg.Hub,
			Log:       log,
		})
	}
	return c
}

// campaignState is the fleet plane's progress source: nil before Run seeds
// the scenario set, live counts afterwards.
func (c *Coordinator) campaignState() *api.FleetCampaign {
	c.mu.Lock()
	total, done := len(c.scs), c.delivered
	c.mu.Unlock()
	if total == 0 {
		return nil
	}
	return &api.FleetCampaign{
		ScenariosTotal: total,
		ScenariosDone:  done,
		ShardsTotal:    int(c.m.ShardsTotal.Value()),
		ShardsDone:     int(c.m.ShardsDone.Value()),
	}
}

// Fleet exposes the fleet telemetry plane (nil unless Config.FleetObs).
func (c *Coordinator) Fleet() *fleetobs.Plane { return c.fleet }

// Metrics exposes the fabric instrument set (for /metrics and -fabric-metrics).
func (c *Coordinator) Metrics() *Metrics { return c.m }

// Registry exposes the worker registry (for the HTTP surface and tests).
func (c *Coordinator) Registry() *Registry { return c.reg }

// client builds the /v1 client for one worker, riding the configured
// transport so a netchaos plan sees every lease exchange.
func (c *Coordinator) client(url string) *faultdclient.Client {
	if c.cfg.NewClient != nil {
		return c.cfg.NewClient(url)
	}
	return faultdclient.New(url).WithTransport(c.cfg.Transport)
}

// Run executes the scenario set across the fabric and returns the merged
// summary — byte-identical to a single-node engine run of the same set.
func (c *Coordinator) Run(ctx context.Context, scenarios []campaign.Scenario) (*campaign.Summary, error) {
	// Normalize the FULL set here, so every scenario's position-derived ID
	// is stamped against its global index. Workers re-normalize shard
	// slices with shard-local indexes, but Normalize never overwrites a
	// non-empty ID — global identity survives the trip.
	scs := make([]campaign.Scenario, len(scenarios))
	copy(scs, scenarios)
	for i := range scs {
		scs[i].Normalize(i)
		if err := scs[i].Validate(); err != nil {
			return nil, fmt.Errorf("scenario %d (%s): %w", i, scs[i].ID, err)
		}
	}
	c.mu.Lock()
	c.scs = scs
	c.results = make([]*campaign.Result, len(scs))
	c.delivered = 0
	c.mu.Unlock()
	c.backoffMu.Lock()
	c.backoffs = map[int]time.Duration{}
	c.backoffMu.Unlock()

	if c.cfg.JournalPath != "" {
		state, st, err := OpenStateLog(c.cfg.JournalPath, scs, c.cfg.shardSize(), c.cfg.Resume)
		if err != nil {
			return nil, err
		}
		defer state.Close()
		c.mu.Lock()
		c.state = state
		for i, r := range st.Restored {
			c.results[i] = r
			c.delivered++
		}
		c.mu.Unlock()
		c.m.Replay(st)
		if len(st.Restored) > 0 {
			c.log.Info("fabric resume", "restored", len(st.Restored),
				"scenarios", len(scs), "releases", st.Released)
		}
	}

	shards := c.partition(len(scs))
	c.m.ShardsTotal.Set(float64(len(shards)))

	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go c.reg.Heartbeat(hbCtx, c.cfg.heartbeat())
	if c.fleet != nil {
		go c.fleet.Run(hbCtx)
	}

	err := par.ForEachCtx(ctx, len(shards), len(shards), func(ctx context.Context, i int) error {
		return c.runShard(ctx, shards[i])
	})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	results := c.results
	c.mu.Unlock()
	for i, r := range results {
		if r == nil {
			// Mirrors the engine's own guard: cancellation can leave empty
			// slots behind, and a summary over them would misreport.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("fabric: scenario %d missing after run", i)
		}
	}
	return campaign.Aggregate(results), nil
}

// partition cuts the set into contiguous shards, skipping none — fully
// restored shards are detected per-lease (shardComplete) so their leases
// no-op instantly.
func (c *Coordinator) partition(n int) []shard {
	size := c.cfg.shardSize()
	shards := make([]shard, 0, (n+size-1)/size)
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		shards = append(shards, shard{Idx: len(shards), Start: start, End: end})
	}
	return shards
}

// shardComplete reports whether every slot of the shard is delivered.
func (c *Coordinator) shardComplete(sh shard) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := sh.Start; i < sh.End; i++ {
		if c.results[i] == nil {
			return false
		}
	}
	return true
}

// runShard drives one shard of the partition to completion and counts it
// done exactly once — bisection may split the range into sub-ranges with
// their own lease histories, but fabric_shards_completed_total tracks the
// partition's shards, not the splits.
func (c *Coordinator) runShard(ctx context.Context, sh shard) error {
	if err := c.runShardRange(ctx, sh); err != nil {
		return err
	}
	c.m.ShardsDone.Inc()
	return nil
}

// nextBackoff returns the range's current re-lease backoff and advances the
// curve (doubled, capped at MaxReleaseBackoff).
func (c *Coordinator) nextBackoff(idx int) time.Duration {
	c.backoffMu.Lock()
	defer c.backoffMu.Unlock()
	d, ok := c.backoffs[idx]
	if !ok {
		d = DefaultReleaseBackoff
	}
	next := d * 2
	if next > MaxReleaseBackoff {
		next = MaxReleaseBackoff
	}
	c.backoffs[idx] = next
	return d
}

// resetBackoff returns the shard to the base of the curve. Called on every
// successful delivery: the path just proved itself healthy, and a failure
// minutes from now deserves a fresh fast retry, not the tail of an old
// incident's maxed-out curve.
func (c *Coordinator) resetBackoff(idx int) {
	c.backoffMu.Lock()
	delete(c.backoffs, idx)
	c.backoffMu.Unlock()
}

// errShardFatal marks a lease failure where the shard's own content is the
// prime suspect: the worker rejected the submission outright or the job
// executed and died. Only this class of failure arms bisection — expiry,
// timeouts, and corrupted deliveries are the fleet's problem, not the
// range's.
var errShardFatal = errors.New("fabric: shard killed its lease")

// runShardRange drives one index range [Start, End) to completion: lease to
// a live worker, re-lease on expiry with a capped jittered per-shard
// backoff, degrade to local execution when no worker is reachable, bisect
// when the range itself keeps killing leases.
func (c *Coordinator) runShardRange(ctx context.Context, sh shard) error {
	if c.shardComplete(sh) {
		return nil
	}
	// suspect records whether any failed lease showed evidence that the
	// range itself kills its host (the job executed and died, or the worker
	// rejected the submission outright) — as opposed to infrastructure
	// failures like TTL expiry, timeouts, or corrupted deliveries, which say
	// nothing about the scenarios.
	suspect := false
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if c.reg.Empty() {
			return c.runLocal(ctx, sh)
		}
		if attempt >= c.cfg.maxLeaseAttempts() {
			if suspect {
				// Workers exist and at least one lease died executing this
				// range: suspect the range, not the fleet. Bisect to corner
				// the scenario that keeps killing its hosts.
				return c.bisect(ctx, sh)
			}
			// Every failure was infrastructure (dead workers, expiries):
			// splitting the range would just re-lease into the same weather.
			return c.runLocal(ctx, sh)
		}
		acquireCtx, cancel := context.WithTimeout(ctx, c.cfg.acquireTimeout())
		ref := c.reg.Acquire(acquireCtx)
		cancel()
		if ref == nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if c.reg.AnyUp() {
				// Live workers exist but all are at their lease cap: the
				// fabric is saturated, not unreachable. Keep waiting — a
				// slot frees when any lease ends — without burning the
				// attempt budget.
				attempt--
				continue
			}
			// Workers are registered but none answered within the budget:
			// the fabric is unreachable, not merely busy. Degrade.
			return c.runLocal(ctx, sh)
		}
		ev := LeaseEvent{Shard: sh.Idx, Worker: ref.URL, Attempt: attempt}
		if attempt > 0 {
			c.m.Releases.Inc()
			if err := c.state.Released(ev); err != nil {
				ref.Release()
				return fmt.Errorf("fabric: state log: %w", err)
			}
			c.log.Info("fabric re-lease", "shard", sh.Idx, "worker", ref.URL, "attempt", attempt)
		}
		c.m.LeasesGranted.Inc()
		if err := c.state.Lease(ev); err != nil {
			ref.Release()
			return fmt.Errorf("fabric: state log: %w", err)
		}
		start := time.Now()
		err := c.runGrantedLease(ctx, sh, ref)
		ref.Release()
		if err == nil {
			c.m.ShardLatency.Observe(time.Since(start).Seconds())
			c.resetBackoff(sh.Idx)
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if errors.Is(err, errShardFatal) {
			suspect = true
		}
		c.m.LeasesExpired.Inc()
		if serr := c.state.Expired(ev); serr != nil {
			return fmt.Errorf("fabric: state log: %w", serr)
		}
		c.log.Warn("fabric lease expired", "shard", sh.Idx, "worker", ref.URL,
			"attempt", attempt, "err", err)
		// Back off before the re-lease, jittered so failed shards do not
		// stampede the survivors, honoring a worker's Retry-After when the
		// failure carried one (the server knows its drain schedule).
		next := jitter(c.nextBackoff(sh.Idx))
		var ae *faultdclient.APIError
		if errors.As(err, &ae) && ae.RetryAfter > next {
			next = ae.RetryAfter
		}
		if err := sleepCtx(ctx, next); err != nil {
			return err
		}
	}
}

// bisect splits a lease-exhausted range in half and drives each half with a
// fresh attempt budget. A poison scenario — one that reliably kills or
// stalls whatever worker executes its shard — fails every lease it rides
// in; halving per round corners it in log₂(size) rounds, the size-1 range
// it ends up in is quarantined to local execution, and the innocent
// scenarios it dragged down re-lease normally from the other halves.
func (c *Coordinator) bisect(ctx context.Context, sh shard) error {
	if c.shardComplete(sh) {
		return nil
	}
	if sh.End-sh.Start <= 1 {
		c.m.PoisonQuarantined.Inc()
		c.log.Warn("fabric poison scenario quarantined", "shard", sh.Idx, "index", sh.Start)
		return c.runLocal(ctx, sh)
	}
	c.m.BisectRounds.Inc()
	// The halves are new work items with their own failure histories; the
	// parent's backoff curve dies with it rather than taxing them.
	c.resetBackoff(sh.Idx)
	mid := sh.Start + (sh.End-sh.Start)/2
	c.log.Info("fabric bisect", "shard", sh.Idx,
		"range", fmt.Sprintf("[%d,%d)", sh.Start, sh.End), "mid", mid)
	if err := c.runShardRange(ctx, shard{Idx: sh.Idx, Start: sh.Start, End: mid}); err != nil {
		return err
	}
	return c.runShardRange(ctx, shard{Idx: sh.Idx, Start: mid, End: sh.End})
}

// runGrantedLease runs one granted lease, layering straggler stealing on
// when enabled.
func (c *Coordinator) runGrantedLease(ctx context.Context, sh shard, ref *WorkerRef) error {
	if c.cfg.StealAfter <= 0 {
		return c.runNotedLease(ctx, sh, ref)
	}
	return c.runLeaseStealing(ctx, sh, ref)
}

// runNotedLease runs one lease and feeds its verdict to the registry's
// byzantine accounting: a verified delivery heals, an integrity rejection
// strikes, and anything else — transport death, TTL expiry, cancellation —
// is neutral, saying nothing about the worker's honesty. A half-open probe
// lease ending neutral is withdrawn rather than judged.
func (c *Coordinator) runNotedLease(ctx context.Context, sh shard, ref *WorkerRef) error {
	err := c.runLease(ctx, sh, ref)
	switch {
	case err == nil:
		c.reg.NoteGoodDelivery(ref.URL)
	case errors.Is(err, errIntegrity) && ctx.Err() == nil:
		c.reg.NoteBadDelivery(ref.URL)
	default:
		if ref.Probe {
			c.reg.AbortProbe(ref.URL)
		}
	}
	return err
}

// runLeaseStealing waits on the primary lease but, once the steal delay
// elapses with the lease still outstanding, speculatively re-leases the
// range to an idle worker. Both leases then race; the exactly-once deliver
// gate silently drops the loser's results, so whichever valid delivery
// lands first wins and byte-identity is untouched. The thief is acquired
// non-blocking and only when fully idle — stealing spends spare capacity on
// tail latency and must never delay another shard's primary lease.
func (c *Coordinator) runLeaseStealing(ctx context.Context, sh shard, ref *WorkerRef) error {
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	pdone := make(chan error, 1)
	go func() { pdone <- c.runNotedLease(pctx, sh, ref) }()

	timer := time.NewTimer(c.cfg.StealAfter)
	defer timer.Stop()
	select {
	case err := <-pdone:
		return err
	case <-timer.C:
	}
	thief := c.reg.AcquireIdle(ref.URL)
	if thief == nil {
		// No spare capacity; the primary remains the only lease.
		return <-pdone
	}
	c.m.Steals.Inc()
	c.m.LeasesGranted.Inc()
	if err := c.state.Lease(LeaseEvent{Shard: sh.Idx, Worker: thief.URL}); err != nil {
		thief.Release()
		return fmt.Errorf("fabric: state log: %w", err)
	}
	c.log.Info("fabric steal", "shard", sh.Idx, "primary", ref.URL, "thief", thief.URL)
	sctx, scancel := context.WithCancel(ctx)
	defer scancel()
	tdone := make(chan error, 1)
	go func() {
		err := c.runNotedLease(sctx, sh, thief)
		thief.Release()
		tdone <- err
	}()

	// First resolution wins; the loser is cancelled only when the winner
	// actually delivered — a failed lease leaves the other as the range's
	// only hope and must not take it down too.
	var perr, terr error
	stealWon := false
	select {
	case perr = <-pdone:
		if perr == nil {
			scancel()
		}
		terr = <-tdone
		stealWon = terr == nil && perr != nil
	case terr = <-tdone:
		stealWon = terr == nil
		if stealWon {
			pcancel()
		}
		perr = <-pdone
	}
	if stealWon {
		c.m.StealWins.Inc()
		c.log.Info("fabric steal won", "shard", sh.Idx, "thief", thief.URL)
	}
	if perr != nil && terr != nil {
		// Both died; close out the thief's grant here, the caller closes the
		// primary's when it sees the returned error.
		if err := c.closeExpired(sh, thief.URL, terr); err != nil {
			return err
		}
		return perr
	}
	// Delivered. Close out the losing grant's ledger entry so every grant
	// still resolves to exactly one delivery or expiry.
	if perr != nil {
		if err := c.closeExpired(sh, ref.URL, perr); err != nil {
			return err
		}
	}
	if terr != nil {
		if err := c.closeExpired(sh, thief.URL, terr); err != nil {
			return err
		}
	}
	return nil
}

// closeExpired ends one lease's ledger entry without triggering a re-lease:
// the range was handled by the racing lease, but every grant must resolve
// to a delivery or an expiry so resumed counters stay truthful.
func (c *Coordinator) closeExpired(sh shard, url string, cause error) error {
	c.m.LeasesExpired.Inc()
	if err := c.state.Expired(LeaseEvent{Shard: sh.Idx, Worker: url}); err != nil {
		return fmt.Errorf("fabric: state log: %w", err)
	}
	c.log.Info("fabric lease lost steal race", "shard", sh.Idx, "worker", url, "err", cause)
	return nil
}

// runLease executes one shard lease: submit the shard as an ordinary /v1
// campaign job, wait at most the lease TTL (cancelled early if the worker
// goes down), and deliver the results. Any error means the lease failed and
// the caller re-leases; a best-effort cancel stops the abandoned worker
// from burning cycles on results nobody will collect.
func (c *Coordinator) runLease(ctx context.Context, sh shard, ref *WorkerRef) error {
	leaseCtx, cancel := context.WithTimeout(ctx, c.cfg.leaseTTL())
	defer cancel()
	go func() {
		select {
		case <-ref.Down():
			cancel()
		case <-leaseCtx.Done():
		}
	}()
	cl := c.client(ref.URL)
	c.mu.Lock()
	specs := make([]campaign.Scenario, sh.End-sh.Start)
	copy(specs, c.scs[sh.Start:sh.End])
	c.mu.Unlock()
	acc, err := cl.Submit(leaseCtx, api.SubmitRequest{
		Name:      fmt.Sprintf("fabric-shard-%d", sh.Idx),
		Workers:   c.cfg.JobWorkers,
		Scenarios: specs,
	})
	if err != nil {
		if isTornBody(err) && leaseCtx.Err() == nil {
			// The 202 body tore in flight: the job may exist server-side but
			// its ID is unknowable, so the lease fails and re-leases. The
			// orphaned job (if any) burns worker cycles, never merges — its
			// results are never fetched.
			c.m.IntegrityRejected.Inc()
			return fmt.Errorf("%w: submit: %v", errIntegrity, err)
		}
		var ae *faultdclient.APIError
		if errors.As(err, &ae) && ae.StatusCode == http.StatusInternalServerError {
			// The worker looked at this shard and died on the spot — that is
			// evidence against the range, not the weather.
			return fmt.Errorf("%w: submit: %w", errShardFatal, err)
		}
		return fmt.Errorf("submit: %w", err)
	}
	if c.cfg.Hub != nil {
		go c.forwardEvents(leaseCtx, cl, acc.ID, sh, ref.URL)
	}
	job, err := c.pollTerminal(leaseCtx, cl, acc.ID)
	if err != nil {
		c.cancelAbandoned(cl, acc.ID, sh)
		return fmt.Errorf("wait: %w", err)
	}
	if job.Status != api.StatusDone {
		// The job ran and died (failed, stalled, quarantined): the strongest
		// evidence a scenario in this range kills its host.
		return fmt.Errorf("%w: job %d finished %s: %s", errShardFatal, acc.ID, job.Status, job.Error)
	}
	if err := c.verifyShard(sh, acc.ID, job); err != nil {
		c.m.IntegrityRejected.Inc()
		c.log.Warn("fabric delivery rejected", "shard", sh.Idx, "worker", ref.URL,
			"job", acc.ID, "err", err)
		return err
	}
	// The delivery verified: credit the worker's own phase breakdown to the
	// per-phase histograms and the registry's EWMA accounting. Timing rides
	// outside the results digest, so a corrupted Timing block can at worst
	// skew telemetry — never the merged summary.
	c.m.ObservePhases(ref.URL, job.Timing)
	c.reg.NoteTiming(ref.URL, len(job.Summary.Results), job.CacheHits, job.Timing)
	for i, r := range job.Summary.Results {
		if err := c.deliver(sh.Start+i, r, true); err != nil {
			return err
		}
	}
	return nil
}

// cancelAbandoned best-effort cancels a job whose lease expired. The fresh
// context is deliberate: the lease context is already dead.
func (c *Coordinator) cancelAbandoned(cl *faultdclient.Client, id int, sh shard) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := cl.Cancel(ctx, id); err != nil && !faultdclient.IsConflict(err) {
		c.log.Warn("fabric abandoned-job cancel failed", "shard", sh.Idx, "job", id, "err", err)
	}
}

// shardStreamEvent wraps a worker job's SSE event with fabric context for
// the merged stream.
type shardStreamEvent struct {
	Shard  int    `json:"shard"`
	Worker string `json:"worker"`
	Event  string `json:"event"`
	Data   any    `json:"data,omitempty"`
}

// forwardEvents re-publishes one leased job's SSE stream into the
// coordinator hub. Purely operator data: a broken stream is dropped, never
// retried — the lease's own WaitTerminal is the control path.
func (c *Coordinator) forwardEvents(ctx context.Context, cl *faultdclient.Client, id int, sh shard, worker string) {
	_, _ = cl.Watch(ctx, id, func(ev faultdclient.Event) error {
		c.cfg.Hub.Publish(obs.StreamEvent{Type: "shard", Data: shardStreamEvent{
			Shard: sh.Idx, Worker: worker, Event: ev.Type, Data: ev.Data,
		}})
		return nil
	})
}

// deliver lands one result in its global slot, exactly once. A duplicate —
// an expired lease's late results racing the re-leased worker's — is
// dropped and counted. Delivered results are journaled and, when cacheable,
// published to the shared store under the scenario's digest (fromWorker
// false skips the store: the local engine already wrote it).
func (c *Coordinator) deliver(global int, r *campaign.Result, fromWorker bool) error {
	c.mu.Lock()
	if c.results[global] != nil {
		c.mu.Unlock()
		c.m.DedupDropped.Inc()
		return nil
	}
	c.results[global] = r
	c.delivered++
	done, total := c.delivered, len(c.scs)
	var digest campaign.Digest
	if fromWorker && c.cfg.Store != nil && campaign.Cacheable(r) {
		digest = campaign.ScenarioDigest(c.scs[global])
	}
	state := c.state
	c.mu.Unlock()
	if err := state.Result(global, r); err != nil {
		return fmt.Errorf("fabric: state log: %w", err)
	}
	if digest != (campaign.Digest{}) {
		// Store the position-independent copy, mirroring the engine's own
		// put: the ID is index-derived, the digest is ID-blanked.
		rr := *r
		rr.ID = ""
		if err := c.cfg.Store.Put(digest, &rr); err != nil {
			return fmt.Errorf("fabric: resultstore: %w", err)
		}
	}
	if c.cfg.Hub != nil {
		c.cfg.Hub.Publish(obs.StreamEvent{Type: "result", Data: map[string]any{
			"index": global, "id": r.ID, "outcome": campaign.ResultOutcome(r),
			"scenarios_done": done, "scenarios_total": total,
		}})
	}
	if c.cfg.OnResult != nil {
		c.cfg.OnResult(global, r)
	}
	return nil
}

// runLocal executes a shard through the local engine — the degradation path
// when the fabric is empty or unreachable, and the guarantee that a
// distributed campaign never does worse than a single-node one. Runs are
// serialized: concurrent falling-back shards would each boot a full worker
// pool and thrash the host.
func (c *Coordinator) runLocal(ctx context.Context, sh shard) error {
	c.m.LocalFallback.Inc()
	c.log.Info("fabric local fallback", "shard", sh.Idx)
	c.localMu.Lock()
	defer c.localMu.Unlock()
	c.mu.Lock()
	specs := make([]campaign.Scenario, sh.End-sh.Start)
	copy(specs, c.scs[sh.Start:sh.End])
	completed := map[int]*campaign.Result{}
	for i := sh.Start; i < sh.End; i++ {
		if c.results[i] != nil {
			completed[i-sh.Start] = c.results[i]
		}
	}
	c.mu.Unlock()
	eng := campaign.Engine{
		Workers:   c.cfg.LocalWorkers,
		Cache:     c.cfg.Store,
		Completed: completed,
	}
	sum, err := eng.RunCtx(ctx, specs)
	if err != nil {
		return fmt.Errorf("fabric: local shard %d: %w", sh.Idx, err)
	}
	for i, r := range sum.Results {
		if completed[i] != nil {
			continue // restored before the fallback, already delivered
		}
		if err := c.deliver(sh.Start+i, r, false); err != nil {
			return err
		}
	}
	return nil
}

// jitter spreads a backoff over [3/4·d, 5/4·d).
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d*3/4 + time.Duration(rand.Int64N(int64(d)/2+1))
}

// sleepCtx waits d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Handler serves the coordinator's supervision surface: join, worker
// listing, merged SSE stream, fabric metrics, liveness.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("POST /v1/fabric/join", c.handleJoin)
	mux.HandleFunc("GET /v1/fabric/workers", c.handleWorkers)
	mux.HandleFunc("GET /v1/fabric/events", c.handleEvents)
	mux.HandleFunc("GET /v1/fleet", c.handleFleet)
	return mux
}
