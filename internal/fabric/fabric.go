// Package fabric distributes one campaign across many dmafaultd nodes and
// merges the results byte-identically with a single-node run. The engine
// makes this possible — scenarios are independent and deterministic, and
// the summary is aggregated in input order from index-addressed slots — so
// the fabric's real job is surviving the distribution: workers die
// mid-shard, hang, answer late, or never existed, and the coordinator must
// re-lease, deduplicate, journal, and degrade without ever changing a byte
// of the final summary.
//
// The moving parts:
//
//   - Registry: static -worker-urls plus POST /v1/fabric/join
//     self-registrations, kept honest by lease-aware /readyz heartbeats.
//   - Shards: contiguous global-index ranges of the (globally normalized)
//     scenario set, so per-position IDs are stamped once by the coordinator
//     and survive the trip through a worker untouched.
//   - Leases: a shard is handed to a worker as an ordinary /v1 campaign job
//     and the coordinator waits at most the lease TTL; TTL expiry, worker
//     death (heartbeat loss cancels the wait immediately), and transport
//     errors all end the lease, and the shard is re-leased to another live
//     worker with capped jittered backoff.
//   - Exactly-once: results land in index-addressed slots guarded by a
//     mutex; a late delivery from an "expired" lease racing the re-leased
//     worker's is dropped and counted, and cacheable results are published
//     to the shared result store under their ScenarioDigest.
//   - State log: every lease event and delivered result is journaled
//     (torn-tail tolerant), so a coordinator killed -9 resumes mid-campaign
//     with its re-lease counters intact.
//   - Degradation: zero reachable workers means the coordinator runs the
//     shard itself through the local engine — the fabric never produces
//     less than a single-node run would.
package fabric

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"

	"dmafault/internal/campaign"
	"dmafault/internal/faultd/api"
	"dmafault/internal/faultdclient"
	"dmafault/internal/obs"
	"dmafault/internal/par"
)

// Defaults for Config's zero values.
const (
	// DefaultShardSize is how many scenarios ride in one lease.
	DefaultShardSize = 8
	// DefaultLeaseTTL bounds one lease: submit + worker queue wait +
	// execution + result fetch.
	DefaultLeaseTTL = 2 * time.Minute
	// DefaultHeartbeat paces the registry's readiness probes.
	DefaultHeartbeat = time.Second
	// DefaultProbeTimeout bounds one readiness probe. Deliberately decoupled
	// from the heartbeat interval: a worker busy executing a shard may
	// answer /readyz slowly, and a probe budget of one heartbeat would flap
	// it down — cancelling its own in-flight leases.
	DefaultProbeTimeout = 2 * time.Second
	// DefaultDownAfter is how many consecutive probe failures demote a
	// worker. One lost probe is load, not death; demotion cancels the
	// worker's in-flight leases, so it must not fire on a blip.
	DefaultDownAfter = 2
	// DefaultAcquireTimeout is how long a shard waits for an up worker
	// before degrading to local execution.
	DefaultAcquireTimeout = 10 * time.Second
	// DefaultMaxLeaseAttempts bounds re-leases per shard before the
	// coordinator gives up on the fabric and runs the shard locally.
	DefaultMaxLeaseAttempts = 3
	// DefaultMaxLeasesPerWorker caps concurrent shard leases on one worker:
	// one executing plus one queued keeps a node's pipeline full without
	// letting the first worker up absorb the whole campaign while the rest
	// are still being probed.
	DefaultMaxLeasesPerWorker = 2
	// DefaultReleaseBackoff is the base wait before re-leasing a failed
	// shard, doubled per attempt, jittered, and overridden by a worker's
	// Retry-After hint.
	DefaultReleaseBackoff = 250 * time.Millisecond
	// MaxReleaseBackoff caps the re-lease backoff curve.
	MaxReleaseBackoff = 5 * time.Second
)

// Config parameterizes a Coordinator. The zero value distributes nothing —
// no workers, no journal — and degrades to a plain local campaign run.
type Config struct {
	// Workers are static worker base URLs known at start; more may join at
	// runtime through the coordinator's HTTP surface.
	Workers []string
	// ShardSize is scenarios per lease (0: DefaultShardSize).
	ShardSize int
	// LeaseTTL bounds one lease's wall clock (0: DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Heartbeat paces readiness probes (0: DefaultHeartbeat).
	Heartbeat time.Duration
	// ProbeTimeout bounds one readiness probe (0: DefaultProbeTimeout).
	ProbeTimeout time.Duration
	// DownAfter is the consecutive probe failures that demote a worker
	// (0: DefaultDownAfter).
	DownAfter int
	// AcquireTimeout bounds the wait for an up worker before a shard runs
	// locally (0: DefaultAcquireTimeout).
	AcquireTimeout time.Duration
	// MaxLeaseAttempts bounds lease grants per shard before local fallback
	// (0: DefaultMaxLeaseAttempts).
	MaxLeaseAttempts int
	// MaxLeasesPerWorker caps concurrent leases per worker
	// (0: DefaultMaxLeasesPerWorker, <0: unlimited).
	MaxLeasesPerWorker int
	// NeedCache requires workers to run a shared result cache: the
	// heartbeat probes /readyz?lease=1&need_cache=1 and cache-less nodes
	// stay down.
	NeedCache bool
	// JournalPath, when set, is the coordinator state log; with Resume a
	// killed coordinator picks the campaign back up from it.
	JournalPath string
	Resume      bool
	// Store, when set, receives every cacheable delivered result under its
	// ScenarioDigest and accelerates local-fallback execution.
	Store campaign.Store
	// LocalWorkers is the engine pool size for locally executed shards
	// (0: one per CPU).
	LocalWorkers int
	// JobWorkers is the Workers field on submitted shard jobs (0: the
	// worker node's default).
	JobWorkers int
	// Log receives coordinator diagnostics; nil discards them.
	Log *slog.Logger
	// Hub, when set, receives the merged shard event stream: every leased
	// job's SSE events re-published with shard/worker context, plus the
	// coordinator's own result events. Serve it via Handler.
	Hub *obs.Hub
	// OnResult, if set, observes each delivered result (any goroutine).
	OnResult func(index int, r *campaign.Result)
	// Probe overrides the readiness probe (tests); nil uses the lease-aware
	// /readyz probe through the typed client.
	Probe ProbeFunc
	// NewClient overrides worker client construction (tests); nil builds
	// faultdclient.New with fabric-tuned retry caps.
	NewClient func(url string) *faultdclient.Client
}

func (c Config) shardSize() int {
	if c.ShardSize > 0 {
		return c.ShardSize
	}
	return DefaultShardSize
}

func (c Config) leaseTTL() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return DefaultLeaseTTL
}

func (c Config) heartbeat() time.Duration {
	if c.Heartbeat > 0 {
		return c.Heartbeat
	}
	return DefaultHeartbeat
}

func (c Config) probeTimeout() time.Duration {
	if c.ProbeTimeout > 0 {
		return c.ProbeTimeout
	}
	return DefaultProbeTimeout
}

func (c Config) downAfter() int {
	if c.DownAfter > 0 {
		return c.DownAfter
	}
	return DefaultDownAfter
}

func (c Config) acquireTimeout() time.Duration {
	if c.AcquireTimeout > 0 {
		return c.AcquireTimeout
	}
	return DefaultAcquireTimeout
}

func (c Config) maxLeaseAttempts() int {
	if c.MaxLeaseAttempts > 0 {
		return c.MaxLeaseAttempts
	}
	return DefaultMaxLeaseAttempts
}

func (c Config) maxLeasesPerWorker() int {
	switch {
	case c.MaxLeasesPerWorker > 0:
		return c.MaxLeasesPerWorker
	case c.MaxLeasesPerWorker < 0:
		return 0 // unlimited
	}
	return DefaultMaxLeasesPerWorker
}

// shard is one contiguous global-index range [Start, End) of the scenario
// set.
type shard struct {
	Idx, Start, End int
}

// Coordinator runs one distributed campaign. Build with New, run with Run;
// Handler serves the supervision surface for the run's duration.
type Coordinator struct {
	cfg Config
	m   *Metrics
	reg *Registry
	log *slog.Logger

	mu        sync.Mutex
	scs       []campaign.Scenario // globally normalized set
	results   []*campaign.Result  // index-addressed, exactly-once
	delivered int
	state     *StateLog

	localMu sync.Mutex // serializes local-fallback engine runs
}

// New builds a coordinator. The registry starts with the static workers;
// heartbeats begin when Run does.
func New(cfg Config) *Coordinator {
	m := NewMetrics()
	log := cfg.Log
	if log == nil {
		log = obs.Nop()
	}
	probe := cfg.Probe
	if probe == nil {
		probe = defaultProbe(cfg.NeedCache, cfg.probeTimeout())
	}
	reg := NewRegistry(cfg.Workers, probe, m, log)
	reg.MaxLeases = cfg.maxLeasesPerWorker()
	reg.DownAfter = cfg.downAfter()
	return &Coordinator{
		cfg: cfg,
		m:   m,
		reg: reg,
		log: log,
	}
}

// Metrics exposes the fabric instrument set (for /metrics and -fabric-metrics).
func (c *Coordinator) Metrics() *Metrics { return c.m }

// Registry exposes the worker registry (for the HTTP surface and tests).
func (c *Coordinator) Registry() *Registry { return c.reg }

// client builds the /v1 client for one worker.
func (c *Coordinator) client(url string) *faultdclient.Client {
	if c.cfg.NewClient != nil {
		return c.cfg.NewClient(url)
	}
	return faultdclient.New(url)
}

// Run executes the scenario set across the fabric and returns the merged
// summary — byte-identical to a single-node engine run of the same set.
func (c *Coordinator) Run(ctx context.Context, scenarios []campaign.Scenario) (*campaign.Summary, error) {
	// Normalize the FULL set here, so every scenario's position-derived ID
	// is stamped against its global index. Workers re-normalize shard
	// slices with shard-local indexes, but Normalize never overwrites a
	// non-empty ID — global identity survives the trip.
	scs := make([]campaign.Scenario, len(scenarios))
	copy(scs, scenarios)
	for i := range scs {
		scs[i].Normalize(i)
		if err := scs[i].Validate(); err != nil {
			return nil, fmt.Errorf("scenario %d (%s): %w", i, scs[i].ID, err)
		}
	}
	c.mu.Lock()
	c.scs = scs
	c.results = make([]*campaign.Result, len(scs))
	c.delivered = 0
	c.mu.Unlock()

	if c.cfg.JournalPath != "" {
		state, st, err := OpenStateLog(c.cfg.JournalPath, scs, c.cfg.shardSize(), c.cfg.Resume)
		if err != nil {
			return nil, err
		}
		defer state.Close()
		c.mu.Lock()
		c.state = state
		for i, r := range st.Restored {
			c.results[i] = r
			c.delivered++
		}
		c.mu.Unlock()
		c.m.Replay(st)
		if len(st.Restored) > 0 {
			c.log.Info("fabric resume", "restored", len(st.Restored),
				"scenarios", len(scs), "releases", st.Released)
		}
	}

	shards := c.partition(len(scs))
	c.m.ShardsTotal.Set(float64(len(shards)))

	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go c.reg.Heartbeat(hbCtx, c.cfg.heartbeat())

	err := par.ForEachCtx(ctx, len(shards), len(shards), func(ctx context.Context, i int) error {
		return c.runShard(ctx, shards[i])
	})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	results := c.results
	c.mu.Unlock()
	for i, r := range results {
		if r == nil {
			// Mirrors the engine's own guard: cancellation can leave empty
			// slots behind, and a summary over them would misreport.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("fabric: scenario %d missing after run", i)
		}
	}
	return campaign.Aggregate(results), nil
}

// partition cuts the set into contiguous shards, skipping none — fully
// restored shards are detected per-lease (shardComplete) so their leases
// no-op instantly.
func (c *Coordinator) partition(n int) []shard {
	size := c.cfg.shardSize()
	shards := make([]shard, 0, (n+size-1)/size)
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		shards = append(shards, shard{Idx: len(shards), Start: start, End: end})
	}
	return shards
}

// shardComplete reports whether every slot of the shard is delivered.
func (c *Coordinator) shardComplete(sh shard) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := sh.Start; i < sh.End; i++ {
		if c.results[i] == nil {
			return false
		}
	}
	return true
}

// runShard drives one shard to completion: lease to a live worker, re-lease
// on expiry with capped jittered backoff, degrade to local execution when
// no worker is reachable or the attempt budget is spent.
func (c *Coordinator) runShard(ctx context.Context, sh shard) error {
	if c.shardComplete(sh) {
		c.m.ShardsDone.Inc()
		return nil
	}
	backoff := DefaultReleaseBackoff
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if c.reg.Empty() || attempt >= c.cfg.maxLeaseAttempts() {
			return c.runLocal(ctx, sh)
		}
		acquireCtx, cancel := context.WithTimeout(ctx, c.cfg.acquireTimeout())
		ref := c.reg.Acquire(acquireCtx)
		cancel()
		if ref == nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if c.reg.AnyUp() {
				// Live workers exist but all are at their lease cap: the
				// fabric is saturated, not unreachable. Keep waiting — a
				// slot frees when any lease ends — without burning the
				// attempt budget.
				attempt--
				continue
			}
			// Workers are registered but none answered within the budget:
			// the fabric is unreachable, not merely busy. Degrade.
			return c.runLocal(ctx, sh)
		}
		ev := LeaseEvent{Shard: sh.Idx, Worker: ref.URL, Attempt: attempt}
		if attempt > 0 {
			c.m.Releases.Inc()
			if err := c.state.Released(ev); err != nil {
				ref.Release()
				return fmt.Errorf("fabric: state log: %w", err)
			}
			c.log.Info("fabric re-lease", "shard", sh.Idx, "worker", ref.URL, "attempt", attempt)
		}
		c.m.LeasesGranted.Inc()
		if err := c.state.Lease(ev); err != nil {
			ref.Release()
			return fmt.Errorf("fabric: state log: %w", err)
		}
		start := time.Now()
		err := c.runLease(ctx, sh, ref)
		ref.Release()
		if err == nil {
			c.m.ShardLatency.Observe(time.Since(start).Seconds())
			c.m.ShardsDone.Inc()
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		c.m.LeasesExpired.Inc()
		if serr := c.state.Expired(ev); serr != nil {
			return fmt.Errorf("fabric: state log: %w", serr)
		}
		c.log.Warn("fabric lease expired", "shard", sh.Idx, "worker", ref.URL,
			"attempt", attempt, "err", err)
		// Back off before the re-lease, jittered so failed shards do not
		// stampede the survivors, honoring a worker's Retry-After when the
		// failure carried one (the server knows its drain schedule).
		next := jitter(backoff)
		var ae *faultdclient.APIError
		if errors.As(err, &ae) && ae.RetryAfter > next {
			next = ae.RetryAfter
		}
		if err := sleepCtx(ctx, next); err != nil {
			return err
		}
		if backoff *= 2; backoff > MaxReleaseBackoff {
			backoff = MaxReleaseBackoff
		}
	}
}

// runLease executes one shard lease: submit the shard as an ordinary /v1
// campaign job, wait at most the lease TTL (cancelled early if the worker
// goes down), and deliver the results. Any error means the lease failed and
// the caller re-leases; a best-effort cancel stops the abandoned worker
// from burning cycles on results nobody will collect.
func (c *Coordinator) runLease(ctx context.Context, sh shard, ref *WorkerRef) error {
	leaseCtx, cancel := context.WithTimeout(ctx, c.cfg.leaseTTL())
	defer cancel()
	go func() {
		select {
		case <-ref.Down():
			cancel()
		case <-leaseCtx.Done():
		}
	}()
	cl := c.client(ref.URL)
	c.mu.Lock()
	specs := make([]campaign.Scenario, sh.End-sh.Start)
	copy(specs, c.scs[sh.Start:sh.End])
	c.mu.Unlock()
	acc, err := cl.Submit(leaseCtx, api.SubmitRequest{
		Name:      fmt.Sprintf("fabric-shard-%d", sh.Idx),
		Workers:   c.cfg.JobWorkers,
		Scenarios: specs,
	})
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	if c.cfg.Hub != nil {
		go c.forwardEvents(leaseCtx, cl, acc.ID, sh, ref.URL)
	}
	job, err := cl.WaitTerminal(leaseCtx, acc.ID, 0)
	if err != nil {
		c.cancelAbandoned(cl, acc.ID, sh)
		return fmt.Errorf("wait: %w", err)
	}
	if job.Status != api.StatusDone || job.Summary == nil {
		return fmt.Errorf("job %d finished %s: %s", acc.ID, job.Status, job.Error)
	}
	if got := len(job.Summary.Results); got != sh.End-sh.Start {
		return fmt.Errorf("job %d returned %d results, shard has %d", acc.ID, got, sh.End-sh.Start)
	}
	for i, r := range job.Summary.Results {
		if err := c.deliver(sh.Start+i, r, true); err != nil {
			return err
		}
	}
	return nil
}

// cancelAbandoned best-effort cancels a job whose lease expired. The fresh
// context is deliberate: the lease context is already dead.
func (c *Coordinator) cancelAbandoned(cl *faultdclient.Client, id int, sh shard) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := cl.Cancel(ctx, id); err != nil && !faultdclient.IsConflict(err) {
		c.log.Warn("fabric abandoned-job cancel failed", "shard", sh.Idx, "job", id, "err", err)
	}
}

// shardStreamEvent wraps a worker job's SSE event with fabric context for
// the merged stream.
type shardStreamEvent struct {
	Shard  int    `json:"shard"`
	Worker string `json:"worker"`
	Event  string `json:"event"`
	Data   any    `json:"data,omitempty"`
}

// forwardEvents re-publishes one leased job's SSE stream into the
// coordinator hub. Purely operator data: a broken stream is dropped, never
// retried — the lease's own WaitTerminal is the control path.
func (c *Coordinator) forwardEvents(ctx context.Context, cl *faultdclient.Client, id int, sh shard, worker string) {
	_, _ = cl.Watch(ctx, id, func(ev faultdclient.Event) error {
		c.cfg.Hub.Publish(obs.StreamEvent{Type: "shard", Data: shardStreamEvent{
			Shard: sh.Idx, Worker: worker, Event: ev.Type, Data: ev.Data,
		}})
		return nil
	})
}

// deliver lands one result in its global slot, exactly once. A duplicate —
// an expired lease's late results racing the re-leased worker's — is
// dropped and counted. Delivered results are journaled and, when cacheable,
// published to the shared store under the scenario's digest (fromWorker
// false skips the store: the local engine already wrote it).
func (c *Coordinator) deliver(global int, r *campaign.Result, fromWorker bool) error {
	c.mu.Lock()
	if c.results[global] != nil {
		c.mu.Unlock()
		c.m.DedupDropped.Inc()
		return nil
	}
	c.results[global] = r
	c.delivered++
	done, total := c.delivered, len(c.scs)
	var digest campaign.Digest
	if fromWorker && c.cfg.Store != nil && campaign.Cacheable(r) {
		digest = campaign.ScenarioDigest(c.scs[global])
	}
	state := c.state
	c.mu.Unlock()
	if err := state.Result(global, r); err != nil {
		return fmt.Errorf("fabric: state log: %w", err)
	}
	if digest != (campaign.Digest{}) {
		// Store the position-independent copy, mirroring the engine's own
		// put: the ID is index-derived, the digest is ID-blanked.
		rr := *r
		rr.ID = ""
		if err := c.cfg.Store.Put(digest, &rr); err != nil {
			return fmt.Errorf("fabric: resultstore: %w", err)
		}
	}
	if c.cfg.Hub != nil {
		c.cfg.Hub.Publish(obs.StreamEvent{Type: "result", Data: map[string]any{
			"index": global, "id": r.ID, "outcome": campaign.ResultOutcome(r),
			"scenarios_done": done, "scenarios_total": total,
		}})
	}
	if c.cfg.OnResult != nil {
		c.cfg.OnResult(global, r)
	}
	return nil
}

// runLocal executes a shard through the local engine — the degradation path
// when the fabric is empty or unreachable, and the guarantee that a
// distributed campaign never does worse than a single-node one. Runs are
// serialized: concurrent falling-back shards would each boot a full worker
// pool and thrash the host.
func (c *Coordinator) runLocal(ctx context.Context, sh shard) error {
	c.m.LocalFallback.Inc()
	c.log.Info("fabric local fallback", "shard", sh.Idx)
	c.localMu.Lock()
	defer c.localMu.Unlock()
	c.mu.Lock()
	specs := make([]campaign.Scenario, sh.End-sh.Start)
	copy(specs, c.scs[sh.Start:sh.End])
	completed := map[int]*campaign.Result{}
	for i := sh.Start; i < sh.End; i++ {
		if c.results[i] != nil {
			completed[i-sh.Start] = c.results[i]
		}
	}
	c.mu.Unlock()
	eng := campaign.Engine{
		Workers:   c.cfg.LocalWorkers,
		Cache:     c.cfg.Store,
		Completed: completed,
	}
	sum, err := eng.RunCtx(ctx, specs)
	if err != nil {
		return fmt.Errorf("fabric: local shard %d: %w", sh.Idx, err)
	}
	for i, r := range sum.Results {
		if completed[i] != nil {
			continue // restored before the fallback, already delivered
		}
		if err := c.deliver(sh.Start+i, r, false); err != nil {
			return err
		}
	}
	c.m.ShardsDone.Inc()
	return nil
}

// jitter spreads a backoff over [3/4·d, 5/4·d).
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d*3/4 + time.Duration(rand.Int64N(int64(d)/2+1))
}

// sleepCtx waits d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Handler serves the coordinator's supervision surface: join, worker
// listing, merged SSE stream, fabric metrics, liveness.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(c.m.Text())
	})
	mux.HandleFunc("POST /v1/fabric/join", c.handleJoin)
	mux.HandleFunc("GET /v1/fabric/workers", c.handleWorkers)
	mux.HandleFunc("GET /v1/fabric/events", c.handleEvents)
	return mux
}
