package fabric

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"dmafault/internal/campaign"
	"dmafault/internal/faultd"
)

// testSet is the campaign every fabric test distributes: big enough to span
// several shards, fast enough to run in milliseconds.
func testSet() []campaign.Scenario { return campaign.LadderPreset(16, 2021) }

// referenceJSON runs the set through the plain local engine — the bytes every
// fabric topology must reproduce exactly.
func referenceJSON(t *testing.T) []byte {
	t.Helper()
	eng := campaign.Engine{Workers: 2}
	sum, err := eng.RunCtx(context.Background(), testSet())
	if err != nil {
		t.Fatal(err)
	}
	data, err := sum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// newWorker boots an in-process dmafaultd worker node.
func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv := faultd.NewServer()
	srv.Workers = 2
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestByteIdenticalAcrossWorkerCounts is the tentpole acceptance test: the
// merged summary must not change by a byte whether the campaign runs on one,
// two, or four workers.
func TestByteIdenticalAcrossWorkerCounts(t *testing.T) {
	want := referenceJSON(t)
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			urls := make([]string, n)
			for i := range urls {
				urls[i] = newWorker(t).URL
			}
			c := New(Config{Workers: urls, ShardSize: 4, Heartbeat: 25 * time.Millisecond})
			sum, err := c.Run(context.Background(), testSet())
			if err != nil {
				t.Fatal(err)
			}
			got, err := sum.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("summary differs from single-node run (%d vs %d bytes)", len(got), len(want))
			}
			if v := c.Metrics().LeasesGranted.Value(); v == 0 {
				t.Fatal("no leases granted — campaign did not use the fabric")
			}
			if v := c.Metrics().LocalFallback.Value(); v != 0 {
				t.Fatalf("local fallback fired %d times with %d live workers", v, n)
			}
		})
	}
}

// TestDeadWorkerRelease hands shards to a worker that answers readiness
// probes but black-holes job submissions: its leases must expire at the TTL
// and be re-leased (fabric_releases_total > 0) without changing the summary.
func TestDeadWorkerRelease(t *testing.T) {
	want := referenceJSON(t)
	live := newWorker(t)
	stop := make(chan struct{})
	blackhole := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			fmt.Fprintln(w, "ready")
			return
		}
		// Swallow everything else until the lease dies. The stop channel
		// matters: an unread POST body keeps r.Context alive past the
		// client's cancel, and Server.Close waits on handlers.
		select {
		case <-r.Context().Done():
		case <-stop:
		}
	}))
	t.Cleanup(blackhole.Close)
	t.Cleanup(func() { close(stop) }) // LIFO: unblock handlers before Close waits

	c := New(Config{
		Workers:   []string{live.URL, blackhole.URL},
		ShardSize: 4,
		Heartbeat: 25 * time.Millisecond,
		LeaseTTL:  300 * time.Millisecond,
	})
	sum, err := c.Run(context.Background(), testSet())
	if err != nil {
		t.Fatal(err)
	}
	got, err := sum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("summary differs from single-node run (%d vs %d bytes)", len(got), len(want))
	}
	if v := c.Metrics().Releases.Value(); v == 0 {
		t.Fatal("fabric_releases_total = 0: black-holed leases were never re-leased")
	}
	if v := c.Metrics().LeasesExpired.Value(); v == 0 {
		t.Fatal("fabric_leases_expired_total = 0")
	}
}

// TestZeroWorkersLocalFallback: a coordinator with no workers at all degrades
// to plain local execution and still produces the single-node bytes.
func TestZeroWorkersLocalFallback(t *testing.T) {
	want := referenceJSON(t)
	c := New(Config{ShardSize: 4})
	sum, err := c.Run(context.Background(), testSet())
	if err != nil {
		t.Fatal(err)
	}
	got, err := sum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("summary differs from single-node run")
	}
	if v := c.Metrics().LocalFallback.Value(); v == 0 {
		t.Fatal("fabric_local_fallback_total = 0 with an empty registry")
	}
	if v := c.Metrics().LeasesGranted.Value(); v != 0 {
		t.Fatalf("%d leases granted with no workers", v)
	}
}

// TestResumeAfterCoordinatorDeath kills a campaign partway (context cancel —
// the orderly stand-in for kill -9, which the fabric soak covers for real)
// and resumes it from the state log: already-delivered results must not
// re-execute and the final summary must match the uninterrupted bytes.
func TestResumeAfterCoordinatorDeath(t *testing.T) {
	want := referenceJSON(t)
	journal := filepath.Join(t.TempDir(), "state.jsonl")

	ctx, cancel := context.WithCancel(context.Background())
	var delivered atomic.Int32
	c1 := New(Config{
		ShardSize:   4,
		JournalPath: journal,
		OnResult: func(int, *campaign.Result) {
			if delivered.Add(1) == 5 {
				cancel() // die mid-campaign with >1 shard outstanding
			}
		},
	})
	if _, err := c1.Run(ctx, testSet()); err == nil {
		t.Fatal("cancelled run unexpectedly succeeded")
	}

	st, err := ReadStateLog(journal, testSet(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Restored) == 0 {
		t.Fatal("nothing journaled before the kill")
	}

	var reExecuted atomic.Int32
	c2 := New(Config{
		ShardSize:   4,
		JournalPath: journal,
		Resume:      true,
		OnResult:    func(int, *campaign.Result) { reExecuted.Add(1) },
	})
	sum, err := c2.Run(context.Background(), testSet())
	if err != nil {
		t.Fatal(err)
	}
	got, err := sum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed summary differs from single-node run")
	}
	if int(reExecuted.Load())+len(st.Restored) != len(testSet()) {
		t.Fatalf("re-executed %d with %d restored, want %d total",
			reExecuted.Load(), len(st.Restored), len(testSet()))
	}
	if v := c2.Metrics().DedupDropped.Value(); v != 0 {
		t.Fatalf("restored results hit the dedup gate %d times", v)
	}
}

// TestResumeRejectsDifferentSet: a state log is bound to its scenario set and
// shard size; resuming against anything else must fail loudly, not merge
// results from a different campaign.
func TestResumeRejectsDifferentSet(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "state.jsonl")
	state, _, err := OpenStateLog(journal, testSet(), 4, false)
	if err != nil {
		t.Fatal(err)
	}
	state.Close()

	if _, _, err := OpenStateLog(journal, campaign.LadderPreset(16, 7), 4, true); err == nil {
		t.Fatal("resume with a different scenario set succeeded")
	}
	if _, _, err := OpenStateLog(journal, testSet(), 8, true); err == nil {
		t.Fatal("resume with a different shard size succeeded")
	}
	if _, _, err := OpenStateLog(journal, testSet(), 4, true); err != nil {
		t.Fatalf("resume with the original binding failed: %v", err)
	}
}

// TestStateLogTornTail: a coordinator killed mid-write leaves a torn final
// line; reopening must keep every complete record and drop only the tail.
func TestStateLogTornTail(t *testing.T) {
	scs := testSet()
	journal := filepath.Join(t.TempDir(), "state.jsonl")
	state, _, err := OpenStateLog(journal, scs, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	ev := LeaseEvent{Shard: 0, Worker: "http://w1", Attempt: 0}
	if err := state.Lease(ev); err != nil {
		t.Fatal(err)
	}
	if err := state.Expired(ev); err != nil {
		t.Fatal(err)
	}
	if err := state.Released(LeaseEvent{Shard: 0, Worker: "http://w2", Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	normalized := make([]campaign.Scenario, len(scs))
	copy(normalized, scs)
	for i := range normalized {
		normalized[i].Normalize(i)
	}
	eng := campaign.Engine{Workers: 1}
	sum, err := eng.RunCtx(context.Background(), normalized[:2])
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range sum.Results {
		if err := state.Result(i, r); err != nil {
			t.Fatal(err)
		}
	}
	state.Close()

	// The kill lands mid-append: a truncated record with no newline.
	f, err := os.OpenFile(journal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"index":2,"result":{"id":"tr`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st, err := ReadStateLog(journal, scs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Restored) != 2 {
		t.Fatalf("restored %d results, want 2 (torn tail dropped)", len(st.Restored))
	}
	if st.Granted != 1 || st.Expired != 1 || st.Released != 1 {
		t.Fatalf("lease counters = %d/%d/%d, want 1/1/1", st.Granted, st.Expired, st.Released)
	}

	// Replay puts the re-lease history back on the metric surface, so
	// fabric_releases_total survives a coordinator kill -9.
	m := NewMetrics()
	m.Replay(st)
	if v := m.Releases.Value(); v != 1 {
		t.Fatalf("replayed fabric_releases_total = %d, want 1", v)
	}

	// And the resumed coordinator can keep appending after the tail is
	// truncated away.
	state2, st2, err := OpenStateLog(journal, scs, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	defer state2.Close()
	if len(st2.Restored) != 2 {
		t.Fatalf("reopen restored %d results, want 2", len(st2.Restored))
	}
	if err := state2.Result(2, sum.Results[0]); err != nil {
		t.Fatal(err)
	}
	st3, err := ReadStateLog(journal, scs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(st3.Restored) != 3 {
		t.Fatalf("after append-on-resume restored %d results, want 3", len(st3.Restored))
	}
}

// TestDeliverDedup: the second delivery of the same global index — an expired
// lease's results racing the re-leased worker's — is dropped and counted.
func TestDeliverDedup(t *testing.T) {
	c := New(Config{})
	scs := testSet()
	for i := range scs {
		scs[i].Normalize(i)
	}
	c.scs = scs
	c.results = make([]*campaign.Result, len(scs))

	r1 := &campaign.Result{ID: scs[0].ID}
	r2 := &campaign.Result{ID: scs[0].ID}
	if err := c.deliver(0, r1, false); err != nil {
		t.Fatal(err)
	}
	if err := c.deliver(0, r2, false); err != nil {
		t.Fatal(err)
	}
	if c.results[0] != r1 {
		t.Fatal("second delivery overwrote the first")
	}
	if v := c.m.DedupDropped.Value(); v != 1 {
		t.Fatalf("fabric_dedup_dropped_total = %d, want 1", v)
	}
	if c.delivered != 1 {
		t.Fatalf("delivered = %d, want 1", c.delivered)
	}
}

// TestSaturatedFabricWaitsInsteadOfDegrading: with the per-worker lease cap
// in force and more shards than slots, shards must queue for a live worker,
// not spill into local fallback.
func TestSaturatedFabricWaitsInsteadOfDegrading(t *testing.T) {
	want := referenceJSON(t)
	w := newWorker(t)
	c := New(Config{
		Workers:            []string{w.URL},
		ShardSize:          2, // 8 shards through one worker, cap 1
		MaxLeasesPerWorker: 1,
		Heartbeat:          25 * time.Millisecond,
		AcquireTimeout:     50 * time.Millisecond, // force acquire timeouts
	})
	sum, err := c.Run(context.Background(), testSet())
	if err != nil {
		t.Fatal(err)
	}
	got, err := sum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("summary differs from single-node run")
	}
	if v := c.Metrics().LocalFallback.Value(); v != 0 {
		t.Fatalf("saturated fabric degraded to local %d times", v)
	}
}

// TestJoinPromotesWorker: a registry with no static members accepts a runtime
// join (the dmafaultd -join path) and leases every shard to the joined
// worker instead of falling back to local execution.
func TestJoinPromotesWorker(t *testing.T) {
	want := referenceJSON(t)
	w := newWorker(t)
	c := New(Config{ShardSize: 4, Heartbeat: 25 * time.Millisecond})
	c.Registry().Join(w.URL)
	sum, err := c.Run(context.Background(), testSet())
	if err != nil {
		t.Fatal(err)
	}
	got, err := sum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("summary differs from single-node run")
	}
	if v := c.Metrics().LeasesGranted.Value(); v == 0 {
		t.Fatal("joined worker never received a lease")
	}
	if v := c.Metrics().LocalFallback.Value(); v != 0 {
		t.Fatalf("local fallback fired %d times with a joined worker", v)
	}
	snap := c.Registry().Snapshot()
	if len(snap) != 1 || snap[0].URL != w.URL || !snap[0].Up {
		t.Fatalf("registry snapshot = %+v", snap)
	}
}
