package fabric

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"dmafault/internal/obs"
)

// TestRegistryFlapDampingUnderRace hammers the registry's promote/demote
// and byzantine note paths from many goroutines (run under -race by make
// check) and pins the flap-damping invariant: every up→down transition
// consumes at least DownAfter recorded probe failures since the worker last
// came up, so a registry can never oscillate a worker faster than the
// 2-strike rule no matter how verdicts interleave.
func TestRegistryFlapDampingUnderRace(t *testing.T) {
	const url = "http://worker"
	errProbe := errors.New("probe failed")
	r := NewRegistry([]string{url}, nil, NewMetrics(), obs.Nop())
	r.DownAfter = 2

	// Serialized phase first: the rule itself, with no concurrency noise.
	r.markUp(url)
	if r.noteFailure(url) {
		t.Fatal("one strike demoted the worker")
	}
	r.markUp(url) // success resets the streak
	if r.noteFailure(url) {
		t.Fatal("one strike after a reset demoted the worker")
	}
	if !r.noteFailure(url) {
		t.Fatal("two consecutive strikes did not demote")
	}
	r.markDown(url, errProbe)
	if v := r.m.WorkerDowns.Value(); v != 1 {
		t.Fatalf("fabric_worker_down_total = %d after one demotion, want 1", v)
	}

	// Concurrent hammer: heartbeat verdicts, byzantine notes, admissions,
	// and snapshots all racing on one worker. The race detector checks the
	// locking; the assertion below checks the damping arithmetic survives
	// every interleaving.
	const goroutines = 8
	const rounds = 400
	var failures atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch (g + i) % 4 {
				case 0:
					r.markUp(url)
				case 1:
					failures.Add(1)
					if r.noteFailure(url) {
						r.markDown(url, errProbe)
					}
				case 2:
					r.NoteBadDelivery(url)
					r.NoteGoodDelivery(url)
				case 3:
					if ref := r.AcquireIdle(""); ref != nil {
						ref.Release()
					}
					_ = r.Snapshot()
					_ = r.AnyUp()
				}
			}
		}(g)
	}
	wg.Wait()

	downs := int64(r.m.WorkerDowns.Value()) - 1 // minus the serialized phase
	if max := failures.Load() / int64(r.DownAfter); downs > max {
		t.Fatalf("worker went down %d times on %d failures — faster than the %d-strike rule allows (max %d)",
			downs, failures.Load(), r.DownAfter, max)
	}
}
