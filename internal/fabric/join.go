package fabric

import (
	"context"
	"log/slog"
	"time"

	"dmafault/internal/faultd/api"
	"dmafault/internal/faultdclient"
)

// DefaultJoinInterval paces a worker's re-registration with its
// coordinator. Re-joins are upserts, so the interval is a liveness refresh,
// not a correctness knob — it just bounds how long a restarted coordinator
// waits before rediscovering the worker.
const DefaultJoinInterval = 2 * time.Second

// JoinLoop announces a worker to a fabric coordinator until ctx ends —
// dmafaultd -join runs this beside its HTTP listener. Failures are logged
// and retried on the next tick: a coordinator that is momentarily down
// (restarting mid-campaign) must not cost the worker its membership.
func JoinLoop(ctx context.Context, coordinator, advertise string, interval time.Duration, log *slog.Logger) {
	if interval <= 0 {
		interval = DefaultJoinInterval
	}
	cl := faultdclient.New(coordinator)
	// Joins retry inline on transient statuses already (client policy);
	// keep the loop's own cadence on top so a long outage re-announces
	// forever rather than giving up.
	t := time.NewTicker(interval)
	defer t.Stop()
	joined := false
	for {
		resp, err := cl.JoinFabric(ctx, api.JoinRequest{URL: advertise})
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return
			}
			log.Warn("fabric join failed", "coordinator", coordinator, "err", err)
			joined = false
		case !joined:
			log.Info("fabric joined", "coordinator", coordinator,
				"advertise", advertise, "workers", resp.Workers)
			joined = true
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}
