package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dmafault/internal/faultd/api"
	"dmafault/internal/netchaos"
)

// Fleet observability tests: the telemetry plane must be pure observation.
// The invariant defended here is the acceptance criterion from the fleet
// plane's design — the merged summary is byte-identical with fleetobs on or
// off, at any worker count, and under a hostile network — plus the typed
// /v1/fleet surface itself.

// TestByteIdenticalWithFleetObs is the fleet-plane acceptance test: with the
// scrape loop running hot (1ms interval — hundreds of scrape rounds per
// campaign), the summary must match the plain single-node bytes at one, two,
// and four workers, and the plane must have attributed per-phase time to
// every worker that executed a shard.
func TestByteIdenticalWithFleetObs(t *testing.T) {
	want := referenceJSON(t)
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			urls := make([]string, n)
			for i := range urls {
				urls[i] = newWorker(t).URL
			}
			c := New(Config{
				Workers:       urls,
				ShardSize:     4,
				Heartbeat:     25 * time.Millisecond,
				FleetObs:      true,
				FleetInterval: time.Millisecond,
			})
			sum, err := c.Run(context.Background(), testSet())
			if err != nil {
				t.Fatal(err)
			}
			got, err := sum.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("summary with fleetobs differs from single-node run (%d vs %d bytes)",
					len(got), len(want))
			}

			fs := c.Fleet().Snapshot()
			if len(fs.Workers) != n {
				t.Fatalf("fleet snapshot has %d workers, want %d", len(fs.Workers), n)
			}
			var executed int
			for _, w := range fs.Workers {
				if w.Delivered == 0 {
					continue
				}
				executed++
				if w.PhaseTotals.Execute <= 0 {
					t.Errorf("worker %s delivered %d shards with zero execute time", w.URL, w.Delivered)
				}
				if w.EWMAShardSeconds <= 0 {
					t.Errorf("worker %s has no EWMA shard latency", w.URL)
				}
				if w.Scenarios == 0 {
					t.Errorf("worker %s delivered shards but no scenarios", w.URL)
				}
			}
			if executed == 0 {
				t.Fatal("no worker in the fleet snapshot delivered anything")
			}
			if fs.Campaign == nil || fs.Campaign.ScenariosDone != len(testSet()) {
				t.Fatalf("campaign progress = %+v", fs.Campaign)
			}

			// The phase histogram must carry per-worker samples for all three
			// phases.
			text := string(c.Metrics().Text())
			for _, phase := range []string{"queue_wait", "execute", "publish"} {
				if !strings.Contains(text, `phase="`+phase+`"`) {
					t.Errorf("fabric_shard_phase_latency_seconds missing phase %q", phase)
				}
			}
		})
	}
}

// TestByteIdenticalWithFleetObsUnderChaos: the fleet plane's scrapes ride the
// same netchaos transport as the control path. Torn metrics bodies and 503d
// readiness probes must degrade the telemetry, never the summary.
func TestByteIdenticalWithFleetObsUnderChaos(t *testing.T) {
	want := chaosReferenceJSON(t)
	urls := []string{newWorker(t).URL, newWorker(t).URL}
	ch := netchaos.NewTransport(chaosPlan(t, 1101), nil)
	c := New(Config{
		Workers:        urls,
		ShardSize:      2,
		Heartbeat:      25 * time.Millisecond,
		LeaseTTL:       10 * time.Second,
		AcquireTimeout: 2 * time.Second,
		Transport:      ch,
		FleetObs:       true,
		FleetInterval:  5 * time.Millisecond,
	})
	sum, err := c.Run(context.Background(), chaosSet())
	if err != nil {
		t.Fatalf("campaign failed under chaos: %v", err)
	}
	got, err := sum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("summary with fleetobs under chaos differs from single-node run (%d vs %d bytes)",
			len(got), len(want))
	}
	t.Logf("chaos: %s", ch.CountsText())
}

// TestFleetEndpoint pins the HTTP surface: 404 when the plane is disabled,
// typed JSON when enabled, and byte-identical bodies across two requests
// against unchanged fleet state.
func TestFleetEndpoint(t *testing.T) {
	t.Run("disabled", func(t *testing.T) {
		c := New(Config{})
		ts := httptest.NewServer(c.Handler())
		defer ts.Close()
		resp, err := ts.Client().Get(ts.URL + "/v1/fleet")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Fatalf("GET /v1/fleet with fleetobs disabled = %d, want 404", resp.StatusCode)
		}
	})

	t.Run("enabled", func(t *testing.T) {
		w := newWorker(t)
		c := New(Config{
			Workers:       []string{w.URL},
			ShardSize:     4,
			Heartbeat:     25 * time.Millisecond,
			FleetObs:      true,
			FleetInterval: time.Millisecond,
		})
		if _, err := c.Run(context.Background(), testSet()); err != nil {
			t.Fatal(err)
		}
		// Run has returned: the scrape loop is cancelled with the heartbeat,
		// so the plane's retained state is frozen and two requests must
		// return identical bytes.
		ts := httptest.NewServer(c.Handler())
		defer ts.Close()
		get := func() []byte {
			resp, err := ts.Client().Get(ts.URL + "/v1/fleet")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Fatalf("GET /v1/fleet = %d, want 200", resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type = %q", ct)
			}
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			return body
		}
		a, b := get(), get()
		if !bytes.Equal(a, b) {
			t.Fatalf("two /v1/fleet requests against frozen state differ:\n%s\nvs\n%s", a, b)
		}
		var fs api.FleetSnapshot
		if err := json.Unmarshal(a, &fs); err != nil {
			t.Fatalf("/v1/fleet body is not a FleetSnapshot: %v", err)
		}
		if len(fs.Workers) != 1 || fs.Workers[0].URL != w.URL {
			t.Fatalf("fleet workers = %+v", fs.Workers)
		}
		if fs.Workers[0].PhaseTotals.Execute <= 0 {
			t.Fatalf("no execute time attributed: %+v", fs.Workers[0])
		}
	})
}

// TestNoteTimingEWMA pins the registry's latency accounting: the first
// delivery seeds the EWMA directly, later deliveries move it by EWMAAlpha,
// and the rate term only updates when a shard reports nonzero execute time.
func TestNoteTimingEWMA(t *testing.T) {
	reg := NewRegistry([]string{"http://w:1"}, nil, NewMetrics(), nil)
	url := "http://w:1"

	reg.NoteTiming(url, 4, 1, &api.Timing{QueueWaitSeconds: 0.5, ExecuteSeconds: 2, PublishSeconds: 0.1})
	rows := reg.FleetState()
	if len(rows) != 1 {
		t.Fatalf("FleetState rows = %d", len(rows))
	}
	w := rows[0]
	if w.EWMAShardSeconds != 2 {
		t.Fatalf("first delivery EWMA = %v, want seeded 2", w.EWMAShardSeconds)
	}
	if w.EWMAScenariosPerSec != 2 { // 4 scenarios / 2s
		t.Fatalf("first delivery rate = %v, want 2", w.EWMAScenariosPerSec)
	}
	if w.Delivered != 1 || w.Scenarios != 4 || w.CacheHits != 1 {
		t.Fatalf("accounting = %+v", w)
	}

	reg.NoteTiming(url, 4, 0, &api.Timing{ExecuteSeconds: 4})
	w = reg.FleetState()[0]
	if want := 2 + EWMAAlpha*(4-2); w.EWMAShardSeconds != want {
		t.Fatalf("second delivery EWMA = %v, want %v", w.EWMAShardSeconds, want)
	}
	if w.PhaseTotals.Execute != 6 {
		t.Fatalf("execute total = %v, want 6", w.PhaseTotals.Execute)
	}

	// A zero-execute-time delivery (sub-resolution shard) must not divide by
	// zero or drag the rate EWMA toward infinity.
	before := w.EWMAScenariosPerSec
	reg.NoteTiming(url, 4, 0, &api.Timing{ExecuteSeconds: 0})
	w = reg.FleetState()[0]
	if w.EWMAScenariosPerSec != before {
		t.Fatalf("zero-duration delivery moved the rate EWMA: %v -> %v", before, w.EWMAScenariosPerSec)
	}
	if w.Delivered != 3 {
		t.Fatalf("delivered = %d, want 3", w.Delivered)
	}

	// Timing is optional on the wire (old workers, fuzz jobs): a nil Timing
	// still counts the delivery.
	reg.NoteTiming(url, 2, 0, nil)
	w = reg.FleetState()[0]
	if w.Delivered != 4 || w.Scenarios != 14 {
		t.Fatalf("nil-timing delivery accounting = %+v", w)
	}
}
