package fabric

import (
	"context"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"dmafault/internal/faultd/api"
	"dmafault/internal/faultdclient"
)

// Worker registry: the coordinator's view of the fabric. Workers arrive two
// ways — static URLs configured at start, and self-registrations through
// POST /v1/fabric/join — and are kept honest by a heartbeat loop probing
// each one's lease-aware /readyz. A worker that stops answering (killed,
// draining, saturated, cache-less) goes down: its in-flight leases are
// cancelled through the per-up-epoch down channel, and Acquire stops
// handing it new shards until a heartbeat brings it back.

// ProbeFunc asks one worker whether it should receive a new shard lease.
// nil = ready; anything else = not ready (an *faultdclient.APIError carries
// the server's verdict and Retry-After hint).
type ProbeFunc func(ctx context.Context, url string) error

type worker struct {
	url      string
	static   bool
	up       bool
	leases   int
	fails    int // consecutive probe failures; reset by any success or join
	lastSeen time.Time
	// down is closed on the up→down transition of the current up-epoch, so
	// every lease granted during that epoch can cancel immediately on
	// heartbeat loss instead of waiting out its TTL. Remade on each return
	// to up.
	down chan struct{}

	// Delivery accounting for the fleet plane: cumulative totals and EWMAs
	// fed by NoteTiming on each verified delivery. Deterministic by
	// construction — a pure function of the delivery sequence, untouched by
	// scrape timing — so identical campaigns report identical fleet rows.
	delivered  int     // verified shard deliveries
	scenarios  int     // scenarios across those deliveries
	cacheHits  int     // cache-replayed scenarios across those deliveries
	phaseQueue float64 // cumulative queue-wait seconds
	phaseExec  float64 // cumulative execute seconds
	phasePub   float64 // cumulative publish seconds
	ewmaShard  float64 // EWMA of per-delivery execute seconds
	ewmaRate   float64 // EWMA of per-delivery scenarios/execute-second

	// Byzantine quarantine: a worker that repeatedly *delivers* bad results
	// is a different failure mode from one that stops answering. It stays
	// up (heartbeats still verify liveness) but Acquire skips it until the
	// half-open window opens, then admits exactly one probe lease — the
	// PR 4 scenario circuit breaker, applied to workers.
	badDeliveries int       // strikes; reset by any verified delivery
	quarantined   bool      // tripped at ByzantineAfter strikes
	quarantinedAt time.Time // trip (or failed-probe re-arm) time
	probing       bool      // a half-open probe lease is in flight
}

// Registry tracks workers and arbitrates lease admission.
type Registry struct {
	// MaxLeases caps concurrent leases per worker (0 = unlimited). Set
	// before Acquire is first called. The cap is what spreads a campaign's
	// shards across the fleet: without it, the first worker marked up — a
	// runtime join beating the static workers' first heartbeat round —
	// absorbs every shard.
	MaxLeases int
	// DownAfter is the consecutive probe failures that demote an up worker
	// (0 or 1 = demote on the first). Demotion cancels the worker's
	// in-flight leases, so a single slow probe must not trigger it.
	DownAfter int
	// ByzantineAfter is the bad deliveries that quarantine a worker
	// (0: DefaultByzantineAfter). Like DownAfter, two strikes — a single
	// torn body may be the network's fault, a pattern is the worker's.
	ByzantineAfter int
	// ProbeAfter is the quarantine half-open window: how long after the
	// trip Acquire may hand the worker one probe lease
	// (0: DefaultByzantineProbeAfter).
	ProbeAfter time.Duration

	mu      sync.Mutex
	workers map[string]*worker
	// wait is closed and remade whenever a worker becomes acquirable
	// (join, heartbeat up-transition, lease release), waking Acquire.
	wait chan struct{}

	probe ProbeFunc
	m     *Metrics
	log   *slog.Logger
}

// NewRegistry builds a registry over the static worker URLs. Static workers
// start down — the first heartbeat round promotes the live ones — while
// joins mark a worker up immediately (a worker announcing itself is alive
// by definition; the next heartbeat re-verifies).
func NewRegistry(static []string, probe ProbeFunc, m *Metrics, log *slog.Logger) *Registry {
	r := &Registry{
		workers: map[string]*worker{},
		wait:    make(chan struct{}),
		probe:   probe,
		m:       m,
		log:     log,
	}
	for _, url := range static {
		if url == "" {
			continue
		}
		r.workers[url] = &worker{url: url, static: true, down: make(chan struct{})}
	}
	r.gaugesLocked()
	return r
}

// gaugesLocked refreshes the registered/up gauges. Callers hold r.mu.
func (r *Registry) gaugesLocked() {
	if r.m == nil {
		return
	}
	up := 0
	for _, w := range r.workers {
		if w.up {
			up++
		}
	}
	r.m.WorkersRegistered.Set(float64(len(r.workers)))
	r.m.WorkersUp.Set(float64(up))
}

// wakeLocked signals every Acquire waiter. Callers hold r.mu.
func (r *Registry) wakeLocked() {
	close(r.wait)
	r.wait = make(chan struct{})
}

// Join upserts a worker (self-registration), marking it up, and returns the
// registry size.
func (r *Registry) Join(url string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.workers[url]
	if w == nil {
		w = &worker{url: url, down: make(chan struct{})}
		r.workers[url] = w
	}
	if !w.up {
		w.up = true
		w.down = make(chan struct{})
		r.wakeLocked()
	}
	w.fails = 0
	w.lastSeen = time.Now()
	r.gaugesLocked()
	return len(r.workers)
}

// Empty reports whether no workers are registered at all — the condition
// under which the coordinator degrades straight to local execution.
func (r *Registry) Empty() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.workers) == 0
}

// AnyUp reports whether at least one worker answered its last probe. An
// Acquire timeout with AnyUp true means the fabric is saturated, not
// unreachable — the shard should keep waiting, not degrade to local.
func (r *Registry) AnyUp() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.workers {
		if w.up {
			return true
		}
	}
	return false
}

// markUp / markDown apply one heartbeat verdict.
func (r *Registry) markUp(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.workers[url]
	if w == nil {
		return
	}
	if !w.up {
		w.up = true
		w.down = make(chan struct{})
		r.wakeLocked()
	}
	w.fails = 0
	w.lastSeen = time.Now()
	r.gaugesLocked()
}

// noteFailure records one probe failure and reports whether the streak has
// reached the demotion threshold.
func (r *Registry) noteFailure(url string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.workers[url]
	if w == nil {
		return false
	}
	w.fails++
	return w.fails >= r.DownAfter
}

func (r *Registry) markDown(url string, err error) {
	r.mu.Lock()
	w := r.workers[url]
	if w == nil || !w.up {
		r.mu.Unlock()
		return
	}
	w.up = false
	close(w.down)
	if r.m != nil {
		r.m.WorkerDowns.Inc()
	}
	r.gaugesLocked()
	r.mu.Unlock()
	if r.log != nil {
		r.log.Warn("fabric worker down", "worker", url, "err", err)
	}
}

// Heartbeat probes every registered worker on the interval until ctx ends.
// The first round runs immediately, so static workers become acquirable
// without waiting a full interval.
func (r *Registry) Heartbeat(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		r.probeAll(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// probeAll runs one heartbeat round, probing workers concurrently so one
// black-holed TCP connect cannot stall the verdict on the others.
func (r *Registry) probeAll(ctx context.Context) {
	r.mu.Lock()
	urls := make([]string, 0, len(r.workers))
	for url := range r.workers {
		urls = append(urls, url)
	}
	r.mu.Unlock()
	var wg sync.WaitGroup
	for _, url := range urls {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			if err := r.probe(ctx, url); err != nil {
				if r.noteFailure(url) {
					r.markDown(url, err)
				}
			} else {
				r.markUp(url)
			}
		}(url)
	}
	wg.Wait()
}

// Defaults for the registry's byzantine-quarantine knobs.
const (
	// DefaultByzantineAfter is the bad-delivery strikes that quarantine.
	DefaultByzantineAfter = 2
	// DefaultByzantineProbeAfter is the half-open re-probe window.
	DefaultByzantineProbeAfter = 5 * time.Second
)

func (r *Registry) byzantineAfter() int {
	if r.ByzantineAfter > 0 {
		return r.ByzantineAfter
	}
	return DefaultByzantineAfter
}

func (r *Registry) probeAfter() time.Duration {
	if r.ProbeAfter > 0 {
		return r.ProbeAfter
	}
	return DefaultByzantineProbeAfter
}

// NoteBadDelivery records one integrity-rejected delivery from a worker. At
// ByzantineAfter strikes the worker is quarantined: still probed for
// liveness, but skipped by Acquire until the half-open window admits one
// probe lease. A probe lease failing re-arms the window instead of
// re-counting strikes.
func (r *Registry) NoteBadDelivery(url string) {
	r.mu.Lock()
	w := r.workers[url]
	if w == nil {
		r.mu.Unlock()
		return
	}
	if w.probing {
		// The half-open probe came back bad: back to fully open.
		w.probing = false
		w.quarantinedAt = time.Now()
		r.mu.Unlock()
		if r.log != nil {
			r.log.Warn("fabric byzantine probe failed", "worker", url)
		}
		return
	}
	w.badDeliveries++
	tripped := !w.quarantined && w.badDeliveries >= r.byzantineAfter()
	if tripped {
		w.quarantined = true
		w.quarantinedAt = time.Now()
		if r.m != nil {
			r.m.ByzantineQuarantined.Inc()
		}
	}
	strikes := w.badDeliveries
	r.mu.Unlock()
	if r.log != nil {
		if tripped {
			r.log.Warn("fabric worker quarantined (byzantine)", "worker", url, "strikes", strikes)
		} else {
			r.log.Warn("fabric bad delivery", "worker", url, "strikes", strikes)
		}
	}
}

// NoteGoodDelivery records one verified delivery: strikes reset, and a
// quarantined worker (its half-open probe came back clean) is readmitted.
func (r *Registry) NoteGoodDelivery(url string) {
	r.mu.Lock()
	w := r.workers[url]
	if w == nil {
		r.mu.Unlock()
		return
	}
	w.badDeliveries = 0
	healed := w.quarantined
	if healed {
		w.quarantined = false
		w.probing = false
		r.wakeLocked() // readmitted capacity: wake Acquire waiters
	}
	r.mu.Unlock()
	if healed && r.log != nil {
		r.log.Info("fabric worker readmitted", "worker", url)
	}
}

// AbortProbe withdraws an in-flight half-open probe without a verdict — the
// lease failed for reasons that say nothing about the worker's honesty
// (context cancelled, worker died mid-shard). The quarantine clock is left
// as it was, so the next Acquire may probe again immediately.
func (r *Registry) AbortProbe(url string) {
	r.mu.Lock()
	if w := r.workers[url]; w != nil && w.probing {
		w.probing = false
		r.wakeLocked()
	}
	r.mu.Unlock()
}

// WorkerRef is one granted admission slot on a worker: the shard lease's
// view of it. Down() fires if the worker is declared dead while the lease
// runs; Release returns the slot (idempotent).
type WorkerRef struct {
	URL string
	// Probe marks a half-open quarantine probe lease: its outcome decides
	// whether the worker is readmitted or the quarantine re-arms.
	Probe bool
	down  <-chan struct{}

	r    *Registry
	once sync.Once
}

// Down returns the channel closed when the worker's current up-epoch ends.
func (ref *WorkerRef) Down() <-chan struct{} { return ref.down }

// Release returns the admission slot to the registry.
func (ref *WorkerRef) Release() {
	ref.once.Do(func() {
		ref.r.mu.Lock()
		if w := ref.r.workers[ref.URL]; w != nil && w.leases > 0 {
			w.leases--
		}
		ref.r.wakeLocked()
		ref.r.mu.Unlock()
	})
}

// Acquire blocks until an up worker is available (returning the
// least-loaded one, URL-ordered for determinism among ties) or ctx ends
// (returning nil). Callers bound ctx with their acquire timeout; a nil
// return means "no reachable worker within the budget" and the shard
// degrades to local execution.
//
// Quarantined workers are skipped while healthy capacity exists. When none
// does, a quarantined worker whose half-open window has opened may be
// granted exactly one probe lease (Probe true on the ref): the byzantine
// breaker's re-probe, fed by real work the fabric needed done anyway.
func (r *Registry) Acquire(ctx context.Context) *WorkerRef {
	for {
		r.mu.Lock()
		var best, probe *worker
		minWake := time.Duration(0) // soonest half-open window opening
		urls := make([]string, 0, len(r.workers))
		for url := range r.workers {
			urls = append(urls, url)
		}
		sort.Strings(urls)
		for _, url := range urls {
			w := r.workers[url]
			if !w.up || (r.MaxLeases > 0 && w.leases >= r.MaxLeases) {
				continue
			}
			if w.quarantined {
				if w.probing {
					continue // one probe at a time
				}
				if left := r.probeAfter() - time.Since(w.quarantinedAt); left > 0 {
					if minWake == 0 || left < minWake {
						minWake = left
					}
					continue
				}
				if probe == nil {
					probe = w
				}
				continue
			}
			if best == nil || w.leases < best.leases {
				best = w
			}
		}
		if best != nil {
			best.leases++
			ref := &WorkerRef{URL: best.url, down: best.down, r: r}
			r.mu.Unlock()
			return ref
		}
		if probe != nil {
			probe.probing = true
			probe.leases++
			ref := &WorkerRef{URL: probe.url, Probe: true, down: probe.down, r: r}
			r.mu.Unlock()
			if r.log != nil {
				r.log.Info("fabric byzantine half-open probe", "worker", ref.URL)
			}
			return ref
		}
		wait := r.wait
		r.mu.Unlock()
		if minWake > 0 {
			// A quarantine window opens before anything else might wake us:
			// re-scan then, even if no join/release/heartbeat fires.
			t := time.NewTimer(minWake)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil
			case <-wait:
				t.Stop()
			case <-t.C:
			}
			continue
		}
		select {
		case <-ctx.Done():
			return nil
		case <-wait:
		}
	}
}

// AcquireIdle non-blockingly grants a slot on an up, unquarantined worker
// with zero outstanding leases, excluding one URL — the straggler-stealing
// path. nil when every worker is busy, down, quarantined, or excluded: a
// steal must never queue behind the very lease it is trying to outrun.
func (r *Registry) AcquireIdle(exclude string) *WorkerRef {
	r.mu.Lock()
	defer r.mu.Unlock()
	urls := make([]string, 0, len(r.workers))
	for url := range r.workers {
		urls = append(urls, url)
	}
	sort.Strings(urls)
	for _, url := range urls {
		w := r.workers[url]
		if url == exclude || !w.up || w.quarantined || w.probing || w.leases != 0 {
			continue
		}
		w.leases++
		return &WorkerRef{URL: w.url, down: w.down, r: r}
	}
	return nil
}

// EWMAAlpha weights the registry's latency/throughput moving averages: each
// delivery moves the average a quarter of the way to its own value, so the
// estimate tracks a drifting worker within a few shards without whipsawing
// on one outlier. The first delivery seeds the average directly.
const EWMAAlpha = 0.25

// NoteTiming credits one verified delivery's worker-reported timing to the
// registry's per-worker accounting — the shard-size autotuner's input and
// the fleet snapshot's per-worker row. Deliveries without timing (an old
// worker binary) still count toward delivered/scenarios so lease-load
// attribution stays truthful.
func (r *Registry) NoteTiming(url string, scenarios, cacheHits int, t *api.Timing) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.workers[url]
	if w == nil {
		return
	}
	w.delivered++
	w.scenarios += scenarios
	w.cacheHits += cacheHits
	if t == nil {
		return
	}
	w.phaseQueue += t.QueueWaitSeconds
	w.phaseExec += t.ExecuteSeconds
	w.phasePub += t.PublishSeconds
	if w.delivered == 1 {
		w.ewmaShard = t.ExecuteSeconds
	} else {
		w.ewmaShard += EWMAAlpha * (t.ExecuteSeconds - w.ewmaShard)
	}
	if t.ExecuteSeconds > 0 {
		rate := float64(scenarios) / t.ExecuteSeconds
		if w.delivered == 1 {
			w.ewmaRate = rate
		} else {
			w.ewmaRate += EWMAAlpha * (rate - w.ewmaRate)
		}
	}
}

// FleetState renders the registry's half of the fleet snapshot, URL-sorted:
// every field a FleetWorker row carries except the scrape-derived ones
// (Ready, Stale), which the fleet plane fills in.
func (r *Registry) FleetState() []api.FleetWorker {
	r.mu.Lock()
	defer r.mu.Unlock()
	rows := make([]api.FleetWorker, 0, len(r.workers))
	for _, w := range r.workers {
		rows = append(rows, api.FleetWorker{
			URL:         w.url,
			Up:          w.up,
			Static:      w.static,
			Quarantined: w.quarantined,
			Leases:      w.leases,
			Delivered:   w.delivered,
			Scenarios:   w.scenarios,
			CacheHits:   w.cacheHits,
			PhaseTotals: api.PhaseSeconds{
				QueueWait: w.phaseQueue,
				Execute:   w.phaseExec,
				Publish:   w.phasePub,
			},
			EWMAShardSeconds:    w.ewmaShard,
			EWMAScenariosPerSec: w.ewmaRate,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].URL < rows[j].URL })
	return rows
}

// Snapshot renders the registry for GET /v1/fabric/workers, URL-sorted.
func (r *Registry) Snapshot() []api.WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	infos := make([]api.WorkerInfo, 0, len(r.workers))
	for _, w := range r.workers {
		info := api.WorkerInfo{URL: w.url, Up: w.up, Static: w.static,
			Leases: w.leases, Quarantined: w.quarantined}
		if !w.lastSeen.IsZero() {
			info.LastSeenUnix = w.lastSeen.Unix()
		}
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].URL < infos[j].URL })
	return infos
}

// defaultProbe is the production ProbeFunc: a lease-aware /readyz probe
// through the typed client, bounded so a black-holed worker cannot stall a
// heartbeat round past the next one. The probe rides the coordinator's
// transport — under a netchaos plan, heartbeats suffer the partition too,
// exactly as a real outage would play out.
func defaultProbe(needCache bool, timeout time.Duration, rt http.RoundTripper) ProbeFunc {
	return func(ctx context.Context, url string) error {
		ctx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		return faultdclient.New(url).WithTransport(rt).Ready(ctx, true, needCache)
	}
}
