package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"dmafault/internal/campaign"
	"dmafault/internal/faultd/api"
	"dmafault/internal/faultdclient"
)

// Result integrity verification: the fabric's trust boundary. A worker is a
// remote process returning bytes over an unreliable network — the same
// shape as the paper's peripheral returning DMA writes through an IOMMU —
// and the coordinator treats its deliveries accordingly: nothing merges
// into the campaign until it survives verification against the lease's own
// expected scenario set.
//
// Three layers, cheapest first:
//
//  1. Shape: the delivered document must be decodable JSON (the transport
//     layer already enforced this; a torn body never reaches verifyShard)
//     and carry exactly one result per shard position.
//  2. Identity: every result's (ID, Kind, Seed) must match the scenario the
//     coordinator leased at that position — the position-stamped identity
//     that ScenarioDigest is keyed on. This catches cross-shard mixups and
//     a worker answering with some *other* campaign's results.
//  3. Digest: the worker stamps api.HashResults over its results the moment
//     the job completes; the coordinator recomputes the digest from the
//     results it decoded. Canonical-JSON determinism makes the recompute
//     byte-faithful, so a single flipped bit anywhere in the results —
//     including fields no identity check looks at, like a window path or a
//     metrics string — surfaces as a mismatch.
//
// What this deliberately cannot catch: a byzantine worker that *executes*
// dishonestly and hashes its own lies consistently. Detecting that would
// require re-executing the shard (the digest would verify, the results
// would be wrong), which is the local-fallback path's job if an operator
// ever needs it. The layer's contract is exact: bytes merged into the
// campaign are the bytes an honest worker produced, or the shard re-leases.

// errIntegrity marks a delivery rejected by verification (or a lease killed
// by repeated torn documents). The lease loop counts it, strikes the
// worker, and re-leases; errors.Is is the classifier.
var errIntegrity = errors.New("fabric: integrity rejected")

// tornPollBudget is how many consecutive torn job documents one lease
// tolerates before giving up. Each torn body is counted and logged; the
// budget keeps a lease from spinning forever against a hopeless transport
// while letting it ride out a burst of chaos.
const tornPollBudget = 8

// isTornBody reports whether a client error is a torn response body — a
// document the transport truncated or corrupted past JSON validity —
// rather than a transport or status failure.
func isTornBody(err error) bool {
	var syn *json.SyntaxError
	var typ *json.UnmarshalTypeError
	return errors.As(err, &syn) || errors.As(err, &typ) || errors.Is(err, io.ErrUnexpectedEOF)
}

// pollTerminal polls one leased job to a terminal status, tolerating torn
// documents: each is counted as an integrity rejection and retried on the
// normal poll cadence instead of failing the lease outright — a truncated
// poll is the network's fault, and the next poll usually reads clean.
func (c *Coordinator) pollTerminal(ctx context.Context, cl *faultdclient.Client, id int) (*api.Job, error) {
	torn := 0
	for {
		job, err := cl.Get(ctx, id)
		switch {
		case err == nil:
			torn = 0
			if job.Status.Terminal() {
				return job, nil
			}
		case isTornBody(err) && ctx.Err() == nil:
			torn++
			c.m.IntegrityRejected.Inc()
			c.log.Warn("fabric torn job document", "job", id, "consecutive", torn, "err", err)
			if torn >= tornPollBudget {
				return nil, fmt.Errorf("%w: %d consecutive torn documents for job %d: %v",
					errIntegrity, torn, id, err)
			}
		default:
			return nil, err
		}
		if err := sleepCtx(ctx, faultdclient.DefaultPollInterval); err != nil {
			return nil, err
		}
	}
}

// verifyShard checks one delivered terminal job against the lease's
// expected scenario slice. Any failure is wrapped in errIntegrity.
func (c *Coordinator) verifyShard(sh shard, jobID int, job *api.Job) error {
	if job.Summary == nil {
		return fmt.Errorf("%w: job %d terminal without a summary", errIntegrity, jobID)
	}
	res := job.Summary.Results
	if got, want := len(res), sh.End-sh.Start; got != want {
		return fmt.Errorf("%w: job %d returned %d results, shard %d holds %d",
			errIntegrity, jobID, got, sh.Idx, want)
	}
	c.mu.Lock()
	specs := c.scs[sh.Start:sh.End]
	c.mu.Unlock()
	for i, r := range res {
		if r == nil {
			return fmt.Errorf("%w: job %d result %d is null", errIntegrity, jobID, i)
		}
		sc := specs[i]
		if r.ID != sc.ID || r.Kind != sc.Kind || r.Seed != sc.Seed {
			return fmt.Errorf("%w: job %d result %d is %s/%s/%d, lease expected %s/%s/%d",
				errIntegrity, jobID, i, r.ID, r.Kind, r.Seed, sc.ID, sc.Kind, sc.Seed)
		}
	}
	if job.ResultsHash != "" {
		if got := api.HashResults(res); got != job.ResultsHash {
			return fmt.Errorf("%w: job %d results digest %.12s, worker stamped %.12s",
				errIntegrity, jobID, got, job.ResultsHash)
		}
	}
	return nil
}

// expectedDigests renders the lease's scenario digests — the identity the
// verification layers above are anchored to. Exposed for logging and tests;
// the hot path compares (ID, Kind, Seed) directly rather than re-hashing
// specs per delivery.
func (c *Coordinator) expectedDigests(sh shard) []campaign.Digest {
	c.mu.Lock()
	specs := c.scs[sh.Start:sh.End]
	c.mu.Unlock()
	out := make([]campaign.Digest, len(specs))
	for i, sc := range specs {
		out[i] = campaign.ScenarioDigest(sc)
	}
	return out
}
