package campaign

import (
	"bytes"
	"testing"

	"dmafault/internal/obs"
)

// TestEngineObsDoesNotPerturbDeterminism is the tentpole's hard constraint:
// attaching a tracer changes nothing in the deterministic artifacts. The
// summary JSON and the merged metric exposition are byte-identical with obs
// on and obs off, at worker counts 1, 4, and 16.
func TestEngineObsDoesNotPerturbDeterminism(t *testing.T) {
	set := testSet()
	var wantJSON, wantText []byte
	for _, workers := range []int{1, 4, 16} {
		for _, traced := range []bool{false, true} {
			eng := Engine{Workers: workers}
			var col obs.Collector
			if traced {
				eng.Obs = obs.NewTracer(col.Sink(), obs.NewSpanMetrics().Sink())
			}
			sum, err := eng.Run(set)
			if err != nil {
				t.Fatalf("workers=%d traced=%v: %v", workers, traced, err)
			}
			js, err := sum.JSON()
			if err != nil {
				t.Fatal(err)
			}
			text := sum.MetricsText()
			if wantJSON == nil {
				wantJSON, wantText = js, text
				continue
			}
			if !bytes.Equal(js, wantJSON) {
				t.Errorf("workers=%d traced=%v: summary JSON differs from baseline", workers, traced)
			}
			if !bytes.Equal(text, wantText) {
				t.Errorf("workers=%d traced=%v: metric exposition differs from baseline", workers, traced)
			}
			if traced && len(col.Spans()) == 0 {
				t.Errorf("workers=%d: tracer attached but no spans emitted", workers)
			}
		}
	}
}

// TestEngineSpanHierarchy pins the span shape: one campaign root, one
// scenario span per executed scenario parented under it, attempt spans under
// each scenario, and retry-backoff spans when the engine actually backs off.
func TestEngineSpanHierarchy(t *testing.T) {
	// alloc-fail@1 fires at the same ordinal on every attempt, so this
	// scenario deterministically exhausts all DefaultMaxRetries retries.
	set := []Scenario{
		{Kind: KindWindowLadder, Seed: 7, Driver: "correct", Mode: "strict"},
		{Kind: KindWindowLadder, Seed: 7, FaultSpec: "alloc-fail@1"},
	}
	var col obs.Collector
	sum, err := Engine{Workers: 2, Obs: obs.NewTracer(col.Sink())}.Run(set)
	if err != nil {
		t.Fatal(err)
	}
	spans := col.Spans()
	byName := map[string][]obs.Span{}
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	if len(byName["campaign"]) != 1 {
		t.Fatalf("campaign spans = %d, want 1", len(byName["campaign"]))
	}
	root := byName["campaign"][0]
	if root.Attrs["scenarios"] != "2" || root.Outcome() != "ok" {
		t.Errorf("root span = %+v", root)
	}
	if len(byName["scenario"]) != 2 {
		t.Fatalf("scenario spans = %d, want 2", len(byName["scenario"]))
	}
	scenarioID := map[uint64]obs.Span{}
	for _, s := range byName["scenario"] {
		if s.Parent != root.ID {
			t.Errorf("scenario span %+v not parented under campaign", s)
		}
		if s.Attrs["kind"] != string(KindWindowLadder) {
			t.Errorf("scenario span missing kind attr: %+v", s)
		}
		scenarioID[s.ID] = s
	}
	// 1 attempt for the clean scenario + 1+DefaultMaxRetries for the
	// transient one, each parented under its scenario span.
	if got, want := len(byName["attempt"]), 2+DefaultMaxRetries; got != want {
		t.Fatalf("attempt spans = %d, want %d", got, want)
	}
	for _, s := range byName["attempt"] {
		if _, ok := scenarioID[s.Parent]; !ok {
			t.Errorf("attempt span %+v not parented under a scenario", s)
		}
	}
	if got := len(byName["retry-backoff"]); got != DefaultMaxRetries {
		t.Errorf("retry-backoff spans = %d, want %d", got, DefaultMaxRetries)
	}
	// The span outcomes agree with the deterministic results.
	if sum.Results[1].Retries != DefaultMaxRetries {
		t.Fatalf("fixture drifted: transient scenario retried %d times", sum.Results[1].Retries)
	}
	for _, s := range byName["scenario"] {
		want := "ok"
		if s.Attrs["index"] == "1" {
			want = "error"
		}
		if s.Outcome() != want {
			t.Errorf("scenario %s outcome = %q, want %q", s.Attrs["index"], s.Outcome(), want)
		}
	}
}

// TestEngineGateSpans pins the gated path: a quarantined scenario still gets
// a scenario span, labelled gated with the gate result's outcome.
func TestEngineGateSpans(t *testing.T) {
	set := []Scenario{{Kind: KindWindowLadder, Seed: 7}}
	var col obs.Collector
	eng := Engine{
		Workers: 1,
		Obs:     obs.NewTracer(col.Sink()),
		Gate: func(i int, s *Scenario) *Result {
			r := s.newResult()
			r.Outcome = "quarantined"
			return r
		},
	}
	if _, err := eng.Run(set); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, s := range col.Spans() {
		if s.Name == "scenario" {
			found = true
			if s.Attrs["gated"] != "true" || s.Outcome() != "quarantined" {
				t.Errorf("gated scenario span = %+v", s)
			}
		}
		if s.Name == "attempt" {
			t.Errorf("gated scenario must not produce attempt spans: %+v", s)
		}
	}
	if !found {
		t.Error("no scenario span for the gated scenario")
	}
}
