package campaign

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmafault/internal/attacks"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSet is the tiny fixed campaign whose wire format the golden files
// pin. Keep it small: the point is the encoding, not the statistics.
func goldenSet() []Scenario {
	return []Scenario{
		{Kind: KindWindowLadder, Seed: 7, Driver: "correct", Mode: "strict"},
		{Kind: KindPoisonedTX, Seed: 11},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run: go test ./internal/campaign/ -run Golden -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden; diff the file or -update if intentional.\n--- got ---\n%.2000s", name, got)
	}
}

// TestGoldenSummaryWireFormat pins the campaign summary's JSON encoding and
// the merged metric dump's Prometheus text exposition. Any field rename,
// reorder, or value drift shows up as a golden diff.
func TestGoldenSummaryWireFormat(t *testing.T) {
	sum, err := Engine{Workers: 2}.Run(goldenSet())
	if err != nil {
		t.Fatal(err)
	}
	js, err := sum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "summary.golden.json", append(js, '\n'))
	checkGolden(t, "metrics.golden.prom", sum.MetricsText())
}

// TestGoldenAttackResultJSON pins attacks.Result's snake_case field names
// with a hand-built value, so a tag typo cannot slip through as "both sides
// drifted together".
func TestGoldenAttackResultJSON(t *testing.T) {
	r := attacks.Result{
		Name:         "poisoned-tx",
		Steps:        []string{"map", "poison", "release"},
		Success:      true,
		Escalations:  2,
		DroppedSteps: 3,
		Detail:       map[string]string{"window_path": "stale-iotlb"},
	}
	got, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	const want = `{
  "name": "poisoned-tx",
  "steps": [
    "map",
    "poison",
    "release"
  ],
  "success": true,
  "escalations": 2,
  "dropped_steps": 3,
  "detail": {
    "window_path": "stale-iotlb"
  }
}`
	if string(got) != want {
		t.Errorf("attacks.Result wire format drifted:\n%s\n--- want ---\n%s", got, want)
	}
}

// TestMetricsDumpIdenticalAcrossWorkers is the tentpole acceptance
// criterion: the merged campaign metric dump is byte-identical at worker
// counts 1, 4, and 16, in both encodings.
func TestMetricsDumpIdenticalAcrossWorkers(t *testing.T) {
	set := testSet()
	var wantText, wantJSON []byte
	for _, workers := range []int{1, 4, 16} {
		sum, err := Engine{Workers: workers}.Run(set)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sum.Metrics == nil {
			t.Fatal("summary carries no metric dump")
		}
		text := sum.MetricsText()
		js, err := sum.Metrics.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if wantText == nil {
			wantText, wantJSON = text, js
			continue
		}
		if !bytes.Equal(text, wantText) {
			t.Errorf("workers=%d: metric text differs from workers=1", workers)
		}
		if !bytes.Equal(js, wantJSON) {
			t.Errorf("workers=%d: metric JSON differs from workers=1", workers)
		}
	}
	// The dump must carry the campaign roll-up and the machine families the
	// scenarios booted — including the deferred flush-queue counters the
	// EXPERIMENTS.md walkthrough reads.
	text := string(wantText)
	for _, fam := range []string{
		"campaign_scenarios_total 8",
		"campaign_virtual_nanos_bucket",
		"iommu_strict_invalidations_total",
		"iommu_maps_total",
		"mem_page_allocs_total",
		"netstack_rx_packets_total",
		"dkasan_events_total",
		"trace_events_retained",
	} {
		if !strings.Contains(text, fam) {
			t.Errorf("merged dump missing %q", fam)
		}
	}
}

// TestSkipMetricsAblation pins the benchmark's control arm: under
// Engine.SkipMetrics the results carry no snapshots and the summary dump
// reduces to the campaign_* roll-up.
func TestSkipMetricsAblation(t *testing.T) {
	sum, err := Engine{Workers: 2, SkipMetrics: true}.Run(goldenSet())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sum.Results {
		if r.Snapshot != nil {
			t.Errorf("%s: snapshot captured despite SkipMetrics", r.ID)
		}
	}
	if sum.Metrics == nil || sum.Metrics.Total("campaign_scenarios_total") != 2 {
		t.Error("campaign roll-up families missing under SkipMetrics")
	}
	if sum.Metrics.Total("iommu_maps_total") != 0 {
		t.Error("machine families leaked into a SkipMetrics dump")
	}
}
