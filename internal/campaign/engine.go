package campaign

import (
	"fmt"

	"dmafault/internal/par"
)

// Engine shards scenarios across a worker pool. Each worker boots fully
// isolated core.Systems, so shards are embarrassingly parallel; results are
// written into index-addressed slots (par's contract) and aggregated in
// input order, making the summary byte-identical at any worker count.
type Engine struct {
	// Workers is the pool size (<= 0: one per schedulable CPU).
	Workers int
	// OnResult, if set, observes each finished scenario (called from worker
	// goroutines; index identifies the scenario). Used for progress output.
	OnResult func(index int, r *Result)
	// SkipMetrics forces skip_metrics on every scenario: machines boot
	// without a registry and results carry no snapshot. This is the ablation
	// arm of the metrics-overhead benchmark.
	SkipMetrics bool
}

// Run normalizes, validates, executes, and aggregates the scenario set.
// Scenario execution failures land in the per-result Err field and the
// summary's error tally; only an invalid spec aborts the run.
func (e Engine) Run(scenarios []Scenario) (*Summary, error) {
	scs := make([]Scenario, len(scenarios))
	copy(scs, scenarios)
	for i := range scs {
		if e.SkipMetrics {
			scs[i].SkipMetrics = true
		}
		scs[i].Normalize(i)
		if err := scs[i].Validate(); err != nil {
			return nil, fmt.Errorf("scenario %d (%s): %w", i, scs[i].ID, err)
		}
	}
	results := make([]*Result, len(scs))
	err := par.ForEach(len(scs), e.Workers, func(i int) error {
		r, err := RunScenario(scs[i])
		if err != nil {
			return err
		}
		results[i] = r
		if e.OnResult != nil {
			e.OnResult(i, r)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return Aggregate(results), nil
}
