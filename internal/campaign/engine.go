package campaign

import (
	"context"
	"fmt"
	"regexp"
	"runtime/debug"
	"time"

	"dmafault/internal/obs"
	"dmafault/internal/par"
)

// Retry policy defaults. Only failures wrapping faultinject.ErrTransient
// (injected allocator pressure and friends) are retried; real scenario
// errors fail fast.
const (
	// DefaultMaxRetries bounds extra attempts per transient-failing scenario.
	DefaultMaxRetries = 3
	// DefaultRetryBackoff is the wall-clock delay before the first retry;
	// it doubles per attempt up to MaxRetryBackoff.
	DefaultRetryBackoff = 2 * time.Millisecond
	// MaxRetryBackoff caps the exponential backoff.
	MaxRetryBackoff = 250 * time.Millisecond
)

// Engine shards scenarios across a worker pool. Each worker boots fully
// isolated core.Systems, so shards are embarrassingly parallel; results are
// written into index-addressed slots (par's contract) and aggregated in
// input order, making the summary byte-identical at any worker count.
//
// The engine hardens execution per scenario: a panic becomes a structured
// Result (Outcome "panic" with a sanitized stack) instead of a process
// crash, a TimeoutMS deadline becomes Outcome "timeout", and failures
// wrapping faultinject.ErrTransient are retried with capped exponential
// backoff. None of this perturbs determinism — outcome classification and
// retry decisions derive from the scenario's own seeded execution.
type Engine struct {
	// Workers is the pool size (<= 0: one per schedulable CPU).
	Workers int
	// OnResult, if set, observes each finished scenario (called from worker
	// goroutines; index identifies the scenario). Used for progress output.
	OnResult func(index int, r *Result)
	// OnClaim, if set, observes each scenario the moment a worker claims it
	// (called from worker goroutines, before execution; restored indexes are
	// never claimed). Together with OnResult this is the engine's progress
	// heartbeat: a supervisor that sees neither callback for longer than its
	// stall budget knows the job has wedged, not merely slowed.
	OnClaim func(index int)
	// Gate, if set, may short-circuit a scenario before it executes by
	// returning a non-nil Result, which is journaled, counted, and
	// aggregated exactly like an executed one (a nil return runs the
	// scenario normally). The scenario passed is the normalized copy. The
	// service's quarantine circuit breaker is a Gate: tripped scenarios
	// yield a recorded Outcome "quarantined" result instead of running.
	// Gates must be deterministic per (index, scenario) for the duration of
	// one run — the engine may invoke them from any worker.
	Gate func(index int, s *Scenario) *Result
	// SkipMetrics forces skip_metrics on every scenario: machines boot
	// without a registry and results carry no snapshot. This is the ablation
	// arm of the metrics-overhead benchmark.
	SkipMetrics bool
	// MaxRetries bounds retries of transient injected failures per scenario
	// (0 means DefaultMaxRetries; negative disables retry).
	MaxRetries int
	// RetryBackoff is the initial retry delay (0 means DefaultRetryBackoff).
	RetryBackoff time.Duration
	// Cache, if set, is the content-addressed result store consulted before
	// each scenario executes: a hit replays the recorded result (re-stamped
	// with the position-derived ID, journaled, counted, and aggregated
	// exactly like an executed one — the summary is byte-identical at any
	// worker count), a miss executes normally and appends the result if
	// Cacheable. The cache is checked before Gate: a hit means nothing
	// executes, so there is nothing for a circuit breaker to protect.
	Cache Store
	// OnCacheHit, if set, observes each scenario served from Cache (called
	// from worker goroutines, before OnResult fires for the same index).
	// Hit/miss tallies live here and in the Store — never in the Summary,
	// which must stay byte-identical between cached and uncached runs.
	OnCacheHit func(index int)
	// Journal, if set, records each completed scenario as a durable JSONL
	// line, enabling crash/kill resume (see OpenJournal). Cancelled
	// scenarios are never journaled — on resume they re-execute.
	Journal *Journal
	// Completed seeds results for already-finished scenario indexes (from
	// LoadJournal): those indexes are not re-executed, but their results
	// still aggregate, so a resumed campaign's summary is byte-identical to
	// an uninterrupted run's.
	Completed map[int]*Result
	// Obs, if set, mints wall-clock spans at campaign → scenario → attempt
	// granularity (plus retry-backoff waits) and fans them out to the
	// tracer's sinks. Spans are operator data on a separate plane: they never
	// enter the Summary, the journal, or any metric snapshot aggregated into
	// deterministic artifacts (TestEngineObsDoesNotPerturbDeterminism pins
	// this). A nil tracer records nothing at zero cost.
	Obs *obs.Tracer
}

// Run executes the scenario set without external cancellation.
func (e Engine) Run(scenarios []Scenario) (*Summary, error) {
	return e.RunCtx(context.Background(), scenarios)
}

// RunCtx normalizes, validates, executes, and aggregates the scenario set.
// Scenario execution failures land in the per-result Err field and the
// summary's error tally; only an invalid spec or ctx cancellation aborts
// the run (already-claimed scenarios finish and are journaled first).
func (e Engine) RunCtx(ctx context.Context, scenarios []Scenario) (*Summary, error) {
	scs := make([]Scenario, len(scenarios))
	copy(scs, scenarios)
	for i := range scs {
		if e.SkipMetrics {
			scs[i].SkipMetrics = true
		}
		scs[i].Normalize(i)
		if err := scs[i].Validate(); err != nil {
			return nil, fmt.Errorf("scenario %d (%s): %w", i, scs[i].ID, err)
		}
	}
	results := make([]*Result, len(scs))
	for i, r := range e.Completed {
		if i >= 0 && i < len(results) {
			results[i] = r
		}
	}
	root := e.Obs.Start("campaign",
		obs.Af("scenarios", "%d", len(scs)),
		obs.Af("restored", "%d", len(e.Completed)))
	err := par.ForEachCtx(ctx, len(scs), e.Workers, func(ctx context.Context, i int) error {
		if results[i] != nil {
			return nil // restored from the journal
		}
		if e.OnClaim != nil {
			e.OnClaim(i)
		}
		sp := root.Child("scenario",
			obs.A("id", scs[i].ID),
			obs.A("kind", string(scs[i].Kind)),
			obs.Af("index", "%d", i))
		var r *Result
		var err error
		var digest Digest
		if e.Cache != nil {
			digest = ScenarioDigest(scs[i])
			if hit, ok := e.Cache.Get(digest); ok {
				r = cacheReplay(hit, &scs[i])
				sp.SetAttr("cached", "true")
				if e.OnCacheHit != nil {
					e.OnCacheHit(i)
				}
			}
		}
		if r == nil && e.Gate != nil {
			r = e.Gate(i, &scs[i])
			if r != nil {
				sp.SetAttr("gated", "true")
			}
		}
		if r == nil {
			r, err = e.execute(ctx, scs[i], sp)
			if err == nil && r != nil && e.Cache != nil && Cacheable(r) {
				// A failing store is a real error (disk full, torn file),
				// surfaced like a journal failure rather than silently
				// degrading into a cache that loses records.
				if perr := e.Cache.Put(digest, cachePutCopy(r)); perr != nil {
					err = fmt.Errorf("resultstore: %w", perr)
				}
			}
		}
		if err != nil {
			sp.End(obs.A("outcome", "error"))
			return err
		}
		if r == nil {
			// Cancelled mid-attempt: leave the slot empty and unjournaled
			// so a resume re-executes the scenario from scratch.
			sp.End(obs.A("outcome", "cancelled"))
			return nil
		}
		sp.End(obs.A("outcome", ResultOutcome(r)))
		if e.Journal != nil {
			if err := e.Journal.Record(i, r); err != nil {
				return fmt.Errorf("journal: %w", err)
			}
		}
		results[i] = r
		if e.OnResult != nil {
			e.OnResult(i, r)
		}
		return nil
	})
	if err != nil {
		root.End(obs.A("outcome", "error"))
		return nil, err
	}
	for _, r := range results {
		if r != nil {
			continue
		}
		// Cancellation can land after every scenario is claimed, in which
		// case ForEachCtx reports success with empty slots left behind; a
		// summary over them would misreport the campaign as complete.
		if err = ctx.Err(); err == nil {
			err = context.Canceled
		}
		root.End(obs.A("outcome", "error"))
		return nil, err
	}
	root.End()
	return Aggregate(results), nil
}

// ResultOutcome labels a result with the result's classification: the
// explicit Outcome (panic, timeout, quarantined, ...), else error/miss/ok.
func ResultOutcome(r *Result) string {
	switch {
	case r.Outcome != "":
		return r.Outcome
	case r.Err != "":
		return "error"
	case !r.Success:
		return "miss"
	default:
		return "ok"
	}
}

// execute runs one scenario through the guarded attempt loop, retrying
// transient injected failures with capped exponential backoff. A nil result
// (no error) means the context fired mid-attempt. Each attempt and each
// backoff wait gets a wall-clock span under the scenario span sp (which may
// be nil).
func (e Engine) execute(ctx context.Context, s Scenario, sp *obs.ActiveSpan) (*Result, error) {
	maxRetries := e.MaxRetries
	if maxRetries == 0 {
		maxRetries = DefaultMaxRetries
	}
	if maxRetries < 0 {
		maxRetries = 0
	}
	backoff := e.RetryBackoff
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	var r *Result
	for attempt := 0; ; attempt++ {
		asp := sp.Child("attempt", obs.Af("attempt", "%d", attempt))
		nr, err := e.guarded(ctx, s, attempt)
		switch {
		case err != nil:
			asp.End(obs.A("outcome", "error"))
		case nr == nil:
			asp.End(obs.A("outcome", "cancelled"))
		default:
			asp.End(obs.A("outcome", ResultOutcome(nr)))
		}
		if err != nil || nr == nil {
			return nil, err
		}
		nr.Retries = attempt
		r = nr
		if !(r.transient && attempt < maxRetries) {
			return r, nil
		}
		bsp := sp.Child("retry-backoff", obs.Af("attempt", "%d", attempt))
		select {
		case <-ctx.Done():
			// The last attempt's result is real and completed: keep it.
			bsp.End(obs.A("outcome", "cancelled"))
			return r, nil
		case <-time.After(backoff):
			bsp.End()
		}
		if backoff *= 2; backoff > MaxRetryBackoff {
			backoff = MaxRetryBackoff
		}
	}
}

// guarded runs one attempt in its own goroutine so a panic is contained and
// a TimeoutMS deadline can abandon it. A panicking attempt yields a Result
// with Outcome "panic" and a sanitized stack; an expired deadline yields
// Outcome "timeout" (the abandoned goroutine drains into a buffered
// channel). A nil result (no error) means ctx fired first.
func (e Engine) guarded(ctx context.Context, s Scenario, attempt int) (*Result, error) {
	type outcome struct {
		r   *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				s.Normalize(0)
				r := s.newResult()
				r.Outcome = OutcomePanic
				r.Err = fmt.Sprintf("panic: %v", p)
				r.Stack = sanitizeStack(debug.Stack())
				done <- outcome{r: r}
			}
		}()
		r, err := runAttempt(ctx, s, attempt)
		done <- outcome{r: r, err: err}
	}()
	var timeout <-chan time.Time
	if s.TimeoutMS > 0 {
		t := time.NewTimer(time.Duration(s.TimeoutMS) * time.Millisecond)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case o := <-done:
		return o.r, o.err
	case <-timeout:
		s.Normalize(0)
		r := s.newResult()
		r.Outcome = OutcomeTimeout
		r.Err = fmt.Sprintf("campaign: scenario exceeded %dms deadline", s.TimeoutMS)
		return r, nil
	case <-ctx.Done():
		return nil, nil
	}
}

// Stack traces vary by address-space layout and goroutine numbering, never
// by scenario content; normalizing both keeps panic results byte-identical
// across runs and worker counts.
var (
	stackGoroutineRE   = regexp.MustCompile(`(?m)^goroutine \d+ .*$`)
	stackInGoroutineRE = regexp.MustCompile(`in goroutine \d+`)
	stackHexRE         = regexp.MustCompile(`0x[0-9a-f]+`)
)

func sanitizeStack(stack []byte) string {
	s := stackGoroutineRE.ReplaceAllString(string(stack), "goroutine N [running]:")
	s = stackInGoroutineRE.ReplaceAllString(s, "in goroutine N")
	return stackHexRE.ReplaceAllString(s, "0x?")
}
