package campaign

import "testing"

func TestGridCrossProduct(t *testing.T) {
	set := Grid(Scenario{Kind: KindWindowLadder, Seed: 5}, GridSpec{
		Drivers:  []string{"i40e", "correct"},
		Modes:    []string{"deferred", "strict"},
		Replicas: 3,
	})
	if len(set) != 2*2*3 {
		t.Fatalf("grid size %d, want 12", len(set))
	}
	seeds := map[int64]bool{}
	for _, s := range set {
		if seeds[s.Seed] {
			t.Fatalf("duplicate seed %d in grid", s.Seed)
		}
		seeds[s.Seed] = true
	}
}

func TestGridKeepsBaseForNilAxes(t *testing.T) {
	set := Grid(Scenario{Kind: KindBootStudy, Seed: 5, Kernel: "4.15", Queues: 2}, GridSpec{
		Jitters: []int{64, 128},
	})
	if len(set) != 2 {
		t.Fatalf("grid size %d, want 2", len(set))
	}
	for _, s := range set {
		if s.Kernel != "4.15" || s.Queues != 2 {
			t.Errorf("base values not preserved: %+v", s)
		}
	}
}

func TestMutatorDeterminism(t *testing.T) {
	a := NewMutator(Scenario{Seed: 123}, 7).Generate(50)
	b := NewMutator(Scenario{Seed: 123}, 7).Generate(50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed mutators diverged at %d: %+v != %+v", i, a[i], b[i])
		}
	}
	c := NewMutator(Scenario{Seed: 123}, 8).Generate(50)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different-seed mutators produced identical sets")
	}
}

func TestMutatorRespectsKindFilter(t *testing.T) {
	m := NewMutator(Scenario{Seed: 9}, 9)
	m.Kinds = []Kind{KindWindowLadder}
	for _, s := range m.Generate(20) {
		if s.Kind != KindWindowLadder {
			t.Fatalf("kind filter violated: %s", s.Kind)
		}
	}
}

func TestMutatedScenariosAreValid(t *testing.T) {
	for i, s := range NewMutator(Scenario{Seed: 77}, 77).Generate(200) {
		s.Normalize(i)
		if err := s.Validate(); err != nil {
			t.Fatalf("mutation %d invalid: %v (%+v)", i, err, s)
		}
	}
}

func TestPresetsAreDeterministicAndSized(t *testing.T) {
	for name, gen := range Presets {
		a, b := gen(16, 3), gen(16, 3)
		if len(a) == 0 {
			t.Errorf("preset %s generated nothing", name)
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("preset %s not deterministic at %d", name, i)
				break
			}
		}
	}
	if got := len(MixedPreset(200, 1)); got != 200 {
		t.Errorf("mixed preset: %d scenarios, want 200", got)
	}
}
