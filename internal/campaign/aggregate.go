package campaign

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"dmafault/internal/metrics"
)

// KindSummary is the per-kind roll-up.
type KindSummary struct {
	Runs        int     `json:"runs"`
	Successes   int     `json:"successes"`
	SuccessRate float64 `json:"success_rate"`
	Escalations int     `json:"escalations"`
	Errors      int     `json:"errors"`
}

// Summary is the merged outcome of a campaign. Every map is JSON-encoded
// with sorted keys (encoding/json's map behavior) and every float is
// derived from integer counts, so equal campaigns encode byte-identically
// regardless of worker count or scheduling.
type Summary struct {
	Scenarios int `json:"scenarios"`
	Successes int `json:"successes"`
	Errors    int `json:"errors"`
	// Panics counts scenarios the engine isolated after a panic; Timeouts
	// counts per-scenario deadline expiries; Retries totals the extra
	// attempts spent on transient injected faults. All are omitted from the
	// encoding when zero, so clean campaigns encode as before.
	Panics   int `json:"panics,omitempty"`
	Timeouts int `json:"timeouts,omitempty"`
	Retries  int `json:"retries,omitempty"`
	// Quarantined counts scenarios a Gate short-circuited (circuit breaker);
	// omitted when zero so ungated campaigns encode as before.
	Quarantined int `json:"quarantined,omitempty"`
	// Escalations is the total privilege escalations across all scenarios.
	Escalations int `json:"escalations"`
	// ByKind breaks the campaign down per scenario kind.
	ByKind map[Kind]*KindSummary `json:"by_kind"`
	// WindowPaths is the Fig. 7 path histogram over every injection the
	// campaign performed (including per-attempt paths inside ring floods).
	WindowPaths map[string]int `json:"window_paths,omitempty"`
	// DKASAN tallies sanitizer reports by class across dkasan scenarios.
	DKASAN map[string]uint64 `json:"dkasan,omitempty"`
	// TraceEvents/TraceDropped aggregate the forensic rings' retention.
	TraceEvents  int    `json:"trace_events"`
	TraceDropped uint64 `json:"trace_dropped"`
	// StepsDropped counts attack-log lines shed by the Result step cap.
	StepsDropped uint64 `json:"steps_dropped"`
	// VirtualNanos totals the virtual time simulated by metric-capturing
	// scenarios.
	VirtualNanos uint64 `json:"virtual_nanos"`
	// Metrics is the campaign-level metric dump: the campaign_* roll-up
	// families plus every per-scenario machine snapshot merged in input
	// order, so it is byte-identical at any worker count.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
	// Results lists every scenario outcome in campaign (input) order.
	Results []*Result `json:"results"`
}

// VirtualNanosBuckets are the campaign_virtual_nanos histogram bounds, in
// virtual nanoseconds (1ms .. 10s of simulated time per scenario).
var VirtualNanosBuckets = []float64{1e6, 1e7, 1e8, 1e9, 1e10}

// dkasanClasses are the metric keys runDKASAN emits, mirrored into the
// summary tally.
var dkasanClasses = []string{"alloc_after_map", "map_after_alloc", "access_after_map", "multiple_map"}

// Aggregate merges per-scenario results, in order, into one summary.
func Aggregate(results []*Result) *Summary {
	s := &Summary{
		Scenarios:   len(results),
		ByKind:      map[Kind]*KindSummary{},
		WindowPaths: map[string]int{},
		DKASAN:      map[string]uint64{},
		Results:     results,
	}
	for _, r := range results {
		ks := s.ByKind[r.Kind]
		if ks == nil {
			ks = &KindSummary{}
			s.ByKind[r.Kind] = ks
		}
		ks.Runs++
		if r.Err != "" {
			ks.Errors++
			s.Errors++
		}
		switch r.Outcome {
		case OutcomePanic:
			s.Panics++
		case OutcomeTimeout:
			s.Timeouts++
		case OutcomeQuarantined:
			s.Quarantined++
		}
		s.Retries += r.Retries
		if r.Success {
			ks.Successes++
			s.Successes++
		}
		ks.Escalations += r.Escalations
		s.Escalations += r.Escalations
		s.TraceEvents += r.TraceEvents
		s.TraceDropped += r.TraceDropped
		s.StepsDropped += r.StepsDropped
		if r.WindowPath != "" {
			s.WindowPaths[r.WindowPath]++
		}
		for k, v := range r.Metrics {
			// Ring-flood scenarios carry per-attempt path counts as
			// "path[<name>]" metrics; fold them into the histogram.
			if strings.HasPrefix(k, "path[") && strings.HasSuffix(k, "]") {
				var n int
				fmt.Sscanf(v, "%d", &n)
				s.WindowPaths[k[len("path["):len(k)-1]] += n
			}
		}
		if r.Kind == KindDKASAN {
			for _, c := range dkasanClasses {
				var n uint64
				fmt.Sscanf(r.Metrics[c], "%d", &n)
				s.DKASAN[c] += n
			}
		}
	}
	for _, ks := range s.ByKind {
		if ks.Runs > 0 {
			ks.SuccessRate = float64(ks.Successes) / float64(ks.Runs)
		}
	}
	s.buildMetrics(results)
	return s
}

// buildMetrics assembles the campaign-level snapshot: the campaign_* roll-up
// families gathered through a registry, then every scenario's machine
// snapshot merged in input order.
func (s *Summary) buildMetrics(results []*Result) {
	scenarios := metrics.NewCounter("campaign_scenarios_total", "Scenarios executed by the campaign.")
	successes := metrics.NewCounter("campaign_successes_total", "Scenarios meeting their success criterion.")
	errors := metrics.NewCounter("campaign_errors_total", "Scenarios that failed with an execution error.")
	escalations := metrics.NewCounter("campaign_escalations_total", "Privilege escalations across all scenarios.")
	vtime := metrics.NewHistogram("campaign_virtual_nanos",
		"Virtual time simulated per metric-capturing scenario.", VirtualNanosBuckets)
	scenarios.Add(uint64(s.Scenarios))
	successes.Add(uint64(s.Successes))
	errors.Add(uint64(s.Errors))
	escalations.Add(uint64(s.Escalations))
	for _, r := range results {
		if r.Snapshot != nil {
			vtime.Observe(float64(r.VirtualNanos))
		}
		s.VirtualNanos += r.VirtualNanos
	}
	reg := metrics.NewRegistry()
	reg.MustRegister(scenarios, successes, errors, escalations, vtime)
	snap, err := reg.Gather()
	if err != nil {
		// Static instruments cannot violate the Source contract.
		panic("campaign: " + err.Error())
	}
	for _, r := range results {
		if err := snap.Merge(r.Snapshot); err != nil {
			s.Errors++
			r.Err = "metrics merge: " + err.Error()
		}
	}
	s.Metrics = snap
}

// MetricsText renders the campaign-level snapshot in the Prometheus text
// exposition format (empty when the summary carries no metrics).
func (s *Summary) MetricsText() []byte {
	if s.Metrics == nil {
		return nil
	}
	return s.Metrics.Text()
}

// JSON encodes the summary deterministically (indented, sorted map keys).
func (s *Summary) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Render prints the human-readable report.
func (s *Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: %d scenarios, %d successes, %d errors, %d escalations\n",
		s.Scenarios, s.Successes, s.Errors, s.Escalations)
	if s.Panics > 0 || s.Timeouts > 0 || s.Retries > 0 {
		fmt.Fprintf(&b, "hardening: %d panics isolated, %d deadline timeouts, %d transient-fault retries\n",
			s.Panics, s.Timeouts, s.Retries)
	}
	if s.Quarantined > 0 {
		fmt.Fprintf(&b, "supervision: %d scenarios quarantined by circuit breaker\n", s.Quarantined)
	}
	kinds := make([]string, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		ks := s.ByKind[Kind(k)]
		fmt.Fprintf(&b, "  %-18s %4d runs  %4d ok (%5.1f%%)  %4d escalations  %d errors\n",
			k, ks.Runs, ks.Successes, ks.SuccessRate*100, ks.Escalations, ks.Errors)
	}
	if len(s.WindowPaths) > 0 {
		b.WriteString("window paths:\n")
		paths := make([]string, 0, len(s.WindowPaths))
		for p := range s.WindowPaths {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			fmt.Fprintf(&b, "  %-40s %d\n", p, s.WindowPaths[p])
		}
	}
	if len(s.DKASAN) > 0 {
		b.WriteString("D-KASAN report classes:\n")
		for _, c := range dkasanClasses {
			fmt.Fprintf(&b, "  %-20s %d\n", c, s.DKASAN[c])
		}
	}
	fmt.Fprintf(&b, "forensics: %d trace events retained, %d dropped; %d attack-log lines capped\n",
		s.TraceEvents, s.TraceDropped, s.StepsDropped)
	return b.String()
}
