package campaign

import (
	"bytes"
	"sync"
	"testing"
)

// mapStore is the trivial in-memory Store tests use in place of
// internal/resultstore (which cannot be imported here — it imports campaign).
type mapStore struct {
	mu   sync.Mutex
	m    map[Digest]*Result
	puts int
}

func newMapStore() *mapStore { return &mapStore{m: map[Digest]*Result{}} }

func (ms *mapStore) Get(d Digest) (*Result, bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	r, ok := ms.m[d]
	return r, ok
}

func (ms *mapStore) Put(d Digest, r *Result) error {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.m[d] = r
	ms.puts++
	return nil
}

// The digest is position- and ID-blind: the same spec hashes identically
// whatever slot it occupies, and differing specs diverge.
func TestScenarioDigestSemantics(t *testing.T) {
	a := Scenario{Kind: KindWindowLadder, Seed: 7}
	b := a
	b.ID = "0003-window-ladder-seed7" // a normalized copy from another run
	if ScenarioDigest(a) != ScenarioDigest(b) {
		t.Fatal("digest depends on the position-derived ID")
	}
	c := a
	c.Normalize(12) // defaults filled + ID stamped
	if ScenarioDigest(a) != ScenarioDigest(c) {
		t.Fatal("digest differs between raw and normalized copies of one spec")
	}
	d := a
	d.Seed = 8
	if ScenarioDigest(a) == ScenarioDigest(d) {
		t.Fatal("digest ignores the seed")
	}
	e := a
	e.Mode = "strict"
	if ScenarioDigest(a) == ScenarioDigest(e) {
		t.Fatal("digest ignores the IOMMU mode")
	}
	if ScenarioKey(a) != ScenarioDigest(a).Short() {
		t.Fatal("ScenarioKey is not the digest's short form")
	}
}

// A warm cache replays every scenario — zero Puts, every index reported via
// OnCacheHit — and the summary is byte-identical to the cold run's.
func TestEngineCacheColdThenWarm(t *testing.T) {
	scenarios := Presets["ladder"](8, 2021)
	store := newMapStore()

	cold := Engine{Workers: 4, Cache: store}
	coldSum, err := cold.Run(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if store.puts != len(scenarios) {
		t.Fatalf("cold run stored %d results, want %d", store.puts, len(scenarios))
	}
	for d, r := range store.m {
		if r.ID != "" {
			t.Fatalf("stored result %s carries position-derived ID %q", d.Short(), r.ID)
		}
	}
	want, err := coldSum.JSON()
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	hits := map[int]bool{}
	warm := Engine{Workers: 4, Cache: store, OnCacheHit: func(i int) {
		mu.Lock()
		hits[i] = true
		mu.Unlock()
	}}
	warmSum, err := warm.Run(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if store.puts != len(scenarios) {
		t.Fatalf("warm run stored %d extra results", store.puts-len(scenarios))
	}
	if len(hits) != len(scenarios) {
		t.Fatalf("OnCacheHit fired for %d of %d scenarios", len(hits), len(scenarios))
	}
	got, err := warmSum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("warm summary differs from cold:\n%s\nvs\n%s", got, want)
	}
}

// Only spec-pure outcomes are recorded: a timeout depends on machine speed
// and must re-execute every run, while a deterministic panic replays.
func TestCacheablePolicy(t *testing.T) {
	if Cacheable(&Result{Outcome: OutcomeTimeout}) {
		t.Error("timeout results must not be cached")
	}
	if Cacheable(&Result{Outcome: OutcomeQuarantined}) {
		t.Error("quarantined short-circuits must not be cached")
	}
	if !Cacheable(&Result{Outcome: OutcomePanic, Stack: "sanitized"}) {
		t.Error("panic results are deterministic and should cache")
	}
	if !Cacheable(&Result{Success: true}) {
		t.Error("completed results should cache")
	}
}

// End to end: the engine must skip Put for a timed-out scenario.
func TestEngineDoesNotCacheTimeouts(t *testing.T) {
	scs := []Scenario{{Kind: KindWindowLadder, Seed: 1,
		FaultSpec: "scenario-stall@1", TimeoutMS: 20}}
	store := newMapStore()
	sum, err := Engine{Workers: 1, Cache: store}.Run(scs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Results[0].Outcome != OutcomeTimeout {
		t.Fatalf("scenario did not time out: %+v", sum.Results[0])
	}
	if store.puts != 0 {
		t.Fatalf("timeout result was cached (%d puts)", store.puts)
	}
}

// A cached panic replays byte-identically: the second run's summary (stack
// and all) matches the first without executing the panicking scenario.
func TestEnginePanicReplaysFromCache(t *testing.T) {
	scs := []Scenario{{Kind: KindWindowLadder, Seed: 5, FaultSpec: "scenario-panic@1"}}
	store := newMapStore()
	first, err := Engine{Workers: 1, Cache: store}.Run(scs)
	if err != nil {
		t.Fatal(err)
	}
	if first.Results[0].Outcome != OutcomePanic {
		t.Fatalf("scenario did not panic: %+v", first.Results[0])
	}
	if store.puts != 1 {
		t.Fatalf("panic result not cached (%d puts)", store.puts)
	}
	hits := 0
	second, err := Engine{Workers: 1, Cache: store, OnCacheHit: func(int) { hits++ }}.Run(scs)
	if err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatalf("replay executed instead of hitting the cache")
	}
	a, _ := first.JSON()
	b, _ := second.JSON()
	if !bytes.Equal(a, b) {
		t.Errorf("replayed panic summary differs:\n%s\nvs\n%s", b, a)
	}
}

// The cache is consulted before the Gate: a hit replays even when a gate
// would have quarantined the scenario, and the gate never sees it.
func TestEngineCacheBeatsGate(t *testing.T) {
	scs := Presets["ladder"](4, 3)
	store := newMapStore()
	if _, err := (Engine{Workers: 2, Cache: store}).Run(scs); err != nil {
		t.Fatal(err)
	}
	gated := 0
	warm := Engine{Workers: 2, Cache: store, Gate: func(i int, s *Scenario) *Result {
		gated++
		r := s.newResult()
		r.Outcome = OutcomeQuarantined
		return r
	}}
	sum, err := warm.Run(scs)
	if err != nil {
		t.Fatal(err)
	}
	if gated != 0 {
		t.Fatalf("gate consulted %d times despite warm cache", gated)
	}
	for _, r := range sum.Results {
		if r.Outcome == OutcomeQuarantined {
			t.Fatalf("cached scenario was quarantined: %+v", r)
		}
	}
}
