package campaign

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// hardenedSet is a 16-scenario campaign of cheap single-boot kinds with one
// deliberately panicking scenario in the middle — the panic-isolation
// fixture of the PR: index 3 must come back as a structured "panic" result
// while every other index completes normally.
func hardenedSet() []Scenario {
	set := make([]Scenario, 16)
	for i := range set {
		set[i] = Scenario{Kind: KindWindowLadder, Seed: int64(100 + i)}
	}
	set[3].FaultSpec = "scenario-panic@1"
	return set
}

func TestPanicIsolationAcrossWorkers(t *testing.T) {
	set := hardenedSet()
	var want []byte
	for _, workers := range []int{1, 4, 16} {
		sum, err := Engine{Workers: workers}.Run(set)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sum.Panics != 1 {
			t.Fatalf("workers=%d: Panics = %d, want 1", workers, sum.Panics)
		}
		for i, r := range sum.Results {
			if i == 3 {
				if r.Outcome != OutcomePanic {
					t.Fatalf("workers=%d: result 3 outcome %q, want %q", workers, r.Outcome, OutcomePanic)
				}
				if !strings.Contains(r.Err, "injected scenario panic") {
					t.Fatalf("workers=%d: result 3 err %q", workers, r.Err)
				}
				if r.Stack == "" {
					t.Fatalf("workers=%d: panic result has no stack", workers)
				}
				if regexp.MustCompile(`0x[0-9a-f]+|goroutine \d`).MatchString(r.Stack) {
					t.Fatalf("workers=%d: stack not sanitized:\n%s", workers, r.Stack)
				}
				continue
			}
			if r.Outcome != "" || r.Err != "" {
				t.Fatalf("workers=%d: result %d contaminated by the panic: outcome=%q err=%q",
					workers, i, r.Outcome, r.Err)
			}
		}
		got, err := sum.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: summary with a panicking scenario is not byte-identical", workers)
		}
	}
}

func TestScenarioDeadlineTimeout(t *testing.T) {
	set := []Scenario{
		{Kind: KindWindowLadder, Seed: 1},
		// scenario-stall@1 blocks the attempt for 250ms wall; the 30ms
		// deadline fires long before.
		{Kind: KindWindowLadder, Seed: 2, FaultSpec: "scenario-stall@1", TimeoutMS: 30},
		{Kind: KindWindowLadder, Seed: 3},
	}
	sum, err := Engine{Workers: 4}.Run(set)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Timeouts != 1 {
		t.Fatalf("Timeouts = %d, want 1", sum.Timeouts)
	}
	r := sum.Results[1]
	if r.Outcome != OutcomeTimeout {
		t.Fatalf("outcome %q, want %q", r.Outcome, OutcomeTimeout)
	}
	if !strings.Contains(r.Err, "30ms deadline") {
		t.Fatalf("err %q", r.Err)
	}
	for _, i := range []int{0, 2} {
		if sum.Results[i].Outcome != "" {
			t.Fatalf("result %d contaminated: %q", i, sum.Results[i].Outcome)
		}
	}
}

func TestRetryExhaustionOnPointFault(t *testing.T) {
	// A point rule fires at the same ordinal on every attempt, so the
	// engine must exhaust its retries and keep the final transient error.
	set := []Scenario{{Kind: KindWindowLadder, Seed: 7, FaultSpec: "alloc-fail@1"}}
	sum, err := Engine{Workers: 1}.Run(set)
	if err != nil {
		t.Fatal(err)
	}
	r := sum.Results[0]
	if r.Err == "" || !strings.Contains(r.Err, "injected") {
		t.Fatalf("err %q, want an injected-pressure failure", r.Err)
	}
	if r.Retries != DefaultMaxRetries {
		t.Fatalf("Retries = %d, want %d", r.Retries, DefaultMaxRetries)
	}
	if sum.Retries != DefaultMaxRetries || sum.Errors != 1 {
		t.Fatalf("summary retries=%d errors=%d", sum.Retries, sum.Errors)
	}
}

func TestRetryRecoversFromRateFault(t *testing.T) {
	// Rate-based decisions are redrawn per attempt (the attempt number
	// salts the plan), so a scenario that fails transiently on attempt 0
	// can succeed on a retry. Scan seeds for one that does exactly that —
	// the scan is deterministic, so this never flakes.
	for seed := int64(0); seed < 200; seed++ {
		set := []Scenario{{Kind: KindWindowLadder, Seed: seed, FaultSpec: "alloc-fail:0.02"}}
		sum, err := Engine{Workers: 1}.Run(set)
		if err != nil {
			t.Fatal(err)
		}
		r := sum.Results[0]
		if r.Retries > 0 && r.Err == "" {
			if sum.Retries != r.Retries {
				t.Fatalf("summary retries %d != result retries %d", sum.Retries, r.Retries)
			}
			return // found the recovery case
		}
	}
	t.Fatal("no seed in [0,200) recovered via retry — retry path looks dead")
}

func TestRetryDisabled(t *testing.T) {
	set := []Scenario{{Kind: KindWindowLadder, Seed: 7, FaultSpec: "alloc-fail@1"}}
	sum, err := Engine{Workers: 1, MaxRetries: -1}.Run(set)
	if err != nil {
		t.Fatal(err)
	}
	if r := sum.Results[0]; r.Retries != 0 || r.Err == "" {
		t.Fatalf("retries=%d err=%q, want 0 retries and an error", r.Retries, r.Err)
	}
}

func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Engine{Workers: 4}.RunCtx(ctx, hardenedSet())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunCtxCancelAfterClaimReportsCancellation: when cancellation lands
// after the final scenario is claimed, the worklist drains cleanly but the
// cancelled scenario's slot stays nil — the run must surface the
// cancellation, not aggregate a summary over empty slots (it used to
// crash in Aggregate for single-scenario jobs stalled under the watchdog).
func TestRunCtxCancelAfterClaimReportsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	eng := Engine{Workers: 1, OnClaim: func(int) { cancel() }}
	sum, err := eng.RunCtx(ctx, []Scenario{{Kind: KindWindowLadder, Seed: 1}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sum != nil {
		t.Fatalf("cancelled run still produced a summary: %+v", sum)
	}
}

func TestFaultSpecValidation(t *testing.T) {
	bad := Scenario{Kind: KindWindowLadder, FaultSpec: "warp-core:0.5"}
	bad.Normalize(0)
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid fault spec accepted")
	}
	neg := Scenario{Kind: KindWindowLadder, TimeoutMS: -1}
	neg.Normalize(0)
	if err := neg.Validate(); err == nil {
		t.Fatal("negative timeout accepted")
	}
}

// TestInjectedFaultsSurfaceInMetrics is the injected-vs-detected loop: a
// fault-armed boot-study scenario must expose faultinject_* counters in its
// snapshot, and the IOMMU's fault counter must absorb the spurious faults.
func TestInjectedFaultsSurfaceInMetrics(t *testing.T) {
	set := []Scenario{{
		Kind: KindWindowLadder, Seed: 11,
		FaultSpec: "dma-corrupt:0.05,iommu-fault:0.001",
	}}
	sum, err := Engine{Workers: 1}.Run(set)
	if err != nil {
		t.Fatal(err)
	}
	r := sum.Results[0]
	if r.Err != "" {
		t.Fatalf("scenario failed: %s", r.Err)
	}
	if r.Snapshot == nil {
		t.Fatal("no snapshot captured")
	}
	ops := r.Snapshot.Total("faultinject_opportunities_total")
	if ops == 0 {
		t.Fatal("fault-armed boot consulted no injection hooks")
	}
	// And a clean scenario must NOT grow the families (golden stability).
	clean, err := Engine{Workers: 1}.Run([]Scenario{{Kind: KindWindowLadder, Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Results[0].Snapshot.Total("faultinject_opportunities_total") != 0 {
		t.Fatal("clean boot leaked faultinject families into its snapshot")
	}
}

// TestFaultCampaignDeterminismAcrossWorkers: injection decisions are pure
// functions of (plan, scope, counter), so even heavily fault-ridden
// campaigns stay byte-identical at any worker count.
func TestFaultCampaignDeterminismAcrossWorkers(t *testing.T) {
	set := make([]Scenario, 8)
	for i := range set {
		set[i] = Scenario{
			Kind: KindWindowLadder, Seed: int64(300 + i),
			FaultSpec: "dma-corrupt:0.02,ring-drop:0.01,iommu-stall:0.01",
		}
	}
	var want []byte
	for _, workers := range []int{1, 4, 16} {
		sum, err := Engine{Workers: workers}.Run(set)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := sum.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: fault-injected campaign not byte-identical", workers)
		}
	}
}

// sanity: the derived scenario IDs mentioned in docs stay stable.
func TestHardenedScenarioIDs(t *testing.T) {
	s := Scenario{Kind: KindWindowLadder, Seed: 100}
	s.Normalize(3)
	if want := fmt.Sprintf("0003-%s-seed100", KindWindowLadder); s.ID != want {
		t.Fatalf("ID %q, want %q", s.ID, want)
	}
}
