package campaign

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dmafault/internal/attacks"
	"dmafault/internal/core"
	"dmafault/internal/dkasan"
	"dmafault/internal/faultinject"
	"dmafault/internal/iommu"
	"dmafault/internal/metrics"
	"dmafault/internal/netstack"
	"dmafault/internal/workload"
)

// attackerDev is the requester ID campaign boots give the malicious NIC,
// matching the attacks package convention.
const attackerDev iommu.DeviceID = 1

// traceRingCap bounds the per-scenario forensic event ring. Old events fall
// off; Result.TraceDropped counts them, so million-scenario campaigns never
// hold full traces in memory.
const traceRingCap = 512

// Result is the outcome of one scenario, flattened for aggregation and
// stable JSON encoding. Metrics values are pre-formatted strings so the
// encoding never depends on float printing context.
type Result struct {
	ID          string `json:"id"`
	Kind        Kind   `json:"kind"`
	Seed        int64  `json:"seed"`
	Success     bool   `json:"success"`
	Escalations int    `json:"escalations"`
	// WindowPath is the Fig. 7 path the scenario's injection used (empty
	// for kinds without one).
	WindowPath string `json:"window_path,omitempty"`
	// Metrics carries kind-specific numbers (modal rates, report tallies).
	Metrics map[string]string `json:"metrics,omitempty"`
	// TraceEvents/TraceDropped report the forensic ring's retention.
	TraceEvents  int    `json:"trace_events,omitempty"`
	TraceDropped uint64 `json:"trace_dropped,omitempty"`
	// StepsDropped counts attack-log lines shed by the Result step cap.
	StepsDropped uint64 `json:"steps_dropped,omitempty"`
	// VirtualNanos is the final virtual-clock reading of the machine(s) the
	// scenario booted, summed (0 for kinds that don't capture metrics).
	VirtualNanos uint64 `json:"virtual_nanos,omitempty"`
	// Snapshot is the machine's full metric dump gathered once the scenario
	// finished (nil under skip_metrics, or for kinds that don't capture one).
	Snapshot *metrics.Snapshot `json:"snapshot,omitempty"`
	// Err records a scenario-level failure; the campaign keeps going.
	Err string `json:"err,omitempty"`
	// Outcome classifies abnormal terminations the engine isolated:
	// OutcomePanic, OutcomeTimeout, or empty for a scenario that ran to
	// completion (successfully or not).
	Outcome string `json:"outcome,omitempty"`
	// Stack is the sanitized goroutine stack of a panicking scenario
	// (addresses and goroutine IDs normalized so equal campaigns stay
	// byte-identical at any worker count).
	Stack string `json:"stack,omitempty"`
	// Retries counts the extra attempts the engine spent on transient
	// injected faults before producing this result.
	Retries int `json:"retries,omitempty"`

	// transient marks Err as wrapping faultinject.ErrTransient — the class
	// of failure the engine's retry loop re-attempts.
	transient bool
}

// Abnormal-termination outcomes the engine records in Result.Outcome.
const (
	// OutcomePanic: the scenario panicked; the engine isolated it and kept
	// the campaign alive. Result.Stack holds the sanitized trace.
	OutcomePanic = "panic"
	// OutcomeTimeout: the scenario's TimeoutMS deadline expired.
	OutcomeTimeout = "timeout"
	// OutcomeQuarantined: an Engine.Gate short-circuited the scenario (the
	// service's circuit breaker does this for scenarios that repeatedly
	// panicked or blew their deadline across jobs); the recorded result
	// carries this outcome instead of an execution.
	OutcomeQuarantined = "quarantined"
)

// QuarantinedResult builds the deterministic short-circuit result a Gate
// records for a quarantined scenario: no execution, no metrics, a fixed
// error string, Success false.
func QuarantinedResult(s *Scenario) *Result {
	r := s.newResult()
	r.Outcome = OutcomeQuarantined
	r.Err = "campaign: scenario quarantined by circuit breaker"
	return r
}

// captureMetrics gathers the system registry into the result. A gather
// failure is a Source contract bug; it surfaces as a scenario error.
func (r *Result) captureMetrics(sys *core.System) {
	if sys.Metrics == nil {
		return
	}
	snap, err := sys.Metrics.Gather()
	if err != nil {
		if r.Err == "" {
			r.Err = "metrics: " + err.Error()
		}
		return
	}
	r.Snapshot = snap
	r.VirtualNanos += uint64(sys.Clock.Now())
}

func (s *Scenario) newResult() *Result {
	return &Result{ID: s.ID, Kind: s.Kind, Seed: s.Seed, Metrics: map[string]string{}}
}

// RunScenario executes one scenario to completion. Execution errors are
// captured in Result.Err (a campaign run survives individual failures);
// only an invalid spec returns a Go error.
func RunScenario(s Scenario) (*Result, error) {
	return runAttempt(context.Background(), s, 0)
}

// scenarioStallWall is the wall-clock hang an injected ScenarioStall fault
// simulates — long enough that any realistic TimeoutMS deadline fires first,
// short enough that undeadlined campaigns still make progress.
const scenarioStallWall = 250 * time.Millisecond

// runAttempt is one execution attempt: the attempt number salts the fault
// plan so retries re-roll rate-based injection decisions. Control-flow
// faults (scenario-panic, scenario-stall) fire here from a scenario-scoped
// injector before any machine boots; substrate faults arm the boots via the
// plan. Errors wrapping faultinject.ErrTransient mark the result transient
// for the engine's retry loop.
func runAttempt(ctx context.Context, s Scenario, attempt int) (*Result, error) {
	s.Normalize(0)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	plan, err := s.faultPlan(attempt)
	if err != nil {
		return nil, err
	}
	r := s.newResult()
	if inj := faultinject.New(plan, s.Seed); inj != nil {
		if inj.Fire(faultinject.ScenarioPanic) {
			panic(fmt.Sprintf("faultinject: injected scenario panic (%s)", s.ID))
		}
		if inj.Fire(faultinject.ScenarioStall) {
			select {
			case <-ctx.Done():
			case <-time.After(scenarioStallWall):
			}
		}
	}
	var runErr error
	switch s.Kind {
	case KindBootStudy:
		runErr = runBootStudy(&s, r, plan)
	case KindRingFlood:
		runErr = runRingFlood(&s, r, plan)
	case KindPoisonedTX, KindForwardThinking:
		runErr = runSingleBootAttack(&s, r, plan)
	case KindWindowLadder:
		runErr = runWindowLadder(&s, r, plan)
	case KindDKASAN:
		runErr = runDKASAN(&s, r, plan)
	case KindPageSpray:
		runErr = runPageSpray(&s, r, plan)
	}
	if runErr != nil {
		r.Err = runErr.Error()
		r.transient = errors.Is(runErr, faultinject.ErrTransient)
	}
	return r, nil
}

// runBootStudy reproduces the §5.3 statistics for the scenario's cell.
func runBootStudy(s *Scenario, r *Result, plan *faultinject.Plan) error {
	version, _ := s.kernelVersion()
	st, err := attacks.RunBootStudyOpts(version, s.Trials, s.Seed,
		attacks.BootOptions{JitterPages: s.jitter(), Queues: s.Queues, FaultPlan: plan})
	if err != nil {
		return err
	}
	r.Metrics["modal_rate"] = fmt.Sprintf("%.4f", st.ModalRate)
	r.Metrics["median_rate"] = fmt.Sprintf("%.4f", st.MedianRate)
	r.Metrics["footprint_pages"] = fmt.Sprintf("%d", st.FootprintPages)
	r.Metrics["modal_pfn"] = fmt.Sprintf("%d", st.ModalPFN)
	// The paper's determinism claim: the modal frame repeats in >50% of
	// reboots (kernel 5.0; >95% on 4.15).
	r.Success = st.ModalRate > 0.5
	return nil
}

// runRingFlood profiles offline, then attacks fresh boots (§5.3). The
// profiling study runs clean — it models the attacker's own machine — while
// the attacked victim boots carry the scenario's fault plan.
func runRingFlood(s *Scenario, r *Result, plan *faultinject.Plan) error {
	version, _ := s.kernelVersion()
	study, err := attacks.RunBootStudyQueues(version, s.Trials, s.Seed, s.jitter(), s.Queues)
	if err != nil {
		return err
	}
	// Attack boots draw unseen seeds, disjoint from the profiling range.
	hits, results, err := attacks.RingFloodCampaignOpts(version, study, s.Attempts, s.Seed+1_000_000, plan)
	if err != nil {
		return err
	}
	paths := map[string]int{}
	for _, res := range results {
		r.Escalations += res.Escalations
		r.StepsDropped += res.DroppedSteps
		if p := res.Detail["window_path"]; p != "" {
			paths[p]++
		}
	}
	// Merge the per-attempt machine snapshots in attempt order — the same
	// order the historical sequential loop produced — so the merged dump is
	// byte-identical at any worker count.
	if !s.SkipMetrics {
		snap := &metrics.Snapshot{}
		for _, res := range results {
			if err := snap.Merge(res.Snapshot); err != nil {
				return err
			}
		}
		if len(snap.Families) > 0 {
			r.Snapshot = snap
			r.VirtualNanos = uint64(snap.Total("sim_virtual_time_nanos"))
		}
	}
	for p, n := range paths {
		r.Metrics["path["+p+"]"] = fmt.Sprintf("%d", n)
	}
	r.Metrics["hits"] = fmt.Sprintf("%d", hits)
	r.Metrics["attempts"] = fmt.Sprintf("%d", s.Attempts)
	r.Metrics["modal_rate"] = fmt.Sprintf("%.4f", study.ModalRate)
	r.Success = hits > 0
	return nil
}

// bootAttackSystem boots a single-NIC system per the scenario spec with the
// forensic trace ring attached.
func (s *Scenario) bootAttackSystem(plan *faultinject.Plan) (*core.System, *netstack.NIC, func(*Result), error) {
	opts, err := s.options(plan)
	if err != nil {
		return nil, nil, nil, err
	}
	sys, err := core.New(append(opts, core.WithTracing(traceRingCap))...)
	if err != nil {
		return nil, nil, nil, err
	}
	log := sys.Trace()
	model, _ := s.driverModel()
	nic, err := sys.AddNIC(attackerDev, model, 0)
	if err != nil {
		return nil, nil, nil, err
	}
	finish := func(r *Result) {
		r.TraceEvents = len(log.Events())
		r.TraceDropped = log.Dropped
		r.captureMetrics(sys)
	}
	return sys, nic, finish, nil
}

// runSingleBootAttack covers Poisoned TX (§5.4) and Forward Thinking (§5.5).
func runSingleBootAttack(s *Scenario, r *Result, plan *faultinject.Plan) error {
	if s.Kind == KindForwardThinking {
		// §5.5 has no story without the forwarding path.
		s.Forwarding = true
	}
	sys, nic, finish, err := s.bootAttackSystem(plan)
	if err != nil {
		return err
	}
	var res *attacks.Result
	if s.Kind == KindForwardThinking {
		res = attacks.RunForwardThinking(sys, nic)
	} else {
		res = attacks.RunPoisonedTX(sys, nic)
	}
	r.Success = res.Success
	r.Escalations = res.Escalations
	r.StepsDropped = res.DroppedSteps
	r.WindowPath = res.Detail["window_path"]
	r.Metrics["steps"] = fmt.Sprintf("%d", len(res.Steps))
	finish(r)
	return nil
}

// runWindowLadder probes which Fig. 7 path is open under the scenario's
// driver ordering and IOMMU mode.
func runWindowLadder(s *Scenario, r *Result, plan *faultinject.Plan) error {
	sys, nic, finish, err := s.bootAttackSystem(plan)
	if err != nil {
		return err
	}
	path, err := attacks.ProbeTimeWindow(sys, nic, attacks.PickNeighborSlot(nic))
	if err != nil {
		return err
	}
	r.WindowPath = path.String()
	// The §5.2 claim: some path is always open.
	r.Success = path != attacks.WindowNone
	finish(r)
	return nil
}

// runPageSpray runs the spray-assisted injection ("Take a Step Further"):
// free a device-visible RX page block, spray kernel objects over the hole,
// write through the stale IOTLB entry. An unspecified driver defaults to the
// mlx5 HW-LRO model — the datapath whose buffers actually reach the buddy
// allocator on release (other drivers remain explicit choices, and usually
// demonstrate the miss).
func runPageSpray(s *Scenario, r *Result, plan *faultinject.Plan) error {
	if s.Driver == "" {
		s.Driver = netstack.DriverMlx5LRO.Name
	}
	sys, nic, finish, err := s.bootAttackSystem(plan)
	if err != nil {
		return err
	}
	blocks := s.SprayBlocks
	if blocks <= 0 {
		blocks = DefaultSprayBlocks
	}
	res := attacks.RunPageSpray(sys, nic, attacks.SprayConfig{Blocks: blocks, Order: s.SprayOrder})
	r.Success = res.Success
	r.Escalations = res.Escalations
	r.StepsDropped = res.DroppedSteps
	r.WindowPath = res.Detail["window_path"]
	r.Metrics["spray"] = res.Detail["reuse"]
	if v := res.Detail["stale"]; v != "" {
		r.Metrics["stale"] = v
	}
	r.Metrics["spray_blocks"] = res.Detail["spray_blocks"]
	r.Metrics["spray_order"] = res.Detail["spray_order"]
	finish(r)
	return nil
}

// runDKASAN boots with the sanitizer attached and tallies its reports.
func runDKASAN(s *Scenario, r *Result, plan *faultinject.Plan) error {
	opts, err := s.options(plan)
	if err != nil {
		return err
	}
	dk := dkasan.New()
	sys, err := core.New(append(opts, core.WithTracer(dk))...)
	if err != nil {
		return err
	}
	dk.Attach(sys.Mem, sys.Mapper)
	if sys.Metrics != nil {
		sys.Metrics.MustRegister(dk)
	}
	model, _ := s.driverModel()
	nic, err := sys.AddNIC(attackerDev, model, 0)
	if err != nil {
		return err
	}
	if _, err := workload.Run(sys, nic, workload.Config{Iterations: s.Iterations, NICDevice: attackerDev}); err != nil {
		return err
	}
	st := dk.Stats()
	r.Metrics["alloc_after_map"] = fmt.Sprintf("%d", st.AllocAfterMap)
	r.Metrics["map_after_alloc"] = fmt.Sprintf("%d", st.MapAfterAlloc)
	r.Metrics["access_after_map"] = fmt.Sprintf("%d", st.AccessAfterMap)
	r.Metrics["multiple_map"] = fmt.Sprintf("%d", st.MultipleMap)
	r.Metrics["reports"] = fmt.Sprintf("%d", len(dk.Reports()))
	r.Success = len(dk.Reports()) > 0
	r.captureMetrics(sys)
	return nil
}
