package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestScanJournalRecoversStateFromPathAlone: the boot-recovery primitive —
// no out-of-band scenario set, just the file.
func TestScanJournalRecoversStateFromPathAlone(t *testing.T) {
	dir := t.TempDir()
	set := journalSet()
	path := filepath.Join(dir, "job-1.jsonl")
	full, _ := runWithJournal(t, filepath.Join(dir, "ref.jsonl"), set, false, 2)

	j, err := OpenJournal(path, set, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Record(i, full.Results[i]); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	// A crash mid-append leaves a torn tail; the scan must shrug it off.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"index":5,"result":{"id":"half`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st, err := ScanJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Scenarios) != len(set) || len(st.Restored) != 3 || !st.Unfinished() {
		t.Fatalf("scan: %d scenarios, %d restored, unfinished=%v",
			len(st.Scenarios), len(st.Restored), st.Unfinished())
	}
	// The embedded set resumes the engine to the same summary bytes.
	eng := Engine{Workers: 2, Completed: st.Restored}
	sum, err := eng.Run(st.Scenarios)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := full.JSON()
	got, _ := sum.JSON()
	if !bytes.Equal(got, want) {
		t.Fatal("summary resumed via ScanJournal differs from uninterrupted run")
	}
}

// TestScanJournalDetectsFinishedSets: a complete journal scans as finished,
// so boot recovery leaves it alone.
func TestScanJournalDetectsFinishedSets(t *testing.T) {
	dir := t.TempDir()
	set := journalSet()[:3]
	path := filepath.Join(dir, "done.jsonl")
	runWithJournal(t, path, set, false, 1)
	st, err := ScanJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Unfinished() {
		t.Fatalf("complete journal scanned as unfinished: %d/%d", len(st.Restored), len(st.Scenarios))
	}
}

// TestScanJournalRejectsTamperedEmbeddedSet: editing the embedded set breaks
// the header hash, so a hand-modified journal cannot silently resume.
func TestScanJournalRejectsTamperedEmbeddedSet(t *testing.T) {
	dir := t.TempDir()
	set := journalSet()
	path := filepath.Join(dir, "tampered.jsonl")
	j, err := OpenJournal(path, set, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	edited := bytes.Replace(data, []byte(`"seed":500`), []byte(`"seed":501`), 1)
	if bytes.Equal(edited, data) {
		t.Fatal("test did not find the seed to tamper with")
	}
	if err := os.WriteFile(path, edited, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ScanJournal(path); err == nil || !strings.Contains(err.Error(), "hash") {
		t.Fatalf("tampered journal scanned: err=%v", err)
	}
}

// TestScanJournalRejectsJournalsWithoutEmbeddedSet: pre-Set-era journals
// (header without the set copy) are an explicit error, not a silent skip.
func TestScanJournalRejectsJournalsWithoutEmbeddedSet(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "old.jsonl")
	hdr := `{"v":1,"scenarios":2,"hash":"deadbeefdeadbeef"}` + "\n"
	if err := os.WriteFile(path, []byte(hdr), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ScanJournal(path); err == nil || !strings.Contains(err.Error(), "no embedded scenario set") {
		t.Fatalf("old-format journal scanned: err=%v", err)
	}
}

// TestScenarioKeyIsPositionIndependent: the quarantine breaker's identity —
// equal specs share a key no matter where they sit in a set or what ID
// normalization assigned them; different specs do not.
func TestScenarioKeyIsPositionIndependent(t *testing.T) {
	a := Scenario{Kind: KindWindowLadder, Seed: 7}
	b := Scenario{Kind: KindWindowLadder, Seed: 7}
	b.Normalize(42) // stamped with a different index-derived ID
	if ScenarioKey(a) != ScenarioKey(b) {
		t.Error("identical specs at different positions got different keys")
	}
	c := Scenario{Kind: KindWindowLadder, Seed: 8}
	if ScenarioKey(a) == ScenarioKey(c) {
		t.Error("different seeds share a key")
	}
	d := Scenario{Kind: KindWindowLadder, Seed: 7, FaultSpec: "scenario-panic@1"}
	if ScenarioKey(a) == ScenarioKey(d) {
		t.Error("different fault specs share a key")
	}
}

// TestEngineGateShortCircuits: gated scenarios never execute, their recorded
// results are journaled and aggregated, and the summary is byte-identical at
// any worker count (the determinism the quarantine layer leans on).
func TestEngineGateShortCircuits(t *testing.T) {
	set := journalSet()
	gate := func(i int, sc *Scenario) *Result {
		if i%3 == 0 {
			return QuarantinedResult(sc)
		}
		return nil
	}
	var ref []byte
	for _, workers := range []int{1, 4, 7} {
		dir := t.TempDir()
		path := filepath.Join(dir, "gated.jsonl")
		j, err := OpenJournal(path, set, false)
		if err != nil {
			t.Fatal(err)
		}
		executed := map[int]bool{}
		var mu sync.Mutex
		eng := Engine{Workers: workers, Gate: gate, Journal: j,
			OnResult: func(i int, r *Result) {
				mu.Lock()
				if r.Outcome != OutcomeQuarantined {
					executed[i] = true
				}
				mu.Unlock()
			}}
		sum, err := eng.Run(set)
		j.Close()
		if err != nil {
			t.Fatal(err)
		}
		for i := range set {
			if i%3 == 0 && executed[i] {
				t.Fatalf("workers=%d: gated scenario %d executed", workers, i)
			}
		}
		if sum.Quarantined != 3 {
			t.Fatalf("workers=%d: summary counted %d quarantined, want 3", workers, sum.Quarantined)
		}
		got, err := sum.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
		} else if !bytes.Equal(got, ref) {
			t.Fatalf("workers=%d: gated summary differs from workers=1", workers)
		}
		// The journal carries the quarantined records like executed ones.
		restored, err := LoadJournal(path, set)
		if err != nil {
			t.Fatal(err)
		}
		if len(restored) != len(set) || restored[0].Outcome != OutcomeQuarantined {
			t.Fatalf("workers=%d: journal restored %d records, [0] outcome %q",
				workers, len(restored), restored[0].Outcome)
		}
	}
}
