package campaign

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Campaign journal: a JSONL file recording each completed scenario so a
// killed campaign can resume without re-executing finished work. Line 1 is
// a header binding the journal to its scenario set (a hash over the
// normalized specs — resuming against a different set is an error); every
// further line is one {index, result} record, appended atomically under a
// mutex in whatever order workers finish. Because results are deterministic
// per scenario, replay order never matters: LoadJournal keys records by
// index, and a resumed run's summary is byte-identical to an uninterrupted
// run's. A torn final line (the crash case) is tolerated on read and
// truncated away on resume-for-append.

// journalVersion gates the on-disk format.
const journalVersion = 1

type journalHeader struct {
	V         int    `json:"v"`
	Scenarios int    `json:"scenarios"`
	Hash      string `json:"hash"`
	// Set is the normalized scenario set itself (added for service crash
	// recovery: a restarted daemon can rediscover what a journal was running
	// without any out-of-band spec). Optional on read — journals written
	// before the field are still resumable by callers that hold the set —
	// but required by ScanJournal.
	Set []Scenario `json:"set,omitempty"`
}

type journalRecord struct {
	Index  int     `json:"index"`
	Result *Result `json:"result"`
}

// normalizeSet returns an index-normalized copy of the scenario set.
func normalizeSet(scs []Scenario) []Scenario {
	norm := make([]Scenario, len(scs))
	copy(norm, scs)
	for i := range norm {
		norm[i].Normalize(i)
	}
	return norm
}

// scenarioSetHash fingerprints the normalized scenario set so a journal can
// only resume the campaign it was written for.
func scenarioSetHash(scs []Scenario) string {
	data, err := json.Marshal(normalizeSet(scs))
	if err != nil {
		// Scenario is a plain struct of scalars; Marshal cannot fail.
		panic("campaign: " + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// ScenarioKeyVersion is the engine-version salt folded into ScenarioKey. It
// rolls whenever scenario execution semantics change (new kinds, new knobs,
// altered defaults), so a key means "this spec under this engine" — the one
// canonical identity shared by fuzz-corpus dedup, the quarantine circuit
// breaker, and any future result cache. Stale keys from an older engine
// simply never match, which is the safe failure mode for all three.
const ScenarioKeyVersion = "dmafault-engine-v2"

// Digest is the full 32-byte content address of a scenario: SHA-256 over
// the engine-version salt plus the canonical (normalized, ID-blanked) spec
// encoding. The persistent result store keys records by the full digest —
// at store scale the 8-byte truncation that suffices for quarantine display
// and log lines is too collision-prone to gate result replay.
type Digest [32]byte

// String renders the full 64-hex-char digest.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Short is the 16-hex-char truncation used for logs, quarantine display,
// and fuzz-corpus dedup keys — human-scale UX, not a persistence identity.
func (d Digest) Short() string { return hex.EncodeToString(d[:8]) }

// ScenarioDigest fingerprints one scenario independently of its position in
// a set: the engine-version salt plus the full normalized spec (seed, every
// knob, fault plan, timeout) with the index-derived ID blanked. Scenarios
// that are byte-equal specs share a digest across jobs and campaigns — the
// identity the persistent result store replays cached results by.
func ScenarioDigest(s Scenario) Digest {
	s.Normalize(0)
	s.ID = ""
	data, err := json.Marshal(&s)
	if err != nil {
		panic("campaign: " + err.Error())
	}
	h := sha256.New()
	h.Write([]byte(ScenarioKeyVersion))
	h.Write([]byte{'\n'})
	h.Write(data)
	var d Digest
	h.Sum(d[:0])
	return d
}

// SetHash fingerprints a whole normalized scenario set — the identity a
// campaign journal (and the fabric coordinator's state log) binds itself to,
// so a journal can only ever resume the campaign it was written for.
func SetHash(scs []Scenario) string {
	return scenarioSetHash(scs)
}

// ScenarioKey is the short display form of ScenarioDigest — the identity
// the service's quarantine circuit breaker tracks panicking scenarios by
// and the fuzzer dedups mutants by, where 64 bits is plenty and log lines
// stay readable. Anything persistent keys by the full Digest instead.
func ScenarioKey(s Scenario) string {
	return ScenarioDigest(s).Short()
}

// Journal appends completed-scenario records to an open JSONL file.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// OpenJournal creates (resume=false) or reopens (resume=true) the journal
// at path for the given scenario set. A fresh open truncates and writes the
// header; a resume validates the header against the set, truncates any torn
// final line, and positions for append. Resuming a path that does not exist
// falls back to a fresh journal, so `--resume` on a first run just works.
func OpenJournal(path string, scs []Scenario, resume bool) (*Journal, error) {
	if resume {
		if _, err := os.Stat(path); err == nil {
			return reopenJournal(path, scs)
		} else if !os.IsNotExist(err) {
			return nil, fmt.Errorf("campaign: journal: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: journal: %w", err)
	}
	hdr, err := json.Marshal(journalHeader{V: journalVersion, Scenarios: len(scs),
		Hash: scenarioSetHash(scs), Set: normalizeSet(scs)})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: journal: %w", err)
	}
	if _, err := f.Write(append(hdr, '\n')); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// reopenJournal validates an existing journal and prepares it for append,
// truncating a torn tail left by a crash.
func reopenJournal(path string, scs []Scenario) (*Journal, error) {
	_, good, err := readJournal(path, scs)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("campaign: journal: %w", err)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: journal: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// Record appends one completed scenario. Each record is marshalled to a
// single line and written with one Write call under the journal mutex, so
// concurrent workers never interleave bytes.
func (j *Journal) Record(index int, r *Result) error {
	line, err := json.Marshal(journalRecord{Index: index, Result: r})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err = j.f.Write(append(line, '\n'))
	return err
}

// Close flushes and closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// LoadJournal reads the completed-scenario records of a previous run,
// validated against the scenario set, keyed by index — the value for
// Engine.Completed. A missing file yields an empty map (nothing restored);
// a torn final line is ignored.
func LoadJournal(path string, scs []Scenario) (map[int]*Result, error) {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return map[int]*Result{}, nil
	}
	restored, _, err := readJournal(path, scs)
	return restored, err
}

// readJournal parses the journal, returning the restored results and the
// byte offset just past the last intact line. Parsing stops (without error)
// at the first torn or unparseable line — the expected shape of a crash
// mid-append; header mismatches and out-of-range indexes are real errors.
func readJournal(path string, scs []Scenario) (map[int]*Result, int64, error) {
	hdr, br, f, err := openJournalHeader(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	if hdr.Scenarios != len(scs) {
		return nil, 0, fmt.Errorf("campaign: journal %s: %d scenarios, campaign has %d", path, hdr.Scenarios, len(scs))
	}
	if want := scenarioSetHash(scs); hdr.Hash != want {
		return nil, 0, fmt.Errorf("campaign: journal %s: scenario set hash %s, campaign is %s", path, hdr.Hash, want)
	}
	return readRecords(path, br, hdr.offset, len(scs))
}

// openJournalHeader opens the file and parses+validates the version header.
// On success the caller owns closing f; br is positioned at the first record
// and hdr.offset is the header's byte length.
func openJournalHeader(path string) (*journalHeaderAt, *bufio.Reader, *os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("campaign: journal: %w", err)
	}
	br := bufio.NewReaderSize(f, 1<<20)
	line, err := br.ReadBytes('\n')
	if err != nil {
		f.Close()
		return nil, nil, nil, fmt.Errorf("campaign: journal %s: missing header", path)
	}
	var hdr journalHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		f.Close()
		return nil, nil, nil, fmt.Errorf("campaign: journal %s: bad header: %w", path, err)
	}
	if hdr.V != journalVersion {
		f.Close()
		return nil, nil, nil, fmt.Errorf("campaign: journal %s: version %d, want %d", path, hdr.V, journalVersion)
	}
	return &journalHeaderAt{journalHeader: hdr, offset: int64(len(line))}, br, f, nil
}

type journalHeaderAt struct {
	journalHeader
	offset int64
}

// readRecords consumes {index,result} lines until EOF or the first torn
// line, returning the restored map and the offset just past the last intact
// line.
func readRecords(path string, br *bufio.Reader, offset int64, n int) (map[int]*Result, int64, error) {
	restored := map[int]*Result{}
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			// EOF without newline: a torn tail from a crash — drop it.
			break
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Result == nil {
			// Corrupt line: treat it and everything after as torn.
			break
		}
		if rec.Index < 0 || rec.Index >= n {
			return nil, 0, fmt.Errorf("campaign: journal %s: record index %d out of range", path, rec.Index)
		}
		restored[rec.Index] = rec.Result
		offset += int64(len(line))
	}
	return restored, offset, nil
}

// JournalState is what ScanJournal recovers from a journal file without any
// out-of-band spec: the scenario set the journal was opened for (from the
// embedded header copy) and every intact completed-scenario record.
type JournalState struct {
	Path      string
	Scenarios []Scenario
	Restored  map[int]*Result
}

// Unfinished reports whether the journal records fewer completions than the
// set has scenarios — the condition under which a service restart resumes
// the campaign.
func (st *JournalState) Unfinished() bool { return len(st.Restored) < len(st.Scenarios) }

// ScanJournal reads a journal knowing nothing but its path — the boot-time
// crash-recovery primitive. The scenario set comes from the header's
// embedded copy (validated against the header hash, so a hand-edited set
// cannot silently resume); journals written before sets were embedded return
// an error and are left for out-of-band resume via LoadJournal.
func ScanJournal(path string) (*JournalState, error) {
	hdr, br, f, err := openJournalHeader(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if len(hdr.Set) == 0 {
		return nil, fmt.Errorf("campaign: journal %s: no embedded scenario set (written by an older version?)", path)
	}
	if len(hdr.Set) != hdr.Scenarios {
		return nil, fmt.Errorf("campaign: journal %s: embedded set has %d scenarios, header says %d", path, len(hdr.Set), hdr.Scenarios)
	}
	if got := scenarioSetHash(hdr.Set); got != hdr.Hash {
		return nil, fmt.Errorf("campaign: journal %s: embedded set hash %s, header says %s", path, got, hdr.Hash)
	}
	restored, _, err := readRecords(path, br, hdr.offset, hdr.Scenarios)
	if err != nil {
		return nil, err
	}
	return &JournalState{Path: path, Scenarios: hdr.Set, Restored: restored}, nil
}
