package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"dmafault/internal/attacks"
	"dmafault/internal/core"
	"dmafault/internal/faultinject"
	"dmafault/internal/iommu"
	"dmafault/internal/mem"
	"dmafault/internal/netstack"
)

// Kind selects which attack or probe a scenario runs.
type Kind string

const (
	// KindBootStudy re-runs the §5.3 boot-determinism study: many reboots,
	// PFN repeat statistics (Trials, JitterPages, Queues).
	KindBootStudy Kind = "boot-study"
	// KindRingFlood profiles with a boot study, then attacks Attempts fresh
	// boots (§5.3) and counts escalations.
	KindRingFlood Kind = "ring-flood"
	// KindPoisonedTX runs the §5.4 manufactured-leak attack on one boot.
	KindPoisonedTX Kind = "poisoned-tx"
	// KindForwardThinking runs the §5.5 GRO/forwarding attack on one boot
	// (Forwarding is forced on).
	KindForwardThinking Kind = "forward-thinking"
	// KindWindowLadder probes the Fig. 7 time-window ladder on one boot:
	// which path (driver ordering / stale IOTLB / neighbor IOVA) is open
	// under the scenario's Driver and Mode.
	KindWindowLadder Kind = "window-ladder"
	// KindDKASAN boots with the D-KASAN tracer attached, runs the build+ping
	// workload, and tallies reports per class (§7 detection).
	KindDKASAN Kind = "dkasan"
	// KindPageSpray runs the "Take a Step Further" spray-assisted injection:
	// a delivered packet frees its RX buffer, the kernel sprays same-order
	// page blocks over the hole, and the device writes its payload through
	// the stale IOTLB entry into whichever sprayed object won the race
	// (SprayBlocks, SprayOrder).
	KindPageSpray Kind = "page-spray"
)

// Kinds lists the original grid-preset kinds, in stable order. The list is
// frozen: preset scenario sequences (Mutator draws kinds by index) and the
// golden summaries derived from them must not shift when new kinds land.
func Kinds() []Kind {
	return []Kind{KindBootStudy, KindRingFlood, KindPoisonedTX,
		KindForwardThinking, KindWindowLadder, KindDKASAN}
}

// AllKinds lists every runnable kind, including ones newer than the frozen
// preset list — the space generators like the coverage-guided fuzzer mutate
// over.
func AllKinds() []Kind { return append(Kinds(), KindPageSpray) }

// Scenario is one serializable cell of the campaign space: every knob the
// substrates expose, with zero values meaning "the paper's default" so a
// JSON scenario only states what it perturbs. Equal scenarios always
// produce equal results (the seed drives every randomized component).
type Scenario struct {
	// ID labels the scenario in reports; Normalize derives one if empty.
	ID   string `json:"id,omitempty"`
	Kind Kind   `json:"kind"`
	// Seed drives KASLR, text image, boot jitter, and any attack RNG.
	Seed int64 `json:"seed"`

	// --- machine knobs (core.Config) ---

	// NoKASLR disables layout randomization (KASLR is on by default).
	NoKASLR bool `json:"no_kaslr,omitempty"`
	// Mode is the IOMMU invalidation policy: "deferred" (default) or
	// "strict".
	Mode string `json:"mode,omitempty"`
	// CPUs is the simulated core count (0 = core.DefaultCPUs).
	CPUs int `json:"cpus,omitempty"`
	// MemBytes is the simulated physical memory (0 = sized automatically).
	MemBytes uint64 `json:"mem_bytes,omitempty"`
	// Forwarding enables the §5.5 forwarding path.
	Forwarding bool `json:"forwarding,omitempty"`
	// OutOfLineSharedInfo applies the D3 hardening.
	OutOfLineSharedInfo bool `json:"out_of_line_shared_info,omitempty"`

	// --- driver / boot knobs ---

	// Kernel picks the §5.3 driver-footprint regime: "5.0" (default) or
	// "4.15" (HW LRO).
	Kernel string `json:"kernel,omitempty"`
	// Driver overrides the NIC model for single-boot kinds:
	// "i40e" (default), "correct", "mlx5_core-5.0", "mlx5_core-4.15".
	Driver string `json:"driver,omitempty"`
	// Queues is the RX ring count for boot studies (0 = 1).
	Queues int `json:"queues,omitempty"`
	// JitterPages is the early-boot drift amplitude; 0 means the default
	// (attacks.BootJitterPages), negative means no jitter.
	JitterPages int `json:"jitter_pages,omitempty"`

	// --- study sizes ---

	// Trials is the reboot count for boot-study and ring-flood profiling
	// (0 = 8).
	Trials int `json:"trials,omitempty"`
	// Attempts is the attack-boot count for ring-flood (0 = 2).
	Attempts int `json:"attempts,omitempty"`
	// Iterations sizes the D-KASAN workload (0 = 8).
	Iterations int `json:"iterations,omitempty"`

	// --- page-spray knobs (KindPageSpray) ---

	// SprayBlocks is how many page blocks the spray pass allocates over the
	// freed RX buffer (0 = DefaultSprayBlocks).
	SprayBlocks int `json:"spray_blocks,omitempty"`
	// SprayOrder is the buddy order of each sprayed block: 0 means "match
	// the victim buffer's own order" (the exact-overlay strategy), negative
	// means order-0 single pages.
	SprayOrder int `json:"spray_order,omitempty"`

	// SkipMetrics runs the scenario without metric collection (no registry
	// on booted machines, no snapshot in the result) — the ablation knob of
	// the overhead benchmark. Engine.SkipMetrics forces it campaign-wide.
	SkipMetrics bool `json:"skip_metrics,omitempty"`

	// --- hardening knobs ---

	// FaultSpec arms deterministic fault injection for every machine the
	// scenario boots, in faultinject.ParseSpec syntax (e.g.
	// "dma-corrupt:0.01,alloc-fail@3"). Empty means a clean run.
	FaultSpec string `json:"fault_spec,omitempty"`
	// TimeoutMS is the wall-clock deadline for one execution attempt of the
	// scenario; 0 means no deadline. On expiry the engine records a
	// structured "timeout" outcome and moves on.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Defaults applied by Normalize.
const (
	DefaultTrials     = 8
	DefaultAttempts   = 2
	DefaultIterations = 8
	// DefaultSprayBlocks is the page-spray allocation count when
	// SprayBlocks is 0. Applied at run time, not by Normalize, so specs
	// of other kinds never grow spray fields.
	DefaultSprayBlocks = 8
)

// Normalize fills derived fields (ID) and study-size defaults in place.
func (s *Scenario) Normalize(index int) {
	if s.Trials <= 0 {
		s.Trials = DefaultTrials
	}
	if s.Attempts <= 0 {
		s.Attempts = DefaultAttempts
	}
	if s.Iterations <= 0 {
		s.Iterations = DefaultIterations
	}
	if s.ID == "" {
		s.ID = fmt.Sprintf("%04d-%s-seed%d", index, s.Kind, s.Seed)
	}
}

// Validate rejects specs the runner cannot execute.
func (s *Scenario) Validate() error {
	switch s.Kind {
	case KindBootStudy, KindRingFlood, KindPoisonedTX, KindForwardThinking,
		KindWindowLadder, KindDKASAN, KindPageSpray:
	default:
		return fmt.Errorf("campaign: unknown kind %q", s.Kind)
	}
	if s.SprayBlocks < 0 {
		return fmt.Errorf("campaign: negative spray_blocks %d", s.SprayBlocks)
	}
	if s.SprayOrder > mem.MaxOrder {
		return fmt.Errorf("campaign: spray_order %d exceeds mem.MaxOrder %d", s.SprayOrder, mem.MaxOrder)
	}
	if _, err := s.iommuMode(); err != nil {
		return err
	}
	if _, err := s.kernelVersion(); err != nil {
		return err
	}
	if _, err := s.driverModel(); err != nil {
		return err
	}
	if s.FaultSpec != "" {
		if _, err := faultinject.ParseSpec(s.FaultSpec); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("campaign: negative timeout_ms %d", s.TimeoutMS)
	}
	return nil
}

// faultPlan compiles the FaultSpec into a plan for one execution attempt.
// The plan seed is the scenario seed (equal scenarios inject identically);
// the attempt number becomes the salt, so a retry re-rolls every rate-based
// decision while point-based rules still fire at their fixed ordinals.
func (s *Scenario) faultPlan(attempt int) (*faultinject.Plan, error) {
	if s.FaultSpec == "" {
		return nil, nil
	}
	plan, err := faultinject.ParseSpec(s.FaultSpec)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	plan.Seed = s.Seed
	plan.Salt = int64(attempt)
	return plan, nil
}

// iommuMode parses the Mode knob.
func (s *Scenario) iommuMode() (iommu.Mode, error) {
	switch s.Mode {
	case "", "deferred":
		return iommu.Deferred, nil
	case "strict":
		return iommu.Strict, nil
	default:
		return 0, fmt.Errorf("campaign: unknown IOMMU mode %q", s.Mode)
	}
}

// kernelVersion parses the Kernel knob.
func (s *Scenario) kernelVersion() (attacks.KernelVersion, error) {
	switch s.Kernel {
	case "", string(attacks.Kernel50):
		return attacks.Kernel50, nil
	case string(attacks.Kernel415):
		return attacks.Kernel415, nil
	default:
		return "", fmt.Errorf("campaign: unknown kernel %q", s.Kernel)
	}
}

// driverModel parses the Driver knob (single-boot kinds).
func (s *Scenario) driverModel() (netstack.DriverModel, error) {
	switch s.Driver {
	case "", netstack.DriverI40E.Name:
		return netstack.DriverI40E, nil
	case netstack.DriverCorrect.Name:
		return netstack.DriverCorrect, nil
	case netstack.DriverMlx5.Name:
		return netstack.DriverMlx5, nil
	case netstack.DriverMlx5LRO.Name:
		return netstack.DriverMlx5LRO, nil
	default:
		return netstack.DriverModel{}, fmt.Errorf("campaign: unknown driver %q", s.Driver)
	}
}

// jitter resolves the JitterPages convention (0 = default, <0 = none).
func (s *Scenario) jitter() int {
	if s.JitterPages < 0 {
		return 0
	}
	if s.JitterPages == 0 {
		return attacks.BootJitterPages
	}
	return s.JitterPages
}

// options assembles the core.New options for single-boot kinds; a non-nil
// plan arms fault injection on the booted machine.
func (s *Scenario) options(plan *faultinject.Plan) ([]core.Option, error) {
	mode, err := s.iommuMode()
	if err != nil {
		return nil, err
	}
	opts := []core.Option{
		core.WithSeed(s.Seed),
		core.WithKASLR(!s.NoKASLR),
		core.WithIOMMUMode(mode),
	}
	if s.CPUs > 0 {
		opts = append(opts, core.WithCPUs(s.CPUs))
	}
	if s.MemBytes > 0 {
		opts = append(opts, core.WithMemBytes(s.MemBytes))
	}
	if s.Forwarding {
		opts = append(opts, core.WithForwarding())
	}
	if s.OutOfLineSharedInfo {
		opts = append(opts, core.WithOutOfLineSharedInfo())
	}
	if s.SkipMetrics {
		opts = append(opts, core.WithoutMetrics())
	}
	if plan != nil {
		opts = append(opts, core.WithFaultPlan(plan))
	}
	return opts, nil
}

// LoadScenarios reads a JSON scenario array (or a {"scenarios": [...]}
// campaign document) and normalizes every entry.
func LoadScenarios(r io.Reader) ([]Scenario, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	var scs []Scenario
	if err := json.Unmarshal(data, &scs); err != nil {
		var doc struct {
			Scenarios []Scenario `json:"scenarios"`
		}
		if err2 := json.Unmarshal(data, &doc); err2 != nil || doc.Scenarios == nil {
			return nil, fmt.Errorf("campaign: parse scenarios: %w", err)
		}
		scs = doc.Scenarios
	}
	for i := range scs {
		scs[i].Normalize(i)
		if err := scs[i].Validate(); err != nil {
			return nil, fmt.Errorf("scenario %d (%s): %w", i, scs[i].ID, err)
		}
	}
	return scs, nil
}

// LoadScenarioFile is LoadScenarios over a file path.
func LoadScenarioFile(path string) ([]Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	defer f.Close()
	return LoadScenarios(f)
}

// SaveScenarios writes the set as indented JSON, suitable for LoadScenarios.
func SaveScenarios(w io.Writer, scs []Scenario) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(scs)
}
