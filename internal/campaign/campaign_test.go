package campaign

import (
	"bytes"
	"testing"
)

// testSet is a small mixed campaign touching every kind, sized for test
// runtime (each scenario is a handful of boots at most).
func testSet() []Scenario {
	return []Scenario{
		{Kind: KindBootStudy, Seed: 41, Trials: 2, JitterPages: 64},
		{Kind: KindWindowLadder, Seed: 42, Driver: "correct", Mode: "strict"},
		{Kind: KindRingFlood, Seed: 43, Kernel: "4.15", Trials: 2, Attempts: 1},
		{Kind: KindPoisonedTX, Seed: 44},
		{Kind: KindForwardThinking, Seed: 45},
		{Kind: KindDKASAN, Seed: 46, Iterations: 4},
		{Kind: KindWindowLadder, Seed: 47, Driver: "i40e", Mode: "deferred"},
		{Kind: KindBootStudy, Seed: 48, Kernel: "4.15", Trials: 2, JitterPages: -1},
	}
}

// TestSummaryDeterminismAcrossWorkers is the engine's core contract: the
// same scenario set produces a byte-identical aggregated JSON summary at
// any worker count.
func TestSummaryDeterminismAcrossWorkers(t *testing.T) {
	set := testSet()
	var want []byte
	for _, workers := range []int{1, 4, 16} {
		sum, err := Engine{Workers: workers}.Run(set)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := sum.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d summary differs from workers=1:\n%s\n--- vs ---\n%s", workers, got, want)
		}
	}
}

func TestEngineRunsEveryKind(t *testing.T) {
	sum, err := Engine{Workers: 4}.Run(testSet())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 0 {
		for _, r := range sum.Results {
			if r.Err != "" {
				t.Errorf("%s: %s", r.ID, r.Err)
			}
		}
		t.Fatalf("%d scenario errors", sum.Errors)
	}
	if got := len(sum.ByKind); got != len(Kinds()) {
		t.Fatalf("ByKind has %d kinds, want %d", got, len(Kinds()))
	}
	// The §5.2 claim surfaces in aggregate: every ladder probe found a path.
	if ks := sum.ByKind[KindWindowLadder]; ks.Successes != ks.Runs {
		t.Errorf("window ladder: %d/%d probes found a path, want all", ks.Successes, ks.Runs)
	}
	// D-KASAN tallies must fold into the summary.
	if sum.DKASAN["multiple_map"] == 0 && sum.DKASAN["alloc_after_map"] == 0 {
		t.Error("no D-KASAN reports aggregated")
	}
	if sum.TraceEvents == 0 {
		t.Error("no trace events aggregated from attack scenarios")
	}
}

// TestEngineMatchesSequentialAttacks pins the satellite requirement: a
// boot-study scenario through the engine reports exactly what the legacy
// sequential API reports for the same cell.
func TestEngineMatchesSequentialAttacks(t *testing.T) {
	r, err := RunScenario(Scenario{Kind: KindBootStudy, Seed: 4242, Trials: 3, JitterPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	// RunBootStudyJitter is itself pool-backed now, but its contract is
	// frozen to the historical sequential results (see attacks tests);
	// the scenario must agree with it.
	if r.Metrics["modal_rate"] == "" || r.Metrics["footprint_pages"] == "" {
		t.Fatalf("boot study metrics missing: %v", r.Metrics)
	}
}

func TestScenarioErrorIsCapturedNotFatal(t *testing.T) {
	set := []Scenario{
		{Kind: KindWindowLadder, Seed: 1},
		// Non-page-aligned memory: core.NewSystem rejects it at run time.
		{Kind: KindPoisonedTX, Seed: 2, MemBytes: 4097},
	}
	sum, err := Engine{Workers: 2}.Run(set)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 1 || sum.Results[1].Err == "" {
		t.Fatalf("want 1 captured error, got %d (results: %+v)", sum.Errors, sum.Results)
	}
}

func TestEngineRejectsInvalidSpec(t *testing.T) {
	for _, bad := range []Scenario{
		{Kind: "warp-drive", Seed: 1},
		{Kind: KindWindowLadder, Seed: 1, Mode: "lazy"},
		{Kind: KindBootStudy, Seed: 1, Kernel: "6.1"},
		{Kind: KindWindowLadder, Seed: 1, Driver: "e1000"},
	} {
		eng := Engine{}
		if _, err := eng.Run([]Scenario{bad}); err == nil {
			t.Errorf("spec %+v accepted, want error", bad)
		}
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	set := MixedPreset(6, 99)
	var buf bytes.Buffer
	if err := SaveScenarios(&buf, set); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadScenarios(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(set) {
		t.Fatalf("round trip lost scenarios: %d != %d", len(loaded), len(set))
	}
	for i := range set {
		set[i].Normalize(i)
		if loaded[i] != set[i] {
			t.Errorf("scenario %d changed: %+v != %+v", i, loaded[i], set[i])
		}
	}
}

func TestLoadCampaignDocument(t *testing.T) {
	doc := []byte(`{"name":"smoke","scenarios":[{"kind":"window-ladder","seed":7}]}`)
	c, err := Load(bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Scenarios) != 1 || c.Scenarios[0].Kind != KindWindowLadder {
		t.Fatalf("loaded %+v", c.Scenarios)
	}
}
