package campaign

// Content-addressed result caching: scenarios are pure functions of their
// spec (the seed drives every randomized component), so a result recorded
// under a scenario's Digest can be replayed in any later campaign that
// schedules the same spec — same preset re-run, overlapping grid sweep,
// resumed fuzz corpus — without executing anything. The Engine consults a
// Store as a pre-execution gate; internal/resultstore provides the
// persistent implementation (an append-only binary log modeled on ninja's
// build/deps logs), and tests substitute trivial in-memory maps.

// Store is a content-addressed scenario-result cache the engine consults
// before executing a scenario. Get returns the recorded result for a digest
// (the stored copy must not be mutated by callers other than the engine's
// replay, which only re-stamps the position-derived ID on a shallow copy);
// Put records a freshly executed result under its digest, overwriting any
// previous record for the same digest. Implementations must be safe for
// concurrent use — engine workers call both from every goroutine.
type Store interface {
	Get(d Digest) (*Result, bool)
	Put(d Digest, r *Result) error
}

// Cacheable reports whether a result may be recorded in a Store. Only
// outcomes that are pure functions of the spec qualify: completed runs
// (ok/miss/error) and panics (stacks are sanitized to be byte-identical)
// replay faithfully, but a timeout depends on wall-clock machine speed and
// a quarantined short-circuit on cross-job breaker state, so recording
// either would replay an accident forever.
func Cacheable(r *Result) bool {
	return r.Outcome != OutcomeTimeout && r.Outcome != OutcomeQuarantined
}

// cacheReplay builds the replay copy of a stored result for one scheduled
// scenario: a shallow copy with the position-derived ID re-stamped, so the
// aggregated summary is byte-identical to an executed run's even when the
// spec sits at a different index than it did when recorded. Only ID is
// written; every shared field (metrics map, snapshot) stays aliased to the
// stored copy, which the engine never mutates.
func cacheReplay(r *Result, s *Scenario) *Result {
	rr := *r
	rr.ID = s.ID
	return &rr
}

// cachePutCopy builds the canonical stored copy of a freshly executed
// result: a shallow copy with the position-derived ID blanked, mirroring
// how ScenarioDigest blanks the spec ID, so a record is
// position-independent.
func cachePutCopy(r *Result) *Result {
	rr := *r
	rr.ID = ""
	return &rr
}
