package campaign

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

func journalSet() []Scenario {
	set := make([]Scenario, 8)
	for i := range set {
		set[i] = Scenario{Kind: KindWindowLadder, Seed: int64(500 + i)}
	}
	return set
}

// runWithJournal runs the set journaling to path, restoring from it first
// when resume is set. Returns the summary and how many scenarios actually
// executed (as opposed to being restored).
func runWithJournal(t *testing.T, path string, set []Scenario, resume bool, workers int) (*Summary, int) {
	t.Helper()
	eng := Engine{Workers: workers}
	if resume {
		restored, err := LoadJournal(path, set)
		if err != nil {
			t.Fatal(err)
		}
		eng.Completed = restored
	}
	j, err := OpenJournal(path, set, resume)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	eng.Journal = j
	var executed atomic.Int64
	eng.OnResult = func(int, *Result) { executed.Add(1) }
	sum, err := eng.Run(set)
	if err != nil {
		t.Fatal(err)
	}
	return sum, int(executed.Load())
}

func TestJournalResumeMatchesUninterruptedRun(t *testing.T) {
	dir := t.TempDir()
	set := journalSet()

	// The uninterrupted reference run.
	full, ran := runWithJournal(t, filepath.Join(dir, "full.jsonl"), set, false, 4)
	if ran != len(set) {
		t.Fatalf("reference run executed %d/%d", ran, len(set))
	}
	wantJSON, err := full.JSON()
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a kill after 3 completed scenarios: write a journal holding
	// only the records for indexes 0..2, as if the process died mid-run.
	interrupted := filepath.Join(dir, "interrupted.jsonl")
	j, err := OpenJournal(interrupted, set, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Record(i, full.Results[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: only the 5 unfinished scenarios may execute, and the final
	// summary must be byte-identical to the uninterrupted run's.
	sum, ran := runWithJournal(t, interrupted, set, true, 4)
	if ran != len(set)-3 {
		t.Fatalf("resume executed %d scenarios, want %d", ran, len(set)-3)
	}
	gotJSON, err := sum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatal("resumed summary differs from uninterrupted run")
	}

	// The resumed journal is now complete: restoring from it executes 0.
	sum2, ran := runWithJournal(t, interrupted, set, true, 4)
	if ran != 0 {
		t.Fatalf("second resume executed %d scenarios, want 0", ran)
	}
	got2, _ := sum2.JSON()
	if !bytes.Equal(got2, wantJSON) {
		t.Fatal("fully-restored summary differs")
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	set := journalSet()[:3]
	path := filepath.Join(dir, "torn.jsonl")
	full, _ := runWithJournal(t, path, set, false, 1)

	// A crash mid-append leaves a torn (newline-less, half-written) line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"index":2,"result":{"id":"half`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	restored, err := LoadJournal(path, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 3 {
		t.Fatalf("restored %d records, want 3 intact ones", len(restored))
	}

	// Resume-for-append truncates the torn tail; a fresh record then reads
	// back cleanly.
	j, err := OpenJournal(path, set, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(1, full.Results[1]); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := LoadJournal(path, set); err != nil {
		t.Fatalf("journal unreadable after torn-tail truncation: %v", err)
	}
}

func TestJournalRejectsForeignScenarioSet(t *testing.T) {
	dir := t.TempDir()
	set := journalSet()
	path := filepath.Join(dir, "a.jsonl")
	j, err := OpenJournal(path, set, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	other := journalSet()
	other[0].Seed = 9999
	if _, err := LoadJournal(path, other); err == nil {
		t.Fatal("journal accepted a different scenario set")
	}
	shorter := set[:4]
	if _, err := LoadJournal(path, shorter); err == nil {
		t.Fatal("journal accepted a different scenario count")
	}
}

func TestJournalResumeOnMissingFileStartsFresh(t *testing.T) {
	dir := t.TempDir()
	set := journalSet()[:2]
	path := filepath.Join(dir, "never-written.jsonl")
	if restored, err := LoadJournal(path, set); err != nil || len(restored) != 0 {
		t.Fatalf("LoadJournal on missing file: %v, %d records", err, len(restored))
	}
	j, err := OpenJournal(path, set, true)
	if err != nil {
		t.Fatalf("resume-open on missing file: %v", err)
	}
	j.Close()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("journal not created: %v", err)
	}
}

func TestCancelledScenariosAreNotJournaled(t *testing.T) {
	dir := t.TempDir()
	// Every scenario stalls 250ms; cancel fires mid-first-wave, so claimed
	// scenarios abandon (nil result) and must not be journaled.
	set := make([]Scenario, 6)
	for i := range set {
		set[i] = Scenario{Kind: KindWindowLadder, Seed: int64(i), FaultSpec: "scenario-stall@1"}
	}
	path := filepath.Join(dir, "cancelled.jsonl")
	j, err := OpenJournal(path, set, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	eng := Engine{Workers: 2, Journal: j}
	go cancel() // cancel immediately; stalls notice via ctx.Done
	_, err = eng.RunCtx(ctx, set)
	j.Close()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	restored, err := LoadJournal(path, set)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range restored {
		if r.Outcome != "" || r.Err != "" {
			t.Fatalf("journaled record %d is not a clean completion: outcome=%q err=%q", i, r.Outcome, r.Err)
		}
	}
}
