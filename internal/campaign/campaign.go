// Package campaign turns the repo's one-off attack studies into
// declarative, parallel, reproducible campaigns — the shape of every result
// in the paper's evaluation (§6: hundreds of boots × attack attempts ×
// hardware configurations). It has four parts:
//
//   - Scenario: a serializable spec covering every knob the substrates
//     expose (core.Config fields, kernel version, driver model, ring-queue
//     count, boot jitter) plus which attack or probe to run;
//   - Engine: a worker pool that shards scenarios across goroutines, each
//     booting an isolated core.System (built on internal/par, so results
//     are byte-identical at any worker count);
//   - Grid / Mutator: deterministic scenario generators — exhaustive cross
//     products and seeded DyMA-Fuzz-style perturbations;
//   - Aggregate / Summary: an order-stable merge of per-scenario results
//     (success rates, Fig. 7 window-path histograms, escalation counts,
//     trace-ring drops, D-KASAN tallies) with deterministic JSON encoding.
//
// cmd/campaign is the CLI; attacks.RunBootStudy and
// attacks.RingFloodCampaign run on the same par substrate, so the legacy
// sequential entry points are thin wrappers over the engine's pool.
package campaign

import (
	"fmt"
	"io"
	"os"
)

// Campaign is the on-disk document: a named scenario set plus a default
// worker count. cmd/campaign loads/saves these.
type Campaign struct {
	Name      string     `json:"name,omitempty"`
	Workers   int        `json:"workers,omitempty"`
	Scenarios []Scenario `json:"scenarios"`
}

// Run executes the campaign with its own worker default.
func (c *Campaign) Run() (*Summary, error) {
	return Engine{Workers: c.Workers}.Run(c.Scenarios)
}

// Load reads a campaign document (or bare scenario array) from JSON.
func Load(r io.Reader) (*Campaign, error) {
	scs, err := LoadScenarios(r)
	if err != nil {
		return nil, err
	}
	return &Campaign{Scenarios: scs}, nil
}

// LoadFile is Load over a path.
func LoadFile(path string) (*Campaign, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// Presets generate ready-to-run scenario sets for the CLI and tests. All
// are pure functions of (n, seed).

// MixedPreset is the §6-shaped mixed campaign: boot studies, ring floods,
// and window-ladder probes with randomized knobs. Study sizes are kept
// small per scenario — campaigns get their statistics from scenario count,
// not per-scenario trial count.
func MixedPreset(n int, seed int64) []Scenario {
	m := NewMutator(Scenario{Seed: seed, Trials: 4, Attempts: 2}, seed)
	m.Kinds = []Kind{KindBootStudy, KindRingFlood, KindWindowLadder}
	return m.Generate(n)
}

// FuzzPreset mutates across every kind (adds Poisoned TX, Forward Thinking,
// and D-KASAN scenarios to the mix).
func FuzzPreset(n int, seed int64) []Scenario {
	m := NewMutator(Scenario{Seed: seed, Trials: 4, Attempts: 2, Iterations: 6}, seed)
	return m.Generate(n)
}

// BootStudyPreset sweeps the §5.3 grid: kernel × jitter amplitude, n/8
// replicas per cell (minimum 1).
func BootStudyPreset(n int, seed int64) []Scenario {
	replicas := n / 8
	if replicas < 1 {
		replicas = 1
	}
	return Grid(Scenario{Kind: KindBootStudy, Seed: seed, Trials: 8}, GridSpec{
		Kernels:  []string{"5.0", "4.15"},
		Jitters:  []int{128, 512, 1024, 2048},
		Replicas: replicas,
	})
}

// RingFloodPreset sweeps ring-flood success across kernels and modes.
func RingFloodPreset(n int, seed int64) []Scenario {
	replicas := n / 4
	if replicas < 1 {
		replicas = 1
	}
	return Grid(Scenario{Kind: KindRingFlood, Seed: seed, Trials: 6, Attempts: 2}, GridSpec{
		Kernels:  []string{"5.0", "4.15"},
		Modes:    []string{"deferred", "strict"},
		Replicas: replicas,
	})
}

// LadderPreset is the Fig. 7 matrix as a campaign: driver ordering × IOMMU
// mode, n/4 replicas per cell.
func LadderPreset(n int, seed int64) []Scenario {
	replicas := n / 4
	if replicas < 1 {
		replicas = 1
	}
	return Grid(Scenario{Kind: KindWindowLadder, Seed: seed}, GridSpec{
		Drivers:  []string{"i40e", "correct"},
		Modes:    []string{"deferred", "strict"},
		Replicas: replicas,
	})
}

// Presets maps preset names to generators (stable iteration via sorted
// keys at the call site).
var Presets = map[string]func(n int, seed int64) []Scenario{
	"mixed":     MixedPreset,
	"fuzz":      FuzzPreset,
	"bootstudy": BootStudyPreset,
	"ringflood": RingFloodPreset,
	"ladder":    LadderPreset,
}
