package campaign

import "math/rand"

// The mutator generates campaign grids and randomized explorations of the
// scenario space without hand-written loops, in the spirit of DyMA-Fuzz's
// DMA-channel configuration mutation: start from a base scenario and
// systematically sweep or perturb its dimensions. All generation is driven
// by the base scenario's Seed, so a campaign's scenario set — and therefore
// its summary — is reproducible from (base, counts) alone.

// GridSpec lists the axis values a Grid sweep crosses. Nil axes keep the
// base scenario's value; Replicas > 1 repeats each cell with fresh seeds
// (success *rates* need more than one draw per cell).
type GridSpec struct {
	Kinds    []Kind
	Modes    []string
	Kernels  []string
	Drivers  []string
	Queues   []int
	Jitters  []int
	Replicas int
}

// orDefault returns the axis or a single-element slice holding the base
// value, so the cross product always has every dimension.
func orDefault[T any](axis []T, base T) []T {
	if len(axis) == 0 {
		return []T{base}
	}
	return axis
}

// Grid expands base over the spec's cross product. Cell seeds are derived
// deterministically from base.Seed and the cell index; scenario IDs are
// assigned by Normalize at run time.
func Grid(base Scenario, spec GridSpec) []Scenario {
	replicas := spec.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	var out []Scenario
	for _, kind := range orDefault(spec.Kinds, base.Kind) {
		for _, mode := range orDefault(spec.Modes, base.Mode) {
			for _, kernel := range orDefault(spec.Kernels, base.Kernel) {
				for _, driver := range orDefault(spec.Drivers, base.Driver) {
					for _, queues := range orDefault(spec.Queues, base.Queues) {
						for _, jitter := range orDefault(spec.Jitters, base.JitterPages) {
							for rep := 0; rep < replicas; rep++ {
								s := base
								s.ID = ""
								s.Kind = kind
								s.Mode = mode
								s.Kernel = kernel
								s.Driver = driver
								s.Queues = queues
								s.JitterPages = jitter
								// Stride seeds so replica and profiling
								// ranges never collide across cells.
								s.Seed = base.Seed + int64(len(out))*10_007
								out = append(out, s)
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Mutator draws randomized perturbations of a base scenario from a seeded
// stream. The same (base, seed) always yields the same scenario sequence.
type Mutator struct {
	base Scenario
	rng  *rand.Rand
	// Kinds limits which kinds mutation may select (nil = all).
	Kinds []Kind
	n     int
}

// NewMutator builds a mutator; seed 0 falls back to base.Seed.
func NewMutator(base Scenario, seed int64) *Mutator {
	if seed == 0 {
		seed = base.Seed
	}
	return &Mutator{base: base, rng: rand.New(rand.NewSource(seed ^ 0xD1CE))}
}

// mutations are the per-dimension perturbations; each fires independently
// with probability 1/3, and the seed is always redrawn.
var mutations = []func(*rand.Rand, *Scenario){
	func(rng *rand.Rand, s *Scenario) {
		s.Mode = []string{"deferred", "strict"}[rng.Intn(2)]
	},
	func(rng *rand.Rand, s *Scenario) {
		s.Kernel = []string{"5.0", "4.15"}[rng.Intn(2)]
	},
	func(rng *rand.Rand, s *Scenario) {
		s.Driver = []string{"i40e", "correct"}[rng.Intn(2)]
	},
	func(rng *rand.Rand, s *Scenario) {
		s.Queues = 1 << rng.Intn(3) // 1, 2, 4
	},
	func(rng *rand.Rand, s *Scenario) {
		s.JitterPages = 64 << rng.Intn(6) // 64 .. 2048
	},
	func(rng *rand.Rand, s *Scenario) {
		s.Forwarding = rng.Intn(2) == 1
	},
	func(rng *rand.Rand, s *Scenario) {
		s.OutOfLineSharedInfo = rng.Intn(2) == 1
	},
	func(rng *rand.Rand, s *Scenario) {
		s.NoKASLR = rng.Intn(4) == 0 // KASLR mostly on, as deployed
	},
}

// Next draws one mutated scenario.
func (m *Mutator) Next() Scenario {
	s := m.base
	s.ID = ""
	kinds := m.Kinds
	if len(kinds) == 0 {
		kinds = Kinds()
	}
	s.Kind = kinds[m.rng.Intn(len(kinds))]
	for _, mutate := range mutations {
		if m.rng.Intn(3) == 0 {
			mutate(m.rng, &s)
		}
	}
	m.n++
	s.Seed = m.base.Seed + int64(m.n)*104_729 + int64(m.rng.Intn(10_000))
	return s
}

// Generate draws n scenarios.
func (m *Mutator) Generate(n int) []Scenario {
	out := make([]Scenario, n)
	for i := range out {
		out[i] = m.Next()
	}
	return out
}
