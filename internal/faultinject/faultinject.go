// Package faultinject is the deterministic chaos layer of the simulator:
// a seed-driven fault plan that the execution substrates consult at their
// natural failure points — DMA writes (internal/dma), IOMMU translations
// (internal/iommu), RX ring refills (internal/netstack), page allocations
// (internal/mem), and scenario dispatch (internal/campaign).
//
// The paper's whole argument is that hardware misbehaves in exactly these
// places; this package lets campaigns misbehave on purpose, repeatably. A
// Plan is a set of per-class rules, rate-based ("corrupt 1% of DMA writes")
// or point-based ("fail the 3rd allocation"). Every decision is a pure
// function of (plan seed, plan salt, scope seed, class, per-class
// opportunity counter), so a campaign under injection stays byte-identical
// at any worker count — the same determinism contract the rest of the repo
// enforces (DESIGN.md §7).
//
// Hook direction: each consuming package defines its own small interface
// (dma.WriteInjector, iommu.Injector, netstack.RefillInjector,
// mem.AllocInjector) and *Injector satisfies all of them structurally, so
// no substrate imports this package for wiring — only core does, through
// core.WithFaultPlan.
package faultinject

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"dmafault/internal/iommu"
	"dmafault/internal/metrics"
	"dmafault/internal/sim"
)

// Class enumerates the injectable fault classes. The order is the wire
// order of metrics and spec rendering; append only.
type Class uint8

const (
	// DMACorrupt flips one byte of a device DMA write (sub-page corruption
	// in the Thunderclap/peripheral-misbehavior spirit).
	DMACorrupt Class = iota
	// DMADrop silently discards a device DMA write (a lost posted write).
	DMADrop
	// IOMMUStall delays a translation, advancing the virtual clock — which
	// can push a deferred-flush deadline past its window.
	IOMMUStall
	// IOMMUFault forces a spurious translation fault (counted by the IOMMU
	// like any real fault, so injected-vs-detected is directly readable).
	IOMMUFault
	// RingDrop loses an RX descriptor refill: the slot stays unposted.
	RingDrop
	// AllocFail makes a page allocation fail transiently (allocator
	// pressure); the error wraps ErrTransient so callers can retry.
	AllocFail
	// ScenarioPanic panics a campaign scenario at dispatch — exercising the
	// engine's panic isolation.
	ScenarioPanic
	// ScenarioStall blocks a campaign scenario at dispatch for longer than
	// any sane per-scenario deadline — exercising timeout handling.
	ScenarioStall

	numClasses
)

var classNames = [numClasses]string{
	"dma-corrupt",
	"dma-drop",
	"iommu-stall",
	"iommu-fault",
	"ring-drop",
	"alloc-fail",
	"scenario-panic",
	"scenario-stall",
}

// String names the class as ParseSpec spells it.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Classes lists every fault class in stable order.
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// ClassByName resolves a spec name back to its class.
func ClassByName(name string) (Class, bool) {
	for i, n := range classNames {
		if n == name {
			return Class(i), true
		}
	}
	return 0, false
}

// ErrTransient marks injected failures that a retry with a fresh salt may
// clear. Substrates wrap it with %w; the campaign engine classifies with
// errors.Is.
var ErrTransient = errors.New("injected transient fault")

// TranslateStallNanos is the virtual-time cost of one injected IOMMU stall:
// comfortably larger than an invalidation (~2000 cycles) so a stall can
// carry a deferred-flush deadline past its window.
const TranslateStallNanos = 5 * sim.Microsecond

// Rule injects one class at a rate, at fixed opportunity ordinals, or both.
type Rule struct {
	Class Class `json:"class"`
	// Rate is the per-opportunity injection probability in [0, 1].
	Rate float64 `json:"rate,omitempty"`
	// Points are 1-based opportunity ordinals that always inject,
	// independent of the salt (so "fail the 1st alloc" fails every attempt).
	Points []uint64 `json:"points,omitempty"`
}

// Plan is a serializable fault-injection plan: the decision seed plus the
// per-class rules. The zero Salt is attempt 0; the campaign engine bumps it
// per retry so rate-based decisions are redrawn.
type Plan struct {
	Seed  int64  `json:"seed,omitempty"`
	Salt  int64  `json:"salt,omitempty"`
	Rules []Rule `json:"rules"`
}

// Validate rejects rules the injector cannot honor.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for _, r := range p.Rules {
		if r.Class >= numClasses {
			return fmt.Errorf("faultinject: unknown class %d", r.Class)
		}
		if r.Rate < 0 || r.Rate > 1 {
			return fmt.Errorf("faultinject: %s rate %v outside [0,1]", r.Class, r.Rate)
		}
		if r.Rate == 0 && len(r.Points) == 0 {
			return fmt.Errorf("faultinject: %s rule has neither rate nor points", r.Class)
		}
		for _, pt := range r.Points {
			if pt == 0 {
				return fmt.Errorf("faultinject: %s point ordinals are 1-based", r.Class)
			}
		}
	}
	return nil
}

// ParseSpec compiles the compact rule grammar used by flags and scenario
// specs: comma-separated entries of the form
//
//	class:RATE          inject at probability RATE per opportunity
//	class@P1+P2+...     inject at the P1st, P2nd, ... opportunity (1-based)
//	class:RATE@P1+...   both
//
// e.g. "dma-corrupt:0.01,alloc-fail@1,scenario-panic:0.2". Seed and Salt
// are left zero; callers bind them (the campaign engine uses the scenario
// seed and the attempt number).
func ParseSpec(spec string) (*Plan, error) {
	plan := &Plan{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		rest := entry
		var rule Rule
		if at := strings.IndexByte(rest, '@'); at >= 0 {
			for _, p := range strings.Split(rest[at+1:], "+") {
				n, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("faultinject: bad point %q in %q", p, entry)
				}
				rule.Points = append(rule.Points, n)
			}
			rest = rest[:at]
		}
		if colon := strings.IndexByte(rest, ':'); colon >= 0 {
			rate, err := strconv.ParseFloat(strings.TrimSpace(rest[colon+1:]), 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad rate in %q", entry)
			}
			rule.Rate = rate
			rest = rest[:colon]
		}
		c, ok := ClassByName(strings.TrimSpace(rest))
		if !ok {
			return nil, fmt.Errorf("faultinject: unknown class %q (have %s)",
				strings.TrimSpace(rest), strings.Join(classNames[:], ", "))
		}
		rule.Class = c
		plan.Rules = append(plan.Rules, rule)
	}
	if len(plan.Rules) == 0 {
		return nil, fmt.Errorf("faultinject: empty spec %q", spec)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// compiled is one rule ready for O(1) decisions.
type compiled struct {
	active bool
	rate   float64
	points map[uint64]bool
}

// Injector makes the plan's decisions for one scope (one booted machine or
// one scenario attempt). It is NOT safe for concurrent use: each scope owns
// its injector, exactly as each scope owns its machine. All methods are
// nil-receiver safe and report "no fault".
type Injector struct {
	seed  uint64
	rules [numClasses]compiled
	ops   [numClasses]uint64
	hits  [numClasses]uint64
}

// New compiles a plan for a scope (typically the machine seed). A nil or
// empty plan yields a nil injector, which every method treats as "inject
// nothing".
func New(plan *Plan, scope int64) *Injector {
	if plan == nil || len(plan.Rules) == 0 {
		return nil
	}
	in := &Injector{
		seed: splitmix(splitmix(uint64(plan.Seed)) ^ splitmix(uint64(plan.Salt)+0x5a17) ^ uint64(scope)),
	}
	for _, r := range plan.Rules {
		c := &in.rules[r.Class]
		c.active = true
		c.rate = r.Rate
		if len(r.Points) > 0 {
			if c.points == nil {
				c.points = make(map[uint64]bool, len(r.Points))
			}
			for _, p := range r.Points {
				c.points[p] = true
			}
		}
	}
	return in
}

// splitmix is the splitmix64 finalizer: a bijective avalanche mix.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// decision is the per-opportunity hash stream for a class.
func (in *Injector) decision(c Class, n uint64) uint64 {
	return splitmix(in.seed ^ splitmix(uint64(c+1)<<32^n))
}

// Fire counts one opportunity of the class and decides whether to inject.
func (in *Injector) Fire(c Class) bool {
	if in == nil || c >= numClasses {
		return false
	}
	in.ops[c]++
	r := &in.rules[c]
	if !r.active {
		return false
	}
	n := in.ops[c]
	hit := r.points[n]
	if !hit && r.rate > 0 {
		// 53-bit uniform draw in [0,1).
		hit = float64(in.decision(c, n)>>11)/(1<<53) < r.rate
	}
	if hit {
		in.hits[c]++
	}
	return hit
}

// Counts returns (opportunities, injections) for a class — the
// injected-vs-detected numerator tests and reports read.
func (in *Injector) Counts(c Class) (ops, injected uint64) {
	if in == nil || c >= numClasses {
		return 0, 0
	}
	return in.ops[c], in.hits[c]
}

// --- substrate hooks (each satisfies a consumer-defined interface) ---

// InjectDeviceWrite implements dma.WriteInjector: it may drop the write
// entirely (true) or corrupt one byte of buf in place. The bus hands it a
// private copy of the payload, so corruption never mutates driver memory.
func (in *Injector) InjectDeviceWrite(dev iommu.DeviceID, va iommu.IOVA, buf []byte) (drop bool) {
	if in == nil {
		return false
	}
	if in.Fire(DMADrop) {
		return true
	}
	if in.Fire(DMACorrupt) && len(buf) > 0 {
		// Reuse the decision stream (different constant) for position and
		// flip pattern; the xor is forced nonzero so the byte always changes.
		h := splitmix(in.decision(DMACorrupt, in.ops[DMACorrupt]) ^ 0xc0ee)
		buf[h%uint64(len(buf))] ^= byte(h>>8) | 1
	}
	return false
}

// InjectTranslate implements iommu.Injector: a positive stall advances the
// virtual clock before the walk; spurious forces a not-present fault.
func (in *Injector) InjectTranslate(dev iommu.DeviceID, v iommu.IOVA, write bool) (stall sim.Nanos, spurious bool) {
	if in == nil {
		return 0, false
	}
	if in.Fire(IOMMUStall) {
		stall = TranslateStallNanos
	}
	return stall, in.Fire(IOMMUFault)
}

// InjectRXRefillDrop implements netstack.RefillInjector: true loses the
// descriptor refill for this round (the slot stays unposted).
func (in *Injector) InjectRXRefillDrop(dev iommu.DeviceID, slot int) bool {
	return in.Fire(RingDrop)
}

// InjectAllocFailure implements mem.AllocInjector: true makes the page
// allocation fail with an error wrapping ErrTransient.
func (in *Injector) InjectAllocFailure() bool {
	return in.Fire(AllocFail)
}

// --- metrics ---

// Describe implements metrics.Source: opportunity and injection counters
// per class, so injected-vs-detected is readable from any snapshot.
func (in *Injector) Describe() []metrics.Desc {
	return []metrics.Desc{
		{Name: "faultinject_opportunities_total",
			Help: "Fault-injection decision points consulted, per class.", Kind: metrics.KindCounter},
		{Name: "faultinject_injected_total",
			Help: "Faults actually injected, per class.", Kind: metrics.KindCounter},
	}
}

// Collect implements metrics.Source. Every class is emitted (zeros
// included) so sample sets are structurally identical across machines.
func (in *Injector) Collect(emit func(string, metrics.Sample)) {
	if in == nil {
		return
	}
	for c := Class(0); c < numClasses; c++ {
		emit("faultinject_opportunities_total",
			metrics.Sample{Labels: metrics.L("class", c.String()), Value: float64(in.ops[c])})
		emit("faultinject_injected_total",
			metrics.Sample{Labels: metrics.L("class", c.String()), Value: float64(in.hits[c])})
	}
}
