package faultinject

import (
	"testing"

	"dmafault/internal/metrics"
)

func plan(rules ...Rule) *Plan { return &Plan{Seed: 2021, Rules: rules} }

func TestParseSpecForms(t *testing.T) {
	cases := []struct {
		spec string
		want []Rule
	}{
		{"dma-corrupt:0.01", []Rule{{Class: DMACorrupt, Rate: 0.01}}},
		{"alloc-fail@3", []Rule{{Class: AllocFail, Points: []uint64{3}}}},
		{"ring-drop@1+4+9", []Rule{{Class: RingDrop, Points: []uint64{1, 4, 9}}}},
		{"iommu-stall:0.5@2", []Rule{{Class: IOMMUStall, Rate: 0.5, Points: []uint64{2}}}},
		{"dma-drop:1, scenario-panic@1", []Rule{
			{Class: DMADrop, Rate: 1},
			{Class: ScenarioPanic, Points: []uint64{1}},
		}},
	}
	for _, c := range cases {
		p, err := ParseSpec(c.spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.spec, err)
		}
		if len(p.Rules) != len(c.want) {
			t.Fatalf("ParseSpec(%q): %d rules, want %d", c.spec, len(p.Rules), len(c.want))
		}
		for i, r := range p.Rules {
			w := c.want[i]
			if r.Class != w.Class || r.Rate != w.Rate || len(r.Points) != len(w.Points) {
				t.Fatalf("ParseSpec(%q) rule %d = %+v, want %+v", c.spec, i, r, w)
			}
			for j := range r.Points {
				if r.Points[j] != w.Points[j] {
					t.Fatalf("ParseSpec(%q) rule %d points = %v, want %v", c.spec, i, r.Points, w.Points)
				}
			}
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"",                 // no rules
		"  , ,",            // no rules after trimming
		"warp-core:0.1",    // unknown class
		"dma-corrupt:2.0",  // rate out of range
		"dma-corrupt:-0.1", // negative rate
		"dma-corrupt",      // neither rate nor points
		"alloc-fail@0",     // points are 1-based
		"alloc-fail@x",     // non-numeric point
		"dma-corrupt:x",    // non-numeric rate
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q): expected error", spec)
		}
	}
}

func TestClassRoundTrip(t *testing.T) {
	for _, c := range Classes() {
		got, ok := ClassByName(c.String())
		if !ok || got != c {
			t.Fatalf("ClassByName(%q) = %v, %v", c.String(), got, ok)
		}
	}
	if _, ok := ClassByName("nope"); ok {
		t.Fatal("ClassByName accepted an unknown name")
	}
}

func TestNilAndEmptyPlansYieldNilInjector(t *testing.T) {
	if in := New(nil, 7); in != nil {
		t.Fatal("New(nil) != nil")
	}
	if in := New(&Plan{}, 7); in != nil {
		t.Fatal("New(empty plan) != nil")
	}
}

func TestNilInjectorIsSafe(t *testing.T) {
	var in *Injector
	if in.Fire(DMACorrupt) {
		t.Fatal("nil injector fired")
	}
	if ops, hits := in.Counts(AllocFail); ops != 0 || hits != 0 {
		t.Fatal("nil injector counted")
	}
	buf := []byte{1, 2, 3}
	if in.InjectDeviceWrite(1, 0x1000, buf) {
		t.Fatal("nil injector dropped a write")
	}
	if buf[0] != 1 || buf[1] != 2 || buf[2] != 3 {
		t.Fatal("nil injector corrupted a write")
	}
	if stall, spurious := in.InjectTranslate(1, 0x1000, true); stall != 0 || spurious {
		t.Fatal("nil injector stalled/faulted a translation")
	}
	if in.InjectRXRefillDrop(1, 0) {
		t.Fatal("nil injector dropped a refill")
	}
	if in.InjectAllocFailure() {
		t.Fatal("nil injector failed an alloc")
	}
	in.Collect(nil) // must not panic, must not call the (nil) emit
}

func TestFireStreamDeterministic(t *testing.T) {
	p := plan(Rule{Class: DMACorrupt, Rate: 0.3}, Rule{Class: AllocFail, Rate: 0.1})
	a := New(p, 42)
	b := New(p, 42)
	for i := 0; i < 500; i++ {
		if a.Fire(DMACorrupt) != b.Fire(DMACorrupt) {
			t.Fatalf("DMACorrupt decision %d diverged between equal injectors", i)
		}
		if a.Fire(AllocFail) != b.Fire(AllocFail) {
			t.Fatalf("AllocFail decision %d diverged between equal injectors", i)
		}
	}
	aops, ahits := a.Counts(DMACorrupt)
	bops, bhits := b.Counts(DMACorrupt)
	if aops != bops || ahits != bhits {
		t.Fatalf("counts diverged: (%d,%d) vs (%d,%d)", aops, ahits, bops, bhits)
	}
	if ahits == 0 || ahits == aops {
		t.Fatalf("rate 0.3 over %d ops hit %d times — stream looks degenerate", aops, ahits)
	}
}

func TestScopeAndSaltChangeRateDecisions(t *testing.T) {
	p := plan(Rule{Class: DMACorrupt, Rate: 0.5})
	salted := &Plan{Seed: p.Seed, Salt: 1, Rules: p.Rules}
	base := New(p, 42)
	otherScope := New(p, 43)
	otherSalt := New(salted, 42)
	diffScope, diffSalt := 0, 0
	for i := 0; i < 200; i++ {
		d := base.Fire(DMACorrupt)
		if d != otherScope.Fire(DMACorrupt) {
			diffScope++
		}
		if d != otherSalt.Fire(DMACorrupt) {
			diffSalt++
		}
	}
	if diffScope == 0 {
		t.Fatal("scope change did not perturb the decision stream")
	}
	if diffSalt == 0 {
		t.Fatal("salt change did not perturb the decision stream")
	}
}

func TestPointsFireAtExactOrdinalsRegardlessOfSalt(t *testing.T) {
	for _, salt := range []int64{0, 1, 99} {
		p := &Plan{Seed: 7, Salt: salt, Rules: []Rule{{Class: AllocFail, Points: []uint64{1, 5}}}}
		in := New(p, 1234)
		for i := uint64(1); i <= 10; i++ {
			want := i == 1 || i == 5
			if got := in.Fire(AllocFail); got != want {
				t.Fatalf("salt %d: opportunity %d fired=%v, want %v", salt, i, got, want)
			}
		}
	}
}

func TestRateOneAlwaysFiresRateZeroPointsOnly(t *testing.T) {
	in := New(plan(Rule{Class: DMADrop, Rate: 1}), 0)
	for i := 0; i < 50; i++ {
		if !in.Fire(DMADrop) {
			t.Fatalf("rate 1.0 missed at opportunity %d", i+1)
		}
	}
	// A class with no rule never fires but still counts opportunities.
	if in.Fire(RingDrop) {
		t.Fatal("ruleless class fired")
	}
	if ops, hits := in.Counts(RingDrop); ops != 1 || hits != 0 {
		t.Fatalf("ruleless class counts = (%d,%d), want (1,0)", ops, hits)
	}
}

func TestInjectDeviceWriteCorruptsExactlyOneByte(t *testing.T) {
	in := New(plan(Rule{Class: DMACorrupt, Rate: 1}), 9)
	ref := make([]byte, 64)
	buf := make([]byte, 64)
	if in.InjectDeviceWrite(1, 0x2000, buf) {
		t.Fatal("corrupt-only plan dropped the write")
	}
	diff := 0
	for i := range buf {
		if buf[i] != ref[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption changed %d bytes, want exactly 1", diff)
	}
	// And deterministically: a fresh equal injector corrupts the same byte.
	buf2 := make([]byte, 64)
	New(plan(Rule{Class: DMACorrupt, Rate: 1}), 9).InjectDeviceWrite(1, 0x2000, buf2)
	for i := range buf {
		if buf[i] != buf2[i] {
			t.Fatalf("corruption not deterministic at byte %d", i)
		}
	}
}

func TestInjectTranslateStallAndFault(t *testing.T) {
	in := New(plan(Rule{Class: IOMMUStall, Rate: 1}, Rule{Class: IOMMUFault, Rate: 1}), 3)
	stall, spurious := in.InjectTranslate(1, 0x3000, false)
	if stall != TranslateStallNanos || !spurious {
		t.Fatalf("InjectTranslate = (%v, %v), want (%v, true)", stall, spurious, TranslateStallNanos)
	}
}

func TestCollectEmitsEveryClassAndMatchesCounts(t *testing.T) {
	in := New(plan(Rule{Class: AllocFail, Rate: 1}), 5)
	in.Fire(AllocFail)
	in.Fire(DMACorrupt)
	ops := map[string]float64{}
	hits := map[string]float64{}
	in.Collect(func(name string, s metrics.Sample) {
		switch name {
		case "faultinject_opportunities_total":
			ops[s.Labels[0].Value] = s.Value
		case "faultinject_injected_total":
			hits[s.Labels[0].Value] = s.Value
		default:
			t.Fatalf("unexpected family %q", name)
		}
	})
	if len(ops) != int(numClasses) || len(hits) != int(numClasses) {
		t.Fatalf("emitted %d/%d classes, want %d (zeros included)", len(ops), len(hits), numClasses)
	}
	if ops["alloc-fail"] != 1 || hits["alloc-fail"] != 1 {
		t.Fatalf("alloc-fail = (%v,%v), want (1,1)", ops["alloc-fail"], hits["alloc-fail"])
	}
	if ops["dma-corrupt"] != 1 {
		t.Fatalf("dma-corrupt ops = %v, want 1", ops["dma-corrupt"])
	}
	if ops["ring-drop"] != 0 || hits["ring-drop"] != 0 {
		t.Fatal("untouched class should emit zeros")
	}
	// Gathering through a registry must satisfy the Source contract.
	reg := metrics.NewRegistry()
	reg.MustRegister(in)
	if _, err := reg.Gather(); err != nil {
		t.Fatalf("Gather: %v", err)
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []*Plan{
		{Rules: []Rule{{Class: numClasses, Rate: 0.5}}},
		{Rules: []Rule{{Class: DMACorrupt, Rate: 1.5}}},
		{Rules: []Rule{{Class: DMACorrupt}}},
		{Rules: []Rule{{Class: DMACorrupt, Points: []uint64{0}}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d: expected validation error", i)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan: %v", err)
	}
}
