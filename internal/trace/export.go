package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"dmafault/internal/metrics"
	"dmafault/internal/sim"
)

// JSONL export: one structured event per line, so forensic traces can be
// shipped to a collector instead of only pretty-printed. The encoding is
// lossless — ReadJSONL(WriteJSONL(events)) returns the same events — and
// snake_case, matching the repo's wire-format convention.

// jsonEvent is the wire form of one Event.
type jsonEvent struct {
	TNanos uint64 `json:"t_nanos"`
	Kind   string `json:"kind"`
	Dev    uint16 `json:"dev"`
	Addr   uint64 `json:"addr"`
	Aux    uint64 `json:"aux"`
	Note   string `json:"note,omitempty"`
}

// kindNames maps every Kind to its stable wire name (the String() form).
var kindNames = map[string]Kind{}

func init() {
	for k := EvDMAMap; k <= EvEscalation; k++ {
		kindNames[k.String()] = k
	}
}

// WriteJSONL writes the retained events, oldest first, one JSON object per
// line.
func (l *Log) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, l.Events())
}

// WriteJSONL encodes events as JSON lines.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(jsonEvent{
			TNanos: uint64(e.T), Kind: e.Kind.String(),
			Dev: e.Dev, Addr: e.Addr, Aux: e.Aux, Note: e.Note,
		}); err != nil {
			return fmt.Errorf("trace: encode event: %w", err)
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes a JSONL event stream written by WriteJSONL. Unknown
// kinds and malformed lines are errors — a shipped trace must not silently
// lose records.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var je jsonEvent
		if err := dec.Decode(&je); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decode event %d: %w", len(out), err)
		}
		k, ok := kindNames[je.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: event %d: unknown kind %q", len(out), je.Kind)
		}
		out = append(out, Event{
			T: sim.Nanos(je.TNanos), Kind: k,
			Dev: je.Dev, Addr: je.Addr, Aux: je.Aux, Note: je.Note,
		})
	}
}

// Log implements metrics.Source: the forensic ring's retention counters.

// Describe implements metrics.Source.
func (l *Log) Describe() []metrics.Desc {
	return []metrics.Desc{
		{Name: "trace_events_retained", Help: "Events currently held in the forensic ring.", Kind: metrics.KindGauge},
		{Name: "trace_events_dropped_total", Help: "Events shed by ring wraparound.", Kind: metrics.KindCounter},
		{Name: "trace_events_by_kind_total", Help: "Events appended to the forensic ring by kind (cumulative, survives wraparound).", Kind: metrics.KindCounter},
	}
}

// Collect implements metrics.Source. Per-kind totals are emitted only for
// kinds that occurred, so quiet machines keep lean expositions; the counts
// derive from the seeded simulation and are fully deterministic.
func (l *Log) Collect(emit func(name string, s metrics.Sample)) {
	emit("trace_events_retained", metrics.Sample{Value: float64(l.count)})
	emit("trace_events_dropped_total", metrics.Sample{Value: float64(l.Dropped)})
	for k := EvDMAMap; k <= EvEscalation; k++ {
		if n := l.KindTotal(k); n > 0 {
			emit("trace_events_by_kind_total", metrics.Sample{
				Labels: metrics.L("kind", k.String()), Value: float64(n),
			})
		}
	}
}
