// Package trace records a time-ordered event log of the simulated machine's
// security-relevant activity — DMA maps/unmaps, device accesses, IOMMU
// faults, IOTLB flushes, callback dispatches, privilege escalations — the
// forensic view a defender (or a curious reader) wants next to an attack's
// step trace.
//
// The log is a bounded ring: old events fall off, a drop counter records how
// many. core.System.EnableTracing wires collectors into every subsystem.
package trace

import (
	"fmt"
	"strings"

	"dmafault/internal/sim"
)

// Kind classifies events.
type Kind uint8

const (
	EvDMAMap Kind = iota
	EvDMAUnmap
	EvDeviceRead
	EvDeviceWrite
	EvFault
	EvCallback
	EvEscalation
)

// String names the kind for rendering.
func (k Kind) String() string {
	switch k {
	case EvDMAMap:
		return "dma-map"
	case EvDMAUnmap:
		return "dma-unmap"
	case EvDeviceRead:
		return "dev-read"
	case EvDeviceWrite:
		return "dev-write"
	case EvFault:
		return "IOMMU-FAULT"
	case EvCallback:
		return "callback"
	case EvEscalation:
		return "ESCALATION"
	default:
		return "?"
	}
}

// Event is one record.
type Event struct {
	T    sim.Nanos
	Kind Kind
	Dev  uint16
	Addr uint64 // IOVA or KVA, per kind
	Aux  uint64 // length, permission, target address...
	Note string
}

// String renders one line.
func (e Event) String() string {
	return fmt.Sprintf("%10.3fms  %-12s dev=%-2d addr=%#014x aux=%-6d %s",
		float64(e.T)/float64(sim.Millisecond), e.Kind, e.Dev, e.Addr, e.Aux, e.Note)
}

// Log is the bounded event ring.
type Log struct {
	clock   *sim.Clock
	events  []Event
	start   int
	count   int
	Dropped uint64
	// kindTotals counts every appended event by kind, cumulatively — unlike
	// CountKind it survives ring wraparound.
	kindTotals [EvEscalation + 1]uint64
}

// NewLog builds a ring holding up to cap events (0 = 4096).
func NewLog(clock *sim.Clock, cap int) *Log {
	if cap <= 0 {
		cap = 4096
	}
	return &Log{clock: clock, events: make([]Event, cap)}
}

// Append records an event, stamping it with the virtual clock.
func (l *Log) Append(k Kind, dev uint16, addr, aux uint64, note string) {
	e := Event{T: l.clock.Now(), Kind: k, Dev: dev, Addr: addr, Aux: aux, Note: note}
	if int(k) < len(l.kindTotals) {
		l.kindTotals[k]++
	}
	if l.count == len(l.events) {
		l.events[l.start] = e
		l.start = (l.start + 1) % len(l.events)
		l.Dropped++
		return
	}
	l.events[(l.start+l.count)%len(l.events)] = e
	l.count++
}

// Events returns the retained events, oldest first.
func (l *Log) Events() []Event {
	out := make([]Event, l.count)
	for i := 0; i < l.count; i++ {
		out[i] = l.events[(l.start+i)%len(l.events)]
	}
	return out
}

// KindTotal returns the cumulative append count for the kind (not capped by
// ring retention).
func (l *Log) KindTotal(k Kind) uint64 {
	if int(k) >= len(l.kindTotals) {
		return 0
	}
	return l.kindTotals[k]
}

// CountKind returns how many retained events have the kind.
func (l *Log) CountKind(k Kind) int {
	n := 0
	for _, e := range l.Events() {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// Render prints the last n events (0 = all retained).
func (l *Log) Render(n int) string {
	evs := l.Events()
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events retained, %d dropped\n", l.count, l.Dropped)
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
