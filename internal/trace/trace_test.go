package trace

import (
	"strings"
	"testing"

	"dmafault/internal/sim"
)

func TestRingRetentionAndDrop(t *testing.T) {
	clk := sim.NewClock()
	l := NewLog(clk, 4)
	for i := 0; i < 6; i++ {
		clk.Advance(sim.Millisecond)
		l.Append(EvDMAMap, 1, uint64(i), 0, "")
	}
	evs := l.Events()
	if len(evs) != 4 || l.Dropped != 2 {
		t.Fatalf("retained %d, dropped %d", len(evs), l.Dropped)
	}
	if evs[0].Addr != 2 || evs[3].Addr != 5 {
		t.Errorf("order wrong: %+v", evs)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].T < evs[i-1].T {
			t.Error("events out of time order")
		}
	}
}

func TestCountKindAndRender(t *testing.T) {
	clk := sim.NewClock()
	l := NewLog(clk, 0) // default capacity
	l.Append(EvFault, 2, 0x1000, 1, "blocked")
	l.Append(EvEscalation, 0, 0, 0, "boom")
	l.Append(EvFault, 2, 0x2000, 1, "blocked")
	if l.CountKind(EvFault) != 2 || l.CountKind(EvEscalation) != 1 || l.CountKind(EvDMAMap) != 0 {
		t.Error("CountKind wrong")
	}
	out := l.Render(0)
	for _, want := range []string{"IOMMU-FAULT", "ESCALATION", "3 events retained"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if out2 := l.Render(1); strings.Count(out2, "\n") != 2 {
		t.Errorf("Render(1) = %q", out2)
	}
}

func TestKindStrings(t *testing.T) {
	for k := EvDMAMap; k <= EvEscalation; k++ {
		if k.String() == "?" || k.String() == "" {
			t.Errorf("kind %d unnamed", k)
		}
	}
	if Kind(99).String() != "?" {
		t.Error("unknown kind not ?")
	}
}
