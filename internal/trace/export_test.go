package trace

import (
	"bytes"
	"strings"
	"testing"

	"dmafault/internal/metrics"
	"dmafault/internal/sim"
)

// TestWraparoundDropAccuracy drives the ring far past capacity and checks
// the retained window and the drop counter agree exactly.
func TestWraparoundDropAccuracy(t *testing.T) {
	clk := sim.NewClock()
	const capacity, total = 16, 1000
	l := NewLog(clk, capacity)
	for i := 0; i < total; i++ {
		clk.Advance(1)
		l.Append(EvDeviceWrite, 1, uint64(i), uint64(i), "")
	}
	evs := l.Events()
	if len(evs) != capacity {
		t.Fatalf("retained %d events, want %d", len(evs), capacity)
	}
	if l.Dropped != total-capacity {
		t.Fatalf("Dropped = %d, want %d", l.Dropped, total-capacity)
	}
	for i, e := range evs {
		if want := uint64(total - capacity + i); e.Addr != want {
			t.Fatalf("event %d has addr %d, want %d (window misaligned)", i, e.Addr, want)
		}
	}
	// Metrics view agrees with the ring.
	got := map[string]float64{}
	l.Collect(func(name string, s metrics.Sample) { got[name] = s.Value })
	if got["trace_events_retained"] != capacity {
		t.Errorf("trace_events_retained = %v, want %d", got["trace_events_retained"], capacity)
	}
	if got["trace_events_dropped_total"] != total-capacity {
		t.Errorf("trace_events_dropped_total = %v, want %d", got["trace_events_dropped_total"], total-capacity)
	}
}

// TestPerKindTotalsSurviveWraparound pins the trace_events_by_kind_total
// family: cumulative per-kind counts keep counting after the ring wraps
// (CountKind only sees the retained window), and kinds that never occurred
// stay out of the exposition.
func TestPerKindTotalsSurviveWraparound(t *testing.T) {
	clk := sim.NewClock()
	l := NewLog(clk, 4)
	for i := 0; i < 9; i++ {
		clk.Advance(1)
		l.Append(EvDMAMap, 1, uint64(i), 0, "")
	}
	l.Append(EvEscalation, 1, 0, 0, "pwn")
	if got := l.KindTotal(EvDMAMap); got != 9 {
		t.Errorf("KindTotal(dma-map) = %d, want 9", got)
	}
	if got := l.CountKind(EvDMAMap); got != 3 {
		t.Errorf("CountKind(dma-map) = %d, want 3 retained", got)
	}
	byKind := map[string]float64{}
	l.Collect(func(name string, s metrics.Sample) {
		if name == "trace_events_by_kind_total" {
			byKind[s.Labels[0].Value] = s.Value
		}
	})
	if len(byKind) != 2 || byKind["dma-map"] != 9 || byKind["ESCALATION"] != 1 {
		t.Errorf("per-kind samples = %v, want dma-map=9 ESCALATION=1 only", byKind)
	}
}

func TestJSONLRoundTripLossless(t *testing.T) {
	clk := sim.NewClock()
	l := NewLog(clk, 8)
	notes := []string{"", "FAULTED", "into kernel text", `quote " and \ backslash`, "日本語"}
	for i := 0; i < 5; i++ {
		clk.Advance(sim.Millisecond)
		l.Append(Kind(i%int(EvEscalation+1)), uint16(i), 0xffff_8880_0000_0000+uint64(i), uint64(i)*7, notes[i%len(notes)])
	}
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 5 {
		t.Fatalf("JSONL has %d lines, want 5:\n%s", got, buf.String())
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := l.Events()
	if len(back) != len(orig) {
		t.Fatalf("round trip returned %d events, want %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Errorf("event %d changed: %+v != %+v", i, back[i], orig[i])
		}
	}
}

func TestJSONLRoundTripAfterWraparound(t *testing.T) {
	clk := sim.NewClock()
	l := NewLog(clk, 4)
	for i := 0; i < 10; i++ {
		clk.Advance(1)
		l.Append(EvDMAUnmap, 2, uint64(i), 0, "wrap")
	}
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 4 || back[0].Addr != 6 || back[3].Addr != 9 {
		t.Errorf("exported window wrong: %+v", back)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"t_nanos":1,"kind":"warp","dev":0,"addr":0,"aux":0}` + "\n")); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("malformed line accepted")
	}
}

func TestLargeAddressesSurviveJSONL(t *testing.T) {
	// KVAs exceed 2^53; the wire format must not round through float64.
	clk := sim.NewClock()
	l := NewLog(clk, 2)
	const kva = uint64(0xffff_ffff_ffff_fff1)
	l.Append(EvDMAMap, 1, kva, kva-2, "")
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].Addr != kva || back[0].Aux != kva-2 {
		t.Errorf("precision lost: %#x / %#x", back[0].Addr, back[0].Aux)
	}
}
