package faultd

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dmafault/internal/fuzz"
)

// A fuzz-campaign job runs end to end through the job API: accepted with
// the budget as its progress total, finishes with a fuzz report, persists a
// corpus file the recovery scan ignores, and exports fuzz_* metrics.
func TestFuzzJobEndToEnd(t *testing.T) {
	dir := t.TempDir()
	srv := NewServer()
	srv.Workers = 4
	srv.Synchronous = true
	srv.JournalDir = dir
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := post(t, ts.URL+"/campaigns",
		`{"name":"fuzz-smoke","seed":11,"fuzz":{"attempts":8,"minimize":-1}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var acc struct {
		ID             int `json:"id"`
		ScenariosTotal int `json:"scenarios_total"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.ScenariosTotal != 8 {
		t.Fatalf("progress total should be the fuzz budget: %+v", acc)
	}
	srv.Wait()

	var job Job
	_, body = get(t, ts.URL+"/campaigns/1")
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.Status != StatusDone {
		t.Fatalf("job: %+v", job)
	}
	if job.Fuzz == nil || job.Fuzz.Execs != 8 || job.Fuzz.CorpusSize == 0 {
		t.Fatalf("fuzz report: %+v", job.Fuzz)
	}
	if job.Summary != nil {
		t.Fatal("fuzz jobs have no fixed-set summary")
	}
	if job.ScenariosDone != 8 {
		t.Fatalf("scenarios_done %d, want 8", job.ScenariosDone)
	}

	// Corpus persisted under a name the journal recovery scan ignores.
	corpusPath := filepath.Join(dir, "fuzz-1.corpus.jsonl")
	if _, err := os.Stat(corpusPath); err != nil {
		t.Fatalf("corpus file: %v", err)
	}
	if journalNameRE.MatchString(filepath.Base(corpusPath)) {
		t.Fatal("corpus file name must not look like a recoverable journal")
	}
	c, err := fuzz.OpenCorpus(corpusPath, true)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != job.Fuzz.CorpusSize {
		t.Fatalf("corpus file has %d entries, report says %d", c.Len(), job.Fuzz.CorpusSize)
	}
	c.Close()

	// fuzz_* families merged into the exposition.
	_, metricsBody := get(t, ts.URL+"/metrics")
	for _, fam := range []string{"fuzz_execs_total 8", "fuzz_corpus_entries", "fuzz_signatures_distinct"} {
		if !strings.Contains(string(metricsBody), fam) {
			t.Errorf("/metrics lacks %q", fam)
		}
	}
}

// The SSE stream of a fuzz job carries per-round "fuzz" coverage events
// alongside per-execution "result" events.
func TestFuzzJobEventStream(t *testing.T) {
	srv := NewServer()
	srv.Workers = 4
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := post(t, ts.URL+"/campaigns",
		`{"name":"fuzz-sse","seed":11,"fuzz":{"attempts":8,"batch":4,"minimize":-1}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	resp, err := http.Get(ts.URL + "/campaigns/1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	types := map[string]int{}
	var lastFuzz fuzz.RoundStats
	sc := bufio.NewScanner(resp.Body)
	var event string
	deadline := time.After(60 * time.Second)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "event: ") {
				event = strings.TrimPrefix(line, "event: ")
				continue
			}
			if strings.HasPrefix(line, "data: ") {
				types[event]++
				if event == "fuzz" {
					_ = json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &lastFuzz)
				}
				if event == "status" {
					return
				}
			}
		}
	}()
	select {
	case <-done:
	case <-deadline:
		t.Fatal("SSE stream did not reach terminal status in time")
	}
	srv.Wait()

	if types["fuzz"] == 0 {
		t.Fatalf("no fuzz round events on the stream: %v", types)
	}
	if types["result"] == 0 {
		t.Fatalf("no result events on the stream: %v", types)
	}
	if lastFuzz.Execs == 0 || lastFuzz.CorpusSize == 0 {
		t.Fatalf("last fuzz event empty: %+v", lastFuzz)
	}
}

func TestFuzzRequestValidation(t *testing.T) {
	srv := NewServer()
	srv.Synchronous = true
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _ := post(t, ts.URL+"/campaigns", `{"fuzz":{"attempts":8},"preset":"mixed"}`); code != http.StatusBadRequest {
		t.Errorf("fuzz+preset: %d, want 400", code)
	}
	if code, _ := post(t, ts.URL+"/campaigns", `{"fuzz":{"attempts":999999}}`); code != http.StatusBadRequest {
		t.Errorf("over-cap attempts: %d, want 400", code)
	}
	srv.Wait()
}
