package faultd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmafault/internal/campaign"
)

// recoverySet is the scenario set used by the crash-recovery tests.
func recoverySet() []campaign.Scenario {
	set := make([]campaign.Scenario, 6)
	for i := range set {
		set[i] = campaign.Scenario{Kind: campaign.KindWindowLadder, Seed: int64(7000 + i)}
	}
	return set
}

// writeInterruptedJournal simulates a daemon killed mid-campaign: a journal
// for job `id` holding the first `n` completed records plus a torn tail from
// the write the kill interrupted.
func writeInterruptedJournal(t *testing.T, dir string, id int, set []campaign.Scenario, results []*campaign.Result, n int) {
	t.Helper()
	path := filepath.Join(dir, journalName(id))
	j, err := campaign.OpenJournal(path, set, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := j.Record(i, results[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"index":4,"result":{"id":"scn-");`); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func journalName(id int) string {
	return fmt.Sprintf("job-%d.jsonl", id)
}

// TestRecoveryResumesByteIdentical is the kill -9 acceptance test: a journal
// interrupted mid-run is rediscovered at boot, resumed through the ordinary
// scheduler, and finishes with a summary byte-identical to an uninterrupted
// run's.
func TestRecoveryResumesByteIdentical(t *testing.T) {
	set := recoverySet()

	// The uninterrupted reference.
	ref, err := (&campaign.Engine{Workers: 2}).Run(set)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := ref.JSON()
	if err != nil {
		t.Fatal(err)
	}

	// A predecessor daemon died with job 3 half done (torn tail included).
	dir := t.TempDir()
	writeInterruptedJournal(t, dir, 3, set, ref.Results, 2)

	srv := NewServer()
	srv.Workers = 2
	srv.Synchronous = true
	srv.JournalDir = dir
	recovered, err := srv.RecoverJobs()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if recovered != 1 {
		t.Fatalf("recovered %d jobs, want 1", recovered)
	}
	srv.Wait()

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, body := get(t, ts.URL+"/campaigns/3")
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.Status != StatusDone || !job.Recovered || job.ScenariosDone != len(set) {
		t.Fatalf("recovered job: %+v", job)
	}
	gotJSON, err := job.Summary.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatal("resumed summary differs from uninterrupted run")
	}

	// The on-disk journal is now complete: a second boot recovers nothing.
	srv2 := NewServer()
	srv2.Synchronous = true
	srv2.JournalDir = dir
	if n, err := srv2.RecoverJobs(); err != nil || n != 0 {
		t.Fatalf("second boot recovered %d jobs, err %v; want 0, nil", n, err)
	}

	// Supervision accounting: the recovery is visible on /metrics.
	_, text := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(text), "faultd_jobs_recovered_total 1") {
		t.Error("recovery not counted on /metrics")
	}

	// The ID counter was seeded past the journal: the next submission is 4.
	code, resp := post(t, ts.URL+"/campaigns",
		submitBody(t, Request{Scenarios: recoverySet()[:1]}))
	if code != http.StatusAccepted {
		t.Fatalf("post-recovery submit: %d %s", code, resp)
	}
	var acc struct {
		ID int `json:"id"`
	}
	if err := json.Unmarshal(resp, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.ID != 4 {
		t.Fatalf("post-recovery job ID %d, want 4", acc.ID)
	}
	srv.Wait()
}

// TestRecoverySeedsIDCounterFromFinishedJournals: even journals that need no
// resuming advance the ID counter, so new submissions never collide with (and
// never overwrite) a predecessor's journals.
func TestRecoverySeedsIDCounterFromFinishedJournals(t *testing.T) {
	set := recoverySet()[:2]
	dir := t.TempDir()
	j, err := campaign.OpenJournal(filepath.Join(dir, "job-17.jsonl"), set, false)
	if err != nil {
		t.Fatal(err)
	}
	full, err := (&campaign.Engine{Workers: 1, Journal: j}).Run(set)
	j.Close()
	if err != nil || len(full.Results) != 2 {
		t.Fatalf("reference run: %v", err)
	}

	srv := NewServer()
	srv.Synchronous = true
	srv.JournalDir = dir
	if n, err := srv.RecoverJobs(); err != nil || n != 0 {
		t.Fatalf("recovered %d, err %v; want 0 (journal is finished)", n, err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code, _ := get(t, ts.URL+"/campaigns/17"); code != http.StatusNotFound {
		t.Error("finished journal was registered as a job")
	}
	_, resp := post(t, ts.URL+"/campaigns", submitBody(t, Request{Scenarios: set}))
	var acc struct {
		ID int `json:"id"`
	}
	if err := json.Unmarshal(resp, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.ID != 18 {
		t.Fatalf("job ID %d, want 18 (seeded past job-17.jsonl)", acc.ID)
	}
	srv.Wait()
}

// TestRecoveryReportsBrokenJournalsAndContinues: one unreadable journal does
// not block recovery of the rest; it is reported and left on disk.
func TestRecoveryReportsBrokenJournalsAndContinues(t *testing.T) {
	set := recoverySet()
	ref, err := (&campaign.Engine{Workers: 2}).Run(set)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "job-1.jsonl"), []byte("not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("ignore me"), 0o644); err != nil {
		t.Fatal(err)
	}
	writeInterruptedJournal(t, dir, 2, set, ref.Results, 3)

	srv := NewServer()
	srv.Workers = 2
	srv.Synchronous = true
	srv.JournalDir = dir
	recovered, err := srv.RecoverJobs()
	if err == nil || !strings.Contains(err.Error(), "job-1.jsonl") {
		t.Fatalf("broken journal not reported: %v", err)
	}
	if recovered != 1 {
		t.Fatalf("recovered %d jobs, want 1 despite the broken sibling", recovered)
	}
	srv.Wait()
	srv.mu.Lock()
	job := srv.jobsByID[2]
	srv.mu.Unlock()
	if job == nil || job.Status != StatusDone {
		t.Fatalf("job 2 not recovered cleanly: %+v", job)
	}
	want, _ := ref.JSON()
	got, _ := job.Summary.JSON()
	if !bytes.Equal(got, want) {
		t.Fatal("summary resumed next to a broken journal differs")
	}
	// The broken journal stayed on disk for the operator.
	if _, err := os.Stat(filepath.Join(dir, "job-1.jsonl")); err != nil {
		t.Error("broken journal was removed")
	}
}

// TestRecoveredJobsFlowThroughScheduler: on an asynchronous server, resumed
// jobs queue and run under the same concurrency cap as fresh submissions.
func TestRecoveredJobsFlowThroughScheduler(t *testing.T) {
	set := recoverySet()
	ref, err := (&campaign.Engine{Workers: 2}).Run(set)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	writeInterruptedJournal(t, dir, 1, set, ref.Results, 1)
	writeInterruptedJournal(t, dir, 2, set, ref.Results, 4)

	srv := NewServer()
	srv.Workers = 2
	srv.MaxConcurrent = 1
	srv.JournalDir = dir
	recovered, err := srv.RecoverJobs()
	if err != nil || recovered != 2 {
		t.Fatalf("recovered %d, err %v; want 2, nil", recovered, err)
	}
	srv.Wait()
	srv.mu.Lock()
	peak := srv.peakRunning
	j1, j2 := srv.jobsByID[1], srv.jobsByID[2]
	srv.mu.Unlock()
	if peak != 1 {
		t.Errorf("recovered jobs ran %d-wide, cap is 1", peak)
	}
	want, _ := ref.JSON()
	for id, job := range map[int]*Job{1: j1, 2: j2} {
		if job.Status != StatusDone {
			t.Fatalf("recovered job %d: %+v", id, job)
		}
		got, _ := job.Summary.JSON()
		if !bytes.Equal(got, want) {
			t.Errorf("recovered job %d summary differs", id)
		}
	}
}
