package faultd

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"

	"dmafault/internal/campaign"
	"dmafault/internal/faultd/api"
	"dmafault/internal/obs"
)

// Crash recovery at boot: the service analogue of `cmd/campaign -resume`.
// Every job journals to <JournalDir>/job-<id>.jsonl; the journal header
// embeds the scenario set (campaign.ScanJournal), so a restarted daemon
// needs nothing but the directory to rediscover interrupted work. Recovered
// jobs re-enter the ordinary scheduler with their completed scenarios
// seeded from the journal, and because per-scenario results are
// deterministic and aggregation is order-stable, a resumed job's final
// summary is byte-identical to an uninterrupted run's.

// journalNameRE matches per-job journal files and captures the job ID.
var journalNameRE = regexp.MustCompile(`^job-(\d+)\.jsonl$`)

// RecoverJobs scans JournalDir for per-job journals and re-registers every
// journal with an unfinished scenario set as a queued job, resumed through
// the scheduler. Finished and unreadable journals are left on disk
// untouched. The job-ID counter is seeded past every journal seen (finished
// or not), so new submissions never collide with recovered IDs. Call it
// after configuration and before serving traffic.
//
// It returns how many jobs were re-registered; the error (if any) joins the
// per-file scan problems — recovery of the remaining journals proceeds
// regardless.
func (s *Server) RecoverJobs() (int, error) {
	if s.JournalDir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(s.JournalDir)
	if err != nil {
		return 0, fmt.Errorf("faultd: recover: %w", err)
	}
	var errs []error
	recovered := 0
	for _, ent := range entries {
		m := journalNameRE.FindStringSubmatch(ent.Name())
		if ent.IsDir() || m == nil {
			continue
		}
		id, err := strconv.Atoi(m[1])
		if err != nil || id < 1 {
			continue
		}
		s.mu.Lock()
		if id >= s.nextID {
			s.nextID = id + 1
		}
		_, taken := s.jobsByID[id]
		s.mu.Unlock()
		if taken {
			errs = append(errs, fmt.Errorf("faultd: recover %s: job %d already registered", ent.Name(), id))
			continue
		}
		st, err := campaign.ScanJournal(filepath.Join(s.JournalDir, ent.Name()))
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if !st.Unfinished() {
			continue
		}
		s.resumeJob(id, st)
		recovered++
	}
	return recovered, errors.Join(errs...)
}

// resumeJob registers one unfinished journal as a queued job: the journal's
// restored results seed Engine.Completed, the journal is reopened for
// append, and the job flows through the same dispatcher as fresh
// submissions (admission control does not apply — the work was accepted
// before the crash; the queue bound may be exceeded).
func (s *Server) resumeJob(id int, st *campaign.JournalState) {
	ctx, cancel := context.WithCancel(context.Background())
	job := &Job{
		Job: api.Job{
			ID: id, Status: StatusQueued,
			ScenariosTotal: len(st.Scenarios),
			ScenariosDone:  len(st.Restored),
			Recovered:      true,
		},
		ctx: ctx, cancel: cancel,
		scs:        st.Scenarios,
		restored:   st.Restored,
		resume:     true,
		enqueuedAt: s.now(),
		hub:        obs.NewHub(),
	}
	s.logger().Info("resuming recovered job", "job", id,
		"restored", len(st.Restored), "total", len(st.Scenarios))
	s.mu.Lock()
	s.jobsByID[id] = job
	s.jobs = append(s.jobs, job)
	s.wg.Add(1)
	if s.Synchronous {
		s.mu.Unlock()
		s.campaignsStarted.Inc()
		s.jobsRecovered.Inc()
		s.runWorker(job)
		return
	}
	s.pending = append(s.pending, job)
	s.queueDepthG.Add(1)
	s.ensureDispatcherLocked()
	s.cond.Signal()
	s.mu.Unlock()
	s.campaignsStarted.Inc()
	s.jobsRecovered.Inc()
}
