package faultd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dmafault/internal/campaign"
)

// submitBody marshals a Request so the test and the server decode the exact
// same scenario structs (byte-identity comparisons depend on it).
func submitBody(t *testing.T, req Request) string {
	t.Helper()
	b, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// postRaw is post() plus response headers, for Retry-After assertions.
func postRaw(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestSubmitStormBoundedConcurrency is the scheduler acceptance test: 50
// concurrent submissions against a 2-slot scheduler all complete, never more
// than 2 execute at once, and every job's summary is byte-identical to a
// serial run of the same scenario set.
func TestSubmitStormBoundedConcurrency(t *testing.T) {
	const jobs = 50
	srv := NewServer()
	srv.Workers = 1
	srv.MaxConcurrent = 2
	srv.QueueDepth = jobs
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sets := make([][]campaign.Scenario, jobs)
	for i := range sets {
		sets[i] = []campaign.Scenario{{Kind: campaign.KindWindowLadder, Seed: int64(1000 + i)}}
	}

	var wg sync.WaitGroup
	ids := make([]int, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := submitBody(t, Request{Name: fmt.Sprintf("storm-%d", i), Workers: 1, Scenarios: sets[i]})
			code, resp := post(t, ts.URL+"/campaigns", body)
			if code != http.StatusAccepted {
				t.Errorf("storm submit %d: %d %s", i, code, resp)
				return
			}
			var acc struct {
				ID int `json:"id"`
			}
			if err := json.Unmarshal(resp, &acc); err != nil {
				t.Error(err)
				return
			}
			ids[i] = acc.ID
		}(i)
	}
	wg.Wait()
	srv.Wait()

	srv.mu.Lock()
	peak := srv.peakRunning
	srv.mu.Unlock()
	if peak < 1 || peak > 2 {
		t.Fatalf("peak concurrency %d, want 1..2", peak)
	}

	// Every job finished, and its summary matches a serial engine run bit
	// for bit (scheduling must not leak into results).
	for i := 0; i < jobs; i++ {
		if ids[i] == 0 {
			continue // submit already failed the test above
		}
		_, body := get(t, fmt.Sprintf("%s/campaigns/%d", ts.URL, ids[i]))
		var job Job
		if err := json.Unmarshal(body, &job); err != nil {
			t.Fatal(err)
		}
		if job.Status != StatusDone || job.Summary == nil {
			t.Fatalf("storm job %d: %+v", ids[i], job)
		}
		ref, err := (&campaign.Engine{Workers: 1}).Run(sets[i])
		if err != nil {
			t.Fatal(err)
		}
		want, _ := ref.JSON()
		got, _ := job.Summary.JSON()
		if !bytes.Equal(got, want) {
			t.Fatalf("storm job %d summary differs from serial run", ids[i])
		}
	}

	// The supervision families materialized on /metrics.
	_, text := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"faultd_campaigns_completed_total 50",
		"faultd_campaigns_running_peak",
		"faultd_queue_wait_seconds_count 50",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestQueueFullRejects429: with one scheduler slot wedged by a stall job and
// a queue bound of 1, a burst of further submissions is mostly bounced with
// 429 + Retry-After, and never accepted-then-dropped: every 202 reaches a
// terminal status.
func TestQueueFullRejects429(t *testing.T) {
	srv := NewServer()
	srv.MaxConcurrent = 1
	srv.QueueDepth = 1
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Wedge the only slot: 8 serial 250ms stalls.
	code, _ := post(t, ts.URL+"/campaigns", stallBody(8))
	if code != http.StatusAccepted {
		t.Fatalf("wedge submit: %d", code)
	}
	pollUntilRunning(t, ts.URL+"/campaigns/1")

	// The dispatcher can hold at most one popped job (blocked on the slot)
	// and the queue holds one more, so of a 10-burst at most 2 are accepted.
	accepted, rejected := 0, 0
	var acceptedIDs []int
	for i := 0; i < 10; i++ {
		resp := postRaw(t, ts.URL+"/campaigns", stallBody(1))
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
			acceptedIDs = append(acceptedIDs, 0) // id = submission order, read back below
		case http.StatusTooManyRequests:
			rejected++
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Fatalf("burst submit %d: %d", i, resp.StatusCode)
		}
	}
	if accepted > 2 || rejected < 8 {
		t.Fatalf("burst: %d accepted, %d rejected; want <=2 and >=8", accepted, rejected)
	}

	// The queue is wedged full, so readiness fails while liveness holds.
	if code, body := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || string(body) != "saturated\n" {
		t.Errorf("readyz under saturation: %d %q", code, body)
	}
	if code, body := get(t, ts.URL+"/healthz"); code != http.StatusOK || string(body) != "ok\n" {
		t.Errorf("healthz under saturation: %d %q", code, body)
	}

	// Unwedge and drain; every accepted job must reach a terminal status.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_ = srv.Drain(ctx)
	_, body := get(t, ts.URL+"/campaigns")
	var list struct {
		Jobs []Job `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1+accepted {
		t.Fatalf("job table has %d jobs, want %d", len(list.Jobs), 1+accepted)
	}
	for _, j := range list.Jobs {
		if j.Status == StatusRunning || j.Status == StatusQueued {
			t.Errorf("job %d left non-terminal: %s", j.ID, j.Status)
		}
	}
	_ = acceptedIDs

	_, text := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(text), fmt.Sprintf("faultd_submissions_rejected_full_total %d", rejected)) {
		t.Errorf("429s not counted; want %d:\n%s", rejected, grepFaultd(text))
	}
}

func pollUntilRunning(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, body := get(t, url)
		var job Job
		if err := json.Unmarshal(body, &job); err != nil {
			t.Fatal(err)
		}
		if job.Status == StatusRunning {
			return
		}
		if job.Status != StatusQueued {
			t.Fatalf("job reached %s before running", job.Status)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// grepFaultd trims an exposition to its faultd_ lines for readable failures.
func grepFaultd(text []byte) string {
	var b strings.Builder
	for _, line := range strings.Split(string(text), "\n") {
		if strings.HasPrefix(line, "faultd_") {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestSubmitWhileDrainingRejected503 is the submit/drain race regression:
// once drain begins, submissions are rejected with 503 — never accepted and
// then dropped — and the probes flip state.
func TestSubmitWhileDrainingRejected503(t *testing.T) {
	srv := NewServer()
	srv.Workers = 1
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.BeginDrain()
	resp := postRaw(t, ts.URL+"/campaigns", `{"preset":"ladder","n":4,"seed":1}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
	if code, body := get(t, ts.URL+"/healthz"); code != http.StatusOK || string(body) != "draining\n" {
		t.Errorf("healthz while draining: %d %q", code, body)
	}
	if code, body := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || string(body) != "draining\n" {
		t.Errorf("readyz while draining: %d %q", code, body)
	}
	_, text := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(text), "faultd_submissions_rejected_draining_total 1") {
		t.Error("draining rejection not counted")
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain of idle server: %v", err)
	}
}

// TestSubmitDrainRaceNeverDropsAcceptedJobs hammers the race the draining
// flag fixes: submissions concurrent with drain either get 503 or, once
// accepted, reach a terminal status — a 202'd job is never abandoned.
func TestSubmitDrainRaceNeverDropsAcceptedJobs(t *testing.T) {
	srv := NewServer()
	srv.Workers = 1
	srv.MaxConcurrent = 2
	srv.QueueDepth = 64
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const submitters = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	var accepted []int
	start := make(chan struct{})
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			body := submitBody(t, Request{Workers: 1,
				Scenarios: []campaign.Scenario{{Kind: campaign.KindWindowLadder, Seed: int64(i)}}})
			resp := postRaw(t, ts.URL+"/campaigns", body)
			switch resp.StatusCode {
			case http.StatusAccepted:
				mu.Lock()
				accepted = append(accepted, 0)
				mu.Unlock()
			case http.StatusServiceUnavailable:
				// Lost the race to drain: rejected up front is the contract.
			default:
				t.Errorf("submitter %d: %d", i, resp.StatusCode)
			}
		}(i)
	}
	close(start)
	time.Sleep(2 * time.Millisecond) // let some submissions land first
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()

	// Count jobs the server accepted; each must be terminal with either a
	// summary (done) or an explicit cancellation.
	_, body := get(t, ts.URL+"/campaigns")
	var list struct {
		Jobs []Job `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	acceptedN := len(accepted)
	mu.Unlock()
	if len(list.Jobs) != acceptedN {
		t.Fatalf("%d jobs registered, %d submissions got 202", len(list.Jobs), acceptedN)
	}
	for _, j := range list.Jobs {
		switch j.Status {
		case StatusDone, StatusCancelled:
		default:
			t.Errorf("accepted job %d ended %q", j.ID, j.Status)
		}
	}
}

// TestWatchdogCancelsStalledJob: a job whose scenarios stop producing
// heartbeats is cancelled with the structured stalled outcome.
func TestWatchdogCancelsStalledJob(t *testing.T) {
	srv := NewServer()
	srv.StallTimeout = 60 * time.Millisecond
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Each scenario stalls 250ms — four stall-timeouts with no heartbeat.
	if code, _ := post(t, ts.URL+"/campaigns", stallBody(2)); code != http.StatusAccepted {
		t.Fatal("submit failed")
	}
	job := pollJob(t, ts.URL+"/campaigns/1")
	if job.Status != StatusStalled {
		t.Fatalf("job status %q, want %q (%+v)", job.Status, StatusStalled, job)
	}
	if !strings.Contains(job.Error, "stalled: no progress within") {
		t.Fatalf("stalled error %q", job.Error)
	}
	srv.Wait()

	_, text := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"faultd_jobs_stalled_total 1",
		"faultd_campaigns_failed_total 1",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("exposition missing %q:\n%s", want, grepFaultd(text))
		}
	}
}

// TestWatchdogSparesProgressingJobs: steady scenario claims/completions
// keep the heartbeat fresh, so a slow-but-progressing job is never falsely
// stalled. The timeout is generous (it only needs to exceed one scenario's
// duration, even under -race) while the 8 serial 250ms stalls guarantee the
// job as a whole runs well past a naive whole-job budget.
func TestWatchdogSparesProgressingJobs(t *testing.T) {
	srv := NewServer()
	srv.Workers = 1
	srv.StallTimeout = 30 * time.Second
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _ := post(t, ts.URL+"/campaigns", stallBody(8)); code != http.StatusAccepted {
		t.Fatal("submit failed")
	}
	job := pollJob(t, ts.URL+"/campaigns/1")
	if job.Status != StatusDone {
		t.Fatalf("progressing job ended %q: %+v", job.Status, job)
	}
	srv.Wait()
	_, text := get(t, ts.URL+"/metrics")
	if strings.Contains(string(text), "faultd_jobs_stalled_total") {
		t.Error("watchdog counted a stall on a progressing job")
	}
}

// TestSupervisionFamiliesAbsentOnIdleBoot pins the OmitZero contract on the
// service: a freshly booted daemon's exposition carries no supervision
// families at all (their presence is the signal), while the base service
// counters are always present.
func TestSupervisionFamiliesAbsentOnIdleBoot(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, body := get(t, ts.URL+"/metrics")
	text := string(body)
	for _, family := range []string{
		"faultd_queue_depth", "faultd_queue_wait_seconds",
		"faultd_campaigns_running_peak",
		"faultd_submissions_rejected_full_total",
		"faultd_submissions_rejected_draining_total",
		"faultd_jobs_stalled_total", "faultd_jobs_recovered_total",
		"faultd_quarantine_trips_total", "faultd_quarantine_probes_total",
		"faultd_scenarios_quarantined_total",
	} {
		if strings.Contains(text, family) {
			t.Errorf("idle exposition leaks %s", family)
		}
	}
	for _, family := range []string{"faultd_requests_total", "faultd_campaigns_running 0"} {
		if !strings.Contains(text, family) {
			t.Errorf("idle exposition missing %s", family)
		}
	}
}

// TestReadyzSaturationFlagging drives the readiness probe's saturation arm
// directly (the admission queue is test-populated to its bound).
func TestReadyzSaturationFlagging(t *testing.T) {
	srv := NewServer()
	srv.QueueDepth = 2
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, body := get(t, ts.URL+"/readyz"); code != http.StatusOK || string(body) != "ready\n" {
		t.Fatalf("idle readyz: %d %q", code, body)
	}
	srv.mu.Lock()
	srv.pending = make([]*Job, 2)
	srv.mu.Unlock()
	if code, body := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || string(body) != "saturated\n" {
		t.Fatalf("saturated readyz: %d %q", code, body)
	}
	srv.mu.Lock()
	srv.pending = nil
	srv.mu.Unlock()
	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatal("readyz did not recover after the queue drained")
	}
}

// TestCancelQueuedJob: a job cancelled while still waiting for a slot
// retires as cancelled without ever running a scenario.
func TestCancelQueuedJob(t *testing.T) {
	srv := NewServer()
	srv.MaxConcurrent = 1
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Wedge the slot, then queue a victim behind it.
	if code, _ := post(t, ts.URL+"/campaigns", stallBody(8)); code != http.StatusAccepted {
		t.Fatal("wedge submit failed")
	}
	pollUntilRunning(t, ts.URL+"/campaigns/1")
	if code, _ := post(t, ts.URL+"/campaigns", stallBody(1)); code != http.StatusAccepted {
		t.Fatal("victim submit failed")
	}
	if code, _ := del(t, ts.URL+"/campaigns/2"); code != http.StatusAccepted {
		t.Fatal("cancel of queued job refused")
	}
	if code, _ := del(t, ts.URL+"/campaigns/1"); code != http.StatusAccepted {
		t.Fatal("cancel of running job refused")
	}
	srv.Wait()
	job := pollJob(t, ts.URL+"/campaigns/2")
	if job.Status != StatusCancelled || job.ScenariosDone != 0 {
		t.Fatalf("queued victim: %+v", job)
	}
}
