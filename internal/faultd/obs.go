package faultd

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"path/filepath"
	"strconv"
	"time"

	"dmafault/internal/campaign"
	"dmafault/internal/obs"
)

// Observability plane of the service: per-job wall-clock spans summarized
// into the obs_span_duration_seconds family, live event streaming over SSE
// (GET /campaigns/{id}/events), and flight-recorder dumps shipped to the
// journal directory on stall, panic, quarantine trip, and shutdown. All of
// it is operator data — none of it touches job summaries, journals, or the
// merged campaign metric plane.

// DefaultHeartbeatInterval paces SSE progress events when the caller leaves
// HeartbeatInterval zero.
const DefaultHeartbeatInterval = time.Second

var nopLogger = obs.Nop()

// logger returns the configured structured logger, or a discard logger.
func (s *Server) logger() *slog.Logger {
	if s.Log != nil {
		return s.Log
	}
	return nopLogger
}

// heartbeat resolves the SSE progress cadence.
func (s *Server) heartbeat() time.Duration {
	if s.HeartbeatInterval > 0 {
		return s.HeartbeatInterval
	}
	return DefaultHeartbeatInterval
}

// jobTracer builds the per-job span tracer: spans summarize into the
// histogram family, land in the flight recorder (when one is attached), and
// stream to the job's SSE subscribers.
func (s *Server) jobTracer(job *Job) *obs.Tracer {
	return obs.NewTracer(
		s.spanMetrics.Sink(),
		func(sp obs.Span) { s.Recorder.SpanSink()(sp) },
		func(sp obs.Span) { job.hub.Publish(obs.StreamEvent{Type: "span", Data: sp}) },
	)
}

// emitSpan records an already-completed span built by hand (queue-wait,
// measured by the dispatcher rather than an ActiveSpan).
func (s *Server) emitSpan(job *Job, sp obs.Span) {
	s.spanMetrics.Sink()(sp)
	s.Recorder.SpanSink()(sp)
	job.hub.Publish(obs.StreamEvent{Type: "span", Data: sp})
}

// jobEvent is the SSE view of a job's live state ("progress" heartbeats and
// the terminal "status" event).
type jobEvent struct {
	ID             int       `json:"id"`
	Name           string    `json:"name,omitempty"`
	Status         JobStatus `json:"status"`
	ScenariosDone  int       `json:"scenarios_done"`
	ScenariosTotal int       `json:"scenarios_total"`
	CacheHits      int       `json:"cache_hits,omitempty"`
	Error          string    `json:"error,omitempty"`
}

// resultEvent is the SSE record of one finished scenario.
type resultEvent struct {
	Index          int    `json:"index"`
	ID             string `json:"id"`
	Outcome        string `json:"outcome"`
	Retries        int    `json:"retries,omitempty"`
	ScenariosDone  int    `json:"scenarios_done"`
	ScenariosTotal int    `json:"scenarios_total"`
}

// jobView snapshots the job's SSE state. Callers hold s.mu or own the job.
func jobView(job *Job) jobEvent {
	return jobEvent{
		ID: job.ID, Name: job.Name, Status: job.Status,
		ScenariosDone: job.ScenariosDone, ScenariosTotal: job.ScenariosTotal,
		CacheHits: job.CacheHits,
		Error:     job.Error,
	}
}

// terminal reports whether the status is final.
func terminal(st JobStatus) bool {
	return st != StatusQueued && st != StatusRunning
}

// publishTerminal broadcasts the job's final status to its SSE subscribers
// and closes the hub (late subscribers get the status from the job table).
func (s *Server) publishTerminal(job *Job) {
	s.mu.Lock()
	view := jobView(job)
	s.mu.Unlock()
	job.hub.Publish(obs.StreamEvent{Type: "status", Data: view})
	job.hub.Close()
	args := []any{"job", view.ID, "status", string(view.Status),
		"done", view.ScenariosDone, "total", view.ScenariosTotal, "err", view.Error}
	if view.Status == StatusFailed || view.Status == StatusStalled {
		s.logger().Warn("job finished", args...)
		return
	}
	s.logger().Info("job finished", args...)
}

// flightDump ships the flight recorder's retained window to the journal
// directory — the forensic artifact for a stall, panic, quarantine trip, or
// shutdown. A trigger event is recorded first so the dump is self-labelling.
// No recorder or no journal directory means no dump.
func (s *Server) flightDump(trigger string, job *Job) {
	if s.Recorder == nil || s.JournalDir == "" {
		return
	}
	name := "flight-" + trigger + ".jsonl"
	var attrs []obs.Attr
	if job != nil {
		name = fmt.Sprintf("flight-%s-job-%d.jsonl", trigger, job.ID)
		attrs = append(attrs, obs.Af("job", "%d", job.ID))
	}
	s.Recorder.Event("flight-dump", trigger, attrs...)
	path := filepath.Join(s.JournalDir, name)
	if err := s.Recorder.DumpFile(path); err != nil {
		s.logger().Error("flight dump failed", "trigger", trigger, "path", path, "err", err)
		return
	}
	s.logger().Info("flight recorder dumped", "trigger", trigger, "path", path)
}

// handleEvents streams a job's live events as Server-Sent Events: periodic
// "progress" heartbeats (cumulative, so a dropped event is recovered by the
// next beat), "span" completions, per-scenario "result" records, and a final
// "status" event after which the stream closes. Subscribing to a finished
// job yields its status immediately.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(w, "bad job id", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	job := s.jobsByID[id]
	s.mu.Unlock()
	if job == nil {
		http.Error(w, fmt.Sprintf("no job %d", id), http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// Subscribe before the first snapshot so no terminal transition can fall
	// between them; a closed hub (already-finished job) hands back a closed
	// channel and the loop emits the final status straight away.
	ch, cancel := job.hub.Subscribe(64)
	defer cancel()
	s.mu.Lock()
	view := jobView(job)
	s.mu.Unlock()
	if writeSSE(w, "progress", view) != nil {
		return
	}
	fl.Flush()
	if terminal(view.Status) {
		_ = writeSSE(w, "status", view)
		fl.Flush()
		return
	}
	tick := time.NewTicker(s.heartbeat())
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
			s.mu.Lock()
			view := jobView(job)
			s.mu.Unlock()
			if writeSSE(w, "progress", view) != nil {
				return
			}
			fl.Flush()
		case e, open := <-ch:
			if !open {
				// Hub closed: the job is terminal (or the server shut the
				// stream down); report the final state and end the stream.
				s.mu.Lock()
				view := jobView(job)
				s.mu.Unlock()
				_ = writeSSE(w, "status", view)
				fl.Flush()
				return
			}
			if writeSSE(w, e.Type, e.Data) != nil {
				return
			}
			fl.Flush()
			if e.Type == "status" {
				return
			}
		}
	}
}

// writeSSE frames one Server-Sent Event with a JSON data payload.
func writeSSE(w io.Writer, event string, data any) error {
	b, err := json.Marshal(data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	return err
}

// publishResult streams one finished scenario to the job's subscribers.
func (s *Server) publishResult(job *Job, index int, r *campaign.Result, done int) {
	job.hub.Publish(obs.StreamEvent{Type: "result", Data: resultEvent{
		Index: index, ID: r.ID, Outcome: campaign.ResultOutcome(r),
		Retries: r.Retries, ScenariosDone: done, ScenariosTotal: job.ScenariosTotal,
	}})
}
