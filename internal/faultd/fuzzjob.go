package faultd

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"

	"dmafault/internal/campaign"
	"dmafault/internal/fuzz"
	"dmafault/internal/obs"
)

// Fuzz-campaign jobs: the supervised job plane (admission, queue, watchdog,
// drain, cancellation) is shared with fixed-set campaigns; only the engine
// differs. The fuzz loop publishes two extra live surfaces — per-execution
// "result" SSE events (the execution index plays the scenario-index role)
// and per-round "fuzz" coverage events carrying fuzz.RoundStats — and its
// final report merges into /metrics as the fuzz_* families.
//
// When JournalDir is set, the corpus persists to fuzz-<id>.corpus.jsonl.
// That name deliberately does not match the boot-recovery journal pattern:
// fuzz jobs are not crash-recovered (their budget semantics do not replay),
// but the corpus file survives and can seed a later run.

// runFuzzJob executes a fuzz-campaign job. Called from runJob with a
// scheduler slot held; the caller's deferred publishTerminal broadcasts the
// terminal status.
func (s *Server) runFuzzJob(job *Job) {
	spec := job.fuzzSpec
	workers := job.workers
	if workers <= 0 {
		workers = s.Workers
	}
	cfg := fuzz.Config{
		Seed:           job.fuzzSeed,
		Workers:        workers,
		Attempts:       spec.Attempts,
		Batch:          spec.Batch,
		MinimizeBudget: spec.Minimize,
	}
	if s.Cache != nil {
		cfg.Cache = s.Cache
		cfg.OnCacheHit = func(exec int) {
			s.mu.Lock()
			job.CacheHits++
			s.mu.Unlock()
		}
	}
	if s.JournalDir != "" {
		cfg.CorpusPath = filepath.Join(s.JournalDir, fmt.Sprintf("fuzz-%d.corpus.jsonl", job.ID))
	}
	cfg.OnResult = func(exec int, r *campaign.Result) {
		s.scenariosCompleted.Inc()
		s.mu.Lock()
		job.ScenariosDone++
		job.lastBeat = s.now()
		done := job.ScenariosDone
		s.mu.Unlock()
		s.publishResult(job, exec, r, done)
	}
	cfg.OnRound = func(st fuzz.RoundStats) {
		s.mu.Lock()
		job.lastBeat = s.now()
		s.mu.Unlock()
		job.hub.Publish(obs.StreamEvent{Type: "fuzz", Data: st})
		s.logger().Debug("fuzz round", "job", job.ID, "round", st.Round,
			"execs", st.Execs, "corpus", st.CorpusSize, "signatures", st.Signatures)
	}

	rep, err := fuzz.Run(job.ctx, cfg)
	if errors.Is(err, context.Canceled) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if job.stalled {
			job.Status = StatusStalled
			job.Error = fmt.Sprintf("stalled: no progress within %s", s.StallTimeout)
			s.jobsStalled.Inc()
			s.campaignsFailed.Inc()
			s.flightDump("stall", job)
			return
		}
		job.Status = StatusCancelled
		job.Error = "cancelled"
		s.campaignsCancelled.Inc()
		return
	}
	if err != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		job.Status = StatusFailed
		job.Error = err.Error()
		s.campaignsFailed.Inc()
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	job.Status = StatusDone
	job.Fuzz = rep
	if mergeErr := s.merged.Merge(rep.MetricsSnapshot()); mergeErr != nil {
		job.Error = "metrics merge: " + mergeErr.Error()
	}
	s.campaignsDone.Inc()
}
