package faultd

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sseEvent is one decoded frame from a GET /campaigns/{id}/events stream.
type sseEvent struct {
	Type string
	Data string
}

// readSSE consumes the stream until a "status" frame, the limit, or EOF.
func readSSE(t *testing.T, body *bufio.Scanner, limit int) []sseEvent {
	t.Helper()
	var out []sseEvent
	var event string
	for body.Scan() {
		line := body.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			out = append(out, sseEvent{Type: event, Data: strings.TrimPrefix(line, "data: ")})
			if event == "status" || len(out) >= limit {
				return out
			}
		}
	}
	if err := body.Err(); err != nil {
		t.Fatalf("sse stream: %v", err)
	}
	return out
}

// countTypes tallies frames per event type.
func countTypes(evs []sseEvent) map[string]int {
	n := map[string]int{}
	for _, e := range evs {
		n[e.Type]++
	}
	return n
}

// TestEventsStreamEndToEnd is the SSE acceptance test: a live job's stream
// carries at least one progress heartbeat, per-scenario result records,
// span completions, and exactly one terminal status frame, after which the
// server closes the stream.
func TestEventsStreamEndToEnd(t *testing.T) {
	srv := NewServer()
	srv.HeartbeatInterval = 10 * time.Millisecond
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _ := post(t, ts.URL+"/campaigns", stallBody(3)); code != http.StatusAccepted {
		t.Fatal("submit failed")
	}
	resp, err := http.Get(ts.URL + "/campaigns/1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	evs := readSSE(t, bufio.NewScanner(resp.Body), 10_000)
	n := countTypes(evs)
	if n["progress"] < 1 {
		t.Errorf("stream carried %d progress heartbeats, want >= 1", n["progress"])
	}
	if n["result"] < 1 {
		t.Errorf("stream carried %d result records, want >= 1 (types: %v)", n["result"], n)
	}
	if n["span"] < 1 {
		t.Errorf("stream carried %d span completions, want >= 1 (types: %v)", n["span"], n)
	}
	if n["status"] != 1 {
		t.Fatalf("stream carried %d status frames, want exactly 1 (types: %v)", n["status"], n)
	}
	last := evs[len(evs)-1]
	if last.Type != "status" {
		t.Fatalf("stream did not end on status: %+v", last)
	}
	var st jobEvent
	if err := json.Unmarshal([]byte(last.Data), &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusDone || st.ScenariosDone != 3 {
		t.Fatalf("terminal frame %+v, want done 3/3", st)
	}
	// The server closed the stream after the terminal frame.
	if more := readSSE(t, bufio.NewScanner(resp.Body), 1); len(more) != 0 {
		t.Fatalf("stream stayed open past status: %+v", more)
	}
	srv.Wait()
}

// TestEventsFinishedJobYieldsImmediateStatus: subscribing to an
// already-terminal job gets its snapshot and status straight away — no
// waiting for heartbeats that will never come.
func TestEventsFinishedJobYieldsImmediateStatus(t *testing.T) {
	srv := NewServer()
	srv.Synchronous = true
	srv.HeartbeatInterval = time.Hour // a tick must never be needed
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _ := post(t, ts.URL+"/campaigns", `{"preset":"ladder","n":2,"seed":7,"workers":1}`); code != http.StatusAccepted {
		t.Fatal("submit failed")
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(ts.URL + "/campaigns/1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	evs := readSSE(t, bufio.NewScanner(resp.Body), 10)
	n := countTypes(evs)
	if n["status"] != 1 || evs[len(evs)-1].Type != "status" {
		t.Fatalf("finished-job stream: %+v", evs)
	}
}

// TestEventsClientDisconnectMidJob pins the disconnect path: a subscriber
// that walks away mid-job is unsubscribed (the hub drops to zero
// subscribers), and the job itself runs to completion unperturbed.
func TestEventsClientDisconnectMidJob(t *testing.T) {
	srv := NewServer()
	srv.HeartbeatInterval = 10 * time.Millisecond
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _ := post(t, ts.URL+"/campaigns", stallBody(4)); code != http.StatusAccepted {
		t.Fatal("submit failed")
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/campaigns/1/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one frame to prove the stream was live, then vanish.
	if evs := readSSE(t, bufio.NewScanner(resp.Body), 1); len(evs) != 1 {
		t.Fatalf("no frame before disconnect: %+v", evs)
	}
	cancel()
	resp.Body.Close()

	srv.mu.Lock()
	job := srv.jobsByID[1]
	srv.mu.Unlock()
	if job == nil {
		t.Fatal("job 1 missing")
	}
	deadline := time.Now().Add(10 * time.Second)
	for job.hub.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("hub still has %d subscribers after disconnect", job.hub.Subscribers())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := pollJob(t, ts.URL+"/campaigns/1"); got.Status != StatusDone {
		t.Fatalf("job after subscriber disconnect: %+v", got)
	}
	srv.Wait()
}

// TestEventsRejectsUnknownAndMalformedIDs.
func TestEventsRejectsUnknownAndMalformedIDs(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _ := get(t, ts.URL+"/campaigns/99/events"); code != http.StatusNotFound {
		t.Errorf("unknown job events: %d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/campaigns/xyz/events"); code != http.StatusBadRequest {
		t.Errorf("malformed id events: %d, want 400", code)
	}
}
