// Package faultd is the campaign service behind cmd/dmafaultd: a stdlib
// net/http server that accepts scenario-set JSON, runs each submission as a
// job on the campaign engine's worker pool, reports live progress, and
// exposes the unified metric surface of internal/metrics.
//
// Endpoints:
//
//	GET  /healthz          liveness probe
//	GET  /metrics          Prometheus text exposition: service counters plus
//	                       every completed campaign's machine metrics, merged
//	POST /campaigns        submit a campaign (scenario array, campaign
//	                       document, or {"preset": ...}); returns the job ID
//	GET  /campaigns        list jobs
//	GET  /campaigns/{id}   job status: live progress, final aggregate
//	DELETE /campaigns/{id} cancel a running job (202; 409 if finished)
//	GET  /debug/pprof/...  runtime profiles
//
// Two metric planes coexist deliberately. Service-level counters are atomic
// instruments (scrapes race with request handling); campaign snapshots come
// from quiescent machines and are merged under the server mutex, preserving
// the registry's determinism contract.
package faultd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"dmafault/internal/campaign"
	"dmafault/internal/metrics"
)

// MaxScenarios bounds one submission; larger sets are rejected with 400
// rather than silently truncated.
const MaxScenarios = 4096

// JobStatus is the lifecycle of a submitted campaign.
type JobStatus string

const (
	StatusRunning   JobStatus = "running"
	StatusDone      JobStatus = "done"
	StatusFailed    JobStatus = "failed"
	StatusCancelled JobStatus = "cancelled"
)

// Job is one submitted campaign. Progress fields are updated by worker
// goroutines under the server mutex; Summary appears when the job finishes.
type Job struct {
	ID     int       `json:"id"`
	Name   string    `json:"name,omitempty"`
	Status JobStatus `json:"status"`
	// ScenariosTotal/ScenariosDone report live progress.
	ScenariosTotal int `json:"scenarios_total"`
	ScenariosDone  int `json:"scenarios_done"`
	// Error is set when the whole run aborted (invalid spec, pool failure).
	Error string `json:"error,omitempty"`
	// Summary is the final aggregate (done jobs only).
	Summary *campaign.Summary `json:"summary,omitempty"`

	// cancel aborts the job's engine context (set while running).
	cancel context.CancelFunc
}

// Request is the POST /campaigns body. Exactly one of Scenarios or Preset
// must be given.
type Request struct {
	Name    string `json:"name,omitempty"`
	Workers int    `json:"workers,omitempty"`
	// Scenarios is an explicit scenario set (campaign.Scenario JSON).
	Scenarios []campaign.Scenario `json:"scenarios,omitempty"`
	// Preset generates the set server-side: mixed|fuzz|bootstudy|ringflood|ladder.
	Preset string `json:"preset,omitempty"`
	N      int    `json:"n,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
}

// Server is the service state: the job table, the merged campaign metric
// dump, and the service-plane instruments.
type Server struct {
	// Workers is the default engine pool size for jobs that don't set one.
	Workers int
	// Synchronous makes POST /campaigns run the job inline before
	// responding — deterministic single-request behavior for tests and
	// scripted use. Production keeps it false and polls.
	Synchronous bool
	// JournalDir, when set, gives every job a campaign journal at
	// <dir>/job-<id>.jsonl, so completed scenarios of a killed daemon can be
	// replayed by cmd/campaign --resume.
	JournalDir string

	mu     sync.Mutex
	jobs   []*Job
	merged *metrics.Snapshot
	wg     sync.WaitGroup

	reg                *metrics.Registry
	requests           *metrics.Counter
	campaignsStarted   *metrics.Counter
	campaignsDone      *metrics.Counter
	campaignsFailed    *metrics.Counter
	campaignsCancelled *metrics.Counter
	scenariosCompleted *metrics.Counter
	running            *metrics.Gauge
}

// NewServer builds an empty service.
func NewServer() *Server {
	s := &Server{
		merged:             &metrics.Snapshot{},
		reg:                metrics.NewRegistry(),
		requests:           metrics.NewCounter("faultd_requests_total", "HTTP requests served."),
		campaignsStarted:   metrics.NewCounter("faultd_campaigns_started_total", "Campaign jobs accepted."),
		campaignsDone:      metrics.NewCounter("faultd_campaigns_completed_total", "Campaign jobs finished successfully."),
		campaignsFailed:    metrics.NewCounter("faultd_campaigns_failed_total", "Campaign jobs aborted by an error."),
		campaignsCancelled: metrics.NewCounter("faultd_campaigns_cancelled_total", "Campaign jobs cancelled by request or shutdown."),
		scenariosCompleted: metrics.NewCounter("faultd_scenarios_completed_total", "Scenarios finished across all jobs."),
		running:            metrics.NewGauge("faultd_campaigns_running", "Campaign jobs currently executing."),
	}
	s.reg.MustRegister(s.requests, s.campaignsStarted, s.campaignsDone,
		s.campaignsFailed, s.campaignsCancelled, s.scenariosCompleted, s.running)
	return s
}

// Handler builds the service mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleJob)
	mux.HandleFunc("DELETE /campaigns/{id}", s.handleCancel)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Inc()
		mux.ServeHTTP(w, r)
	})
}

// Wait blocks until every accepted job has finished — test and shutdown
// hygiene.
func (s *Server) Wait() { s.wg.Wait() }

// CancelAll aborts every running job's engine context. The jobs finish
// their claimed scenarios, journal them, and publish StatusCancelled.
func (s *Server) CancelAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		if j.Status == StatusRunning && j.cancel != nil {
			j.cancel()
		}
	}
}

// Drain is graceful shutdown for the job plane: it waits for in-flight
// jobs to complete; if ctx expires first it cancels the stragglers (which
// then stop claiming scenarios, journal the ones they finished, and drain)
// and waits for them to wind down, returning the ctx error.
func (s *Server) Drain(ctx context.Context) error {
	idle := make(chan struct{})
	go func() { s.wg.Wait(); close(idle) }()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		s.CancelAll()
		<-idle
		return ctx.Err()
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics renders the service plane merged with every completed
// campaign's machine metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap, err := s.reg.Gather()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.mu.Lock()
	err = snap.Merge(s.merged)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = snap.WriteText(w)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "parse request: "+err.Error(), http.StatusBadRequest)
		return
	}
	scs, err := resolveScenarios(&req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	job := &Job{ID: len(s.jobs) + 1, Name: req.Name,
		Status: StatusRunning, ScenariosTotal: len(scs), cancel: cancel}
	s.jobs = append(s.jobs, job)
	s.mu.Unlock()
	s.campaignsStarted.Inc()
	s.running.Add(1)
	s.wg.Add(1)
	run := func() {
		defer s.wg.Done()
		defer s.running.Add(-1)
		defer cancel()
		s.runJob(ctx, job, scs, req.Workers)
	}
	if s.Synchronous {
		run()
	} else {
		go run()
	}

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"id": job.ID, "url": fmt.Sprintf("/campaigns/%d", job.ID),
		"scenarios_total": job.ScenariosTotal,
	})
}

// resolveScenarios turns a request into a validated scenario set.
func resolveScenarios(req *Request) ([]campaign.Scenario, error) {
	switch {
	case len(req.Scenarios) > 0 && req.Preset != "":
		return nil, fmt.Errorf("give scenarios or a preset, not both")
	case req.Preset != "":
		gen, ok := campaign.Presets[req.Preset]
		if !ok {
			names := make([]string, 0, len(campaign.Presets))
			for n := range campaign.Presets {
				names = append(names, n)
			}
			sort.Strings(names)
			return nil, fmt.Errorf("unknown preset %q (have %v)", req.Preset, names)
		}
		n := req.N
		if n <= 0 {
			n = 8
		}
		if n > MaxScenarios {
			return nil, fmt.Errorf("n %d exceeds the per-job cap %d", n, MaxScenarios)
		}
		return gen(n, req.Seed), nil
	case len(req.Scenarios) > MaxScenarios:
		return nil, fmt.Errorf("%d scenarios exceed the per-job cap %d", len(req.Scenarios), MaxScenarios)
	case len(req.Scenarios) > 0:
		return req.Scenarios, nil
	default:
		return nil, fmt.Errorf("empty campaign: no scenarios and no preset")
	}
}

// runJob executes the campaign and publishes the outcome.
func (s *Server) runJob(ctx context.Context, job *Job, scs []campaign.Scenario, workers int) {
	if workers <= 0 {
		workers = s.Workers
	}
	eng := campaign.Engine{
		Workers: workers,
		OnResult: func(i int, r *campaign.Result) {
			s.scenariosCompleted.Inc()
			s.mu.Lock()
			job.ScenariosDone++
			s.mu.Unlock()
		},
	}
	if s.JournalDir != "" {
		j, err := campaign.OpenJournal(filepath.Join(s.JournalDir, fmt.Sprintf("job-%d.jsonl", job.ID)), scs, false)
		if err != nil {
			s.mu.Lock()
			defer s.mu.Unlock()
			job.Status = StatusFailed
			job.Error = err.Error()
			s.campaignsFailed.Inc()
			return
		}
		defer j.Close()
		eng.Journal = j
	}
	sum, err := eng.RunCtx(ctx, scs)
	s.mu.Lock()
	defer s.mu.Unlock()
	if errors.Is(err, context.Canceled) {
		job.Status = StatusCancelled
		job.Error = "cancelled"
		s.campaignsCancelled.Inc()
		return
	}
	if err != nil {
		job.Status = StatusFailed
		job.Error = err.Error()
		s.campaignsFailed.Inc()
		return
	}
	job.Status = StatusDone
	job.Summary = sum
	if mergeErr := s.merged.Merge(sum.Metrics); mergeErr != nil {
		// Incompatible layouts across jobs (a bucket change mid-flight):
		// keep serving, but surface it on the job.
		job.Error = "metrics merge: " + mergeErr.Error()
	}
	s.campaignsDone.Inc()
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := make([]Job, len(s.jobs))
	for i, j := range s.jobs {
		list[i] = *j
		list[i].Summary = nil // keep the listing lightweight
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{"jobs": list})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(w, "bad job id", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	if id < 1 || id > len(s.jobs) {
		s.mu.Unlock()
		http.Error(w, fmt.Sprintf("no job %d", id), http.StatusNotFound)
		return
	}
	job := *s.jobs[id-1]
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(&job)
}

// handleCancel aborts a running job. The response is 202 (the engine winds
// down asynchronously: claimed scenarios finish and are journaled); polling
// GET /campaigns/{id} shows "cancelled" when it has.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(w, "bad job id", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	if id < 1 || id > len(s.jobs) {
		s.mu.Unlock()
		http.Error(w, fmt.Sprintf("no job %d", id), http.StatusNotFound)
		return
	}
	job := s.jobs[id-1]
	if job.Status != StatusRunning {
		status := job.Status
		s.mu.Unlock()
		http.Error(w, fmt.Sprintf("job %d is %s, not running", id, status), http.StatusConflict)
		return
	}
	cancel := job.cancel
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(map[string]any{"id": id, "status": "cancelling"})
}
