// Package faultd is the campaign service behind cmd/dmafaultd: a stdlib
// net/http server that accepts scenario-set JSON, runs each submission as a
// job on the campaign engine's worker pool, reports live progress, and
// exposes the unified metric surface of internal/metrics.
//
// Endpoints (wire formats in internal/faultd/api; typed client in
// internal/faultdclient):
//
//	GET  /healthz             liveness probe ("ok", or "draining" after
//	                          shutdown begins)
//	GET  /readyz              readiness probe: 503 while draining or while
//	                          the job queue is saturated
//	GET  /metrics             Prometheus text exposition: service counters
//	                          plus every completed campaign's machine
//	                          metrics, merged
//	GET  /v1/metrics          the same merged snapshot as JSON
//	                          (metrics.Snapshot) for typed consumers — the
//	                          fleet scrape loop reads this
//	POST /v1/campaigns        submit a campaign (scenario array, preset, or
//	                          fuzz spec); returns the job ID. 429 +
//	                          Retry-After when the queue is full, 503 once
//	                          drain has begun
//	GET  /v1/campaigns        list jobs
//	GET  /v1/campaigns/{id}   job status: live progress, final aggregate
//	DELETE /v1/campaigns/{id} cancel a queued or running job (202; 409 if
//	                          finished)
//	GET  /v1/campaigns/{id}/events  live SSE stream
//	GET  /v1/cache/stats      shared result-cache stats
//	DELETE /v1/cache          drop every cached result
//	GET  /debug/pprof/...     runtime profiles
//
// Every /v1 job route also answers at its historical unversioned path
// (/campaigns...), which sets a Deprecation header and a Link to the
// successor route; new clients should speak /v1 only.
//
// The Cache field (dmafaultd -cache-dir) attaches a shared
// internal/resultstore log: campaign jobs, recovered resumes, and fuzz
// batches all consult it before executing a scenario, so re-submitting
// overlapping work mostly replays recorded results (per-job hit counts on
// the job document, service-wide resultstore_* metric families).
//
// The job plane is supervised (see supervisor.go): submissions pass
// admission control into a bounded FIFO queue, a dispatcher starts them
// oldest-first under the MaxConcurrent cap, a watchdog cancels jobs whose
// progress heartbeat stalls, a circuit breaker quarantines scenarios that
// repeatedly panic or blow their deadline across jobs (quarantine.go), and
// on boot the journal directory is scanned so jobs interrupted by a crash
// resume with byte-identical final summaries (recovery.go).
//
// Two metric planes coexist deliberately. Service-level counters are atomic
// instruments (scrapes race with request handling); campaign snapshots come
// from quiescent machines and are merged under the server mutex, preserving
// the registry's determinism contract. Supervision families (queue depth
// and wait, stall cancellations, quarantine trips, recovered jobs) are
// registered through metrics.OmitZero, so they are absent from idle
// expositions — their presence is itself a signal.
package faultd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"dmafault/internal/campaign"
	"dmafault/internal/faultd/api"
	"dmafault/internal/metrics"
	"dmafault/internal/obs"
	"dmafault/internal/resultstore"
)

// MaxScenarios bounds one submission; larger sets are rejected with 400
// rather than silently truncated.
const MaxScenarios = 4096

// DefaultQueueDepth bounds the pending-job queue when the caller leaves
// QueueDepth zero.
const DefaultQueueDepth = 64

// JobStatus is the lifecycle of a submitted campaign (wire type in api).
type JobStatus = api.JobStatus

const (
	StatusQueued    = api.StatusQueued
	StatusRunning   = api.StatusRunning
	StatusDone      = api.StatusDone
	StatusFailed    = api.StatusFailed
	StatusCancelled = api.StatusCancelled
	StatusStalled   = api.StatusStalled
)

// Job is one submitted campaign: the public wire state (api.Job, embedded —
// progress fields are updated by worker goroutines under the server mutex;
// Summary appears when the job finishes) plus the supervisor's scheduling
// state.
type Job struct {
	api.Job

	// Scheduling state (owned by the supervisor; see supervisor.go).
	ctx        context.Context
	cancel     context.CancelFunc
	scs        []campaign.Scenario
	workers    int
	restored   map[int]*campaign.Result // journal results seeded at recovery
	resume     bool                     // reopen the journal for append
	enqueuedAt time.Time
	queueWait  time.Duration // admitted → dispatched, set by the dispatcher
	lastBeat   time.Time     // progress heartbeat, guarded by Server.mu
	stalled    bool          // set by the watchdog before it cancels
	adm        *admission
	keys       []string // per-index scenario keys (breaker identity)
	// fuzzSpec marks the job as a fuzz campaign (see api.FuzzSpec); scs is
	// nil and fuzzSeed carries the submission's Seed.
	fuzzSpec *api.FuzzSpec
	fuzzSeed int64
	// hub fans the job's live events (spans, results, status) out to SSE
	// subscribers; closed when the job reaches a terminal status.
	hub *obs.Hub
	// panicDumped limits the panic-triggered flight dump to once per job,
	// guarded by Server.mu.
	panicDumped bool
}

// Request is the POST /v1/campaigns body (wire type in api). Exactly one of
// Scenarios, Preset, or Fuzz must be given.
type Request = api.SubmitRequest

// FuzzSpec parameterizes a fuzz-campaign job (wire type in api). Its corpus
// persists to <JournalDir>/fuzz-<id>.corpus.jsonl (a name the boot-recovery
// scan ignores — fuzz jobs are not crash-recovered, but a resubmitted job
// can resume the corpus file by hand via cmd/campaign).
type FuzzSpec = api.FuzzSpec

// Server is the service state: the job table, the scheduler, the merged
// campaign metric dump, and the service-plane instruments. Configuration
// fields must be set before the first submission (or RecoverJobs call) and
// not changed afterwards.
type Server struct {
	// Workers is the default engine pool size for jobs that don't set one.
	Workers int
	// Synchronous makes POST /campaigns run the job inline before
	// responding — deterministic single-request behavior for tests and
	// scripted use. Production keeps it false and polls. Synchronous jobs
	// bypass the queue and concurrency cap but still respect admission
	// control (draining submissions are rejected).
	Synchronous bool
	// JournalDir, when set, gives every job a campaign journal at
	// <dir>/job-<id>.jsonl. RecoverJobs scans the same directory at boot
	// and resumes any journal whose scenario set is unfinished.
	JournalDir string
	// MaxConcurrent caps how many jobs execute at once; further accepted
	// jobs wait in the queue. <= 0 means unlimited (every accepted job
	// starts immediately).
	MaxConcurrent int
	// QueueDepth bounds the pending-job queue; submissions beyond it get
	// 429 with Retry-After. <= 0 means DefaultQueueDepth. Boot recovery
	// may exceed the bound (recovered jobs were already accepted once).
	QueueDepth int
	// StallTimeout is the watchdog budget: a running job whose progress
	// heartbeat (scenario claims and completions) goes quiet for longer is
	// cancelled with status "stalled". 0 disables the watchdog.
	StallTimeout time.Duration
	// QuarantineThreshold trips the scenario circuit breaker after a
	// scenario key accumulates this many panic/timeout outcomes across
	// jobs; tripped scenarios short-circuit to recorded "quarantined"
	// results. <= 0 disables the breaker.
	QuarantineThreshold int
	// QuarantineProbeAfter is how many jobs a tripped scenario sits out
	// before one job is let through as a half-open probe (a clean probe
	// resets the breaker, a failing one re-arms the wait). <= 0 means
	// DefaultProbeAfter.
	QuarantineProbeAfter int
	// Now is the injected clock for queue-wait measurement and stall
	// detection timestamps; nil means time.Now.
	Now func() time.Time
	// Log receives the service's structured diagnostics; nil discards them.
	Log *slog.Logger
	// Recorder, when set, is the always-on flight recorder: spans and events
	// land in its ring and the supervisor dumps the retained window to the
	// journal directory on stall, panic, quarantine trip, and shutdown. Its
	// retention counters are exported (via metrics.OmitZero) once Handler is
	// built.
	Recorder *obs.Recorder
	// HeartbeatInterval paces SSE "progress" events on
	// GET /v1/campaigns/{id}/events. <= 0 means DefaultHeartbeatInterval.
	HeartbeatInterval time.Duration
	// Cache, when set, is the shared content-addressed result store: every
	// campaign job, recovered resume, and fuzz batch consults it before
	// executing a scenario and appends cacheable results. Its resultstore_*
	// metric families are registered (via OmitZero) once Handler is built,
	// and the /v1/cache/* admin endpoints operate on it.
	Cache *resultstore.Store

	mu           sync.Mutex
	jobs         []*Job       // submission order, for listing
	jobsByID     map[int]*Job // monotonic IDs survive recovery gaps
	nextID       int
	pending      []*Job // FIFO queue consumed by the dispatcher
	draining     bool
	dispatchOn   bool
	stopDispatch bool
	cond         *sync.Cond // signals the dispatcher about pending/stop
	runningN     int
	peakRunning  int
	merged       *metrics.Snapshot
	wg           sync.WaitGroup
	sem          chan struct{} // MaxConcurrent tokens (nil = unlimited)
	quarantine   *quarantine

	reg                *metrics.Registry
	requests           *metrics.Counter
	campaignsStarted   *metrics.Counter
	campaignsDone      *metrics.Counter
	campaignsFailed    *metrics.Counter
	campaignsCancelled *metrics.Counter
	scenariosCompleted *metrics.Counter
	running            *metrics.Gauge

	// Supervision families, registered through metrics.OmitZero so an idle
	// boot's exposition carries none of them.
	queueDepthG          *metrics.Gauge
	queueWait            *metrics.Histogram
	peakRunningG         *metrics.Gauge
	rejectedFull         *metrics.Counter
	rejectedDraining     *metrics.Counter
	jobsStalled          *metrics.Counter
	jobsRecovered        *metrics.Counter
	quarantineTrips      *metrics.Counter
	quarantineProbes     *metrics.Counter
	scenariosQuarantined *metrics.Counter

	// Observability plane (obs.go): spanMetrics summarizes every completed
	// wall-clock span into obs_span_duration_seconds (absent until one
	// completes, via OmitZero); tracer mints the request spans; obsOnce
	// defers Recorder registration until Handler, when the field is final.
	spanMetrics *obs.SpanMetrics
	tracer      *obs.Tracer
	obsOnce     sync.Once
}

// QueueWaitBuckets are the faultd_queue_wait_seconds histogram bounds.
var QueueWaitBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2, 10}

// NewServer builds an empty service.
func NewServer() *Server {
	s := &Server{
		merged:             &metrics.Snapshot{},
		jobsByID:           map[int]*Job{},
		nextID:             1,
		reg:                metrics.NewRegistry(),
		requests:           metrics.NewCounter("faultd_requests_total", "HTTP requests served."),
		campaignsStarted:   metrics.NewCounter("faultd_campaigns_started_total", "Campaign jobs accepted."),
		campaignsDone:      metrics.NewCounter("faultd_campaigns_completed_total", "Campaign jobs finished successfully."),
		campaignsFailed:    metrics.NewCounter("faultd_campaigns_failed_total", "Campaign jobs aborted by an error."),
		campaignsCancelled: metrics.NewCounter("faultd_campaigns_cancelled_total", "Campaign jobs cancelled by request or shutdown."),
		scenariosCompleted: metrics.NewCounter("faultd_scenarios_completed_total", "Scenarios finished across all jobs."),
		running:            metrics.NewGauge("faultd_campaigns_running", "Campaign jobs currently executing."),

		queueDepthG:          metrics.NewGauge("faultd_queue_depth", "Jobs waiting in the admission queue."),
		queueWait:            metrics.NewHistogram("faultd_queue_wait_seconds", "Time jobs spent queued before starting.", QueueWaitBuckets),
		peakRunningG:         metrics.NewGauge("faultd_campaigns_running_peak", "High-water mark of concurrently executing jobs."),
		rejectedFull:         metrics.NewCounter("faultd_submissions_rejected_full_total", "Submissions rejected with 429 because the queue was full."),
		rejectedDraining:     metrics.NewCounter("faultd_submissions_rejected_draining_total", "Submissions rejected with 503 after drain began."),
		jobsStalled:          metrics.NewCounter("faultd_jobs_stalled_total", "Jobs cancelled by the stuck-job watchdog."),
		jobsRecovered:        metrics.NewCounter("faultd_jobs_recovered_total", "Unfinished journals re-registered as jobs at boot."),
		quarantineTrips:      metrics.NewCounter("faultd_quarantine_trips_total", "Scenario circuit-breaker trips."),
		quarantineProbes:     metrics.NewCounter("faultd_quarantine_probes_total", "Half-open probe jobs admitted for tripped scenarios."),
		scenariosQuarantined: metrics.NewCounter("faultd_scenarios_quarantined_total", "Scenario runs short-circuited by the circuit breaker."),

		spanMetrics: obs.NewSpanMetrics(),
	}
	s.cond = sync.NewCond(&s.mu)
	s.reg.MustRegister(s.requests, s.campaignsStarted, s.campaignsDone,
		s.campaignsFailed, s.campaignsCancelled, s.scenariosCompleted, s.running)
	s.reg.MustRegister(
		metrics.OmitZero(s.queueDepthG), metrics.OmitZero(s.queueWait),
		metrics.OmitZero(s.peakRunningG), metrics.OmitZero(s.rejectedFull),
		metrics.OmitZero(s.rejectedDraining), metrics.OmitZero(s.jobsStalled),
		metrics.OmitZero(s.jobsRecovered), metrics.OmitZero(s.quarantineTrips),
		metrics.OmitZero(s.quarantineProbes), metrics.OmitZero(s.scenariosQuarantined))
	s.reg.MustRegister(metrics.OmitZero(s.spanMetrics))
	return s
}

func (s *Server) now() time.Time {
	if s.Now != nil {
		return s.Now()
	}
	return time.Now()
}

// Handler builds the service mux. It also finalizes the observability
// plane: the flight recorder's retention counters are registered here (not
// in NewServer — the Recorder field is still nil there, and its metrics
// methods are the one part of the obs API that is not nil-receiver safe),
// and the server tracer that mints per-request spans is built against the
// final Recorder value.
func (s *Server) Handler() http.Handler {
	s.obsOnce.Do(func() {
		if s.Recorder != nil {
			s.reg.MustRegister(metrics.OmitZero(s.Recorder))
		}
		if s.Cache != nil {
			s.reg.MustRegister(metrics.OmitZero(s.Cache))
		}
		s.tracer = obs.NewTracer(s.spanMetrics.Sink(), s.Recorder.SpanSink())
	})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/metrics", s.handleMetricsJSON)
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/cache/stats", s.handleCacheStats)
	mux.HandleFunc("DELETE /v1/cache", s.handleCacheClear)
	// Legacy unversioned aliases: same handlers, plus a Deprecation header
	// and a Link to the successor route, so pre-/v1 clients keep working
	// while announcing their own obsolescence.
	mux.HandleFunc("POST /campaigns", deprecated("/v1/campaigns", s.handleSubmit))
	mux.HandleFunc("GET /campaigns", deprecated("/v1/campaigns", s.handleList))
	mux.HandleFunc("GET /campaigns/{id}", deprecated("/v1/campaigns/{id}", s.handleJob))
	mux.HandleFunc("GET /campaigns/{id}/events", deprecated("/v1/campaigns/{id}/events", s.handleEvents))
	mux.HandleFunc("DELETE /campaigns/{id}", deprecated("/v1/campaigns/{id}", s.handleCancel))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Inc()
		// The request span ends after the handler returns, so a /metrics
		// scrape never observes its own span — idle expositions stay empty.
		sp := s.tracer.Start("request",
			obs.A("method", r.Method), obs.A("path", r.URL.Path))
		defer sp.End()
		mux.ServeHTTP(w, r)
	})
}

// deprecated wraps a /v1 handler for its legacy unversioned alias: the
// response carries "Deprecation: true" and a successor-version Link so
// callers can discover the /v1 route mechanically.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

// handleHealthz is the liveness probe; it always answers 200 but the body
// reflects lifecycle state so an operator's curl shows drain progress.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if draining {
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the readiness probe: it fails while drain is in progress
// or while the admission queue is saturated, so load balancers stop routing
// submissions that would only bounce with 503/429.
//
// A fabric coordinator probes with ?lease=1 (and ?need_cache=1 when the
// campaign shares a result cache) to ask the stricter question "should I
// grant this node a NEW shard lease?". A draining node keeps finishing its
// in-flight shards — those jobs are already admitted — but must stop
// attracting fresh ones, and a cache-less node cannot take part in a
// cache-sharing campaign at all, so both answer 503 to lease probes.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	saturated := len(s.pending) >= s.queueCap()
	s.mu.Unlock()
	q := r.URL.Query()
	forLease := q.Get("lease") == "1"
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case draining:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case saturated:
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "saturated")
	case forLease && q.Get("need_cache") == "1" && s.Cache == nil:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "cache-less")
	default:
		fmt.Fprintln(w, "ready")
	}
}

// handleMetrics renders the service plane merged with every completed
// campaign's machine metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap, err := s.reg.Gather()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.mu.Lock()
	err = snap.Merge(s.merged)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = snap.WriteText(w)
}

// handleMetricsJSON is /metrics' typed twin: the identical gathered+merged
// snapshot, JSON-encoded for machine consumers (faultdclient.Metrics, the
// coordinator's fleet scrape loop).
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	snap, err := s.reg.Gather()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.mu.Lock()
	err = snap.Merge(s.merged)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	data, err := snap.JSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "parse request: "+err.Error(), http.StatusBadRequest)
		return
	}
	scs, err := resolveScenarios(&req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	job, admErr := s.admit(&req, scs)
	if admErr != nil {
		switch {
		case errors.Is(admErr, errDraining):
			s.rejectedDraining.Inc()
			s.logger().Warn("submission rejected", "reason", "draining")
			http.Error(w, "draining: not accepting new campaigns", http.StatusServiceUnavailable)
		case errors.Is(admErr, errQueueFull):
			s.rejectedFull.Inc()
			s.logger().Warn("submission rejected", "reason", "queue full", "queue_cap", s.queueCap())
			w.Header().Set("Retry-After", "1")
			http.Error(w, "job queue full, retry later", http.StatusTooManyRequests)
		default:
			http.Error(w, admErr.Error(), http.StatusInternalServerError)
		}
		return
	}
	s.logger().Info("job accepted", "job", job.ID, "name", job.Name,
		"scenarios", job.ScenariosTotal, "workers", req.Workers)

	if s.Synchronous {
		s.runWorker(job)
	}

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(api.SubmitResponse{
		ID: job.ID, URL: fmt.Sprintf("/v1/campaigns/%d", job.ID),
		ScenariosTotal: job.ScenariosTotal,
	})
}

// resolveScenarios turns a request into a validated scenario set (nil for a
// fuzz campaign, which generates its own scenarios as it runs).
func resolveScenarios(req *Request) ([]campaign.Scenario, error) {
	switch {
	case req.Fuzz != nil:
		if len(req.Scenarios) > 0 || req.Preset != "" {
			return nil, fmt.Errorf("a fuzz campaign takes no scenarios or preset")
		}
		if req.Fuzz.Attempts > MaxScenarios {
			return nil, fmt.Errorf("fuzz attempts %d exceed the per-job cap %d", req.Fuzz.Attempts, MaxScenarios)
		}
		return nil, nil
	case len(req.Scenarios) > 0 && req.Preset != "":
		return nil, fmt.Errorf("give scenarios or a preset, not both")
	case req.Preset != "":
		gen, ok := campaign.Presets[req.Preset]
		if !ok {
			names := make([]string, 0, len(campaign.Presets))
			for n := range campaign.Presets {
				names = append(names, n)
			}
			sort.Strings(names)
			return nil, fmt.Errorf("unknown preset %q (have %v)", req.Preset, names)
		}
		n := req.N
		if n <= 0 {
			n = 8
		}
		if n > MaxScenarios {
			return nil, fmt.Errorf("n %d exceeds the per-job cap %d", n, MaxScenarios)
		}
		return gen(n, req.Seed), nil
	case len(req.Scenarios) > MaxScenarios:
		return nil, fmt.Errorf("%d scenarios exceed the per-job cap %d", len(req.Scenarios), MaxScenarios)
	case len(req.Scenarios) > 0:
		return req.Scenarios, nil
	default:
		return nil, fmt.Errorf("empty campaign: no scenarios and no preset")
	}
}

// runJob executes the campaign and publishes the outcome. It runs on a
// worker goroutine with a scheduler slot held (see supervisor.go). The
// deferred publishTerminal runs after the per-branch unlock defers (LIFO),
// so the terminal status is broadcast only once it is visible in the table.
func (s *Server) runJob(job *Job) {
	defer s.publishTerminal(job)
	if job.fuzzSpec != nil {
		s.runFuzzJob(job)
		return
	}
	workers := job.workers
	if workers <= 0 {
		workers = s.Workers
	}
	eng := campaign.Engine{
		Workers:   workers,
		Completed: job.restored,
		Obs:       s.jobTracer(job),
		OnClaim: func(i int) {
			s.beat(job)
		},
		OnCacheHit: func(i int) {
			s.mu.Lock()
			job.CacheHits++
			s.mu.Unlock()
		},
		OnResult: func(i int, r *campaign.Result) {
			s.scenariosCompleted.Inc()
			s.mu.Lock()
			job.ScenariosDone++
			job.lastBeat = s.now()
			done := job.ScenariosDone
			panicDump := r.Outcome == campaign.OutcomePanic && !job.panicDumped
			if panicDump {
				job.panicDumped = true
			}
			s.mu.Unlock()
			s.publishResult(job, i, r, done)
			if panicDump {
				s.logger().Warn("scenario panicked", "job", job.ID, "index", i, "id", r.ID)
				s.flightDump("panic", job)
			}
		},
		Gate: s.quarantineGate(job),
	}
	if s.Cache != nil {
		eng.Cache = s.Cache
	}
	if s.JournalDir != "" {
		j, err := campaign.OpenJournal(filepath.Join(s.JournalDir, fmt.Sprintf("job-%d.jsonl", job.ID)), job.scs, job.resume)
		if err != nil {
			s.logger().Error("journal open failed", "job", job.ID, "err", err)
			s.quarantineAbort(job)
			s.mu.Lock()
			defer s.mu.Unlock()
			job.Status = StatusFailed
			job.Error = err.Error()
			s.campaignsFailed.Inc()
			return
		}
		defer j.Close()
		eng.Journal = j
	}
	execStart := s.now()
	sum, err := eng.RunCtx(job.ctx, job.scs)
	execDur := s.now().Sub(execStart)
	if errors.Is(err, context.Canceled) {
		s.quarantineAbort(job)
		s.mu.Lock()
		defer s.mu.Unlock()
		if job.stalled {
			job.Status = StatusStalled
			job.Error = fmt.Sprintf("stalled: no progress within %s", s.StallTimeout)
			s.jobsStalled.Inc()
			s.campaignsFailed.Inc()
			s.flightDump("stall", job)
			return
		}
		job.Status = StatusCancelled
		job.Error = "cancelled"
		s.campaignsCancelled.Inc()
		return
	}
	if err != nil {
		s.quarantineAbort(job)
		s.mu.Lock()
		defer s.mu.Unlock()
		job.Status = StatusFailed
		job.Error = err.Error()
		s.campaignsFailed.Inc()
		return
	}
	pubStart := s.now()
	s.quarantineReport(job, sum.Results)
	s.mu.Lock()
	defer s.mu.Unlock()
	job.Status = StatusDone
	job.Summary = sum
	job.ResultsHash = api.HashResults(sum.Results)
	if mergeErr := s.merged.Merge(sum.Metrics); mergeErr != nil {
		// Incompatible layouts across jobs (a bucket change mid-flight):
		// keep serving, but surface it on the job.
		job.Error = "metrics merge: " + mergeErr.Error()
	}
	// The phase breakdown rides the wire next to ResultsHash but outside
	// Summary, so fleet attribution never perturbs summary bytes.
	job.Timing = &api.Timing{
		QueueWaitSeconds: job.queueWait.Seconds(),
		ExecuteSeconds:   execDur.Seconds(),
		PublishSeconds:   s.now().Sub(pubStart).Seconds(),
		Attempts:         sum.Scenarios + sum.Retries,
	}
	s.campaignsDone.Inc()
}

// beat refreshes the job's progress heartbeat (worker claimed a scenario).
func (s *Server) beat(job *Job) {
	s.mu.Lock()
	job.lastBeat = s.now()
	s.mu.Unlock()
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := api.JobList{Jobs: make([]api.Job, len(s.jobs))}
	for i, j := range s.jobs {
		list.Jobs[i] = j.Job
		list.Jobs[i].Summary = nil // keep the listing lightweight
		list.Jobs[i].Fuzz = nil
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(&list)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(w, "bad job id", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	jp := s.jobsByID[id]
	if jp == nil {
		s.mu.Unlock()
		http.Error(w, fmt.Sprintf("no job %d", id), http.StatusNotFound)
		return
	}
	job := jp.Job // the wire view; scheduling state stays server-side
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(&job)
}

// handleCancel aborts a queued or running job. The response is 202 (the
// engine winds down asynchronously: claimed scenarios finish and are
// journaled); polling GET /campaigns/{id} shows "cancelled" when it has.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(w, "bad job id", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	job := s.jobsByID[id]
	if job == nil {
		s.mu.Unlock()
		http.Error(w, fmt.Sprintf("no job %d", id), http.StatusNotFound)
		return
	}
	if job.Status != StatusRunning && job.Status != StatusQueued {
		status := job.Status
		s.mu.Unlock()
		http.Error(w, fmt.Sprintf("job %d is %s, not cancellable", id, status), http.StatusConflict)
		return
	}
	cancel := job.cancel
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(api.CancelResponse{ID: id, Status: "cancelling"})
}
