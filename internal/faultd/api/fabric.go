package api

// Fabric wire types: the request/response bodies of the distributed-campaign
// coordinator's supervision surface (internal/fabric serves these; workers
// and operators consume them through internal/faultdclient). The coordinator
// is not a dmafaultd instance — it is the process driving a sharded campaign
// — but it speaks the same typed-wire discipline as the /v1 job API.
//
// Coordinator routes:
//
//	POST /v1/fabric/join     JoinRequest → JoinResponse (worker self-registration)
//	GET  /v1/fabric/workers  WorkerList (registry snapshot)
//	GET  /v1/fabric/events   Server-Sent Events: merged shard/result stream
//	GET  /metrics            fabric_* families, Prometheus text
//	GET  /healthz            liveness ("ok")

// JoinRequest is the POST /v1/fabric/join body: a worker announcing the base
// URL its /v1 API answers at. Workers re-join on an interval, so a join is an
// upsert — re-announcing an already-registered URL refreshes its liveness and
// is never an error.
type JoinRequest struct {
	// URL is the worker's advertised service root, e.g. "http://10.0.0.5:8077"
	// (no /v1 suffix). It must be dialable from the coordinator.
	URL string `json:"url"`
}

// JoinResponse acknowledges a registration.
type JoinResponse struct {
	Accepted bool `json:"accepted"`
	// Workers is the registry size after the join — a worker can tell whether
	// it is alone in the fabric.
	Workers int `json:"workers"`
}

// WorkerInfo is one registry entry in GET /v1/fabric/workers.
type WorkerInfo struct {
	URL string `json:"url"`
	// Up reports the last heartbeat's verdict (a lease-aware /readyz probe).
	Up bool `json:"up"`
	// Static marks workers configured at coordinator start (-worker-urls)
	// rather than self-registered through /v1/fabric/join.
	Static bool `json:"static,omitempty"`
	// Leases is how many shard leases the worker currently holds.
	Leases int `json:"leases"`
	// Quarantined marks a worker demoted for repeated bad deliveries: still
	// probed for liveness, skipped for leases until a half-open probe comes
	// back clean.
	Quarantined bool `json:"quarantined,omitempty"`
	// LastSeenUnix is the Unix-seconds timestamp of the last successful
	// heartbeat or join (0: never seen up).
	LastSeenUnix int64 `json:"last_seen_unix,omitempty"`
}

// WorkerList is the GET /v1/fabric/workers body.
type WorkerList struct {
	Workers []WorkerInfo `json:"workers"`
}
