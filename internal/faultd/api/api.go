// Package api is the typed wire surface of the dmafaultd /v1 HTTP API:
// every request and response body the service accepts or emits, as plain
// structs with pinned JSON encodings (api_test.go goldens the formats).
// The service (internal/faultd) serves these types and the typed client
// (internal/faultdclient) consumes them, so the two can never skew; legacy
// unversioned routes alias the /v1 handlers and emit a Deprecation header.
//
// Routes:
//
//	POST   /v1/campaigns             SubmitRequest → SubmitResponse (202)
//	GET    /v1/campaigns             JobList (summaries elided)
//	GET    /v1/campaigns/{id}        Job
//	DELETE /v1/campaigns/{id}        CancelResponse (202; 409 if finished)
//	GET    /v1/campaigns/{id}/events Server-Sent Events (see faultdclient.Watch)
//	GET    /v1/cache/stats           CacheStats
//	DELETE /v1/cache                 ClearCacheResponse (404 without -cache-dir)
//	GET    /v1/metrics               metrics.Snapshot (JSON twin of /metrics)
package api

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"dmafault/internal/campaign"
	"dmafault/internal/fuzz"
	"dmafault/internal/resultstore"
)

// JobStatus is the lifecycle of a submitted campaign.
type JobStatus string

const (
	// StatusQueued: accepted and waiting for a scheduler slot.
	StatusQueued  JobStatus = "queued"
	StatusRunning JobStatus = "running"
	StatusDone    JobStatus = "done"
	StatusFailed  JobStatus = "failed"
	// StatusCancelled: stopped by DELETE or shutdown; completed scenarios
	// were journaled.
	StatusCancelled JobStatus = "cancelled"
	// StatusStalled: the watchdog cancelled the job because its progress
	// heartbeat went quiet for longer than the stall timeout.
	StatusStalled JobStatus = "stalled"
)

// Terminal reports whether the status is final.
func (st JobStatus) Terminal() bool {
	return st != StatusQueued && st != StatusRunning
}

// SubmitRequest is the POST /v1/campaigns body. Exactly one of Scenarios,
// Preset, or Fuzz must be given.
type SubmitRequest struct {
	Name    string `json:"name,omitempty"`
	Workers int    `json:"workers,omitempty"`
	// Scenarios is an explicit scenario set (campaign.Scenario JSON).
	Scenarios []campaign.Scenario `json:"scenarios,omitempty"`
	// Preset generates the set server-side: mixed|fuzz|bootstudy|ringflood|ladder.
	Preset string `json:"preset,omitempty"`
	N      int    `json:"n,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	// Fuzz runs a coverage-guided fuzz campaign instead of a fixed set
	// (seeded by Seed above).
	Fuzz *FuzzSpec `json:"fuzz,omitempty"`
}

// FuzzSpec parameterizes a fuzz-campaign job. The job's seed comes from
// SubmitRequest.Seed; its corpus persists to
// <JournalDir>/fuzz-<id>.corpus.jsonl.
type FuzzSpec struct {
	// Attempts is the execution budget (<=0: the fuzzer's default; capped
	// like fixed sets).
	Attempts int `json:"attempts,omitempty"`
	// Batch is the scenarios-per-round batch size (<=0: default).
	Batch int `json:"batch,omitempty"`
	// Minimize is the per-entry minimization budget (0: default; negative:
	// skip minimization).
	Minimize int `json:"minimize,omitempty"`
}

// SubmitResponse acknowledges an accepted submission (HTTP 202).
type SubmitResponse struct {
	ID int `json:"id"`
	// URL is the job's canonical /v1 resource path.
	URL            string `json:"url"`
	ScenariosTotal int    `json:"scenarios_total"`
}

// Job is one submitted campaign's public state: live progress while
// running, the final summary or fuzz report once done.
type Job struct {
	ID     int       `json:"id"`
	Name   string    `json:"name,omitempty"`
	Status JobStatus `json:"status"`
	// ScenariosTotal/ScenariosDone report live progress.
	ScenariosTotal int `json:"scenarios_total"`
	ScenariosDone  int `json:"scenarios_done"`
	// CacheHits counts scenarios served from the shared result cache
	// instead of executing (absent without -cache-dir).
	CacheHits int `json:"cache_hits,omitempty"`
	// Recovered marks a job re-registered from a journal at boot.
	Recovered bool `json:"recovered,omitempty"`
	// Error is set when the whole run aborted (invalid spec, pool failure,
	// stall, cancellation).
	Error string `json:"error,omitempty"`
	// Summary is the final aggregate (done fixed-set jobs only).
	Summary *campaign.Summary `json:"summary,omitempty"`
	// Timing is the worker's own phase breakdown of the job — how long it
	// queued, executed, and published — stamped alongside ResultsHash when a
	// fixed-set job completes. It rides outside Summary so the fleet plane's
	// attribution never perturbs summary bytes or the results digest (absent
	// on failed and fuzz jobs).
	Timing *Timing `json:"timing,omitempty"`
	// ResultsHash is HashResults over Summary.Results, stamped by the worker
	// the moment the job completes. A fabric coordinator recomputes it from
	// the document it decoded, so any in-flight mutation of the results — a
	// flipped bit, a truncated tail, a byzantine proxy — shows up as a digest
	// mismatch instead of corrupting the merged campaign (absent on failed
	// and fuzz jobs).
	ResultsHash string `json:"results_sha256,omitempty"`
	// Fuzz is the final fuzz report (done fuzz-campaign jobs only).
	Fuzz *fuzz.Report `json:"fuzz,omitempty"`
}

// Timing is a worker's per-job phase breakdown: the three phases every
// fixed-set job passes through on a dmafaultd worker, in seconds of
// wall-clock. The fabric coordinator folds these into per-phase, per-worker
// latency histograms and the registry's EWMA accounting — the raw input for
// shard-size autotuning.
type Timing struct {
	// QueueWaitSeconds is time spent admitted but undispatched (bounded
	// FIFO queue wait; zero when a scheduler slot was free at submit).
	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	// ExecuteSeconds is the campaign engine's wall-clock for the scenario
	// set, cache replays included.
	ExecuteSeconds float64 `json:"execute_seconds"`
	// PublishSeconds covers post-engine finalization: quarantine breaker
	// bookkeeping, results hashing, and the metrics merge.
	PublishSeconds float64 `json:"publish_seconds"`
	// Attempts is total scenario attempts including transient-fault retries
	// (Summary.Scenarios + Summary.Retries).
	Attempts int `json:"attempts,omitempty"`
}

// HashResults is the canonical results digest carried in Job.ResultsHash:
// sha256 over the compact JSON encoding of the results slice. Producer and
// verifier both call this — the worker over the results it executed, the
// coordinator over the results it decoded off the wire — and the engine's
// canonical-JSON determinism (stable field order, round-trip-exact floats)
// is what makes the recomputation byte-faithful.
func HashResults(results []*campaign.Result) string {
	data, err := json.Marshal(results)
	if err != nil {
		// Engine results are plain data; they cannot fail to marshal.
		return ""
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// JobList is the GET /v1/campaigns body. Summaries and fuzz reports are
// elided to keep the listing lightweight; GET the job for the full record.
type JobList struct {
	Jobs []Job `json:"jobs"`
}

// CancelResponse acknowledges a cancellation (HTTP 202; the engine winds
// down asynchronously — poll the job for the terminal status).
type CancelResponse struct {
	ID     int    `json:"id"`
	Status string `json:"status"`
}

// CacheStats is the GET /v1/cache/stats body: the shared result store's
// geometry and hit/miss counters. Enabled false (every other field zero)
// means the daemon runs without -cache-dir.
type CacheStats struct {
	Enabled           bool `json:"enabled"`
	resultstore.Stats      // flattened: path, records, ..., hits, misses, stores
	// HitRate is Hits/(Hits+Misses), 0 before any lookup.
	HitRate float64 `json:"hit_rate"`
}

// ClearCacheResponse is the DELETE /v1/cache body.
type ClearCacheResponse struct {
	Cleared        bool `json:"cleared"`
	RecordsDropped int  `json:"records_dropped"`
}
