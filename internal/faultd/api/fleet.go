package api

import "dmafault/internal/metrics"

// Fleet wire types: the coordinator's fleet-observability surface
// (internal/fleetobs builds these; GET /v1/fleet on the coordinator serves
// them and fabrictop renders them). A snapshot is a pure function of
// registry + scrape state — no timestamps, no scrape counters — so two
// snapshots of identical fleet state marshal to identical bytes, the same
// determinism discipline the campaign summaries live under.
//
// Additional coordinator route:
//
//	GET /v1/fleet  FleetSnapshot (404 when the fleet plane is disabled)

// PhaseSeconds is a cumulative per-phase wall-clock total, summed over every
// verified delivery a worker has made.
type PhaseSeconds struct {
	QueueWait float64 `json:"queue_wait_seconds"`
	Execute   float64 `json:"execute_seconds"`
	Publish   float64 `json:"publish_seconds"`
}

// FleetWorker is one worker's row in the fleet snapshot: the coordinator
// registry's view (liveness, leases, quarantine, delivery accounting) merged
// with the scrape loop's view (readiness, staleness).
type FleetWorker struct {
	URL string `json:"url"`
	// Up is the registry's heartbeat verdict (lease-aware /readyz probe).
	Up bool `json:"up"`
	// Static marks workers configured at coordinator start (-worker-urls).
	Static bool `json:"static,omitempty"`
	// Quarantined marks a worker demoted for repeated bad deliveries.
	Quarantined bool `json:"quarantined,omitempty"`
	// Leases is how many shard leases the worker currently holds.
	Leases int `json:"leases"`
	// Delivered counts verified shard deliveries credited to this worker.
	Delivered int `json:"delivered_shards"`
	// Scenarios counts scenarios across those deliveries.
	Scenarios int `json:"delivered_scenarios"`
	// CacheHits counts scenarios the worker replayed from its result cache.
	CacheHits int `json:"cache_hits,omitempty"`
	// PhaseTotals is the cumulative phase breakdown over all deliveries.
	PhaseTotals PhaseSeconds `json:"phase_totals"`
	// EWMAShardSeconds is the exponentially weighted moving average of
	// whole-shard execute time (alpha 0.25, seeded by the first delivery) —
	// the shard-size autotuner's latency input.
	EWMAShardSeconds float64 `json:"ewma_shard_seconds"`
	// EWMAScenariosPerSec is the matching throughput EWMA
	// (scenarios / execute-seconds per delivery).
	EWMAScenariosPerSec float64 `json:"ewma_scenarios_per_sec"`
	// Ready is the scrape loop's last /readyz verdict; false until the first
	// successful scrape.
	Ready bool `json:"ready"`
	// Stale marks a worker whose last scrape failed after earlier successes;
	// its metrics contribution is the last good snapshot.
	Stale bool `json:"stale,omitempty"`
}

// FleetCampaign is the coordinator's campaign progress at snapshot time.
type FleetCampaign struct {
	ScenariosTotal int `json:"scenarios_total"`
	ScenariosDone  int `json:"scenarios_done"`
	ShardsTotal    int `json:"shards_total"`
	ShardsDone     int `json:"shards_done"`
}

// FleetSnapshot is the GET /v1/fleet body.
type FleetSnapshot struct {
	// Workers is every registered worker, URL-sorted.
	Workers []FleetWorker `json:"workers"`
	// Campaign is the coordinator's progress (absent outside a run).
	Campaign *FleetCampaign `json:"campaign,omitempty"`
	// Metrics is the order-stable merge of every scraped worker's
	// /v1/metrics snapshot, in worker-URL order (absent before any scrape).
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}
