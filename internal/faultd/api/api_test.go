package api

import (
	"encoding/json"
	"testing"

	"dmafault/internal/campaign"
	"dmafault/internal/resultstore"
)

// The wire formats are a contract: these goldens pin the exact JSON each
// type marshals to, so a field rename or tag change fails loudly here
// before it breaks a deployed client.
func TestWireFormatGoldens(t *testing.T) {
	cases := []struct {
		name string
		v    any
		want string
	}{
		{
			"submit_preset",
			SubmitRequest{Name: "smoke", Workers: 2, Preset: "ladder", N: 4, Seed: 2021},
			`{"name":"smoke","workers":2,"preset":"ladder","n":4,"seed":2021}`,
		},
		{
			"submit_fuzz",
			SubmitRequest{Seed: 7, Fuzz: &FuzzSpec{Attempts: 64, Batch: 16, Minimize: -1}},
			`{"seed":7,"fuzz":{"attempts":64,"batch":16,"minimize":-1}}`,
		},
		{
			"submit_scenarios",
			SubmitRequest{Scenarios: []campaign.Scenario{
				{Kind: campaign.KindWindowLadder, Seed: 7, Driver: "correct", Mode: "strict"},
			}},
			`{"scenarios":[{"kind":"window-ladder","seed":7,"mode":"strict","driver":"correct"}]}`,
		},
		{
			"submit_response",
			SubmitResponse{ID: 1, URL: "/v1/campaigns/1", ScenariosTotal: 4},
			`{"id":1,"url":"/v1/campaigns/1","scenarios_total":4}`,
		},
		{
			"job_running",
			Job{ID: 3, Name: "soak", Status: StatusRunning, ScenariosTotal: 8, ScenariosDone: 5, CacheHits: 2},
			`{"id":3,"name":"soak","status":"running","scenarios_total":8,"scenarios_done":5,"cache_hits":2}`,
		},
		{
			"job_failed",
			Job{ID: 4, Status: StatusFailed, ScenariosTotal: 1, Error: "boom"},
			`{"id":4,"status":"failed","scenarios_total":1,"scenarios_done":0,"error":"boom"}`,
		},
		{
			"job_done_hash",
			Job{ID: 5, Status: StatusDone, ScenariosTotal: 2, ScenariosDone: 2,
				ResultsHash: "8a4f"},
			`{"id":5,"status":"done","scenarios_total":2,"scenarios_done":2,"results_sha256":"8a4f"}`,
		},
		{
			"job_done_timing",
			Job{ID: 6, Status: StatusDone, ScenariosTotal: 4, ScenariosDone: 4,
				Timing: &Timing{QueueWaitSeconds: 0.25, ExecuteSeconds: 1.5,
					PublishSeconds: 0.003, Attempts: 5},
				ResultsHash: "8a4f"},
			`{"id":6,"status":"done","scenarios_total":4,"scenarios_done":4,` +
				`"timing":{"queue_wait_seconds":0.25,"execute_seconds":1.5,` +
				`"publish_seconds":0.003,"attempts":5},"results_sha256":"8a4f"}`,
		},
		{
			"job_list",
			JobList{Jobs: []Job{}},
			`{"jobs":[]}`,
		},
		{
			"cancel_response",
			CancelResponse{ID: 2, Status: "cancelling"},
			`{"id":2,"status":"cancelling"}`,
		},
		{
			"cache_stats_disabled",
			CacheStats{},
			`{"enabled":false,"path":"","records":0,"stale_records":0,"superseded_records":0,"bytes":0,"hits":0,"misses":0,"stores":0,"hit_rate":0}`,
		},
		{
			"cache_stats_enabled",
			CacheStats{
				Enabled: true,
				Stats: resultstore.Stats{
					Path: "/var/cache/results.bin", Records: 4, Bytes: 2048,
					Hits: 4, Misses: 4, Stores: 4,
				},
				HitRate: 0.5,
			},
			`{"enabled":true,"path":"/var/cache/results.bin","records":4,"stale_records":0,"superseded_records":0,"bytes":2048,"hits":4,"misses":4,"stores":4,"hit_rate":0.5}`,
		},
		{
			"clear_cache_response",
			ClearCacheResponse{Cleared: true, RecordsDropped: 4},
			`{"cleared":true,"records_dropped":4}`,
		},
		{
			"fleet_worker",
			FleetWorker{URL: "http://w1:8077", Up: true, Static: true, Leases: 2,
				Delivered: 3, Scenarios: 12, CacheHits: 4,
				PhaseTotals:      PhaseSeconds{QueueWait: 0.5, Execute: 6, Publish: 0.01},
				EWMAShardSeconds: 2, EWMAScenariosPerSec: 2.5, Ready: true},
			`{"url":"http://w1:8077","up":true,"static":true,"leases":2,` +
				`"delivered_shards":3,"delivered_scenarios":12,"cache_hits":4,` +
				`"phase_totals":{"queue_wait_seconds":0.5,"execute_seconds":6,` +
				`"publish_seconds":0.01},"ewma_shard_seconds":2,` +
				`"ewma_scenarios_per_sec":2.5,"ready":true}`,
		},
		{
			"fleet_worker_degraded",
			FleetWorker{URL: "http://w2:8077", Quarantined: true, Stale: true},
			`{"url":"http://w2:8077","up":false,"quarantined":true,"leases":0,` +
				`"delivered_shards":0,"delivered_scenarios":0,` +
				`"phase_totals":{"queue_wait_seconds":0,"execute_seconds":0,` +
				`"publish_seconds":0},"ewma_shard_seconds":0,` +
				`"ewma_scenarios_per_sec":0,"ready":false,"stale":true}`,
		},
		{
			"fleet_snapshot_campaign",
			FleetSnapshot{Workers: []FleetWorker{},
				Campaign: &FleetCampaign{ScenariosTotal: 16, ScenariosDone: 8,
					ShardsTotal: 4, ShardsDone: 2}},
			`{"workers":[],"campaign":{"scenarios_total":16,"scenarios_done":8,` +
				`"shards_total":4,"shards_done":2}}`,
		},
	}
	for _, tc := range cases {
		got, err := json.Marshal(tc.v)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if string(got) != tc.want {
			t.Errorf("%s wire format drifted:\n got %s\nwant %s", tc.name, got, tc.want)
		}
	}
}

// HashResults must survive a wire round trip: marshal the results, decode
// them back, recompute — same digest. This is the property the fabric's
// integrity verification stands on; if canonical-JSON round-tripping ever
// stops being byte-exact, this fails before the fabric starts rejecting
// every honest delivery.
func TestHashResultsRoundTrip(t *testing.T) {
	results := []*campaign.Result{
		{ID: "ladder-0", Kind: campaign.KindWindowLadder, Seed: 2021, Success: true,
			WindowPath: "P1", Metrics: map[string]string{"rate": "0.125", "mode": "deferred"},
			VirtualNanos: 123456789},
		{ID: "ladder-1", Kind: campaign.KindWindowLadder, Seed: 2022, Escalations: 3,
			Err: "boom", Retries: 1},
	}
	want := HashResults(results)
	if len(want) != 64 {
		t.Fatalf("digest %q is not sha256 hex", want)
	}
	data, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []*campaign.Result
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if got := HashResults(decoded); got != want {
		t.Fatalf("round-tripped digest drifted: %s vs %s", got, want)
	}
	decoded[1].Seed++
	if HashResults(decoded) == want {
		t.Fatal("digest blind to a mutated result")
	}
}

// Terminal is the client's poll-loop exit condition; pin it per status.
func TestJobStatusTerminal(t *testing.T) {
	for st, want := range map[JobStatus]bool{
		StatusQueued:    false,
		StatusRunning:   false,
		StatusDone:      true,
		StatusFailed:    true,
		StatusCancelled: true,
		StatusStalled:   true,
	} {
		if st.Terminal() != want {
			t.Errorf("%s.Terminal() = %v, want %v", st, st.Terminal(), want)
		}
	}
}
