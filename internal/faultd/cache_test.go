package faultd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"dmafault/internal/resultstore"
)

// Legacy unversioned routes keep answering but announce their successor:
// Deprecation plus a machine-readable Link header. The /v1 routes carry
// neither.
func TestLegacyRoutesDeprecated(t *testing.T) {
	srv := NewServer()
	srv.Synchronous = true
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy route missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); link != `</v1/campaigns>; rel="successor-version"` {
		t.Errorf("legacy Link header = %q", link)
	}

	resp, err = http.Get(ts.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "" || resp.Header.Get("Link") != "" {
		t.Error("/v1 route carries deprecation headers")
	}
}

// Without -cache-dir, the stats endpoint still answers (Enabled false is an
// answer) but clearing has nothing to act on.
func TestCacheEndpointsWithoutStore(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := get(t, ts.URL+"/v1/cache/stats")
	if code != 200 {
		t.Fatalf("cache stats: %d %s", code, body)
	}
	var stats struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Enabled {
		t.Error("stats claim a cache on a daemon without one")
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/cache", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE /v1/cache without store: %d, want 404", resp.StatusCode)
	}
}

// The store is shared across jobs: a second identical submission replays
// entirely from cache — CacheHits equals the scenario count, the summaries
// are byte-identical, and the admin endpoints see the traffic.
func TestSharedCacheAcrossJobs(t *testing.T) {
	store, err := resultstore.Open(filepath.Join(t.TempDir(), "results.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	srv := NewServer()
	srv.Workers = 2
	srv.Synchronous = true
	srv.Cache = store
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"preset":"ladder","n":4,"seed":2021}`
	for i := 0; i < 2; i++ {
		if code, resp := post(t, ts.URL+"/v1/campaigns", body); code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, code, resp)
		}
	}

	var jobs [2]Job
	var sums [2][]byte
	for i := range jobs {
		_, data := get(t, ts.URL+"/v1/campaigns/"+string(rune('1'+i)))
		if err := json.Unmarshal(data, &jobs[i]); err != nil {
			t.Fatal(err)
		}
		if jobs[i].Status != StatusDone || jobs[i].Summary == nil {
			t.Fatalf("job %d: %+v", i+1, jobs[i])
		}
		sums[i], err = jobs[i].Summary.JSON()
		if err != nil {
			t.Fatal(err)
		}
	}
	if jobs[0].CacheHits != 0 {
		t.Errorf("cold job reported %d cache hits", jobs[0].CacheHits)
	}
	if jobs[1].CacheHits != 4 {
		t.Errorf("warm job replayed %d of 4 scenarios", jobs[1].CacheHits)
	}
	if !bytes.Equal(sums[0], sums[1]) {
		t.Errorf("warm summary differs from cold:\n%s\nvs\n%s", sums[1], sums[0])
	}

	code, data := get(t, ts.URL+"/v1/cache/stats")
	if code != 200 {
		t.Fatalf("cache stats: %d", code)
	}
	var stats struct {
		Enabled bool    `json:"enabled"`
		Records int     `json:"records"`
		Hits    uint64  `json:"hits"`
		Misses  uint64  `json:"misses"`
		HitRate float64 `json:"hit_rate"`
	}
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Enabled || stats.Records != 4 || stats.Hits != 4 || stats.Misses != 4 {
		t.Errorf("stats: %+v", stats)
	}
	if stats.HitRate != 0.5 {
		t.Errorf("hit rate %v, want 0.5", stats.HitRate)
	}

	// The store's counters surface on /metrics too.
	_, text := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"resultstore_hits_total 4",
		"resultstore_records 4",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Clearing drops the records; the next identical job misses and re-fills.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/cache", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cleared struct {
		Cleared        bool `json:"cleared"`
		RecordsDropped int  `json:"records_dropped"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cleared); err != nil {
		t.Fatal(err)
	}
	if !cleared.Cleared || cleared.RecordsDropped != 4 {
		t.Errorf("clear: %+v", cleared)
	}
	if code, _ := post(t, ts.URL+"/v1/campaigns", body); code != http.StatusAccepted {
		t.Fatalf("post-clear submit: %d", code)
	}
	var third Job
	_, data = get(t, ts.URL+"/v1/campaigns/3")
	if err := json.Unmarshal(data, &third); err != nil {
		t.Fatal(err)
	}
	if third.CacheHits != 0 {
		t.Errorf("post-clear job hit %d times on an empty store", third.CacheHits)
	}
}
